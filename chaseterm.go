// Package chaseterm is a library for reasoning about the chase procedure
// over existential rules (tuple-generating dependencies, TGDs), built as a
// faithful implementation of
//
//	Marco Calautti, Georg Gottlob, Andreas Pieris:
//	"Chase Termination for Guarded Existential Rules", PODS 2015.
//
// It provides:
//
//   - the three standard chase variants (oblivious, semi-oblivious,
//     restricted) as bounded, instrumented engines (RunChase);
//   - syntactic classification of rule sets into the paper's classes —
//     simple-linear ⊆ linear ⊆ guarded ⊆ general (Classify);
//   - exact decision procedures for all-instance chase termination
//     (DecideTermination): critical-weak/rich acyclicity for linear rules
//     (Theorems 1–3) and the guarded chase-forest decision procedure
//     (Theorem 4), plus sound fallbacks (weak/rich acyclicity, bounded
//     critical-instance saturation) outside the guarded class, where the
//     problem is undecidable;
//   - the looping operator (LoopEntailment), the paper's reduction from
//     propositional atom entailment to the complement of chase
//     termination, usable to generate hard termination instances.
//
// # Quick start
//
// Every analysis goes through one context-first entry point, the
// Analyzer:
//
//	var an chaseterm.Analyzer
//	rules, _ := chaseterm.ParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
//	rep, _ := an.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules))
//	fmt.Println(rep.Verdict.Terminates) // "non-terminating": Example 1 runs forever
//
// The pre-Analyzer free functions (DecideTermination, RunChase,
// CheckAcyclicity, …) remain as deprecated wrappers with unchanged
// behavior.
//
// Rule syntax: `body -> head.` with comma-separated atoms; identifiers
// starting with an upper-case letter (or '_') are variables; head
// variables absent from the body are existentially quantified; facts are
// ground atoms terminated by '.'.
package chaseterm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/chase"
	"chaseterm/internal/core"
	"chaseterm/internal/critical"
	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
	"chaseterm/internal/looping"
	"chaseterm/internal/parse"
)

// Variant selects a chase flavour. See the package documentation of
// internal/chase for the exact trigger semantics.
type Variant int

const (
	// Oblivious applies one trigger per distinct homomorphism.
	Oblivious Variant = iota
	// SemiOblivious (Skolem) applies one trigger per distinct frontier
	// restriction.
	SemiOblivious
	// Restricted applies only triggers whose head is not yet satisfied.
	Restricted
)

func (v Variant) String() string { return v.engine().String() }

func (v Variant) engine() chase.Variant {
	switch v {
	case Oblivious:
		return chase.Oblivious
	case SemiOblivious:
		return chase.SemiOblivious
	default:
		return chase.Restricted
	}
}

// ParseVariant accepts "o"/"oblivious", "so"/"semi-oblivious"/"skolem",
// "r"/"restricted"/"standard".
func ParseVariant(s string) (Variant, error) {
	cv, err := chase.ParseVariant(s)
	if err != nil {
		return 0, err
	}
	switch cv {
	case chase.Oblivious:
		return Oblivious, nil
	case chase.SemiOblivious:
		return SemiOblivious, nil
	default:
		return Restricted, nil
	}
}

// Class is a syntactic class of rule sets, ordered by inclusion.
type Class int

const (
	// SimpleLinear: one body atom, no repeated body variables.
	SimpleLinear Class = iota
	// Linear: one body atom.
	Linear
	// Guarded: some body atom holds all universally quantified variables.
	Guarded
	// General: everything else.
	General
)

func (c Class) String() string {
	return [...]string{"simple-linear", "linear", "guarded", "general"}[c]
}

// RuleSet is a parsed, validated set of TGDs.
type RuleSet struct {
	rs *logic.RuleSet

	fpOnce sync.Once
	fp     string
}

// ParseRules parses a rule set from text.
func ParseRules(src string) (*RuleSet, error) {
	rs, err := parse.ParseRules(src)
	if err != nil {
		return nil, err
	}
	return &RuleSet{rs: rs}, nil
}

// MustParseRules is ParseRules panicking on error, for tests and examples.
func MustParseRules(src string) *RuleSet {
	rs, err := ParseRules(src)
	if err != nil {
		panic(err)
	}
	return rs
}

// String renders the rule set in the input syntax.
func (r *RuleSet) String() string { return r.rs.String() }

// NumRules returns the number of TGDs.
func (r *RuleSet) NumRules() int { return len(r.rs.Rules) }

// Classify returns the most specific syntactic class containing the set.
func (r *RuleSet) Classify() Class {
	switch r.rs.Classify() {
	case logic.ClassSimpleLinear:
		return SimpleLinear
	case logic.ClassLinear:
		return Linear
	case logic.ClassGuarded:
		return Guarded
	default:
		return General
	}
}

// MaxArity returns the maximum predicate arity of the schema.
func (r *RuleSet) MaxArity() int { return r.rs.MaxArity() }

// Predicates lists the schema as "name/arity" strings.
func (r *RuleSet) Predicates() []string {
	var out []string
	for _, p := range r.rs.Schema() {
		out = append(out, p.String())
	}
	return out
}

// Fingerprint returns a stable content-addressed identity for the rule
// set: the SHA-256 hex digest of its canonical form. The canonical form
// renames the variables of every rule to V0, V1, … in order of first
// occurrence (body before head) and sorts the rendered rules, so the
// fingerprint is invariant under rule reordering and variable renaming,
// and deterministic across processes. It is the cache key of the
// analysis service (internal/service). Computed once and memoized —
// every Analyzer report carries it, so repeated analyses of the same
// set must not re-canonicalize.
func (r *RuleSet) Fingerprint() string {
	r.fpOnce.Do(func() {
		lines := make([]string, len(r.rs.Rules))
		for i, t := range r.rs.Rules {
			lines[i] = canonicalRule(t)
		}
		sort.Strings(lines)
		h := sha256.New()
		for _, l := range lines {
			h.Write([]byte(l))
			h.Write([]byte{'\n'})
		}
		r.fp = hex.EncodeToString(h.Sum(nil))
	})
	return r.fp
}

// canonicalRule renders a TGD with variables renamed to V0, V1, … in
// order of first occurrence across the body atoms and then the head
// atoms. Canonical names cannot collide with constants in the rendered
// form: the renderer single-quotes any constant that starts with an
// upper-case letter, so a bare V0 is always a variable.
func canonicalRule(t *logic.TGD) string {
	ren := make(map[logic.Variable]logic.Variable)
	next := 0
	walk := func(atoms []logic.Atom) {
		for _, a := range atoms {
			for _, arg := range a.Args {
				if v, ok := arg.(logic.Variable); ok {
					if _, done := ren[v]; !done {
						ren[v] = logic.Variable(fmt.Sprintf("V%d", next))
						next++
					}
				}
			}
		}
	}
	walk(t.Body)
	walk(t.Head)
	return t.Rename(ren).String()
}

// Internal returns the underlying representation; exposed for the
// command-line tools and benchmarks living in this module.
func (r *RuleSet) Internal() *logic.RuleSet { return r.rs }

// Database is a finite set of ground facts.
type Database struct {
	atoms []logic.Atom
}

// ParseDatabase parses ground facts from text.
func ParseDatabase(src string) (*Database, error) {
	fs, err := parse.ParseFacts(src)
	if err != nil {
		return nil, err
	}
	return &Database{atoms: fs}, nil
}

// MustParseDatabase is ParseDatabase panicking on error.
func MustParseDatabase(src string) *Database {
	db, err := ParseDatabase(src)
	if err != nil {
		panic(err)
	}
	return db
}

// Size returns the number of facts.
func (d *Database) Size() int { return len(d.atoms) }

// String renders the database in the input syntax.
func (d *Database) String() string { return parse.FormatFacts(d.atoms) }

// CriticalDatabase returns the critical instance I*(Σ): all atoms over the
// schema of the rule set filled with a fresh constant ✶ and the rule
// constants. The (semi-)oblivious chase terminates on every database iff
// it terminates on this one (Marnette's lemma; see internal/critical).
func CriticalDatabase(rules *RuleSet) *Database {
	return &Database{atoms: critical.Facts(rules.rs)}
}

// ChaseOutcome reports how a chase run ended.
type ChaseOutcome int

const (
	// Terminated: the run reached a fixpoint; the result is a universal
	// model of the database and the rules.
	Terminated ChaseOutcome = iota
	// BudgetExceeded: the fact/trigger budget ran out first.
	BudgetExceeded
	// DepthExceeded: an invented term exceeded Options.MaxDepth.
	DepthExceeded
	// Canceled: the context passed to RunChaseContext fired before the
	// run finished. RunChaseContext returns the partial result (stats up
	// to the stopping point) together with the context's error.
	Canceled
)

func (o ChaseOutcome) String() string {
	return [...]string{"terminated", "budget-exceeded", "depth-exceeded", "canceled"}[o]
}

// ChaseOptions bound a chase run; the zero value means generous defaults
// (10^6 facts and triggers).
type ChaseOptions struct {
	MaxTriggers int
	MaxFacts    int
	MaxDepth    int
	// Workers sets the engine's match parallelism: with Workers > 1 the
	// FIFO engine matches each generation's new facts on that many
	// goroutines while fact application stays single-writer. Results are
	// bit-identical to the sequential engine at every worker count; 0 or
	// 1 runs sequentially. See WithParallelism for the request-level knob
	// that also covers the deciders' internal chases.
	Workers int
}

// ChaseStats aggregates run statistics.
type ChaseStats struct {
	InitialFacts      int
	FactsAdded        int
	TriggersApplied   int
	TriggersNoop      int
	TriggersSatisfied int
	MaxTermDepth      int
}

// ChaseResult is the outcome of RunChase.
type ChaseResult struct {
	Variant Variant
	Outcome ChaseOutcome
	Stats   ChaseStats

	// engine is the full engine counter set, a superset of Stats
	// (TriggersEnqueued has no field in the public ChaseStats); surfaced
	// as Report.Engine by Analyzer.Analyze.
	engine EngineStats

	factsOnce sync.Once
	facts     []string
	inst      *instance.Instance
}

// Facts returns the final instance as sorted, rendered atoms. Invented
// nulls render as z1, z2, …; Skolem terms as f0_Y(bob) etc. Rendering
// happens lazily on the first call and is memoized; callers that only
// inspect Stats or run queries never pay for it.
func (r *ChaseResult) Facts() []string {
	r.factsOnce.Do(func() { r.facts = r.inst.Strings() })
	return r.facts
}

// Query evaluates a conjunctive query over the chase result and returns
// the certain answers: the bindings of the answer variables that contain
// no invented value. When the chase Terminated, its result is a universal
// model, so these are exactly the certain answers of the query over the
// database and the rules — the classic use of the chase for query
// answering under constraints.
//
// body is a comma-separated conjunction, e.g. "teaches(P,C), course(C)";
// answerVars names the variables to project, e.g. "P", "C". Each answer is
// a tuple of rendered constants in answerVars order; answers are
// deduplicated and sorted.
func (r *ChaseResult) Query(body string, answerVars ...string) ([][]string, error) {
	atoms, err := parse.ParseAtomList(body)
	if err != nil {
		return nil, err
	}
	pat, err := instance.CompileBody(r.inst, atoms)
	if err != nil {
		return nil, err
	}
	proj := make([]int, len(answerVars))
	for i, v := range answerVars {
		idx := pat.VarIndex(logic.Variable(v))
		if idx < 0 {
			return nil, fmt.Errorf("chaseterm: answer variable %s does not occur in the query", v)
		}
		proj[i] = idx
	}
	seen := make(map[string]bool)
	var out [][]string
	r.inst.FindHoms(pat, nil, func(binding []instance.TermID) bool {
		tuple := make([]string, len(proj))
		for i, idx := range proj {
			t := binding[idx]
			if r.inst.Terms.IsInvented(t) {
				return true // not a certain answer
			}
			tuple[i] = r.inst.Terms.String(t)
		}
		key := strings.Join(tuple, "\x00")
		if !seen[key] {
			seen[key] = true
			out = append(out, tuple)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out, nil
}

// CoreFacts computes the core of the chase result — its smallest retract,
// with constants rigid and invented values foldable — and returns it as
// sorted rendered atoms along with the number of redundant facts removed.
// For a terminated restricted or oblivious chase in a data-exchange
// setting, this is the minimal universal solution ("getting to the core",
// Fagin–Kolaitis–Popa).
func (r *ChaseResult) CoreFacts() (facts []string, removed int) {
	core, n := instance.Core(r.inst)
	return core.Strings(), n
}

// Holds reports whether the boolean conjunctive query has at least one
// homomorphism into the chase result (invented values allowed — this is
// certain-answer semantics for a boolean query over a universal model).
func (r *ChaseResult) Holds(body string) (bool, error) {
	atoms, err := parse.ParseAtomList(body)
	if err != nil {
		return false, err
	}
	pat, err := instance.CompileBody(r.inst, atoms)
	if err != nil {
		return false, err
	}
	return r.inst.HasHom(pat, nil), nil
}

// RunChase executes the selected chase variant on the database and returns
// the result. A Terminated outcome yields a universal model.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeChase, rules,
// WithDatabase(db), WithVariant(v), WithChaseBudgets(opt)) instead.
func RunChase(db *Database, rules *RuleSet, v Variant, opt ChaseOptions) (*ChaseResult, error) {
	return RunChaseContext(context.Background(), db, rules, v, opt)
}

// RunChaseContext is RunChase honoring a context. The engine polls the
// context every ~1024 trigger applications; when it fires, the partial
// result — Outcome Canceled, statistics up to the stopping point — is
// returned together with ctx.Err(), so the call never runs to its full
// trigger/fact budget after the caller has gone away.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeChase, rules,
// WithDatabase(db), WithVariant(v), WithChaseBudgets(opt)) instead.
func RunChaseContext(ctx context.Context, db *Database, rules *RuleSet, v Variant, opt ChaseOptions) (*ChaseResult, error) {
	rep, err := Analyzer{}.Analyze(ctx, NewRequest(AnalyzeChase, rules,
		WithDatabase(db), WithVariant(v), WithChaseBudgets(opt)))
	if rep == nil {
		return nil, err
	}
	return rep.Chase, err
}

// runChase is the chase-run implementation behind Analyzer.Analyze.
// A non-nil sink streams derived facts while the run is in progress
// (see ChaseSink); facts buffered at the end of the run — complete,
// canceled, or budget-stopped — are flushed before runChase returns.
func runChase(ctx context.Context, db *Database, rules *RuleSet, v Variant, opt ChaseOptions, sink ChaseSink) (*ChaseResult, error) {
	copt := chase.Options{
		MaxTriggers: opt.MaxTriggers,
		MaxFacts:    opt.MaxFacts,
		MaxDepth:    int32(opt.MaxDepth),
		Workers:     opt.Workers,
	}
	var res *chase.Result
	var err error
	if sink == nil {
		res, err = chase.RunFromAtomsContext(ctx, db.atoms, rules.rs, v.engine(), copt)
	} else {
		var in *instance.Instance
		in, err = instance.FromAtoms(db.atoms)
		if err != nil {
			return nil, err
		}
		var eng *chase.Engine
		eng, err = chase.NewEngine(in, rules.rs, v.engine(), copt)
		if err != nil {
			return nil, err
		}
		ad := &sinkAdapter{in: in, sink: sink}
		res, err = eng.RunStreamContext(ctx, ad)
		if res != nil {
			ad.flush(res.Stats)
		}
	}
	if res == nil {
		return nil, err
	}
	out := &ChaseResult{
		Variant: v,
		inst:    res.Instance,
		Stats:   toChaseStats(res.Stats),
		engine: EngineStats{
			InitialFacts:      res.Stats.InitialFacts,
			FactsAdded:        res.Stats.FactsAdded,
			TriggersApplied:   res.Stats.TriggersApplied,
			TriggersNoop:      res.Stats.TriggersNoop,
			TriggersSatisfied: res.Stats.TriggersSatisfied,
			TriggersEnqueued:  res.Stats.TriggersEnqueued,
			MaxTermDepth:      int(res.Stats.MaxTermDepth),
		},
	}
	switch res.Outcome {
	case chase.Terminated:
		out.Outcome = Terminated
	case chase.DepthExceeded:
		out.Outcome = DepthExceeded
	case chase.Canceled:
		out.Outcome = Canceled
	default:
		out.Outcome = BudgetExceeded
	}
	return out, err
}

// Ternary is a three-valued answer.
type Ternary int

const (
	// Unknown: no procedure could decide (only outside the guarded class).
	Unknown Ternary = iota
	// Yes: the chase terminates on every database.
	Yes
	// No: some database (the critical instance) has a non-terminating
	// chase.
	No
)

func (t Ternary) String() string {
	return [...]string{"unknown", "terminating", "non-terminating"}[t]
}

// Verdict is the result of DecideTermination.
type Verdict struct {
	// Terminates answers "is the rule set in CT^v?".
	Terminates Ternary
	// Class is the syntactic class the decision was made in.
	Class Class
	// Method names the procedure: critical-weak-acyclicity,
	// critical-rich-acyclicity, guarded-forest, guarded-forest(aux),
	// weak-acyclicity, rich-acyclicity, critical-saturation,
	// bounded-oracle.
	Method string
	// Witness is a human-readable non-termination certificate (a pumpable
	// shape cycle or node-type cycle), or a diagnostic for Unknown.
	Witness string
	// SearchSpace reports the explored abstraction size (shapes or node
	// types), the quantity behind the paper's complexity bounds.
	SearchSpace int
}

// DecideTermination decides membership in CT^v — "does every v-chase
// sequence terminate on every input database?" — for the oblivious and
// semi-oblivious chase. The decision is exact for linear and guarded rule
// sets (the paper's Theorems 1–4); for general TGDs the problem is
// undecidable and the verdict may be Unknown. For the restricted chase no
// exact procedure is known (the paper's future work); weak acyclicity is
// used as a sound sufficient condition and Unknown is returned otherwise.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeDecide, rules,
// WithVariant(v)) instead.
func DecideTermination(rules *RuleSet, v Variant) (*Verdict, error) {
	return DecideTerminationOpts(rules, v, DecideOptions{})
}

// DecideTerminationContext is DecideTermination honoring a context: every
// decision procedure polls it at its fixpoint/worklist boundaries and a
// canceled or expired context surfaces as ctx.Err() (context.Canceled /
// context.DeadlineExceeded) well before any search budget is exhausted.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeDecide, rules,
// WithVariant(v)) instead.
func DecideTerminationContext(ctx context.Context, rules *RuleSet, v Variant) (*Verdict, error) {
	return DecideTerminationOptsContext(ctx, rules, v, DecideOptions{})
}

// Default budgets used when the corresponding DecideOptions field is
// zero; exported so callers (and caches keyed on options) can treat an
// explicit default and an omitted field as the same request.
const (
	DefaultMaxShapes    = core.DefaultMaxShapes
	DefaultMaxNodeTypes = core.DefaultMaxNodeTypes
)

// DecideOptions bound the decision procedures.
type DecideOptions struct {
	// MaxShapes caps the linear decider's abstract-shape space
	// (0 = DefaultMaxShapes).
	MaxShapes int
	// MaxNodeTypes caps the guarded decider's node-type space
	// (0 = DefaultMaxNodeTypes).
	MaxNodeTypes int
	// OracleMaxTriggers / OracleMaxFacts bound the fallback critical
	// chase for general rule sets.
	OracleMaxTriggers int
	OracleMaxFacts    int
	// OracleWorkers sets the match parallelism of the deciders' internal
	// chases (the critical-instance oracle and saturation rungs). 0 or 1
	// runs them sequentially; verdicts are identical at every count.
	OracleWorkers int
}

// DecideTerminationOpts is DecideTermination with explicit budgets.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeDecide, rules,
// WithVariant(v), WithDecideBudgets(opt)) instead.
func DecideTerminationOpts(rules *RuleSet, v Variant, opt DecideOptions) (*Verdict, error) {
	return DecideTerminationOptsContext(context.Background(), rules, v, opt)
}

// DecideTerminationOptsContext is DecideTerminationOpts honoring a
// context; see DecideTerminationContext for the cancellation contract.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeDecide, rules,
// WithVariant(v), WithDecideBudgets(opt)) instead.
func DecideTerminationOptsContext(ctx context.Context, rules *RuleSet, v Variant, opt DecideOptions) (*Verdict, error) {
	rep, err := Analyzer{}.Analyze(ctx, NewRequest(AnalyzeDecide, rules,
		WithVariant(v), WithDecideBudgets(opt)))
	if err != nil {
		return nil, err
	}
	return rep.Verdict, nil
}

// decideTermination is the all-instance decision procedure behind
// Analyzer.Analyze.
func decideTermination(ctx context.Context, rules *RuleSet, v Variant, opt DecideOptions) (*Verdict, error) {
	class := rules.Classify()
	if v == Restricted {
		return decideRestricted(ctx, rules, class, opt)
	}
	cv := core.VariantSemiOblivious
	if v == Oblivious {
		cv = core.VariantOblivious
	}
	verdict, err := core.DecideContext(ctx, rules.rs, cv, core.DecideOptions{
		Options: core.Options{
			MaxShapes:    opt.MaxShapes,
			MaxNodeTypes: opt.MaxNodeTypes,
		},
		OracleMaxTriggers: opt.OracleMaxTriggers,
		OracleMaxFacts:    opt.OracleMaxFacts,
		OracleWorkers:     opt.OracleWorkers,
	})
	if err != nil {
		return nil, err
	}
	return fromCoreVerdict(verdict, class), nil
}

func fromCoreVerdict(v *core.Verdict, class Class) *Verdict {
	out := &Verdict{
		Class:   class,
		Method:  v.Method,
		Witness: v.Witness,
	}
	switch v.Answer {
	case core.Terminating:
		out.Terminates = Yes
	case core.NonTerminating:
		out.Terminates = No
	default:
		out.Terminates = Unknown
	}
	if v.ShapeCount > 0 {
		out.SearchSpace = v.ShapeCount
	} else {
		out.SearchSpace = v.NodeTypeCount
	}
	return out
}

// decideRestricted: the paper leaves the restricted chase open (Section
// 4); we report the sound answers available. Termination of the
// semi-oblivious chase implies termination of the restricted chase (the
// restricted chase applies a subset of the semi-oblivious triggers on
// every database), so an exact Yes for CT^so transfers.
func decideRestricted(ctx context.Context, rules *RuleSet, class Class, opt DecideOptions) (*Verdict, error) {
	so, err := decideTermination(ctx, rules, SemiOblivious, opt)
	if err != nil {
		return nil, err
	}
	if so.Terminates == Yes {
		return &Verdict{
			Terminates:  Yes,
			Class:       class,
			Method:      so.Method + "→restricted",
			SearchSpace: so.SearchSpace,
		}, nil
	}
	return &Verdict{
		Terminates: Unknown,
		Class:      class,
		Method:     "restricted-open",
		Witness: "deciding restricted-chase termination is the paper's open problem; " +
			"CT^so gave " + so.Terminates.String(),
	}, nil
}

// DecideTerminationOnDatabase decides whether the v-chase of the GIVEN
// database under the rule set terminates — the fixed-database variant of
// the termination problem. Exact for linear and guarded rule sets (the
// abstractions of Theorems 2 and 4 apply unchanged when seeded with the
// database instead of the critical instance); for general TGDs the problem
// stays undecidable and a bounded run decides only the positive direction.
// The restricted variant reports Yes when the semi-oblivious chase of the
// database terminates (its triggers subsume the restricted ones) and
// Unknown otherwise.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeDecide, rules,
// WithDatabase(db), WithVariant(v)) instead.
func DecideTerminationOnDatabase(db *Database, rules *RuleSet, v Variant) (*Verdict, error) {
	return DecideTerminationOnDatabaseContext(context.Background(), db, rules, v)
}

// DecideTerminationOnDatabaseContext is DecideTerminationOnDatabase
// honoring a context; see DecideTerminationContext for the cancellation
// contract.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeDecide, rules,
// WithDatabase(db), WithVariant(v)) instead.
func DecideTerminationOnDatabaseContext(ctx context.Context, db *Database, rules *RuleSet, v Variant) (*Verdict, error) {
	rep, err := Analyzer{}.Analyze(ctx, NewRequest(AnalyzeDecide, rules,
		WithDatabase(db), WithVariant(v)))
	if err != nil {
		return nil, err
	}
	return rep.Verdict, nil
}

// decideOnDatabase is the fixed-database decision procedure behind
// Analyzer.Analyze. opt bounds the abstraction search and the bounded
// fallback run exactly as in the all-instance decision.
func decideOnDatabase(ctx context.Context, db *Database, rules *RuleSet, v Variant, opt DecideOptions) (*Verdict, error) {
	class := rules.Classify()
	if v == Restricted {
		so, err := decideOnDatabase(ctx, db, rules, SemiOblivious, opt)
		if err != nil {
			return nil, err
		}
		if so.Terminates == Yes {
			so.Method += "→restricted"
			return so, nil
		}
		return &Verdict{Terminates: Unknown, Class: class, Method: "restricted-open",
			Witness: "restricted-chase termination is open; CT^so on this database gave " + so.Terminates.String()}, nil
	}
	cv := core.VariantSemiOblivious
	if v == Oblivious {
		cv = core.VariantOblivious
	}
	coreOpts := core.Options{MaxShapes: opt.MaxShapes, MaxNodeTypes: opt.MaxNodeTypes}
	switch class {
	case SimpleLinear, Linear:
		res, err := core.DecideLinearOnContext(ctx, rules.rs, db.atoms, cv, coreOpts)
		if err != nil {
			return nil, err
		}
		res.Verdict.Method += "(fixed-db)"
		return fromCoreVerdict(res.Verdict, class), nil
	case Guarded:
		target := rules.rs
		method := "guarded-forest(fixed-db)"
		if v == Oblivious {
			target = critical.AuxTransform(rules.rs)
			method = "guarded-forest(aux,fixed-db)"
		}
		res, err := core.DecideGuardedOnContext(ctx, target, db.atoms, coreOpts)
		if err != nil {
			return nil, err
		}
		res.Verdict.Method = method
		out := fromCoreVerdict(res.Verdict, class)
		return out, nil
	default:
		budgets := ChaseOptions{MaxTriggers: 200_000, MaxFacts: 200_000, Workers: opt.OracleWorkers}
		if opt.OracleMaxTriggers > 0 {
			budgets.MaxTriggers = opt.OracleMaxTriggers
		}
		if opt.OracleMaxFacts > 0 {
			budgets.MaxFacts = opt.OracleMaxFacts
		}
		run, err := runChase(ctx, db, rules, v, budgets, nil)
		if err != nil {
			return nil, err
		}
		if run.Outcome == Terminated {
			return &Verdict{Terminates: Yes, Class: class, Method: "saturation(fixed-db)"}, nil
		}
		return &Verdict{Terminates: Unknown, Class: class, Method: "bounded-run(fixed-db)",
			Witness: fmt.Sprintf("run stopped with %s after %d facts", run.Outcome, run.Stats.FactsAdded)}, nil
	}
}

// AcyclicityReport collects the positional sufficient conditions for chase
// termination, ordered by strength: RA ⊆ WA ⊆ JA. Rich acyclicity implies
// CT^o; weak and joint acyclicity imply CT^so (and hence restricted-chase
// termination). All three are sound but incomplete — the exact deciders of
// DecideTermination subsume them on linear and guarded sets (experiment
// E14 quantifies the gap).
type AcyclicityReport struct {
	RichlyAcyclic  bool
	WeaklyAcyclic  bool
	JointlyAcyclic bool
	// RAWitness / WAWitness / JAWitness describe a dangerous cycle when
	// the corresponding check fails (for joint acyclicity: a feeds cycle
	// over existential variables).
	RAWitness string
	WAWitness string
	JAWitness string
}

// CheckAcyclicity evaluates the positional acyclicity criteria on the rule
// set.
//
// Deprecated: Use Analyzer.Analyze with NewRequest(AnalyzeAcyclicity,
// rules) — or attach WithAcyclicity() to any other request — instead.
func CheckAcyclicity(rules *RuleSet) AcyclicityReport {
	return checkAcyclicity(rules)
}

// IsJointlyAcyclicBool reports whether the rule set is jointly acyclic.
//
// Deprecated: Use CheckAcyclicity — or Analyzer.Analyze with
// AnalyzeAcyclicity — whose report carries the verdict together with
// the feeds-cycle witness (AcyclicityReport.JointlyAcyclic/JAWitness).
func IsJointlyAcyclicBool(rules *RuleSet) bool {
	return acyclicity.IsJointlyAcyclicBool(rules.rs)
}

// checkAcyclicity is the positional-criteria evaluation behind
// Analyzer.Analyze.
func checkAcyclicity(rules *RuleSet) AcyclicityReport {
	var rep AcyclicityReport
	var w *acyclicity.Witness
	rep.RichlyAcyclic, w = acyclicity.IsRichlyAcyclic(rules.rs)
	if w != nil {
		rep.RAWitness = w.String()
	}
	rep.WeaklyAcyclic, w = acyclicity.IsWeaklyAcyclic(rules.rs)
	if w != nil {
		rep.WAWitness = w.String()
	}
	rep.JointlyAcyclic, w = acyclicity.IsJointlyAcyclic(rules.rs)
	if w != nil {
		rep.JAWitness = w.String()
	}
	return rep
}

// ExploreResult reports the outcome of ExploreRestrictedSequences.
type ExploreResult struct {
	// Found: some restricted-chase sequence from the database terminates;
	// Trace lists the applied rule indexes of one shortest such sequence.
	Found bool
	// Exhausted: the search space was fully explored without pruning;
	// combined with Found == false this certifies that every restricted
	// sequence diverges past the fact bound.
	Exhausted      bool
	StatesExplored int
	Trace          []int
	FinalFacts     []string
}

// ExploreOptions bound ExploreRestrictedSequences (zero values = defaults:
// 10k states, 200 facts per state).
type ExploreOptions struct {
	MaxStates int
	MaxFacts  int
}

// ExploreRestrictedSequences searches the tree of restricted-chase
// sequences of the database for a terminating one, branching on which
// active trigger fires next. The paper's §2 defines both the ∀-sequence
// and ∃-sequence termination problems; they coincide for the oblivious and
// semi-oblivious chase but differ for the restricted chase, where firing a
// "repairing" trigger first can satisfy an "inventing" trigger before it
// is considered — this explorer makes the difference observable on
// concrete databases. (Deciding the restricted problems for all databases
// is the paper's open problem and is not attempted.)
func ExploreRestrictedSequences(db *Database, rules *RuleSet, opt ExploreOptions) (*ExploreResult, error) {
	res, err := chase.ExploreRestrictedTermination(db.atoms, rules.rs, chase.ExploreOptions{
		MaxStates: opt.MaxStates,
		MaxFacts:  opt.MaxFacts,
	})
	if err != nil {
		return nil, err
	}
	return &ExploreResult{
		Found:          res.Found,
		Exhausted:      res.Exhausted,
		StatesExplored: res.StatesExplored,
		Trace:          res.Trace,
		FinalFacts:     res.FinalFacts,
	}, nil
}

// EntailmentInstance is a propositional-atom-entailment question: does
// DB ∪ Rules entail Goal? Goal must be a ground atom in the input syntax,
// e.g. "reach(c)".
type EntailmentInstance struct {
	Rules *RuleSet
	DB    *Database
	Goal  string
}

// LoopEntailment applies the paper's looping operator: it returns a rule
// set whose (semi-)oblivious chase termination is the complement of the
// entailment answer (provided each generation of the source rules
// saturates — e.g. Datalog rules; see internal/looping). The returned set
// stays in the syntactic class of the input, so the exact deciders apply.
func LoopEntailment(inst EntailmentInstance) (*RuleSet, error) {
	goalFacts, err := parse.ParseFacts(inst.Goal + ".")
	if err != nil {
		return nil, fmt.Errorf("chaseterm: bad goal: %w", err)
	}
	if len(goalFacts) != 1 {
		return nil, fmt.Errorf("chaseterm: goal must be a single ground atom")
	}
	looped, err := looping.Loop(looping.Instance{
		Rules: inst.Rules.rs,
		DB:    inst.DB.atoms,
		Goal:  goalFacts[0],
	})
	if err != nil {
		return nil, err
	}
	return &RuleSet{rs: looped}, nil
}

// Entails answers the entailment question directly by saturation
// (semi-oblivious chase); exact whenever the chase of DB under Rules
// terminates, which is always the case for Datalog rules.
//
// Deprecated: use EntailsContext, which bounds the saturation by a
// caller-supplied context.
func Entails(inst EntailmentInstance) (bool, error) {
	return EntailsContext(context.Background(), inst)
}

// EntailsContext is Entails honoring a context: the underlying chase
// polls it, so a canceled or expired context surfaces as ctx.Err().
func EntailsContext(ctx context.Context, inst EntailmentInstance) (bool, error) {
	goalFacts, err := parse.ParseFacts(inst.Goal + ".")
	if err != nil {
		return false, fmt.Errorf("chaseterm: bad goal: %w", err)
	}
	if len(goalFacts) != 1 {
		return false, fmt.Errorf("chaseterm: goal must be a single ground atom")
	}
	return looping.EntailedContext(ctx, looping.Instance{
		Rules: inst.Rules.rs,
		DB:    inst.DB.atoms,
		Goal:  goalFacts[0],
	}, chase.Options{})
}
