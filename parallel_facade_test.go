package chaseterm_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"chaseterm"
)

// wideChainDB renders a chain of n edge facts — wide enough that each
// chase generation carries well over the parallel engine's inline
// threshold, so the striped match phase actually runs.
func wideChainDB(n int) *chaseterm.Database {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "e(a%d,a%d).\n", i, i+1)
	}
	return chaseterm.MustParseDatabase(b.String())
}

// chaseWith runs one AnalyzeChase request over a wide terminating
// workload with the given extra options and returns the report.
func chaseWith(t *testing.T, opts ...chaseterm.RequestOption) *chaseterm.Report {
	t.Helper()
	rules := chaseterm.MustParseRules(`e(X,Y) -> r(X,Y).
	                                   r(X,Y) -> s(Y,X).
	                                   e(X,Y), e(Y,Z) -> t(X,Z).
	                                   t(X,Z) -> u(X,W).`)
	all := append([]chaseterm.RequestOption{
		chaseterm.WithDatabase(wideChainDB(120)),
		chaseterm.WithVariant(chaseterm.Restricted),
		chaseterm.WithFacts(),
	}, opts...)
	rep, err := an.Analyze(context.Background(), chaseterm.NewRequest(chaseterm.AnalyzeChase, rules, all...))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chase.Outcome != chaseterm.Terminated {
		t.Fatalf("outcome %v, want terminated", rep.Chase.Outcome)
	}
	return rep
}

// TestWithParallelismChaseIdentical: a chase through the facade with
// WithParallelism(8) must report the identical outcome, statistics,
// engine counters (the stripe-aggregated TriggersEnqueued and
// MaxTermDepth included), and final instance as a sequential run.
func TestWithParallelismChaseIdentical(t *testing.T) {
	seq := chaseWith(t)
	par := chaseWith(t, chaseterm.WithParallelism(8))
	if par.Chase.Stats != seq.Chase.Stats {
		t.Errorf("stats %+v, sequential %+v", par.Chase.Stats, seq.Chase.Stats)
	}
	if *par.Engine != *seq.Engine {
		t.Errorf("engine stats %+v, sequential %+v", *par.Engine, *seq.Engine)
	}
	if !reflect.DeepEqual(par.Chase.Facts(), seq.Chase.Facts()) {
		t.Errorf("instances differ: %d vs %d facts", len(par.Chase.Facts()), len(seq.Chase.Facts()))
	}
}

// TestWithParallelismDecideIdentical: WithParallelism also reaches the
// deciders' internal oracle chases; on a general rule set that the
// bounded critical chase decides, the verdict must be unchanged.
func TestWithParallelismDecideIdentical(t *testing.T) {
	// Two unguarded body atoms → class general; terminating, so the
	// fallback ladder reaches a decisive verdict either way.
	rules := chaseterm.MustParseRules(`p(X), q(Y) -> r(X,Y). r(X,Y) -> s(Y).`)
	decide := func(opts ...chaseterm.RequestOption) *chaseterm.Verdict {
		t.Helper()
		rep, err := an.Analyze(context.Background(),
			chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules, opts...))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Verdict
	}
	seq := decide()
	par := decide(chaseterm.WithParallelism(8))
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("parallel verdict %+v, sequential %+v", par, seq)
	}
	if seq.Terminates != chaseterm.Yes {
		t.Errorf("verdict %v, want terminating", seq.Terminates)
	}
}

// TestExplicitWorkersBeatsParallelism: an explicit Workers in the chase
// budgets wins over the request-level WithParallelism default. Forcing
// Workers 1 under WithParallelism(8) must run the sequential engine —
// observable here only through equality with a plain sequential run,
// which also pins that the precedence plumbing compiles into effect.
func TestExplicitWorkersBeatsParallelism(t *testing.T) {
	seq := chaseWith(t)
	par := chaseWith(t,
		chaseterm.WithChaseBudgets(chaseterm.ChaseOptions{Workers: 1}),
		chaseterm.WithParallelism(8))
	if par.Chase.Stats != seq.Chase.Stats {
		t.Errorf("stats %+v, sequential %+v", par.Chase.Stats, seq.Chase.Stats)
	}
}
