package chaseterm_test

import (
	"context"

	"chaseterm"
)

// Compile-time pins of the pre-Analyzer facade. The functions below are
// deprecated wrappers over Analyzer.Analyze, but their signatures are
// public API: if any of these assignments stops compiling, a released
// caller breaks. Change this file only with a major-version bump.
var (
	_ func(string) (*chaseterm.RuleSet, error)     = chaseterm.ParseRules
	_ func(string) *chaseterm.RuleSet              = chaseterm.MustParseRules
	_ func(string) (*chaseterm.Database, error)    = chaseterm.ParseDatabase
	_ func(string) *chaseterm.Database             = chaseterm.MustParseDatabase
	_ func(string) (chaseterm.Variant, error)      = chaseterm.ParseVariant
	_ func(*chaseterm.RuleSet) *chaseterm.Database = chaseterm.CriticalDatabase

	_ func(*chaseterm.RuleSet, chaseterm.Variant) (*chaseterm.Verdict, error)                                           = chaseterm.DecideTermination
	_ func(context.Context, *chaseterm.RuleSet, chaseterm.Variant) (*chaseterm.Verdict, error)                          = chaseterm.DecideTerminationContext
	_ func(*chaseterm.RuleSet, chaseterm.Variant, chaseterm.DecideOptions) (*chaseterm.Verdict, error)                  = chaseterm.DecideTerminationOpts
	_ func(context.Context, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.DecideOptions) (*chaseterm.Verdict, error) = chaseterm.DecideTerminationOptsContext
	_ func(*chaseterm.Database, *chaseterm.RuleSet, chaseterm.Variant) (*chaseterm.Verdict, error)                      = chaseterm.DecideTerminationOnDatabase
	_ func(context.Context, *chaseterm.Database, *chaseterm.RuleSet, chaseterm.Variant) (*chaseterm.Verdict, error)     = chaseterm.DecideTerminationOnDatabaseContext

	_ func(*chaseterm.Database, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.ChaseOptions) (*chaseterm.ChaseResult, error)                  = chaseterm.RunChase
	_ func(context.Context, *chaseterm.Database, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.ChaseOptions) (*chaseterm.ChaseResult, error) = chaseterm.RunChaseContext

	_ func(*chaseterm.RuleSet) chaseterm.AcyclicityReport                                                       = chaseterm.CheckAcyclicity
	_ func(*chaseterm.Database, *chaseterm.RuleSet, chaseterm.ExploreOptions) (*chaseterm.ExploreResult, error) = chaseterm.ExploreRestrictedSequences
	_ func(chaseterm.EntailmentInstance) (*chaseterm.RuleSet, error)                                            = chaseterm.LoopEntailment
	_ func(chaseterm.EntailmentInstance) (bool, error)                                                          = chaseterm.Entails

	// Result shapes: fields the old facade exposed must keep their types.
	_ chaseterm.Ternary      = chaseterm.Verdict{}.Terminates
	_ chaseterm.Class        = chaseterm.Verdict{}.Class
	_ string                 = chaseterm.Verdict{}.Method
	_ string                 = chaseterm.Verdict{}.Witness
	_ int                    = chaseterm.Verdict{}.SearchSpace
	_ chaseterm.ChaseOutcome = chaseterm.ChaseResult{}.Outcome
	_ chaseterm.ChaseStats   = chaseterm.ChaseResult{}.Stats
	_ bool                   = chaseterm.AcyclicityReport{}.RichlyAcyclic
	_ bool                   = chaseterm.AcyclicityReport{}.WeaklyAcyclic
	_ bool                   = chaseterm.AcyclicityReport{}.JointlyAcyclic
)

// Deprecated portfolio-era wrappers: the bool-only joint-acyclicity
// check pre-dates the (bool, *Witness) form and stays available.
var _ func(*chaseterm.RuleSet) bool = chaseterm.IsJointlyAcyclicBool

// Enum values are part of the wire-adjacent API as well.
var (
	_ = chaseterm.Oblivious
	_ = chaseterm.SemiOblivious
	_ = chaseterm.Restricted
	_ = chaseterm.SimpleLinear
	_ = chaseterm.Linear
	_ = chaseterm.Guarded
	_ = chaseterm.General
	_ = chaseterm.Terminated
	_ = chaseterm.BudgetExceeded
	_ = chaseterm.DepthExceeded
	_ = chaseterm.Canceled
	_ = chaseterm.Unknown
	_ = chaseterm.Yes
	_ = chaseterm.No
	_ = chaseterm.DefaultMaxShapes
	_ = chaseterm.DefaultMaxNodeTypes
)
