// Command chase runs a chase variant over a database and a rule set.
//
// Usage:
//
//	chase [-variant o|so|r] [-max-triggers N] [-max-facts N] [-print] rules.dl db.dl
//
// Files use the Datalog± syntax of the library: `body -> head.` rules with
// upper-case variables, and ground facts `p(a,b).`. The tool prints run
// statistics and, with -print, the final instance.
package main

import (
	"flag"
	"fmt"
	"os"

	"chaseterm"
)

func main() {
	variant := flag.String("variant", "so", "chase variant: o|so|r (oblivious, semi-oblivious, restricted)")
	maxTriggers := flag.Int("max-triggers", 100000, "trigger budget (0 = default)")
	maxFacts := flag.Int("max-facts", 100000, "fact budget (0 = default)")
	printFacts := flag.Bool("print", false, "print the final instance")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chase [flags] rules.dl db.dl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*variant, flag.Arg(0), flag.Arg(1), *maxTriggers, *maxFacts, *printFacts); err != nil {
		fmt.Fprintln(os.Stderr, "chase:", err)
		os.Exit(1)
	}
}

func run(variantName, rulesPath, dbPath string, maxTriggers, maxFacts int, printFacts bool) error {
	v, err := chaseterm.ParseVariant(variantName)
	if err != nil {
		return err
	}
	rulesText, err := os.ReadFile(rulesPath)
	if err != nil {
		return err
	}
	rules, err := chaseterm.ParseRules(string(rulesText))
	if err != nil {
		return err
	}
	dbText, err := os.ReadFile(dbPath)
	if err != nil {
		return err
	}
	db, err := chaseterm.ParseDatabase(string(dbText))
	if err != nil {
		return err
	}
	fmt.Printf("rules: %d (%s), database: %d facts, variant: %s\n",
		rules.NumRules(), rules.Classify(), db.Size(), v)
	res, err := chaseterm.RunChase(db, rules, v, chaseterm.ChaseOptions{
		MaxTriggers: maxTriggers,
		MaxFacts:    maxFacts,
	})
	if err != nil {
		return err
	}
	fmt.Printf("outcome: %s\n", res.Outcome)
	s := res.Stats
	fmt.Printf("facts: %d initial + %d derived\n", s.InitialFacts, s.FactsAdded)
	fmt.Printf("triggers: %d applied, %d no-op, %d already satisfied\n",
		s.TriggersApplied, s.TriggersNoop, s.TriggersSatisfied)
	fmt.Printf("max invented-term depth: %d\n", s.MaxTermDepth)
	if res.Outcome != chaseterm.Terminated {
		fmt.Println("note: budget hit — the run may or may not be terminating;" +
			" use termcheck for an exact decision")
	}
	if printFacts {
		for _, f := range res.Facts() {
			fmt.Println(f + ".")
		}
	}
	return nil
}
