// Command chase runs a chase variant over a database and a rule set.
//
// Usage:
//
//	chase [-variant o|so|r] [-max-triggers N] [-max-facts N] [-workers N]
//	      [-print] [-stream] [-stats] [-precheck] rules.dl db.dl
//
// Files use the Datalog± syntax of the library: `body -> head.` rules with
// upper-case variables, and ground facts `p(a,b).`. The tool prints run
// statistics and, with -print, the final instance. With -stream, derived
// facts are printed incrementally as the run produces them — useful for
// watching a long chase make progress, and for piping a huge instance
// without holding it rendered in memory twice. With -stats, the report's
// per-stage timings and full engine counter set are printed as well.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaseterm"
)

func main() {
	variant := flag.String("variant", "so", "chase variant: o|so|r (oblivious, semi-oblivious, restricted)")
	maxTriggers := flag.Int("max-triggers", 100000, "trigger budget (0 = default)")
	maxFacts := flag.Int("max-facts", 100000, "fact budget (0 = default)")
	workers := flag.Int("workers", 0, "match parallelism; results are identical at every count (0 or 1 = sequential)")
	printFacts := flag.Bool("print", false, "print the final instance")
	stream := flag.Bool("stream", false, "print derived facts incrementally as the run produces them")
	stats := flag.Bool("stats", false, "print per-stage timings and engine counters from the report")
	precheck := flag.Bool("precheck", false, "run the termination portfolio on the rules before chasing and report whether the run is guaranteed to terminate")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chase [flags] rules.dl db.dl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM stops the run cooperatively; the partial stats up
	// to the interruption are still reported (outcome "canceled").
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal, restore default handling so a second
	// Ctrl-C force-kills even while -print renders a huge partial
	// instance.
	go func() { <-ctx.Done(); stop() }()
	if err := run(ctx, *variant, flag.Arg(0), flag.Arg(1), *maxTriggers, *maxFacts, *workers, *printFacts, *stream, *stats, *precheck); err != nil {
		if errors.Is(err, context.Canceled) {
			// Partial stats were already printed; exit with the
			// conventional interrupted status so wrappers stop too.
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "chase:", err)
		os.Exit(1)
	}
}

// printSink streams derived facts to stdout as the engine produces
// them (the -stream flag).
type printSink struct{}

func (printSink) EmitFacts(facts []string, _ chaseterm.ChaseStats) {
	for _, f := range facts {
		fmt.Println(f + ".")
	}
}

func (printSink) Progress(chaseterm.ChaseStats) {}

func run(ctx context.Context, variantName, rulesPath, dbPath string, maxTriggers, maxFacts, workers int, printFacts, stream, stats, precheck bool) error {
	v, err := chaseterm.ParseVariant(variantName)
	if err != nil {
		return err
	}
	rulesText, err := os.ReadFile(rulesPath)
	if err != nil {
		return err
	}
	rules, err := chaseterm.ParseRules(string(rulesText))
	if err != nil {
		return err
	}
	dbText, err := os.ReadFile(dbPath)
	if err != nil {
		return err
	}
	db, err := chaseterm.ParseDatabase(string(dbText))
	if err != nil {
		return err
	}
	fmt.Printf("rules: %d (%s), database: %d facts, variant: %s\n",
		rules.NumRules(), rules.Classify(), db.Size(), v)
	var analyzer chaseterm.Analyzer
	if precheck {
		if err := runPrecheck(ctx, &analyzer, rules, v); err != nil {
			return err
		}
	}
	opts := []chaseterm.RequestOption{
		chaseterm.WithDatabase(db),
		chaseterm.WithVariant(v),
		chaseterm.WithChaseBudgets(chaseterm.ChaseOptions{
			MaxTriggers: maxTriggers,
			MaxFacts:    maxFacts,
		}),
		chaseterm.WithParallelism(workers),
	}
	if stream {
		opts = append(opts, chaseterm.WithChaseSink(printSink{}))
	}
	rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules, opts...))
	if rep == nil {
		return err
	}
	res := rep.Chase
	fmt.Printf("outcome: %s\n", res.Outcome)
	s := res.Stats
	fmt.Printf("facts: %d initial + %d derived\n", s.InitialFacts, s.FactsAdded)
	fmt.Printf("triggers: %d applied, %d no-op, %d already satisfied\n",
		s.TriggersApplied, s.TriggersNoop, s.TriggersSatisfied)
	fmt.Printf("max invented-term depth: %d\n", s.MaxTermDepth)
	if stats {
		printReportStats(rep)
	}
	switch res.Outcome {
	case chaseterm.Terminated:
	case chaseterm.Canceled:
		fmt.Println("note: interrupted — stats cover the work done before cancellation")
	default:
		fmt.Println("note: budget hit — the run may or may not be terminating;" +
			" use termcheck for an exact decision")
	}
	if printFacts {
		for _, f := range res.Facts() {
			fmt.Println(f + ".")
		}
	}
	// err is non-nil exactly when the run was canceled: the stats above
	// are the partial picture, and the caller still needs to see the
	// interruption (a wrapper script must not mistake it for success).
	return err
}

// runPrecheck runs the all-instance termination portfolio on the rules
// before any chasing, so the user learns up front whether the run ahead
// is guaranteed to finish or is gambling against the trigger budget.
// The answer is advisory: "non-terminating" and "unknown" speak about
// SOME database, so the chase still runs — this database may be fine.
func runPrecheck(ctx context.Context, analyzer *chaseterm.Analyzer, rules *chaseterm.RuleSet, v chaseterm.Variant) error {
	rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithVariant(v), chaseterm.WithPortfolio(chaseterm.PortfolioOptions{})))
	if err != nil {
		return err
	}
	decidedBy := ""
	if rep.Portfolio != nil && rep.Portfolio.DecidedBy != "" {
		decidedBy = " (decided by " + rep.Portfolio.DecidedBy + ")"
	}
	fmt.Printf("precheck: all-instance termination is %s%s\n", rep.Verdict.Terminates, decidedBy)
	if rep.Verdict.Terminates != chaseterm.Yes {
		fmt.Println("precheck: the verdict quantifies over all databases — this run may still terminate")
	}
	return nil
}

// printReportStats renders the -stats section: the report's per-stage
// elapsed times and, for chase runs, the engine's full counter set
// (including the enqueue count the summary lines above leave out).
func printReportStats(rep *chaseterm.Report) {
	t := rep.Timings
	fmt.Printf("timings: classify %s, chase %s, render %s, total %s\n",
		fmtDur(t.Classify), fmtDur(t.Chase), fmtDur(t.Render), fmtDur(t.Total))
	if e := rep.Engine; e != nil {
		fmt.Printf("engine: %d triggers enqueued, %d applied, %d no-op, %d satisfied\n",
			e.TriggersEnqueued, e.TriggersApplied, e.TriggersNoop, e.TriggersSatisfied)
		fmt.Printf("engine: %d facts initial, %d derived, max term depth %d\n",
			e.InitialFacts, e.FactsAdded, e.MaxTermDepth)
	}
}

// fmtDur rounds a stage duration for display; sub-10µs stages print as
// their exact value rather than a misleading "0s".
func fmtDur(d time.Duration) string {
	if r := d.Round(10 * time.Microsecond); r != 0 {
		return r.String()
	}
	return d.String()
}
