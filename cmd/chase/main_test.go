package main

import (
	"context"
	"testing"
)

func TestRunOntology(t *testing.T) {
	err := run(context.Background(), "r", "../../testdata/ontology.dl", "../../testdata/ontology_db.dl", 1000, 1000, 2, false, false, true, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunOntologyStreamed(t *testing.T) {
	err := run(context.Background(), "r", "../../testdata/ontology.dl", "../../testdata/ontology_db.dl", 1000, 1000, 0, false, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDivergentBudget(t *testing.T) {
	err := run(context.Background(), "so", "../../testdata/example1.dl", "../../testdata/example1_db.dl", 50, 1000, 8, true, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPrecheck(t *testing.T) {
	err := run(context.Background(), "so", "../../testdata/ontology.dl", "../../testdata/ontology_db.dl", 1000, 1000, 0, false, false, false, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "zzz", "../../testdata/ontology.dl", "../../testdata/ontology_db.dl", 10, 10, 0, false, false, false, false); err == nil {
		t.Error("bad variant accepted")
	}
	if err := run(context.Background(), "so", "../../testdata/missing.dl", "../../testdata/ontology_db.dl", 10, 10, 0, false, false, false, false); err == nil {
		t.Error("missing rules file accepted")
	}
	if err := run(context.Background(), "so", "../../testdata/ontology.dl", "../../testdata/missing.dl", 10, 10, 0, false, false, false, false); err == nil {
		t.Error("missing db file accepted")
	}
	// Rules file given as database (facts expected): parse error.
	if err := run(context.Background(), "so", "../../testdata/ontology.dl", "../../testdata/ontology.dl", 10, 10, 0, false, false, false, false); err == nil {
		t.Error("rules-as-database accepted")
	}
}
