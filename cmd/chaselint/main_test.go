package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate repository root")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
}

func tempFile(t *testing.T) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestExitCodes pins the CLI contract: 0 on a clean tree, 1 on
// findings, 2 on a load error.
func TestExitCodes(t *testing.T) {
	root := repoRoot(t)
	stdout, stderr := tempFile(t), tempFile(t)

	// The lint package itself is clean.
	if code := run([]string{"-C", root, "./internal/lint"}, stdout, stderr); code != 0 {
		data, _ := os.ReadFile(stdout.Name())
		t.Errorf("clean package: exit %d, want 0\n%s", code, data)
	}

	// The hotpath fixture is seeded with violations.
	if code := run([]string{"-C", root, "internal/lint/testdata/src/hotpath"}, stdout, stderr); code != 1 {
		t.Errorf("fixture package: exit %d, want 1", code)
	}

	// A directory outside any module cannot load.
	if code := run([]string{"-C", t.TempDir()}, stdout, stderr); code != 2 {
		t.Errorf("no module: exit %d, want 2", code)
	}
}

// TestJSONReportFile pins the -o artifact: a machine-readable report CI
// uploads even when the run fails.
func TestJSONReportFile(t *testing.T) {
	root := repoRoot(t)
	stdout, stderr := tempFile(t), tempFile(t)
	reportPath := filepath.Join(t.TempDir(), "report.json")

	code := run([]string{"-C", root, "-json", "-o", reportPath, "internal/lint/testdata/src/api"}, stdout, stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Packages int `json:"packages"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if len(report.Findings) == 0 {
		t.Fatal("api fixture produced no findings")
	}
	for _, f := range report.Findings {
		if f.Analyzer != "wiretags" || f.File == "" || f.Line == 0 {
			t.Errorf("malformed finding: %+v", f)
		}
	}

	// stdout got the same JSON document.
	stdoutData, err := os.ReadFile(stdout.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(stdoutData) {
		t.Errorf("-json stdout is not valid JSON:\n%s", stdoutData)
	}
}
