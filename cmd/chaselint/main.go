// Command chaselint runs the project's static-analysis suite
// (internal/lint) over the module: six analyzers enforcing the
// invariants the runtime tests pin — the allocation-free hot path,
// context flow, lock discipline, goroutine drains, the deprecation
// boundary, and the json-tagged wire contract.
//
// Usage:
//
//	chaselint [-json] [-o report.json] [-C dir] [packages]
//
// Packages default to ./... relative to the enclosing module. Findings
// print one per line as file:line: analyzer: message (-json switches to
// the machine-readable report); the exit status is 1 when there are
// findings, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"chaseterm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("chaselint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "print the report as JSON instead of one finding per line")
	reportPath := fs.String("o", "", "also write the JSON report to this file (for CI artifacts)")
	chdir := fs.String("C", "", "analyze the module containing this directory (default: the working directory)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir := *chdir
	if dir == "" {
		dir = "."
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	report := lint.Run(loader, pkgs, lint.All())

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		werr := report.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, werr)
			return 2
		}
	}
	if *jsonOut {
		if err := report.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else if err := report.WriteText(stdout); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(report.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "chaselint: %d finding(s) across %d package(s)\n", len(report.Findings), report.Packages)
		}
		return 1
	}
	return 0
}
