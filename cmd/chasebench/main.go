// Command chasebench regenerates the experiment suite of EXPERIMENTS.md:
// one table or scaling series per theorem/claim of "Chase Termination for
// Guarded Existential Rules" (Calautti, Gottlob, Pieris; PODS 2015). See
// DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	chasebench [-quick] [-run e1,e3,...]   (default: all experiments)
//	chasebench -bench [-quick] [-label s] [-o BENCH_chase.json]
//	chasebench -check BENCH_chase.json
//
// The default mode prints GitHub-flavoured markdown experiment tables on
// stdout. -bench instead runs the tracked hot-path benchmark suite and
// emits the chasebench/v1 JSON report (see BENCH_chase.json at the repo
// root for the committed perf trajectory); -check validates such a report
// structurally and exits non-zero on schema violations.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/chase"
	"chaseterm/internal/core"
	"chaseterm/internal/critical"
	"chaseterm/internal/logic"
	"chaseterm/internal/looping"
	"chaseterm/internal/parse"
	"chaseterm/internal/workload"
)

type experiment struct {
	id    string
	title string
	run   func(w io.Writer, quick bool) error
}

var experiments = []experiment{
	{"e1", "Example 1 — the chase may run forever", runE1},
	{"e2", "Example 2 — a single non-terminating sequence", runE2},
	{"e3", "Theorem 1 (SL, semi-oblivious): CT^so ∩ SL = WA ∩ SL", runE3},
	{"e4", "Theorem 1 (SL, oblivious): CT^o ∩ SL = RA ∩ SL", runE4},
	{"e5", "Theorem 2 (L): critical acyclicity vs plain WA/RA", runE5},
	{"e6", "Theorem 3(1): SL decision scales like reachability (NL)", runE6},
	{"e7", "Theorem 3(2): linear decision vs arity (PSPACE) and vs rules at fixed arity (NL)", runE7},
	{"e8", "Theorem 4 (G): guarded decider — agreement and scaling", runE8},
	{"e9", "Looping operator: entailment → complement of termination", runE9},
	{"e10", "Chase anatomy: oblivious vs semi-oblivious vs restricted", runE10},
	{"e11", "Containments: CT^o ⊆ CT^so, RA ⊆ WA, SL ⊆ L ⊆ G", runE11},
	{"e12", "aux-transformation: CT^o(Σ) = CT^so(aux(Σ))", runE12},
	{"e13", "Restricted chase: the ∀-sequence/∃-sequence gap (§2/§4)", runE13},
	{"e14", "Criteria ladder: RA ⊆ WA ⊆ JA ⊆ exact — coverage on random linear sets", runE14},
}

func main() {
	quick := flag.Bool("quick", false, "smaller workloads (CI-friendly)")
	runList := flag.String("run", "", "comma-separated experiment ids (default: all)")
	bench := flag.Bool("bench", false, "run the tracked benchmark suite and emit chasebench/v1 JSON")
	benchOut := flag.String("o", "", "with -bench: write the JSON report to this file (default stdout)")
	benchLabel := flag.String("label", "current", "with -bench: label recorded for the run")
	check := flag.String("check", "", "validate a chasebench/v1 JSON report and exit")
	flag.Parse()
	if *check != "" {
		if err := checkBenchReport(*check); err != nil {
			fmt.Fprintf(os.Stderr, "chasebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid chasebench/v1 report\n", *check)
		return
	}
	if *bench {
		out := io.Writer(os.Stdout)
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chasebench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := runBenchSuite(out, *quick, *benchLabel); err != nil {
			fmt.Fprintf(os.Stderr, "chasebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("## %s — %s\n\n", strings.ToUpper(e.id), e.title)
		if err := e.run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "chasebench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func decideLin(rs *logic.RuleSet, v core.ChaseVariant) core.Answer {
	res, err := core.DecideLinearContext(context.Background(), rs, v, core.Options{})
	if err != nil {
		panic(err)
	}
	return res.Verdict.Answer
}

func oracle(rs *logic.RuleSet, v chase.Variant, budget int) core.Answer {
	res, err := critical.OracleContext(context.Background(), rs, v, chase.Options{MaxTriggers: budget, MaxFacts: budget})
	if err != nil {
		panic(err)
	}
	if res.Outcome == chase.Terminated {
		return core.Terminating
	}
	return core.NonTerminating
}

// ---------------------------------------------------------------------------

func runE1(w io.Writer, quick bool) error {
	rules := workload.Example1()
	db := workload.Example1DB()
	fmt.Fprintf(w, "Rule: `%s`; database `person(bob)`.\n\n", rules.Rules[0])
	fmt.Fprintln(w, "| variant | triggers applied | facts derived | outcome |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, v := range []chase.Variant{chase.Oblivious, chase.SemiOblivious, chase.Restricted} {
		res, err := chase.RunFromAtomsContext(context.Background(), db, rules, v, chase.Options{MaxTriggers: 1000})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %d | %d | %s |\n", v, res.Stats.TriggersApplied, res.Stats.FactsAdded, res.Outcome)
	}
	v, err := core.DecideContext(context.Background(), rules, core.VariantSemiOblivious, core.DecideOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nExact decision (CT^so): **%s** by %s.\n", v.Answer, v.Method)
	return nil
}

func runE2(w io.Writer, quick bool) error {
	rules := workload.Example2()
	db := workload.Example2DB()
	fmt.Fprintf(w, "Rule: `%s`; database `p(a,b)`.\n\n", rules.Rules[0])
	fmt.Fprintln(w, "Growth of the (unique) chase sequence — |I_i| = 1 + i, matching the paper:")
	fmt.Fprintln(w, "\n| steps i | facts |")
	fmt.Fprintln(w, "|---|---|")
	for _, steps := range []int{1, 5, 25, 125} {
		res, err := chase.RunFromAtomsContext(context.Background(), db, rules, chase.SemiOblivious, chase.Options{MaxTriggers: steps})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %d |\n", steps, res.Stats.InitialFacts+res.Stats.FactsAdded)
	}
	for _, cv := range []core.ChaseVariant{core.VariantOblivious, core.VariantSemiOblivious} {
		fmt.Fprintf(w, "\nCT^%s: **%s**.", cv, decideLin(rules, cv))
	}
	fmt.Fprintln(w)
	return nil
}

func slAgreement(w io.Writer, quick bool, variant core.ChaseVariant) error {
	n := 3000
	if quick {
		n = 300
	}
	rng := rand.New(rand.NewSource(11))
	acyc, agreeAcyc, agreeOracle, terminating := 0, 0, 0, 0
	budget := 6000
	for i := 0; i < n; i++ {
		rs := workload.RandomSL(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		var pos bool
		if variant == core.VariantSemiOblivious {
			pos, _ = acyclicity.IsWeaklyAcyclic(rs)
		} else {
			pos, _ = acyclicity.IsRichlyAcyclic(rs)
		}
		dec := decideLin(rs, variant)
		cv := chase.SemiOblivious
		if variant == core.VariantOblivious {
			cv = chase.Oblivious
		}
		emp := oracle(rs, cv, budget)
		if pos {
			acyc++
		}
		if pos == (dec == core.Terminating) {
			agreeAcyc++
		}
		if emp == dec {
			agreeOracle++
		}
		if dec == core.Terminating {
			terminating++
		}
	}
	name := "WA"
	if variant == core.VariantOblivious {
		name = "RA"
	}
	fmt.Fprintf(w, "| random SL sets | %s holds | decider says terminating | %s = decider | decider = chase oracle |\n", name, name)
	fmt.Fprintln(w, "|---|---|---|---|---|")
	fmt.Fprintf(w, "| %d | %d | %d | %d (%.1f%%) | %d (%.1f%%) |\n",
		n, acyc, terminating, agreeAcyc, 100*float64(agreeAcyc)/float64(n),
		agreeOracle, 100*float64(agreeOracle)/float64(n))
	fmt.Fprintf(w, "\nExpected: both agreement columns 100%% (Theorem 1).\n")
	return nil
}

func runE3(w io.Writer, quick bool) error { return slAgreement(w, quick, core.VariantSemiOblivious) }
func runE4(w io.Writer, quick bool) error { return slAgreement(w, quick, core.VariantOblivious) }

func runE5(w io.Writer, quick bool) error {
	n := 3000
	if quick {
		n = 300
	}
	rng := rand.New(rand.NewSource(12))
	waWrong, raWrong, agreeSO, agreeO := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 3, NumRules: 3, RepeatProb: 0.5})
		so := decideLin(rs, core.VariantSemiOblivious)
		o := decideLin(rs, core.VariantOblivious)
		if wa, _ := acyclicity.IsWeaklyAcyclic(rs); !wa && so == core.Terminating {
			waWrong++
		}
		if ra, _ := acyclicity.IsRichlyAcyclic(rs); !ra && o == core.Terminating {
			raWrong++
		}
		if oracle(rs, chase.SemiOblivious, 6000) == so {
			agreeSO++
		}
		if oracle(rs, chase.Oblivious, 6000) == o {
			agreeO++
		}
	}
	fmt.Fprintln(w, "| random L sets | WA too weak (false alarm) | RA too weak | critical-WA = oracle | critical-RA = oracle |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	fmt.Fprintf(w, "| %d | %d | %d | %d (%.1f%%) | %d (%.1f%%) |\n",
		n, waWrong, raWrong, agreeSO, 100*float64(agreeSO)/float64(n), agreeO, 100*float64(agreeO)/float64(n))
	fmt.Fprintf(w, "\nExpected: positive counts in the first two columns (plain acyclicity is\n"+
		"incomplete on L — the paper's motivation for Theorem 2) and 100%% in the last two.\n")
	fmt.Fprintf(w, "\nCanonical witness: `p(X,X) -> p(X,Z)` — not WA, yet CT^so: **%s**.\n",
		decideLin(mustRules(`p(X,X) -> p(X,Z).`), core.VariantSemiOblivious))
	return nil
}

func runE6(w io.Writer, quick bool) error {
	sizes := []int{4, 16, 64, 256, 1024}
	if quick {
		sizes = []int{4, 16, 64}
	}
	fmt.Fprintln(w, "| rules n | shapes | decision time (cycle closed) | verdict | time (open chain) | verdict |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	for _, n := range sizes {
		closed := workload.SLFamily(n, true)
		open := workload.SLFamily(n, false)
		t0 := time.Now()
		rc, err := core.DecideLinearContext(context.Background(), closed, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			return err
		}
		dtClosed := time.Since(t0)
		t0 = time.Now()
		ro, err := core.DecideLinearContext(context.Background(), open, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			return err
		}
		dtOpen := time.Since(t0)
		fmt.Fprintf(w, "| %d | %d | %v | %s | %v | %s |\n",
			n, rc.Verdict.ShapeCount, dtClosed.Round(time.Microsecond), rc.Verdict.Answer,
			dtOpen.Round(time.Microsecond), ro.Verdict.Answer)
	}
	fmt.Fprintln(w, "\nExpected: near-linear growth in n — the decision is graph reachability (NL).")
	return nil
}

func runE7(w io.Writer, quick bool) error {
	arities := []int{2, 3, 4, 5, 6, 7}
	if quick {
		arities = []int{2, 3, 4, 5}
	}
	fmt.Fprintln(w, "Arity sweep (one predicate of arity w, rotation + merge rules):")
	fmt.Fprintln(w, "\n| arity w | reachable shapes | decision time | verdict |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, arity := range arities {
		rs := workload.LinearArityFamily(arity)
		t0 := time.Now()
		res, err := core.DecideLinearContext(context.Background(), rs, core.VariantSemiOblivious, core.Options{MaxShapes: 5_000_000})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %d | %v | %s |\n",
			arity, res.Verdict.ShapeCount, time.Since(t0).Round(time.Microsecond), res.Verdict.Answer)
	}
	fmt.Fprintln(w, "\nFixed arity 2, growing rule count (bounded-arity NL claim):")
	fmt.Fprintln(w, "\n| rules n | shapes | decision time |")
	fmt.Fprintln(w, "|---|---|---|")
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{8, 32, 128} {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 4, MaxArity: 2, NumRules: n, RepeatProb: 0.4})
		t0 := time.Now()
		res, err := core.DecideLinearContext(context.Background(), rs, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %d | %v |\n", n, res.Verdict.ShapeCount, time.Since(t0).Round(time.Microsecond))
	}
	fmt.Fprintln(w, "\nExpected: exponential growth in w (PSPACE-shaped), polynomial in n at fixed arity.")
	return nil
}

func runE8(w io.Writer, quick bool) error {
	n := 1500
	if quick {
		n = 150
	}
	rng := rand.New(rand.NewSource(14))
	agree, terminating := 0, 0
	for i := 0; i < n; i++ {
		rs := workload.RandomGuarded(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3, MaxSideAtoms: 2})
		res, err := core.DecideGuardedContext(context.Background(), rs, core.Options{})
		if err != nil {
			return err
		}
		if res.Verdict.Answer == core.Terminating {
			terminating++
		}
		if oracle(rs, chase.SemiOblivious, 6000) == res.Verdict.Answer {
			agree++
		}
	}
	fmt.Fprintln(w, "| random G sets | decider terminating | decider = chase oracle |")
	fmt.Fprintln(w, "|---|---|---|")
	fmt.Fprintf(w, "| %d | %d | %d (%.1f%%) |\n", n, terminating, agree, 100*float64(agree)/float64(n))

	fmt.Fprintln(w, "\nScaling with guard arity (gate family, terminating):")
	fmt.Fprintln(w, "\n| arity w | node types | decision time |")
	fmt.Fprintln(w, "|---|---|---|")
	arities := []int{1, 2, 3}
	if !quick {
		arities = append(arities, 4)
	}
	for _, arity := range arities {
		rs := workload.GuardedArityFamily(arity)
		t0 := time.Now()
		res, err := core.DecideGuardedContext(context.Background(), rs, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %d | %v |\n", arity, res.Verdict.NodeTypeCount, time.Since(t0).Round(time.Microsecond))
	}
	fmt.Fprintln(w, "\nExpected: 100% agreement (Theorem 4 decidability); steep growth in w\n"+
		"(EXPTIME for bounded arity, 2EXPTIME in general).")
	return nil
}

func runE9(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "| instance | entailed? | looped verdict (CT^so) | correct | decision time |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	type c struct {
		name string
		inst looping.Instance
	}
	ks := []int{2, 8, 32}
	bs := []int{2, 4, 6}
	if quick {
		ks = []int{2, 8}
		bs = []int{2, 4}
	}
	var cases []c
	for _, k := range ks {
		cases = append(cases, c{fmt.Sprintf("chain(%d) yes", k), looping.Chain(k, true)})
		cases = append(cases, c{fmt.Sprintf("chain(%d) no", k), looping.Chain(k, false)})
	}
	for _, b := range bs {
		cases = append(cases, c{fmt.Sprintf("counter(%d)", b), looping.Counter(b)})
	}
	for _, tc := range cases {
		ent, err := looping.EntailedContext(context.Background(), tc.inst, chase.Options{})
		if err != nil {
			return err
		}
		looped, err := looping.Loop(tc.inst)
		if err != nil {
			return err
		}
		t0 := time.Now()
		res, err := core.DecideLinearContext(context.Background(), looped, core.VariantSemiOblivious, core.Options{MaxShapes: 5_000_000})
		if err != nil {
			return err
		}
		dt := time.Since(t0)
		correct := (res.Verdict.Answer == core.NonTerminating) == ent
		fmt.Fprintf(w, "| %s | %v | %s | %v | %v |\n", tc.name, ent, res.Verdict.Answer, correct, dt.Round(time.Microsecond))
	}
	fmt.Fprintln(w, "\nExpected: `correct` everywhere — termination is the complement of entailment\n"+
		"(the paper's looping-operator reduction), with counter time growing in b.")
	return nil
}

func runE10(w io.Writer, quick bool) error {
	scenarios := []struct {
		name  string
		rules *logic.RuleSet
		db    []logic.Atom
	}{
		{"ontology (DL-Lite-style, SL)", workload.OntologySL(), workload.OntologyDB()},
		{"data exchange (Fagin et al. style)", workload.DataExchange(), workload.DataExchangeDB()},
	}
	fmt.Fprintln(w, "| scenario | variant | triggers | no-op triggers | satisfied-skip | facts |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|")
	for _, sc := range scenarios {
		for _, v := range []chase.Variant{chase.Oblivious, chase.SemiOblivious, chase.Restricted} {
			res, err := chase.RunFromAtomsContext(context.Background(), sc.db, sc.rules, v, chase.Options{})
			if err != nil {
				return err
			}
			if res.Outcome != chase.Terminated {
				return fmt.Errorf("%s/%s did not terminate", sc.name, v)
			}
			fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %d |\n", sc.name, v,
				res.Stats.TriggersApplied, res.Stats.TriggersNoop, res.Stats.TriggersSatisfied,
				res.Stats.InitialFacts+res.Stats.FactsAdded)
		}
	}
	fmt.Fprintln(w, "\nExpected: semi-oblivious ≤ oblivious in triggers and facts (it skips the\n"+
		"\"superfluous\" triggers of §2); restricted smallest.")
	return nil
}

func runE11(w io.Writer, quick bool) error {
	n := 2000
	if quick {
		n = 200
	}
	rng := rand.New(rand.NewSource(15))
	ctViol, raViol, clsViol := 0, 0, 0
	for i := 0; i < n; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3, RepeatProb: 0.3})
		o := decideLin(rs, core.VariantOblivious)
		so := decideLin(rs, core.VariantSemiOblivious)
		if o == core.Terminating && so != core.Terminating {
			ctViol++
		}
		ra, _ := acyclicity.IsRichlyAcyclic(rs)
		wa, _ := acyclicity.IsWeaklyAcyclic(rs)
		if ra && !wa {
			raViol++
		}
		for _, r := range rs.Rules {
			if r.IsSimpleLinear() && !r.IsLinear() || r.IsLinear() && !r.IsGuarded() {
				clsViol++
			}
		}
	}
	fmt.Fprintln(w, "| random sets | CT^o ⊆ CT^so violations | RA ⊆ WA violations | SL ⊆ L ⊆ G violations |")
	fmt.Fprintln(w, "|---|---|---|---|")
	fmt.Fprintf(w, "| %d | %d | %d | %d |\n", n, ctViol, raViol, clsViol)
	fmt.Fprintln(w, "\nExpected: all zero.")
	return nil
}

func runE12(w io.Writer, quick bool) error {
	n := 1500
	if quick {
		n = 150
	}
	rng := rand.New(rand.NewSource(16))
	agreeLin, agreeG := 0, 0
	nG := n / 3
	for i := 0; i < n; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3, RepeatProb: 0.3})
		direct := decideLin(rs, core.VariantOblivious)
		viaAux := decideLin(critical.AuxTransform(rs), core.VariantSemiOblivious)
		if direct == viaAux {
			agreeLin++
		}
	}
	for i := 0; i < nG; i++ {
		rs := workload.RandomGuarded(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 2, MaxSideAtoms: 1})
		res, err := core.DecideGuardedContext(context.Background(), critical.AuxTransform(rs), core.Options{})
		if err != nil {
			return err
		}
		if oracle(rs, chase.Oblivious, 6000) == res.Verdict.Answer {
			agreeG++
		}
	}
	fmt.Fprintln(w, "| linear sets | direct-o = so∘aux | guarded sets | aux-decider = o-oracle |")
	fmt.Fprintln(w, "|---|---|---|---|")
	fmt.Fprintf(w, "| %d | %d (%.1f%%) | %d | %d (%.1f%%) |\n",
		n, agreeLin, 100*float64(agreeLin)/float64(n),
		nG, agreeG, 100*float64(agreeG)/float64(nG))
	fmt.Fprintln(w, "\nExpected: 100% in both agreement columns.")
	return nil
}

func runE13(w io.Writer, quick bool) error {
	rules := mustRules("r(X,Y) -> r(Y,Z).\nr(X,Y) -> r(Y,X).")
	db := parse.MustParseFacts(`r(a,b).`)
	fmt.Fprintln(w, "Σ = { r(X,Y)→∃Z r(Y,Z),  r(X,Y)→r(Y,X) },  D = { r(a,b) }.")
	fmt.Fprintln(w, "\n| schedule | outcome | triggers applied | facts |")
	fmt.Fprintln(w, "|---|---|---|---|")
	type sched struct {
		name  string
		rules *logic.RuleSet
		order chase.Order
	}
	inventFirst := rules
	repairFirst := mustRules("r(X,Y) -> r(Y,X).\nr(X,Y) -> r(Y,Z).")
	for _, s := range []sched{
		{"FIFO (fair)", rules, chase.OrderFIFO},
		{"invent-rule priority", inventFirst, chase.OrderRulePriority},
		{"repair-rule priority", repairFirst, chase.OrderRulePriority},
	} {
		res, err := chase.RunFromAtomsContext(context.Background(), parse.MustParseFacts(`r(a,b).`), s.rules, chase.Restricted,
			chase.Options{Order: s.order, MaxTriggers: 2000})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d |\n", s.name, res.Outcome,
			res.Stats.TriggersApplied, res.Stats.InitialFacts+res.Stats.FactsAdded)
	}
	exp, err := chase.ExploreRestrictedTermination(db, rules, chase.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nSequence search: terminating sequence found = %v (trace %v, %d states).\n",
		exp.Found, exp.Trace, exp.StatesExplored)
	fmt.Fprintln(w, "\nExpected: the fair FIFO run and the invent-first run diverge while the")
	fmt.Fprintln(w, "repair-first run terminates — the restricted chase separates the paper's")
	fmt.Fprintln(w, "∀-sequence and ∃-sequence problems (they coincide for o/so).")
	return nil
}

func runE14(w io.Writer, quick bool) error {
	n := 3000
	if quick {
		n = 300
	}
	rng := rand.New(rand.NewSource(17))
	var ra, wa, ja, exact, nonterm int
	for i := 0; i < n; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 3, NumRules: 3, RepeatProb: 0.4})
		so := decideLin(rs, core.VariantSemiOblivious)
		if so == core.Terminating {
			exact++
		} else {
			nonterm++
		}
		if ok, _ := acyclicity.IsRichlyAcyclic(rs); ok {
			ra++
		}
		if ok, _ := acyclicity.IsWeaklyAcyclic(rs); ok {
			wa++
		}
		if ok, _ := acyclicity.IsJointlyAcyclic(rs); ok {
			ja++
		}
	}
	fmt.Fprintln(w, "Terminating sets recognized, out of", n, "random linear sets:")
	fmt.Fprintln(w, "\n| criterion | recognizes | share of truly CT^so |")
	fmt.Fprintln(w, "|---|---|---|")
	pct := func(k int) string { return fmt.Sprintf("%.1f%%", 100*float64(k)/float64(exact)) }
	fmt.Fprintf(w, "| rich acyclicity (⇒ CT^o) | %d | %s |\n", ra, pct(ra))
	fmt.Fprintf(w, "| weak acyclicity | %d | %s |\n", wa, pct(wa))
	fmt.Fprintf(w, "| joint acyclicity | %d | %s |\n", ja, pct(ja))
	fmt.Fprintf(w, "| critical-WA (exact, Thm 2) | %d | 100.0%% |\n", exact)
	fmt.Fprintf(w, "\n(%d of the %d sets are not in CT^so at all.)\n", nonterm, n)
	fmt.Fprintln(w, "\nExpected: a strictly increasing ladder RA ≤ WA ≤ JA ≤ exact — each")
	fmt.Fprintln(w, "refinement recognizes more of the terminating sets, the exact decider all.")
	return nil
}

func mustRules(src string) *logic.RuleSet {
	return parse.MustParseRules(src)
}
