package main

import (
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every experiment at CI scale and
// checks the output contains its table header.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			var sb strings.Builder
			if err := e.run(&sb, true); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			if !strings.Contains(sb.String(), "|") {
				t.Errorf("%s produced no table:\n%s", e.id, sb.String())
			}
		})
	}
}

// TestExperimentIDsUnique guards the registry.
func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Errorf("duplicate id %s", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("%s: incomplete registration", e.id)
		}
	}
	if len(experiments) != 14 {
		t.Errorf("expected 14 experiments, have %d", len(experiments))
	}
}

var _ io.Writer = (*strings.Builder)(nil)
