package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every experiment at CI scale and
// checks the output contains its table header.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite")
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			var sb strings.Builder
			if err := e.run(&sb, true); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			if !strings.Contains(sb.String(), "|") {
				t.Errorf("%s produced no table:\n%s", e.id, sb.String())
			}
		})
	}
}

// TestExperimentIDsUnique guards the registry.
func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Errorf("duplicate id %s", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("%s: incomplete registration", e.id)
		}
	}
	if len(experiments) != 14 {
		t.Errorf("expected 14 experiments, have %d", len(experiments))
	}
}

var _ io.Writer = (*strings.Builder)(nil)

// TestCheckBenchReport exercises the chasebench/v1 schema validator on a
// minimal valid report and a set of targeted violations.
func TestCheckBenchReport(t *testing.T) {
	valid := `{
  "schemaVersion": 1,
  "suite": "chasebench/v1",
  "runs": [{
    "label": "t", "goVersion": "go1.24",
    "benchmarks": [{"name": "x", "iterations": 3, "nsPerOp": 10.5,
                    "bytesPerOp": 0, "allocsPerOp": 0, "opsPerSec": 9.5e7}]
  }]
}`
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"valid", valid, true},
		{"not-json", "{", false},
		{"wrong-version", strings.Replace(valid, `"schemaVersion": 1`, `"schemaVersion": 2`, 1), false},
		{"wrong-suite", strings.Replace(valid, "chasebench/v1", "other/v1", 1), false},
		{"no-runs", `{"schemaVersion":1,"suite":"chasebench/v1","runs":[]}`, false},
		{"no-label", strings.Replace(valid, `"label": "t"`, `"label": ""`, 1), false},
		{"no-benchmarks", `{"schemaVersion":1,"suite":"chasebench/v1","runs":[{"label":"t","goVersion":"go1.24","benchmarks":[]}]}`, false},
		{"zero-ns", strings.Replace(valid, `"nsPerOp": 10.5`, `"nsPerOp": 0`, 1), false},
		{"unnamed", strings.Replace(valid, `"name": "x"`, `"name": ""`, 1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "r.json")
			if err := os.WriteFile(p, []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			err := checkBenchReport(p)
			if tc.ok && err != nil {
				t.Errorf("valid report rejected: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("invalid report accepted")
			}
		})
	}
}
