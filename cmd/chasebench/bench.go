package main

// The tracked-benchmark mode: `chasebench -bench` runs the hot-path
// benchmark suite in-process with testing.Benchmark and emits a
// machine-readable JSON report (schema "chasebench/v1"). The committed
// BENCH_chase.json at the repository root holds one run per tracked
// point in time — the pre-optimization baseline first — so the perf
// trajectory of the chase engine is part of the repository history.
// `chasebench -check file` validates a report against the schema; CI
// runs the pair in quick mode to keep both the suite and the schema
// honest without turning CI into a perf gate.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"chaseterm/internal/chase"
	"chaseterm/internal/core"
	"chaseterm/internal/critical"
	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
	"chaseterm/internal/portfolio"
	"chaseterm/internal/workload"
)

// benchSchemaVersion is bumped on incompatible report changes.
const benchSchemaVersion = 1

// benchReport is the JSON shape of BENCH_chase.json.
type benchReport struct {
	SchemaVersion int        `json:"schemaVersion"`
	Suite         string     `json:"suite"`
	Runs          []benchRun `json:"runs"`
}

type benchRun struct {
	Label      string             `json:"label"`
	GoVersion  string             `json:"goVersion"`
	Quick      bool               `json:"quick,omitempty"`
	Benchmarks []benchMeasurement `json:"benchmarks"`
}

type benchMeasurement struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  int64              `json:"bytesPerOp"`
	AllocsPerOp int64              `json:"allocsPerOp"`
	OpsPerSec   float64            `json:"opsPerSec"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func measurement(name string, r testing.BenchmarkResult, metrics map[string]float64) benchMeasurement {
	ns := float64(r.NsPerOp())
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return benchMeasurement{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     ns,
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		OpsPerSec:   ops,
		Metrics:     metrics,
	}
}

// runBenchSuite runs the tracked benchmarks and writes the JSON report.
func runBenchSuite(w io.Writer, quick bool, label string) error {
	run := benchRun{Label: label, GoVersion: runtime.Version(), Quick: quick}

	// engine_trigger_throughput — the saturating datalog-style run of
	// BenchmarkEngineTriggerThroughput.
	nFacts := 400
	if quick {
		nFacts = 100
	}
	ttRules := parse.MustParseRules("e(X,Y) -> r(X,Y).\nr(X,Y) -> s(Y,X).")
	var ttFacts []logic.Atom
	for i := 0; i < nFacts; i++ {
		ttFacts = append(ttFacts, logic.NewAtom("e",
			logic.Constant(fmt.Sprintf("a%d", i)), logic.Constant(fmt.Sprintf("a%d", i+1))))
	}
	var triggers float64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := chase.RunFromAtomsContext(context.Background(), ttFacts, ttRules, chase.SemiOblivious, chase.Options{})
			if err != nil || r.Outcome != chase.Terminated {
				b.Fatalf("throughput run: %v %v", r, err)
			}
			triggers = float64(r.Stats.TriggersApplied)
		}
	})
	m := measurement("engine_trigger_throughput", res, map[string]float64{
		"triggers/op": triggers,
	})
	if res.NsPerOp() > 0 {
		m.Metrics["triggers/s"] = triggers * 1e9 / float64(res.NsPerOp())
	}
	run.Benchmarks = append(run.Benchmarks, m)

	// e10_anatomy/<variant> — full terminating chase runs on the ontology
	// scenario (BenchmarkE10_ChaseAnatomy).
	ontRules := workload.OntologySL()
	ontDB := workload.OntologyDB()
	for _, v := range []chase.Variant{chase.Oblivious, chase.SemiOblivious, chase.Restricted} {
		v := v
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := chase.RunFromAtomsContext(context.Background(), ontDB, ontRules, v, chase.Options{})
				if err != nil || r.Outcome != chase.Terminated {
					b.Fatalf("anatomy run: %v %v", r, err)
				}
			}
		})
		run.Benchmarks = append(run.Benchmarks,
			measurement("e10_anatomy/"+v.String(), res, nil))
	}

	// scale_ontology/<variant> — the certified-terminating DL-Lite
	// materialization workload (BenchmarkEngineScaleOntology). Quick mode
	// shrinks the ABox; the sampling loop is seeded identically either way.
	abox, minAdded := 2000, 2000
	if quick {
		abox, minAdded = 300, 300
	}
	rng := rand.New(rand.NewSource(26))
	var soRules *logic.RuleSet
	var soDB []logic.Atom
	for {
		soRules = workload.RandomInclusionDependencies(rng, 12, 6, 40)
		dres, err := core.DecideLinearContext(context.Background(), soRules, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			return err
		}
		if dres.Verdict.Answer != core.Terminating {
			continue
		}
		soDB = workload.RandomABox(rng, soRules, abox, 300)
		trial, err := chase.RunFromAtomsContext(context.Background(), soDB, soRules, chase.SemiOblivious,
			chase.Options{MaxFacts: 120_000, MaxTriggers: 120_000})
		if err != nil {
			return err
		}
		if trial.Outcome == chase.Terminated && trial.Stats.FactsAdded >= minAdded {
			break
		}
	}
	for _, v := range []chase.Variant{chase.SemiOblivious, chase.Restricted} {
		v := v
		var facts float64
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := chase.RunFromAtomsContext(context.Background(), soDB, soRules, v, chase.Options{MaxFacts: 500_000, MaxTriggers: 500_000})
				if err != nil || r.Outcome != chase.Terminated {
					b.Fatalf("scale run: %v %v", r, err)
				}
				facts = float64(r.Stats.FactsAdded)
			}
		})
		run.Benchmarks = append(run.Benchmarks,
			measurement("scale_ontology/"+v.String(), res, map[string]float64{"facts/run": facts}))
	}

	// chase_parallel/{1,4,8} — the same certified-terminating scale
	// workload through the parallel engine at increasing worker counts,
	// with workers=1 as the in-group sequential baseline. Results are
	// bit-identical at every count, so facts/run must agree across the
	// group; speedup_vs_1 records the measured ratio against the
	// workers=1 entry (on a single-core host it hovers near or below 1 —
	// the stripes only help when GOMAXPROCS offers real parallelism).
	var parBase float64
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		var facts float64
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := chase.RunFromAtomsContext(context.Background(), soDB, soRules, chase.SemiOblivious,
					chase.Options{MaxFacts: 500_000, MaxTriggers: 500_000, Workers: workers})
				if err != nil || r.Outcome != chase.Terminated {
					b.Fatalf("parallel run (workers=%d): %v %v", workers, r, err)
				}
				facts = float64(r.Stats.FactsAdded)
			}
		})
		metrics := map[string]float64{"facts/run": facts, "workers": float64(workers)}
		if workers == 1 {
			parBase = float64(res.NsPerOp())
		} else if res.NsPerOp() > 0 {
			metrics["speedup_vs_1"] = parBase / float64(res.NsPerOp())
		}
		run.Benchmarks = append(run.Benchmarks,
			measurement(fmt.Sprintf("chase_parallel/%d", workers), res, metrics))
	}

	// homomorphism_join — the backtracking join of BenchmarkEngineHomomorphism.
	in := instance.New()
	e := in.Pred("e", 2)
	terms := make([]instance.TermID, 512)
	for i := range terms {
		terms[i] = in.Terms.Const(fmt.Sprintf("c%d", i))
	}
	for i := 0; i+1 < len(terms); i++ {
		in.Add(e, []instance.TermID{terms[i], terms[i+1]})
	}
	pat, err := instance.CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
		logic.NewAtom("e", logic.Variable("Z"), logic.Variable("W")),
	})
	if err != nil {
		return err
	}
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n := in.CountHoms(pat); n != 509 {
				b.Fatalf("homs: %d", n)
			}
		}
	})
	run.Benchmarks = append(run.Benchmarks, measurement("homomorphism_join", res, nil))

	// contains_probe — the dedup probe of the insertion hot path.
	probe := []instance.TermID{terms[100], terms[101]}
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !in.Contains(e, probe) {
				b.Fatal("probe must hit")
			}
		}
	})
	run.Benchmarks = append(run.Benchmarks, measurement("contains_probe", res, nil))

	// portfolio_decide/{ladder,direct} — the portfolio's economy on a
	// weakly-acyclic ontology: the ladder answers at the positional rung
	// in polynomial time, while the direct route pays for the exact
	// shape-space search on every call.
	pfRules := workload.OntologySL()
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := portfolio.Run(context.Background(), pfRules, core.VariantSemiOblivious, portfolio.Options{})
			if err != nil || r.Verdict != portfolio.Terminating || r.DecidedBy != "weak-acyclicity" {
				b.Fatalf("portfolio: %+v %v", r, err)
			}
		}
	})
	run.Benchmarks = append(run.Benchmarks, measurement("portfolio_decide/ladder", res, nil))
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := core.DecideLinearContext(context.Background(), pfRules, core.VariantSemiOblivious, core.Options{})
			if err != nil || r.Verdict.Answer != core.Terminating {
				b.Fatalf("direct: %+v %v", r, err)
			}
		}
	})
	run.Benchmarks = append(run.Benchmarks, measurement("portfolio_decide/direct", res, nil))

	// critical_instance — building I*(Σ) for a mid-sized schema.
	crng := rand.New(rand.NewSource(25))
	crRules := workload.RandomGuarded(crng, workload.Config{NumPreds: 8, MaxArity: 3, NumRules: 8})
	res = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := critical.Instance(crRules); err != nil {
				b.Fatal(err)
			}
		}
	})
	run.Benchmarks = append(run.Benchmarks, measurement("critical_instance", res, nil))

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(benchReport{
		SchemaVersion: benchSchemaVersion,
		Suite:         "chasebench/v1",
		Runs:          []benchRun{run},
	})
}

// checkBenchReport validates a BENCH_chase.json file against the schema.
// It is a structural check, not a perf gate: CI fails on malformed output,
// never on slow numbers.
func checkBenchReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: not valid JSON: %w", path, err)
	}
	if rep.SchemaVersion != benchSchemaVersion {
		return fmt.Errorf("%s: schemaVersion %d, want %d", path, rep.SchemaVersion, benchSchemaVersion)
	}
	if rep.Suite != "chasebench/v1" {
		return fmt.Errorf("%s: suite %q, want %q", path, rep.Suite, "chasebench/v1")
	}
	if len(rep.Runs) == 0 {
		return fmt.Errorf("%s: no runs", path)
	}
	for i, run := range rep.Runs {
		if run.Label == "" {
			return fmt.Errorf("%s: run %d has no label", path, i)
		}
		if run.GoVersion == "" {
			return fmt.Errorf("%s: run %q has no goVersion", path, run.Label)
		}
		if len(run.Benchmarks) == 0 {
			return fmt.Errorf("%s: run %q has no benchmarks", path, run.Label)
		}
		for _, b := range run.Benchmarks {
			switch {
			case b.Name == "":
				return fmt.Errorf("%s: run %q: unnamed benchmark", path, run.Label)
			case b.Iterations <= 0:
				return fmt.Errorf("%s: %s/%s: iterations %d", path, run.Label, b.Name, b.Iterations)
			case b.NsPerOp <= 0:
				return fmt.Errorf("%s: %s/%s: nsPerOp %v", path, run.Label, b.Name, b.NsPerOp)
			case b.AllocsPerOp < 0 || b.BytesPerOp < 0:
				return fmt.Errorf("%s: %s/%s: negative alloc stats", path, run.Label, b.Name)
			case b.OpsPerSec <= 0:
				return fmt.Errorf("%s: %s/%s: opsPerSec %v", path, run.Label, b.Name, b.OpsPerSec)
			}
			if strings.HasPrefix(b.Name, "chase_parallel/") {
				if err := checkParallelEntry(run.Label, b); err != nil {
					return fmt.Errorf("%s: %w", path, err)
				}
			}
		}
	}
	return nil
}

// checkParallelEntry validates a chase_parallel group entry: the name's
// worker count must round-trip through the "workers" metric, and the
// group's determinism contract means facts/run must be present (equal
// counts across the group are asserted by the engine's own tests; the
// report check just keeps the evidence attached).
func checkParallelEntry(label string, b benchMeasurement) error {
	var workers int
	if _, err := fmt.Sscanf(b.Name, "chase_parallel/%d", &workers); err != nil || workers < 1 {
		return fmt.Errorf("%s/%s: malformed chase_parallel name", label, b.Name)
	}
	if got, ok := b.Metrics["workers"]; !ok || int(got) != workers {
		return fmt.Errorf("%s/%s: workers metric %v does not match the name", label, b.Name, b.Metrics["workers"])
	}
	if f, ok := b.Metrics["facts/run"]; !ok || f <= 0 {
		return fmt.Errorf("%s/%s: missing facts/run metric", label, b.Name)
	}
	if workers > 1 {
		if s, ok := b.Metrics["speedup_vs_1"]; !ok || s <= 0 {
			return fmt.Errorf("%s/%s: missing speedup_vs_1 metric", label, b.Name)
		}
	}
	return nil
}
