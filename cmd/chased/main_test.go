package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServerLifecycle boots the server on an ephemeral port, exercises
// the health and analysis endpoints end to end, and checks that a
// context cancellation shuts it down cleanly.
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr:    "127.0.0.1:0",
			timeout: 30 * time.Second,
		}, func(a net.Addr) { addrs <- a })
	}()

	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-done:
		t.Fatalf("server exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]string{
		"rules": "person(X) -> hasFather(X,Y), person(Y).",
	})
	resp, err = http.Post(base+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide status %d", resp.StatusCode)
	}
	var out struct {
		Terminates  string `json:"terminates"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Terminates != "non-terminating" || len(out.Fingerprint) != 64 {
		t.Fatalf("decide response %+v", out)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunRejectsBadAddress(t *testing.T) {
	err := run(context.Background(), config{addr: "127.0.0.1:notaport", timeout: time.Second}, nil)
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
}
