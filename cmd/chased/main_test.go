package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// quiet keeps server log records out of the test output.
func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestServerLifecycle boots the server on an ephemeral port, exercises
// the health and analysis endpoints end to end, and checks that a
// context cancellation shuts it down cleanly.
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr:    "127.0.0.1:0",
			timeout: 30 * time.Second,
		}, quiet(), func(a net.Addr) { addrs <- a })
	}()

	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-done:
		t.Fatalf("server exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// The versioned route: kind in the body, api types on the wire.
	body, _ := json.Marshal(map[string]string{
		"kind":  "decide",
		"rules": "person(X) -> hasFather(X,Y), person(Y).",
	})
	resp, err = http.Post(base+"/v2/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}
	var out struct {
		Fingerprint string `json:"fingerprint"`
		Decision    struct {
			Terminates string `json:"terminates"`
		} `json:"decision"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Decision.Terminates != "non-terminating" || len(out.Fingerprint) != 64 {
		t.Fatalf("analyze response %+v", out)
	}

	// The v1 compatibility shim still answers with the flat shape.
	legacyBody, _ := json.Marshal(map[string]string{
		"rules": "person(X) -> hasFather(X,Y), person(Y).",
	})
	legacyResp, err := http.Post(base+"/v1/decide", "application/json", bytes.NewReader(legacyBody))
	if err != nil {
		t.Fatal(err)
	}
	defer legacyResp.Body.Close()
	var legacy struct {
		Terminates string `json:"terminates"`
		Cached     bool   `json:"cached"`
	}
	if err := json.NewDecoder(legacyResp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Terminates != "non-terminating" {
		t.Fatalf("v1 shim response %+v", legacy)
	}
	if !legacy.Cached {
		t.Fatal("v1 shim did not share the verdict cache with /v2/analyze")
	}

	// The Prometheus endpoint is wired in and reflects the traffic above.
	metricsResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if metricsResp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", metricsResp.StatusCode)
	}
	if got := metricsResp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", got)
	}
	exposition := string(metricsBody)
	for _, want := range []string{
		"chased_cache_hits_total ",
		"chased_jobs_total 2",
		`chased_request_exec_seconds_bucket{endpoint="analyze",le="+Inf"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, exposition)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestGracefulDrain starts a shutdown while an analysis request is in
// flight and requires the request to still receive a complete response
// (the drain) and the server to exit cleanly and promptly — possible
// because in-flight jobs are context-aware and bounded by the job
// timeout, so Shutdown never waits on an unbounded computation.
func TestGracefulDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr:    "127.0.0.1:0",
			workers: 1,
			timeout: 2 * time.Second,
		}, quiet(), func(a net.Addr) { addrs <- a })
	}()
	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-done:
		t.Fatalf("server exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// A divergent chase big enough to still be running when the shutdown
	// starts (but bounded, so the test never hangs even if the drain
	// were broken in a way that disabled cancellation).
	body, _ := json.Marshal(map[string]any{
		"rules":       "person(X) -> hasFather(X,Y), person(Y).",
		"maxTriggers": 2_000_000,
		"maxFacts":    2_000_000,
	})
	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/chase", "application/json", bytes.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		resc <- result{status: resp.StatusCode}
	}()

	// Wait until the job is observably in flight before starting the
	// drain (a fixed sleep would race the POST on a loaded machine).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatalf("stats during warm-up: %v", err)
		}
		var snap struct {
			InFlight int64 `json:"inFlight"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if decodeErr != nil {
			t.Fatalf("stats decode: %v", decodeErr)
		}
		if snap.InFlight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("chase request never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel() // begin the graceful drain

	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("in-flight request was dropped during shutdown: %v", r.err)
		}
		// 200 if the run finished before the drain; 504 if its job
		// timeout cut it off. Either way the response was written in
		// full rather than the connection being severed.
		if r.status != http.StatusOK && r.status != http.StatusGatewayTimeout {
			t.Fatalf("in-flight request got status %d", r.status)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after draining")
	}
}

func TestRunRejectsBadAddress(t *testing.T) {
	err := run(context.Background(), config{addr: "127.0.0.1:notaport", timeout: time.Second}, quiet(), nil)
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestPprofAndRuntimeStats boots the server with the opt-in pprof
// listener and checks both that the profiling endpoints answer and that
// /v1/stats carries the Go runtime memory/GC counters.
func TestPprofAndRuntimeStats(t *testing.T) {
	// Reserve an ephemeral port for pprof (close-and-reuse; fine in tests).
	pl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := pl.Addr().String()
	pl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr:      "127.0.0.1:0",
			timeout:   30 * time.Second,
			pprofAddr: pprofAddr,
		}, quiet(), func(a net.Addr) { addrs <- a })
	}()
	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-done:
		t.Fatalf("server exited before becoming ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", pprofAddr))
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Runtime struct {
			HeapAllocBytes uint64 `json:"heapAllocBytes"`
			NumGoroutine   int    `json:"numGoroutine"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runtime.HeapAllocBytes == 0 || snap.Runtime.NumGoroutine <= 0 {
		t.Errorf("stats missing runtime counters: %+v", snap.Runtime)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestStoreSurvivesRestart is the process-level persistence check: a
// verdict decided by one server run is served store-warm (cached, one
// storeHit) by a second run pointed at the same -store file.
func TestStoreSurvivesRestart(t *testing.T) {
	storePath := t.TempDir() + "/verdicts.db"
	cfg := config{
		addr:      "127.0.0.1:0",
		timeout:   30 * time.Second,
		storePath: storePath,
		fsync:     "always",
	}
	body, _ := json.Marshal(map[string]string{
		"kind":  "decide",
		"rules": "person(X) -> hasFather(X,Y), person(Y).",
	})

	decide := func(base string) (cached bool) {
		resp, err := http.Post(base+"/v2/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze status %d", resp.StatusCode)
		}
		var out struct {
			Cached bool `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Cached
	}

	boot := func() (base string, stop func()) {
		ctx, cancel := context.WithCancel(context.Background())
		addrs := make(chan net.Addr, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, cfg, quiet(), func(a net.Addr) { addrs <- a })
		}()
		select {
		case a := <-addrs:
			base = fmt.Sprintf("http://%s", a)
		case err := <-done:
			t.Fatalf("server exited before becoming ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		return base, func() {
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("server exited with %v", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("server did not shut down")
			}
		}
	}

	base, stop := boot()
	if decide(base) {
		t.Fatal("first decide claims cached")
	}
	healthResp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Store  *struct {
			Degraded bool `json:"degraded"`
		} `json:"store"`
	}
	if err := json.NewDecoder(healthResp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	healthResp.Body.Close()
	if health.Status != "ok" || health.Store == nil || health.Store.Degraded {
		t.Fatalf("healthz with healthy store = %+v", health)
	}
	stop()

	base, stop = boot()
	defer stop()
	if !decide(base) {
		t.Fatal("restarted server did not serve the persisted verdict as a cache hit")
	}
	statsResp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats struct {
		StoreHits     int64 `json:"storeHits"`
		StoreDegraded bool  `json:"storeDegraded"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.StoreHits != 1 || stats.StoreDegraded {
		t.Fatalf("restarted stats = %+v, want 1 store hit, not degraded", stats)
	}
}

// TestStoreDegradedBoot: a store path that cannot be opened must not
// stop the server — it boots degraded and keeps serving.
func TestStoreDegradedBoot(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr:      "127.0.0.1:0",
			timeout:   30 * time.Second,
			storePath: t.TempDir() + "/no/such/dir/verdicts.db",
			fsync:     "interval",
		}, quiet(), func(a net.Addr) { addrs <- a })
	}()
	var base string
	select {
	case a := <-addrs:
		base = fmt.Sprintf("http://%s", a)
	case err := <-done:
		t.Fatalf("server refused to boot with a broken store: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	body, _ := json.Marshal(map[string]string{
		"kind":  "decide",
		"rules": "person(X) -> hasFather(X,Y), person(Y).",
	})
	resp, err := http.Post(base+"/v2/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d with degraded store, want 200", resp.StatusCode)
	}
	healthResp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer healthResp.Body.Close()
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(healthResp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q with broken store, want degraded", health.Status)
	}
}
