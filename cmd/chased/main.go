// Command chased serves chase-termination analysis over HTTP: the
// decision procedures of "Chase Termination for Guarded Existential
// Rules" (Calautti, Gottlob, Pieris; PODS 2015) behind a concurrent
// engine with a content-addressed verdict cache and a worker pool.
//
// Usage:
//
//	chased [-addr :8080] [-workers N] [-chase-workers N] [-cache-size N] [-timeout 30s]
//	       [-pprof addr] [-log-json] [-log-level info] [-slow-request 0]
//	       [-store verdicts.db] [-fsync always|interval|never]
//
// -chase-workers sets the default match parallelism of chase runs: each
// generation's trigger matching is split across that many goroutines
// while fact application stays single-writer, so results are
// bit-identical to a sequential run. Requests can override it per job
// with the chaseWorkers field; GET /v2/capabilities advertises the
// feature as "parallelChase".
//
// -store enables the persistent verdict store: decide verdicts are
// written through to a crash-safe append-only file and survive process
// restarts, so a restarted replica answers repeat decisions from disk
// instead of recomputing them. -fsync picks the durability policy
// (default interval: a background sync every second). Store failures
// are never fatal — the server degrades to memory-only serving, flips
// the chased_store_degraded gauge and the /healthz detail, and retries
// reopening with exponential backoff.
//
// Endpoints — the versioned contract (package api; kind in the body):
//
//	POST /v2/analyze       {"kind": "classify|decide|chase|acyclicity", "rules": "...", ...}
//	POST /v2/batch         {"jobs": [...]}                  fan a job list across the pool
//	POST /v2/chase/stream  {"rules": "...", ...}            NDJSON chase stream; closing the
//	                                                        connection aborts the run
//	GET  /healthz                                           liveness
//	GET  /v1/stats                                          cache + latency + stream counters
//	GET  /metrics                                           Prometheus text exposition format
//
// and the v1 compatibility shims (flat bodies, kind implied by route):
//
//	POST /v1/classify, /v1/decide, /v1/chase, /v1/batch
//
// Every request gets an X-Request-ID (generated, or propagated from the
// client's header), echoed on the response and carried in the one
// structured log record each job emits. -log-json switches those
// records to JSON; -slow-request raises requests at or over the
// threshold to WARN.
//
// Errors carry machine-readable codes: v2 responds with the envelope
// {"error": {"code": "...", "message": "..."}, "requestId": "..."};
// package client is the Go client for this contract.
//
// Example:
//
//	curl -s localhost:8080/v2/analyze \
//	  -d '{"kind": "decide", "rules": "person(X) -> hasFather(X,Y), person(Y)."}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaseterm/internal/service"
	"chaseterm/internal/store"
)

type config struct {
	addr         string
	workers      int
	chaseWorkers int
	cacheSize    int
	timeout      time.Duration
	pprofAddr    string
	logJSON      bool
	logLevel     string
	slowRequest  time.Duration
	storePath    string
	fsync        string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.chaseWorkers, "chase-workers", 0,
		"default match parallelism of chase runs; requests may override via chaseWorkers (0 or 1 = sequential)")
	flag.IntVar(&cfg.cacheSize, "cache-size", 0, "verdict cache entries (0 = 1024)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-job timeout")
	flag.StringVar(&cfg.pprofAddr, "pprof", "",
		"serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty = disabled")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "emit log records as JSON (default: logfmt-style text)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn, error")
	flag.DurationVar(&cfg.slowRequest, "slow-request", 0,
		"log requests at or over this duration at WARN with slow=true (0 = disabled)")
	flag.StringVar(&cfg.storePath, "store", "",
		"persist decide verdicts to this file across restarts; empty = memory-only")
	flag.StringVar(&cfg.fsync, "fsync", "interval",
		"store durability policy: always (sync every write), interval (sync every second), never")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chased [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	logger, err := newLogger(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chased:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Once the first signal starts the graceful drain, restore default
	// signal handling so a second Ctrl-C / SIGTERM force-kills instead of
	// being swallowed while the server waits for stragglers.
	go func() { <-ctx.Done(); stop() }()
	if err := run(ctx, cfg, logger, nil); err != nil {
		logger.Error("exiting", "error", err.Error())
		os.Exit(1)
	}
}

// newLogger builds the process logger from the -log-json and -log-level
// flags.
func newLogger(cfg config) (*slog.Logger, error) {
	var level slog.Level
	if err := level.UnmarshalText([]byte(cfg.logLevel)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", cfg.logLevel, err)
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if cfg.logJSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

// run starts the engine and serves until ctx is cancelled, then shuts
// down gracefully. ready, when non-nil, receives the bound address once
// the listener is up (used by tests binding port 0).
func run(ctx context.Context, cfg config, logger *slog.Logger, ready func(net.Addr)) error {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	// The verdict store is wrapped in the Resilient degrader: a missing
	// disk at boot, a full disk mid-run, a corrupt file — all of them
	// degrade to memory-only serving (with a reopen loop backing off in
	// the background) instead of failing the process or its requests.
	var verdicts store.VerdictStore
	if cfg.storePath != "" {
		policy, err := store.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			return fmt.Errorf("bad -fsync %q: %w", cfg.fsync, err)
		}
		res := store.NewResilient(func() (store.VerdictStore, error) {
			return store.Open(cfg.storePath, store.Options{Fsync: policy})
		}, store.WithLogger(logger))
		defer res.Close() //nolint:errcheck // final sync failure has no one left to tell
		verdicts = res
		logger.Info("verdict store enabled",
			"path", cfg.storePath, "fsync", policy.String(), "degraded", res.Degraded())
	}

	eng := service.New(service.Options{
		Workers:      cfg.workers,
		CacheSize:    cfg.cacheSize,
		JobTimeout:   cfg.timeout,
		ChaseWorkers: cfg.chaseWorkers,
		Logger:       logger,
		SlowRequest:  cfg.slowRequest,
		Store:        verdicts,
	})
	defer eng.Close()

	// Profiling is opt-in and on its own listener, so the analysis port
	// never exposes pprof: bind -pprof to localhost in production.
	if cfg.pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		logger.Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", pln.Addr()))
		psrv := &http.Server{Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		// Tie the profiler's lifetime to the run context so repeated run()
		// calls (tests, embedders) don't leak the listener.
		stopPprof := context.AfterFunc(ctx, func() { psrv.Close() })
		defer stopPprof()
		go func() {
			if err := psrv.Serve(pln); !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof server", "error", err.Error())
			}
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	eff := eng.Config()
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"workers", eff.Workers,
		"cacheSize", eff.CacheSize,
		"timeout", eff.JobTimeout.String(),
	)
	if ready != nil {
		ready(ln.Addr())
	}

	srv := &http.Server{
		Handler:           service.NewHandler(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Graceful drain: Shutdown stops accepting connections and waits
		// for in-flight handlers to write their responses. Every job the
		// handlers can be stuck in is context-aware and bounded by the
		// per-job timeout, so the drain completes within roughly one
		// JobTimeout; the grace period adds headroom for the final writes.
		logger.Info("shutting down, draining in-flight requests")
		//chaselint:ignore ctxflow the serve ctx is already done here; the drain deadline needs a detached root
		shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.timeout+5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
