// Command termcheck decides all-instance chase termination for a rule set
// — the decision problem of "Chase Termination for Guarded Existential
// Rules" (Calautti, Gottlob, Pieris; PODS 2015).
//
// Usage:
//
//	termcheck [-variant o|so|r|all] [-json] [-db db.dl] [-stats] [-portfolio [-race]] rules.dl
//
// For linear rule sets the decision is by critical-weak/rich acyclicity
// (exact, Theorems 1–3); for guarded sets by the chase-forest procedure
// (exact, Theorem 4); outside the guarded class the problem is undecidable
// and the tool reports sound partial answers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chaseterm"
)

// analyzer is the unified entry point; every decision below goes
// through one Analyze call.
var analyzer chaseterm.Analyzer

// showStats mirrors the -stats flag: print each report's per-stage
// elapsed times (and engine counters when a chase actually ran).
var showStats bool

// usePortfolio / raceExact mirror -portfolio and -race: decide through
// the termination portfolio (cheap criteria first, exact procedures
// last) and report which rung decided.
var usePortfolio, raceExact bool

func main() {
	variant := flag.String("variant", "all", "chase variant: o|so|r|all")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of text")
	dbPath := flag.String("db", "", "decide termination on this database only (fixed-database mode)")
	flag.BoolVar(&showStats, "stats", false, "print per-stage timings and engine counters for every decision")
	flag.BoolVar(&usePortfolio, "portfolio", false, "decide via the termination portfolio and report the deciding rung (ignored with -db)")
	flag.BoolVar(&raceExact, "race", false, "with -portfolio: race the exact deciders in parallel when the criteria ladder is inconclusive")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: termcheck [flags] rules.dl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancels the in-flight decision cooperatively: the
	// procedures poll the context, so the tool exits promptly instead of
	// grinding on to its search budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A second signal force-kills: restore default handling once the
	// first one has started the cooperative cancellation.
	go func() { <-ctx.Done(); stop() }()
	var err error
	switch {
	case *dbPath != "":
		err = runFixedDB(ctx, *variant, flag.Arg(0), *dbPath)
	case *jsonOut:
		err = runJSON(ctx, *variant, flag.Arg(0))
	default:
		err = run(ctx, *variant, flag.Arg(0))
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "termcheck: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "termcheck:", err)
		os.Exit(1)
	}
}

// runFixedDB decides termination of the chase of one specific database.
func runFixedDB(ctx context.Context, variantName, rulesPath, dbPath string) error {
	rules, variants, err := load(variantName, rulesPath)
	if err != nil {
		return err
	}
	text, err := os.ReadFile(dbPath)
	if err != nil {
		return err
	}
	db, err := chaseterm.ParseDatabase(string(text))
	if err != nil {
		return err
	}
	fmt.Printf("rules: %d (%s); database: %d facts — fixed-database decision\n",
		rules.NumRules(), rules.Classify(), db.Size())
	for _, v := range variants {
		rep, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
			chaseterm.WithVariant(v), chaseterm.WithDatabase(db)))
		if err != nil {
			return err
		}
		fmt.Printf("\nchase of this database (%s): %s\n", v, rep.Verdict.Terminates)
		fmt.Printf("  method: %s\n", rep.Verdict.Method)
		if rep.Verdict.Witness != "" {
			fmt.Printf("  witness: %s\n", rep.Verdict.Witness)
		}
		printReportStats(rep)
	}
	return nil
}

// printReportStats renders the -stats lines for one report: stage
// elapsed times always, engine counters when the decision ran a chase.
func printReportStats(rep *chaseterm.Report) {
	if !showStats {
		return
	}
	t := rep.Timings
	fmt.Printf("  timings: classify %s", fmtDur(t.Classify))
	if t.Acyclicity > 0 {
		fmt.Printf(", acyclicity %s", fmtDur(t.Acyclicity))
	}
	if t.Decide > 0 {
		fmt.Printf(", decide %s", fmtDur(t.Decide))
	}
	if t.Chase > 0 {
		fmt.Printf(", chase %s", fmtDur(t.Chase))
	}
	fmt.Printf(", total %s\n", fmtDur(t.Total))
	if e := rep.Engine; e != nil {
		fmt.Printf("  engine: %d triggers enqueued, %d applied, %d no-op, %d satisfied, %d facts derived, max term depth %d\n",
			e.TriggersEnqueued, e.TriggersApplied, e.TriggersNoop, e.TriggersSatisfied, e.FactsAdded, e.MaxTermDepth)
	}
}

// decideRequest builds the decide request for one variant, honoring
// the -portfolio/-race flags.
func decideRequest(rules *chaseterm.RuleSet, v chaseterm.Variant) chaseterm.Request {
	opts := []chaseterm.RequestOption{chaseterm.WithVariant(v)}
	if usePortfolio {
		opts = append(opts, chaseterm.WithPortfolio(chaseterm.PortfolioOptions{Race: raceExact}))
	}
	return chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules, opts...)
}

// printPortfolio renders the provenance block of a portfolio decision:
// the deciding rung always, the full rung trace under -stats.
func printPortfolio(rep *chaseterm.Report) {
	p := rep.Portfolio
	if p == nil {
		return
	}
	raced := ""
	if p.Raced {
		raced = " (exact deciders raced)"
	}
	fmt.Printf("  decided by: %s%s\n", p.DecidedBy, raced)
	if !showStats {
		return
	}
	for _, r := range p.Rungs {
		note := ""
		if r.Canceled {
			note = " [canceled]"
		}
		fmt.Printf("  rung %-20s %-15s %s%s\n", r.Rung, r.Verdict, fmtDur(r.Elapsed), note)
	}
}

// fmtDur rounds a stage duration for display; sub-10µs stages print as
// their exact value rather than a misleading "0s".
func fmtDur(d time.Duration) string {
	if r := d.Round(10 * time.Microsecond); r != 0 {
		return r.String()
	}
	return d.String()
}

// jsonReport is the machine-readable output of -json.
type jsonReport struct {
	Rules          int                    `json:"rules"`
	Class          string                 `json:"class"`
	MaxArity       int                    `json:"maxArity"`
	RichlyAcyclic  bool                   `json:"richlyAcyclic"`
	WeaklyAcyclic  bool                   `json:"weaklyAcyclic"`
	JointlyAcyclic bool                   `json:"jointlyAcyclic"`
	Verdicts       map[string]jsonVerdict `json:"verdicts"`
}

type jsonVerdict struct {
	Terminates  string     `json:"terminates"`
	Method      string     `json:"method"`
	Witness     string     `json:"witness,omitempty"`
	SearchSpace int        `json:"searchSpace,omitempty"`
	DecidedBy   string     `json:"decidedBy,omitempty"`
	Raced       bool       `json:"raced,omitempty"`
	Rungs       []jsonRung `json:"rungs,omitempty"`
}

// jsonRung is one ladder step of a portfolio decision.
type jsonRung struct {
	Name     string  `json:"name"`
	Verdict  string  `json:"verdict"`
	Millis   float64 `json:"millis"`
	Canceled bool    `json:"canceled,omitempty"`
}

func runJSON(ctx context.Context, variantName, rulesPath string) error {
	rules, variants, err := load(variantName, rulesPath)
	if err != nil {
		return err
	}
	// One acyclicity request covers the criteria ladder; its report's
	// classification block fills the schema fields as well.
	base, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeAcyclicity, rules))
	if err != nil {
		return err
	}
	rep := jsonReport{
		Rules:          base.NumRules,
		Class:          base.Class.String(),
		MaxArity:       base.MaxArity,
		RichlyAcyclic:  base.Acyclicity.RichlyAcyclic,
		WeaklyAcyclic:  base.Acyclicity.WeaklyAcyclic,
		JointlyAcyclic: base.Acyclicity.JointlyAcyclic,
		Verdicts:       map[string]jsonVerdict{},
	}
	for _, v := range variants {
		res, err := analyzer.Analyze(ctx, decideRequest(rules, v))
		if err != nil {
			return err
		}
		jv := jsonVerdict{
			Terminates:  res.Verdict.Terminates.String(),
			Method:      res.Verdict.Method,
			Witness:     res.Verdict.Witness,
			SearchSpace: res.Verdict.SearchSpace,
		}
		if p := res.Portfolio; p != nil {
			jv.DecidedBy = p.DecidedBy
			jv.Raced = p.Raced
			for _, r := range p.Rungs {
				jv.Rungs = append(jv.Rungs, jsonRung{
					Name:     r.Rung,
					Verdict:  r.Verdict,
					Millis:   float64(r.Elapsed.Microseconds()) / 1000,
					Canceled: r.Canceled,
				})
			}
		}
		rep.Verdicts[shortName(v)] = jv
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// load parses the rule file and resolves the variant selection.
func load(variantName, rulesPath string) (*chaseterm.RuleSet, []chaseterm.Variant, error) {
	text, err := os.ReadFile(rulesPath)
	if err != nil {
		return nil, nil, err
	}
	rules, err := chaseterm.ParseRules(string(text))
	if err != nil {
		return nil, nil, err
	}
	if variantName == "all" {
		return rules, []chaseterm.Variant{chaseterm.Oblivious, chaseterm.SemiOblivious, chaseterm.Restricted}, nil
	}
	v, err := chaseterm.ParseVariant(variantName)
	if err != nil {
		return nil, nil, err
	}
	return rules, []chaseterm.Variant{v}, nil
}

func run(ctx context.Context, variantName, rulesPath string) error {
	rules, variants, err := load(variantName, rulesPath)
	if err != nil {
		return err
	}
	base, err := analyzer.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeAcyclicity, rules))
	if err != nil {
		return err
	}
	fmt.Printf("rules: %d, class: %s, max arity: %d\n",
		base.NumRules, base.Class, base.MaxArity)
	fmt.Printf("positional criteria: rich-acyclic=%v weak-acyclic=%v jointly-acyclic=%v\n",
		base.Acyclicity.RichlyAcyclic, base.Acyclicity.WeaklyAcyclic, base.Acyclicity.JointlyAcyclic)
	printReportStats(base)
	for _, v := range variants {
		rep, err := analyzer.Analyze(ctx, decideRequest(rules, v))
		if err != nil {
			return err
		}
		fmt.Printf("\nCT^%s: %s\n", shortName(v), rep.Verdict.Terminates)
		fmt.Printf("  method: %s\n", rep.Verdict.Method)
		printPortfolio(rep)
		if rep.Verdict.SearchSpace > 0 {
			fmt.Printf("  search space: %d abstract states\n", rep.Verdict.SearchSpace)
		}
		if rep.Verdict.Witness != "" {
			fmt.Printf("  witness: %s\n", rep.Verdict.Witness)
		}
		printReportStats(rep)
	}
	return nil
}

func shortName(v chaseterm.Variant) string {
	switch v {
	case chaseterm.Oblivious:
		return "o"
	case chaseterm.SemiOblivious:
		return "so"
	default:
		return "restricted"
	}
}
