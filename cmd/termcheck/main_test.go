package main

import (
	"testing"

	"chaseterm"
)

func TestRunAllVariants(t *testing.T) {
	if err := run("all", "../../testdata/example1.dl"); err != nil {
		t.Fatal(err)
	}
}

func TestRunGuarded(t *testing.T) {
	if err := run("so", "../../testdata/guarded_gate.dl"); err != nil {
		t.Fatal(err)
	}
	if err := run("o", "../../testdata/guarded_gate.dl"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("all", "../../testdata/missing.dl"); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("zzz", "../../testdata/example1.dl"); err == nil {
		t.Error("bad variant accepted")
	}
}

func TestRunFixedDB(t *testing.T) {
	if err := runFixedDB("so", "../../testdata/example1.dl", "../../testdata/example1_db.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runFixedDB("all", "../../testdata/ontology.dl", "../../testdata/ontology_db.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runFixedDB("so", "../../testdata/example1.dl", "../../testdata/missing.dl"); err == nil {
		t.Error("missing db accepted")
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON("all", "../../testdata/guarded_gate.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runJSON("so", "../../testdata/example1.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runJSON("so", "../../testdata/missing.dl"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestShortName(t *testing.T) {
	if shortName(chaseterm.Oblivious) != "o" ||
		shortName(chaseterm.SemiOblivious) != "so" ||
		shortName(chaseterm.Restricted) != "restricted" {
		t.Error("short names wrong")
	}
}
