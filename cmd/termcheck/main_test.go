package main

import (
	"context"
	"testing"

	"chaseterm"
)

func TestRunAllVariants(t *testing.T) {
	if err := run(context.Background(), "all", "../../testdata/example1.dl"); err != nil {
		t.Fatal(err)
	}
}

func TestRunGuarded(t *testing.T) {
	if err := run(context.Background(), "so", "../../testdata/guarded_gate.dl"); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "o", "../../testdata/guarded_gate.dl"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "all", "../../testdata/missing.dl"); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(context.Background(), "zzz", "../../testdata/example1.dl"); err == nil {
		t.Error("bad variant accepted")
	}
}

func TestRunFixedDB(t *testing.T) {
	if err := runFixedDB(context.Background(), "so", "../../testdata/example1.dl", "../../testdata/example1_db.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runFixedDB(context.Background(), "all", "../../testdata/ontology.dl", "../../testdata/ontology_db.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runFixedDB(context.Background(), "so", "../../testdata/example1.dl", "../../testdata/missing.dl"); err == nil {
		t.Error("missing db accepted")
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON(context.Background(), "all", "../../testdata/guarded_gate.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runJSON(context.Background(), "so", "../../testdata/example1.dl"); err != nil {
		t.Fatal(err)
	}
	if err := runJSON(context.Background(), "so", "../../testdata/missing.dl"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestShortName(t *testing.T) {
	if shortName(chaseterm.Oblivious) != "o" ||
		shortName(chaseterm.SemiOblivious) != "so" ||
		shortName(chaseterm.Restricted) != "restricted" {
		t.Error("short names wrong")
	}
}
