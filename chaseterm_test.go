package chaseterm

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	rules := MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	if rules.Classify() != SimpleLinear {
		t.Fatalf("class: %v", rules.Classify())
	}
	v, err := DecideTermination(rules, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != No {
		t.Errorf("Example 1 must be non-terminating, got %v", v.Terminates)
	}
	if v.Witness == "" {
		t.Error("expected a witness cycle")
	}
	db := MustParseDatabase(`person(bob).`)
	res, err := RunChase(db, rules, SemiOblivious, ChaseOptions{MaxTriggers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != BudgetExceeded {
		t.Errorf("outcome: %v", res.Outcome)
	}
	if res.Stats.FactsAdded != 20 {
		t.Errorf("facts added: %d, want 20 (2 per trigger)", res.Stats.FactsAdded)
	}
}

func TestDecideAllVariants(t *testing.T) {
	// p(X,Y) -> ∃Z p(X,Z): o diverges, so terminates, restricted
	// terminates (via so).
	rules := MustParseRules(`p(X,Y) -> p(X,Z).`)
	cases := []struct {
		v    Variant
		want Ternary
	}{
		{Oblivious, No},
		{SemiOblivious, Yes},
		{Restricted, Yes},
	}
	for _, tc := range cases {
		v, err := DecideTermination(rules, tc.v)
		if err != nil {
			t.Fatal(err)
		}
		if v.Terminates != tc.want {
			t.Errorf("%v: got %v, want %v", tc.v, v.Terminates, tc.want)
		}
	}
}

func TestDecideRestrictedUnknown(t *testing.T) {
	// Example 2 diverges under o/so; the restricted answer is left open by
	// the paper.
	rules := MustParseRules(`p(X,Y) -> p(Y,Z).`)
	v, err := DecideTermination(rules, Restricted)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != Unknown {
		t.Errorf("restricted: got %v, want unknown", v.Terminates)
	}
	if !strings.Contains(v.Witness, "open problem") {
		t.Errorf("witness: %q", v.Witness)
	}
}

func TestGuardedViaFacade(t *testing.T) {
	rules := MustParseRules(`g(X,Y), gate(X) -> g(Y,Z).`)
	if rules.Classify() != Guarded {
		t.Fatalf("class: %v", rules.Classify())
	}
	for _, v := range []Variant{Oblivious, SemiOblivious} {
		verdict, err := DecideTermination(rules, v)
		if err != nil {
			t.Fatal(err)
		}
		if verdict.Terminates != Yes {
			t.Errorf("%v: got %v", v, verdict.Terminates)
		}
		if !strings.HasPrefix(verdict.Method, "guarded-forest") {
			t.Errorf("%v: method %s", v, verdict.Method)
		}
		if verdict.SearchSpace == 0 {
			t.Errorf("%v: no search-space report", v)
		}
	}
}

func TestCriticalDatabase(t *testing.T) {
	rules := MustParseRules(`p(X,Y) -> q(Y).`)
	db := CriticalDatabase(rules)
	if db.Size() != 2 { // p(✶,✶), q(✶)
		t.Errorf("critical size: %d", db.Size())
	}
	res, err := RunChase(db, rules, SemiOblivious, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Terminated {
		t.Errorf("outcome: %v", res.Outcome)
	}
}

func TestEntailmentAndLooping(t *testing.T) {
	inst := EntailmentInstance{
		Rules: MustParseRules(`edge(X,Y), reach(X) -> reach(Y).`),
		DB:    MustParseDatabase(`edge(a,b). edge(b,c). reach(a).`),
		Goal:  "reach(c)",
	}
	ok, err := Entails(inst)
	if err != nil || !ok {
		t.Fatalf("entails: %v %v", ok, err)
	}
	looped, err := LoopEntailment(inst)
	if err != nil {
		t.Fatal(err)
	}
	if looped.Classify() != Guarded {
		t.Errorf("looped class: %v", looped.Classify())
	}
	v, err := DecideTermination(looped, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != No {
		t.Errorf("looped verdict: %v, want non-terminating (goal is entailed)", v.Terminates)
	}

	inst.Goal = "reach(zzz)"
	inst.DB = MustParseDatabase(`edge(a,b). edge(b,c). reach(a). isolated(zzz).`)
	ok, err = Entails(inst)
	if err != nil || ok {
		t.Fatalf("entails: %v %v", ok, err)
	}
	looped, err = LoopEntailment(inst)
	if err != nil {
		t.Fatal(err)
	}
	v, err = DecideTermination(looped, SemiOblivious)
	if err != nil {
		t.Fatal(err)
	}
	if v.Terminates != Yes {
		t.Errorf("looped verdict: %v, want terminating (goal not entailed)", v.Terminates)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := ParseRules(`p(X) -> `); err == nil {
		t.Error("bad rules accepted")
	}
	if _, err := ParseDatabase(`p(X).`); err == nil {
		t.Error("non-ground fact accepted")
	}
	if _, err := ParseVariant("nope"); err == nil {
		t.Error("bad variant accepted")
	}
	inst := EntailmentInstance{
		Rules: MustParseRules(`p(X) -> q(X).`),
		DB:    MustParseDatabase(`p(a).`),
		Goal:  "q(X)",
	}
	if _, err := Entails(inst); err == nil {
		t.Error("non-ground goal accepted")
	}
	if _, err := LoopEntailment(inst); err == nil {
		t.Error("non-ground goal accepted by LoopEntailment")
	}
}

func TestVariantStrings(t *testing.T) {
	if Oblivious.String() != "oblivious" || SemiOblivious.String() != "semi-oblivious" || Restricted.String() != "restricted" {
		t.Error("variant strings wrong")
	}
	for _, s := range []string{"o", "so", "r"} {
		if _, err := ParseVariant(s); err != nil {
			t.Errorf("ParseVariant(%q): %v", s, err)
		}
	}
}

func TestRuleSetIntrospection(t *testing.T) {
	rules := MustParseRules(`p(X,Y) -> q(Y).
q(X) -> r(X,X,X).`)
	if rules.NumRules() != 2 {
		t.Errorf("NumRules: %d", rules.NumRules())
	}
	if rules.MaxArity() != 3 {
		t.Errorf("MaxArity: %d", rules.MaxArity())
	}
	preds := rules.Predicates()
	if len(preds) != 3 || preds[0] != "p/2" {
		t.Errorf("Predicates: %v", preds)
	}
	if !strings.Contains(rules.String(), "p(X,Y) -> q(Y).") {
		t.Errorf("String: %s", rules.String())
	}
}

func TestChaseResultFacts(t *testing.T) {
	db := MustParseDatabase(`person(bob).`)
	rules := MustParseRules(`person(X) -> hasFather(X,Y).`)
	res, err := RunChase(db, rules, SemiOblivious, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	facts := res.Facts()
	if len(facts) != 2 {
		t.Fatalf("facts: %v", facts)
	}
	if facts[0] != "hasFather(bob,f0_Y(bob))" {
		t.Errorf("skolem rendering: %s", facts[0])
	}
}
