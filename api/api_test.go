package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures under testdata/")

func intp(v int) *int { return &v }

// goldenCases enumerates one fully-populated value per wire type. The
// golden files under testdata/ pin the exact serialized form: an
// accidental field rename, tag typo, or omitempty change fails the
// byte comparison loudly instead of silently breaking deployed
// clients.
func goldenCases() []struct {
	file  string
	value any
} {
	return []struct {
		file  string
		value any
	}{
		{"analyze_request.json", &AnalyzeRequest{
			Kind:           KindDecide,
			Rules:          "person(X) -> hasFather(X,Y), person(Y).",
			Variant:        "so",
			Database:       "person(bob).",
			MaxShapes:      1000,
			MaxNodeTypes:   2000,
			MaxTriggers:    3000,
			MaxFacts:       4000,
			MaxDepth:       5,
			ReturnFacts:    true,
			WithAcyclicity: true,
			Portfolio:      true,
			PortfolioRace:  true,
			Trace:          true,
		}},
		{"analyze_response_classify.json", &AnalyzeResponse{
			Kind:        KindClassify,
			Fingerprint: "2f7a000000000000000000000000000000000000000000000000000000000000",
			Class:       "simple-linear",
			NumRules:    intp(1),
			MaxArity:    intp(2),
			Predicates:  []string{"hasFather/2", "person/1"},
		}},
		{"analyze_response_decide.json", &AnalyzeResponse{
			Kind:        KindDecide,
			Fingerprint: "2f7a000000000000000000000000000000000000000000000000000000000000",
			Class:       "simple-linear",
			NumRules:    intp(1),
			MaxArity:    intp(2),
			Predicates:  []string{"hasFather/2", "person/1"},
			Cached:      true,
			Decision: &Decision{
				Terminates:  "non-terminating",
				Class:       "simple-linear",
				Method:      "critical-weak-acyclicity",
				Witness:     "pumpable shape cycle: person -> hasFather",
				SearchSpace: 12,
			},
		}},
		{"analyze_response_chase.json", &AnalyzeResponse{
			Kind:        KindChase,
			Fingerprint: "2f7a000000000000000000000000000000000000000000000000000000000000",
			Class:       "simple-linear",
			NumRules:    intp(1),
			MaxArity:    intp(2),
			Predicates:  []string{"hasFather/2", "person/1"},
			Chase: &ChaseRun{
				Outcome: "terminated",
				Stats: ChaseStats{
					InitialFacts:      1,
					FactsAdded:        2,
					TriggersApplied:   3,
					TriggersNoop:      4,
					TriggersSatisfied: 5,
					MaxTermDepth:      6,
				},
				Facts: []string{"hasFather(bob,z1)", "person(bob)", "person(z1)"},
			},
		}},
		{"analyze_response_acyclicity.json", &AnalyzeResponse{
			Kind:        KindAcyclicity,
			Fingerprint: "2f7a000000000000000000000000000000000000000000000000000000000000",
			Class:       "general",
			NumRules:    intp(2),
			MaxArity:    intp(2),
			Predicates:  []string{"p/1", "q/2"},
			Acyclicity: &Acyclicity{
				RichlyAcyclic:  false,
				WeaklyAcyclic:  false,
				JointlyAcyclic: false,
				RAWitness:      "special cycle through q[2]",
				WAWitness:      "dangerous cycle through q[2]",
				JAWitness:      "feeds cycle (joint): rule#1:Y -> rule#1:Y",
			},
		}},
		{"analyze_response_portfolio.json", &AnalyzeResponse{
			Kind:        KindDecide,
			Fingerprint: "2f7a000000000000000000000000000000000000000000000000000000000000",
			Class:       "linear",
			NumRules:    intp(2),
			MaxArity:    intp(2),
			Predicates:  []string{"p/2", "q/2"},
			Decision: &Decision{
				Terminates:  "terminating",
				Class:       "linear",
				Method:      "critical-weak-acyclicity",
				SearchSpace: 9,
				DecidedBy:   "linear-exact",
				Raced:       true,
				Rungs: []Rung{
					{Name: "weak-acyclicity", Verdict: "undecided", Millis: 0.02},
					{Name: "joint-acyclicity", Verdict: "undecided", Millis: 0.03},
					{Name: "mfa", Verdict: "undecided", Millis: 1.4},
					{Name: "linear-exact", Verdict: "terminating", Millis: 2.1},
					{Name: "guarded-exact", Verdict: "undecided", Millis: 2.2, Canceled: true},
				},
			},
		}},
		{"capabilities.json", &Capabilities{
			Version:   "v2",
			Portfolio: true,
			PortfolioRungs: []string{
				"rich-acyclicity", "weak-acyclicity", "joint-acyclicity",
				"mfa", "critical-saturation", "linear-exact", "guarded-exact",
			},
			ParallelChase: true,
		}},
		{"batch_request.json", &BatchRequest{
			Jobs: []AnalyzeRequest{
				{Kind: KindClassify, Rules: "p(X) -> q(X)."},
				{Kind: KindChase, Rules: "p(X) -> q(X,Y).", Database: "p(a).", Variant: "r"},
			},
		}},
		{"batch_response.json", &BatchResponse{
			Results: []AnalyzeResponse{
				{
					Kind:        KindClassify,
					Fingerprint: "2f7a000000000000000000000000000000000000000000000000000000000000",
					Class:       "simple-linear",
					NumRules:    intp(1),
					MaxArity:    intp(1),
					Predicates:  []string{"p/1", "q/1"},
				},
				{
					Kind:  KindDecide,
					Error: &Error{Code: CodeBadRequest, Message: "parse: unexpected token"},
				},
			},
		}},
		{"error_envelope.json", &ErrorEnvelope{
			Error:     &Error{Code: CodeUnavailable, Message: "engine is shutting down"},
			RequestID: "9f2c1a07-42",
		}},
		{"analyze_response_traced.json", &AnalyzeResponse{
			Kind:        KindChase,
			Fingerprint: "2f7a000000000000000000000000000000000000000000000000000000000000",
			Class:       "simple-linear",
			NumRules:    intp(1),
			MaxArity:    intp(2),
			Predicates:  []string{"hasFather/2", "person/1"},
			Chase: &ChaseRun{
				Outcome: "budget-exceeded",
				Stats: ChaseStats{
					InitialFacts:    1,
					FactsAdded:      3000,
					TriggersApplied: 3000,
					MaxTermDepth:    3000,
				},
			},
			Trace: &Trace{
				RequestID:  "9f2c1a07-42",
				WallMillis: 12.75,
				Spans: []Span{
					{Name: "decode", Millis: 0.08},
					{Name: "queueWait", Millis: 0.5},
					{Name: "chase", Millis: 12.1},
				},
				Engine: &EngineStats{
					InitialFacts:     1,
					FactsAdded:       3000,
					TriggersApplied:  3000,
					TriggersEnqueued: 3001,
					MaxTermDepth:     3000,
				},
			},
		}},
		{"stream_event_facts.json", &StreamEvent{
			Event: StreamFacts,
			Facts: []string{"hasFather(bob,f0_Y(bob))", "person(f0_Y(bob))"},
			Stats: &ChaseStats{InitialFacts: 1, FactsAdded: 2, TriggersApplied: 1},
		}},
		{"stream_event_progress.json", &StreamEvent{
			Event: StreamProgress,
			Stats: &ChaseStats{InitialFacts: 1, FactsAdded: 512, TriggersApplied: 1024, TriggersSatisfied: 512},
		}},
		{"stream_event_done.json", &StreamEvent{
			Event:   StreamDone,
			Outcome: "terminated",
			Stats:   &ChaseStats{InitialFacts: 1, FactsAdded: 4096, TriggersApplied: 4096, MaxTermDepth: 3},
		}},
		{"stream_event_error.json", &StreamEvent{
			Event:   StreamError,
			Outcome: "canceled",
			Stats:   &ChaseStats{InitialFacts: 1, FactsAdded: 2048, TriggersApplied: 2048},
			Error:   &Error{Code: CodeCanceled, Message: "client disconnected mid-stream"},
		}},
	}
}

// TestGoldenRoundTrip: for every wire type, marshal → compare against
// the pinned fixture → unmarshal the fixture → deep-equal the original.
func TestGoldenRoundTrip(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.file, func(t *testing.T) {
			got, err := json.MarshalIndent(tc.value, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (run with -update to generate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("serialized form drifted from the fixture.\ngot:\n%s\nwant:\n%s", got, want)
			}

			// Round trip: the fixture decodes back to the original value.
			back := reflect.New(reflect.TypeOf(tc.value).Elem()).Interface()
			if err := json.Unmarshal(want, back); err != nil {
				t.Fatalf("fixture does not decode: %v", err)
			}
			if !reflect.DeepEqual(back, tc.value) {
				t.Errorf("round trip lost data.\ngot:  %+v\nwant: %+v", back, tc.value)
			}
		})
	}
}

// TestGoldenFieldsStrict: every fixture must decode with unknown fields
// disallowed — i.e. the fixtures only use field names the types still
// declare. A renamed Go field leaves a stale name in the fixture and
// fails here even if the byte comparison were regenerated carelessly.
func TestGoldenFieldsStrict(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			back := reflect.New(reflect.TypeOf(tc.value).Elem()).Interface()
			if err := dec.Decode(back); err != nil {
				t.Errorf("fixture has fields the type no longer declares: %v", err)
			}
		})
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range []Kind{KindClassify, KindDecide, KindChase, KindAcyclicity} {
		if !k.Valid() {
			t.Errorf("%q reported invalid", k)
		}
	}
	for _, k := range []Kind{"", "mystery", "Decide"} {
		if k.Valid() {
			t.Errorf("%q reported valid", k)
		}
	}
}

func TestStreamEventTerminal(t *testing.T) {
	for ev, want := range map[StreamEventType]bool{
		StreamFacts:    false,
		StreamProgress: false,
		StreamDone:     true,
		StreamError:    true,
	} {
		if got := ev.Terminal(); got != want {
			t.Errorf("%s.Terminal() = %v, want %v", ev, got, want)
		}
	}
}

func TestCodeHTTPStatus(t *testing.T) {
	cases := map[Code]int{
		CodeBadRequest:    400,
		CodeKindMismatch:  400,
		CodeTooLarge:      413,
		CodeUnprocessable: 422,
		CodeTimeout:       504,
		CodeCanceled:      499,
		CodeUnavailable:   503,
		CodeInternal:      500,
		Code("future"):    500,
	}
	for code, want := range cases {
		if got := code.HTTPStatus(); got != want {
			t.Errorf("%s → %d, want %d", code, got, want)
		}
	}
	if !CodeUnavailable.Retryable() || CodeTimeout.Retryable() {
		t.Error("retryability misclassified")
	}
}

func TestErrorString(t *testing.T) {
	e := &Error{Code: CodeBadRequest, Message: "no rules"}
	if e.Error() != "bad_request: no rules" {
		t.Errorf("got %q", e.Error())
	}
	bare := &Error{Message: "just text"}
	if bare.Error() != "just text" {
		t.Errorf("got %q", bare.Error())
	}
}
