package api

// This file defines the streaming half of the v2 wire contract:
// POST /v2/chase/stream answers a chase request with newline-delimited
// JSON (one StreamEvent per line, Content-Type application/x-ndjson)
// instead of a single response body, so instances far larger than any
// reasonable JSON document can be delivered as they are derived.
//
// A stream is a sequence of zero or more "facts"/"progress" events
// followed by exactly one terminal event — "done" on a completed run,
// "error" otherwise. Pre-flight failures (malformed request, unknown
// variant, out-of-range budget) never start a stream: they are reported
// as a plain HTTP error with the usual ErrorEnvelope. Closing the
// connection mid-stream cancels the producing chase run on the server.

// StreamEventType discriminates the events of a chase stream.
type StreamEventType string

const (
	// StreamFacts carries a batch of newly derived facts. Batches are
	// disjoint and arrive in derivation order: concatenating them yields
	// every derived fact exactly once.
	StreamFacts StreamEventType = "facts"
	// StreamProgress is a liveness heartbeat with running statistics,
	// emitted between batches even when the run is deriving nothing.
	StreamProgress StreamEventType = "progress"
	// StreamDone terminates a completed run; it carries the outcome and
	// the final statistics.
	StreamDone StreamEventType = "done"
	// StreamError terminates a failed or aborted run; it carries the
	// coded error and, when the run got far enough, the partial outcome
	// and statistics.
	StreamError StreamEventType = "error"
)

// Terminal reports whether the event ends the stream.
func (t StreamEventType) Terminal() bool { return t == StreamDone || t == StreamError }

// StreamEvent is one line of the NDJSON stream served by
// POST /v2/chase/stream. Exactly the fields relevant to the event type
// are populated.
type StreamEvent struct {
	// Event discriminates the payload.
	Event StreamEventType `json:"event"`
	// Facts is the batch of newly derived facts ("facts" events),
	// rendered in the library's surface syntax.
	Facts []string `json:"facts,omitempty"`
	// Stats is the running total at emission time; on "done" it is the
	// final tally, on "error" the partial tally if the run started.
	Stats *ChaseStats `json:"stats,omitempty"`
	// Outcome reports how the run ended: "terminated",
	// "budget-exceeded", or "depth-exceeded" on "done" events;
	// "canceled" on "error" events whose run was aborted mid-flight.
	Outcome string `json:"outcome,omitempty"`
	// Error carries the failure of an "error" event.
	Error *Error `json:"error,omitempty"`
}
