// Package api defines the versioned JSON wire contract of the chaseterm
// analysis service: the request, response, and error-envelope types
// exchanged over POST /v2/analyze. The server (internal/service, served
// by cmd/chased) and the Go client (package client) share these types
// end-to-end, so a field added here is immediately visible on both
// sides — and a field renamed here fails the golden-fixture tests
// loudly instead of silently breaking deployed clients.
//
// Versioning: this package describes wire version "v2". Compatible
// additions (new optional fields, new error codes) happen in place;
// breaking changes get a new package (api/v3) and a new route, with the
// old ones kept as compatibility shims — exactly how the v1 routes are
// served today.
package api

import "time"

// Version is the wire version this package describes, and the path
// segment of the routes that speak it (POST /v2/analyze).
const Version = "v2"

// Kind selects the analysis an AnalyzeRequest runs. On the v2 wire the
// kind always travels in the request body, not the URL.
type Kind string

const (
	// KindClassify reports the syntactic class and schema of the rules.
	KindClassify Kind = "classify"
	// KindDecide decides chase termination: for every database, or for
	// the request's database only when one is supplied.
	KindDecide Kind = "decide"
	// KindChase runs a bounded chase over the request's database, or
	// over the critical instance when none is supplied.
	KindChase Kind = "chase"
	// KindAcyclicity evaluates the positional acyclicity criteria.
	KindAcyclicity Kind = "acyclicity"
)

// Valid reports whether k is a kind this wire version defines.
func (k Kind) Valid() bool {
	switch k {
	case KindClassify, KindDecide, KindChase, KindAcyclicity:
		return true
	}
	return false
}

// AnalyzeRequest is the body of POST /v2/analyze, and one entry of a
// batch. Rules is required; everything else defaults sensibly (variant
// "so", library budgets).
type AnalyzeRequest struct {
	// Kind selects the analysis; required on /v2/analyze.
	Kind Kind `json:"kind"`
	// Rules is the rule set in the Datalog± surface syntax.
	Rules string `json:"rules"`
	// Variant applies to decide and chase kinds; empty means
	// semi-oblivious ("so"), the variant the paper's exact procedures
	// target. Accepted: "o"/"oblivious", "so"/"semi-oblivious"/"skolem",
	// "r"/"restricted"/"standard".
	Variant string `json:"variant,omitempty"`
	// Database holds ground facts. For chase kinds it seeds the run
	// (empty means the critical instance); for decide kinds it switches
	// to the fixed-database decision problem.
	Database string `json:"database,omitempty"`

	// Decide budgets (zero = library defaults).
	MaxShapes    int `json:"maxShapes,omitempty"`
	MaxNodeTypes int `json:"maxNodeTypes,omitempty"`

	// Chase budgets (zero = library defaults).
	MaxTriggers int `json:"maxTriggers,omitempty"`
	MaxFacts    int `json:"maxFacts,omitempty"`
	MaxDepth    int `json:"maxDepth,omitempty"`
	// ChaseWorkers sets the chase engine's match parallelism for this
	// request: with a value > 1 each generation's matching is split
	// across that many goroutines while fact application stays
	// single-writer, so results are bit-identical to a sequential run.
	// Zero defers to the server's configured default; 1 forces
	// sequential. Servers that predate the parallel engine reject the
	// field; probe Capabilities.ParallelChase first.
	ChaseWorkers int `json:"chaseWorkers,omitempty"`
	// ReturnFacts includes the final instance in a chase response; off
	// by default because instances can be large.
	ReturnFacts bool `json:"returnFacts,omitempty"`

	// WithAcyclicity attaches the positional acyclicity report to the
	// response, whatever the kind.
	WithAcyclicity bool `json:"withAcyclicity,omitempty"`

	// Portfolio routes an all-instance decide through the termination
	// portfolio: the ladder of cheap sound criteria runs before the
	// exact deciders, and the decision reports which rung decided
	// (Decision.DecidedBy, Decision.Rungs). Ignored when a database is
	// attached. Servers that predate the portfolio reject the field;
	// probe GET /v2/capabilities first.
	Portfolio bool `json:"portfolio,omitempty"`
	// PortfolioRace additionally races the applicable exact deciders in
	// parallel, first decisive verdict wins. Implies nothing without
	// Portfolio.
	PortfolioRace bool `json:"portfolioRace,omitempty"`

	// Trace attaches the per-request observability report — per-stage
	// durations and engine counters — to the response (see Trace).
	Trace bool `json:"trace,omitempty"`
}

// AnalyzeResponse is the body of a successful POST /v2/analyze, and one
// entry of a batch result. The classification block (class, schema,
// fingerprint) is always present; Decision, Chase, and Acyclicity are
// present according to the request's kind and options.
type AnalyzeResponse struct {
	// Kind echoes the request.
	Kind Kind `json:"kind"`
	// Fingerprint is the canonical content address of the rule set —
	// stable under rule reordering and variable renaming, and the
	// server's cache key.
	Fingerprint string `json:"fingerprint,omitempty"`

	// Classification. The numeric fields are pointers so that a
	// legitimate zero (a nullary-predicate schema has maxArity 0) is
	// emitted rather than dropped by omitempty: present ⇔ meaningful.
	Class      string   `json:"class,omitempty"`
	NumRules   *int     `json:"numRules,omitempty"`
	MaxArity   *int     `json:"maxArity,omitempty"`
	Predicates []string `json:"predicates,omitempty"`

	// Cached reports that the decision came from the server's verdict
	// cache (stored entry or a deduplicated concurrent flight).
	Cached bool `json:"cached,omitempty"`

	// Decision is the termination verdict (kind "decide").
	Decision *Decision `json:"decision,omitempty"`
	// Chase is the chase-run result (kind "chase").
	Chase *ChaseRun `json:"chase,omitempty"`
	// Acyclicity is the positional-criteria report (kind "acyclicity"
	// or withAcyclicity on any kind).
	Acyclicity *Acyclicity `json:"acyclicity,omitempty"`

	// Trace is the per-request observability report; present only when
	// the request set trace.
	Trace *Trace `json:"trace,omitempty"`

	// Error is set instead of the result sections when a batch entry
	// fails; single requests report errors at the HTTP level with an
	// ErrorEnvelope.
	Error *Error `json:"error,omitempty"`
}

// Decision is a termination verdict.
type Decision struct {
	// Terminates: "terminating", "non-terminating", or "unknown".
	Terminates string `json:"terminates"`
	// Class is the syntactic class the decision was made in.
	Class string `json:"class"`
	// Method names the deciding procedure.
	Method string `json:"method"`
	// Witness is a human-readable non-termination certificate, or a
	// diagnostic for "unknown".
	Witness string `json:"witness,omitempty"`
	// SearchSpace is the explored abstraction size (shapes or node
	// types).
	SearchSpace int `json:"searchSpace"`

	// DecidedBy names the portfolio rung whose verdict this decision
	// adopted; present only on portfolio decisions.
	DecidedBy string `json:"decidedBy,omitempty"`
	// Raced reports that the exact deciders ran as a cancellation race.
	Raced bool `json:"raced,omitempty"`
	// Rungs traces every portfolio rung that ran, in completion order.
	Rungs []Rung `json:"rungs,omitempty"`
}

// Rung is one portfolio rung's entry in a decision trace.
type Rung struct {
	// Name is the stable rung label ("weak-acyclicity", "mfa",
	// "guarded-exact", …).
	Name string `json:"name"`
	// Verdict is the rung's own answer: "terminating",
	// "non-terminating", or "undecided".
	Verdict string `json:"verdict"`
	// Millis is the rung's wall time in milliseconds.
	Millis float64 `json:"millis"`
	// Canceled marks a racing loser stopped by the winner.
	Canceled bool `json:"canceled,omitempty"`
}

// ChaseRun is the result of a bounded chase run.
type ChaseRun struct {
	// Outcome: "terminated", "budget-exceeded", "depth-exceeded", or
	// "canceled".
	Outcome string `json:"outcome"`
	// Stats aggregates the run counters.
	Stats ChaseStats `json:"stats"`
	// Facts is the final instance as rendered atoms; present only when
	// the request set returnFacts.
	Facts []string `json:"facts,omitempty"`
}

// ChaseStats mirrors chaseterm.ChaseStats on the wire.
type ChaseStats struct {
	InitialFacts      int `json:"initialFacts"`
	FactsAdded        int `json:"factsAdded"`
	TriggersApplied   int `json:"triggersApplied"`
	TriggersNoop      int `json:"triggersNoop"`
	TriggersSatisfied int `json:"triggersSatisfied"`
	MaxTermDepth      int `json:"maxTermDepth"`
}

// Acyclicity is the positional sufficient-condition report, ordered by
// strength: richly ⊆ weakly ⊆ jointly acyclic.
type Acyclicity struct {
	RichlyAcyclic  bool `json:"richlyAcyclic"`
	WeaklyAcyclic  bool `json:"weaklyAcyclic"`
	JointlyAcyclic bool `json:"jointlyAcyclic"`
	// RAWitness / WAWitness describe a dangerous cycle when the
	// corresponding check fails; JAWitness the feeds cycle over
	// existential variables.
	RAWitness string `json:"raWitness,omitempty"`
	WAWitness string `json:"waWitness,omitempty"`
	JAWitness string `json:"jaWitness,omitempty"`
}

// Capabilities is the body of GET /v2/capabilities: the feature set of
// the serving binary, so clients can discover optional request fields
// (the v2 decoder is strict and rejects unknown ones) before using
// them.
type Capabilities struct {
	// Version is the wire version of this contract ("v2").
	Version string `json:"version"`
	// Portfolio reports that decide requests accept the "portfolio" and
	// "portfolioRace" fields.
	Portfolio bool `json:"portfolio"`
	// PortfolioRungs lists the portfolio's rung names in ladder order —
	// the label set of the per-rung counters in /metrics and /v1/stats.
	PortfolioRungs []string `json:"portfolioRungs,omitempty"`
	// ParallelChase reports that chase requests accept the
	// "chaseWorkers" field.
	ParallelChase bool `json:"parallelChase"`
}

// BatchRequest is the body of POST /v2/batch: an ordered list of jobs,
// each with its kind in the body.
type BatchRequest struct {
	Jobs []AnalyzeRequest `json:"jobs"`
}

// BatchResponse returns one AnalyzeResponse per job, in input order;
// per-job failures are reported inline via AnalyzeResponse.Error.
type BatchResponse struct {
	Results []AnalyzeResponse `json:"results"`
}

// Code is a machine-readable error class. Codes are stable wire
// contract: clients branch on them, so existing values never change
// meaning (new ones may be added).
type Code string

const (
	// CodeBadRequest: the request was malformed — unparsable JSON or
	// rules, unknown variant or kind, out-of-range budget.
	CodeBadRequest Code = "bad_request"
	// CodeKindMismatch: a v1 single-job route received a body whose
	// "kind" contradicts the route.
	CodeKindMismatch Code = "kind_mismatch"
	// CodeTooLarge: the request body exceeded the server's byte cap.
	CodeTooLarge Code = "too_large"
	// CodeUnprocessable: the analysis ran but gave up on its
	// search-space budget — a property of the instance, not a server
	// fault.
	CodeUnprocessable Code = "unprocessable"
	// CodeTimeout: the per-job timeout expired before the analysis
	// finished.
	CodeTimeout Code = "timeout"
	// CodeCanceled: the client went away before the analysis finished.
	CodeCanceled Code = "canceled"
	// CodeUnavailable: the server is shutting down or overloaded;
	// retrying against a healthy replica is reasonable (the client
	// package does, boundedly).
	CodeUnavailable Code = "unavailable"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal Code = "internal"
)

// HTTPStatus returns the transport status conventionally paired with
// the code — the mapping the server uses and the client inverts.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeBadRequest, CodeKindMismatch:
		return 400
	case CodeTooLarge:
		return 413
	case CodeUnprocessable:
		return 422
	case CodeTimeout:
		return 504
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	case CodeUnavailable:
		return 503
	default:
		return 500
	}
}

// Retryable reports whether a request failing with this code may
// succeed verbatim against the same or another replica.
func (c Code) Retryable() bool { return c == CodeUnavailable }

// Error is the wire form of a failed request: a stable machine-readable
// code plus a human-readable message. It implements the error interface
// so clients can return it directly; errors.As against *api.Error
// recovers the code.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`

	// HTTPStatus is the transport status the error traveled with. Set
	// by clients for callers that care about the raw status; never
	// serialized.
	HTTPStatus int `json:"-"`

	// RetryAfter is the server's Retry-After hint, when the response
	// carried one: how long to wait before retrying. Set by clients from
	// the response header; zero means no hint. Never serialized — it
	// travels as a header, not in the body.
	RetryAfter time.Duration `json:"-"`
}

func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return string(e.Code) + ": " + e.Message
}

// ErrorEnvelope is the body of every non-2xx v2 response:
// {"error": {"code": "...", "message": "..."}}.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
	// RequestID identifies the failed request in the server's logs; the
	// same value travels in the X-Request-ID response header.
	RequestID string `json:"requestId,omitempty"`
}
