package api

// This file defines the opt-in observability section of the v2 wire:
// a request that sets "trace": true receives its per-stage durations
// and engine counters back on the response. The fields are additive —
// untraced requests and responses serialize byte-identically to the
// pre-trace wire, as the golden fixtures pin.

// Trace is the per-request observability report echoed on a traced
// response: the request identifier, the wall time the server spent on
// the job, its per-stage breakdown, and — for chase runs — the engine's
// counters. The spans cover queueing (queueWait, singleflightWait) as
// well as execution (decode, cacheLookup, decider, chase, render), so
// their sum is bounded by wallMillis plus the decode time measured
// before the job's wall clock starts.
type Trace struct {
	// RequestID identifies the request in the server's logs; the same
	// value travels in the X-Request-ID response header.
	RequestID string `json:"requestId,omitempty"`
	// WallMillis is the server-side wall time of the request.
	WallMillis float64 `json:"wallMillis"`
	// Spans lists the nonzero stages in execution order.
	Spans []Span `json:"spans,omitempty"`
	// Engine carries the chase engine's counters (chase kinds only).
	Engine *EngineStats `json:"engine,omitempty"`
}

// Span is one stage of a traced request. Names are a fixed vocabulary:
// decode, cacheLookup, singleflightWait, queueWait, decider, chase,
// render.
type Span struct {
	Name   string  `json:"name"`
	Millis float64 `json:"millis"`
}

// EngineStats is the full engine counter set of a chase run. Unlike
// ChaseStats (kept unchanged for wire stability) it includes
// TriggersEnqueued, the scheduler-side count of triggers that entered
// the worklist.
type EngineStats struct {
	InitialFacts      int `json:"initialFacts"`
	FactsAdded        int `json:"factsAdded"`
	TriggersApplied   int `json:"triggersApplied"`
	TriggersNoop      int `json:"triggersNoop"`
	TriggersSatisfied int `json:"triggersSatisfied"`
	TriggersEnqueued  int `json:"triggersEnqueued"`
	MaxTermDepth      int `json:"maxTermDepth"`
}
