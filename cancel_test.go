package chaseterm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunChaseContextCancelMidRun: a canceled context stops a divergent
// chase within the engine's check interval instead of letting it run to
// its (huge) budget, and the partial result is still inspectable.
func TestRunChaseContextCancelMidRun(t *testing.T) {
	rules := MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	db := MustParseDatabase(`person(bob).`)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunChaseContext(ctx, db, rules, SemiOblivious, ChaseOptions{
		MaxTriggers: 50_000_000,
		MaxFacts:    50_000_000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res == nil || res.Outcome != Canceled {
		t.Fatalf("got %+v, want a partial result with Outcome Canceled", res)
	}
	if res.Stats.TriggersApplied >= 50_000_000 {
		t.Fatal("chase ran to its budget despite cancellation")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestDecideTerminationContextExpired: an expired deadline surfaces as
// DeadlineExceeded on every dispatch path, including the cheap
// simple-linear one.
func TestDecideTerminationContextExpired(t *testing.T) {
	rules := MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	for _, v := range []Variant{Oblivious, SemiOblivious, Restricted} {
		if _, err := DecideTerminationContext(ctx, rules, v); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%v: got %v, want context.DeadlineExceeded", v, err)
		}
	}
}

// TestDecideTerminationOnDatabaseContextCanceled covers the fixed-
// database entry point.
func TestDecideTerminationOnDatabaseContextCanceled(t *testing.T) {
	rules := MustParseRules(`p(X,X) -> p(X,Y).`)
	db := MustParseDatabase(`p(a,a).`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecideTerminationOnDatabaseContext(ctx, db, rules, SemiOblivious); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestContextVariantsMatchPlainCalls: under a background context the new
// entry points must agree with the pre-existing signatures.
func TestContextVariantsMatchPlainCalls(t *testing.T) {
	rules := MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	plain, err1 := DecideTermination(rules, SemiOblivious)
	ctxed, err2 := DecideTerminationContext(context.Background(), rules, SemiOblivious)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors %v / %v", err1, err2)
	}
	if plain.Terminates != ctxed.Terminates || plain.Method != ctxed.Method {
		t.Fatalf("plain %+v vs context %+v", plain, ctxed)
	}

	db := CriticalDatabase(rules)
	r1, err1 := RunChase(db, rules, SemiOblivious, ChaseOptions{MaxTriggers: 100})
	r2, err2 := RunChaseContext(context.Background(), CriticalDatabase(rules), rules, SemiOblivious, ChaseOptions{MaxTriggers: 100})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors %v / %v", err1, err2)
	}
	if r1.Outcome != r2.Outcome || r1.Stats != r2.Stats {
		t.Fatalf("plain %+v vs context %+v", r1.Stats, r2.Stats)
	}
}

// TestChaseOptionsNegativeBudgets: negative budgets mean "default", not
// "fail instantly" (regression for the withDefaults clamp).
func TestChaseOptionsNegativeBudgets(t *testing.T) {
	rules := MustParseRules(`p(X) -> q(X).`)
	db := MustParseDatabase(`p(a).`)
	res, err := RunChase(db, rules, SemiOblivious, ChaseOptions{
		MaxTriggers: -1, MaxFacts: -1, MaxDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Terminated || res.Stats.TriggersApplied != 1 {
		t.Fatalf("got %v after %d triggers, want Terminated after 1",
			res.Outcome, res.Stats.TriggersApplied)
	}
}
