package chaseterm

import (
	"chaseterm/internal/chase"
	"chaseterm/internal/instance"
)

// ChaseSink receives the facts of an AnalyzeChase run incrementally,
// instead of (or in addition to) the one-shot ChaseResult. Attach one
// with WithChaseSink; the analysis service uses this to stream chase
// results over HTTP as they are derived, so an instance far larger than
// any reasonable response body can still be served.
//
// Both callbacks run synchronously on the chase goroutine: a slow sink
// slows the run (which is the intended backpressure — the engine never
// derives unboundedly far ahead of the consumer), and implementations
// must not call back into the library.
type ChaseSink interface {
	// EmitFacts delivers a batch of newly derived facts, rendered in the
	// library's surface syntax (e.g. "hasFather(bob,f0_Y(bob))"), in
	// derivation order and without duplicates. The slice is reused
	// between calls: copy it if the sink retains facts past the call.
	// stats is the running total at emission time.
	EmitFacts(facts []string, stats ChaseStats)
	// Progress is a liveness heartbeat delivered between batches (every
	// ~1024 scheduler steps), covering stretches where the run is busy
	// but deriving nothing — e.g. a restricted chase skipping satisfied
	// triggers.
	Progress(stats ChaseStats)
}

// streamBatchSize bounds the fact batches handed to a ChaseSink. Large
// enough to amortize the per-batch delivery cost (a JSON event on the
// service's wire), small enough that the first facts of a run reach the
// consumer promptly.
const streamBatchSize = 256

// sinkAdapter bridges the engine-level chase.StreamSink (FactID ranges
// over the live instance) to the public ChaseSink (rendered batches),
// coalescing per-application ranges into batches of streamBatchSize.
type sinkAdapter struct {
	in   *instance.Instance
	sink ChaseSink
	buf  []string
}

func (a *sinkAdapter) EmitFacts(lo, hi instance.FactID, stats chase.Stats) {
	for id := lo; id < hi; id++ {
		a.buf = append(a.buf, a.in.FactString(id))
	}
	if len(a.buf) >= streamBatchSize {
		a.flush(stats)
	}
}

func (a *sinkAdapter) Progress(stats chase.Stats) {
	// Flush the partial batch first so the heartbeat never overtakes
	// facts that were derived before it.
	a.flush(stats)
	a.sink.Progress(toChaseStats(stats))
}

// flush hands the buffered batch to the sink and recycles the buffer.
func (a *sinkAdapter) flush(stats chase.Stats) {
	if len(a.buf) == 0 {
		return
	}
	a.sink.EmitFacts(a.buf, toChaseStats(stats))
	a.buf = a.buf[:0]
}

func toChaseStats(s chase.Stats) ChaseStats {
	return ChaseStats{
		InitialFacts:      s.InitialFacts,
		FactsAdded:        s.FactsAdded,
		TriggersApplied:   s.TriggersApplied,
		TriggersNoop:      s.TriggersNoop,
		TriggersSatisfied: s.TriggersSatisfied,
		MaxTermDepth:      int(s.MaxTermDepth),
	}
}
