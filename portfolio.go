package chaseterm

import (
	"context"
	"time"

	"chaseterm/internal/core"
	"chaseterm/internal/portfolio"
)

// PortfolioOptions configure the portfolio scheduler of WithPortfolio.
type PortfolioOptions struct {
	// Race runs the applicable exact deciders concurrently once the
	// cheap ladder is exhausted, adopting the first decisive verdict and
	// cancelling the losers. With Race unset they run sequentially,
	// cheapest class first.
	Race bool
}

// WithPortfolio makes AnalyzeDecide run the termination portfolio
// instead of dispatching straight to the exact decider for the rule
// set's class: the ladder of cheap sound criteria — positional
// acyclicity, then bounded critical-chase rungs — runs bottom-up and
// short-circuits on the first decisive verdict, so the exact
// (PSPACE/2EXPTIME) procedures only run when every cheap rung is
// inconclusive. The report then carries Report.Portfolio: which rung
// decided and a per-rung timing trace.
//
// The portfolio answers the all-instance question; a request that also
// carries WithDatabase ignores the portfolio and decides the
// fixed-database problem directly.
func WithPortfolio(opt PortfolioOptions) RequestOption {
	return func(r *Request) {
		p := opt
		r.portfolio = &p
	}
}

// RungTiming is one rung's entry in a portfolio trace.
type RungTiming struct {
	// Rung is the stable rung name ("weak-acyclicity", "mfa",
	// "guarded-exact", …).
	Rung string
	// Verdict is the rung's own answer: "terminating",
	// "non-terminating", or "undecided".
	Verdict string
	// Elapsed is the rung's wall time.
	Elapsed time.Duration
	// Canceled marks a racing loser stopped by the winner.
	Canceled bool
}

// PortfolioReport is the provenance of a portfolio decision
// (Report.Portfolio).
type PortfolioReport struct {
	// DecidedBy names the rung whose verdict the report adopted — empty
	// only when every applicable rung was inconclusive. For the
	// restricted variant it names the rung that decided the underlying
	// CT^so question, whether or not the Yes transferred.
	DecidedBy string
	// Raced reports that the exact deciders ran as a cancellation race.
	Raced bool
	// Rungs traces every rung that ran, in completion order.
	Rungs []RungTiming
}

// decidePortfolio is the portfolio-scheduled all-instance decision
// behind Analyzer.Analyze (WithPortfolio).
func decidePortfolio(ctx context.Context, rules *RuleSet, v Variant, opt DecideOptions, popt PortfolioOptions) (*Verdict, *PortfolioReport, error) {
	class := rules.Classify()
	if v == Restricted {
		// Same transfer as decideRestricted: CT^so Yes implies restricted
		// termination; anything else stays open.
		so, prep, err := decidePortfolio(ctx, rules, SemiOblivious, opt, popt)
		if err != nil {
			return nil, nil, err
		}
		if so.Terminates == Yes {
			so.Method += "→restricted"
			return so, prep, nil
		}
		return &Verdict{
			Terminates: Unknown,
			Class:      class,
			Method:     "restricted-open",
			Witness: "deciding restricted-chase termination is the paper's open problem; " +
				"CT^so gave " + so.Terminates.String(),
		}, prep, nil
	}
	cv := core.VariantSemiOblivious
	if v == Oblivious {
		cv = core.VariantOblivious
	}
	res, err := portfolio.Run(ctx, rules.rs, cv, portfolio.Options{
		Core: core.Options{
			MaxShapes:    opt.MaxShapes,
			MaxNodeTypes: opt.MaxNodeTypes,
		},
		OracleMaxTriggers: opt.OracleMaxTriggers,
		OracleMaxFacts:    opt.OracleMaxFacts,
		Workers:           opt.OracleWorkers,
		Race:              popt.Race,
	})
	if err != nil {
		return nil, nil, err
	}
	verdict := &Verdict{
		Class:       class,
		Method:      res.Evidence.Method,
		Witness:     res.Evidence.Witness,
		SearchSpace: res.Evidence.SearchSpace,
	}
	switch res.Verdict {
	case portfolio.Terminating:
		verdict.Terminates = Yes
	case portfolio.NonTerminating:
		verdict.Terminates = No
	default:
		verdict.Terminates = Unknown
	}
	prep := &PortfolioReport{DecidedBy: res.DecidedBy, Raced: res.Raced}
	for _, r := range res.Rungs {
		prep.Rungs = append(prep.Rungs, RungTiming{
			Rung:     r.Rung,
			Verdict:  r.Verdict.String(),
			Elapsed:  r.Elapsed,
			Canceled: r.Canceled,
		})
	}
	return verdict, prep, nil
}

// PortfolioRungNames lists the portfolio's rung names in ladder order —
// the label set of the service's per-rung counters.
func PortfolioRungNames() []string { return portfolio.RungNames() }
