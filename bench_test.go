// Benchmarks: one per experiment of DESIGN.md §4 (E1–E12), plus
// engine-level micro-benchmarks. Regenerate the full tables with
// cmd/chasebench; these benches track the per-operation costs of the same
// code paths under `go test -bench=. -benchmem`.
package chaseterm

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/chase"
	"chaseterm/internal/core"
	"chaseterm/internal/critical"
	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
	"chaseterm/internal/looping"
	"chaseterm/internal/parse"
	"chaseterm/internal/workload"
)

// BenchmarkE1_Example1Chase: cost of one bounded run of the paper's
// Example 1 (100 triggers ≈ 200 facts), per variant.
func BenchmarkE1_Example1Chase(b *testing.B) {
	rules := workload.Example1()
	db := workload.Example1DB()
	for _, v := range []chase.Variant{chase.Oblivious, chase.SemiOblivious, chase.Restricted} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := chase.RunFromAtoms(db, rules, v, chase.Options{MaxTriggers: 100})
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome == chase.Terminated {
					b.Fatal("expected divergence")
				}
			}
		})
	}
}

// BenchmarkChaseCancelOverhead isolates what the cooperative-
// cancellation check costs the chase hot loop: the same divergent
// 10k-trigger run under a background context (Done() is nil, so the
// checks short-circuit) and under a live cancelable context (the
// Done channel is polled every 1024 applications). The two timings
// should be indistinguishable.
func BenchmarkChaseCancelOverhead(b *testing.B) {
	rules := workload.Example1()
	db := workload.Example1DB()
	opt := chase.Options{MaxTriggers: 10_000, MaxFacts: 1_000_000}
	b.Run("background", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := chase.RunFromAtomsContext(context.Background(), db, rules, chase.SemiOblivious, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cancelable", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < b.N; i++ {
			if _, err := chase.RunFromAtomsContext(ctx, db, rules, chase.SemiOblivious, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE2_Example2Decide: the exact decision on Example 2.
func BenchmarkE2_Example2Decide(b *testing.B) {
	rules := workload.Example2()
	for i := 0; i < b.N; i++ {
		res, err := core.DecideLinear(rules, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict.Answer != core.NonTerminating {
			b.Fatal("wrong answer")
		}
	}
}

// benchSLSets pre-generates SL rule sets for E3/E4.
func benchSLSets(n int) []*logic.RuleSet {
	rng := rand.New(rand.NewSource(21))
	sets := make([]*logic.RuleSet, n)
	for i := range sets {
		sets[i] = workload.RandomSL(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
	}
	return sets
}

// BenchmarkE3_SLDecideSemiOblivious: Theorem 1 decision throughput (so).
func BenchmarkE3_SLDecideSemiOblivious(b *testing.B) {
	sets := benchSLSets(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecideLinear(sets[i%len(sets)], core.VariantSemiOblivious, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_SLDecideOblivious: Theorem 1 decision throughput (o), with
// the positional RA check for comparison.
func BenchmarkE4_SLDecideOblivious(b *testing.B) {
	sets := benchSLSets(64)
	b.Run("critical-rich-acyclicity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DecideLinear(sets[i%len(sets)], core.VariantOblivious, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("positional-RA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acyclicity.IsRichlyAcyclic(sets[i%len(sets)])
		}
	})
}

// BenchmarkE5_LinearDecide: Theorem 2 decision on non-simple linear sets.
func BenchmarkE5_LinearDecide(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	sets := make([]*logic.RuleSet, 64)
	for i := range sets {
		sets[i] = workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 3, NumRules: 3, RepeatProb: 0.5})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DecideLinear(sets[i%len(sets)], core.VariantSemiOblivious, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_SLFamily: Theorem 3(1) — the NL scaling series over the
// rule-chain family.
func BenchmarkE6_SLFamily(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		rules := workload.SLFamily(n, true)
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DecideLinear(rules, core.VariantSemiOblivious, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_LinearArity: Theorem 3(2) — exponential arity scaling.
func BenchmarkE7_LinearArity(b *testing.B) {
	for _, w := range []int{2, 4, 6} {
		rules := workload.LinearArityFamily(w)
		b.Run(fmt.Sprintf("arity=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DecideLinear(rules, core.VariantSemiOblivious, core.Options{MaxShapes: 5_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_GuardedDecide: Theorem 4 — the guarded forest decider, both
// on random sets and on the arity family.
func BenchmarkE8_GuardedDecide(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	sets := make([]*logic.RuleSet, 32)
	for i := range sets {
		sets[i] = workload.RandomGuarded(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
	}
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DecideGuarded(sets[i%len(sets)], core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{2, 3, 4} {
		rules := workload.GuardedArityFamily(w)
		b.Run(fmt.Sprintf("arity=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.DecideGuarded(rules, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9_Looping: the entailment→termination reduction, end to end
// (loop + exact decision), on the binary-counter family.
func BenchmarkE9_Looping(b *testing.B) {
	for _, bits := range []int{2, 4, 6} {
		inst := looping.Counter(bits)
		b.Run(fmt.Sprintf("counter=%db", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				looped, err := looping.Loop(inst)
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.DecideLinear(looped, core.VariantSemiOblivious, core.Options{MaxShapes: 5_000_000})
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict.Answer != core.NonTerminating {
					b.Fatal("counter goal must be entailed")
				}
			}
		})
	}
}

// BenchmarkE10_ChaseAnatomy: full terminating chase runs per variant on
// the ontology scenario (the o/so/restricted work comparison).
func BenchmarkE10_ChaseAnatomy(b *testing.B) {
	rules := workload.OntologySL()
	db := workload.OntologyDB()
	for _, v := range []chase.Variant{chase.Oblivious, chase.SemiOblivious, chase.Restricted} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := chase.RunFromAtoms(db, rules, v, chase.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome != chase.Terminated {
					b.Fatal("expected termination")
				}
			}
		})
	}
}

// BenchmarkE11_Acyclicity: positional WA/RA checks (the containment
// experiment's workhorses).
func BenchmarkE11_Acyclicity(b *testing.B) {
	sets := benchSLSets(64)
	b.Run("weak", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acyclicity.IsWeaklyAcyclic(sets[i%len(sets)])
		}
	})
	b.Run("rich", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acyclicity.IsRichlyAcyclic(sets[i%len(sets)])
		}
	})
}

// BenchmarkE12_AuxTransform: the o→so reduction (transform + decision)
// against the direct o-decision.
func BenchmarkE12_AuxTransform(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	sets := make([]*logic.RuleSet, 32)
	for i := range sets {
		sets[i] = workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
	}
	b.Run("direct-o", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DecideLinear(sets[i%len(sets)], core.VariantOblivious, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("via-aux", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aux := critical.AuxTransform(sets[i%len(sets)])
			if _, err := core.DecideLinear(aux, core.VariantSemiOblivious, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Engine micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkEngineHomomorphism: backtracking join over a chain instance.
func BenchmarkEngineHomomorphism(b *testing.B) {
	in := instance.New()
	e := in.Pred("e", 2)
	terms := make([]instance.TermID, 512)
	for i := range terms {
		terms[i] = in.Terms.Const(fmt.Sprintf("c%d", i))
	}
	for i := 0; i+1 < len(terms); i++ {
		in.Add(e, []instance.TermID{terms[i], terms[i+1]})
	}
	pat, err := instance.CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
		logic.NewAtom("e", logic.Variable("Z"), logic.Variable("W")),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := in.CountHoms(pat); n != 509 {
			b.Fatalf("homs: %d", n)
		}
	}
}

// BenchmarkEngineTriggerThroughput: a saturating datalog-style run, facts
// per second.
func BenchmarkEngineTriggerThroughput(b *testing.B) {
	rules := parse.MustParseRules(`e(X,Y) -> r(X,Y).
r(X,Y) -> s(Y,X).`)
	var facts []logic.Atom
	for i := 0; i < 400; i++ {
		facts = append(facts, logic.NewAtom("e",
			logic.Constant(fmt.Sprintf("a%d", i)), logic.Constant(fmt.Sprintf("a%d", i+1))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chase.RunFromAtoms(facts, rules, chase.SemiOblivious, chase.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != chase.Terminated {
			b.Fatal("expected termination")
		}
	}
}

// BenchmarkEngineCriticalInstance: building I*(Σ) for a mid-sized schema.
func BenchmarkEngineCriticalInstance(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	rules := workload.RandomGuarded(rng, workload.Config{NumPreds: 8, MaxArity: 3, NumRules: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := critical.Instance(rules); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScaleOntology: a realistic materialization workload — a
// DL-Lite TBox over a 2000-fact ABox, per variant. The setup certifies
// termination with the exact decider AND resamples until the saturation is
// of moderate size (a terminating chase can still be astronomically large:
// chains of qualified existentials multiply; certification says "finite",
// not "small").
func BenchmarkEngineScaleOntology(b *testing.B) {
	rng := rand.New(rand.NewSource(26))
	var rules *logic.RuleSet
	var db []logic.Atom
	for {
		rules = workload.RandomInclusionDependencies(rng, 12, 6, 40)
		res, err := core.DecideLinear(rules, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Verdict.Answer != core.Terminating {
			continue
		}
		db = workload.RandomABox(rng, rules, 2000, 300)
		trial, err := chase.RunFromAtoms(db, rules, chase.SemiOblivious,
			chase.Options{MaxFacts: 120_000, MaxTriggers: 120_000})
		if err != nil {
			b.Fatal(err)
		}
		if trial.Outcome == chase.Terminated && trial.Stats.FactsAdded >= 2_000 {
			break
		}
	}
	for _, v := range []chase.Variant{chase.SemiOblivious, chase.Restricted} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := chase.RunFromAtoms(db, rules, v, chase.Options{MaxFacts: 500_000, MaxTriggers: 500_000})
				if err != nil {
					b.Fatal(err)
				}
				if res.Outcome != chase.Terminated {
					b.Fatalf("outcome %v after %d facts", res.Outcome, res.Stats.FactsAdded)
				}
				b.ReportMetric(float64(res.Stats.FactsAdded), "facts/run")
			}
		})
	}
}

// BenchmarkCoreComputation: instance minimization on a chase result with
// foldable nulls.
func BenchmarkCoreComputation(b *testing.B) {
	rules := workload.DataExchange()
	db := workload.DataExchangeDB()
	db = append(db, logic.NewAtom("emp", logic.Constant("carol"), logic.Constant("toys")))
	res, err := chase.RunFromAtoms(db, rules, chase.Restricted, chase.Options{})
	if err != nil || res.Outcome != chase.Terminated {
		b.Fatal("setup failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, removed := instance.Core(res.Instance)
		if removed == 0 {
			b.Fatal("expected folding")
		}
	}
}

// BenchmarkE14_CriteriaLadder: per-criterion costs on one linear set.
func BenchmarkE14_CriteriaLadder(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	rs := workload.RandomLinear(rng, workload.Config{NumPreds: 4, MaxArity: 3, NumRules: 6, RepeatProb: 0.4})
	b.Run("joint-acyclicity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			acyclicity.IsJointlyAcyclic(rs)
		}
	})
	b.Run("critical-WA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DecideLinear(rs, core.VariantSemiOblivious, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13_SequenceSearch: the restricted-chase sequence explorer on
// the ∀/∃ separation instance.
func BenchmarkE13_SequenceSearch(b *testing.B) {
	rules := parse.MustParseRules("r(X,Y) -> r(Y,Z).\nr(X,Y) -> r(Y,X).")
	db := parse.MustParseFacts(`r(a,b).`)
	for i := 0; i < b.N; i++ {
		res, err := chase.ExploreRestrictedTermination(db, rules, chase.ExploreOptions{})
		if err != nil || !res.Found {
			b.Fatalf("found=%v err=%v", res != nil && res.Found, err)
		}
	}
}

// BenchmarkParse: parser throughput on the ontology text.
func BenchmarkParse(b *testing.B) {
	src := workload.OntologySL().String()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := parse.ParseRules(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstanceContains: the dedup probe of the insertion hot path —
// an integer-keyed open-addressed hit/miss pair. Must report 0 allocs/op.
func BenchmarkInstanceContains(b *testing.B) {
	in := instance.New()
	e := in.Pred("e", 2)
	terms := make([]instance.TermID, 1024)
	for i := range terms {
		terms[i] = in.Terms.Const(fmt.Sprintf("c%d", i))
	}
	for i := 0; i+1 < len(terms); i++ {
		in.Add(e, []instance.TermID{terms[i], terms[i+1]})
	}
	hit := []instance.TermID{terms[500], terms[501]}
	miss := []instance.TermID{terms[501], terms[500]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !in.Contains(e, hit) || in.Contains(e, miss) {
			b.Fatal("membership flipped")
		}
	}
}

// BenchmarkEngineSteadyState: a full chase pass over an already saturated
// instance — every application is a no-op and every rediscovered trigger
// a dedup hit. This is the regime the allocation-free hot path targets;
// the per-trigger cost here is the engine's floor.
func BenchmarkEngineSteadyState(b *testing.B) {
	rules := parse.MustParseRules("e(X,Y) -> r(X,Y).\nr(X,Y) -> s(Y,X).")
	var facts []logic.Atom
	for i := 0; i < 400; i++ {
		facts = append(facts, logic.NewAtom("e",
			logic.Constant(fmt.Sprintf("a%d", i)), logic.Constant(fmt.Sprintf("a%d", i+1))))
	}
	in, err := instance.FromAtoms(facts)
	if err != nil {
		b.Fatal(err)
	}
	if res, err := chase.Run(in, rules, chase.SemiOblivious, chase.Options{}); err != nil || res.Outcome != chase.Terminated {
		b.Fatal("saturation failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chase.Run(in, rules, chase.SemiOblivious, chase.Options{})
		if err != nil || res.Outcome != chase.Terminated || res.Stats.FactsAdded != 0 {
			b.Fatal("steady-state run derived facts")
		}
	}
}
