package chaseterm

import (
	"testing"
)

func chaseOntology(t *testing.T) *ChaseResult {
	t.Helper()
	rules := MustParseRules(`
professor(X) -> teaches(X,C).
teaches(X,C) -> course(C).
advises(X,Y) -> professor(X).
advises(X,Y) -> student(Y).
`)
	db := MustParseDatabase(`
advises(turing, ada).
teaches(church, logic101).
`)
	res, err := RunChase(db, rules, Restricted, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Terminated {
		t.Fatal("ontology chase did not terminate")
	}
	return res
}

func TestQueryCertainAnswers(t *testing.T) {
	res := chaseOntology(t)
	// Who teaches a course? Certain answers must be constants only:
	// turing teaches an anonymous course (null) — that pair is not a
	// certain (P,C) answer, but P=turing alone is not asked here.
	ans, err := res.Query(`teaches(P,C)`, "P", "C")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != "church" || ans[0][1] != "logic101" {
		t.Errorf("answers: %v", ans)
	}
	// Projecting only P keeps turing: the C-binding may be a null as long
	// as the projected variables are constants.
	ans, err = res.Query(`teaches(P,C)`, "P")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 || ans[0][0] != "church" || ans[1][0] != "turing" {
		t.Errorf("answers: %v", ans)
	}
}

func TestQueryJoin(t *testing.T) {
	res := chaseOntology(t)
	// Professors who teach an actual known course.
	ans, err := res.Query(`professor(P), teaches(P,C), course(C)`, "P", "C")
	if err != nil {
		t.Fatal(err)
	}
	// church is not derived to be a professor (no rule says so), and
	// turing's course is anonymous: no certain answers.
	if len(ans) != 0 {
		t.Errorf("answers: %v", ans)
	}
}

func TestQueryBoolean(t *testing.T) {
	res := chaseOntology(t)
	// Boolean query: does SOMEONE teach something? Yes — nulls count for
	// boolean certain answers.
	ok, err := res.Holds(`professor(P), teaches(P,C)`)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("boolean query should hold (turing teaches an anonymous course)")
	}
	ok, err = res.Holds(`student(S), teaches(S,C)`)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("no student teaches")
	}
}

func TestQueryDedupAndSort(t *testing.T) {
	rules := MustParseRules(`e(X,Y) -> conn(X), conn(Y).`)
	db := MustParseDatabase(`e(b,a). e(a,b). e(c,a).`)
	res, err := RunChase(db, rules, Restricted, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := res.Query(`conn(X)`, "X")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 3 || ans[0][0] != "a" || ans[1][0] != "b" || ans[2][0] != "c" {
		t.Errorf("answers: %v", ans)
	}
}

func TestQueryErrors(t *testing.T) {
	res := chaseOntology(t)
	if _, err := res.Query(`teaches(P,C`, "P"); err == nil {
		t.Error("bad query text accepted")
	}
	if _, err := res.Query(`teaches(P,C)`, "Z"); err == nil {
		t.Error("unknown answer variable accepted")
	}
	if _, err := res.Holds(`teaches(P,`); err == nil {
		t.Error("bad boolean query accepted")
	}
}

// TestQueryRepeatedVariable: repeated variables in query atoms act as
// equality constraints.
func TestQueryRepeatedVariable(t *testing.T) {
	rules := MustParseRules(`likes(X,Y) -> knows(X,Y).`)
	db := MustParseDatabase(`likes(a,a). likes(a,b).`)
	res, err := RunChase(db, rules, Restricted, ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := res.Query(`knows(X,X)`, "X")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != "a" {
		t.Errorf("answers: %v", ans)
	}
}
