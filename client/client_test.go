package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chaseterm/api"
)

func envelope(w http.ResponseWriter, code api.Code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code.HTTPStatus())
	json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: &api.Error{Code: code, Message: msg}}) //nolint:errcheck
}

func TestAnalyzeMapsEnvelopeToTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/analyze" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		envelope(w, api.CodeUnprocessable, "node-type budget exceeded")
	}))
	defer srv.Close()

	c := New(srv.URL)
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindDecide, Rules: "p(X) -> q(X)."})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T %v, want *api.Error", err, err)
	}
	if apiErr.Code != api.CodeUnprocessable || apiErr.HTTPStatus != 422 {
		t.Errorf("got %+v", apiErr)
	}
	if apiErr.Message != "node-type budget exceeded" {
		t.Errorf("message %q", apiErr.Message)
	}
}

// TestAnalyzeRetriesOn503: "unavailable" is the one retryable failure —
// a replica draining on shutdown; the client retries boundedly and
// succeeds against the recovered server.
func TestAnalyzeRetriesOn503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			envelope(w, api.CodeUnavailable, "engine is shutting down")
			return
		}
		json.NewEncoder(w).Encode(api.AnalyzeResponse{Kind: api.KindClassify, Class: "linear"}) //nolint:errcheck
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	resp, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X,X) -> q(X)."})
	if err != nil {
		t.Fatalf("after retries: %v", err)
	}
	if resp.Class != "linear" || calls.Load() != 3 {
		t.Errorf("resp %+v after %d calls", resp, calls.Load())
	}
}

func TestAnalyzeRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelope(w, api.CodeUnavailable, "still down")
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("err %v, want unavailable", err)
	}
	if calls.Load() != 3 {
		t.Errorf("made %d attempts, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestNonRetryableErrorsAreNotRetried: a 400 is the client's own bug;
// replaying it can only waste the server's time.
func TestNonRetryableErrorsAreNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelope(w, api.CodeBadRequest, "no rules")
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(5), WithRetryBackoff(time.Millisecond))
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindDecide})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("err %v, want bad_request", err)
	}
	if calls.Load() != 1 {
		t.Errorf("made %d attempts, want 1", calls.Load())
	}
}

// TestRetryHonorsContext: a context canceled between attempts ends the
// retry loop with the context error, not another round trip.
func TestRetryHonorsContext(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelope(w, api.CodeUnavailable, "down")
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := New(srv.URL, WithRetries(100), WithRetryBackoff(time.Hour))
	start := time.Now()
	_, err := c.Analyze(ctx, api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("retry loop ignored the context while backing off")
	}
	if calls.Load() != 1 {
		t.Errorf("made %d attempts before the deadline, want 1", calls.Load())
	}
}

// TestNonEnvelopeErrorBody: a proxy's plain-text 503 still maps to a
// typed, retryable error.
func TestNonEnvelopeErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream connect error", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(0))
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T, want *api.Error", err)
	}
	if apiErr.Code != api.CodeUnavailable || apiErr.HTTPStatus != 503 {
		t.Errorf("got %+v", apiErr)
	}
}

// streamServer serves a canned NDJSON event sequence on
// /v2/chase/stream.
func streamServer(t *testing.T, events []api.StreamEvent) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/chase/stream" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range events {
			enc.Encode(ev) //nolint:errcheck
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestChaseStreamDeliversEventsAndDone: the callback sees the non-
// terminal events in order; the done event is returned, not called
// back.
func TestChaseStreamDeliversEventsAndDone(t *testing.T) {
	srv := streamServer(t, []api.StreamEvent{
		{Event: api.StreamFacts, Facts: []string{"q(a)", "q(b)"}, Stats: &api.ChaseStats{FactsAdded: 2}},
		{Event: api.StreamProgress, Stats: &api.ChaseStats{FactsAdded: 2, TriggersApplied: 5}},
		{Event: api.StreamFacts, Facts: []string{"q(c)"}, Stats: &api.ChaseStats{FactsAdded: 3}},
		{Event: api.StreamDone, Outcome: "terminated", Stats: &api.ChaseStats{FactsAdded: 3}},
	})
	var got []api.StreamEvent
	done, err := New(srv.URL).ChaseStream(context.Background(), api.AnalyzeRequest{Rules: "p(X) -> q(X)."},
		func(ev api.StreamEvent) error {
			got = append(got, ev)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if done.Outcome != "terminated" || done.Stats == nil || done.Stats.FactsAdded != 3 {
		t.Errorf("done event %+v", done)
	}
	if len(got) != 3 || got[0].Event != api.StreamFacts || got[1].Event != api.StreamProgress {
		t.Errorf("callback saw %+v", got)
	}
	if len(got) > 0 && len(got[0].Facts) != 2 {
		t.Errorf("first batch %+v", got[0].Facts)
	}
}

// TestChaseStreamTerminalErrorIsTyped: an in-band "error" event maps to
// the same typed *api.Error as an envelope would.
func TestChaseStreamTerminalErrorIsTyped(t *testing.T) {
	srv := streamServer(t, []api.StreamEvent{
		{Event: api.StreamFacts, Facts: []string{"q(a)"}},
		{Event: api.StreamError, Outcome: "canceled",
			Stats: &api.ChaseStats{FactsAdded: 1, TriggersApplied: 1},
			Error: &api.Error{Code: api.CodeTimeout, Message: "per-job timeout expired"}},
	})
	ev, err := New(srv.URL).ChaseStream(context.Background(), api.AnalyzeRequest{Rules: "p(X) -> q(X)."}, nil)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeTimeout {
		t.Fatalf("err %v, want typed timeout", err)
	}
	if apiErr.HTTPStatus != 0 {
		t.Errorf("in-band error carries HTTPStatus %d, want 0 (it traveled on a 200)", apiErr.HTTPStatus)
	}
	// The terminal event rides along, so the partial tally of an
	// aborted run is not lost.
	if ev == nil || ev.Outcome != "canceled" || ev.Stats == nil || ev.Stats.FactsAdded != 1 {
		t.Errorf("terminal error event %+v, want the partial outcome/stats", ev)
	}
}

// TestChaseStreamPreflightError: a non-2xx before any event decodes the
// usual envelope.
func TestChaseStreamPreflightError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		envelope(w, api.CodeBadRequest, "unparsable rules")
	}))
	defer srv.Close()
	_, err := New(srv.URL).ChaseStream(context.Background(), api.AnalyzeRequest{Rules: "nope"}, nil)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest || apiErr.HTTPStatus != 400 {
		t.Fatalf("err %v, want typed bad_request with status 400", err)
	}
}

// TestChaseStreamCallbackErrorStopsReading: the consumer can bail out
// mid-stream; its error comes back verbatim.
func TestChaseStreamCallbackErrorStopsReading(t *testing.T) {
	srv := streamServer(t, []api.StreamEvent{
		{Event: api.StreamFacts, Facts: []string{"q(a)"}},
		{Event: api.StreamFacts, Facts: []string{"q(b)"}},
		{Event: api.StreamDone, Outcome: "terminated"},
	})
	stop := errors.New("seen enough")
	calls := 0
	_, err := New(srv.URL).ChaseStream(context.Background(), api.AnalyzeRequest{Rules: "p(X) -> q(X)."},
		func(api.StreamEvent) error {
			calls++
			return stop
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err %v, want the callback's error", err)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after asking to stop", calls)
	}
}

// TestChaseStreamTruncatedStream: a stream that ends without a terminal
// event is a failure, not a silent success.
func TestChaseStreamTruncatedStream(t *testing.T) {
	srv := streamServer(t, []api.StreamEvent{
		{Event: api.StreamFacts, Facts: []string{"q(a)"}},
	})
	_, err := New(srv.URL).ChaseStream(context.Background(), api.AnalyzeRequest{Rules: "p(X) -> q(X)."}, nil)
	if err == nil || !strings.Contains(err.Error(), "terminal") {
		t.Fatalf("err %v, want a missing-terminal-event failure", err)
	}
}

// TestChaseStreamRetriesPreflight503: an "unavailable" answered before
// the stream starts is retried like any other request; once events have
// flowed it never is (exercised implicitly: the terminal-error test
// above makes exactly one attempt).
func TestChaseStreamRetriesPreflight503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			envelope(w, api.CodeUnavailable, "draining")
			return
		}
		enc := json.NewEncoder(w)
		enc.Encode(api.StreamEvent{Event: api.StreamDone, Outcome: "terminated"}) //nolint:errcheck
	}))
	defer srv.Close()
	done, err := New(srv.URL, WithRetries(2), WithRetryBackoff(time.Millisecond)).
		ChaseStream(context.Background(), api.AnalyzeRequest{Rules: "p(X) -> q(X)."}, nil)
	if err != nil || done.Outcome != "terminated" {
		t.Fatalf("after retry: done=%+v err=%v", done, err)
	}
	if calls.Load() != 2 {
		t.Errorf("made %d attempts, want 2", calls.Load())
	}
}

func TestHealthy(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()
	if err := New(srv.URL).Healthy(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := New(srv.URL + "/missing").Healthy(context.Background()); err == nil {
		t.Fatal("health check against a 404 passed")
	}
}

func TestCapabilities(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/capabilities" || r.Method != http.MethodGet {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		json.NewEncoder(w).Encode(api.Capabilities{ //nolint:errcheck
			Version:        api.Version,
			Portfolio:      true,
			PortfolioRungs: []string{"weak-acyclicity", "guarded-exact"},
		})
	}))
	defer srv.Close()

	caps, err := New(srv.URL).Capabilities(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if caps.Version != api.Version || !caps.Portfolio || len(caps.PortfolioRungs) != 2 {
		t.Errorf("got %+v", caps)
	}
}

// TestCapabilitiesAgainstOldServer: a server that predates the endpoint
// answers 404; that must surface as a typed *api.Error so callers can
// distinguish "no optional features" from a transport failure.
func TestCapabilitiesAgainstOldServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()

	_, err := New(srv.URL).Capabilities(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T %v, want *api.Error", err, err)
	}
	if apiErr.HTTPStatus != http.StatusNotFound {
		t.Errorf("HTTPStatus = %d, want 404", apiErr.HTTPStatus)
	}
}

// TestRetryBackoffGrowsWithJitter pins the backoff schedule's shape:
// exponential growth per attempt, jittered within the upper half of
// the window, capped at 32x base, and overridden by a Retry-After
// hint.
func TestRetryBackoffGrowsWithJitter(t *testing.T) {
	c := New("http://unused", WithRetryBackoff(100*time.Millisecond))
	for attempt, base := range []time.Duration{
		100 * time.Millisecond, // attempt 0
		200 * time.Millisecond, // attempt 1: doubled
		400 * time.Millisecond, // attempt 2: doubled again
	} {
		for i := 0; i < 50; i++ {
			d := c.retryDelay(attempt, nil)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
	// The exponential growth caps at 32x base.
	for i := 0; i < 50; i++ {
		if d := c.retryDelay(100, nil); d > 32*100*time.Millisecond {
			t.Fatalf("attempt 100: delay %v exceeds the 32x cap", d)
		}
	}
	// A Retry-After hint wins outright, no jitter.
	hinted := &api.Error{Code: api.CodeUnavailable, RetryAfter: 7 * time.Second}
	if d := c.retryDelay(0, hinted); d != 7*time.Second {
		t.Fatalf("hinted delay %v, want 7s", d)
	}
}

// TestRetryAfterHeaderIsParsed: a 503 with Retry-After surfaces the
// hint on the typed error, for both envelope and non-envelope bodies.
func TestRetryAfterHeaderIsParsed(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		envelope(w, api.CodeUnavailable, "draining")
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(0))
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T %v, want *api.Error", err, err)
	}
	if apiErr.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", apiErr.RetryAfter)
	}

	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		http.Error(w, "upstream connect error", http.StatusServiceUnavailable)
	}))
	defer plain.Close()
	_, err = New(plain.URL, WithRetries(0)).Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 2*time.Second {
		t.Fatalf("non-envelope RetryAfter = %+v, want 2s", err)
	}
}

// TestRetryWaitsOutRetryAfter: the retry loop actually sleeps the
// hinted duration before the next attempt.
func TestRetryWaitsOutRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstFail, retried time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			firstFail = time.Now()
			w.Header().Set("Retry-After", "1")
			envelope(w, api.CodeUnavailable, "back in a second")
			return
		}
		retried = time.Now()
		json.NewEncoder(w).Encode(api.AnalyzeResponse{Kind: api.KindClassify, Class: "linear"}) //nolint:errcheck
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetries(1), WithRetryBackoff(time.Millisecond))
	if _, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X,X) -> q(X)."}); err != nil {
		t.Fatalf("after retry: %v", err)
	}
	if wait := retried.Sub(firstFail); wait < time.Second {
		t.Fatalf("retried after %v, want at least the hinted 1s", wait)
	}
}
