package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"chaseterm/api"
)

func envelope(w http.ResponseWriter, code api.Code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code.HTTPStatus())
	json.NewEncoder(w).Encode(api.ErrorEnvelope{Error: &api.Error{Code: code, Message: msg}}) //nolint:errcheck
}

func TestAnalyzeMapsEnvelopeToTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/analyze" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		envelope(w, api.CodeUnprocessable, "node-type budget exceeded")
	}))
	defer srv.Close()

	c := New(srv.URL)
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindDecide, Rules: "p(X) -> q(X)."})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T %v, want *api.Error", err, err)
	}
	if apiErr.Code != api.CodeUnprocessable || apiErr.HTTPStatus != 422 {
		t.Errorf("got %+v", apiErr)
	}
	if apiErr.Message != "node-type budget exceeded" {
		t.Errorf("message %q", apiErr.Message)
	}
}

// TestAnalyzeRetriesOn503: "unavailable" is the one retryable failure —
// a replica draining on shutdown; the client retries boundedly and
// succeeds against the recovered server.
func TestAnalyzeRetriesOn503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			envelope(w, api.CodeUnavailable, "engine is shutting down")
			return
		}
		json.NewEncoder(w).Encode(api.AnalyzeResponse{Kind: api.KindClassify, Class: "linear"}) //nolint:errcheck
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	resp, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X,X) -> q(X)."})
	if err != nil {
		t.Fatalf("after retries: %v", err)
	}
	if resp.Class != "linear" || calls.Load() != 3 {
		t.Errorf("resp %+v after %d calls", resp, calls.Load())
	}
}

func TestAnalyzeRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelope(w, api.CodeUnavailable, "still down")
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(2), WithRetryBackoff(time.Millisecond))
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("err %v, want unavailable", err)
	}
	if calls.Load() != 3 {
		t.Errorf("made %d attempts, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestNonRetryableErrorsAreNotRetried: a 400 is the client's own bug;
// replaying it can only waste the server's time.
func TestNonRetryableErrorsAreNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelope(w, api.CodeBadRequest, "no rules")
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(5), WithRetryBackoff(time.Millisecond))
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindDecide})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("err %v, want bad_request", err)
	}
	if calls.Load() != 1 {
		t.Errorf("made %d attempts, want 1", calls.Load())
	}
}

// TestRetryHonorsContext: a context canceled between attempts ends the
// retry loop with the context error, not another round trip.
func TestRetryHonorsContext(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		envelope(w, api.CodeUnavailable, "down")
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := New(srv.URL, WithRetries(100), WithRetryBackoff(time.Hour))
	start := time.Now()
	_, err := c.Analyze(ctx, api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("retry loop ignored the context while backing off")
	}
	if calls.Load() != 1 {
		t.Errorf("made %d attempts before the deadline, want 1", calls.Load())
	}
}

// TestNonEnvelopeErrorBody: a proxy's plain-text 503 still maps to a
// typed, retryable error.
func TestNonEnvelopeErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream connect error", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, WithRetries(0))
	_, err := c.Analyze(context.Background(), api.AnalyzeRequest{Kind: api.KindClassify, Rules: "p(X) -> q(X)."})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err %T, want *api.Error", err)
	}
	if apiErr.Code != api.CodeUnavailable || apiErr.HTTPStatus != 503 {
		t.Errorf("got %+v", apiErr)
	}
}

func TestHealthy(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()
	if err := New(srv.URL).Healthy(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := New(srv.URL + "/missing").Healthy(context.Background()); err == nil {
		t.Fatal("health check against a 404 passed")
	}
}
