// Package client is the first-class Go client of the chaseterm
// analysis service (cmd/chased). It speaks the versioned wire contract
// of package api over POST /v2/analyze, takes a context on every call,
// maps error envelopes back to typed *api.Error values, and retries
// boundedly when the server answers 503 (a replica shutting down or
// overloaded). ChaseStream consumes the NDJSON chase stream
// (POST /v2/chase/stream) with a per-event callback.
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.Analyze(ctx, api.AnalyzeRequest{
//		Kind:  api.KindDecide,
//		Rules: "person(X) -> hasFather(X,Y), person(Y).",
//	})
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeUnprocessable {
//		// the instance exhausted its search budget — raise it and retry
//	}
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"chaseterm/api"
)

// Client talks to one analysis-service base URL. Create with New; the
// zero value is not usable. Client is safe for concurrent use.
type Client struct {
	base    string
	httpc   *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default
// http.DefaultClient). Per-call deadlines belong on the context, not on
// the HTTP client's Timeout, so that one slow analysis does not need a
// client-wide setting.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithRetries sets how many times a request that failed with a
// retryable code (503 / "unavailable") is retried before the error is
// returned (default 2, i.e. at most 3 attempts total). Zero disables
// retrying.
func WithRetries(n int) Option {
	return func(c *Client) {
		if n >= 0 {
			c.retries = n
		}
	}
}

// WithRetryBackoff sets the base pause between retry attempts (default
// 100ms). The actual pause grows exponentially — base, 2×base, 4×base,
// … capped at 32×base — with jitter (uniform over the upper half of
// the computed delay) so a fleet of clients retrying against one
// recovering replica does not stampede it in lockstep. A Retry-After
// header on the failed response overrides the computed delay entirely.
// Every pause honors the call's context.
func WithRetryBackoff(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.backoff = d
		}
	}
}

// New builds a client for the service at baseURL (e.g.
// "http://localhost:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		httpc:   http.DefaultClient,
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Analyze runs one analysis on the server and returns its response.
// Server-reported failures come back as *api.Error (recover with
// errors.As) carrying the machine-readable code and the HTTP status;
// transport failures come back as the underlying error. Requests whose
// failure code is retryable (503 "unavailable") are retried up to the
// configured budget before the error is returned.
func (c *Client) Analyze(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var out api.AnalyzeResponse
	if err := c.post(ctx, "/v2/analyze", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch fans a job list across the server's worker pool and returns one
// response per job in input order; per-job failures are reported inline
// via AnalyzeResponse.Error rather than failing the call.
func (c *Client) Batch(ctx context.Context, jobs []api.AnalyzeRequest) ([]api.AnalyzeResponse, error) {
	body, err := json.Marshal(api.BatchRequest{Jobs: jobs})
	if err != nil {
		return nil, fmt.Errorf("client: encoding batch: %w", err)
	}
	var out api.BatchResponse
	if err := c.post(ctx, "/v2/batch", body, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// ChaseStream runs a chase on the server and consumes its result
// incrementally from POST /v2/chase/stream: onEvent (optional) is
// invoked for every "facts" and "progress" event in arrival order, and
// the terminal "done" event — outcome plus final statistics — is
// returned. A terminal "error" event comes back as a typed *api.Error
// (e.g. CodeCanceled, CodeTimeout) together with the event itself, so
// the partial outcome/statistics the server attaches (how far an
// aborted run got) stay reachable. Pre-flight HTTP failures are also
// typed *api.Error (with no event); a pre-flight 503 is retried within
// the configured budget, but once events have been delivered the call
// is never retried. An error returned by onEvent stops reading
// immediately and is returned verbatim; the response body closes, which
// the server observes as a disconnect and aborts the producing chase
// run mid-flight.
func (c *Client) ChaseStream(ctx context.Context, req api.AnalyzeRequest, onEvent func(api.StreamEvent) error) (*api.StreamEvent, error) {
	if req.Kind == "" {
		req.Kind = api.KindChase
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	for attempt := 0; ; attempt++ {
		ev, err := c.streamOnce(ctx, body, onEvent)
		if err == nil {
			return ev, nil
		}
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || !apiErr.Code.Retryable() || apiErr.HTTPStatus == 0 || attempt >= c.retries {
			// HTTPStatus == 0 marks an in-band "error" event: the stream
			// started, so a retry could replay delivered facts. ev is the
			// terminal error event (if any) with the partial stats.
			return ev, err
		}
		select {
		case <-time.After(c.retryDelay(attempt, apiErr)):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// streamOnce performs one streaming attempt; see ChaseStream.
func (c *Client) streamOnce(ctx context.Context, body []byte, onEvent func(api.StreamEvent) error) (*api.StreamEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/chase/stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev api.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("client: stream ended without a terminal event")
			}
			return nil, fmt.Errorf("client: decoding stream: %w", err)
		}
		switch ev.Event {
		case api.StreamDone:
			return &ev, nil
		case api.StreamError:
			if ev.Error != nil {
				// The event travels back too — it carries the partial
				// outcome/stats of an aborted run. HTTPStatus stays
				// zero: the failure arrived in-band on a 200 stream,
				// not as a transport status.
				return &ev, ev.Error
			}
			return nil, fmt.Errorf("client: stream failed without details")
		}
		if onEvent != nil {
			if err := onEvent(ev); err != nil {
				return nil, err
			}
		}
	}
}

// Capabilities fetches the server's feature set (GET /v2/capabilities),
// so callers can discover optional request fields — the server's strict
// decoder rejects unknown ones — before using them. A server that
// predates the endpoint answers 404; that surfaces as a typed
// *api.Error whose HTTPStatus is 404, which callers should read as "no
// optional features". The answer is a property of the server binary and
// may be cached for the connection's lifetime.
func (c *Client) Capabilities(ctx context.Context) (*api.Capabilities, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v2/capabilities", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeError(resp)
	}
	var out api.Capabilities
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding capabilities: %w", err)
	}
	return &out, nil
}

// Healthy reports whether the server answers its liveness probe.
func (c *Client) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz answered %d", resp.StatusCode)
	}
	return nil
}

// post sends body to path and decodes a 2xx answer into out, retrying
// on retryable failures.
func (c *Client) post(ctx context.Context, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = c.once(ctx, path, body, out)
		if lastErr == nil {
			return nil
		}
		var apiErr *api.Error
		if !errors.As(lastErr, &apiErr) || !apiErr.Code.Retryable() || attempt >= c.retries {
			return lastErr
		}
		select {
		case <-time.After(c.retryDelay(attempt, apiErr)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func (c *Client) once(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// retryDelay computes the pause before retry number attempt (0-based).
// A server-supplied Retry-After hint wins outright — the server knows
// when it expects to be back. Otherwise the base backoff doubles per
// attempt, capped at 32× base, and the wait lands uniformly in the
// upper half of that window so concurrent retriers spread out.
func (c *Client) retryDelay(attempt int, apiErr *api.Error) time.Duration {
	if apiErr != nil && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter
	}
	d := c.backoff
	for i := 0; i < attempt && i < 5; i++ {
		d *= 2
	}
	return d/2 + rand.N(d/2+1)
}

// retryAfter parses a Retry-After response header: delay-seconds per
// RFC 9110 (the HTTP-date form is not worth a client dependency; a
// malformed or absent header reads as "no hint").
func retryAfter(resp *http.Response) time.Duration {
	v := strings.TrimSpace(resp.Header.Get("Retry-After"))
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// decodeError turns a non-2xx response into a typed *api.Error. A body
// that is not a v2 envelope (a proxy's HTML 502 page, say) degrades to
// an error synthesized from the status line.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var env api.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = resp.StatusCode
		env.Error.RetryAfter = retryAfter(resp)
		return env.Error
	}
	code := api.CodeInternal
	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		code = api.CodeUnavailable
	case http.StatusBadRequest:
		code = api.CodeBadRequest
	case http.StatusRequestEntityTooLarge:
		code = api.CodeTooLarge
	case http.StatusUnprocessableEntity:
		code = api.CodeUnprocessable
	case http.StatusGatewayTimeout:
		code = api.CodeTimeout
	}
	msg := strings.TrimSpace(string(data))
	if msg == "" {
		msg = resp.Status
	}
	return &api.Error{Code: code, Message: msg, HTTPStatus: resp.StatusCode, RetryAfter: retryAfter(resp)}
}
