package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"chaseterm/api"
	"chaseterm/internal/service"
)

// TestClientAgainstRealService is the end-to-end acceptance test of the
// v2 contract: the real engine behind the real handler, driven through
// the real client — api types on the wire in both directions.
func TestClientAgainstRealService(t *testing.T) {
	eng := service.New(service.Options{Workers: 2})
	defer eng.Close()
	srv := httptest.NewServer(service.NewHandler(eng))
	defer srv.Close()

	c := New(srv.URL)
	ctx := context.Background()

	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// Decide: the paper's Example 1 is non-terminating for every variant
	// the exact procedures cover.
	resp, err := c.Analyze(ctx, api.AnalyzeRequest{
		Kind:  api.KindDecide,
		Rules: "person(X) -> hasFather(X,Y), person(Y).",
	})
	if err != nil {
		t.Fatalf("decide: %v", err)
	}
	if resp.Decision == nil || resp.Decision.Terminates != "non-terminating" {
		t.Fatalf("decide response: %+v", resp)
	}
	if resp.Class != "simple-linear" || len(resp.Fingerprint) != 64 {
		t.Errorf("classification block: %+v", resp)
	}

	// The same decision again must be a cache hit end-to-end.
	resp, err = c.Analyze(ctx, api.AnalyzeRequest{
		Kind:  api.KindDecide,
		Rules: "person(X) -> hasFather(X,Y), person(Y).",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("repeat decide not served from cache through the client")
	}

	// Chase with facts and the acyclicity ladder attached.
	resp, err = c.Analyze(ctx, api.AnalyzeRequest{
		Kind:           api.KindChase,
		Rules:          "professor(X) -> teaches(X,C). teaches(X,C) -> course(C).",
		Database:       "professor(turing).",
		Variant:        "r",
		ReturnFacts:    true,
		WithAcyclicity: true,
	})
	if err != nil {
		t.Fatalf("chase: %v", err)
	}
	if resp.Chase == nil || resp.Chase.Outcome != "terminated" || len(resp.Chase.Facts) == 0 {
		t.Fatalf("chase response: %+v", resp.Chase)
	}
	if resp.Acyclicity == nil || !resp.Acyclicity.WeaklyAcyclic {
		t.Errorf("attached acyclicity: %+v", resp.Acyclicity)
	}

	// Server-side failures surface as typed errors with stable codes.
	_, err = c.Analyze(ctx, api.AnalyzeRequest{Kind: api.KindDecide, Rules: "this is not a rule"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest || apiErr.HTTPStatus != 400 {
		t.Fatalf("bad rules: err %v, want typed bad_request", err)
	}
	_, err = c.Analyze(ctx, api.AnalyzeRequest{
		Kind:         api.KindDecide,
		Rules:        "gate(X,Y), live(X) -> out(Y,Z), live(Z).",
		MaxNodeTypes: 1,
	})
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnprocessable {
		t.Fatalf("budget exhaustion: err %v, want typed unprocessable", err)
	}

	// Streaming end-to-end: the same chase consumed incrementally must
	// deliver exactly the derived facts, then the done event.
	var streamed []string
	done, err := c.ChaseStream(ctx, api.AnalyzeRequest{
		Rules:    "professor(X) -> teaches(X,C). teaches(X,C) -> course(C).",
		Database: "professor(turing).",
		Variant:  "r",
	}, func(ev api.StreamEvent) error {
		streamed = append(streamed, ev.Facts...)
		return nil
	})
	if err != nil {
		t.Fatalf("chase stream: %v", err)
	}
	if done.Outcome != "terminated" || done.Stats == nil {
		t.Fatalf("stream done event: %+v", done)
	}
	if len(streamed) != done.Stats.FactsAdded || len(streamed) != resp.Chase.Stats.FactsAdded {
		t.Errorf("streamed %d facts; done reports %d, one-shot chase derived %d",
			len(streamed), done.Stats.FactsAdded, resp.Chase.Stats.FactsAdded)
	}

	// Batch through the client: ordered results, inline per-job errors.
	results, err := c.Batch(ctx, []api.AnalyzeRequest{
		{Kind: api.KindClassify, Rules: "p(X) -> q(X)."},
		{Kind: api.KindDecide, Rules: "broken"},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(results) != 2 || results[0].Class != "simple-linear" {
		t.Fatalf("batch results: %+v", results)
	}
	if results[1].Error == nil || results[1].Error.Code != api.CodeBadRequest {
		t.Errorf("batch entry error: %+v", results[1].Error)
	}
}
