package logic

import (
	"testing"
)

func atom(pred string, args ...Term) Atom { return NewAtom(pred, args...) }

func v(s string) Variable { return Variable(s) }
func c(s string) Constant { return Constant(s) }

func TestAtomBasics(t *testing.T) {
	a := atom("p", v("X"), c("a"), v("X"))
	if got := a.String(); got != "p(X,a,X)" {
		t.Errorf("String: got %q", got)
	}
	if a.Predicate() != (Predicate{Name: "p", Arity: 3}) {
		t.Errorf("Predicate: got %v", a.Predicate())
	}
	if a.IsGround() {
		t.Error("IsGround: atom with variables reported ground")
	}
	if !a.HasRepeatedVariable() {
		t.Error("HasRepeatedVariable: X repeats")
	}
	vs := a.Variables(nil)
	if len(vs) != 1 || vs[0] != "X" {
		t.Errorf("Variables: got %v", vs)
	}
	cs := a.Constants(nil)
	if len(cs) != 1 || cs[0] != "a" {
		t.Errorf("Constants: got %v", cs)
	}
	g := atom("p", c("a"))
	if !g.IsGround() {
		t.Error("IsGround: constant atom reported non-ground")
	}
}

func TestAtomRenameAndEqual(t *testing.T) {
	a := atom("p", v("X"), v("Y"))
	b := a.Rename(map[Variable]Variable{"X": "U"})
	if b.String() != "p(U,Y)" {
		t.Errorf("Rename: got %s", b)
	}
	if !a.Equal(atom("p", v("X"), v("Y"))) {
		t.Error("Equal: identical atoms differ")
	}
	if a.Equal(b) {
		t.Error("Equal: renamed atom equal to original")
	}
	if a.Equal(atom("q", v("X"), v("Y"))) {
		t.Error("Equal: different predicates equal")
	}
}

func TestTGDAnalysis(t *testing.T) {
	// p(X,Y), q(Y) -> r(Y,Z), s(Z)
	r := NewTGD(
		[]Atom{atom("p", v("X"), v("Y")), atom("q", v("Y"))},
		[]Atom{atom("r", v("Y"), v("Z")), atom("s", v("Z"))},
	)
	wantVars := []Variable{"X", "Y"}
	if got := r.BodyVariables(); len(got) != 2 || got[0] != wantVars[0] || got[1] != wantVars[1] {
		t.Errorf("BodyVariables: got %v", got)
	}
	if got := r.Frontier(); len(got) != 1 || got[0] != "Y" {
		t.Errorf("Frontier: got %v", got)
	}
	if got := r.Existentials(); len(got) != 1 || got[0] != "Z" {
		t.Errorf("Existentials: got %v", got)
	}
	if r.IsFull() {
		t.Error("IsFull: rule has an existential")
	}
	if r.IsLinear() {
		t.Error("IsLinear: two body atoms")
	}
	if !r.IsGuarded() {
		t.Error("IsGuarded: p(X,Y) holds every universal variable")
	}
	ng := NewTGD(
		[]Atom{atom("p", v("X")), atom("q", v("Y"))},
		[]Atom{atom("r", v("X"), v("Y"))},
	)
	if ng.IsGuarded() {
		t.Error("IsGuarded: no atom holds X and Y together")
	}
}

func TestTGDGuard(t *testing.T) {
	// p(X,Y) guards {X,Y}; q(Y) is a side atom.
	r := NewTGD(
		[]Atom{atom("q", v("Y")), atom("p", v("X"), v("Y"))},
		[]Atom{atom("r", v("X"))},
	)
	if !r.IsGuarded() {
		t.Fatal("IsGuarded: p(X,Y) guards all variables")
	}
	if gi := r.GuardIndex(); gi != 1 {
		t.Errorf("GuardIndex: got %d, want 1", gi)
	}
	if r.IsLinear() || r.IsSimpleLinear() {
		t.Error("two-atom body is not linear")
	}
}

func TestTGDClasses(t *testing.T) {
	sl := NewTGD([]Atom{atom("p", v("X"), v("Y"))}, []Atom{atom("q", v("Y"), v("Z"))})
	if !sl.IsSimpleLinear() || !sl.IsLinear() || !sl.IsGuarded() {
		t.Error("simple-linear rule misclassified")
	}
	lin := NewTGD([]Atom{atom("p", v("X"), v("X"))}, []Atom{atom("q", v("X"))})
	if lin.IsSimpleLinear() {
		t.Error("repeated body variable is not simple")
	}
	if !lin.IsLinear() {
		t.Error("one body atom is linear")
	}
	full := NewTGD([]Atom{atom("p", v("X"))}, []Atom{atom("q", v("X"))})
	if !full.IsFull() {
		t.Error("IsFull: no existentials")
	}
}

func TestRuleSetClassify(t *testing.T) {
	cases := []struct {
		rules *RuleSet
		want  Class
	}{
		{NewRuleSet(NewTGD([]Atom{atom("p", v("X"))}, []Atom{atom("q", v("X"))})), ClassSimpleLinear},
		{NewRuleSet(NewTGD([]Atom{atom("p", v("X"), v("X"))}, []Atom{atom("q", v("X"))})), ClassLinear},
		{NewRuleSet(
			NewTGD([]Atom{atom("p", v("X"), v("Y")), atom("q", v("X"))}, []Atom{atom("r", v("Y"))}),
		), ClassGuarded},
		{NewRuleSet(
			NewTGD([]Atom{atom("p", v("X")), atom("q", v("Y"))}, []Atom{atom("r", v("X"), v("Y"))}),
		), ClassGeneral},
	}
	for i, tc := range cases {
		if got := tc.rules.Classify(); got != tc.want {
			t.Errorf("case %d: Classify got %v, want %v", i, got, tc.want)
		}
	}
}

func TestClassOrdering(t *testing.T) {
	if !ClassGuarded.Includes(ClassSimpleLinear) || !ClassGuarded.Includes(ClassLinear) {
		t.Error("G must include SL and L")
	}
	if !ClassLinear.Includes(ClassSimpleLinear) {
		t.Error("L must include SL")
	}
	if ClassSimpleLinear.Includes(ClassLinear) {
		t.Error("SL must not include L")
	}
}

func TestRuleSetValidate(t *testing.T) {
	bad := NewRuleSet(
		NewTGD([]Atom{atom("p", v("X"))}, []Atom{atom("p", v("X"), v("X"))}),
	)
	if err := bad.Validate(); err == nil {
		t.Error("Validate: arity clash not detected")
	}
	empty := NewRuleSet(NewTGD(nil, []Atom{atom("p", v("X"))}))
	if err := empty.Validate(); err == nil {
		t.Error("Validate: empty body not detected")
	}
	noHead := NewRuleSet(NewTGD([]Atom{atom("p", v("X"))}, nil))
	if err := noHead.Validate(); err == nil {
		t.Error("Validate: empty head not detected")
	}
}

func TestRuleSetSchemaAndPositions(t *testing.T) {
	rs := NewRuleSet(
		NewTGD([]Atom{atom("p", v("X"), v("Y"))}, []Atom{atom("q", v("Y"))}),
		NewTGD([]Atom{atom("q", v("X"))}, []Atom{atom("p", v("X"), c("a"))}),
	)
	sch := rs.Schema()
	if len(sch) != 2 || sch[0].Name != "p" || sch[1].Name != "q" {
		t.Errorf("Schema: got %v", sch)
	}
	pos := rs.Positions()
	if len(pos) != 3 {
		t.Errorf("Positions: got %d, want 3", len(pos))
	}
	if rs.MaxArity() != 2 {
		t.Errorf("MaxArity: got %d", rs.MaxArity())
	}
	cs := rs.Constants()
	if len(cs) != 1 || cs[0] != "a" {
		t.Errorf("Constants: got %v", cs)
	}
}

func TestTGDRename(t *testing.T) {
	r := NewTGD([]Atom{atom("p", v("X"), v("Y"))}, []Atom{atom("q", v("Y"), v("Z"))})
	r2 := r.Rename(map[Variable]Variable{"Y": "W"})
	if r2.String() != "p(X,W) -> q(W,Z)" {
		t.Errorf("Rename: got %s", r2)
	}
	// The original must be untouched.
	if r.String() != "p(X,Y) -> q(Y,Z)" {
		t.Errorf("Rename mutated original: %s", r)
	}
}

func TestPositionString(t *testing.T) {
	p := Position{Pred: Predicate{Name: "p", Arity: 2}, Index: 1}
	if p.String() != "p[2]" {
		t.Errorf("Position.String: got %s", p)
	}
}
