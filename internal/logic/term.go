// Package logic provides the symbolic vocabulary of the existential-rule
// (TGD) framework studied in "Chase Termination for Guarded Existential
// Rules" (Calautti, Gottlob, Pieris; PODS 2015): terms, atoms, conjunctions,
// tuple-generating dependencies, schemas, and the rule-class recognizers for
// the classes SL (simple linear), L (linear) and G (guarded) around which the
// paper's results are organized.
//
// The package is purely syntactic: ground instances, nulls and Skolem terms
// live in package instance, and the chase procedures in package chase.
package logic

import (
	"fmt"
	"sort"
	"strings"
	"unicode"
)

// Term is a symbolic term occurring in a rule or a database fact: either a
// Constant or a Variable. Ground instance-level terms (labeled nulls, Skolem
// terms) are represented separately by the instance package; rules never
// contain them.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Constant is an uninterpreted constant symbol, e.g. bob or 0.
type Constant string

// Variable is a first-order variable, e.g. X. By convention the parser maps
// identifiers starting with an upper-case letter (or underscore) to
// variables, but the type itself imposes no lexical restriction.
type Variable string

func (Constant) isTerm() {}
func (Variable) isTerm() {}

// String renders the constant in parser-compatible form: names that would
// not lex as constants (empty, containing non-identifier characters, or
// starting like a variable) are single-quoted.
func (c Constant) String() string {
	if constNeedsQuote(string(c)) {
		return "'" + string(c) + "'"
	}
	return string(c)
}

func (v Variable) String() string { return string(v) }

func constNeedsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		isIdent := r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
		if !isIdent {
			return true
		}
		if i == 0 && (r == '_' || unicode.IsUpper(r)) {
			return true
		}
	}
	return false
}

// Predicate identifies a relation symbol together with its arity. Two
// predicates with the same name but different arities are distinct symbols.
type Predicate struct {
	Name  string
	Arity int
}

func (p Predicate) String() string { return fmt.Sprintf("%s/%d", p.Name, p.Arity) }

// Position identifies an argument position of a predicate, written p[i] in
// the dependency-graph literature (Fagin et al.). Index is zero-based.
type Position struct {
	Pred  Predicate
	Index int
}

func (pos Position) String() string { return fmt.Sprintf("%s[%d]", pos.Pred.Name, pos.Index+1) }

// Atom is a relational atom p(t1, ..., tk). The arity of the predicate is
// len(Args) by construction.
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom builds an atom from a predicate name and terms.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Predicate returns the predicate symbol (name and arity) of the atom.
func (a Atom) Predicate() Predicate { return Predicate{Name: a.Pred, Arity: len(a.Args)} }

// Variables appends the distinct variables of the atom, in order of first
// occurrence, to dst and returns the extended slice.
func (a Atom) Variables(dst []Variable) []Variable {
	for _, t := range a.Args {
		if v, ok := t.(Variable); ok && !containsVar(dst, v) {
			dst = append(dst, v)
		}
	}
	return dst
}

// Constants appends the distinct constants of the atom, in order of first
// occurrence, to dst and returns the extended slice.
func (a Atom) Constants(dst []Constant) []Constant {
	for _, t := range a.Args {
		if c, ok := t.(Constant); ok && !containsConst(dst, c) {
			dst = append(dst, c)
		}
	}
	return dst
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if _, ok := t.(Variable); ok {
			return false
		}
	}
	return true
}

// HasRepeatedVariable reports whether some variable occurs at two or more
// argument positions of the atom. Simple-linear TGDs forbid this in bodies.
func (a Atom) HasRepeatedVariable() bool {
	seen := make(map[Variable]bool, len(a.Args))
	for _, t := range a.Args {
		if v, ok := t.(Variable); ok {
			if seen[v] {
				return true
			}
			seen[v] = true
		}
	}
	return false
}

// Rename returns a copy of the atom with every variable replaced according
// to ren; variables absent from ren are kept.
func (a Atom) Rename(ren map[Variable]Variable) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if v, ok := t.(Variable); ok {
			if w, ok := ren[v]; ok {
				args[i] = w
				continue
			}
		}
		args[i] = t
	}
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports structural equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// AtomsString renders a conjunction of atoms, comma-separated.
func AtomsString(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

func containsVar(vs []Variable, v Variable) bool {
	for _, w := range vs {
		if w == v {
			return true
		}
	}
	return false
}

func containsConst(cs []Constant, c Constant) bool {
	for _, d := range cs {
		if d == c {
			return true
		}
	}
	return false
}

// SortVariables sorts a slice of variables lexicographically, in place.
func SortVariables(vs []Variable) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}
