package logic

import (
	"fmt"
	"sort"
	"strings"
)

// TGD is a tuple-generating dependency (existential rule)
//
//	∀X ∀Y ( φ(X,Y) → ∃Z ψ(Y,Z) )
//
// written Body -> Head. Every variable occurring in the body is universally
// quantified; every head variable that does not occur in the body is
// existentially quantified. The frontier is the set of universally
// quantified variables that occur in the head (the Y above).
type TGD struct {
	Body []Atom
	Head []Atom

	// Label is an optional human-readable name used in diagnostics.
	Label string

	// memoized analyses (computed lazily, the zero TGD is usable)
	bodyVars, headVars, frontier, existential []Variable
	analyzed                                  bool
}

// NewTGD builds a TGD from body and head conjunctions.
func NewTGD(body, head []Atom) *TGD { return &TGD{Body: body, Head: head} }

func (t *TGD) analyze() {
	if t.analyzed {
		return
	}
	for _, a := range t.Body {
		t.bodyVars = a.Variables(t.bodyVars)
	}
	for _, a := range t.Head {
		t.headVars = a.Variables(t.headVars)
	}
	for _, v := range t.headVars {
		if containsVar(t.bodyVars, v) {
			t.frontier = append(t.frontier, v)
		} else {
			t.existential = append(t.existential, v)
		}
	}
	t.analyzed = true
}

// BodyVariables returns the distinct variables of the body in order of first
// occurrence. The returned slice must not be modified.
func (t *TGD) BodyVariables() []Variable { t.analyze(); return t.bodyVars }

// HeadVariables returns the distinct variables of the head in order of first
// occurrence. The returned slice must not be modified.
func (t *TGD) HeadVariables() []Variable { t.analyze(); return t.headVars }

// Frontier returns the frontier variables: universally quantified variables
// occurring in the head. Two homomorphisms agreeing on the frontier are
// indistinguishable for the semi-oblivious chase.
func (t *TGD) Frontier() []Variable { t.analyze(); return t.frontier }

// Existentials returns the existentially quantified variables of the head.
func (t *TGD) Existentials() []Variable { t.analyze(); return t.existential }

// IsFull reports whether the TGD has no existentially quantified variables
// (a "full" TGD, i.e. a Datalog rule).
func (t *TGD) IsFull() bool { t.analyze(); return len(t.existential) == 0 }

// IsLinear reports whether the TGD has exactly one body atom.
func (t *TGD) IsLinear() bool { return len(t.Body) == 1 }

// IsSimpleLinear reports whether the TGD is linear and no variable is
// repeated in its body atom.
func (t *TGD) IsSimpleLinear() bool {
	return t.IsLinear() && !t.Body[0].HasRepeatedVariable()
}

// GuardIndex returns the index of the first body atom that contains every
// universally quantified variable of the TGD (the guard), or -1 if no body
// atom does.
func (t *TGD) GuardIndex() int {
	t.analyze()
	for i, a := range t.Body {
		var vs []Variable
		vs = a.Variables(vs)
		if len(vs) == len(t.bodyVars) {
			return i
		}
	}
	return -1
}

// IsGuarded reports whether some body atom guards all universally
// quantified variables.
func (t *TGD) IsGuarded() bool { return t.GuardIndex() >= 0 }

// Validate checks structural sanity: non-empty body and head, and arity
// consistency is checked at the RuleSet level.
func (t *TGD) Validate() error {
	if len(t.Body) == 0 {
		return fmt.Errorf("logic: TGD %s has an empty body", t.name())
	}
	if len(t.Head) == 0 {
		return fmt.Errorf("logic: TGD %s has an empty head", t.name())
	}
	return nil
}

func (t *TGD) name() string {
	if t.Label != "" {
		return t.Label
	}
	return t.String()
}

// Constants returns the distinct constants occurring anywhere in the rule.
func (t *TGD) Constants(dst []Constant) []Constant {
	for _, a := range t.Body {
		dst = a.Constants(dst)
	}
	for _, a := range t.Head {
		dst = a.Constants(dst)
	}
	return dst
}

// Rename returns a copy of the TGD with variables substituted according to
// ren. Memoized analyses are recomputed on demand in the copy.
func (t *TGD) Rename(ren map[Variable]Variable) *TGD {
	body := make([]Atom, len(t.Body))
	for i, a := range t.Body {
		body[i] = a.Rename(ren)
	}
	head := make([]Atom, len(t.Head))
	for i, a := range t.Head {
		head[i] = a.Rename(ren)
	}
	return &TGD{Body: body, Head: head, Label: t.Label}
}

func (t *TGD) String() string {
	return AtomsString(t.Body) + " -> " + AtomsString(t.Head)
}

// Class is a syntactic class of TGD sets, ordered by expressiveness:
// SL ⊆ L ⊆ G ⊆ General.
type Class int

const (
	// ClassSimpleLinear: one body atom, no repeated body variables.
	ClassSimpleLinear Class = iota
	// ClassLinear: one body atom.
	ClassLinear
	// ClassGuarded: some body atom contains all universally quantified
	// variables.
	ClassGuarded
	// ClassGeneral: arbitrary TGDs.
	ClassGeneral
)

func (c Class) String() string {
	switch c {
	case ClassSimpleLinear:
		return "simple-linear"
	case ClassLinear:
		return "linear"
	case ClassGuarded:
		return "guarded"
	default:
		return "general"
	}
}

// Includes reports whether class c contains class d (e.g. guarded includes
// linear and simple-linear).
func (c Class) Includes(d Class) bool { return d <= c }

// RuleSet is a finite set of TGDs over a common schema.
type RuleSet struct {
	Rules []*TGD
}

// NewRuleSet builds a rule set; it does not validate (call Validate).
func NewRuleSet(rules ...*TGD) *RuleSet { return &RuleSet{Rules: rules} }

// Validate checks every rule and the arity-consistency of the schema: a
// predicate name must be used with a single arity across the whole set.
func (rs *RuleSet) Validate() error {
	arities := make(map[string]int)
	// The location string is only materialized on the error path: Validate
	// runs in front of every chase/decision and must not allocate per atom.
	check := func(a Atom, section string, rule int) error {
		if k, ok := arities[a.Pred]; ok && k != len(a.Args) {
			return fmt.Errorf("logic: predicate %s used with arities %d and %d (%s of rule %d)",
				a.Pred, k, len(a.Args), section, rule)
		}
		arities[a.Pred] = len(a.Args)
		return nil
	}
	for i, r := range rs.Rules {
		if err := r.Validate(); err != nil {
			return err
		}
		for _, a := range r.Body {
			if err := check(a, "body", i); err != nil {
				return err
			}
		}
		for _, a := range r.Head {
			if err := check(a, "head", i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Schema returns the predicates occurring in the rule set, sorted by name.
func (rs *RuleSet) Schema() []Predicate {
	seen := make(map[Predicate]bool)
	var preds []Predicate
	add := func(a Atom) {
		p := a.Predicate()
		if !seen[p] {
			seen[p] = true
			preds = append(preds, p)
		}
	}
	for _, r := range rs.Rules {
		for _, a := range r.Body {
			add(a)
		}
		for _, a := range r.Head {
			add(a)
		}
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].Name != preds[j].Name {
			return preds[i].Name < preds[j].Name
		}
		return preds[i].Arity < preds[j].Arity
	})
	return preds
}

// Positions returns every position of the schema, in schema order.
func (rs *RuleSet) Positions() []Position {
	var out []Position
	for _, p := range rs.Schema() {
		for i := 0; i < p.Arity; i++ {
			out = append(out, Position{Pred: p, Index: i})
		}
	}
	return out
}

// Constants returns the distinct constants occurring in the rules, sorted.
func (rs *RuleSet) Constants() []Constant {
	var cs []Constant
	for _, r := range rs.Rules {
		cs = r.Constants(cs)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// MaxArity returns the maximum predicate arity of the schema (0 for empty).
func (rs *RuleSet) MaxArity() int {
	m := 0
	for _, p := range rs.Schema() {
		if p.Arity > m {
			m = p.Arity
		}
	}
	return m
}

// Classify returns the most specific syntactic class containing every rule
// of the set.
func (rs *RuleSet) Classify() Class {
	c := ClassSimpleLinear
	for _, r := range rs.Rules {
		switch {
		case r.IsSimpleLinear():
		case r.IsLinear():
			if c < ClassLinear {
				c = ClassLinear
			}
		case r.IsGuarded():
			if c < ClassGuarded {
				c = ClassGuarded
			}
		default:
			return ClassGeneral
		}
	}
	return c
}

func (rs *RuleSet) String() string {
	var b strings.Builder
	for _, r := range rs.Rules {
		b.WriteString(r.String())
		b.WriteString(".\n")
	}
	return b.String()
}
