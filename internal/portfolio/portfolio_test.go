package portfolio

import (
	"context"
	"errors"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"chaseterm/internal/core"
	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
)

func TestRungNamesLadderOrder(t *testing.T) {
	want := []string{
		"rich-acyclicity", "weak-acyclicity", "joint-acyclicity",
		"mfa", "critical-saturation", "linear-exact", "guarded-exact",
	}
	got := RungNames()
	if len(got) != len(want) {
		t.Fatalf("rungs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rung[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestLadderShortCircuit: a weakly-acyclic set must be decided by the
// first applicable positional rung and never reach anything deeper.
func TestLadderShortCircuit(t *testing.T) {
	rs := parse.MustParseRules(`professor(X) -> teaches(X,C). teaches(X,C) -> course(C).`)
	res, err := Run(context.Background(), rs, core.VariantSemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Terminating || res.DecidedBy != "weak-acyclicity" {
		t.Errorf("got %v decided by %q", res.Verdict, res.DecidedBy)
	}
	if len(res.Rungs) != 1 || res.Rungs[0].Rung != "weak-acyclicity" {
		t.Errorf("rung trace %v, want exactly the weak-acyclicity rung", res.Rungs)
	}
	if res.Raced {
		t.Error("nothing should race on a decisive ladder")
	}
}

// TestObliviousLadderStartsAtRich: under the oblivious variant the
// rich-acyclicity rung is the applicable positional criterion.
func TestObliviousLadderStartsAtRich(t *testing.T) {
	rs := parse.MustParseRules(`p(X) -> q(X,Y).`)
	res, err := Run(context.Background(), rs, core.VariantOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Terminating || res.DecidedBy != "rich-acyclicity" {
		t.Errorf("got %v decided by %q", res.Verdict, res.DecidedBy)
	}
}

// TestSLNonTerminatingOnPositionalRung: on constant-free simple-linear
// sets the positional criteria are exact (Theorem 1), so a failed check
// is already a sound NonTerminating — the exact tier must not run.
func TestSLNonTerminatingOnPositionalRung(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	res, err := Run(context.Background(), rs, core.VariantSemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NonTerminating || res.DecidedBy != "weak-acyclicity" {
		t.Errorf("got %v decided by %q", res.Verdict, res.DecidedBy)
	}
	if res.Evidence.Method != "weak-acyclicity(SL)" || res.Evidence.Witness == "" {
		t.Errorf("evidence %+v", res.Evidence)
	}
	if len(res.Rungs) != 1 {
		t.Errorf("rung trace %v", res.Rungs)
	}
}

// TestLadderFallsThroughToExact: a non-SL linear diverging set defeats
// every sound criterion (WA/JA fail, MFA sees a cyclic term), so the
// decision must come from an exact rung, and must be NonTerminating.
func TestLadderFallsThroughToExact(t *testing.T) {
	rs := parse.MustParseRules(`p(X,X) -> q(X,Y). q(X,Y) -> p(Y,Y).`)
	res, err := Run(context.Background(), rs, core.VariantSemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NonTerminating || res.DecidedBy != "linear-exact" {
		t.Errorf("got %v decided by %q", res.Verdict, res.DecidedBy)
	}
	var names []string
	for _, r := range res.Rungs {
		names = append(names, r.Rung)
	}
	want := []string{"weak-acyclicity", "joint-acyclicity", "mfa", "linear-exact"}
	if len(names) != len(want) {
		t.Fatalf("rung trace %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("rung[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

// TestRealRace: the same set with Race on — linear-exact and
// guarded-exact both apply, both are sound and decisive, and whichever
// returns first must win with the same verdict.
func TestRealRace(t *testing.T) {
	rs := parse.MustParseRules(`p(X,X) -> q(X,Y). q(X,Y) -> p(Y,Y).`)
	res, err := Run(context.Background(), rs, core.VariantSemiOblivious, Options{Race: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != NonTerminating || !res.Raced {
		t.Errorf("got %v raced=%v", res.Verdict, res.Raced)
	}
	if res.DecidedBy != "linear-exact" && res.DecidedBy != "guarded-exact" {
		t.Errorf("decided by %q, want an exact rung", res.DecidedBy)
	}
	// Ladder (3 rungs) + both racers, drained.
	if len(res.Rungs) != 5 {
		t.Errorf("rung trace %v", res.Rungs)
	}
}

// fakeExact is a controllable exact-tier decider for race tests. It
// decides with the configured verdict after delay, or returns ctx.Err()
// as soon as it is cancelled — the contract real deciders honor.
type fakeExact struct {
	name    string
	delay   time.Duration
	verdict Verdict
	err     error
}

func (f fakeExact) Name() string                                      { return f.name }
func (f fakeExact) Tier() Tier                                        { return TierExact }
func (f fakeExact) Sound() bool                                       { return true }
func (f fakeExact) Complete() bool                                    { return true }
func (f fakeExact) Applicable(*logic.RuleSet, core.ChaseVariant) bool { return true }

func (f fakeExact) DecideContext(ctx context.Context, _ *logic.RuleSet, _ core.ChaseVariant, _ Options) (Verdict, Evidence, error) {
	if f.err != nil {
		return Undecided, Evidence{}, f.err
	}
	select {
	case <-time.After(f.delay):
		return f.verdict, Evidence{Method: f.name}, nil
	case <-ctx.Done():
		return Undecided, Evidence{}, ctx.Err()
	}
}

var raceRules = `p(X,X) -> q(X,Y).`

// TestRaceWinnerCancelsLoser: the fast decider's verdict is adopted and
// the slow one is cancelled long before its own delay — and its report
// is marked Canceled, not treated as a failure.
func TestRaceWinnerCancelsLoser(t *testing.T) {
	rs := parse.MustParseRules(raceRules)
	reg := NewRegistry(
		fakeExact{name: "fast", delay: time.Millisecond, verdict: Terminating},
		fakeExact{name: "slow", delay: time.Minute, verdict: NonTerminating},
	)
	t0 := time.Now()
	res, err := RunWith(context.Background(), reg, rs, core.VariantSemiOblivious, Options{Race: true})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Errorf("race took %v — the loser was not cancelled", elapsed)
	}
	if res.Verdict != Terminating || res.DecidedBy != "fast" || !res.Raced {
		t.Errorf("got %v decided by %q raced=%v", res.Verdict, res.DecidedBy, res.Raced)
	}
	var loser *RungReport
	for i := range res.Rungs {
		if res.Rungs[i].Rung == "slow" {
			loser = &res.Rungs[i]
		}
	}
	if loser == nil || !loser.Canceled {
		t.Errorf("loser report %+v, want Canceled", loser)
	}
}

// TestRaceDoesNotLeakGoroutines: RunWith drains every racer before
// returning, so repeated races leave the goroutine count flat.
func TestRaceDoesNotLeakGoroutines(t *testing.T) {
	rs := parse.MustParseRules(raceRules)
	reg := NewRegistry(
		fakeExact{name: "fast", delay: time.Millisecond, verdict: Terminating},
		fakeExact{name: "slow", delay: time.Minute, verdict: NonTerminating},
		fakeExact{name: "slower", delay: time.Minute, verdict: NonTerminating},
	)
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := RunWith(context.Background(), reg, rs, core.VariantSemiOblivious, Options{Race: true}); err != nil {
			t.Fatal(err)
		}
	}
	// The drained racers have sent their outcome but may not have fully
	// exited yet; give the scheduler a beat before counting.
	time.Sleep(50 * time.Millisecond)
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Errorf("goroutines grew from %d to %d across 20 races", base, n)
	}
}

// TestRaceErrorWithoutWinner: if every racer fails in its own right, the
// first error surfaces rather than a fabricated verdict.
func TestRaceErrorWithoutWinner(t *testing.T) {
	rs := parse.MustParseRules(raceRules)
	boom := errors.New("boom")
	reg := NewRegistry(
		fakeExact{name: "bad1", err: boom},
		fakeExact{name: "bad2", err: boom},
	)
	_, err := RunWith(context.Background(), reg, rs, core.VariantSemiOblivious, Options{Race: true})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

// TestCancellationPropagates: cancelling the caller's context aborts
// the portfolio with ctx.Err, not a verdict.
func TestCancellationPropagates(t *testing.T) {
	rs := parse.MustParseRules(raceRules)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, rs, core.VariantSemiOblivious, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// testWorkers mirrors the internal/chase suite: CHASE_WORKERS overrides
// the worker count the parallelism tests force (CI runs this package
// with CHASE_WORKERS=8 under the race detector); the default is 8 so the
// striped path runs even without the variable.
func testWorkers(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("CHASE_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad CHASE_WORKERS=%q", s)
		}
		return n
	}
	return 8
}

// TestWorkersOptionIdenticalLadder: Options.Workers parallelizes the
// mfa and saturation rung chases. The whole Result must be identical to
// a sequential ladder run — rung order, per-rung verdicts, the adopted
// decision, and the budget-exceeded witness strings, which are rendered
// from chase statistics and so pin those bit-for-bit too.
func TestWorkersOptionIdenticalLadder(t *testing.T) {
	cases := []struct{ name, rules string }{
		// Linear but neither weakly nor jointly acyclic: the mfa rung's
		// critical chase runs parallel before linear-exact decides.
		{"linear-through-mfa", `p(X,X) -> q(X,Y). q(X,Y) -> p(Y,Y).`},
		// General (no guard covers both body variables) and not weakly
		// acyclic (q[1] -> r[2] -> q[1] through a special edge): the mfa
		// and saturation rungs both run their chases parallel, and the
		// saturation oracle exceeds its shrunken budget at exactly the
		// same statistics.
		{"general-saturation", `p(X), q(Y) -> r(X,Y). r(X,Y) -> q(Z), s(Y,Z).`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs := parse.MustParseRules(tc.rules)
			run := func(workers int) *Result {
				res, err := Run(context.Background(), rs, core.VariantSemiOblivious,
					Options{OracleMaxTriggers: 4000, OracleMaxFacts: 4000, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				for i := range res.Rungs {
					res.Rungs[i].Elapsed = 0
				}
				return res
			}
			seq := run(1)
			par := run(testWorkers(t))
			if !reflect.DeepEqual(par, seq) {
				t.Errorf("workers=%d result %+v\nsequential %+v", testWorkers(t), par, seq)
			}
		})
	}
}
