// Package portfolio unifies every termination-deciding component of the
// library behind one Decider interface and schedules them as a
// portfolio, the cascade idea of Karimi–Zhang–You ("Theoretical and
// practical aspects of the hierarchical approach for chase termination")
// over the criteria zoo surveyed by Baget et al.: the paper's exact
// procedures are PSPACE/2EXPTIME-complete in the worst case, but cheap
// sufficient conditions decide most real-world rule sets in polynomial
// time, so the scheduler climbs a ladder of sound rungs — positional
// acyclicity first, then a bounded MFA-style critical chase — and only
// reaches for the exact deciders when every cheap rung is inconclusive.
// Optionally the applicable exact deciders race in parallel goroutines,
// the first decisive verdict cancelling the losers through the ordinary
// context machinery.
//
// Every rung is sound: a decisive verdict from any rung is correct for
// the requested variant (RA ⇒ CT^o; WA/JA/MFA/saturation ⇒ CT^so; the
// positional rungs are additionally exact — hence may answer
// NonTerminating — on constant-free simple-linear sets, Theorem 1).
// Only the exact deciders are complete on their applicability domain.
package portfolio

import (
	"context"
	"fmt"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/chase"
	"chaseterm/internal/core"
	"chaseterm/internal/critical"
	"chaseterm/internal/logic"
)

// Tier orders deciders by worst-case cost; the scheduler runs cheaper
// tiers first.
type Tier int

const (
	// TierPositional: polynomial checks over the schema positions.
	TierPositional Tier = iota
	// TierSaturation: a budget-bounded chase of the critical instance.
	TierSaturation
	// TierExact: the paper's exact decision procedures (PSPACE for
	// linear, 2EXPTIME for guarded rule sets).
	TierExact
)

func (t Tier) String() string {
	switch t {
	case TierPositional:
		return "positional"
	case TierSaturation:
		return "saturation"
	default:
		return "exact"
	}
}

// Verdict is a rung's three-valued answer. Undecided means the rung ran
// but could not decide — for a sound-only rung, the normal outcome on
// instances outside its sufficient condition.
type Verdict int

const (
	Undecided Verdict = iota
	Terminating
	NonTerminating
)

func (v Verdict) String() string {
	return [...]string{"undecided", "terminating", "non-terminating"}[v]
}

// Evidence explains a rung's verdict: the concrete procedure that
// produced it, a human-readable witness (dangerous cycle, pumpable
// shape, diagnostic), and the explored abstraction size when the rung
// searched one.
type Evidence struct {
	Method      string
	Witness     string
	SearchSpace int
}

// Options bound the portfolio's rungs; the zero value means the library
// defaults.
type Options struct {
	// Core bounds the exact deciders (shape / node-type budgets).
	Core core.Options
	// OracleMaxTriggers / OracleMaxFacts bound the critical-instance
	// chases of the saturation tier (defaults 200k, matching
	// core.DecideOptions).
	OracleMaxTriggers int
	OracleMaxFacts    int
	// Workers sets the match parallelism of the saturation-tier chases
	// (chase.Options.Workers). 0 or 1 runs the sequential engine; any
	// count yields bit-identical verdicts.
	Workers int
	// Race runs the applicable exact deciders concurrently once the
	// ladder is exhausted, cancelling the losers as soon as one decides.
	Race bool
}

func (o Options) withDefaults() Options {
	if o.OracleMaxTriggers <= 0 {
		o.OracleMaxTriggers = 200_000
	}
	if o.OracleMaxFacts <= 0 {
		o.OracleMaxFacts = 200_000
	}
	return o
}

// Decider is one termination-deciding component: a named, cost-tiered
// procedure applicable to some rule sets and chase variants. Sound
// deciders return only correct decisive verdicts; complete deciders
// always return a decisive verdict on their applicability domain (so an
// Undecided from one is impossible short of an error). Implementations
// must honor the context — the racing scheduler cancels losers through
// it.
type Decider interface {
	// Name is the stable rung label used in reports and metrics.
	Name() string
	// Tier is the cost tier the scheduler orders by.
	Tier() Tier
	// Applicable reports whether the decider can run on this rule set
	// and variant.
	Applicable(rs *logic.RuleSet, v core.ChaseVariant) bool
	// Sound reports that a decisive verdict is always correct.
	Sound() bool
	// Complete reports that the decider always reaches a decisive
	// verdict where applicable.
	Complete() bool
	// DecideContext runs the procedure.
	DecideContext(ctx context.Context, rs *logic.RuleSet, v core.ChaseVariant, opt Options) (Verdict, Evidence, error)
}

// slExact reports whether the positional criteria are exact on this rule
// set: Theorem 1 equates them with CT^o/CT^so on constant-free
// simple-linear sets, so a failed check there certifies non-termination.
func slExact(rs *logic.RuleSet) bool {
	return rs.Classify() == logic.ClassSimpleLinear && len(rs.Constants()) == 0
}

// positionalRung is the shared shape of the weak/rich acyclicity rungs.
type positionalRung struct {
	name    string
	variant core.ChaseVariant
	check   func(*logic.RuleSet) (bool, *acyclicity.Witness)
}

func (r positionalRung) Name() string { return r.name }
func (r positionalRung) Tier() Tier   { return TierPositional }
func (r positionalRung) Sound() bool  { return true }

// Complete is false even though the rung is exact on constant-free SL
// sets: completeness here is a property of the whole applicability
// domain.
func (r positionalRung) Complete() bool { return false }

func (r positionalRung) Applicable(_ *logic.RuleSet, v core.ChaseVariant) bool {
	return v == r.variant
}

func (r positionalRung) DecideContext(_ context.Context, rs *logic.RuleSet, _ core.ChaseVariant, _ Options) (Verdict, Evidence, error) {
	ok, w := r.check(rs)
	if ok {
		return Terminating, Evidence{Method: r.name}, nil
	}
	if slExact(rs) {
		return NonTerminating, Evidence{Method: r.name + "(SL)", Witness: w.String()}, nil
	}
	return Undecided, Evidence{Method: r.name, Witness: w.String()}, nil
}

// jointRung checks joint acyclicity (JA ⇒ CT^so, WA ⊆ JA). Its negative
// direction stays Undecided: the weak-acyclicity rung runs earlier and
// already covers the simple-linear exactness case.
type jointRung struct{}

func (jointRung) Name() string   { return "joint-acyclicity" }
func (jointRung) Tier() Tier     { return TierPositional }
func (jointRung) Sound() bool    { return true }
func (jointRung) Complete() bool { return false }

func (jointRung) Applicable(_ *logic.RuleSet, v core.ChaseVariant) bool {
	return v == core.VariantSemiOblivious
}

func (jointRung) DecideContext(_ context.Context, rs *logic.RuleSet, _ core.ChaseVariant, _ Options) (Verdict, Evidence, error) {
	ok, w := acyclicity.IsJointlyAcyclic(rs)
	if ok {
		return Terminating, Evidence{Method: "joint-acyclicity"}, nil
	}
	return Undecided, Evidence{Method: "joint-acyclicity", Witness: w.String()}, nil
}

// mfaRung runs the critical Skolem chase with the cyclic-Skolem-term
// stopping rule (critical.MFA) — the model-faithful-acyclicity style
// over-approximation. Saturation without a cyclic term proves CT^so
// (Marnette's lemma); a cyclic term or an exhausted budget is
// inconclusive. The oblivious variant is checked on aux(Σ), whose
// semi-oblivious chase applies exactly the oblivious triggers of Σ.
type mfaRung struct{}

func (mfaRung) Name() string   { return "mfa" }
func (mfaRung) Tier() Tier     { return TierSaturation }
func (mfaRung) Sound() bool    { return true }
func (mfaRung) Complete() bool { return false }

func (mfaRung) Applicable(_ *logic.RuleSet, _ core.ChaseVariant) bool { return true }

func (mfaRung) DecideContext(ctx context.Context, rs *logic.RuleSet, v core.ChaseVariant, opt Options) (Verdict, Evidence, error) {
	target, method := rs, "mfa"
	if v == core.VariantOblivious {
		target, method = critical.AuxTransform(rs), "mfa(aux)"
	}
	res, run, err := critical.MFAContext(ctx, target, chase.Options{
		MaxTriggers: opt.OracleMaxTriggers,
		MaxFacts:    opt.OracleMaxFacts,
		Workers:     opt.Workers,
	})
	if err != nil {
		return Undecided, Evidence{}, err
	}
	switch res {
	case critical.MFATerminating:
		return Terminating, Evidence{Method: method, SearchSpace: run.Instance.Size()}, nil
	case critical.MFACyclic:
		return Undecided, Evidence{Method: method,
			Witness: fmt.Sprintf("cyclic Skolem term at depth %d after %d triggers",
				run.Stats.MaxTermDepth, run.Stats.TriggersApplied)}, nil
	default:
		return Undecided, Evidence{Method: method,
			Witness: fmt.Sprintf("critical chase exceeded budget (%d facts, %d triggers applied)",
				run.Instance.Size(), run.Stats.TriggersApplied)}, nil
	}
}

// saturationRung is the plain bounded critical-instance chase, the
// fallback of core.Decide for general rule sets. It is applicable only
// where no exact decider is (class General): inside the guarded class
// the exact rungs answer, and a 200k-trigger chase before them would
// just burn the budget the ladder exists to save. It can still prove
// termination where the mfa rung stopped on a cyclic-but-harmless
// Skolem term.
type saturationRung struct{}

func (saturationRung) Name() string   { return "critical-saturation" }
func (saturationRung) Tier() Tier     { return TierSaturation }
func (saturationRung) Sound() bool    { return true }
func (saturationRung) Complete() bool { return false }

func (saturationRung) Applicable(rs *logic.RuleSet, _ core.ChaseVariant) bool {
	return rs.Classify() == logic.ClassGeneral
}

func (saturationRung) DecideContext(ctx context.Context, rs *logic.RuleSet, v core.ChaseVariant, opt Options) (Verdict, Evidence, error) {
	target := rs
	if v == core.VariantOblivious {
		target = critical.AuxTransform(rs)
	}
	res, err := critical.OracleContext(ctx, target, chase.SemiOblivious, chase.Options{
		MaxTriggers: opt.OracleMaxTriggers,
		MaxFacts:    opt.OracleMaxFacts,
		Workers:     opt.Workers,
	})
	if err != nil {
		return Undecided, Evidence{}, err
	}
	if res.Outcome == chase.Terminated {
		return Terminating, Evidence{Method: "critical-saturation", SearchSpace: res.Instance.Size()}, nil
	}
	return Undecided, Evidence{Method: "bounded-oracle",
		Witness: fmt.Sprintf("critical chase exceeded budget (%d facts, %d triggers applied, max term depth %d)",
			res.Instance.Size(), res.Stats.TriggersApplied, res.Stats.MaxTermDepth)}, nil
}

// linearRung is the exact linear decider (Theorems 2–3: critical
// weak/rich acyclicity over the shape abstraction).
type linearRung struct{}

func (linearRung) Name() string   { return "linear-exact" }
func (linearRung) Tier() Tier     { return TierExact }
func (linearRung) Sound() bool    { return true }
func (linearRung) Complete() bool { return true }

func (linearRung) Applicable(rs *logic.RuleSet, _ core.ChaseVariant) bool {
	c := rs.Classify()
	return c == logic.ClassSimpleLinear || c == logic.ClassLinear
}

func (linearRung) DecideContext(ctx context.Context, rs *logic.RuleSet, v core.ChaseVariant, opt Options) (Verdict, Evidence, error) {
	res, err := core.DecideLinearContext(ctx, rs, v, opt.Core)
	if err != nil {
		return Undecided, Evidence{}, err
	}
	return fromCoreVerdict(res.Verdict)
}

// guardedRung is the exact guarded decider (Theorem 4: the node-type
// fixpoint over the guarded chase forest). The oblivious variant is
// decided on aux(Σ).
type guardedRung struct{}

func (guardedRung) Name() string   { return "guarded-exact" }
func (guardedRung) Tier() Tier     { return TierExact }
func (guardedRung) Sound() bool    { return true }
func (guardedRung) Complete() bool { return true }

func (guardedRung) Applicable(rs *logic.RuleSet, _ core.ChaseVariant) bool {
	return rs.Classify() != logic.ClassGeneral
}

func (guardedRung) DecideContext(ctx context.Context, rs *logic.RuleSet, v core.ChaseVariant, opt Options) (Verdict, Evidence, error) {
	target, method := rs, "guarded-forest"
	if v == core.VariantOblivious {
		target, method = critical.AuxTransform(rs), "guarded-forest(aux)"
	}
	res, err := core.DecideGuardedContext(ctx, target, opt.Core)
	if err != nil {
		return Undecided, Evidence{}, err
	}
	res.Verdict.Method = method
	return fromCoreVerdict(res.Verdict)
}

// fromCoreVerdict maps an exact decider's verdict into the portfolio
// model.
func fromCoreVerdict(v *core.Verdict) (Verdict, Evidence, error) {
	ev := Evidence{Method: v.Method, Witness: v.Witness, SearchSpace: v.ShapeCount}
	if ev.SearchSpace == 0 {
		ev.SearchSpace = v.NodeTypeCount
	}
	switch v.Answer {
	case core.Terminating:
		return Terminating, ev, nil
	case core.NonTerminating:
		return NonTerminating, ev, nil
	default:
		return Undecided, ev, nil
	}
}

// Registry is an ordered collection of deciders; the scheduler runs the
// applicable ones in registration order within each tier.
type Registry struct {
	deciders []Decider
}

// NewRegistry builds a registry over the given deciders, kept in order.
func NewRegistry(ds ...Decider) *Registry {
	return &Registry{deciders: ds}
}

// Deciders returns the registered deciders in order. The slice must not
// be modified.
func (r *Registry) Deciders() []Decider { return r.deciders }

// DefaultRegistry returns the library's full ladder, bottom-up:
// positional criteria, saturation rungs, exact deciders.
func DefaultRegistry() *Registry {
	return NewRegistry(
		positionalRung{name: "rich-acyclicity", variant: core.VariantOblivious, check: acyclicity.IsRichlyAcyclic},
		positionalRung{name: "weak-acyclicity", variant: core.VariantSemiOblivious, check: acyclicity.IsWeaklyAcyclic},
		jointRung{},
		mfaRung{},
		saturationRung{},
		linearRung{},
		guardedRung{},
	)
}

// RungNames lists the default registry's rung names in ladder order —
// the stable label set of the service's per-rung counters.
func RungNames() []string {
	ds := DefaultRegistry().Deciders()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name()
	}
	return names
}
