package portfolio

import (
	"context"
	"math/rand"
	"testing"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/core"
	"chaseterm/internal/logic"
	"chaseterm/internal/workload"
)

// crossvalOpts keeps the saturation rungs cheap: the random workloads
// are tiny, so every terminating critical chase saturates far below
// this budget.
var crossvalOpts = Options{OracleMaxTriggers: 8_000, OracleMaxFacts: 8_000}

// fromAnswer maps an exact decider's answer into the portfolio model.
func fromAnswer(a core.Answer) Verdict {
	switch a {
	case core.Terminating:
		return Terminating
	case core.NonTerminating:
		return NonTerminating
	default:
		return Undecided
	}
}

// assertAgrees runs the portfolio and checks its verdict against the
// direct exact decider's. The portfolio may decide by a cheaper sound
// rung, but the answer must be the same — a disagreement means either
// an unsound rung or a broken scheduler. It also enforces the ladder
// economy: a weakly-acyclic set (under so) must be decided by the
// weak-acyclicity rung without ever invoking an exact decider.
func assertAgrees(t *testing.T, i int, rs *logic.RuleSet, v core.ChaseVariant, direct core.Answer) {
	t.Helper()
	res, err := Run(context.Background(), rs, v, crossvalOpts)
	if err != nil {
		t.Fatalf("case %d: portfolio: %v\n%s", i, err, rs)
	}
	if want := fromAnswer(direct); res.Verdict != want {
		t.Errorf("case %d (%v): portfolio=%v (by %s) direct=%v:\n%s",
			i, v, res.Verdict, res.DecidedBy, want, rs)
	}
	wa, _ := acyclicity.IsWeaklyAcyclic(rs)
	if v == core.VariantSemiOblivious && wa {
		if res.DecidedBy != "weak-acyclicity" {
			t.Errorf("case %d: WA set decided by %q, want weak-acyclicity:\n%s", i, res.DecidedBy, rs)
		}
		for _, r := range res.Rungs {
			if r.Rung == "linear-exact" || r.Rung == "guarded-exact" {
				t.Errorf("case %d: WA set reached exact rung %q:\n%s", i, r.Rung, rs)
			}
		}
	}
}

// TestCrossvalLinear: on random linear sets (with repeated variables
// and constants, so mostly outside the exact domain of the positional
// criteria) the portfolio must agree with the direct linear decider for
// both variants.
func TestCrossvalLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		rs := workload.RandomLinear(rng, workload.Config{
			NumPreds: 3, MaxArity: 3, NumRules: 3, RepeatProb: 0.5, ConstProb: 0.2,
		})
		so, err := core.DecideLinear(rs, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		assertAgrees(t, i, rs, core.VariantSemiOblivious, so.Verdict.Answer)
		o, err := core.DecideLinear(rs, core.VariantOblivious, core.Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		assertAgrees(t, i, rs, core.VariantOblivious, o.Verdict.Answer)
	}
}

// TestCrossvalGuarded: on random guarded sets the portfolio must agree
// with the direct guarded decider (semi-oblivious variant).
func TestCrossvalGuarded(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		rs := workload.RandomGuarded(rng, workload.Config{
			NumPreds: 3, MaxArity: 2, NumRules: 3, MaxSideAtoms: 2,
		})
		so, err := core.DecideGuarded(rs, core.Options{})
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, rs)
		}
		assertAgrees(t, i, rs, core.VariantSemiOblivious, so.Verdict.Answer)
	}
}

// TestCrossvalRaceAgrees: racing the exact tier must not change any
// answer — only, possibly, which decider produced it.
func TestCrossvalRaceAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(13))
	opts := crossvalOpts
	opts.Race = true
	for i := 0; i < 150; i++ {
		rs := workload.RandomLinear(rng, workload.Config{
			NumPreds: 3, MaxArity: 3, NumRules: 3, RepeatProb: 0.5,
		})
		direct, err := core.DecideLinear(rs, core.VariantSemiOblivious, core.Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		res, err := Run(context.Background(), rs, core.VariantSemiOblivious, opts)
		if err != nil {
			t.Fatalf("case %d: portfolio: %v\n%s", i, err, rs)
		}
		if want := fromAnswer(direct.Verdict.Answer); res.Verdict != want {
			t.Errorf("case %d: raced portfolio=%v (by %s) direct=%v:\n%s",
				i, res.Verdict, res.DecidedBy, want, rs)
		}
	}
}
