package portfolio

import (
	"context"
	"errors"
	"time"

	"chaseterm/internal/core"
	"chaseterm/internal/logic"
)

// RungReport records one rung's run inside a portfolio decision.
type RungReport struct {
	Rung    string
	Verdict Verdict
	Elapsed time.Duration
	// Canceled marks a racing loser stopped by the winner's
	// cancellation rather than by its own verdict.
	Canceled bool
}

// Result is the portfolio's decision together with its provenance: which
// rung decided, whether the exact tier raced, and a per-rung trace.
type Result struct {
	Verdict  Verdict
	Evidence Evidence
	// DecidedBy names the rung whose verdict was adopted; empty when the
	// whole portfolio ran without reaching a decision.
	DecidedBy string
	// Raced reports that the exact tier ran as a parallel race.
	Raced bool
	// Rungs traces every rung that ran, in completion order.
	Rungs []RungReport
}

// Run schedules the default registry over the rule set.
func Run(ctx context.Context, rs *logic.RuleSet, v core.ChaseVariant, opt Options) (*Result, error) {
	return RunWith(ctx, DefaultRegistry(), rs, v, opt)
}

// RunWith schedules a registry over the rule set: the cheap tiers run
// bottom-up in registration order, short-circuiting on the first
// decisive verdict of a sound rung; the exact tier then runs
// sequentially, or as a cancellation race when opt.Race is set — the
// first decisive verdict wins and the losers are cancelled through
// their context. RunWith returns only after every started rung has
// returned: a race never leaks goroutines.
func RunWith(ctx context.Context, reg *Registry, rs *logic.RuleSet, v core.ChaseVariant, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var ladder, exact []Decider
	for _, d := range reg.Deciders() {
		if !d.Applicable(rs, v) {
			continue
		}
		if d.Tier() == TierExact {
			exact = append(exact, d)
		} else {
			ladder = append(ladder, d)
		}
	}

	res := &Result{}
	// lastEv keeps the most informative inconclusive evidence (e.g. the
	// bounded-oracle diagnostic) for an exhausted portfolio.
	var lastEv Evidence
	runRung := func(d Decider) (bool, error) {
		t0 := time.Now()
		verdict, ev, err := d.DecideContext(ctx, rs, v, opt)
		if err != nil {
			return false, err
		}
		res.Rungs = append(res.Rungs, RungReport{Rung: d.Name(), Verdict: verdict, Elapsed: time.Since(t0)})
		if verdict != Undecided && d.Sound() {
			res.Verdict, res.Evidence, res.DecidedBy = verdict, ev, d.Name()
			return true, nil
		}
		if ev.Method != "" {
			lastEv = ev
		}
		return false, nil
	}

	for _, d := range ladder {
		done, err := runRung(d)
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
	}

	if opt.Race && len(exact) > 1 {
		res.Raced = true
		return raceExact(ctx, exact, rs, v, opt, res, lastEv)
	}
	for _, d := range exact {
		done, err := runRung(d)
		if err != nil {
			return nil, err
		}
		if done {
			return res, nil
		}
	}
	return exhausted(res, lastEv), nil
}

func exhausted(res *Result, lastEv Evidence) *Result {
	if lastEv.Method == "" {
		lastEv.Method = "portfolio-exhausted"
	}
	res.Evidence = lastEv
	return res
}

// raceExact runs the exact deciders concurrently and adopts the first
// decisive verdict, cancelling the rest. It drains every racer before
// returning, so no goroutine outlives the call.
func raceExact(ctx context.Context, exact []Decider, rs *logic.RuleSet, v core.ChaseVariant, opt Options, res *Result, lastEv Evidence) (*Result, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx     int
		verdict Verdict
		ev      Evidence
		err     error
		elapsed time.Duration
	}
	ch := make(chan outcome, len(exact))
	for i, d := range exact {
		//chaselint:owned every racer sends exactly one outcome on the buffered ch; the for range exact loop below receives them all
		go func(i int, d Decider) {
			t0 := time.Now()
			verdict, ev, err := d.DecideContext(rctx, rs, v, opt)
			ch <- outcome{idx: i, verdict: verdict, ev: ev, err: err, elapsed: time.Since(t0)}
		}(i, d)
	}

	reports := make([]RungReport, len(exact))
	var winner *outcome
	var firstErr error
	for range exact {
		o := <-ch
		rep := RungReport{Rung: exact[o.idx].Name(), Verdict: o.verdict, Elapsed: o.elapsed}
		switch {
		case o.err == nil:
			if winner == nil && o.verdict != Undecided && exact[o.idx].Sound() {
				o := o
				winner = &o
				// Kill the losers; keep draining until all report back.
				cancel()
			}
		case winner != nil && errors.Is(o.err, context.Canceled) && ctx.Err() == nil:
			// A loser stopped by our own cancellation — expected.
			rep.Canceled = true
		default:
			if firstErr == nil {
				firstErr = o.err
			}
		}
		reports[o.idx] = rep
	}
	res.Rungs = append(res.Rungs, reports...)

	if winner != nil {
		res.Verdict, res.Evidence = winner.verdict, winner.ev
		res.DecidedBy = exact[winner.idx].Name()
		return res, nil
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return exhausted(res, lastEv), nil
}
