package critical

import (
	"strings"
	"testing"

	"chaseterm/internal/chase"
	"chaseterm/internal/parse"
)

func TestCriticalFactsConstantFree(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> q(Y).`)
	facts := Facts(rs)
	// p/2 over {✶}: 1 atom; q/1 over {✶}: 1 atom.
	if len(facts) != 2 {
		t.Fatalf("facts: %d, want 2: %v", len(facts), facts)
	}
	for _, f := range facts {
		for _, a := range f.Args {
			if a != Star {
				t.Errorf("unexpected constant in %s", f)
			}
		}
	}
}

func TestCriticalFactsWithConstants(t *testing.T) {
	rs := parse.MustParseRules(`p(X,0) -> q(1).`)
	// Constants: ✶, 0, 1 — p/2 has 9 tuples, q/1 has 3.
	facts := Facts(rs)
	if len(facts) != 12 {
		t.Fatalf("facts: %d, want 12", len(facts))
	}
	in, err := Instance(rs)
	if err != nil {
		t.Fatal(err)
	}
	if in.Size() != 12 {
		t.Errorf("instance size: %d", in.Size())
	}
}

func TestCriticalZeroAry(t *testing.T) {
	rs := parse.MustParseRules(`start -> goal.`)
	facts := Facts(rs)
	if len(facts) != 2 {
		t.Fatalf("facts: %d, want 2 (start, goal)", len(facts))
	}
}

func TestAuxTransform(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y), q(Y) -> r(Y,Z).`)
	aux := AuxTransform(rs)
	if len(aux.Rules) != 1 {
		t.Fatal("rule count changed")
	}
	r := aux.Rules[0]
	if len(r.Head) != 2 {
		t.Fatalf("head atoms: %d", len(r.Head))
	}
	auxAtom := r.Head[1]
	if !IsAuxPredicate(auxAtom.Pred) {
		t.Errorf("aux predicate name: %s", auxAtom.Pred)
	}
	if len(auxAtom.Args) != 2 { // X and Y
		t.Errorf("aux arity: %d", len(auxAtom.Args))
	}
	// After the transform every body variable is frontier.
	if len(r.Frontier()) != len(r.BodyVariables()) {
		t.Errorf("frontier %v != body vars %v", r.Frontier(), r.BodyVariables())
	}
	if err := aux.Validate(); err != nil {
		t.Errorf("aux set invalid: %v", err)
	}
}

// TestAuxTransformPreservesClasses: linearity and guardedness survive.
func TestAuxTransformPreservesClasses(t *testing.T) {
	lin := parse.MustParseRules(`p(X,Y) -> q(Y,Z).`)
	if got := AuxTransform(lin).Classify().String(); got != "simple-linear" {
		t.Errorf("SL not preserved: %s", got)
	}
	g := parse.MustParseRules(`p(X,Y), q(Y) -> r(Y,Z).`)
	if got := AuxTransform(g).Classify().String(); got != "guarded" {
		t.Errorf("G not preserved: %s", got)
	}
}

// TestAuxTriggerCorrespondence: the oblivious chase of Σ and the
// semi-oblivious chase of aux(Σ) apply the same number of triggers on the
// same database, and the non-aux facts coincide.
func TestAuxTriggerCorrespondence(t *testing.T) {
	srcs := []string{
		`p(X,Y) -> q(X,Z).`,
		`p(X,Y) -> q(Y,X).`,
		`p(X,Y) -> q(X,Z).
q(X,Y) -> r(X).`,
	}
	db := `p(a,b). p(a,c). p(b,b).`
	for _, src := range srcs {
		rs := parse.MustParseRules(src)
		aux := AuxTransform(rs)
		o, err := chase.RunFromAtoms(parse.MustParseFacts(db), rs, chase.Oblivious, chase.Options{MaxTriggers: 500})
		if err != nil {
			t.Fatal(err)
		}
		so, err := chase.RunFromAtoms(parse.MustParseFacts(db), aux, chase.SemiOblivious, chase.Options{MaxTriggers: 500})
		if err != nil {
			t.Fatal(err)
		}
		if o.Outcome != so.Outcome {
			t.Errorf("%q: outcomes differ: %v vs %v", src, o.Outcome, so.Outcome)
		}
		if o.Stats.TriggersApplied != so.Stats.TriggersApplied {
			t.Errorf("%q: triggers differ: %d vs %d", src, o.Stats.TriggersApplied, so.Stats.TriggersApplied)
		}
		// Fact counts: aux run has exactly one extra atom per trigger
		// (modulo duplicate aux atoms, impossible here since triggers are
		// per full homomorphism).
		oN := o.Instance.Size()
		var soN int
		for _, s := range so.Instance.Strings() {
			if !strings.Contains(s, AuxPrefix) {
				soN++
			}
		}
		if oN != soN {
			t.Errorf("%q: non-aux fact counts differ: %d vs %d", src, oN, soN)
		}
	}
}

// TestOracleMarnette: the critical-instance oracle separates terminating
// from non-terminating sets on the paper's examples.
func TestOracleMarnette(t *testing.T) {
	diverges := parse.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	res, err := Oracle(diverges, chase.SemiOblivious, chase.Options{MaxTriggers: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == chase.Terminated {
		t.Error("diverging set saturated")
	}
	stops := parse.MustParseRules(`p(X,Y) -> p(X,Z).`)
	res, err = Oracle(stops, chase.SemiOblivious, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != chase.Terminated {
		t.Error("terminating set did not saturate")
	}
}

func TestMFA(t *testing.T) {
	// Weakly-acyclic-style set: no cyclic term, saturates.
	r, _, err := MFA(parse.MustParseRules(`p(X,Y) -> q(Y,Z).`), chase.Options{})
	if err != nil || r != MFATerminating {
		t.Errorf("MFA: %v %v", r, err)
	}
	// Example 2: cyclic term appears.
	r, _, err = MFA(parse.MustParseRules(`p(X,Y) -> p(Y,Z).`), chase.Options{MaxTriggers: 1000})
	if err != nil || r != MFACyclic {
		t.Errorf("MFA: %v %v", r, err)
	}
	// The guarded gate: MFA is inconclusive (cyclic term) although the
	// chase terminates — the incompleteness the cloud decider fixes.
	r, _, err = MFA(parse.MustParseRules(`g(X,Y), gate(X) -> g(Y,Z).`), chase.Options{MaxTriggers: 1000})
	if err != nil || r != MFACyclic {
		t.Errorf("MFA on gate: %v %v", r, err)
	}
}

func TestStarIsUnparseable(t *testing.T) {
	if _, err := parse.ParseRules(`p(` + string(Star) + `) -> q(X).`); err == nil {
		t.Error("the critical constant must not be expressible in the input syntax")
	}
}
