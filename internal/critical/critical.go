// Package critical implements the critical-instance machinery that reduces
// all-instance chase termination to termination on a single database, plus
// the aux-atom transformation relating the oblivious and the semi-oblivious
// chase. Both devices are standard in the chase-termination literature
// (Marnette, PODS 2009; Grahne–Onet, "Anatomy of the chase") and are the
// semantic foundation of the deciders in internal/core and of the bounded
// empirical oracles used to cross-validate them.
//
// # Critical instance
//
// The critical instance I*(Σ) contains the atom p(t̄) for every predicate p
// of the schema of Σ and every tuple t̄ over C = {✶} ∪ consts(Σ), where ✶
// is a fresh constant. Marnette's lemma: the semi-oblivious chase of Σ
// terminates on every database iff it terminates on I*(Σ). Intuition: any
// database maps homomorphically into I* by collapsing all unknown values to
// ✶, and semi-oblivious trigger applications transport along homomorphisms.
//
// # Aux-atom transformation
//
// aux(Σ) extends the head of every rule σ with a fresh atom
// aux_σ(x₁,…,xₙ) holding all universally quantified variables of σ. Then
// the frontier of every rule becomes its full variable set, so the
// semi-oblivious trigger identity (frontier restriction) coincides with the
// oblivious one (full homomorphism): the oblivious chase of Σ and the
// semi-oblivious chase of aux(Σ) apply exactly corresponding triggers on
// every database, and one terminates iff the other does. The aux predicates
// are fresh and never occur in a body, so they enable no new trigger.
// Consequently the critical-instance lemma transfers to the oblivious
// chase: o-chase of Σ terminates on every database iff it terminates on
// I*(aux(Σ)) iff (by the 1-1 trigger correspondence again) the o-chase of Σ
// terminates on I*(Σ) — aux predicates only add inert atoms.
//
// The transformation preserves linearity and guardedness (the added atom is
// in the head), which is what lets internal/core decide CT^o with the CT^so
// machinery.
package critical

import (
	"context"
	"fmt"
	"strings"

	"chaseterm/internal/chase"
	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
)

// Star is the fresh constant of the critical instance. The parser cannot
// produce it (it is not an identifier), so it never collides with rule
// constants.
const Star = logic.Constant("✶") // ✶

// Constants returns the critical constant set C = {✶} ∪ consts(Σ).
func Constants(rs *logic.RuleSet) []logic.Constant {
	return append([]logic.Constant{Star}, rs.Constants()...)
}

// Facts enumerates the critical instance I*(Σ) as ground atoms: every
// predicate of the schema filled with every tuple over Constants(rs).
func Facts(rs *logic.RuleSet) []logic.Atom {
	consts := Constants(rs)
	var out []logic.Atom
	for _, p := range rs.Schema() {
		tuple := make([]int, p.Arity)
		for {
			args := make([]logic.Term, p.Arity)
			for i, c := range tuple {
				args[i] = consts[c]
			}
			out = append(out, logic.Atom{Pred: p.Name, Args: args})
			// next tuple in mixed radix
			i := p.Arity - 1
			for ; i >= 0; i-- {
				tuple[i]++
				if tuple[i] < len(consts) {
					break
				}
				tuple[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return out
}

// Instance materializes the critical instance. It builds the fact store
// directly over interned term ids — the tuple enumeration never
// round-trips through logic.Atom values the way Facts does, which matters
// because every decider and bounded oracle starts here.
func Instance(rs *logic.RuleSet) (*instance.Instance, error) {
	in := instance.New()
	consts := Constants(rs)
	ids := make([]instance.TermID, len(consts))
	for i, c := range consts {
		ids[i] = in.Terms.Const(string(c))
	}
	for _, p := range rs.Schema() {
		pid := in.Pred(p.Name, p.Arity)
		tuple := make([]int, p.Arity)
		args := make([]instance.TermID, p.Arity)
		for {
			for i, c := range tuple {
				args[i] = ids[c]
			}
			in.Add(pid, args)
			// next tuple in mixed radix
			i := p.Arity - 1
			for ; i >= 0; i-- {
				tuple[i]++
				if tuple[i] < len(consts) {
					break
				}
				tuple[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	return in, nil
}

// AuxPrefix prefixes the generated head-atom predicates of AuxTransform.
const AuxPrefix = "aux·" // aux· — not producible by the parser

// AuxTransform returns aux(Σ): every rule's head is extended with a fresh
// atom over all universally quantified variables of the rule. See the
// package comment for the semantics.
func AuxTransform(rs *logic.RuleSet) *logic.RuleSet {
	out := logic.NewRuleSet()
	for i, r := range rs.Rules {
		vars := r.BodyVariables()
		args := make([]logic.Term, len(vars))
		for j, v := range vars {
			args[j] = v
		}
		auxAtom := logic.Atom{Pred: fmt.Sprintf("%s%d", AuxPrefix, i), Args: args}
		head := make([]logic.Atom, 0, len(r.Head)+1)
		head = append(head, r.Head...)
		head = append(head, auxAtom)
		nr := logic.NewTGD(r.Body, head)
		nr.Label = r.Label
		out.Rules = append(out.Rules, nr)
	}
	return out
}

// IsAuxPredicate reports whether a predicate name was generated by
// AuxTransform.
func IsAuxPredicate(name string) bool { return strings.HasPrefix(name, AuxPrefix) }

// Oracle is the bounded empirical termination oracle: it runs the requested
// chase variant on the critical instance with the given budgets.
//
// By the critical-instance lemma (package comment), for the semi-oblivious
// and oblivious variants a Terminated outcome proves Σ ∈ CT^so (resp.
// CT^o); a budget outcome is inconclusive on its own but is used by tests
// to corroborate a decider's non-termination verdict (the budgets are
// chosen far beyond the saturation sizes of the terminating workloads).
//
// Deprecated: use OracleContext so the chase can be canceled.
func Oracle(rs *logic.RuleSet, v chase.Variant, opt chase.Options) (*chase.Result, error) {
	return OracleContext(context.Background(), rs, v, opt)
}

// OracleContext is Oracle honoring a context: a canceled or expired
// context stops the underlying chase within its check interval and is
// returned as ctx.Err() alongside the partial result (Outcome
// chase.Canceled).
func OracleContext(ctx context.Context, rs *logic.RuleSet, v chase.Variant, opt chase.Options) (*chase.Result, error) {
	in, err := Instance(rs)
	if err != nil {
		return nil, err
	}
	return chase.RunContext(ctx, in, rs, v, opt)
}

// MFAResult is the outcome of the model-faithful-acyclicity style check.
type MFAResult int

const (
	// MFATerminating: the critical Skolem chase saturated without ever
	// creating a cyclic Skolem term; Σ ∈ CT^so (and the restricted chase
	// terminates too).
	MFATerminating MFAResult = iota
	// MFACyclic: a cyclic Skolem term appeared; termination is unknown
	// under this test (the criterion is sound but incomplete — see the
	// guarded counterexample in internal/core's tests).
	MFACyclic
	// MFABudget: the run exhausted its budget before either event.
	MFABudget
)

func (r MFAResult) String() string {
	switch r {
	case MFATerminating:
		return "terminating"
	case MFACyclic:
		return "cyclic-term"
	default:
		return "budget-exceeded"
	}
}

// MFA runs the critical Skolem chase with the cyclic-term stopping rule.
// This is the classic sufficient acyclicity test positioned between weak
// acyclicity and the paper's exact deciders; internal/core uses it as the
// fallback for rule sets outside the guarded class.
//
// Deprecated: use MFAContext so the chase can be canceled.
func MFA(rs *logic.RuleSet, opt chase.Options) (MFAResult, *chase.Result, error) {
	return MFAContext(context.Background(), rs, opt)
}

// MFAContext is MFA honoring a context; cancellation surfaces as
// (MFABudget, partial result, ctx.Err()).
func MFAContext(ctx context.Context, rs *logic.RuleSet, opt chase.Options) (MFAResult, *chase.Result, error) {
	opt.StopOnCyclicSkolem = true
	res, err := OracleContext(ctx, rs, chase.SemiOblivious, opt)
	if err != nil {
		return MFABudget, res, err
	}
	switch res.Outcome {
	case chase.Terminated:
		return MFATerminating, res, nil
	case chase.CyclicTerm:
		return MFACyclic, res, nil
	default:
		return MFABudget, res, nil
	}
}
