package acyclicity

import (
	"fmt"

	"chaseterm/internal/graph"
	"chaseterm/internal/logic"
)

// Joint acyclicity (Krötzsch, Rudolph — "Extending decidable existential
// rules by joining acyclicity and guardedness", IJCAI 2011) is a positional
// termination criterion for the Skolem (semi-oblivious) chase that strictly
// generalizes weak acyclicity: instead of tracking single-edge value flow
// between positions, it tracks, per existential variable y, the full set of
// positions Move(y) that nulls invented for y can ever reach, and requires
// the "feeds" relation between existential variables to be acyclic.
//
//	Move(y): least set of positions with
//	  (i)  every head position of y in its own rule, and
//	  (ii) for every rule ρ and frontier variable x of ρ: if every body
//	       position of x lies in Move(y), then every head position of x
//	       is in Move(y)
//	       (a y-null can be h(x) only if it can sit at all of x's body
//	       positions simultaneously);
//
//	y feeds y′ (edge y → y′): some frontier variable x of y′'s rule has
//	all its body positions inside Move(y) — then a trigger inventing
//	y′-nulls can consume a y-null in its frontier, nesting Skolem terms.
//
// Σ is jointly acyclic iff the feeds graph is acyclic. JA ⇒ CT^so (hence
// restricted-chase termination too), and WA ⊆ JA: weak acyclicity's
// dependency-graph paths are a special case of Move-set propagation. Both
// facts are cross-validated in the tests against the chase oracle and the
// exact deciders of internal/core.
//
// Like WA/RA, the criterion ignores constants (it may under-approximate
// termination for rule sets whose bodies are gated by constants).

// exVar identifies an existential variable by rule index and name.
type exVar struct {
	rule int
	name logic.Variable
}

// IsJointlyAcyclic reports whether the rule set is jointly acyclic,
// together with a feeds-cycle witness when it is not: the sequence of
// existential variables y0 → y1 → … → y0 along which nulls of each
// variable can reach the frontier of the next variable's rule, nesting
// Skolem terms without bound.
func IsJointlyAcyclic(rs *logic.RuleSet) (bool, *Witness) {
	positions := rs.Positions()
	posIdx := make(map[logic.Position]int, len(positions))
	for i, p := range positions {
		posIdx[p] = i
	}

	type varOcc struct {
		bodyPos []int
		headPos []int
	}
	// Per rule: occurrences of each frontier variable.
	frontierOcc := make([]map[logic.Variable]*varOcc, len(rs.Rules))
	// Per rule: head positions of each existential variable.
	var exVars []exVar
	exHead := make(map[exVar][]int)
	for ri, r := range rs.Rules {
		frontierOcc[ri] = make(map[logic.Variable]*varOcc)
		isFrontier := make(map[logic.Variable]bool)
		for _, v := range r.Frontier() {
			isFrontier[v] = true
			frontierOcc[ri][v] = &varOcc{}
		}
		isEx := make(map[logic.Variable]bool)
		for _, z := range r.Existentials() {
			isEx[z] = true
			exVars = append(exVars, exVar{ri, z})
		}
		for _, a := range r.Body {
			p := a.Predicate()
			for i, t := range a.Args {
				if v, ok := t.(logic.Variable); ok && isFrontier[v] {
					frontierOcc[ri][v].bodyPos = append(frontierOcc[ri][v].bodyPos, posIdx[logic.Position{Pred: p, Index: i}])
				}
			}
		}
		for _, a := range r.Head {
			p := a.Predicate()
			for i, t := range a.Args {
				v, ok := t.(logic.Variable)
				if !ok {
					continue
				}
				n := posIdx[logic.Position{Pred: p, Index: i}]
				if isEx[v] {
					key := exVar{ri, v}
					exHead[key] = append(exHead[key], n)
				} else if isFrontier[v] {
					frontierOcc[ri][v].headPos = append(frontierOcc[ri][v].headPos, n)
				}
			}
		}
	}

	// move computes Move(y) as a least fixpoint.
	move := func(y exVar) []bool {
		in := make([]bool, len(positions))
		for _, n := range exHead[y] {
			in[n] = true
		}
		for changed := true; changed; {
			changed = false
			for ri := range rs.Rules {
				for _, occ := range frontierOcc[ri] {
					if len(occ.bodyPos) == 0 {
						continue
					}
					all := true
					for _, n := range occ.bodyPos {
						if !in[n] {
							all = false
							break
						}
					}
					if !all {
						continue
					}
					for _, n := range occ.headPos {
						if !in[n] {
							in[n] = true
							changed = true
						}
					}
				}
			}
		}
		return in
	}

	idxOf := make(map[exVar]int, len(exVars))
	for i, y := range exVars {
		idxOf[y] = i
	}
	g := graph.New(len(exVars))
	for i, y := range exVars {
		m := move(y)
		// y feeds y′ when some frontier variable of y′'s rule can carry a
		// y-null (all its body positions inside Move(y)).
		for ri, r := range rs.Rules {
			if len(r.Existentials()) == 0 {
				continue
			}
			feeds := false
			for _, occ := range frontierOcc[ri] {
				if len(occ.bodyPos) == 0 {
					continue
				}
				all := true
				for _, n := range occ.bodyPos {
					if !m[n] {
						all = false
						break
					}
				}
				if all {
					feeds = true
					break
				}
			}
			if !feeds {
				continue
			}
			for _, z := range r.Existentials() {
				g.AddEdgeDedup(i, idxOf[exVar{ri, z}], false)
			}
		}
	}
	e := g.CycleEdge()
	if e == nil {
		return true, nil
	}
	w := &Witness{Mode: Joint}
	for _, n := range g.CycleThrough(*e) {
		y := exVars[n]
		w.ExVars = append(w.ExVars, fmt.Sprintf("rule#%d:%s", y.rule, y.name))
	}
	return false, w
}

// IsJointlyAcyclicBool is the historical bool-only form of
// IsJointlyAcyclic.
//
// Deprecated: Use IsJointlyAcyclic, which also returns the feeds-cycle
// witness — the same (bool, *Witness) shape as the other acyclicity
// checks.
func IsJointlyAcyclicBool(rs *logic.RuleSet) bool {
	ok, _ := IsJointlyAcyclic(rs)
	return ok
}
