package acyclicity_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/chase"
	"chaseterm/internal/critical"
	"chaseterm/internal/parse"
	"chaseterm/internal/workload"
)

func TestJointAcyclicityKnownCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		ja   bool
	}{
		{"example1", `person(X) -> hasFather(X,Y), person(Y).`, false},
		{"example2", `p(X,Y) -> p(Y,Z).`, false},
		{"chain", "a(X) -> b(X,Y).\nb(X,Y) -> c(Y).", true},
		// WA fails here (positional cycle through r[2] -> r[2] via the
		// second rule's frontier), but the null of Y can never sit at BOTH
		// body positions of the second rule's frontier variable... it can:
		// r(X,X). So Move(Y) propagation matters; worked out by hand:
		// r(V,W) -> s(W); s(W) -> r(W,W): Y=none. Use the classic JA ⊋ WA
		// witness instead:
		{"ja-not-wa", "p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y).", true},
		{"full-only", "p(X,Y) -> q(Y,X).\nq(X,Y) -> p(X,Y).", true},
		{"self-feeding", `q(X,Y) -> q(Y,Z).`, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rs := parse.MustParseRules(tc.src)
			got, w := acyclicity.IsJointlyAcyclic(rs)
			if got != tc.ja {
				t.Errorf("JA: got %v, want %v", got, tc.ja)
			}
			if !got && (w == nil || len(w.ExVars) == 0) {
				t.Error("non-JA verdict came without a feeds-cycle witness")
			}
			if got && w != nil {
				t.Error("JA verdict came with a witness")
			}
		})
	}
}

// TestJAStrictlyGeneralizesWA exhibits a set that is JA but not WA: the
// invented null flows to a position from which it cannot re-enter a
// frontier that feeds an existential.
func TestJAStrictlyGeneralizesWA(t *testing.T) {
	// p(X) -> ∃Y q(X,Y); q(X,Y), q(Y,X) -> p(Y).
	// WA: q[2] => q[2]-ish dangerous cycle exists positionally (p[1] ->
	// ... -> p[1] through the special edge), so WA fails. JA: for a
	// trigger of the second rule to map Y's null, the null must occur in
	// BOTH q[1] and q[2] (frontier variable Y occurs at q[2] and q[1]).
	// Move(Y) = {q[2]}: the closure cannot add anything since Y-the-
	// frontier-var of rule 2 occurs at body positions {q[2], q[1]} ⊄
	// Move(Y). So no feeds edge: JA holds.
	rs := parse.MustParseRules("p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y).")
	wa, _ := acyclicity.IsWeaklyAcyclic(rs)
	if wa {
		t.Fatal("test premise broken: expected WA to fail")
	}
	if ok, _ := acyclicity.IsJointlyAcyclic(rs); !ok {
		t.Fatal("expected JA to hold")
	}
	// And the set really is terminating: the oracle saturates.
	res, err := critical.Oracle(rs, chase.SemiOblivious, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != chase.Terminated {
		t.Error("JA witness did not saturate")
	}
}

// TestQuickWAImpliesJA: weak acyclicity implies joint acyclicity on random
// rule sets across all three generator classes.
func TestQuickWAImpliesJA(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 600; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 3, NumRules: 3, RepeatProb: 0.4})
		switch i % 3 {
		case 1:
			rs = workload.RandomSL(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		case 2:
			rs = workload.RandomGuarded(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		}
		wa, _ := acyclicity.IsWeaklyAcyclic(rs)
		if ja, _ := acyclicity.IsJointlyAcyclic(rs); wa && !ja {
			t.Fatalf("WA ⊆ JA violated:\n%s", rs)
		}
	}
}

// TestQuickJASound: JA implies the critical Skolem chase saturates
// (soundness of the criterion for CT^so).
func TestQuickJASound(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		rs := workload.RandomGuarded(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		if ok, _ := acyclicity.IsJointlyAcyclic(rs); !ok {
			return true
		}
		res, err := critical.Oracle(rs, chase.SemiOblivious, chase.Options{MaxTriggers: 8000, MaxFacts: 8000})
		if err != nil {
			return false
		}
		if res.Outcome != chase.Terminated {
			t.Logf("JA set did not saturate:\n%s", rs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
