// Package acyclicity implements the positional acyclicity criteria that the
// paper builds its simple-linear characterizations on (Theorem 1):
//
//   - Weak acyclicity (Fagin, Kolaitis, Miller, Popa — "Data exchange:
//     semantics and query answering"): the dependency graph over schema
//     positions has no cycle through a special edge. For simple linear TGDs
//     this is exactly CT^so (Theorem 1).
//
//   - Rich acyclicity (Hernich, Schweikardt — "CWA-solutions for data
//     exchange settings with target dependencies"): the same condition on
//     the extended dependency graph, whose special edges also originate at
//     positions of non-frontier body variables (the oblivious chase invents
//     fresh nulls per full homomorphism, so every body position can drive
//     null creation). For simple linear TGDs this is exactly CT^o
//     (Theorem 1). RA ⊆ WA.
//
// Both are sound sufficient conditions for all TGDs: WA ⇒ CT^so and
// RA ⇒ CT^o (hence both ⇒ termination of the restricted chase as well).
// They are complete only for SL; the paper's Theorem 2 refines them into
// critical-weak/rich acyclicity for linear TGDs, implemented in
// internal/core.
package acyclicity

import (
	"fmt"
	"strings"

	"chaseterm/internal/graph"
	"chaseterm/internal/logic"
)

// Mode selects which dependency graph is built.
type Mode int

const (
	// Weak builds the dependency graph of Fagin et al.
	Weak Mode = iota
	// Rich builds the extended dependency graph of Hernich–Schweikardt.
	Rich
	// Joint labels witnesses of the joint-acyclicity check (joint.go),
	// whose cycles run over existential variables, not positions.
	Joint
)

func (m Mode) String() string {
	switch m {
	case Weak:
		return "weak"
	case Rich:
		return "rich"
	default:
		return "joint"
	}
}

// DependencyGraph is the positional graph together with the position table
// used to interpret node indexes.
type DependencyGraph struct {
	G         *graph.Graph
	Positions []logic.Position
	posIndex  map[logic.Position]int
}

// Build constructs the (extended) dependency graph of a rule set.
//
// For every TGD σ = φ → ψ and every universally quantified variable x of σ
// occurring in ψ (frontier variable), and every position π of x in φ:
//
//   - a regular edge π → π′ for every position π′ of x in ψ;
//   - a special edge π ⇒ π′ for every position π′ in ψ holding an
//     existentially quantified variable.
//
// In Rich mode, special edges additionally originate at every body position
// of every universally quantified variable (frontier or not): the oblivious
// chase fires one trigger per full homomorphism, so a fresh binding at any
// body position yields a fresh trigger and hence fresh nulls.
func Build(rs *logic.RuleSet, mode Mode) *DependencyGraph {
	dg := &DependencyGraph{posIndex: make(map[logic.Position]int)}
	for _, pos := range rs.Positions() {
		dg.posIndex[pos] = len(dg.Positions)
		dg.Positions = append(dg.Positions, pos)
	}
	dg.G = graph.New(len(dg.Positions))

	for _, r := range rs.Rules {
		frontier := make(map[logic.Variable]bool)
		for _, v := range r.Frontier() {
			frontier[v] = true
		}
		existential := make(map[logic.Variable]bool)
		for _, z := range r.Existentials() {
			existential[z] = true
		}
		// Collect positions per variable.
		bodyPos := make(map[logic.Variable][]int)
		for _, a := range r.Body {
			p := a.Predicate()
			for i, t := range a.Args {
				if v, ok := t.(logic.Variable); ok {
					n := dg.posIndex[logic.Position{Pred: p, Index: i}]
					bodyPos[v] = append(bodyPos[v], n)
				}
			}
		}
		headPosOfVar := make(map[logic.Variable][]int)
		var exPos []int
		for _, a := range r.Head {
			p := a.Predicate()
			for i, t := range a.Args {
				v, ok := t.(logic.Variable)
				if !ok {
					continue
				}
				n := dg.posIndex[logic.Position{Pred: p, Index: i}]
				if existential[v] {
					exPos = append(exPos, n)
				} else {
					headPosOfVar[v] = append(headPosOfVar[v], n)
				}
			}
		}
		for v, sources := range bodyPos {
			for _, src := range sources {
				if frontier[v] {
					for _, dst := range headPosOfVar[v] {
						dg.G.AddEdgeDedup(src, dst, false)
					}
					for _, dst := range exPos {
						dg.G.AddEdgeDedup(src, dst, true)
					}
				} else if mode == Rich {
					for _, dst := range exPos {
						dg.G.AddEdgeDedup(src, dst, true)
					}
				}
			}
		}
	}
	return dg
}

// Witness describes a dangerous cycle. For the weak/rich criteria it is
// a cycle through a special edge of the (extended) dependency graph,
// reported as the sequence of positions; for joint acyclicity it is a
// cycle of the feeds graph, reported as the sequence of existential
// variables (ExVars).
type Witness struct {
	Mode      Mode
	Positions []logic.Position
	// ExVars names the existential variables of a feeds cycle
	// ("rule#i:Z"), set for Mode Joint only.
	ExVars []string
}

func (w *Witness) String() string {
	if w.Mode == Joint {
		return fmt.Sprintf("feeds cycle (%s): %s", w.Mode, strings.Join(w.ExVars, " -> "))
	}
	parts := make([]string, len(w.Positions))
	for i, p := range w.Positions {
		parts[i] = p.String()
	}
	return fmt.Sprintf("dangerous cycle (%s): %s", w.Mode, strings.Join(parts, " -> "))
}

// IsWeaklyAcyclic reports whether the rule set is weakly acyclic, together
// with a dangerous-cycle witness when it is not.
func IsWeaklyAcyclic(rs *logic.RuleSet) (bool, *Witness) {
	return check(rs, Weak)
}

// IsRichlyAcyclic reports whether the rule set is richly acyclic, together
// with a dangerous-cycle witness when it is not.
func IsRichlyAcyclic(rs *logic.RuleSet) (bool, *Witness) {
	return check(rs, Rich)
}

func check(rs *logic.RuleSet, mode Mode) (bool, *Witness) {
	dg := Build(rs, mode)
	e := dg.G.SpecialCycleEdge()
	if e == nil {
		return true, nil
	}
	cycle := dg.G.CycleThrough(*e)
	w := &Witness{Mode: mode}
	for _, n := range cycle {
		w.Positions = append(w.Positions, dg.Positions[n])
	}
	return false, w
}
