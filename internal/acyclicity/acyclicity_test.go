package acyclicity

import (
	"testing"

	"chaseterm/internal/parse"
)

type acase struct {
	name string
	src  string
	wa   bool // weakly acyclic?
	ra   bool // richly acyclic?
}

// Hand-derived ground truth. RA ⊆ WA must hold throughout.
var cases = []acase{
	{
		name: "example1",
		src:  `person(X) -> hasFather(X,Y), person(Y).`,
		wa:   false, ra: false,
	},
	{
		name: "example2",
		src:  `p(X,Y) -> p(Y,Z).`,
		wa:   false, ra: false,
	},
	{
		// The frontier drops Y: no dangerous cycle in the dependency graph
		// (special edge p[1] => p[2] but p[2] has no out-edges), but the
		// extended graph adds p[2] => p[2] (Y is a body variable).
		name: "wa-not-ra",
		src:  `p(X,Y) -> p(X,Z).`,
		wa:   true, ra: false,
	},
	{
		name: "chain",
		src: `a(X) -> b(X,Y).
b(X,Y) -> c(Y).`,
		wa: true, ra: true,
	},
	{
		name: "full-cycle-no-existential",
		src: `p(X,Y) -> q(Y,X).
q(X,Y) -> p(X,Y).`,
		wa: true, ra: true,
	},
	{
		// Weak acyclicity is positional and blind to the repeated body
		// variable: it wrongly fears p(X,X) -> p(X,Z) (the chase actually
		// terminates — the paper's reason for critical-acyclicity).
		name: "repeated-var-fools-wa",
		src:  `p(X,X) -> p(X,Z).`,
		wa:   false, ra: false,
	},
	{
		name: "two-step-dangerous-cycle",
		src: `p(X) -> q(X,Y).
q(X,Y) -> p(Y).`,
		wa: false, ra: false,
	},
	{
		name: "empty-frontier",
		src:  `r(X) -> r(Y).`,
		wa:   true, ra: false,
	},
	{
		name: "multi-head-shared-existential",
		src:  `person(X) -> hasFather(X,Y), male(Y).`,
		wa:   true, ra: true,
	},
}

func TestWeakRichAcyclicity(t *testing.T) {
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rs := parse.MustParseRules(tc.src)
			wa, waWitness := IsWeaklyAcyclic(rs)
			if wa != tc.wa {
				t.Errorf("WA: got %v, want %v (witness %v)", wa, tc.wa, waWitness)
			}
			ra, raWitness := IsRichlyAcyclic(rs)
			if ra != tc.ra {
				t.Errorf("RA: got %v, want %v (witness %v)", ra, tc.ra, raWitness)
			}
			if !wa && waWitness == nil {
				t.Error("WA: no witness for negative answer")
			}
			if !ra && raWitness == nil {
				t.Error("RA: no witness for negative answer")
			}
		})
	}
}

// TestRAImpliesWA: rich acyclicity is strictly stronger.
func TestRAImpliesWA(t *testing.T) {
	for _, tc := range cases {
		if tc.ra && !tc.wa {
			t.Errorf("%s: ground truth violates RA ⊆ WA", tc.name)
		}
		rs := parse.MustParseRules(tc.src)
		ra, _ := IsRichlyAcyclic(rs)
		wa, _ := IsWeaklyAcyclic(rs)
		if ra && !wa {
			t.Errorf("%s: implementation violates RA ⊆ WA", tc.name)
		}
	}
}

func TestWitnessRendering(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	ok, w := IsWeaklyAcyclic(rs)
	if ok {
		t.Fatal("expected dangerous cycle")
	}
	s := w.String()
	if s == "" || w.Mode != Weak {
		t.Errorf("witness: %q mode %v", s, w.Mode)
	}
}

func TestDependencyGraphShape(t *testing.T) {
	// person(X) -> hasFather(X,Y), person(Y): positions person[1],
	// hasFather[1], hasFather[2].
	rs := parse.MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	dg := Build(rs, Weak)
	if len(dg.Positions) != 3 {
		t.Fatalf("positions: %d", len(dg.Positions))
	}
	// X: person[1] -> hasFather[1] regular; person[1] => hasFather[2],
	// person[1] => person[1] special.
	edges := dg.G.Edges()
	regular, special := 0, 0
	for _, e := range edges {
		if e.Special {
			special++
		} else {
			regular++
		}
	}
	if regular != 1 || special != 2 {
		t.Errorf("edges: %d regular, %d special (want 1, 2)", regular, special)
	}
}

func TestRichGraphAddsNonFrontierSources(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> p(X,Z).`)
	weak := Build(rs, Weak)
	rich := Build(rs, Rich)
	if len(rich.G.Edges()) <= len(weak.G.Edges()) {
		t.Errorf("extended graph not larger: %d vs %d", len(rich.G.Edges()), len(weak.G.Edges()))
	}
}
