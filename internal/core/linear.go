// Package core implements the decision procedures that are the
// contribution of "Chase Termination for Guarded Existential Rules"
// (Calautti, Gottlob, Pieris; PODS 2015):
//
//   - DecideLinear — critical-weak/rich acyclicity, the exact
//     characterization of CT^so ∩ L and CT^o ∩ L (Theorem 2), which on
//     simple-linear inputs coincides with plain weak/rich acyclicity
//     (Theorem 1) and yields the complexity landscape of Theorem 3;
//   - DecideGuarded — the decision procedure for CT^? ∩ G (Theorem 4),
//     implemented as a deterministic memoized fixpoint over node types of
//     the guarded chase forest of the critical instance;
//   - Decide — the front door that classifies a rule set and dispatches.
//
// All procedures decide termination of the chase on the critical instance
// I*(Σ); by the critical-instance lemma (package critical) this equals
// all-instance termination for the semi-oblivious chase, and via the
// aux-atom transformation also for the oblivious chase.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"chaseterm/internal/graph"
	"chaseterm/internal/logic"
)

// Answer is a three-valued decision outcome.
type Answer int

const (
	// Unknown: the procedure could not decide (only possible for the
	// fallback paths outside the guarded class, or on budget exhaustion).
	Unknown Answer = iota
	// Terminating: Σ ∈ CT^? — every ?-chase sequence terminates on every
	// database.
	Terminating
	// NonTerminating: Σ ∉ CT^? — some database has a non-terminating
	// ?-chase sequence (the critical instance is such a database).
	NonTerminating
)

func (a Answer) String() string {
	switch a {
	case Terminating:
		return "terminating"
	case NonTerminating:
		return "non-terminating"
	default:
		return "unknown"
	}
}

// ChaseVariant mirrors chase.Variant for the two variants the paper's
// deciders cover. (Defined locally so this package does not import the
// engine; the façade reconciles the two.)
type ChaseVariant int

const (
	// VariantOblivious decides membership in CT^o.
	VariantOblivious ChaseVariant = iota
	// VariantSemiOblivious decides membership in CT^so.
	VariantSemiOblivious
)

func (v ChaseVariant) String() string {
	if v == VariantOblivious {
		return "oblivious"
	}
	return "semi-oblivious"
}

// Default budgets applied when the corresponding Options field is zero.
const (
	DefaultMaxShapes    = 1_000_000
	DefaultMaxNodeTypes = 250_000
)

// Options bound the deciders. Zero values select generous defaults.
type Options struct {
	// MaxShapes caps the abstract-shape space of DecideLinear
	// (default DefaultMaxShapes).
	MaxShapes int
	// MaxNodeTypes caps the node-type space of DecideGuarded
	// (default DefaultMaxNodeTypes).
	MaxNodeTypes int
}

func (o Options) withDefaults() Options {
	// Non-positive caps mean "default": a negative cap would make every
	// decision fail immediately with a budget error.
	if o.MaxShapes <= 0 {
		o.MaxShapes = DefaultMaxShapes
	}
	if o.MaxNodeTypes <= 0 {
		o.MaxNodeTypes = DefaultMaxNodeTypes
	}
	return o
}

// Verdict is the result of a decision procedure.
type Verdict struct {
	Answer  Answer
	Variant ChaseVariant
	// Method names the procedure that produced the answer, e.g.
	// "critical-weak-acyclicity" or "guarded-forest".
	Method string
	// Witness is a human-readable certificate: a dangerous cycle over
	// shapes for linear inputs, a pumpable node-type cycle for guarded
	// ones. Empty for terminating verdicts.
	Witness string
	// ShapeCount / NodeTypeCount expose search-space sizes for the
	// complexity experiments (Theorem 3 / Theorem 4 scaling).
	ShapeCount    int
	NodeTypeCount int
}

// ---------------------------------------------------------------------------
// DecideLinear: critical-weak/rich acyclicity (Theorems 1–3).
//
// Abstraction. Over the critical instance, every atom produced by a linear
// chase is abstracted to its *shape*: the predicate plus the partition of
// its argument positions into equality classes, each class marked either
// with a specific constant (the critical constant ✶ or a rule constant) or
// as "null" (an invented value). Because a linear rule has a single body
// atom, the children of a concrete atom are determined by its shape alone,
// so the set of shapes reachable from the critical atoms is computable as a
// least fixpoint, and the production relation on shapes mirrors the
// concrete chase exactly.
//
// Term flow. Non-termination must pump a growing term around a cycle. We
// build a graph whose nodes are (shape, null-class) pairs:
//
//   - a REGULAR edge (S,c) → (S',c') when a production from S copies the
//     term of class c into class c' of child shape S' (frontier copying);
//   - a SPECIAL edge (S,c) ⇒ (S',c') when the production invents the value
//     of c' (an existential variable) and class c of S is a legitimate
//     growth source for the variant:
//     – semi-oblivious: c is bound to a frontier variable of the rule (the
//     invented Skolem term f_σz(h(frontier)) nests the frontier terms,
//     so a deeper frontier term yields a deeper — hence new — term);
//     – oblivious: c is bound to any body variable (a fresh binding at any
//     body position makes the homomorphism — and therefore the trigger
//     and its invented nulls — new). Constant-marked classes are never
//     sources or targets: constants cannot grow.
//
// Σ (linear) has a non-terminating ?-chase on some database iff this graph
// has a cycle through a special edge (over reachable shapes):
//
// (⇐, pumping) Realize the cycle's start shape by a concrete atom; each lap
// copies the tracked term around the cycle and the special step strictly
// deepens it (so) or refreshes it (o), so every lap's trigger has a frontier
// tuple (so) or parent atom (o) never seen before and fires, ad infinitum.
// (⇒, provenance) An infinite chase of the critical instance creates terms
// of unbounded depth; following the provenance of a term deeper than
// |shapes × classes| backwards traces a path in the graph that repeats a
// (shape, class) pair with at least one invention step in between — a
// special cycle. For the oblivious variant the same argument applies after
// the aux-atom transformation (package critical), under which the o-graph
// below is literally the so-graph of aux(Σ) restricted to the original
// predicates.
//
// On simple-linear inputs every shape of the right predicate matches every
// body atom (no repeated variables, so no equality constraint can fail),
// and the shape graph collapses onto the positional dependency graph:
// critical-weak acyclicity = weak acyclicity and critical-rich acyclicity =
// rich acyclicity — Theorem 1. The exhaustive equivalence tests in this
// package's test files check exactly that.
// ---------------------------------------------------------------------------

// shapeClassMark marks an equality class of a shape.
type shapeClassMark struct {
	isNull bool
	cnst   string // constant name when !isNull
}

// shape is an abstract atom: predicate, position partition, class marks.
type shape struct {
	pred  string
	class []int // position -> class id (normalized by first occurrence)
	marks []shapeClassMark
	id    int
}

func (s *shape) key() string {
	var b strings.Builder
	b.WriteString(s.pred)
	for _, c := range s.class {
		fmt.Fprintf(&b, ",%d", c)
	}
	for _, m := range s.marks {
		if m.isNull {
			b.WriteString("|n")
		} else {
			b.WriteString("|c:" + m.cnst)
		}
	}
	return b.String()
}

func (s *shape) String() string {
	parts := make([]string, len(s.class))
	nullName := make(map[int]string)
	for i, c := range s.class {
		m := s.marks[c]
		if m.isNull {
			n, ok := nullName[c]
			if !ok {
				n = fmt.Sprintf("n%d", len(nullName)+1)
				nullName[c] = n
			}
			parts[i] = n
		} else {
			parts[i] = m.cnst
		}
	}
	return s.pred + "(" + strings.Join(parts, ",") + ")"
}

// shapeTerm is an abstract term used while constructing a child shape.
type shapeTerm struct {
	kind int // 0 = parent class, 1 = constant, 2 = fresh existential
	val  int // parent class id or existential index
	name string
}

// buildShape normalizes a list of per-position abstract terms into a shape,
// also returning, per class, the originating shapeTerm.
func buildShape(pred string, terms []shapeTerm) (*shape, []shapeTerm) {
	s := &shape{pred: pred, class: make([]int, len(terms))}
	var origins []shapeTerm
	type tkey struct {
		kind int
		val  int
		name string
	}
	classOf := make(map[tkey]int)
	for i, t := range terms {
		k := tkey{t.kind, t.val, t.name}
		c, ok := classOf[k]
		if !ok {
			c = len(s.marks)
			classOf[k] = c
			switch t.kind {
			case 1:
				s.marks = append(s.marks, shapeClassMark{cnst: t.name})
			default:
				s.marks = append(s.marks, shapeClassMark{isNull: true})
			}
			origins = append(origins, t)
		}
		s.class[i] = c
	}
	return s, origins
}

type linearRule struct {
	src      *logic.TGD
	idx      int
	bodyPred string
	bodyArgs []logic.Term
	frontier map[logic.Variable]bool
	bodyVars map[logic.Variable]bool
	exIdx    map[logic.Variable]int
}

// LinearResult carries the full shape analysis, for the benchmarks and the
// façade.
type LinearResult struct {
	Verdict *Verdict
	// Shapes in discovery order (diagnostics).
	Shapes []string
}

// DecideLinear decides CT^o / CT^so membership for a set of linear TGDs
// via critical-weak/rich acyclicity: the shape analysis is seeded with the
// critical instance I*(Σ), making the verdict quantify over all databases
// (Marnette's lemma; package critical). It returns an error if some rule
// is not linear or a budget is exceeded.
//
// Deprecated: use DecideLinearContext so the shape search can be canceled.
func DecideLinear(rs *logic.RuleSet, v ChaseVariant, opt Options) (*LinearResult, error) {
	return decideLinearSeeded(context.Background(), rs, v, nil, opt)
}

// DecideLinearContext is DecideLinear honoring a context: the shape
// worklist polls it and a cancellation surfaces as ctx.Err().
func DecideLinearContext(ctx context.Context, rs *logic.RuleSet, v ChaseVariant, opt Options) (*LinearResult, error) {
	return decideLinearSeeded(ctx, rs, v, nil, opt)
}

// DecideLinearOn decides whether the ?-chase of the GIVEN database under
// the linear rule set terminates — the fixed-database variant of the
// problem (an extension beyond the paper, which notes the general-TGD
// version stays undecidable even with the database given; for linear rules
// the same shape abstraction applies, seeded with the database's atom
// shapes instead of the critical instance: the pumping and provenance
// arguments never used criticality of the seed, only its groundness).
//
// Deprecated: use DecideLinearOnContext so the shape search can be canceled.
func DecideLinearOn(rs *logic.RuleSet, db []logic.Atom, v ChaseVariant, opt Options) (*LinearResult, error) {
	return DecideLinearOnContext(context.Background(), rs, db, v, opt)
}

// DecideLinearOnContext is DecideLinearOn honoring a context.
func DecideLinearOnContext(ctx context.Context, rs *logic.RuleSet, db []logic.Atom, v ChaseVariant, opt Options) (*LinearResult, error) {
	for _, a := range db {
		if !a.IsGround() {
			return nil, fmt.Errorf("core: database atom %s is not ground", a)
		}
	}
	if db == nil {
		db = []logic.Atom{}
	}
	return decideLinearSeeded(ctx, rs, v, db, opt)
}

// decideLinearSeeded runs the shape analysis; a nil seed means "critical
// instance".
func decideLinearSeeded(ctx context.Context, rs *logic.RuleSet, v ChaseVariant, seedDB []logic.Atom, opt Options) (*LinearResult, error) {
	opt = opt.withDefaults()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	// Uniform contract: an already-dead context fails even runs whose
	// worklist would be empty (e.g. an empty seed database).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var rules []*linearRule
	for i, r := range rs.Rules {
		if !r.IsLinear() {
			return nil, fmt.Errorf("core: rule %d (%s) is not linear", i, r)
		}
		lr := &linearRule{
			src:      r,
			idx:      i,
			bodyPred: r.Body[0].Pred,
			bodyArgs: r.Body[0].Args,
			frontier: make(map[logic.Variable]bool),
			bodyVars: make(map[logic.Variable]bool),
			exIdx:    make(map[logic.Variable]int),
		}
		for _, x := range r.Frontier() {
			lr.frontier[x] = true
		}
		for _, x := range r.BodyVariables() {
			lr.bodyVars[x] = true
		}
		for j, z := range r.Existentials() {
			lr.exIdx[z] = j
		}
		rules = append(rules, lr)
	}

	shapesByKey := make(map[string]*shape)
	var shapes []*shape
	intern := func(s *shape) (*shape, bool) {
		k := s.key()
		if old, ok := shapesByKey[k]; ok {
			return old, false
		}
		s.id = len(shapes)
		shapesByKey[k] = s
		shapes = append(shapes, s)
		return s, true
	}

	var worklist []*shape
	if seedDB == nil {
		// Seed: shapes of the critical instance — every predicate filled
		// with every tuple over {✶} ∪ consts(Σ).
		consts := []string{"✶"}
		for _, c := range rs.Constants() {
			consts = append(consts, string(c))
		}
		for _, p := range rs.Schema() {
			tuple := make([]int, p.Arity)
			for {
				terms := make([]shapeTerm, p.Arity)
				for i, ci := range tuple {
					terms[i] = shapeTerm{kind: 1, name: consts[ci]}
				}
				s, _ := buildShape(p.Name, terms)
				if s2, isNew := intern(s); isNew {
					worklist = append(worklist, s2)
				}
				i := p.Arity - 1
				for ; i >= 0; i-- {
					tuple[i]++
					if tuple[i] < len(consts) {
						break
					}
					tuple[i] = 0
				}
				if i < 0 {
					break
				}
			}
		}
	} else {
		// Seed: shapes of the given database atoms.
		for _, a := range seedDB {
			terms := make([]shapeTerm, len(a.Args))
			for i, tm := range a.Args {
				terms[i] = shapeTerm{kind: 1, name: tm.(logic.Constant).String()}
			}
			s, _ := buildShape(a.Pred, terms)
			if s2, isNew := intern(s); isNew {
				worklist = append(worklist, s2)
			}
		}
	}

	// Term-flow graph nodes: (shape, null class). Node ids are assigned
	// lazily; edges are added as productions are discovered.
	g := graph.New(0)
	nodeOf := make(map[[2]int]int) // (shapeID, class) -> node
	node := func(sid, class int) int {
		k := [2]int{sid, class}
		if n, ok := nodeOf[k]; ok {
			return n
		}
		n := g.AddNode()
		nodeOf[k] = n
		return n
	}

	// expand computes, for one (shape, rule) pair, the children shapes and
	// graph edges; newly discovered shapes are appended to the worklist.
	expand := func(s *shape, lr *linearRule) error {
		if s.pred != lr.bodyPred {
			return nil
		}
		// Match: equal body terms must be in equal classes; constants must
		// hit classes marked with that constant.
		binding := make(map[logic.Variable]int)
		for i, t := range lr.bodyArgs {
			c := s.class[i]
			switch t := t.(type) {
			case logic.Variable:
				if prev, ok := binding[t]; ok {
					if prev != c {
						return nil
					}
				} else {
					binding[t] = c
				}
			case logic.Constant:
				m := s.marks[c]
				if m.isNull || m.cnst != string(t) {
					return nil
				}
			}
		}
		// Growth sources for special edges.
		var sources []int
		seenSrc := make(map[int]bool)
		for x, c := range binding {
			if !s.marks[c].isNull || seenSrc[c] {
				continue
			}
			if v == VariantSemiOblivious && !lr.frontier[x] {
				continue
			}
			seenSrc[c] = true
			sources = append(sources, c)
		}
		sort.Ints(sources)

		for _, h := range lr.src.Head {
			terms := make([]shapeTerm, len(h.Args))
			for i, t := range h.Args {
				switch t := t.(type) {
				case logic.Variable:
					if lr.frontier[t] {
						pc := binding[t]
						if m := s.marks[pc]; !m.isNull {
							// A frontier variable bound to a constant
							// copies that constant, not a null.
							terms[i] = shapeTerm{kind: 1, name: m.cnst}
						} else {
							terms[i] = shapeTerm{kind: 0, val: pc}
						}
					} else {
						terms[i] = shapeTerm{kind: 2, val: lr.exIdx[t]}
					}
				case logic.Constant:
					terms[i] = shapeTerm{kind: 1, name: string(t)}
				}
			}
			child, origins := buildShape(h.Pred, terms)
			child, isNew := intern(child)
			if isNew {
				if len(shapes) > opt.MaxShapes {
					return fmt.Errorf("core: shape budget exceeded (%d shapes)", len(shapes))
				}
				worklist = append(worklist, child)
			}
			for c2, org := range origins {
				if !child.marks[c2].isNull {
					continue
				}
				switch org.kind {
				case 0: // copied from parent class (null-marked by construction)
					g.AddEdgeDedup(node(s.id, org.val), node(child.id, c2), false)
				case 2: // invented
					for _, c := range sources {
						g.AddEdgeDedup(node(s.id, c), node(child.id, c2), true)
					}
				}
			}
		}
		return nil
	}

	done := ctx.Done()
	for len(worklist) > 0 {
		if err := pollDone(ctx, done); err != nil {
			return nil, err
		}
		s := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		for _, lr := range rules {
			if err := expand(s, lr); err != nil {
				return nil, err
			}
		}
	}

	method := "critical-weak-acyclicity"
	if v == VariantOblivious {
		method = "critical-rich-acyclicity"
	}
	res := &LinearResult{Verdict: &Verdict{
		Answer:     Terminating,
		Variant:    v,
		Method:     method,
		ShapeCount: len(shapes),
	}}
	for _, s := range shapes {
		res.Shapes = append(res.Shapes, s.String())
	}
	if e := g.SpecialCycleEdge(); e != nil {
		res.Verdict.Answer = NonTerminating
		cyc := g.CycleThrough(*e)
		// Render the witness cycle as shapes with the tracked class
		// highlighted.
		rev := make(map[int][2]int, len(nodeOf))
		for k, n := range nodeOf {
			rev[n] = k
		}
		var parts []string
		for _, n := range cyc {
			sc := rev[n]
			parts = append(parts, fmt.Sprintf("%s@c%d", shapes[sc[0]].String(), sc[1]))
		}
		res.Verdict.Witness = "pumpable shape cycle: " + strings.Join(parts, " -> ")
	}
	return res, nil
}
