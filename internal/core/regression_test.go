package core

import (
	"testing"

	"chaseterm/internal/parse"
)

// TestGuardedRecordReturnRegression pins the completeness bug found by the
// randomized Theorem 4 cross-validation: when descendant fired-records were
// returned to the parent, the re-spawned child inherited its own record and
// skipped its own trigger, losing the diverging subtree. The set below
// alternates the two rules forever (p1 values feed σ1, whose p0 atoms feed
// σ0, which creates fresh p1 values).
func TestGuardedRecordReturnRegression(t *testing.T) {
	rs := parse.MustParseRules(`p0(X0,X1) -> p1(Z0), p1(X1).
p1(X0) -> p1(X0), p0(Z0,X0).`)
	res, err := DecideGuarded(rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Answer != NonTerminating {
		t.Errorf("want non-terminating, got %v (types=%d)", res.Verdict.Answer, res.Verdict.NodeTypeCount)
	}
}
