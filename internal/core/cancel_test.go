package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
)

// One representative rule set per dispatch path of Decide.
var cancelSets = map[string]string{
	"simple-linear": `person(X) -> hasFather(X,Y), person(Y).`,
	"linear":        `p(X,X) -> p(X,Y).`,
	"guarded":       `p(X,Y), q(Y) -> r(Y,Z).`,
	// Not weakly acyclic (special cycle p.1 -> s.1 => p.1) and not
	// guarded, so Decide reaches the bounded critical-instance oracle.
	"general": `p(X), q(Y) -> s(X,Y). s(X,Y) -> p(Z), t(X,Z).`,
}

// TestDecideContextPreCanceled: an already-dead context fails every
// dispatch path with the context's error instead of a verdict.
func TestDecideContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, src := range cancelSets {
		rs := parse.MustParseRules(src)
		for _, v := range []ChaseVariant{VariantOblivious, VariantSemiOblivious} {
			if _, err := DecideContext(ctx, rs, v, DecideOptions{}); !errors.Is(err, context.Canceled) {
				t.Errorf("%s/%v: got %v, want context.Canceled", name, v, err)
			}
		}
	}
}

// TestDecideLinearContextCanceled: the shape worklist honors the context.
func TestDecideLinearContextCanceled(t *testing.T) {
	rs := parse.MustParseRules(cancelSets["linear"])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecideLinearContext(ctx, rs, VariantSemiOblivious, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestDecideGuardedContextCanceled: the node-type fixpoint honors the
// context.
func TestDecideGuardedContextCanceled(t *testing.T) {
	rs := parse.MustParseRules(cancelSets["guarded"])
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecideGuardedContext(ctx, rs, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestDecideOnContextPreCanceledEmptyDB: the fixed-database deciders
// honor a dead context even when the seed database is empty and their
// worklist/fixpoint loops would never iterate.
func TestDecideOnContextPreCanceledEmptyDB(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	linear := parse.MustParseRules(cancelSets["linear"])
	if _, err := DecideLinearOnContext(ctx, linear, []logic.Atom{}, VariantSemiOblivious, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("linear empty db: got %v, want context.Canceled", err)
	}
	guarded := parse.MustParseRules(cancelSets["guarded"])
	if _, err := DecideGuardedOnContext(ctx, guarded, []logic.Atom{}, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("guarded empty db: got %v, want context.Canceled", err)
	}
}

// TestDecideGeneralCancelMidOracle cancels the fallback critical-instance
// chase mid-run: the decision must return the context error well before
// the (deliberately huge) oracle budget is consumed.
func TestDecideGeneralCancelMidOracle(t *testing.T) {
	rs := parse.MustParseRules(cancelSets["general"])
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DecideContext(ctx, rs, VariantSemiOblivious, DecideOptions{
		OracleMaxTriggers: 10_000_000,
		OracleMaxFacts:    10_000_000,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestDecideContextBackgroundIdentical: the context plumbing must not
// change any verdict under a background context.
func TestDecideContextBackgroundIdentical(t *testing.T) {
	for name, src := range cancelSets {
		rs := parse.MustParseRules(src)
		plain, err1 := Decide(rs, VariantSemiOblivious, DecideOptions{})
		ctxed, err2 := DecideContext(context.Background(), rs, VariantSemiOblivious, DecideOptions{})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: errors %v / %v", name, err1, err2)
		}
		if plain.Answer != ctxed.Answer || plain.Method != ctxed.Method {
			t.Errorf("%s: Decide gave (%v,%s) but DecideContext gave (%v,%s)",
				name, plain.Answer, plain.Method, ctxed.Answer, ctxed.Method)
		}
	}
}

// TestNegativeBudgetsClamped is the regression test for the withDefaults
// bug: negative search budgets used to slip past the == 0 default check
// and fail every decision instantly with a budget error.
func TestNegativeBudgetsClamped(t *testing.T) {
	linear := parse.MustParseRules(cancelSets["linear"])
	if res, err := DecideLinear(linear, VariantSemiOblivious, Options{MaxShapes: -1}); err != nil {
		t.Errorf("linear with MaxShapes -1: %v, want a verdict", err)
	} else if res.Verdict.ShapeCount == 0 {
		t.Error("linear with MaxShapes -1 explored no shapes")
	}
	guarded := parse.MustParseRules(cancelSets["guarded"])
	if _, err := DecideGuarded(guarded, Options{MaxNodeTypes: -1}); err != nil {
		t.Errorf("guarded with MaxNodeTypes -1: %v, want a verdict", err)
	}
	dopt := DecideOptions{OracleMaxTriggers: -3, OracleMaxFacts: -3}.withDefaults()
	if dopt.OracleMaxTriggers != 200_000 || dopt.OracleMaxFacts != 200_000 {
		t.Errorf("DecideOptions negative oracle budgets not clamped: %+v", dopt)
	}
	oopt := Options{MaxShapes: -9, MaxNodeTypes: -9}.withDefaults()
	if oopt.MaxShapes != DefaultMaxShapes || oopt.MaxNodeTypes != DefaultMaxNodeTypes {
		t.Errorf("Options negative caps not clamped: %+v", oopt)
	}
}
