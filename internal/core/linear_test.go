package core

import (
	"testing"

	"chaseterm/internal/critical"
	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
)

// linearCase is a rule set with known CT^o / CT^so membership.
type linearCase struct {
	name string
	src  string
	o    Answer // expected CT^o answer
	so   Answer // expected CT^so answer
}

// The ground-truth table below is hand-derived; the paper's Example 1 and
// Example 2 appear first. Several cases witness the separations the paper
// is organized around:
//
//   - oSepSo: CT^o ⊊ CT^so (fresh nulls per homomorphism vs per frontier);
//   - waFailsTerm: a non-simple linear set that is NOT weakly acyclic yet
//     terminating — the reason Theorem 2 needs critical-acyclicity.
var linearCases = []linearCase{
	{
		name: "example1-person-hasFather",
		src:  `person(X) -> hasFather(X,Y), person(Y).`,
		o:    NonTerminating,
		so:   NonTerminating,
	},
	{
		name: "example2-p-cycle",
		src:  `p(X,Y) -> p(Y,Z).`,
		o:    NonTerminating,
		so:   NonTerminating,
	},
	{
		name: "oSepSo-dropped-frontier",
		src:  `p(X,Y) -> p(X,Z).`,
		o:    NonTerminating,
		so:   Terminating,
	},
	{
		name: "oSepSo-reversed",
		src:  `p(X,Y) -> p(Z,Y).`,
		o:    NonTerminating,
		so:   Terminating,
	},
	{
		name: "oSepSo-empty-frontier",
		src:  `r(X) -> r(Y).`,
		o:    NonTerminating,
		so:   Terminating,
	},
	{
		name: "waFailsTerm-repeated-body-var",
		src:  `p(X,X) -> p(X,Z).`,
		o:    Terminating,
		so:   Terminating,
	},
	{
		name: "terminating-chain",
		src: `a(X) -> b(X,Y).
b(X,Y) -> c(Y).`,
		o:  Terminating,
		so: Terminating,
	},
	{
		name: "two-rule-cycle",
		src: `p(X,Y) -> q(Y,Z).
q(X,Y) -> p(X,Y).`,
		o:  NonTerminating,
		so: NonTerminating,
	},
	{
		name: "two-rule-cycle-frontier-dropped",
		src: `p(X,Y) -> q(Y,Z).
q(X,Y) -> p(X,X).`,
		// q(Y,Z) invents Z; p(X,X) needs q's two args equal: q(✶,z) never
		// has them equal, so only q(✶,✶) -> p(✶,✶) fires. Terminating for
		// so. For o: the q-rule keeps firing on new q-atoms? q(✶,z1) ->
		// p(✶,✶) (exists, no new atom); p-rule refires only on new
		// p-atoms. No new p-atoms, so terminating for o as well.
		o:  Terminating,
		so: Terminating,
	},
	{
		name: "constant-guarded-flow",
		src: `s(X) -> t(0,X).
t(0,X) -> s(Y).`,
		// t(0,X) matches only atoms with constant 0 in position 1; s(Y)
		// invents Y with empty frontier for so (terminates after one
		// firing); for o each new t-atom refires and each fresh s-null
		// creates a new t-atom: diverges.
		o:  NonTerminating,
		so: Terminating,
	},
	{
		name: "full-rules-only",
		src: `p(X,Y) -> q(Y,X).
q(X,Y) -> p(X,Y).`,
		o:  Terminating,
		so: Terminating,
	},
	{
		name: "self-loop-with-constant",
		src:  `p(X) -> p(Y).`,
		o:    NonTerminating,
		so:   Terminating,
	},
}

func TestDecideLinearKnownCases(t *testing.T) {
	for _, tc := range linearCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rs := parse.MustParseRules(tc.src)
			resO, err := DecideLinear(rs, VariantOblivious, Options{})
			if err != nil {
				t.Fatalf("DecideLinear(o): %v", err)
			}
			if resO.Verdict.Answer != tc.o {
				t.Errorf("CT^o: got %v, want %v (witness: %s)", resO.Verdict.Answer, tc.o, resO.Verdict.Witness)
			}
			resSO, err := DecideLinear(rs, VariantSemiOblivious, Options{})
			if err != nil {
				t.Fatalf("DecideLinear(so): %v", err)
			}
			if resSO.Verdict.Answer != tc.so {
				t.Errorf("CT^so: got %v, want %v (witness: %s)", resSO.Verdict.Answer, tc.so, resSO.Verdict.Witness)
			}
		})
	}
}

// TestDecideLinearContainment checks CT^o ⊆ CT^so on the known cases: an
// oblivious-terminating set is semi-oblivious-terminating.
func TestDecideLinearContainment(t *testing.T) {
	for _, tc := range linearCases {
		if tc.o == Terminating && tc.so != Terminating {
			t.Errorf("%s: ground-truth table violates CT^o ⊆ CT^so", tc.name)
		}
	}
}

// TestDecideLinearAuxTransform checks the o↔so reduction: CT^o(Σ) must
// coincide with CT^so(aux(Σ)) (experiment E12's core claim).
func TestDecideLinearAuxTransform(t *testing.T) {
	for _, tc := range linearCases {
		rs := parse.MustParseRules(tc.src)
		direct, err := DecideLinear(rs, VariantOblivious, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		aux := critical.AuxTransform(rs)
		viaAux, err := DecideLinear(aux, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("%s: aux: %v", tc.name, err)
		}
		if direct.Verdict.Answer != viaAux.Verdict.Answer {
			t.Errorf("%s: direct o-decision %v != so-decision on aux %v",
				tc.name, direct.Verdict.Answer, viaAux.Verdict.Answer)
		}
	}
}

func TestDecideLinearRejectsNonLinear(t *testing.T) {
	rs := parse.MustParseRules(`p(X), q(X) -> r(X).`)
	if _, err := DecideLinear(rs, VariantSemiOblivious, Options{}); err == nil {
		t.Fatal("expected an error for a non-linear rule")
	}
}

func TestDecideGuardedKnownCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		so   Answer
	}{
		{
			// The side-atom gate: aux(✶) exists but aux never holds of
			// invented values, so the recursion stops after two steps even
			// though the Skolem term f nests itself (MFA would be
			// inconclusive here; the cloud decider is exact).
			name: "side-atom-gate",
			src:  `g(X,Y), gate(X) -> g(Y,Z).`,
			so:   Terminating,
		},
		{
			name: "example2-guarded-view",
			src:  `g(X,Y) -> g(Y,Z).`,
			so:   NonTerminating,
		},
		{
			// The gate propagates: gate(Y) re-arms the side atom for the
			// next level, so the recursion never stops.
			name: "side-atom-rearmed",
			src:  `g(X,Y), gate(X) -> g(Y,Z), gate(Y).`,
			so:   NonTerminating,
		},
		{
			name: "guarded-terminating-pyramid",
			src: `e(X,Y) -> v(X), v(Y).
v(X) -> w(X).`,
			so: Terminating,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rs := parse.MustParseRules(tc.src)
			if c := rs.Classify(); c > logic.ClassGuarded {
				t.Fatalf("test case is not guarded: %v", c)
			}
			res, err := DecideGuarded(rs, Options{})
			if err != nil {
				t.Fatalf("DecideGuarded: %v", err)
			}
			if res.Verdict.Answer != tc.so {
				t.Errorf("CT^so: got %v, want %v (witness: %s)", res.Verdict.Answer, tc.so, res.Verdict.Witness)
			}
		})
	}
}

// TestGuardedAgreesWithLinear: on linear inputs both deciders must agree
// (linear ⊆ guarded).
func TestGuardedAgreesWithLinear(t *testing.T) {
	for _, tc := range linearCases {
		rs := parse.MustParseRules(tc.src)
		lin, err := DecideLinear(rs, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		gd, err := DecideGuarded(rs, Options{})
		if err != nil {
			t.Fatalf("%s: guarded: %v", tc.name, err)
		}
		if lin.Verdict.Answer != gd.Verdict.Answer {
			t.Errorf("%s: linear decider says %v, guarded decider says %v",
				tc.name, lin.Verdict.Answer, gd.Verdict.Answer)
		}
	}
}
