package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
	"chaseterm/internal/workload"
)

// TestQuickCanonicalizationInvariance: the guarded decider's node-type
// canonicalization must be invariant under renaming of null slots — the
// property the memoization's soundness rests on. We build random seeds,
// apply a random permutation of the nulls, and require identical canonical
// keys.
func TestQuickCanonicalizationInvariance(t *testing.T) {
	d := &guardedDecider{
		opt:       Options{}.withDefaults(),
		cache:     map[string]*satVal{},
		seeds:     map[string]*gSeed{},
		npred:     3,
		predName:  []string{"p", "q", "r"},
		predArity: []int{2, 1, 3},
		nc:        2, // two "constants": ids 0, 1
		constName: []string{"✶", "0"},
	}
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		nulls := 1 + rng.Intn(5)
		n := d.nc + nulls
		seed := &gSeed{nulls: nulls}
		natoms := 1 + rng.Intn(6)
		for i := 0; i < natoms; i++ {
			p := rng.Intn(d.npred)
			args := make([]int, d.predArity[p])
			for j := range args {
				args[j] = rng.Intn(n)
			}
			seed.atoms = append(seed.atoms, gFact{pred: p, args: args})
		}
		for i := 0; i < rng.Intn(4); i++ {
			tl := rng.Intn(3)
			tuple := make([]int, tl)
			for j := range tuple {
				tuple[j] = rng.Intn(n)
			}
			seed.recs = append(seed.recs, gRec{rule: rng.Intn(2), tuple: tuple})
		}
		key1, _ := d.canonicalize(seed)

		// Random permutation of the null ids.
		perm := make([]int, n)
		for i := 0; i < d.nc; i++ {
			perm[i] = i
		}
		order := rng.Perm(nulls)
		for i := 0; i < nulls; i++ {
			perm[d.nc+i] = d.nc + order[i]
		}
		permuted := sortedSeed(seed, perm, d.nc)
		key2, _ := d.canonicalize(permuted)
		return key1 == key2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecideLinearRenamingInvariance: the linear decider's verdict
// must not depend on variable names or rule order.
func TestQuickDecideLinearRenamingInvariance(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3, RepeatProb: 0.3})
		base, err := DecideLinear(rs, VariantSemiOblivious, Options{})
		if err != nil {
			return false
		}
		// Rename all variables per rule.
		renamed := logic.NewRuleSet()
		for _, r := range rs.Rules {
			ren := make(map[logic.Variable]logic.Variable)
			for i, v := range r.BodyVariables() {
				ren[v] = logic.Variable(string(rune('A' + i%26)))
			}
			for i, v := range r.HeadVariables() {
				if _, ok := ren[v]; !ok {
					ren[v] = logic.Variable("E" + string(rune('0'+i%10)))
				}
			}
			renamed.Rules = append(renamed.Rules, r.Rename(ren))
		}
		// Reverse the rule order too.
		for i, j := 0, len(renamed.Rules)-1; i < j; i, j = i+1, j-1 {
			renamed.Rules[i], renamed.Rules[j] = renamed.Rules[j], renamed.Rules[i]
		}
		got, err := DecideLinear(renamed, VariantSemiOblivious, Options{})
		if err != nil {
			return false
		}
		return got.Verdict.Answer == base.Verdict.Answer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickGuardedIdempotent: deciding twice yields identical verdicts and
// type counts (the global fixpoint is deterministic).
func TestQuickGuardedIdempotent(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		rs := workload.RandomGuarded(rng, workload.Config{NumPreds: 2, MaxArity: 2, NumRules: 2})
		a, err := DecideGuarded(rs, Options{})
		if err != nil {
			return false
		}
		b, err := DecideGuarded(rs, Options{})
		if err != nil {
			return false
		}
		return a.Verdict.Answer == b.Verdict.Answer &&
			a.Verdict.NodeTypeCount == b.Verdict.NodeTypeCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickShapeBudget: the shape cap must be respected with a clean error
// rather than unbounded growth.
func TestShapeBudgetError(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	_, err := DecideLinear(rs, VariantSemiOblivious, Options{MaxShapes: 1})
	if err == nil {
		t.Error("shape budget not enforced")
	}
}

// TestNodeTypeBudgetError: same for the guarded decider.
func TestNodeTypeBudgetError(t *testing.T) {
	rs := parse.MustParseRules(`g(X,Y) -> g(Y,Z).`)
	_, err := DecideGuarded(rs, Options{MaxNodeTypes: 1})
	if err == nil {
		t.Error("node-type budget not enforced")
	}
}
