package core

import (
	"context"
	"fmt"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/chase"
	"chaseterm/internal/critical"
	"chaseterm/internal/logic"
)

// pollDone is the non-blocking cancellation check shared by the
// deciders' fixpoint/worklist loops: it returns ctx.Err() once done is
// closed, nil otherwise. A nil done (context.Background()) is free.
func pollDone(ctx context.Context, done <-chan struct{}) error {
	if done == nil {
		return nil
	}
	select {
	case <-done:
		return ctx.Err()
	default:
		return nil
	}
}

// DecideOptions extends Options with budgets for the bounded-oracle
// fallback used outside the guarded class.
type DecideOptions struct {
	Options
	// OracleMaxTriggers / OracleMaxFacts bound the critical-instance chase
	// used as a semi-decision fallback for general TGDs (defaults 200k).
	OracleMaxTriggers int
	OracleMaxFacts    int
	// OracleWorkers sets the oracle chase's match parallelism
	// (chase.Options.Workers). 0 or 1 runs the sequential engine; any
	// count yields bit-identical verdicts.
	OracleWorkers int
}

func (o DecideOptions) withDefaults() DecideOptions {
	o.Options = o.Options.withDefaults()
	// Clamp non-positive budgets to the defaults: a negative oracle budget
	// would otherwise make the fallback chase stop instantly and report an
	// Unknown (or even Terminated-with-zero-work) verdict.
	if o.OracleMaxTriggers <= 0 {
		o.OracleMaxTriggers = 200_000
	}
	if o.OracleMaxFacts <= 0 {
		o.OracleMaxFacts = 200_000
	}
	return o
}

// Decide is the front door of the termination analysis: it classifies the
// rule set syntactically and dispatches to the strongest procedure
// available.
//
//   - simple-linear and linear sets: DecideLinear — exact (Theorems 1–3);
//   - guarded sets: DecideGuarded — exact (Theorem 4); the oblivious
//     variant is decided on aux(Σ) (package critical), whose semi-oblivious
//     chase applies exactly the oblivious triggers of Σ;
//   - general sets: the problem is undecidable (Gogacz–Marcinkowski), so
//     Decide falls back to sound partial answers: weak/rich acyclicity
//     implies termination, and a critical-instance chase that saturates
//     within budget proves termination (Marnette's lemma makes the critical
//     instance complete for non-termination too, but an infinite run can
//     only be cut off, so the negative direction stays Unknown).
//
// Deprecated: use DecideContext so long analyses can be canceled.
func Decide(rs *logic.RuleSet, v ChaseVariant, opt DecideOptions) (*Verdict, error) {
	return DecideContext(context.Background(), rs, v, opt)
}

// DecideContext is Decide honoring a context. All dispatched procedures
// poll the context at their fixpoint/worklist boundaries, so a canceled
// or expired context surfaces as ctx.Err() well before any search budget
// is exhausted.
func DecideContext(ctx context.Context, rs *logic.RuleSet, v ChaseVariant, opt DecideOptions) (*Verdict, error) {
	opt = opt.withDefaults()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	// Uniform contract: an already-dead context fails every dispatch path,
	// including the ones cheap enough to lack their own polls.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	class := rs.Classify()
	switch class {
	case logic.ClassSimpleLinear:
		// Theorem 1 fast path; the positional graphs ignore constants, so
		// rule sets with constants take the shape decider instead.
		if len(rs.Constants()) == 0 {
			return DecideSimpleLinear(rs, v)
		}
		res, err := DecideLinearContext(ctx, rs, v, opt.Options)
		if err != nil {
			return nil, err
		}
		return res.Verdict, nil
	case logic.ClassLinear:
		res, err := DecideLinearContext(ctx, rs, v, opt.Options)
		if err != nil {
			return nil, err
		}
		return res.Verdict, nil
	case logic.ClassGuarded:
		target := rs
		method := "guarded-forest"
		if v == VariantOblivious {
			target = critical.AuxTransform(rs)
			method = "guarded-forest(aux)"
		}
		res, err := DecideGuardedContext(ctx, target, opt.Options)
		if err != nil {
			return nil, err
		}
		res.Verdict.Variant = v
		res.Verdict.Method = method
		return res.Verdict, nil
	default:
		return decideGeneral(ctx, rs, v, opt)
	}
}

// DecideSimpleLinear decides CT^? for simple-linear rule sets by the
// positional criteria directly: Theorem 1 states CT^so ∩ SL = WA ∩ SL and
// CT^o ∩ SL = RA ∩ SL, so no shape construction is needed — this is the
// literal NL procedure behind Theorem 3(1). It returns an error if some
// rule is not simple-linear (constants in rules are also rejected: the
// positional graphs ignore them, and only the constant-free setting of the
// theorem guarantees exactness — DecideLinear handles constants).
func DecideSimpleLinear(rs *logic.RuleSet, v ChaseVariant) (*Verdict, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	for i, r := range rs.Rules {
		if !r.IsSimpleLinear() {
			return nil, fmt.Errorf("core: rule %d (%s) is not simple-linear", i, r)
		}
	}
	if cs := rs.Constants(); len(cs) > 0 {
		return nil, fmt.Errorf("core: positional SL decision requires constant-free rules (found %v); use DecideLinear", cs)
	}
	var ok bool
	var w *acyclicity.Witness
	var method string
	if v == VariantOblivious {
		ok, w = acyclicity.IsRichlyAcyclic(rs)
		method = "rich-acyclicity(SL)"
	} else {
		ok, w = acyclicity.IsWeaklyAcyclic(rs)
		method = "weak-acyclicity(SL)"
	}
	verdict := &Verdict{Variant: v, Method: method}
	if ok {
		verdict.Answer = Terminating
	} else {
		verdict.Answer = NonTerminating
		verdict.Witness = w.String()
	}
	return verdict, nil
}

// decideGeneral applies the sound fallbacks for unrestricted TGDs.
func decideGeneral(ctx context.Context, rs *logic.RuleSet, v ChaseVariant, opt DecideOptions) (*Verdict, error) {
	// 1. Positional acyclicity: RA ⇒ CT^o, WA ⇒ CT^so. (Polynomial —
	// cheap enough to run without cancellation points.)
	if v == VariantOblivious {
		if ok, _ := acyclicity.IsRichlyAcyclic(rs); ok {
			return &Verdict{Answer: Terminating, Variant: v, Method: "rich-acyclicity"}, nil
		}
	} else {
		if ok, _ := acyclicity.IsWeaklyAcyclic(rs); ok {
			return &Verdict{Answer: Terminating, Variant: v, Method: "weak-acyclicity"}, nil
		}
	}
	// 2. Bounded critical-instance chase: saturation proves termination.
	target := rs
	if v == VariantOblivious {
		target = critical.AuxTransform(rs)
	}
	res, err := critical.OracleContext(ctx, target, chase.SemiOblivious, chase.Options{
		MaxTriggers: opt.OracleMaxTriggers,
		MaxFacts:    opt.OracleMaxFacts,
		Workers:     opt.OracleWorkers,
	})
	if err != nil {
		return nil, err
	}
	if res.Outcome == chase.Terminated {
		return &Verdict{Answer: Terminating, Variant: v, Method: "critical-saturation"}, nil
	}
	// 3. Inconclusive. Report what was observed (a cyclic Skolem term is a
	// strong — though for non-guarded sets not conclusive — sign of
	// divergence).
	witness := fmt.Sprintf("critical chase exceeded budget (%d facts, %d triggers applied, max term depth %d)",
		res.Instance.Size(), res.Stats.TriggersApplied, res.Stats.MaxTermDepth)
	return &Verdict{Answer: Unknown, Variant: v, Method: "bounded-oracle", Witness: witness}, nil
}
