package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"chaseterm/internal/logic"
)

// ---------------------------------------------------------------------------
// DecideGuarded: the CT^? ∩ G decision procedure (Theorem 4).
//
// The paper proves 2EXPTIME-completeness (EXPTIME for bounded arity) with an
// alternating algorithm running in exponential space. We implement the
// deterministic equivalent: a memoized least fixpoint over the *node types*
// of the guarded chase forest of the critical instance I*(Σ).
//
// Structure of the guarded Skolem chase of I*. Every trigger (σ, h) has a
// guard atom containing all body variables, so the whole body image lies
// within terms(h(guard)) ∪ consts. Organize trigger applications into a
// forest: the node of a trigger is attached below the node that created its
// guard atom. A node ν owns
//
//	universe(ν) = consts ∪ inherited nulls (frontier values passed down)
//	              ∪ fresh nulls (Skolem terms invented at ν),
//	cloud(ν)    = every chase atom whose terms lie inside universe(ν),
//	fired(ν)    = every (rule, frontier-tuple) record over universe(ν)
//	              fired at ν or an ancestor.
//
// Two flows make cloud(ν) a mutual fixpoint rather than a top-down
// computation: atoms flow DOWN (a child inherits the parent's atoms over
// the passed-down terms) and UP (a descendant can derive an atom entirely
// over inherited terms — e.g. from a head atom that projects away the fresh
// values — which then belongs to every ancestor universe containing those
// terms). The fixpoint below iterates Sat(·) until both flows stabilize;
// the provenance argument for its correctness is:
//
//	every chase atom β with terms(β) ⊆ universe(ν) ends up in cloud(ν).
//	Proof sketch: let D be the birth node of the deepest term of β; all
//	terms of β lie in universe(D) (terms only travel down tree edges, so
//	anything in a descendant universe passed through D). β is derived in
//	the subtree of D and returns to D hop by hop (each intermediate
//	universe contains terms(β) because the terms travelled through it),
//	then flows down to ν the same way.
//
// fired-records are the semi-oblivious dedup: a trigger is identified by
// (σ, h|frontier); the record is inherited by children as long as its terms
// survive, so the same trigger can never fire twice along one branch. (If a
// term of the tuple is dropped, the tuple can never be re-assembled below:
// fresh Skolem values are new terms.) Records of a child whose terms are
// all inherited are also merged back into the parent, pruning duplicate
// exploration of cousins.
//
// Node types. A node's behaviour — its saturated cloud and the types of the
// children it creates — is a function of (cloud, fired) up to renaming of
// nulls. Types are therefore canonicalized and memoized. The type space is
// finite: a node has at most |consts| + 2·w terms (w the maximum arity —
// all body variables fit in the guard), so clouds and records range over a
// fixed finite universe; the count is doubly exponential in w in general
// and singly exponential for bounded arity — exactly the Theorem 4
// complexity shape.
//
// Decision. Build the "creates child of type" graph over types reachable
// from the root type (universe = consts, cloud = I*, fired = ∅) at the
// global fixpoint:
//
//	Σ ∉ CT^so  ⟺  that graph has a cycle.
//
// (⇐) Unfolding a cycle yields an infinite abstract branch; along a branch
// every fired trigger's identity is new (records are inherited), and the
// node-local null slots map injectively to real terms, so the real chase
// fires infinitely many distinct triggers. (⇒) If the real chase is
// infinite, its forest — finitely branching, since each node's cloud is
// finite — has an infinite branch (König); the branch's node types live in
// a finite space, so some type reaches itself: a cycle. The abstraction
// neither invents atoms (clouds equal the real atom sets over each
// universe) nor loses them (provenance argument above), so abstract and
// real branches correspond.
//
// CT^o is decided on aux(Σ) (package critical): the aux-atom transformation
// turns every body variable into a frontier variable, making semi-oblivious
// trigger identity coincide with oblivious identity, and it preserves
// guardedness. The caller (Decide / the façade) performs the transform; the
// procedure here is the CT^so core.
//
// Imperfect canonicalization is sound: if two isomorphic types receive
// different keys the type space merely grows (it stays finite, since keys
// are drawn from the finite encoding space), so both directions of the
// equivalence above survive; we therefore cap the permutation search used
// for canonical null naming without risking wrong answers.
// ---------------------------------------------------------------------------

const guardedMaxPerm = 5040 // 7! — cap on canonicalization permutations

type gSlot struct {
	isVar bool
	v     int // variable index
	c     int // constant id
}

type gHeadSlot struct {
	kind int // 0 frontier index, 1 existential index, 2 constant id
	idx  int
}

type gPatAtom struct {
	pred  int
	slots []gSlot
}

type gHeadAtom struct {
	pred  int
	slots []gHeadSlot
}

type gRule struct {
	src      *logic.TGD
	idx      int
	body     []gPatAtom
	nvars    int
	frontier []int // variable indexes, frontier order
	nExist   int
	head     []gHeadAtom
}

// gAtomKey encodes an atom over a node universe as a compact string —
// used only on cold canonicalization paths; the hot dedup sets below are
// integer-keyed.
func gAtomKey(pred int, args []int) string {
	b := make([]byte, 0, 2+len(args))
	b = append(b, byte(pred>>8), byte(pred))
	for _, a := range args {
		b = append(b, byte(a))
	}
	return string(b)
}

func gRecKey(rule int, tuple []int) string {
	b := make([]byte, 0, 2+len(tuple))
	b = append(b, byte(rule>>8), byte(rule))
	for _, a := range tuple {
		b = append(b, byte(a))
	}
	return string(b)
}

// intSet is an insert-only open-addressed hash set of (tag, tuple) keys
// over node-universe ids — the guarded decider's counterpart of the
// instance package's TupleSet. Member tuples live in a flat arena and
// probes compare against it directly, so membership tests (the inner-loop
// steady state of the saturation) allocate nothing.
type intSet struct {
	slots []int32 // id+1; 0 = empty
	tags  []int32
	offs  []int32 // len(tags)+1 bounds
	arena []int32
}

// The three hash helpers keep the mixing constants in one place; insert,
// contains and grow all compose them.

func intSetSeed(tag int32, n int) uint64 {
	return 0x9e3779b97f4a7c15 ^ (uint64(uint32(tag)) | uint64(n)<<32)
}

func intSetMix(h uint64, v uint32) uint64 {
	h ^= uint64(v)
	h *= 0x9e3779b185ebca87
	return h
}

func intSetFinish(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func intSetHash(tag int32, tuple []int) uint64 {
	h := intSetSeed(tag, len(tuple))
	for _, t := range tuple {
		h = intSetMix(h, uint32(int32(t)))
	}
	return intSetFinish(h)
}

// intSetHashMem hashes a member tuple already stored in the arena.
func intSetHashMem(tag int32, mem []int32) uint64 {
	h := intSetSeed(tag, len(mem))
	for _, t := range mem {
		h = intSetMix(h, uint32(t))
	}
	return intSetFinish(h)
}

func (s *intSet) match(id int32, tag int32, tuple []int) bool {
	if s.tags[id] != tag {
		return false
	}
	mem := s.arena[s.offs[id]:s.offs[id+1]]
	if len(mem) != len(tuple) {
		return false
	}
	for i, t := range tuple {
		if mem[i] != int32(t) {
			return false
		}
	}
	return true
}

// insert adds (tag, tuple), reporting whether it was newly added.
func (s *intSet) insert(tag int, tuple []int) bool {
	if len(s.slots) == 0 {
		s.grow(32)
		s.offs = append(s.offs, 0)
	} else if len(s.tags)*4 >= len(s.slots)*3 {
		s.grow(len(s.slots) * 2)
	}
	mask := uint64(len(s.slots) - 1)
	i := intSetHash(int32(tag), tuple) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.tags = append(s.tags, int32(tag))
			for _, t := range tuple {
				s.arena = append(s.arena, int32(t))
			}
			s.offs = append(s.offs, int32(len(s.arena)))
			s.slots[i] = int32(len(s.tags))
			return true
		}
		if s.match(v-1, int32(tag), tuple) {
			return false
		}
		i = (i + 1) & mask
	}
}

// contains reports membership of (tag, tuple) without inserting.
func (s *intSet) contains(tag int, tuple []int) bool {
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	i := intSetHash(int32(tag), tuple) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if s.match(v-1, int32(tag), tuple) {
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *intSet) grow(size int) {
	s.slots = make([]int32, size)
	mask := uint64(size - 1)
	for id := range s.tags {
		i := intSetHashMem(s.tags[id], s.arena[s.offs[id]:s.offs[id+1]]) & mask
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = int32(id) + 1
	}
}

// gCloud is a node's atom set with a per-predicate view for matching.
type gCloud struct {
	set    intSet
	byPred [][][]int // pred -> list of arg tuples
}

func newGCloud(npred int) *gCloud {
	return &gCloud{byPred: make([][][]int, npred)}
}

func (c *gCloud) add(pred int, args []int) bool {
	if !c.set.insert(pred, args) {
		return false
	}
	own := make([]int, len(args))
	copy(own, args)
	c.byPred[pred] = append(c.byPred[pred], own)
	return true
}

// gSeed is the creation state of a node type: the number of null slots,
// the atoms, and the inherited fired records, all in local ids
// (0..nc-1 constants, nc.. nulls).
type gSeed struct {
	nulls int
	atoms []gFact // sorted canonical order not required here
	recs  []gRec
}

type gFact struct {
	pred int
	args []int
}

type gRec struct {
	rule  int
	tuple []int
}

// satVal is the memoized saturation of a node type.
type satVal struct {
	cloudSet *intSet // atom set at fixpoint (shared with the cloud that built it)
	cloud    []gFact
	recs     []gRec
	recSet   *intSet
	children []string // canonical keys of child types (latest computation)
}

type guardedDecider struct {
	rules     []*gRule
	npred     int
	predName  []string
	predArity []int
	nc        int // constants: 0..nc-1
	constName []string
	opt       Options
	cache     map[string]*satVal
	seeds     map[string]*gSeed
	rootKey   string
	maxNulls  int
	// ctx/done carry the run's cancellation signal; the fixpoint loops
	// poll done at node-type granularity.
	ctx  context.Context
	done <-chan struct{}
}

// canceled polls the decider's context without blocking.
func (d *guardedDecider) canceled() error { return pollDone(d.ctx, d.done) }

// GuardedResult carries the guarded analysis outcome.
type GuardedResult struct {
	Verdict *Verdict
}

// DecideGuarded decides CT^so membership for a guarded rule set: the node
// forest is rooted at the critical instance, so the verdict quantifies
// over all databases. For CT^o, apply the aux-atom transformation first
// (the Decide front door and the façade do this automatically).
//
// Deprecated: use DecideGuardedContext so the forest search can be canceled.
func DecideGuarded(rs *logic.RuleSet, opt Options) (*GuardedResult, error) {
	return decideGuardedSeeded(context.Background(), rs, nil, opt)
}

// DecideGuardedContext is DecideGuarded honoring a context: the global
// and per-node fixpoint loops poll it, so a cancellation surfaces as
// ctx.Err() long before the node-type budget is reached.
func DecideGuardedContext(ctx context.Context, rs *logic.RuleSet, opt Options) (*GuardedResult, error) {
	return decideGuardedSeeded(ctx, rs, nil, opt)
}

// DecideGuardedOn decides whether the semi-oblivious chase of the GIVEN
// database under the guarded rule set terminates — the fixed-database
// variant. The node-forest machinery never relied on the root being the
// critical instance, only on it being ground, so rooting it at the
// database decides termination for exactly that input (an extension beyond
// the paper's all-instance theorem).
//
// Deprecated: use DecideGuardedOnContext so the forest search can be canceled.
func DecideGuardedOn(rs *logic.RuleSet, db []logic.Atom, opt Options) (*GuardedResult, error) {
	return DecideGuardedOnContext(context.Background(), rs, db, opt)
}

// DecideGuardedOnContext is DecideGuardedOn honoring a context.
func DecideGuardedOnContext(ctx context.Context, rs *logic.RuleSet, db []logic.Atom, opt Options) (*GuardedResult, error) {
	for _, a := range db {
		if !a.IsGround() {
			return nil, fmt.Errorf("core: database atom %s is not ground", a)
		}
	}
	if db == nil {
		db = []logic.Atom{}
	}
	return decideGuardedSeeded(ctx, rs, db, opt)
}

func decideGuardedSeeded(ctx context.Context, rs *logic.RuleSet, db []logic.Atom, opt Options) (*GuardedResult, error) {
	opt = opt.withDefaults()
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	for i, r := range rs.Rules {
		if !r.IsGuarded() {
			return nil, fmt.Errorf("core: rule %d (%s) is not guarded", i, r)
		}
	}
	// Uniform contract: an already-dead context fails the decision up
	// front rather than depending on the fixpoint loop iterating.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := &guardedDecider{
		opt:   opt,
		cache: make(map[string]*satVal),
		seeds: make(map[string]*gSeed),
		ctx:   ctx,
		done:  ctx.Done(),
	}
	if err := d.compile(rs, db); err != nil {
		return nil, err
	}
	if db == nil {
		d.buildCriticalRoot(rs)
	} else {
		d.buildRootFromDB(db)
	}

	// Global fixpoint: recompute the saturation of every registered type
	// until nothing grows. Values are monotone (unions with previous), so
	// the loop terminates within the finite type space.
	for round := 0; ; round++ {
		changed := false
		before := len(d.seeds)
		keys := make([]string, 0, len(d.seeds))
		for k := range d.seeds {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := d.canceled(); err != nil {
				return nil, err
			}
			v, err := d.computeSat(d.seeds[k])
			if err != nil {
				return nil, err
			}
			if d.merge(k, v) {
				changed = true
			}
		}
		if len(d.seeds) > d.opt.MaxNodeTypes {
			return nil, fmt.Errorf("core: guarded node-type budget exceeded (%d types)", len(d.seeds))
		}
		// Newly registered node types have not been saturated yet; another
		// round is required even if every computed value was stable.
		if len(d.seeds) != before {
			changed = true
		}
		if !changed {
			break
		}
	}

	// Reachability + cycle detection over final children edges.
	verdict := &Verdict{Answer: Terminating, Variant: VariantSemiOblivious, Method: "guarded-forest"}
	color := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var stack []string
	var cyc []string
	var dfs func(k string) bool
	dfs = func(k string) bool {
		color[k] = 1
		stack = append(stack, k)
		if v, ok := d.cache[k]; ok {
			for _, ck := range v.children {
				switch color[ck] {
				case 0:
					if dfs(ck) {
						return true
					}
				case 1:
					// cycle: suffix of stack from ck
					for i := len(stack) - 1; i >= 0; i-- {
						cyc = append(cyc, stack[i])
						if stack[i] == ck {
							break
						}
					}
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[k] = 2
		return false
	}
	if dfs(d.rootKey) {
		verdict.Answer = NonTerminating
		var parts []string
		for i := len(cyc) - 1; i >= 0; i-- { // cyc was collected bottom-up
			parts = append(parts, d.renderSeed(d.seeds[cyc[i]]))
			if len(parts) == 3 && len(cyc) > 3 {
				parts = append(parts, fmt.Sprintf("… (%d more)", len(cyc)-3))
				break
			}
		}
		verdict.Witness = fmt.Sprintf("pumpable node-type cycle of length %d in the guarded chase forest: %s",
			len(cyc), strings.Join(parts, " -> "))
	}
	verdict.NodeTypeCount = len(color)
	return &GuardedResult{Verdict: verdict}, nil
}

func (d *guardedDecider) compile(rs *logic.RuleSet, db []logic.Atom) error {
	predID := make(map[string]int)
	addPred := func(name string, arity int) {
		if _, ok := predID[name]; ok {
			return
		}
		predID[name] = len(d.predName)
		d.predName = append(d.predName, name)
		d.predArity = append(d.predArity, arity)
	}
	for _, p := range rs.Schema() {
		addPred(p.Name, p.Arity)
	}
	for _, a := range db {
		addPred(a.Pred, len(a.Args))
	}
	d.npred = len(d.predName)
	constID := make(map[string]int)
	addConst := func(name string) int {
		if id, ok := constID[name]; ok {
			return id
		}
		id := len(d.constName)
		constID[name] = id
		d.constName = append(d.constName, name)
		return id
	}
	if db == nil {
		addConst("✶")
	}
	for _, c := range rs.Constants() {
		addConst(string(c))
	}
	for _, a := range db {
		for _, t := range a.Args {
			addConst(string(t.(logic.Constant)))
		}
	}
	d.nc = len(d.constName)

	for i, r := range rs.Rules {
		gr := &gRule{src: r, idx: i}
		varIdx := make(map[logic.Variable]int)
		vID := func(v logic.Variable) int {
			if id, ok := varIdx[v]; ok {
				return id
			}
			id := gr.nvars
			varIdx[v] = id
			gr.nvars++
			return id
		}
		for _, a := range r.Body {
			pa := gPatAtom{pred: predID[a.Pred]}
			for _, t := range a.Args {
				switch t := t.(type) {
				case logic.Variable:
					pa.slots = append(pa.slots, gSlot{isVar: true, v: vID(t)})
				case logic.Constant:
					pa.slots = append(pa.slots, gSlot{c: addConst(string(t))})
				}
			}
			gr.body = append(gr.body, pa)
		}
		for _, v := range r.Frontier() {
			gr.frontier = append(gr.frontier, varIdx[v])
		}
		ex := r.Existentials()
		gr.nExist = len(ex)
		exIdx := make(map[logic.Variable]int)
		for j, z := range ex {
			exIdx[z] = j
		}
		frIdx := make(map[logic.Variable]int)
		for j, v := range r.Frontier() {
			frIdx[v] = j
		}
		for _, a := range r.Head {
			ha := gHeadAtom{pred: predID[a.Pred]}
			for _, t := range a.Args {
				switch t := t.(type) {
				case logic.Variable:
					if j, ok := frIdx[t]; ok {
						ha.slots = append(ha.slots, gHeadSlot{kind: 0, idx: j})
					} else {
						ha.slots = append(ha.slots, gHeadSlot{kind: 1, idx: exIdx[t]})
					}
				case logic.Constant:
					ha.slots = append(ha.slots, gHeadSlot{kind: 2, idx: addConst(string(t))})
				}
			}
			gr.head = append(gr.head, ha)
		}
		d.rules = append(d.rules, gr)
		if n := len(gr.frontier) + gr.nExist; n > d.maxNulls {
			d.maxNulls = n
		}
	}
	// Universe ids are encoded in single bytes.
	if d.nc+d.maxNulls > 250 {
		return fmt.Errorf("core: universe too large for guarded decider (%d constants + %d nulls)", d.nc, d.maxNulls)
	}
	return nil
}

// buildCriticalRoot roots the forest at the critical instance I*(Σ).
func (d *guardedDecider) buildCriticalRoot(rs *logic.RuleSet) {
	seed := &gSeed{nulls: 0}
	for p := 0; p < d.npred; p++ {
		arity := d.predArity[p]
		tuple := make([]int, arity)
		for {
			args := make([]int, arity)
			copy(args, tuple)
			seed.atoms = append(seed.atoms, gFact{pred: p, args: args})
			i := arity - 1
			for ; i >= 0; i-- {
				tuple[i]++
				if tuple[i] < d.nc {
					break
				}
				tuple[i] = 0
			}
			if i < 0 {
				break
			}
		}
	}
	d.installRoot(seed)
}

// buildRootFromDB roots the forest at the given ground database.
func (d *guardedDecider) buildRootFromDB(db []logic.Atom) {
	seed := &gSeed{nulls: 0}
	predID := make(map[string]int, d.npred)
	for i, n := range d.predName {
		predID[n] = i
	}
	constID := make(map[string]int, d.nc)
	for i, n := range d.constName {
		constID[n] = i
	}
	dedup := make(map[string]bool)
	for _, a := range db {
		args := make([]int, len(a.Args))
		for i, t := range a.Args {
			args[i] = constID[string(t.(logic.Constant))]
		}
		k := gAtomKey(predID[a.Pred], args)
		if !dedup[k] {
			dedup[k] = true
			seed.atoms = append(seed.atoms, gFact{pred: predID[a.Pred], args: args})
		}
	}
	d.installRoot(seed)
}

func (d *guardedDecider) installRoot(seed *gSeed) {
	key, canonSeed := d.canonicalize(seed)
	d.rootKey = key
	d.seeds[key] = canonSeed
}

// merge unions a newly computed saturation into the cache; children are
// replaced by the latest set (stale child keys must not linger: reachability
// uses only current edges). It reports whether anything grew or changed.
func (d *guardedDecider) merge(key string, v *satVal) bool {
	old, ok := d.cache[key]
	if !ok {
		d.cache[key] = v
		return true
	}
	changed := false
	for _, f := range v.cloud {
		if !old.cloudSet.contains(f.pred, f.args) {
			changed = true
			break
		}
	}
	if !changed {
		for _, r := range v.recs {
			if !old.recSet.contains(r.rule, r.tuple) {
				changed = true
				break
			}
		}
	}
	if !changed && len(v.children) == len(old.children) {
		for i := range v.children {
			if v.children[i] != old.children[i] {
				changed = true
				break
			}
		}
	} else if !changed {
		changed = true
	}
	d.cache[key] = v
	return changed
}

// computeSat runs the local saturation of one node type using the current
// cache for child lookups.
//
// Two-level structure: the inner loop fires every applicable trigger (full
// rules extend the cloud directly; existential rules only record the
// trigger and add their invention-free head atoms). When the inner loop
// stabilizes, children are (re)built from the *final* cloud and records —
// so a child's inherited state reflects everything the parent will ever
// know at the current global round — and their cached returns are merged
// back. If the returns grew the cloud, the outer loop repeats, which also
// rebuilds the children with the fuller inherited state.
func (d *guardedDecider) computeSat(seed *gSeed) (*satVal, error) {
	cloud := newGCloud(d.npred)
	for _, f := range seed.atoms {
		cloud.add(f.pred, f.args)
	}
	fired := new(intSet)
	var recs []gRec
	for _, r := range seed.recs {
		if fired.insert(r.rule, r.tuple) {
			recs = append(recs, r)
		}
	}
	var exTriggers []gRec // existential-rule triggers fired at this node
	var children []string

	for {
		// Inner fixpoint: fire triggers.
		for {
			if err := d.canceled(); err != nil {
				return nil, err
			}
			changed := false
			for _, gr := range d.rules {
				gr := gr
				snapshot := make([][][]int, d.npred)
				for p := range snapshot {
					snapshot[p] = cloud.byPred[p]
				}
				binding := make([]int, gr.nvars)
				for i := range binding {
					binding[i] = -1
				}
				var rec func(ai int)
				rec = func(ai int) {
					if ai == len(gr.body) {
						tuple := make([]int, len(gr.frontier))
						for i, v := range gr.frontier {
							tuple[i] = binding[v]
						}
						if !fired.insert(gr.idx, tuple) {
							return
						}
						recs = append(recs, gRec{rule: gr.idx, tuple: tuple})
						changed = true
						if gr.nExist > 0 {
							exTriggers = append(exTriggers, gRec{rule: gr.idx, tuple: tuple})
						}
						// Head atoms without invented values live in this
						// universe regardless of the rule kind.
						for _, ha := range gr.head {
							hasEx := false
							for _, s := range ha.slots {
								if s.kind == 1 {
									hasEx = true
									break
								}
							}
							if hasEx {
								continue
							}
							args := make([]int, len(ha.slots))
							for i, s := range ha.slots {
								switch s.kind {
								case 0:
									args[i] = tuple[s.idx]
								case 2:
									args[i] = s.idx
								}
							}
							cloud.add(ha.pred, args)
						}
						return
					}
					pa := &gr.body[ai]
					for _, cand := range snapshot[pa.pred] {
						var bound []int
						ok := true
						for i, s := range pa.slots {
							t := cand[i]
							if !s.isVar {
								if s.c != t {
									ok = false
									break
								}
								continue
							}
							if b := binding[s.v]; b != -1 {
								if b != t {
									ok = false
									break
								}
								continue
							}
							binding[s.v] = t
							bound = append(bound, s.v)
						}
						if ok {
							rec(ai + 1)
						}
						for _, v := range bound {
							binding[v] = -1
						}
					}
				}
				rec(0)
			}
			if !changed {
				break
			}
		}
		// Spawn/refresh children from the final local state; merge returns.
		children = children[:0]
		childSeen := make(map[string]bool)
		progress := false
		for _, tr := range exTriggers {
			ci, err := d.spawnChild(d.rules[tr.rule], tr.tuple, cloud, recs)
			if err != nil {
				return nil, err
			}
			if !childSeen[ci.key] {
				childSeen[ci.key] = true
				children = append(children, ci.key)
			}
			if d.applyReturns(ci, cloud) {
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	v := &satVal{
		cloudSet: &cloud.set,
		recSet:   fired,
		children: children,
	}
	for p := range cloud.byPred {
		for _, args := range cloud.byPred[p] {
			v.cloud = append(v.cloud, gFact{pred: p, args: args})
		}
	}
	v.recs = recs
	return v, nil
}

// childInfo caches the mapping needed to interpret a child's returns.
type childInfo struct {
	key string
	// backMap maps canonical child ids to parent universe ids; fresh child
	// slots map to -1.
	backMap []int
}

// spawnChild builds the child node type created by firing (rule, tuple),
// registers its seed, and returns the information needed to read back its
// returns.
func (d *guardedDecider) spawnChild(gr *gRule, tuple []int, cloud *gCloud, recs []gRec) (*childInfo, error) {
	// Local child ids: constants unchanged; inherited nulls = null values
	// among the frontier tuple, renumbered in order of first occurrence;
	// fresh slots appended.
	toChild := make(map[int]int) // parent id -> child id (nulls only)
	childNulls := 0
	mapTerm := func(t int) int {
		if t < d.nc {
			return t
		}
		if c, ok := toChild[t]; ok {
			return c
		}
		c := d.nc + childNulls
		childNulls++
		toChild[t] = c
		return c
	}
	childTuple := make([]int, len(tuple))
	for i, t := range tuple {
		childTuple[i] = mapTerm(t)
	}
	inheritedNulls := childNulls
	freshBase := d.nc + childNulls
	childNulls += gr.nExist

	seed := &gSeed{nulls: childNulls}
	var seedSet intSet
	addAtom := func(pred int, args []int) {
		if seedSet.insert(pred, args) {
			seed.atoms = append(seed.atoms, gFact{pred: pred, args: args})
		}
	}
	// New head atoms.
	for _, ha := range gr.head {
		args := make([]int, len(ha.slots))
		for i, s := range ha.slots {
			switch s.kind {
			case 0:
				args[i] = childTuple[s.idx]
			case 1:
				args[i] = freshBase + s.idx
			case 2:
				args[i] = s.idx
			}
		}
		addAtom(ha.pred, args)
	}
	// Inherited atoms: parent-cloud atoms entirely over constants and
	// inherited nulls.
	mappable := func(t int) (int, bool) {
		if t < d.nc {
			return t, true
		}
		c, ok := toChild[t]
		return c, ok
	}
	for p := range cloud.byPred {
		for _, args := range cloud.byPred[p] {
			mapped := make([]int, len(args))
			ok := true
			for i, t := range args {
				m, can := mappable(t)
				if !can {
					ok = false
					break
				}
				mapped[i] = m
			}
			if ok {
				addAtom(p, mapped)
			}
		}
	}
	// Inherited fired records (including the creating trigger's own record,
	// which the caller added to fired/recs before calling us).
	var recSet intSet
	for _, r := range recs {
		mapped := make([]int, len(r.tuple))
		ok := true
		for i, t := range r.tuple {
			m, can := mappable(t)
			if !can {
				ok = false
				break
			}
			mapped[i] = m
		}
		if !ok {
			continue
		}
		if recSet.insert(r.rule, mapped) {
			seed.recs = append(seed.recs, gRec{rule: r.rule, tuple: mapped})
		}
	}
	_ = inheritedNulls

	key, canonSeed, perm := d.canonicalizeWithPerm(seed)
	if _, ok := d.seeds[key]; !ok {
		d.seeds[key] = canonSeed
		if len(d.seeds) > d.opt.MaxNodeTypes {
			return nil, fmt.Errorf("core: guarded node-type budget exceeded (%d types)", len(d.seeds))
		}
	}

	// backMap: canonical child id -> parent id (constants identity;
	// inherited nulls via toChild inverse; fresh -> -1).
	fromChild := make([]int, d.nc+childNulls)
	for i := 0; i < d.nc; i++ {
		fromChild[i] = i
	}
	for i := d.nc; i < len(fromChild); i++ {
		fromChild[i] = -1
	}
	for parent, child := range toChild {
		fromChild[child] = parent
	}
	// perm maps local child ids -> canonical ids; invert it over nulls.
	backMap := make([]int, d.nc+childNulls)
	for i := 0; i < d.nc; i++ {
		backMap[i] = i
	}
	for i := d.nc; i < d.nc+childNulls; i++ {
		backMap[perm[i]] = fromChild[i]
	}
	return &childInfo{key: key, backMap: backMap}, nil
}

// applyReturns copies the child's saturated atoms that are entirely over
// inherited terms back into the parent's cloud. It reports whether anything
// was new.
//
// Fired records deliberately do NOT flow upward. The record set of a node
// must be exactly "fired at this node or an ancestor": that is what makes
// a repeated node type on a branch a sound witness of infinitely many
// distinct triggers. Returning a descendant's record to the parent would
// be re-inherited by the re-spawned child, which would then skip its own
// trigger and silently lose the subtree below it (a completeness bug found
// by the randomized Theorem 4 cross-validation). The only cost of not
// returning records is that a trigger whose body image lies entirely
// within two incomparable universes may be explored twice — harmless for
// termination detection, since both copies unfold isomorphically.
func (d *guardedDecider) applyReturns(ci *childInfo, cloud *gCloud) bool {
	v, ok := d.cache[ci.key]
	if !ok {
		return false
	}
	progress := false
	for _, f := range v.cloud {
		args := make([]int, len(f.args))
		ok := true
		for i, t := range f.args {
			if t >= len(ci.backMap) || ci.backMap[t] == -1 {
				ok = false
				break
			}
			args[i] = ci.backMap[t]
		}
		if ok && cloud.add(f.pred, args) {
			progress = true
		}
	}
	return progress
}

// canonicalize renames the null slots of a seed to a canonical order and
// returns the canonical key and renamed seed.
func (d *guardedDecider) canonicalize(seed *gSeed) (string, *gSeed) {
	k, s, _ := d.canonicalizeWithPerm(seed)
	return k, s
}

// canonicalizeWithPerm additionally returns the applied permutation as a
// full id map (identity on constants).
func (d *guardedDecider) canonicalizeWithPerm(seed *gSeed) (string, *gSeed, []int) {
	n := d.nc + seed.nulls
	if seed.nulls == 0 {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		s := sortedSeed(seed, perm, d.nc)
		return encodeSeed(s), s, perm
	}
	// Signature per null: sorted multiset of occurrence descriptors.
	sig := make([]string, n)
	var sb strings.Builder
	for _, f := range seed.atoms {
		for pos, t := range f.args {
			if t >= d.nc {
				sb.Reset()
				fmt.Fprintf(&sb, "a%d.%d;", f.pred, pos)
				sig[t] += sb.String()
			}
		}
	}
	for _, r := range seed.recs {
		for pos, t := range r.tuple {
			if t >= d.nc {
				sb.Reset()
				fmt.Fprintf(&sb, "r%d.%d;", r.rule, pos)
				sig[t] += sb.String()
			}
		}
	}
	// Normalize signatures (sort descriptor lists).
	for t := d.nc; t < n; t++ {
		parts := strings.Split(sig[t], ";")
		sort.Strings(parts)
		sig[t] = strings.Join(parts, ";")
	}
	nulls := make([]int, seed.nulls)
	for i := range nulls {
		nulls[i] = d.nc + i
	}
	sort.SliceStable(nulls, func(a, b int) bool { return sig[nulls[a]] < sig[nulls[b]] })
	// Group boundaries of equal signatures.
	var groups [][]int
	for i := 0; i < len(nulls); {
		j := i
		for j < len(nulls) && sig[nulls[j]] == sig[nulls[i]] {
			j++
		}
		groups = append(groups, nulls[i:j])
		i = j
	}
	permCount := 1
	for _, gp := range groups {
		for f := 2; f <= len(gp); f++ {
			permCount *= f
		}
	}
	basePerm := func(order []int) []int {
		perm := make([]int, n)
		for i := 0; i < d.nc; i++ {
			perm[i] = i
		}
		for rank, t := range order {
			perm[t] = d.nc + rank
		}
		return perm
	}
	if permCount > guardedMaxPerm {
		perm := basePerm(nulls)
		s := sortedSeed(seed, perm, d.nc)
		return encodeSeed(s), s, perm
	}
	bestKey := ""
	var bestSeed *gSeed
	var bestPerm []int
	var rec func(gi int, order []int)
	rec = func(gi int, order []int) {
		if gi == len(groups) {
			perm := basePerm(order)
			s := sortedSeed(seed, perm, d.nc)
			k := encodeSeed(s)
			if bestKey == "" || k < bestKey {
				bestKey, bestSeed, bestPerm = k, s, perm
			}
			return
		}
		permuteAll(groups[gi], func(g []int) {
			rec(gi+1, append(order, g...))
		})
	}
	rec(0, nil)
	return bestKey, bestSeed, bestPerm
}

// permuteAll calls yield with every permutation of xs (xs is reused; yield
// must not retain it).
func permuteAll(xs []int, yield func([]int)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(xs) {
			yield(xs)
			return
		}
		for i := k; i < len(xs); i++ {
			xs[k], xs[i] = xs[i], xs[k]
			rec(k + 1)
			xs[k], xs[i] = xs[i], xs[k]
		}
	}
	rec(0)
}

// sortedSeed applies a permutation and sorts atoms and records.
func sortedSeed(seed *gSeed, perm []int, nc int) *gSeed {
	s := &gSeed{nulls: seed.nulls}
	for _, f := range seed.atoms {
		args := make([]int, len(f.args))
		for i, t := range f.args {
			args[i] = perm[t]
		}
		s.atoms = append(s.atoms, gFact{pred: f.pred, args: args})
	}
	for _, r := range seed.recs {
		tuple := make([]int, len(r.tuple))
		for i, t := range r.tuple {
			tuple[i] = perm[t]
		}
		s.recs = append(s.recs, gRec{rule: r.rule, tuple: tuple})
	}
	sort.Slice(s.atoms, func(a, b int) bool {
		return gAtomKey(s.atoms[a].pred, s.atoms[a].args) < gAtomKey(s.atoms[b].pred, s.atoms[b].args)
	})
	sort.Slice(s.recs, func(a, b int) bool {
		return gRecKey(s.recs[a].rule, s.recs[a].tuple) < gRecKey(s.recs[b].rule, s.recs[b].tuple)
	})
	return s
}

// renderSeed renders a node type's atoms for witnesses: constants by name,
// null slots as n0, n1, …. Inherited fired records are omitted (they gate
// behaviour but rarely aid a human reader); the atom set identifies the
// type well enough to follow the pump.
func (d *guardedDecider) renderSeed(seed *gSeed) string {
	if seed == nil {
		return "?"
	}
	term := func(t int) string {
		if t < d.nc {
			return d.constName[t]
		}
		return fmt.Sprintf("n%d", t-d.nc)
	}
	parts := make([]string, 0, len(seed.atoms))
	for _, f := range seed.atoms {
		args := make([]string, len(f.args))
		for i, a := range f.args {
			args[i] = term(a)
		}
		if len(args) == 0 {
			parts = append(parts, d.predName[f.pred])
		} else {
			parts = append(parts, d.predName[f.pred]+"("+strings.Join(args, ",")+")")
		}
	}
	out := "{" + strings.Join(parts, " ") + "}"
	if len(out) > 120 {
		out = out[:117] + "…}"
	}
	return out
}

func encodeSeed(s *gSeed) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d|", s.nulls)
	for _, f := range s.atoms {
		b.WriteString(gAtomKey(f.pred, f.args))
		b.WriteByte('\x01')
	}
	b.WriteByte('\x02')
	for _, r := range s.recs {
		b.WriteString(gRecKey(r.rule, r.tuple))
		b.WriteByte('\x01')
	}
	return b.String()
}
