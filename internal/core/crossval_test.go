package core

import (
	"math/rand"
	"testing"

	"chaseterm/internal/acyclicity"
	"chaseterm/internal/chase"
	"chaseterm/internal/critical"
	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
	"chaseterm/internal/workload"
)

// oracleBudget is the bounded-chase budget used for empirical ground
// truth. The random workloads are tiny (≤ 4 rules, arity ≤ 3), so every
// terminating critical chase saturates far below it; a budget hit is
// treated as empirical non-termination.
var oracleBudget = chase.Options{MaxTriggers: 8_000, MaxFacts: 8_000}

// empirical returns the bounded-oracle answer for the given variant.
func empirical(t *testing.T, rs *logic.RuleSet, v chase.Variant) Answer {
	t.Helper()
	res, err := critical.Oracle(rs, v, oracleBudget)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if res.Outcome == chase.Terminated {
		return Terminating
	}
	return NonTerminating
}

// TestTheorem1SL reproduces Theorem 1 on random constant-free simple-linear
// sets: CT^so ∩ SL = WA ∩ SL and CT^o ∩ SL = RA ∩ SL, with the bounded
// chase oracle as the third, independent arbiter.
func TestTheorem1SL(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		rs := workload.RandomSL(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		if rs.Classify() > logic.ClassSimpleLinear {
			t.Fatalf("case %d: generator produced non-SL set:\n%s", i, rs)
		}
		wa, _ := acyclicity.IsWeaklyAcyclic(rs)
		ra, _ := acyclicity.IsRichlyAcyclic(rs)

		so, err := DecideLinear(rs, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		o, err := DecideLinear(rs, VariantOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if (so.Verdict.Answer == Terminating) != wa {
			t.Errorf("case %d: WA=%v but critical-WA says %v:\n%s", i, wa, so.Verdict.Answer, rs)
		}
		if (o.Verdict.Answer == Terminating) != ra {
			t.Errorf("case %d: RA=%v but critical-RA says %v:\n%s", i, ra, o.Verdict.Answer, rs)
		}
		if got := empirical(t, rs, chase.SemiOblivious); got != so.Verdict.Answer {
			t.Errorf("case %d: so-oracle=%v decider=%v:\n%s", i, got, so.Verdict.Answer, rs)
		}
		if got := empirical(t, rs, chase.Oblivious); got != o.Verdict.Answer {
			t.Errorf("case %d: o-oracle=%v decider=%v:\n%s", i, got, o.Verdict.Answer, rs)
		}
	}
}

// TestTheorem2Linear reproduces Theorem 2 on random linear sets with
// repeated body variables (mostly outside SL), where plain WA/RA are no
// longer exact: the critical deciders must match the bounded oracle, and
// WA/RA must stay sound (acyclic ⇒ terminating) though incomplete.
func TestTheorem2Linear(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(2))
	waIncomplete, raIncomplete := 0, 0
	for i := 0; i < 400; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 3, NumRules: 3, RepeatProb: 0.5})
		so, err := DecideLinear(rs, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		o, err := DecideLinear(rs, VariantOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := empirical(t, rs, chase.SemiOblivious); got != so.Verdict.Answer {
			t.Errorf("case %d: so-oracle=%v decider=%v:\n%s", i, got, so.Verdict.Answer, rs)
		}
		if got := empirical(t, rs, chase.Oblivious); got != o.Verdict.Answer {
			t.Errorf("case %d: o-oracle=%v decider=%v:\n%s", i, got, o.Verdict.Answer, rs)
		}
		// Soundness of the positional criteria.
		if wa, _ := acyclicity.IsWeaklyAcyclic(rs); wa && so.Verdict.Answer != Terminating {
			t.Errorf("case %d: WA holds but set diverges:\n%s", i, rs)
		} else if !wa && so.Verdict.Answer == Terminating {
			waIncomplete++
		}
		if ra, _ := acyclicity.IsRichlyAcyclic(rs); ra && o.Verdict.Answer != Terminating {
			t.Errorf("case %d: RA holds but set diverges:\n%s", i, rs)
		} else if !ra && o.Verdict.Answer == Terminating {
			raIncomplete++
		}
	}
	// The generator must actually produce witnesses of WA/RA incompleteness
	// (otherwise this test exercises nothing beyond Theorem 1).
	if waIncomplete == 0 || raIncomplete == 0 {
		t.Errorf("no incompleteness witnesses generated (wa=%d ra=%d): weaken the workload", waIncomplete, raIncomplete)
	}
}

// TestTheorem4Guarded reproduces the decidability core of Theorem 4 on
// random guarded sets: the cloud decider must agree with the bounded
// oracle for both variants (the oblivious one via the aux transformation).
func TestTheorem4Guarded(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 250; i++ {
		rs := workload.RandomGuarded(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3, MaxSideAtoms: 2})
		if rs.Classify() > logic.ClassGuarded {
			t.Fatalf("case %d: generator produced non-guarded set:\n%s", i, rs)
		}
		so, err := DecideGuarded(rs, Options{})
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, rs)
		}
		if got := empirical(t, rs, chase.SemiOblivious); got != so.Verdict.Answer {
			t.Errorf("case %d: so-oracle=%v decider=%v:\n%s", i, got, so.Verdict.Answer, rs)
		}
		o, err := DecideGuarded(critical.AuxTransform(rs), Options{})
		if err != nil {
			t.Fatalf("case %d (aux): %v\n%s", i, err, rs)
		}
		if got := empirical(t, rs, chase.Oblivious); got != o.Verdict.Answer {
			t.Errorf("case %d: o-oracle=%v decider=%v:\n%s", i, got, o.Verdict.Answer, rs)
		}
		// Containment CT^o ⊆ CT^so.
		if o.Verdict.Answer == Terminating && so.Verdict.Answer != Terminating {
			t.Errorf("case %d: violates CT^o ⊆ CT^so:\n%s", i, rs)
		}
	}
}

// TestTheorem4GuardedArity3 stresses the guarded decider with arity-3
// guards and larger heads — more null slots per node, exercising the
// multi-group canonicalization and deeper clouds.
func TestTheorem4GuardedArity3(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		rs := workload.RandomGuarded(rng, workload.Config{
			NumPreds: 3, MaxArity: 3, NumRules: 2, MaxSideAtoms: 2, MaxHeadAtoms: 2,
		})
		so, err := DecideGuarded(rs, Options{})
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, rs)
		}
		if got := empirical(t, rs, chase.SemiOblivious); got != so.Verdict.Answer {
			t.Errorf("case %d: so-oracle=%v decider=%v:\n%s", i, got, so.Verdict.Answer, rs)
		}
	}
}

// TestConstantsCrossval validates the deciders on rule sets containing the
// constants 0/1 (the paper's "standard database" ingredients): the critical
// instance then ranges over {✶,0,1} and the shape/cloud machinery must
// track constant marks exactly.
func TestConstantsCrossval(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 150; i++ {
		lin := workload.RandomLinear(rng, workload.Config{
			NumPreds: 3, MaxArity: 2, NumRules: 3, RepeatProb: 0.3, ConstProb: 0.3,
		})
		dec, err := DecideLinear(lin, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := empirical(t, lin, chase.SemiOblivious); got != dec.Verdict.Answer {
			t.Errorf("case %d (linear): oracle=%v decider=%v:\n%s", i, got, dec.Verdict.Answer, lin)
		}
	}
	for i := 0; i < 80; i++ {
		g := workload.RandomGuarded(rng, workload.Config{
			NumPreds: 2, MaxArity: 2, NumRules: 2, MaxSideAtoms: 1, ConstProb: 0.3,
		})
		dec, err := DecideGuarded(g, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := empirical(t, g, chase.SemiOblivious); got != dec.Verdict.Answer {
			t.Errorf("case %d (guarded): oracle=%v decider=%v:\n%s", i, got, dec.Verdict.Answer, g)
		}
	}
}

// TestGuardedAgreesWithLinearRandom: on random linear sets the guarded and
// linear deciders are both exact, hence must agree.
func TestGuardedAgreesWithLinearRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 2, MaxArity: 2, NumRules: 2, RepeatProb: 0.4})
		lin, err := DecideLinear(rs, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		gd, err := DecideGuarded(rs, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if lin.Verdict.Answer != gd.Verdict.Answer {
			t.Errorf("case %d: linear=%v guarded=%v:\n%s", i, lin.Verdict.Answer, gd.Verdict.Answer, rs)
		}
	}
}

// TestAuxEquivalenceLinearRandom is experiment E12 at test scale: the
// direct critical-RA decision equals the critical-WA decision of aux(Σ).
func TestAuxEquivalenceLinearRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3, RepeatProb: 0.3})
		direct, err := DecideLinear(rs, VariantOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		viaAux, err := DecideLinear(critical.AuxTransform(rs), VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if direct.Verdict.Answer != viaAux.Verdict.Answer {
			t.Errorf("case %d: direct=%v aux=%v:\n%s", i, direct.Verdict.Answer, viaAux.Verdict.Answer, rs)
		}
	}
}

// TestCTContainmentRandom: CT^o ⊆ CT^so on random linear sets (the paper
// recalls CT^o = CT^o_∀ = CT^o_∃ ⊆ CT^so).
func TestCTContainmentRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		o, err := DecideLinear(rs, VariantOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		so, err := DecideLinear(rs, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if o.Verdict.Answer == Terminating && so.Verdict.Answer != Terminating {
			t.Errorf("case %d: CT^o ⊆ CT^so violated:\n%s", i, rs)
		}
	}
}

// TestDecideDispatch exercises the front door across classes.
func TestDecideDispatch(t *testing.T) {
	cases := []struct {
		name   string
		rs     *logic.RuleSet
		want   Answer
		method string
	}{
		{"sl", workload.Example2(), NonTerminating, "weak-acyclicity(SL)"},
		{"ontology", workload.OntologySL(), Terminating, "weak-acyclicity(SL)"},
		{"data-exchange-is-sl", workload.DataExchange(), Terminating, "weak-acyclicity(SL)"},
		{"guarded", mustRules(t, `g(X,Y), gate(X) -> g(Y,Z).`), Terminating, "guarded-forest"},
		// Non-guarded (no body atom holds X, Y and Z), weakly acyclic.
		{"general-wa", mustRules(t, `e(X,Y), f(Y,Z) -> m(X,W).`), Terminating, "weak-acyclicity"},
		// Non-guarded and NOT weakly acyclic (special self-loop f[2]⇒f[2]),
		// yet the critical chase saturates: the e-side atom requires Y to
		// be a constant, cutting the recursion after two levels.
		{"general-saturating", mustRules(t, `e(X,Y), f(Y,Z) -> f(Z,W).`), Terminating, "critical-saturation"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := Decide(tc.rs, VariantSemiOblivious, DecideOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if v.Answer != tc.want {
				t.Errorf("answer: %v, want %v", v.Answer, tc.want)
			}
			if v.Method != tc.method {
				t.Errorf("method: %s, want %s", v.Method, tc.method)
			}
		})
	}
}

// TestDecideGeneralUnknown: a genuinely diverging non-guarded set must come
// back Unknown (the problem is undecidable; the fallback cannot prove
// divergence).
func TestDecideGeneralUnknown(t *testing.T) {
	// Non-guarded (three body variables, binary atoms) and diverging: each
	// round re-seeds both body predicates with fresh values.
	rs := mustRules(t, `e(X,Y), f(Y,Z) -> e(Z,W), f(W,V).`)
	v, err := Decide(rs, VariantSemiOblivious, DecideOptions{
		OracleMaxTriggers: 2000, OracleMaxFacts: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer != Unknown {
		t.Errorf("answer: %v, want Unknown", v.Answer)
	}
	if v.Witness == "" {
		t.Error("expected a diagnostic witness")
	}
}

// TestDecideObliviousDispatch: the o-variant takes the aux route for
// guarded sets.
func TestDecideObliviousDispatch(t *testing.T) {
	rs := mustRules(t, `g(X,Y), gate(X) -> g(Y,Z).`)
	v, err := Decide(rs, VariantOblivious, DecideOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != "guarded-forest(aux)" {
		t.Errorf("method: %s", v.Method)
	}
	// Oblivious: the gate's guard matches g(✶,f(✶)) with a NEW full
	// homomorphism each level? No — the gate still blocks at depth 2, and
	// oblivious triggers need new homomorphisms, which need new atoms over
	// gate-satisfying values. Expect termination.
	if v.Answer != Terminating {
		t.Errorf("answer: %v (witness %s)", v.Answer, v.Witness)
	}
	if got := empiricalT(t, rs, chase.Oblivious); got != v.Answer {
		t.Errorf("oracle disagrees: %v vs %v", got, v.Answer)
	}
}

func mustRules(t *testing.T, src string) *logic.RuleSet {
	t.Helper()
	rs, err := parse.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func empiricalT(t *testing.T, rs *logic.RuleSet, v chase.Variant) Answer {
	return empirical(t, rs, v)
}
