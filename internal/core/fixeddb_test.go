package core

import (
	"math/rand"
	"testing"

	"chaseterm/internal/chase"
	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
	"chaseterm/internal/workload"
)

// TestFixedDBKnownCases: termination on a specific database can differ
// from all-instance termination — the database may not feed the dangerous
// cycle.
func TestFixedDBKnownCases(t *testing.T) {
	cases := []struct {
		name  string
		rules string
		db    string
		want  Answer // CT^so on this database
	}{
		{
			// Example 2 diverges on p(a,b) (the paper's own computation)…
			name:  "example2-feeds",
			rules: `p(X,Y) -> p(Y,Z).`,
			db:    `p(a,b).`,
			want:  NonTerminating,
		},
		{
			// …and diverges on any p-fact, but an EMPTY p relation is
			// inert: a database without p-atoms never triggers the rule.
			name:  "example2-starved",
			rules: `p(X,Y) -> p(Y,Z).`,
			db:    `q(a).`,
			want:  Terminating,
		},
		{
			// The gate example: with the gate armed on a cycle of g-atoms
			// the recursion re-feeds itself? No: gate(a) only, invented
			// values never gated — still terminating.
			name:  "gate-armed",
			rules: `g(X,Y), gate(X) -> g(Y,Z).`,
			db:    `g(a,a). gate(a).`,
			want:  Terminating,
		},
		{
			// With the re-arming head the same database diverges.
			name:  "gate-rearmed",
			rules: `g(X,Y), gate(X) -> g(Y,Z), gate(Y).`,
			db:    `g(a,a). gate(a).`,
			want:  NonTerminating,
		},
		{
			// But the re-arming rules on an unarmed database terminate.
			name:  "gate-rearmed-unarmed",
			rules: `g(X,Y), gate(X) -> g(Y,Z), gate(Y).`,
			db:    `g(a,a).`,
			want:  Terminating,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rs := parse.MustParseRules(tc.rules)
			db := parse.MustParseFacts(tc.db)
			var got Answer
			if rs.Classify() <= logic.ClassLinear {
				res, err := DecideLinearOn(rs, db, VariantSemiOblivious, Options{})
				if err != nil {
					t.Fatal(err)
				}
				got = res.Verdict.Answer
			} else {
				res, err := DecideGuardedOn(rs, db, Options{})
				if err != nil {
					t.Fatal(err)
				}
				got = res.Verdict.Answer
			}
			if got != tc.want {
				t.Errorf("got %v, want %v", got, tc.want)
			}
			// Empirical corroboration on the actual database.
			run, err := chase.RunFromAtoms(db, rs, chase.SemiOblivious,
				chase.Options{MaxTriggers: 5000, MaxFacts: 5000})
			if err != nil {
				t.Fatal(err)
			}
			emp := Terminating
			if run.Outcome != chase.Terminated {
				emp = NonTerminating
			}
			if emp != tc.want {
				t.Errorf("oracle says %v", emp)
			}
		})
	}
}

// TestFixedDBRandomLinear cross-validates DecideLinearOn against direct
// chase runs on random databases.
func TestFixedDBRandomLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 250; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3, RepeatProb: 0.4})
		db := workload.RandomABox(rng, rs, 4, 2)
		dec, err := DecideLinearOn(rs, db, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		run, err := chase.RunFromAtoms(db, rs, chase.SemiOblivious,
			chase.Options{MaxTriggers: 8000, MaxFacts: 8000})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		emp := Terminating
		if run.Outcome != chase.Terminated {
			emp = NonTerminating
		}
		if emp != dec.Verdict.Answer {
			t.Errorf("case %d: decider=%v oracle=%v\nrules:\n%sdb: %v",
				i, dec.Verdict.Answer, emp, rs, db)
		}
	}
}

// TestFixedDBRandomGuarded cross-validates DecideGuardedOn.
func TestFixedDBRandomGuarded(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized cross-validation")
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 120; i++ {
		rs := workload.RandomGuarded(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 2, MaxSideAtoms: 1})
		db := workload.RandomABox(rng, rs, 3, 2)
		dec, err := DecideGuardedOn(rs, db, Options{})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		run, err := chase.RunFromAtoms(db, rs, chase.SemiOblivious,
			chase.Options{MaxTriggers: 8000, MaxFacts: 8000})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		emp := Terminating
		if run.Outcome != chase.Terminated {
			emp = NonTerminating
		}
		if emp != dec.Verdict.Answer {
			t.Errorf("case %d: decider=%v oracle=%v\nrules:\n%sdb: %v",
				i, dec.Verdict.Answer, emp, rs, db)
		}
	}
}

// TestFixedDBImpliedByAllInstance: all-instance termination implies
// termination on every specific database.
func TestFixedDBImpliedByAllInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 120; i++ {
		rs := workload.RandomLinear(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		all, err := DecideLinear(rs, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if all.Verdict.Answer != Terminating {
			continue
		}
		db := workload.RandomABox(rng, rs, 5, 3)
		fixed, err := DecideLinearOn(rs, db, VariantSemiOblivious, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fixed.Verdict.Answer != Terminating {
			t.Errorf("case %d: CT^so holds but fixed-db says %v", i, fixed.Verdict.Answer)
		}
	}
}

func TestFixedDBRejectsNonGround(t *testing.T) {
	rs := parse.MustParseRules(`p(X) -> q(X).`)
	bad := []logic.Atom{logic.NewAtom("p", logic.Variable("X"))}
	if _, err := DecideLinearOn(rs, bad, VariantSemiOblivious, Options{}); err == nil {
		t.Error("non-ground database accepted by DecideLinearOn")
	}
	if _, err := DecideGuardedOn(rs, bad, Options{}); err == nil {
		t.Error("non-ground database accepted by DecideGuardedOn")
	}
}
