package core

import (
	"strings"
	"testing"

	"chaseterm/internal/parse"
)

// TestShapesEnumeration: the reachable-shape listing for Example 2 —
// p(✶,✶), then p(✶,n1) (invented second argument), then p(n1,n2).
func TestShapesEnumeration(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	res, err := DecideLinear(rs, VariantSemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"p(✶,✶)":   true,
		"p(✶,n1)":  true,
		"p(n1,n2)": true,
	}
	if len(res.Shapes) != len(want) {
		t.Fatalf("shapes: %v", res.Shapes)
	}
	for _, s := range res.Shapes {
		if !want[s] {
			t.Errorf("unexpected shape %s", s)
		}
	}
	if res.Verdict.ShapeCount != 3 {
		t.Errorf("ShapeCount: %d", res.Verdict.ShapeCount)
	}
}

// TestShapesWithEqualities: the repeated-variable body only matches shapes
// with equal classes, so p(X,X) -> p(X,Z) reaches exactly two shapes.
func TestShapesWithEqualities(t *testing.T) {
	rs := parse.MustParseRules(`p(X,X) -> p(X,Z).`)
	res, err := DecideLinear(rs, VariantSemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shapes) != 2 {
		t.Fatalf("shapes: %v", res.Shapes)
	}
}

// TestShapesWithConstants: constants appear as marked classes and split
// the seed shapes.
func TestShapesWithConstants(t *testing.T) {
	rs := parse.MustParseRules(`p(X,0) -> q(X).`)
	res, err := DecideLinear(rs, VariantSemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Seeds: p over {✶,0}² = 4 shapes, q over {✶,0} = 2 shapes; no new
	// shapes (head reuses frontier terms only).
	if len(res.Shapes) != 6 {
		t.Fatalf("shapes (%d): %v", len(res.Shapes), res.Shapes)
	}
	joined := strings.Join(res.Shapes, " ")
	if !strings.Contains(joined, "p(0,0)") || !strings.Contains(joined, "p(✶,0)") {
		t.Errorf("missing constant seed shapes: %v", res.Shapes)
	}
}

// TestWitnessMentionsShapes: non-termination witnesses carry the pumpable
// cycle in shape notation.
func TestWitnessMentionsShapes(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	res, err := DecideLinear(rs, VariantSemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Verdict.Witness
	if !strings.Contains(w, "pumpable shape cycle") || !strings.Contains(w, "p(n1,n2)") {
		t.Errorf("witness: %s", w)
	}
}

// TestGuardedWitnessMentionsTypes: guarded witnesses render node types.
func TestGuardedWitnessMentionsTypes(t *testing.T) {
	rs := parse.MustParseRules(`g(X,Y), gate(X) -> g(Y,Z), gate(Y).`)
	res, err := DecideGuarded(rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Answer != NonTerminating {
		t.Fatal("expected non-termination")
	}
	w := res.Verdict.Witness
	if !strings.Contains(w, "node-type cycle") || !strings.Contains(w, "g(") {
		t.Errorf("witness: %s", w)
	}
}

// TestAnswerAndVariantStrings covers the enum stringers.
func TestAnswerAndVariantStrings(t *testing.T) {
	if Terminating.String() != "terminating" || NonTerminating.String() != "non-terminating" || Unknown.String() != "unknown" {
		t.Error("Answer strings wrong")
	}
	if VariantOblivious.String() != "oblivious" || VariantSemiOblivious.String() != "semi-oblivious" {
		t.Error("ChaseVariant strings wrong")
	}
}

// TestDecideSimpleLinearErrors: non-SL and constant-bearing inputs are
// rejected by the fast path.
func TestDecideSimpleLinearErrors(t *testing.T) {
	if _, err := DecideSimpleLinear(parse.MustParseRules(`p(X,X) -> q(X).`), VariantSemiOblivious); err == nil {
		t.Error("non-simple rule accepted")
	}
	if _, err := DecideSimpleLinear(parse.MustParseRules(`p(X,0) -> q(X).`), VariantSemiOblivious); err == nil {
		t.Error("constants accepted")
	}
}
