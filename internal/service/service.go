// Package service is the concurrent termination-analysis engine behind
// cmd/chased: a content-addressed verdict cache with singleflight
// deduplication, a worker-pool executor with per-job timeouts, and the
// HTTP layer that serves the versioned wire contract of package api.
//
// The decision procedures of the paper are expensive by nature (PSPACE-
// complete for linear rules, 2EXPTIME-complete for guarded ones), so the
// engine amortizes them: identical rule sets are recognized by their
// canonical fingerprint (RuleSet.Fingerprint), verdicts are cached, and
// N concurrent identical requests cost a single decision.
//
// The engine speaks api.AnalyzeRequest/api.AnalyzeResponse end-to-end
// (Analyze, AnalyzeBatch, served as POST /v2/analyze and /v2/batch);
// the flat v1 request/response model is kept as a compatibility shim
// (Request, Response, Do, Batch, the /v1/* routes).
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"time"

	"chaseterm"
	"chaseterm/api"
	"chaseterm/internal/obs"
	"chaseterm/internal/store"
)

// ErrBadRequest wraps client errors (malformed rules, unknown variant,
// unknown job kind); the HTTP layer maps it to 400 / "bad_request".
var ErrBadRequest = errors.New("bad request")

// ErrKindMismatch wraps requests whose body-supplied kind contradicts
// the kind implied by a v1 route. It is a bad request (400), but keeps
// its own wire code "kind_mismatch" so clients can tell the two apart.
var ErrKindMismatch = fmt.Errorf("%w: kind mismatch", ErrBadRequest)

// ErrUnprocessable wraps analyses that ran but could not finish within
// their search-space budgets (e.g. a shape or node-type cap from the
// request, or the library default, was exceeded). These are a property
// of the submitted instance, not a server fault; the HTTP layer maps
// them to 422 / "unprocessable".
var ErrUnprocessable = errors.New("analysis failed")

// maxRequestBudget caps every client-supplied search budget. Workers
// stay occupied until a job's computation winds down, so an absurd
// budget (say 2e9 facts) would otherwise let one request pin a worker
// for hours; the cap keeps "budget-bounded" meaning "bounded on a
// human timescale". It sits well above every library default (1e6
// facts/triggers/shapes, 250k node types).
const maxRequestBudget = 10_000_000

// maxChaseWorkers caps the per-request chase parallelism. Results are
// identical at every worker count, so a huge value buys nothing but
// goroutine churn; the cap keeps one request from spawning an
// unreasonable match fleet.
const maxChaseWorkers = 64

// Options configure an Engine; zero values select the defaults noted on
// each field.
type Options struct {
	// Workers bounds concurrently running analyses (default GOMAXPROCS).
	Workers int
	// CacheSize bounds the verdict cache entry count (default 1024).
	CacheSize int
	// JobTimeout bounds one job end to end, queue wait included
	// (default 30s).
	JobTimeout time.Duration
	// MaxBatch bounds jobs per Batch call (default 256).
	MaxBatch int
	// ChaseWorkers is the default match parallelism of chase runs when a
	// request does not set its own chaseWorkers field (cmd/chased's
	// -chase-workers flag). 0 or 1 means sequential; results are
	// bit-identical either way.
	ChaseWorkers int
	// DecideFunc overrides the all-instance decision procedure — for
	// tests and instrumentation wrappers. Nil means the library decider
	// (chaseterm.Analyzer). Implementations must honor the context: it
	// carries the job's deadline, and ignoring it keeps a worker slot
	// pinned after the client's request has already failed.
	DecideFunc func(context.Context, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.DecideOptions) (*chaseterm.Verdict, error)

	// Store, when set, persists decide verdicts across process restarts
	// as a write-through/read-miss layer under the in-memory cache: a
	// memory miss probes the store before computing, and a fresh verdict
	// is written through after. The engine never fails a request over the
	// store — errors are counted, the request recomputes. The caller owns
	// the store's lifecycle (the engine does not close it).
	Store store.VerdictStore

	// Logger, when set, receives one structured completion record per
	// job: request ID, kind, fingerprint, verdict or outcome, cache
	// result, queue/exec durations, and the error code on failure. Nil
	// disables request logging (the default — library users opt in,
	// cmd/chased always sets one).
	Logger *slog.Logger
	// SlowRequest raises the completion record of any request whose
	// total time reaches the threshold to WARN with slow=true; zero
	// disables the check.
	SlowRequest time.Duration
}

// Engine runs analysis jobs concurrently with caching and admission
// control. Create with New, release with Close.
type Engine struct {
	opts    Options
	cache   *verdictCache
	pool    *workerPool
	stats   *Stats
	metrics *metrics
	store   store.VerdictStore
	decide  func(context.Context, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.DecideOptions) (*chaseterm.Verdict, error)

	facade chaseterm.Analyzer
}

// New builds an Engine and starts its workers.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 1024
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 30 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	e := &Engine{
		opts:  opts,
		cache: newVerdictCache(opts.CacheSize),
		pool:  newWorkerPool(opts.Workers),
		stats: newStats(),
		store: opts.Store,
	}
	e.metrics = newMetrics(e)
	e.decide = opts.DecideFunc
	if e.decide == nil {
		e.decide = func(ctx context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			rep, err := e.facade.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
				chaseterm.WithVariant(v), chaseterm.WithDecideBudgets(opt)))
			if err != nil {
				return nil, err
			}
			return rep.Verdict, nil
		}
	}
	return e
}

// Close stops the worker pool; in-flight jobs finish first.
func (e *Engine) Close() { e.pool.Close() }

// Config returns the effective options after defaulting — what the
// engine actually runs with, for logging and diagnostics.
func (e *Engine) Config() Options { return e.opts }

// Stats returns the live counters (also served as GET /v1/stats).
func (e *Engine) Stats() *Stats { return e.stats }

// StatsSnapshot captures the counters for serialization.
func (e *Engine) StatsSnapshot() Snapshot { return e.stats.snapshot(e.cache.Len(), e.storeDegraded()) }

// beginRequest starts the per-request instrumentation: it ensures the
// context carries an obs.Trace (creating a pooled one when the caller —
// a batch fan-out, a v1 route, a direct library call — did not), and
// returns the trace plus whether this call owns it and must recycle it.
func (e *Engine) beginRequest(ctx context.Context) (context.Context, *obs.Trace, bool) {
	tr := obs.FromContext(ctx)
	if tr != nil {
		return ctx, tr, false
	}
	tr = obs.GetTrace()
	return obs.NewContext(ctx, tr), tr, true
}

// endRequest finishes the per-request instrumentation: it splits the
// wall time into queue wait (pool admission + singleflight wait) and
// execution, and feeds both the /v1/stats windows and the endpoint's
// Prometheus histograms.
func (e *Engine) endRequest(endpoint string, tr *obs.Trace, total time.Duration, failed bool) (queue, exec time.Duration) {
	queue = tr.Get(obs.SpanQueueWait) + tr.Get(obs.SpanSingleflightWait)
	exec = total - queue
	if exec < 0 {
		exec = 0
	}
	e.stats.observe(queue, exec, failed)
	e.metrics.observeRequest(endpoint, queue, exec)
	return queue, exec
}

// Analyze runs one analysis job to completion and returns its response
// in the v2 wire model. Client mistakes are reported as ErrBadRequest
// wrappers; an expired per-job timeout or caller context surfaces as
// the context error.
func (e *Engine) Analyze(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResponse, error) {
	ctx, tr, owned := e.beginRequest(ctx)
	e.stats.inFlight.Add(1)
	start := time.Now()
	resp, err := e.dispatch(ctx, req)
	e.stats.inFlight.Add(-1)
	total := time.Since(start)
	queue, exec := e.endRequest(endpointAnalyze, tr, total, err != nil)
	if resp != nil {
		// respFromReport pre-populates resp.Trace with the engine
		// counters of a chase run; fold them into the fleet totals, then
		// either complete the wire trace or drop it when not requested.
		if resp.Trace != nil && resp.Trace.Engine != nil {
			en := resp.Trace.Engine
			e.metrics.addEngine(en.TriggersApplied, en.TriggersNoop, en.TriggersSatisfied, en.FactsAdded)
		}
		if req.Trace {
			completeTrace(ctx, resp, tr, total)
		} else {
			resp.Trace = nil
		}
	}
	e.logRequest(ctx, endpointAnalyze, req.Kind, resp, err, queue, exec, total)
	if owned && err == nil {
		// On an error path the underlying job may still be winding down
		// on a worker (timeouts, cancellations) with the context — and
		// the trace — in hand; recycling it then would let a late span
		// land on an unrelated request. Let the GC have those.
		obs.PutTrace(tr)
	}
	return resp, err
}

// completeTrace turns the accumulated spans into the wire-level trace
// of a traced response. WallMillis covers the whole server-side life of
// the request: the decode span is recorded by the HTTP layer before the
// engine's clock starts, so it is added on top of total.
func completeTrace(ctx context.Context, resp *api.AnalyzeResponse, tr *obs.Trace, total time.Duration) {
	wire := resp.Trace
	if wire == nil {
		wire = &api.Trace{}
		resp.Trace = wire
	}
	wire.RequestID = obs.RequestIDFromContext(ctx)
	wire.WallMillis = millis(total + tr.Get(obs.SpanDecode))
	tr.Each(func(k obs.SpanKind, d time.Duration) {
		wire.Spans = append(wire.Spans, api.Span{Name: k.String(), Millis: millis(d)})
	})
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// logRequest emits the one structured completion record of a job.
func (e *Engine) logRequest(ctx context.Context, endpoint string, kind api.Kind, resp *api.AnalyzeResponse, err error, queue, exec, total time.Duration) {
	log := e.opts.Logger
	if log == nil {
		return
	}
	slow := e.opts.SlowRequest > 0 && total >= e.opts.SlowRequest
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs,
		slog.String("requestId", obs.RequestIDFromContext(ctx)),
		slog.String("endpoint", endpoint),
		slog.String("kind", string(kind)),
		slog.Float64("queueMillis", millis(queue)),
		slog.Float64("execMillis", millis(exec)),
	)
	if resp != nil {
		if resp.Fingerprint != "" {
			attrs = append(attrs, slog.String("fingerprint", resp.Fingerprint))
		}
		if resp.Decision != nil {
			attrs = append(attrs, slog.String("verdict", resp.Decision.Terminates))
		}
		if resp.Chase != nil {
			attrs = append(attrs, slog.String("outcome", resp.Chase.Outcome))
		}
		if kind == api.KindDecide {
			attrs = append(attrs, slog.Bool("cached", resp.Cached))
		}
	}
	level := slog.LevelInfo
	if slow {
		level = slog.LevelWarn
		attrs = append(attrs, slog.Bool("slow", true))
	}
	if err != nil {
		level = slog.LevelWarn
		attrs = append(attrs, slog.String("code", string(toAPIError(err).Code)), slog.String("error", err.Error()))
	}
	log.LogAttrs(ctx, level, "request", attrs...)
}

func (e *Engine) dispatch(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResponse, error) {
	if !req.Kind.Valid() {
		return nil, fmt.Errorf("%w: unknown job kind %q", ErrBadRequest, req.Kind)
	}
	rules, err := chaseterm.ParseRules(req.Rules)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := checkBudgets(req); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, e.opts.JobTimeout)
	defer cancel()
	var resp *api.AnalyzeResponse
	switch req.Kind {
	case api.KindClassify, api.KindAcyclicity:
		// Classification and the positional criteria are cheap syntactic
		// passes over the already-parsed rules — answered inline, far too
		// light to be worth a worker slot or the risk of queueing behind
		// a heavy decision.
		resp, err = e.doInline(ctx, req, rules)
	case api.KindDecide:
		resp, err = e.doDecide(ctx, req, rules)
	case api.KindChase:
		resp, err = e.doChase(ctx, req, rules)
	}
	if err != nil {
		return nil, err
	}
	// The cached decide path is the one place the acyclicity report
	// cannot ride the primary facade call (the verdict may come from the
	// cache without any facade call at all); attach it here.
	if req.WithAcyclicity && resp.Acyclicity == nil {
		rep, err := e.facade.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeAcyclicity, rules))
		if err != nil {
			return nil, wrapExecErr(err)
		}
		resp.Acyclicity = apiAcyclicity(rep.Acyclicity)
	}
	return resp, nil
}

// baseResponse fills the sections every response carries: the kind echo
// and the classification block.
func baseResponse(kind api.Kind, rules *chaseterm.RuleSet) *api.AnalyzeResponse {
	return &api.AnalyzeResponse{
		Kind:        kind,
		Fingerprint: rules.Fingerprint(),
		Class:       rules.Classify().String(),
		NumRules:    intp(rules.NumRules()),
		MaxArity:    intp(rules.MaxArity()),
		Predicates:  rules.Predicates(),
	}
}

// respFromReport converts a full facade report — classification block
// plus whatever sections the request produced — to the wire shape.
func respFromReport(kind api.Kind, rep *chaseterm.Report, includeFacts bool) *api.AnalyzeResponse {
	resp := &api.AnalyzeResponse{
		Kind:        kind,
		Fingerprint: rep.Fingerprint,
		Class:       rep.Class.String(),
		NumRules:    intp(rep.NumRules),
		MaxArity:    intp(rep.MaxArity),
		Predicates:  rep.Predicates,
	}
	if rep.Verdict != nil {
		resp.Decision = apiDecision(rep.Verdict)
		decoratePortfolio(resp.Decision, rep.Portfolio)
	}
	if rep.Chase != nil {
		resp.Chase = apiChaseRun(rep.Chase, includeFacts)
	}
	if rep.Acyclicity != nil {
		resp.Acyclicity = apiAcyclicity(rep.Acyclicity)
	}
	if rep.Engine != nil {
		// Provisional: Analyze folds these counters into the Prometheus
		// totals and then either completes the trace (trace requested)
		// or strips it from the response.
		resp.Trace = &api.Trace{Engine: apiEngineStats(rep.Engine)}
	}
	return resp
}

// apiEngineStats converts the facade's engine counter set to its wire
// form.
func apiEngineStats(s *chaseterm.EngineStats) *api.EngineStats {
	return &api.EngineStats{
		InitialFacts:      s.InitialFacts,
		FactsAdded:        s.FactsAdded,
		TriggersApplied:   s.TriggersApplied,
		TriggersNoop:      s.TriggersNoop,
		TriggersSatisfied: s.TriggersSatisfied,
		TriggersEnqueued:  s.TriggersEnqueued,
		MaxTermDepth:      s.MaxTermDepth,
	}
}

func intp(v int) *int { return &v }

func (e *Engine) doInline(ctx context.Context, req api.AnalyzeRequest, rules *chaseterm.RuleSet) (*api.AnalyzeResponse, error) {
	kind := chaseterm.AnalyzeClassify
	if req.Kind == api.KindAcyclicity {
		kind = chaseterm.AnalyzeAcyclicity
	}
	var opts []chaseterm.RequestOption
	if req.WithAcyclicity {
		opts = append(opts, chaseterm.WithAcyclicity())
	}
	rep, err := e.facade.Analyze(ctx, chaseterm.NewRequest(kind, rules, opts...))
	if err != nil {
		return nil, wrapExecErr(err)
	}
	return respFromReport(req.Kind, rep, false), nil
}

func (e *Engine) doDecide(ctx context.Context, req api.AnalyzeRequest, rules *chaseterm.RuleSet) (*api.AnalyzeResponse, error) {
	variant, err := parseVariant(req.Variant)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(req.Database) != "" {
		return e.doDecideOnDatabase(ctx, req, rules, variant)
	}
	// Normalize budgets before keying: an explicitly spelled-out
	// default must hit the same cache entry as an omitted one.
	shapes, nodeTypes := req.MaxShapes, req.MaxNodeTypes
	if shapes == chaseterm.DefaultMaxShapes {
		shapes = 0
	}
	if nodeTypes == chaseterm.DefaultMaxNodeTypes {
		nodeTypes = 0
	}
	resp := baseResponse(api.KindDecide, rules)
	// The portfolio mode is part of the content address: a portfolio
	// decision carries provenance (decidedBy, rungs) a direct one lacks,
	// and racing changes the trace, so the three modes never share an
	// entry.
	mode := ""
	if req.Portfolio {
		mode = "|p"
		if req.PortfolioRace {
			mode = "|pr"
		}
	}
	key := fmt.Sprintf("decide|%s|%s|%d|%d%s", resp.Fingerprint, variant, shapes, nodeTypes, mode)
	val, hit, err := e.cache.Do(ctx, key, func() (any, error) {
		// The store sits under the memory cache as a read-miss layer.
		// Probing it inside the flight keeps the singleflight guarantee:
		// N concurrent misses cost one store read, not N.
		if d, ok := e.storeGet(key); ok {
			return d, nil
		}
		// The flight is shared: deduplicated waiters ride on this one
		// computation, so it must not die with the leader's request.
		// Detach from the caller's cancellation and give the flight its
		// own full JobTimeout; each waiter still honors its own context
		// while waiting.
		fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), e.opts.JobTimeout)
		defer cancel()
		fresh, err := e.pool.Do(fctx, func(ctx context.Context) (any, error) {
			if req.Portfolio {
				return e.decidePortfolio(ctx, rules, variant, chaseterm.DecideOptions{
					MaxShapes:    shapes,
					MaxNodeTypes: nodeTypes,
				}, req.PortfolioRace)
			}
			return e.decide(ctx, rules, variant, chaseterm.DecideOptions{
				MaxShapes:    shapes,
				MaxNodeTypes: nodeTypes,
			})
		})
		if err != nil {
			return nil, err
		}
		e.storePut(key, fresh)
		return fresh, nil
	})
	if err != nil {
		return nil, wrapExecErr(err)
	}
	if hit {
		e.stats.cacheHits.Add(1)
	} else {
		e.stats.cacheMisses.Add(1)
	}
	resp.Cached = hit
	switch v := val.(type) {
	case *chaseterm.Verdict:
		resp.Decision = apiDecision(v)
	case *portfolioDecision:
		if !hit {
			e.stats.recordPortfolio(v.portfolio.DecidedBy)
		}
		resp.Decision = apiDecision(v.verdict)
		decoratePortfolio(resp.Decision, v.portfolio)
	case *api.Decision:
		// A verdict loaded from the persistent store — computed by a past
		// process (or this one, pre-eviction), so it counts as cached even
		// on a memory-cache miss. Shallow-copied so response post-processing
		// can never scribble on the cached value.
		d := *v
		resp.Decision = &d
		resp.Cached = true
	}
	return resp, nil
}

// portfolioDecision is the cached value of a portfolio decide: the
// verdict plus its provenance.
type portfolioDecision struct {
	verdict   *chaseterm.Verdict
	portfolio *chaseterm.PortfolioReport
}

// decidePortfolio runs the all-instance decision through the facade's
// termination portfolio. It bypasses Options.DecideFunc — the override
// has no way to produce rung provenance — so tests that stub the direct
// decider exercise the real ladder here.
func (e *Engine) decidePortfolio(ctx context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions, race bool) (*portfolioDecision, error) {
	rep, err := e.facade.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules,
		chaseterm.WithVariant(v), chaseterm.WithDecideBudgets(opt),
		chaseterm.WithPortfolio(chaseterm.PortfolioOptions{Race: race})))
	if err != nil {
		return nil, err
	}
	return &portfolioDecision{verdict: rep.Verdict, portfolio: rep.Portfolio}, nil
}

// decoratePortfolio attaches the portfolio provenance to a wire
// decision.
func decoratePortfolio(d *api.Decision, rep *chaseterm.PortfolioReport) {
	if rep == nil {
		return
	}
	d.DecidedBy = rep.DecidedBy
	d.Raced = rep.Raced
	for _, r := range rep.Rungs {
		d.Rungs = append(d.Rungs, api.Rung{
			Name:     r.Rung,
			Verdict:  r.Verdict,
			Millis:   millis(r.Elapsed),
			Canceled: r.Canceled,
		})
	}
}

// doDecideOnDatabase answers the fixed-database decision problem. The
// verdict depends on the database, which is not part of the verdict
// cache's content address, so these decisions run uncached (still
// pool-bounded and deadline-bounded).
func (e *Engine) doDecideOnDatabase(ctx context.Context, req api.AnalyzeRequest, rules *chaseterm.RuleSet, variant chaseterm.Variant) (*api.AnalyzeResponse, error) {
	db, err := chaseterm.ParseDatabase(req.Database)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	opts := []chaseterm.RequestOption{
		chaseterm.WithVariant(variant),
		chaseterm.WithDatabase(db),
		chaseterm.WithDecideBudgets(chaseterm.DecideOptions{
			MaxShapes:    req.MaxShapes,
			MaxNodeTypes: req.MaxNodeTypes,
		}),
	}
	if req.WithAcyclicity {
		opts = append(opts, chaseterm.WithAcyclicity())
	}
	val, err := e.pool.Do(ctx, func(ctx context.Context) (any, error) {
		return e.facade.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeDecide, rules, opts...))
	})
	if err != nil {
		return nil, wrapExecErr(err)
	}
	return respFromReport(api.KindDecide, val.(*chaseterm.Report), false), nil
}

// chaseRequestOptions translates the chase-relevant wire fields —
// variant, budgets, database, parallelism — into facade options. Shared
// by the one-shot (doChase) and streaming (ChaseStream) paths so the
// two translations cannot drift. A request that leaves chaseWorkers at
// zero inherits the server's configured default.
func (e *Engine) chaseRequestOptions(req api.AnalyzeRequest) ([]chaseterm.RequestOption, error) {
	variant, err := parseVariant(req.Variant)
	if err != nil {
		return nil, err
	}
	workers := req.ChaseWorkers
	if workers == 0 {
		workers = e.opts.ChaseWorkers
	}
	opts := []chaseterm.RequestOption{
		chaseterm.WithVariant(variant),
		chaseterm.WithChaseBudgets(chaseterm.ChaseOptions{
			MaxTriggers: req.MaxTriggers,
			MaxFacts:    req.MaxFacts,
			MaxDepth:    req.MaxDepth,
			Workers:     workers,
		}),
	}
	if strings.TrimSpace(req.Database) != "" {
		db, err := chaseterm.ParseDatabase(req.Database)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		opts = append(opts, chaseterm.WithDatabase(db))
	}
	return opts, nil
}

func (e *Engine) doChase(ctx context.Context, req api.AnalyzeRequest, rules *chaseterm.RuleSet) (*api.AnalyzeResponse, error) {
	opts, err := e.chaseRequestOptions(req)
	if err != nil {
		return nil, err
	}
	if req.ReturnFacts {
		// Rendering millions of facts is real work; WithFacts makes the
		// facade do it inside the worker slot so it counts against
		// admission control.
		opts = append(opts, chaseterm.WithFacts())
	}
	if req.WithAcyclicity {
		opts = append(opts, chaseterm.WithAcyclicity())
	}
	val, err := e.pool.Do(ctx, func(ctx context.Context) (any, error) {
		return e.facade.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules, opts...))
	})
	if err != nil {
		return nil, wrapExecErr(err)
	}
	return respFromReport(api.KindChase, val.(*chaseterm.Report), req.ReturnFacts), nil
}

// checkBatchSize enforces the batch-level admission rules shared by the
// v1 and v2 batch entry points.
func (e *Engine) checkBatchSize(n int) error {
	if n == 0 {
		return fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if n > e.opts.MaxBatch {
		return fmt.Errorf("%w: batch of %d exceeds the limit of %d", ErrBadRequest, n, e.opts.MaxBatch)
	}
	return nil
}

// fanOut runs f(0..n-1) concurrently and waits for all of them; the
// worker pool inside each job is what actually bounds parallelism.
func fanOut(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// AnalyzeBatch runs the jobs across the worker pool and returns
// responses in input order. Per-job failures are reported inline via
// AnalyzeResponse.Error; the call itself fails only for client mistakes
// at the batch level.
func (e *Engine) AnalyzeBatch(ctx context.Context, reqs []api.AnalyzeRequest) ([]api.AnalyzeResponse, error) {
	if err := e.checkBatchSize(len(reqs)); err != nil {
		return nil, err
	}
	out := make([]api.AnalyzeResponse, len(reqs))
	fanOut(len(reqs), func(i int) {
		resp, err := e.Analyze(ctx, reqs[i])
		if err != nil {
			out[i] = api.AnalyzeResponse{Kind: reqs[i].Kind, Error: toAPIError(err)}
			return
		}
		out[i] = *resp
	})
	return out, nil
}

// apiDecision converts a library verdict to its wire form.
func apiDecision(v *chaseterm.Verdict) *api.Decision {
	return &api.Decision{
		Terminates:  v.Terminates.String(),
		Class:       v.Class.String(),
		Method:      v.Method,
		Witness:     v.Witness,
		SearchSpace: v.SearchSpace,
	}
}

// apiChaseRun converts a chase result to its wire form.
func apiChaseRun(res *chaseterm.ChaseResult, includeFacts bool) *api.ChaseRun {
	out := &api.ChaseRun{
		Outcome: res.Outcome.String(),
		Stats:   *apiChaseStats(res.Stats),
	}
	if includeFacts {
		out.Facts = res.Facts()
	}
	return out
}

// apiChaseStats converts run statistics to their wire form.
func apiChaseStats(s chaseterm.ChaseStats) *api.ChaseStats {
	return &api.ChaseStats{
		InitialFacts:      s.InitialFacts,
		FactsAdded:        s.FactsAdded,
		TriggersApplied:   s.TriggersApplied,
		TriggersNoop:      s.TriggersNoop,
		TriggersSatisfied: s.TriggersSatisfied,
		MaxTermDepth:      s.MaxTermDepth,
	}
}

// apiAcyclicity converts an acyclicity report to its wire form.
func apiAcyclicity(rep *chaseterm.AcyclicityReport) *api.Acyclicity {
	return &api.Acyclicity{
		RichlyAcyclic:  rep.RichlyAcyclic,
		WeaklyAcyclic:  rep.WeaklyAcyclic,
		JointlyAcyclic: rep.JointlyAcyclic,
		RAWitness:      rep.RAWitness,
		WAWitness:      rep.WAWitness,
		JAWitness:      rep.JAWitness,
	}
}

// toAPIError classifies an engine error into its wire form: a stable
// machine-readable code plus the error text.
func toAPIError(err error) *api.Error {
	code := api.CodeInternal
	switch {
	case errors.Is(err, ErrKindMismatch):
		code = api.CodeKindMismatch
	case errors.Is(err, ErrBadRequest):
		code = api.CodeBadRequest
	case errors.Is(err, ErrUnprocessable):
		code = api.CodeUnprocessable
	case errors.Is(err, context.DeadlineExceeded):
		code = api.CodeTimeout
	case errors.Is(err, context.Canceled):
		code = api.CodeCanceled
	case errors.Is(err, ErrClosed):
		code = api.CodeUnavailable
	case errors.Is(err, ErrPanic):
		code = api.CodeInternal
	}
	return &api.Error{Code: code, Message: err.Error()}
}

// checkBudgets rejects out-of-range search budgets up front (zero means
// the library default and is always fine).
func checkBudgets(req api.AnalyzeRequest) error {
	budgets := []struct {
		name string
		val  int
	}{
		{"maxShapes", req.MaxShapes},
		{"maxNodeTypes", req.MaxNodeTypes},
		{"maxTriggers", req.MaxTriggers},
		{"maxFacts", req.MaxFacts},
		{"maxDepth", req.MaxDepth},
	}
	for _, b := range budgets {
		if b.val < 0 || b.val > maxRequestBudget {
			return fmt.Errorf("%w: %s must be between 0 and %d, got %d",
				ErrBadRequest, b.name, maxRequestBudget, b.val)
		}
	}
	if req.ChaseWorkers < 0 || req.ChaseWorkers > maxChaseWorkers {
		return fmt.Errorf("%w: chaseWorkers must be between 0 and %d, got %d",
			ErrBadRequest, maxChaseWorkers, req.ChaseWorkers)
	}
	return nil
}

// wrapExecErr classifies an execution failure: transport conditions
// (timeouts, shutdown), request mistakes, and recovered panics pass
// through; everything else came out of an analysis that ran and gave
// up, which is the instance's fault, not the server's.
func wrapExecErr(err error) error {
	if err == nil ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrBadRequest) ||
		errors.Is(err, ErrPanic) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrUnprocessable, err)
}

func parseVariant(s string) (chaseterm.Variant, error) {
	if s == "" {
		return chaseterm.SemiOblivious, nil
	}
	v, err := chaseterm.ParseVariant(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return v, nil
}
