// Package service is the concurrent termination-analysis engine behind
// cmd/chased: a content-addressed verdict cache with singleflight
// deduplication, a worker-pool executor with per-job timeouts, and the
// JSON request/response model served over HTTP by NewHandler.
//
// The decision procedures of the paper are expensive by nature (PSPACE-
// complete for linear rules, 2EXPTIME-complete for guarded ones), so the
// engine amortizes them: identical rule sets are recognized by their
// canonical fingerprint (RuleSet.Fingerprint), verdicts are cached, and
// N concurrent identical requests cost a single decision.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"chaseterm"
)

// ErrBadRequest wraps client errors (malformed rules, unknown variant,
// unknown job kind); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("bad request")

// ErrUnprocessable wraps analyses that ran but could not finish within
// their search-space budgets (e.g. a shape or node-type cap from the
// request, or the library default, was exceeded). These are a property
// of the submitted instance, not a server fault; the HTTP layer maps
// them to 422.
var ErrUnprocessable = errors.New("analysis failed")

// maxRequestBudget caps every client-supplied search budget. Workers
// stay occupied until a job's computation winds down, so an absurd
// budget (say 2e9 facts) would otherwise let one request pin a worker
// for hours; the cap keeps "budget-bounded" meaning "bounded on a
// human timescale". It sits well above every library default (1e6
// facts/triggers/shapes, 250k node types).
const maxRequestBudget = 10_000_000

// Kind selects the analysis a Job runs.
type Kind string

const (
	KindClassify Kind = "classify"
	KindDecide   Kind = "decide"
	KindChase    Kind = "chase"
)

// Request is one analysis job. Kind is implied by the HTTP endpoint for
// the single-job routes and required per job in a batch.
type Request struct {
	Kind  Kind   `json:"kind,omitempty"`
	Rules string `json:"rules"`
	// Variant applies to decide and chase jobs; empty means
	// semi-oblivious, the variant the paper's exact procedures target.
	Variant string `json:"variant,omitempty"`
	// Database holds ground facts for chase jobs; empty means chase the
	// critical instance of the rule set.
	Database string `json:"database,omitempty"`

	// Decide budgets (zero = library defaults).
	MaxShapes    int `json:"maxShapes,omitempty"`
	MaxNodeTypes int `json:"maxNodeTypes,omitempty"`

	// Chase budgets (zero = library defaults).
	MaxTriggers int `json:"maxTriggers,omitempty"`
	MaxFacts    int `json:"maxFacts,omitempty"`
	MaxDepth    int `json:"maxDepth,omitempty"`
	// ReturnFacts includes the final instance in a chase response;
	// off by default because instances can be large.
	ReturnFacts bool `json:"returnFacts,omitempty"`
}

// Response is the result of one job. Exactly the fields relevant to the
// job's kind are populated; Error is set instead when a batch entry
// fails (single-job routes report errors at the HTTP level).
type Response struct {
	Kind        Kind   `json:"kind"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Error       string `json:"error,omitempty"`

	// classify. The numeric fields are pointers so that a legitimate
	// zero (a nullary-predicate schema has MaxArity 0) is emitted
	// rather than dropped by omitempty: present ⇔ meaningful.
	Class      string   `json:"class,omitempty"`
	NumRules   *int     `json:"numRules,omitempty"`
	MaxArity   *int     `json:"maxArity,omitempty"`
	Predicates []string `json:"predicates,omitempty"`

	// decide
	Terminates  string `json:"terminates,omitempty"`
	Method      string `json:"method,omitempty"`
	Witness     string `json:"witness,omitempty"`
	SearchSpace *int   `json:"searchSpace,omitempty"`
	// Cached reports that the verdict came from the cache (stored entry
	// or a deduplicated concurrent flight).
	Cached bool `json:"cached,omitempty"`

	// chase
	Outcome string      `json:"outcome,omitempty"`
	Chase   *ChaseStats `json:"chaseStats,omitempty"`
	Facts   []string    `json:"facts,omitempty"`
}

// ChaseStats mirrors chaseterm.ChaseStats with JSON tags.
type ChaseStats struct {
	InitialFacts      int `json:"initialFacts"`
	FactsAdded        int `json:"factsAdded"`
	TriggersApplied   int `json:"triggersApplied"`
	TriggersNoop      int `json:"triggersNoop"`
	TriggersSatisfied int `json:"triggersSatisfied"`
	MaxTermDepth      int `json:"maxTermDepth"`
}

// Options configure an Engine; zero values select the defaults noted on
// each field.
type Options struct {
	// Workers bounds concurrently running analyses (default GOMAXPROCS).
	Workers int
	// CacheSize bounds the verdict cache entry count (default 1024).
	CacheSize int
	// JobTimeout bounds one job end to end, queue wait included
	// (default 30s).
	JobTimeout time.Duration
	// MaxBatch bounds jobs per Batch call (default 256).
	MaxBatch int
	// DecideFunc overrides the decision procedure — for tests and
	// instrumentation wrappers. Nil means
	// chaseterm.DecideTerminationOptsContext. Implementations must honor
	// the context: it carries the job's deadline, and ignoring it keeps a
	// worker slot pinned after the client's request has already failed.
	DecideFunc func(context.Context, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.DecideOptions) (*chaseterm.Verdict, error)
}

// Engine runs analysis jobs concurrently with caching and admission
// control. Create with New, release with Close.
type Engine struct {
	opts   Options
	cache  *verdictCache
	pool   *workerPool
	stats  *Stats
	decide func(context.Context, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.DecideOptions) (*chaseterm.Verdict, error)
}

// New builds an Engine and starts its workers.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 1024
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 30 * time.Second
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	decide := opts.DecideFunc
	if decide == nil {
		decide = chaseterm.DecideTerminationOptsContext
	}
	return &Engine{
		opts:   opts,
		cache:  newVerdictCache(opts.CacheSize),
		pool:   newWorkerPool(opts.Workers),
		stats:  newStats(),
		decide: decide,
	}
}

// Close stops the worker pool; in-flight jobs finish first.
func (e *Engine) Close() { e.pool.Close() }

// Config returns the effective options after defaulting — what the
// engine actually runs with, for logging and diagnostics.
func (e *Engine) Config() Options { return e.opts }

// Stats returns the live counters (also served as GET /v1/stats).
func (e *Engine) Stats() *Stats { return e.stats }

// StatsSnapshot captures the counters for serialization.
func (e *Engine) StatsSnapshot() Snapshot { return e.stats.snapshot(e.cache.Len()) }

// Do runs one job to completion and returns its response. Client
// mistakes are reported as ErrBadRequest wrappers; an expired per-job
// timeout or caller context surfaces as the context error.
func (e *Engine) Do(ctx context.Context, req Request) (*Response, error) {
	e.stats.inFlight.Add(1)
	start := time.Now()
	resp, err := e.dispatch(ctx, req)
	e.stats.inFlight.Add(-1)
	e.stats.observe(time.Since(start), err != nil)
	return resp, err
}

func (e *Engine) dispatch(ctx context.Context, req Request) (*Response, error) {
	rules, err := chaseterm.ParseRules(req.Rules)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := checkBudgets(req); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, e.opts.JobTimeout)
	defer cancel()
	switch req.Kind {
	case KindClassify:
		return e.doClassify(ctx, rules)
	case KindDecide:
		return e.doDecide(ctx, req, rules)
	case KindChase:
		return e.doChase(ctx, req, rules)
	default:
		return nil, fmt.Errorf("%w: unknown job kind %q", ErrBadRequest, req.Kind)
	}
}

// doClassify answers inline: classification is a pure syntactic pass
// over the already-parsed rules, far too cheap to be worth a worker
// slot or the risk of queueing behind a heavy decision.
func (e *Engine) doClassify(_ context.Context, rules *chaseterm.RuleSet) (*Response, error) {
	return &Response{
		Kind:        KindClassify,
		Fingerprint: rules.Fingerprint(),
		Class:       rules.Classify().String(),
		NumRules:    intp(rules.NumRules()),
		MaxArity:    intp(rules.MaxArity()),
		Predicates:  rules.Predicates(),
	}, nil
}

func intp(v int) *int { return &v }

func (e *Engine) doDecide(ctx context.Context, req Request, rules *chaseterm.RuleSet) (*Response, error) {
	variant, err := parseVariant(req.Variant)
	if err != nil {
		return nil, err
	}
	// Normalize budgets before keying: an explicitly spelled-out
	// default must hit the same cache entry as an omitted one.
	shapes, nodeTypes := req.MaxShapes, req.MaxNodeTypes
	if shapes == chaseterm.DefaultMaxShapes {
		shapes = 0
	}
	if nodeTypes == chaseterm.DefaultMaxNodeTypes {
		nodeTypes = 0
	}
	fp := rules.Fingerprint()
	key := fmt.Sprintf("decide|%s|%s|%d|%d", fp, variant, shapes, nodeTypes)
	val, hit, err := e.cache.Do(ctx, key, func() (any, error) {
		// The flight is shared: deduplicated waiters ride on this one
		// computation, so it must not die with the leader's request.
		// Detach from the caller's cancellation and give the flight its
		// own full JobTimeout; each waiter still honors its own context
		// while waiting.
		fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), e.opts.JobTimeout)
		defer cancel()
		return e.pool.Do(fctx, func(ctx context.Context) (any, error) {
			return e.decide(ctx, rules, variant, chaseterm.DecideOptions{
				MaxShapes:    shapes,
				MaxNodeTypes: nodeTypes,
			})
		})
	})
	if err != nil {
		return nil, wrapExecErr(err)
	}
	if hit {
		e.stats.cacheHits.Add(1)
	} else {
		e.stats.cacheMisses.Add(1)
	}
	verdict := val.(*chaseterm.Verdict)
	return &Response{
		Kind:        KindDecide,
		Fingerprint: fp,
		Cached:      hit,
		Class:       verdict.Class.String(),
		Terminates:  verdict.Terminates.String(),
		Method:      verdict.Method,
		Witness:     verdict.Witness,
		SearchSpace: intp(verdict.SearchSpace),
	}, nil
}

func (e *Engine) doChase(ctx context.Context, req Request, rules *chaseterm.RuleSet) (*Response, error) {
	variant, err := parseVariant(req.Variant)
	if err != nil {
		return nil, err
	}
	var db *chaseterm.Database
	if strings.TrimSpace(req.Database) == "" {
		db = chaseterm.CriticalDatabase(rules)
	} else if db, err = chaseterm.ParseDatabase(req.Database); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	val, err := e.pool.Do(ctx, func(ctx context.Context) (any, error) {
		res, err := chaseterm.RunChaseContext(ctx, db, rules, variant, chaseterm.ChaseOptions{
			MaxTriggers: req.MaxTriggers,
			MaxFacts:    req.MaxFacts,
			MaxDepth:    req.MaxDepth,
		})
		if err == nil && req.ReturnFacts {
			// Rendering millions of facts is real work; do it inside
			// the worker slot so it counts against admission control.
			res.Facts()
		}
		return res, err
	})
	if err != nil {
		return nil, wrapExecErr(err)
	}
	res := val.(*chaseterm.ChaseResult)
	resp := &Response{
		Kind:        KindChase,
		Fingerprint: rules.Fingerprint(),
		Outcome:     res.Outcome.String(),
		Chase: &ChaseStats{
			InitialFacts:      res.Stats.InitialFacts,
			FactsAdded:        res.Stats.FactsAdded,
			TriggersApplied:   res.Stats.TriggersApplied,
			TriggersNoop:      res.Stats.TriggersNoop,
			TriggersSatisfied: res.Stats.TriggersSatisfied,
			MaxTermDepth:      res.Stats.MaxTermDepth,
		},
	}
	if req.ReturnFacts {
		resp.Facts = res.Facts()
	}
	return resp, nil
}

// Batch runs the jobs across the worker pool and returns responses in
// input order. Per-job failures are reported inline via Response.Error;
// the call itself fails only for client mistakes at the batch level.
func (e *Engine) Batch(ctx context.Context, reqs []Request) ([]*Response, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadRequest)
	}
	if len(reqs) > e.opts.MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d exceeds the limit of %d", ErrBadRequest, len(reqs), e.opts.MaxBatch)
	}
	out := make([]*Response, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			resp, err := e.Do(ctx, req)
			if err != nil {
				resp = &Response{Kind: req.Kind, Error: err.Error()}
			}
			out[i] = resp
		}(i, req)
	}
	wg.Wait()
	return out, nil
}

// checkBudgets rejects out-of-range search budgets up front (zero means
// the library default and is always fine).
func checkBudgets(req Request) error {
	budgets := []struct {
		name string
		val  int
	}{
		{"maxShapes", req.MaxShapes},
		{"maxNodeTypes", req.MaxNodeTypes},
		{"maxTriggers", req.MaxTriggers},
		{"maxFacts", req.MaxFacts},
		{"maxDepth", req.MaxDepth},
	}
	for _, b := range budgets {
		if b.val < 0 || b.val > maxRequestBudget {
			return fmt.Errorf("%w: %s must be between 0 and %d, got %d",
				ErrBadRequest, b.name, maxRequestBudget, b.val)
		}
	}
	return nil
}

// wrapExecErr classifies an execution failure: transport conditions
// (timeouts, shutdown) and request mistakes pass through; everything
// else came out of an analysis that ran and gave up, which is the
// instance's fault, not the server's.
func wrapExecErr(err error) error {
	if err == nil ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrBadRequest) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrUnprocessable, err)
}

func parseVariant(s string) (chaseterm.Variant, error) {
	if s == "" {
		return chaseterm.SemiOblivious, nil
	}
	v, err := chaseterm.ParseVariant(s)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return v, nil
}
