package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"chaseterm"
	"chaseterm/api"
)

// waRules is weakly acyclic under the semi-oblivious variant, so a
// portfolio decide must stop at the weak-acyclicity rung and never
// reach the exact tier.
const waRules = `professor(X) -> teaches(X,C). teaches(X,C) -> course(C).`

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func TestAnalyzePortfolioDecide(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind:      api.KindDecide,
		Rules:     waRules,
		Variant:   "so",
		Portfolio: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out api.AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Decision == nil || out.Decision.Terminates != "terminating" {
		t.Fatalf("decision block wrong: %+v", out.Decision)
	}
	if out.Decision.DecidedBy != "weak-acyclicity" {
		t.Errorf("decidedBy = %q, want weak-acyclicity", out.Decision.DecidedBy)
	}
	if len(out.Decision.Rungs) == 0 {
		t.Error("portfolio decision carries no rung trace")
	}
	for _, r := range out.Decision.Rungs {
		if r.Name == "guarded-exact" || r.Name == "linear-exact" {
			t.Errorf("weakly-acyclic input reached exact rung %q", r.Name)
		}
	}

	// The rung counters see the one flight that actually ran.
	var snap Snapshot
	getJSON(t, srv.URL+"/v1/stats", &snap)
	if snap.PortfolioDecides != 1 {
		t.Errorf("portfolioDecides = %d, want 1", snap.PortfolioDecides)
	}
	if snap.PortfolioRungs["weak-acyclicity"] != 1 {
		t.Errorf("rung counter weak-acyclicity = %d, want 1", snap.PortfolioRungs["weak-acyclicity"])
	}
	if snap.PortfolioRungs["guarded-exact"] != 0 {
		t.Errorf("rung counter guarded-exact = %d, want 0", snap.PortfolioRungs["guarded-exact"])
	}

	// A repeat request is a cache hit: the provenance is replayed from
	// the cached value, and the rung counters do not move again.
	_, data = postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind: api.KindDecide, Rules: waRules, Variant: "so", Portfolio: true,
	})
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("repeat portfolio decide not served from cache")
	}
	if out.Decision == nil || out.Decision.DecidedBy != "weak-acyclicity" {
		t.Errorf("cached portfolio decision lost its provenance: %+v", out.Decision)
	}
	getJSON(t, srv.URL+"/v1/stats", &snap)
	if snap.PortfolioDecides != 1 || snap.PortfolioRungs["weak-acyclicity"] != 1 {
		t.Errorf("cache hit moved rung counters: decides=%d weak=%d",
			snap.PortfolioDecides, snap.PortfolioRungs["weak-acyclicity"])
	}

	// And the Prometheus view agrees with the JSON one.
	httpResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if !strings.Contains(string(body), `chased_portfolio_rung_total{rung="weak-acyclicity"} 1`) {
		t.Error("/metrics missing the weak-acyclicity rung series at 1")
	}
}

// TestPortfolioCacheDistinctFromDirect: a portfolio decision carries
// provenance a direct one lacks, so the two must not share a cache
// entry even for identical rules.
func TestPortfolioCacheDistinctFromDirect(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{Kind: api.KindDecide, Rules: waRules, Variant: "so"})
	_, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind: api.KindDecide, Rules: waRules, Variant: "so", Portfolio: true,
	})
	var out api.AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Error("portfolio decide hit the direct decide's cache entry")
	}
	if out.Decision == nil || out.Decision.DecidedBy == "" {
		t.Errorf("portfolio decide lost its provenance: %+v", out.Decision)
	}
}

// TestPortfolioRaceRequest: the race flag is accepted over the wire and
// still yields the ladder's verdict when the ladder is decisive (the
// exact tier never starts, so nothing races).
func TestPortfolioRaceRequest(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind:          api.KindDecide,
		Rules:         waRules,
		Variant:       "so",
		Portfolio:     true,
		PortfolioRace: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out api.AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Decision == nil || out.Decision.DecidedBy != "weak-acyclicity" || out.Decision.Raced {
		t.Errorf("race request on decisive ladder: %+v", out.Decision)
	}
	// Distinct cache key from the non-racing portfolio request.
	if out.Cached {
		t.Error("racing portfolio decide shared a cache entry with another mode")
	}
}

func TestCapabilitiesEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	var caps api.Capabilities
	getJSON(t, srv.URL+"/v2/capabilities", &caps)
	if caps.Version != api.Version || !caps.Portfolio {
		t.Errorf("capabilities = %+v", caps)
	}
	want := chaseterm.PortfolioRungNames()
	if len(caps.PortfolioRungs) != len(want) {
		t.Fatalf("rungs = %v, want %v", caps.PortfolioRungs, want)
	}
	for i, name := range want {
		if caps.PortfolioRungs[i] != name {
			t.Errorf("rung[%d] = %q, want %q", i, caps.PortfolioRungs[i], name)
		}
	}
}
