package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chaseterm/api"
)

// streamEvents posts a chase-stream request and decodes every NDJSON
// event until the stream ends.
func streamEvents(t *testing.T, url string, req api.AnalyzeRequest) []api.StreamEvent {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v2/chase/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	var events []api.StreamEvent
	dec := json.NewDecoder(resp.Body)
	for {
		var ev api.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return events
			}
			t.Fatal(err)
		}
		events = append(events, ev)
	}
}

// TestStreamEndpointHappyPath: the acceptance check of the streaming
// subsystem — a terminating chase arrives as ≥1 facts event, every
// derived fact exactly once, closed by a single done event whose stats
// match the fact count.
func TestStreamEndpointHappyPath(t *testing.T) {
	eng := New(Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(srv.Close)

	events := streamEvents(t, srv.URL, api.AnalyzeRequest{
		Rules:    "professor(X) -> teaches(X,C). teaches(X,C) -> course(C).",
		Database: "professor(turing). professor(church).",
		Variant:  "r",
	})
	if len(events) < 2 {
		t.Fatalf("got %d events, want facts + done", len(events))
	}
	last := events[len(events)-1]
	if last.Event != api.StreamDone || last.Outcome != "terminated" || last.Stats == nil {
		t.Fatalf("terminal event %+v", last)
	}
	var facts []string
	for _, ev := range events[:len(events)-1] {
		if ev.Event.Terminal() {
			t.Fatalf("terminal event %q before the end of the stream", ev.Event)
		}
		if ev.Event == api.StreamFacts {
			if len(ev.Facts) == 0 {
				t.Error("facts event with no facts")
			}
			facts = append(facts, ev.Facts...)
		}
	}
	if len(facts) != last.Stats.FactsAdded {
		t.Errorf("streamed %d facts, done event reports %d", len(facts), last.Stats.FactsAdded)
	}
	seen := map[string]bool{}
	for _, f := range facts {
		if seen[f] {
			t.Errorf("fact %q streamed twice", f)
		}
		seen[f] = true
	}
	// Content check: the restricted chase of this database derives one
	// teaches-fact per professor and the corresponding course-facts,
	// rendered in the surface syntax with z-nulls.
	for _, want := range []string{"teaches(turing,z1)", "teaches(church,z2)", "course(z1)", "course(z2)"} {
		if !seen[want] {
			t.Errorf("derived fact %q missing from the stream: %v", want, facts)
		}
	}

	snap := eng.StatsSnapshot()
	if snap.Streams != 1 || snap.StreamsAborted != 0 || snap.StreamFacts != int64(len(facts)) {
		t.Errorf("stream counters %d/%d/%d, want 1/0/%d",
			snap.Streams, snap.StreamsAborted, snap.StreamFacts, len(facts))
	}
}

// TestStreamClientDisconnectAbortsRun is the cancel-on-disconnect
// acceptance check: killing the connection mid-stream must abort the
// producing chase run (observed via the engine's StreamsAborted
// counter) long before its multi-million-fact budget — i.e. within one
// cancellation-check interval plus scheduling slack.
func TestStreamClientDisconnectAbortsRun(t *testing.T) {
	eng := New(Options{Workers: 1, JobTimeout: time.Minute})
	t.Cleanup(eng.Close)
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(srv.Close)

	// Example 1 diverges; without the disconnect the run would grind
	// through 9M facts against a single worker.
	body, _ := json.Marshal(api.AnalyzeRequest{
		Rules:       example1,
		Database:    "person(bob).",
		MaxFacts:    9_000_000,
		MaxTriggers: 9_000_000,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v2/chase/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read one event so the stream is demonstrably live, then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()

	deadline := time.Now().Add(10 * time.Second)
	for eng.Stats().StreamsAborted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("producer not aborted within 10s of the disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The aborted producer must also have released its worker slot: a
	// fresh (non-streaming) job on the 1-worker pool completes.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := eng.Analyze(ctx2, api.AnalyzeRequest{Kind: api.KindClassify, Rules: example1}); err != nil {
		t.Fatalf("worker slot not released after the aborted stream: %v", err)
	}
}

// TestStreamPreflightErrors: failures before the first event are plain
// HTTP errors with the usual envelope, never a 200 stream.
func TestStreamPreflightErrors(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name     string
		body     string
		wantCode api.Code
		wantHTTP int
	}{
		{"bad rules", `{"rules": "nope nope"}`, api.CodeBadRequest, 400},
		{"wrong kind", `{"kind": "decide", "rules": "p(X) -> q(X)."}`, api.CodeBadRequest, 400},
		{"bad variant", `{"rules": "p(X) -> q(X).", "variant": "zzz"}`, api.CodeBadRequest, 400},
		{"bad database", `{"rules": "p(X) -> q(X).", "database": "p(X)."}`, api.CodeBadRequest, 400},
		{"budget range", `{"rules": "p(X) -> q(X).", "maxFacts": -1}`, api.CodeBadRequest, 400},
		{"withAcyclicity unsupported", `{"rules": "p(X) -> q(X).", "withAcyclicity": true}`, api.CodeBadRequest, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postRaw(t, srv.URL+"/v2/chase/stream", tc.body)
			if resp.StatusCode != tc.wantHTTP {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, data, tc.wantHTTP)
			}
			var env api.ErrorEnvelope
			if err := json.Unmarshal(data, &env); err != nil || env.Error == nil || env.Error.Code != tc.wantCode {
				t.Fatalf("body %s, want envelope with code %s", data, tc.wantCode)
			}
		})
	}
	// An explicit matching kind is accepted.
	events := streamEvents(t, srv.URL, api.AnalyzeRequest{
		Kind:     api.KindChase,
		Rules:    "p(X) -> q(X).",
		Database: "p(a).",
	})
	if len(events) == 0 || !events[len(events)-1].Event.Terminal() {
		t.Fatalf("explicit chase kind rejected: %+v", events)
	}
}

// TestStreamConcurrentClients drives several streams at once while a
// reader hammers the stats endpoint — under -race this is the
// engine→HTTP sink handoff check: the producer goroutine writes each
// response while its handler blocks, with no unsynchronized sharing.
func TestStreamConcurrentClients(t *testing.T) {
	eng := New(Options{Workers: 4})
	t.Cleanup(eng.Close)
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/v1/stats")
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
	}()

	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			events := streamEvents(t, srv.URL, api.AnalyzeRequest{
				Rules:    "e(X,Y) -> r(X,Y). r(X,Y) -> s(Y,X).",
				Database: strings.Repeat("e(a,b). e(b,c). e(c,d). ", 1),
			})
			if len(events) == 0 || events[len(events)-1].Event != api.StreamDone {
				t.Errorf("stream did not finish cleanly: %+v", events)
			}
		}()
	}
	wg.Wait()
	close(stop)
	statsWG.Wait()
	if got := eng.Stats().Streams(); got != clients {
		t.Errorf("streams counter %d, want %d", got, clients)
	}
}
