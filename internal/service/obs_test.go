package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"chaseterm/api"
	"chaseterm/internal/obs"
)

// scrape fetches /metrics and returns the parsed exposition.
func scrape(t *testing.T, base string) exposition {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// exposition is a parsed Prometheus text-format scrape: the declared
// type of each metric family plus every sample keyed by its full series
// name (including the label set).
type exposition struct {
	types   map[string]string  // family -> counter|gauge|histogram
	help    map[string]bool    // family -> has # HELP
	samples map[string]float64 // "name{labels}" -> value
}

func parseExposition(t *testing.T, text string) exposition {
	t.Helper()
	exp := exposition{
		types:   map[string]string{},
		help:    map[string]bool{},
		samples: map[string]float64{},
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed HELP line %q", line)
			}
			exp.help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if prev, dup := exp.types[name]; dup {
				t.Fatalf("family %s declared twice (%s then %s)", name, prev, typ)
			}
			exp.types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		series, valText, found := strings.Cut(line, " ")
		if !found {
			t.Fatalf("malformed sample line %q", line)
		}
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		if _, dup := exp.samples[series]; dup {
			t.Fatalf("series %s appears twice", series)
		}
		exp.samples[series] = val
	}
	return exp
}

// familyOf maps a series name back to its metric family: labels are
// stripped, and the histogram suffixes fold into the base name.
func familyOf(series string) string {
	name, _, _ := strings.Cut(series, "{")
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			return base
		}
	}
	return name
}

// drive sends a fixed batch of traffic: two identical decides (the
// second is a cache hit), one chase (real engine counters), and one
// malformed request (a failed job is not counted — it never decodes).
func drive(t *testing.T, base string) {
	t.Helper()
	decide := map[string]any{"kind": "decide", "rules": "person(X) -> hasFather(X,Y), person(Y)."}
	for i := 0; i < 2; i++ {
		resp, _ := postJSON(t, base+"/v2/analyze", decide)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decide status %d", resp.StatusCode)
		}
	}
	chase := map[string]any{
		"kind": "chase", "rules": "e(X,Y) -> e(Y,Z).", "database": "e(a,b).",
		"maxTriggers": 50, "maxFacts": 100,
	}
	resp, _ := postJSON(t, base+"/v2/analyze", chase)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chase status %d", resp.StatusCode)
	}
}

// TestMetricsExposition pins the full contract of GET /metrics: every
// registered family is declared with # HELP and a well-formed # TYPE,
// the expected series exist with values that reflect the traffic, the
// histograms are internally consistent, and counters are monotone
// across scrapes.
func TestMetricsExposition(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	drive(t, srv.URL)
	first := scrape(t, srv.URL)

	wantTypes := map[string]string{
		"chased_cache_hits_total":         "counter",
		"chased_cache_misses_total":       "counter",
		"chased_jobs_total":               "counter",
		"chased_jobs_failed_total":        "counter",
		"chased_streams_total":            "counter",
		"chased_streams_aborted_total":    "counter",
		"chased_stream_facts_total":       "counter",
		"chased_stream_events_total":      "counter",
		"chased_triggers_applied_total":   "counter",
		"chased_triggers_noop_total":      "counter",
		"chased_triggers_satisfied_total": "counter",
		"chased_facts_derived_total":      "counter",
		"chased_portfolio_decides_total":  "counter",
		"chased_portfolio_rung_total":     "counter",
		"chased_store_hits_total":         "counter",
		"chased_store_misses_total":       "counter",
		"chased_store_errors_total":       "counter",
		"chased_store_degraded":           "gauge",
		"chased_uptime_seconds":           "gauge",
		"chased_in_flight":                "gauge",
		"chased_pool_queue_depth":         "gauge",
		"chased_cache_entries":            "gauge",
		"chased_request_queue_seconds":    "histogram",
		"chased_request_exec_seconds":     "histogram",
	}
	for name, typ := range wantTypes {
		if got := first.types[name]; got != typ {
			t.Errorf("family %s: # TYPE %q, want %q", name, got, typ)
		}
		if !first.help[name] {
			t.Errorf("family %s: no # HELP line", name)
		}
	}
	for series := range first.samples {
		if _, known := wantTypes[familyOf(series)]; !known {
			t.Errorf("series %s has no # TYPE declaration", series)
		}
	}

	// Values reflect the driven traffic: 3 jobs, 1 cache hit, 1 miss
	// (the first decide — chase runs bypass the verdict cache), real
	// chase counters, no streams, nothing failed.
	wantValues := map[string]float64{
		"chased_cache_hits_total":   1,
		"chased_cache_misses_total": 1,
		"chased_jobs_total":         3,
		"chased_jobs_failed_total":  0,
		"chased_streams_total":      0,
	}
	for series, want := range wantValues {
		if got, ok := first.samples[series]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", series, got, ok, want)
		}
	}
	if got := first.samples["chased_triggers_applied_total"]; got < 50 {
		t.Errorf("chased_triggers_applied_total = %v, want >= 50 (the chase budget)", got)
	}
	if got := first.samples["chased_facts_derived_total"]; got <= 0 {
		t.Errorf("chased_facts_derived_total = %v, want > 0", got)
	}

	// Histogram invariants for the endpoint that served the traffic:
	// cumulative buckets are non-decreasing, the +Inf bucket equals
	// _count, and _count matches the jobs served.
	for _, fam := range []string{"chased_request_queue_seconds", "chased_request_exec_seconds"} {
		prefix := fam + `_bucket{endpoint="analyze",le="`
		var last float64
		var buckets int
		// Walk the declared buckets in order by re-deriving the bound list
		// from the sample keys is fragile; instead check pairwise via the
		// default bucket ladder plus +Inf.
		bounds := append([]float64(nil), obs.DefBuckets...)
		for _, b := range bounds {
			series := prefix + formatBound(b) + `"}`
			got, ok := first.samples[series]
			if !ok {
				t.Fatalf("missing bucket series %s", series)
			}
			if got < last {
				t.Errorf("%s: cumulative count %v below previous bucket %v", series, got, last)
			}
			last = got
			buckets++
		}
		inf, ok := first.samples[prefix+`+Inf"}`]
		if !ok {
			t.Fatalf("missing +Inf bucket for %s", fam)
		}
		if inf < last {
			t.Errorf("%s +Inf bucket %v below last finite bucket %v", fam, inf, last)
		}
		count := first.samples[fam+`_count{endpoint="analyze"}`]
		if inf != count || count != 3 {
			t.Errorf("%s: +Inf=%v _count=%v, want both 3", fam, inf, count)
		}
		if sum := first.samples[fam+`_sum{endpoint="analyze"}`]; sum < 0 {
			t.Errorf("%s _sum = %v, want >= 0", fam, sum)
		}
	}

	// A second scrape after more traffic: every counter is monotone.
	drive(t, srv.URL)
	second := scrape(t, srv.URL)
	for series, before := range first.samples {
		if familyType := first.types[familyOf(series)]; familyType == "gauge" {
			continue
		}
		after, ok := second.samples[series]
		if !ok {
			t.Errorf("series %s vanished between scrapes", series)
			continue
		}
		if after < before {
			t.Errorf("counter series %s went backwards: %v -> %v", series, before, after)
		}
	}
	if before, after := first.samples["chased_jobs_total"], second.samples["chased_jobs_total"]; after != before+3 {
		t.Errorf("chased_jobs_total %v -> %v, want +3", before, after)
	}
}

// formatBound renders a bucket bound the way the registry does.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// TestMetricsConcurrentScrape races jobs, streams, and scrapes; run
// under -race this pins the lock-free registry, and the final scrape
// must still account for every job exactly.
func TestMetricsConcurrentScrape(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 4})
	const goroutines, perG = 4, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Distinct rule sets defeat the cache so every job exercises
				// the full pool + histogram path.
				body, _ := json.Marshal(map[string]any{
					"kind":  "decide",
					"rules": fmt.Sprintf("p%d_%d(X) -> q(X,Y).", g, i),
				})
				resp, err := http.Post(srv.URL+"/v2/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	final := scrape(t, srv.URL)
	if got := final.samples["chased_jobs_total"]; got != goroutines*perG {
		t.Errorf("chased_jobs_total = %v after the dust settled, want %d", got, goroutines*perG)
	}
}

// TestTracedAnalyze pins the opt-in trace on the v2 wire: the response
// carries the request ID, per-stage spans, and engine counters, and the
// span durations sum to no more than the reported wall time.
func TestTracedAnalyze(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	body, _ := json.Marshal(map[string]any{
		"kind": "chase", "rules": "e(X,Y) -> e(Y,Z).", "database": "e(a,b).",
		"maxTriggers": 50, "maxFacts": 100, "trace": true,
	})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/analyze", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "trace-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-e2e-1" {
		t.Errorf("X-Request-ID header = %q, want the client's ID echoed", got)
	}
	var out api.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	tr := out.Trace
	if tr == nil {
		t.Fatal("trace requested but response carries none")
	}
	if tr.RequestID != "trace-e2e-1" {
		t.Errorf("trace.requestId = %q, want the header's ID", tr.RequestID)
	}
	if tr.WallMillis <= 0 {
		t.Errorf("trace.wallMillis = %v, want > 0", tr.WallMillis)
	}
	spans := map[string]float64{}
	var spanSum float64
	for _, s := range tr.Spans {
		if s.Millis < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Millis)
		}
		spans[s.Name] = s.Millis
		spanSum += s.Millis
	}
	for _, want := range []string{"decode", "chase"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("trace is missing the %q span (got %v)", want, spans)
		}
	}
	// The stages are disjoint slices of the request's life, so their sum
	// cannot exceed the wall time (tiny float slack for the ns→ms math).
	if spanSum > tr.WallMillis*1.0001 {
		t.Errorf("span sum %vms exceeds wallMillis %vms", spanSum, tr.WallMillis)
	}
	if tr.Engine == nil {
		t.Fatal("traced chase run has no engine counters")
	}
	if tr.Engine.TriggersApplied < 50 || tr.Engine.FactsAdded <= 0 {
		t.Errorf("engine counters not populated: %+v", tr.Engine)
	}
	if tr.Engine.TriggersEnqueued < tr.Engine.TriggersApplied {
		t.Errorf("enqueued %d < applied %d", tr.Engine.TriggersEnqueued, tr.Engine.TriggersApplied)
	}

	// Without the opt-in the response carries no trace at all.
	plain, data := postJSON(t, srv.URL+"/v2/analyze", map[string]any{
		"kind": "chase", "rules": "e(X,Y) -> e(Y,Z).", "database": "e(a,b).",
		"maxTriggers": 50, "maxFacts": 100,
	})
	if plain.StatusCode != http.StatusOK {
		t.Fatalf("untraced status %d", plain.StatusCode)
	}
	if bytes.Contains(data, []byte(`"trace"`)) {
		t.Error("untraced response leaks a trace field")
	}
}

// TestRequestIDOnErrors pins the request ID on the failure surfaces: the
// v2 envelope and the v1 flat error body both carry it, and a generated
// ID appears when the client sends none.
func TestRequestIDOnErrors(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})

	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v2/analyze",
		strings.NewReader(`{"kind": "decide", "rules": "this is not datalog"}`))
	req.Header.Set("X-Request-ID", "err-e2e-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var envelope api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.RequestID != "err-e2e-7" {
		t.Errorf("envelope requestId = %q, want the client's ID", envelope.RequestID)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "err-e2e-7" {
		t.Errorf("X-Request-ID header = %q on error", got)
	}

	// v1 errors carry the ID too, and the server generates one when the
	// client sends none.
	v1resp, data := postJSON(t, srv.URL+"/v1/decide", map[string]string{"rules": "nope("})
	if v1resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("v1 status %d, want 400", v1resp.StatusCode)
	}
	var flat map[string]string
	if err := json.Unmarshal(data, &flat); err != nil {
		t.Fatal(err)
	}
	if flat["requestId"] == "" {
		t.Errorf("v1 error body has no requestId: %v", flat)
	}
	if flat["requestId"] != v1resp.Header.Get("X-Request-ID") {
		t.Errorf("v1 body requestId %q != header %q", flat["requestId"], v1resp.Header.Get("X-Request-ID"))
	}
}

// TestRequestLogRecord captures the structured completion record of a
// served job and checks the promised fields are all present.
func TestRequestLogRecord(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	eng := New(Options{Workers: 1, Logger: logger, SlowRequest: time.Nanosecond})
	defer eng.Close()

	ctx := obs.WithRequestID(context.Background(), "log-e2e-3")
	resp, err := eng.Analyze(ctx, api.AnalyzeRequest{
		Kind:  api.KindDecide,
		Rules: "person(X) -> hasFather(X,Y), person(Y).",
	})
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	line := strings.TrimSpace(buf.String())
	mu.Unlock()
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log record is not one JSON object: %q: %v", line, err)
	}
	if rec["msg"] != "request" {
		t.Errorf("msg = %v", rec["msg"])
	}
	if rec["requestId"] != "log-e2e-3" {
		t.Errorf("requestId = %v", rec["requestId"])
	}
	if rec["endpoint"] != "analyze" || rec["kind"] != "decide" {
		t.Errorf("endpoint/kind = %v/%v", rec["endpoint"], rec["kind"])
	}
	if rec["fingerprint"] != resp.Fingerprint {
		t.Errorf("fingerprint = %v, want %v", rec["fingerprint"], resp.Fingerprint)
	}
	if rec["verdict"] != "non-terminating" {
		t.Errorf("verdict = %v", rec["verdict"])
	}
	if _, ok := rec["cached"]; !ok {
		t.Error("decide record has no cached field")
	}
	if _, ok := rec["queueMillis"].(float64); !ok {
		t.Errorf("queueMillis missing or not a number: %v", rec["queueMillis"])
	}
	if _, ok := rec["execMillis"].(float64); !ok {
		t.Errorf("execMillis missing or not a number: %v", rec["execMillis"])
	}
	// SlowRequest was set to 1ns, so the record is a WARN with slow=true.
	if rec["level"] != "WARN" || rec["slow"] != true {
		t.Errorf("slow-request record: level=%v slow=%v, want WARN/true", rec["level"], rec["slow"])
	}
}

// lockedWriter serializes writes so the test can read the buffer
// without racing the engine's log goroutine.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestInstrumentationAllocs pins the per-request cost of the
// observability layer itself: one trace checkout, the queue/exec split,
// both stats windows, two histogram observations, and the trace
// return — at most one allocation (the context carrying the trace).
func TestInstrumentationAllocs(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		jctx, tr, owned := eng.beginRequest(ctx)
		_ = jctx
		eng.endRequest(endpointAnalyze, tr, time.Millisecond, false)
		eng.logRequest(jctx, endpointAnalyze, api.KindDecide, nil, nil, 0, time.Millisecond, time.Millisecond)
		if owned {
			obs.PutTrace(tr)
		}
	})
	if allocs > 1 {
		t.Errorf("instrumentation path allocates %v per request, want <= 1", allocs)
	}
}

// TestStatsQueueExecSplit pins the /v1/stats latency split: the new
// queue/exec quantiles are reported separately and the legacy
// whole-request fields remain their sum.
func TestStatsQueueExecSplit(t *testing.T) {
	s := newStats()
	for i := 0; i < 10; i++ {
		s.observe(2*time.Millisecond, 3*time.Millisecond, false)
	}
	snap := s.snapshot(0, false)
	if snap.QueueP50Millis != 2 || snap.QueueP99Millis != 2 {
		t.Errorf("queue quantiles %v/%v, want 2/2", snap.QueueP50Millis, snap.QueueP99Millis)
	}
	if snap.ExecP50Millis != 3 || snap.ExecP99Millis != 3 {
		t.Errorf("exec quantiles %v/%v, want 3/3", snap.ExecP50Millis, snap.ExecP99Millis)
	}
	if snap.P50Millis != 5 || snap.P99Millis != 5 {
		t.Errorf("legacy quantiles %v/%v, want the 5/5 sum", snap.P50Millis, snap.P99Millis)
	}
}
