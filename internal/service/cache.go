package service

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"chaseterm/internal/obs"
)

// verdictCache is a content-addressed result cache: canonical key (rule
// set fingerprint + variant + options) → computed value. It is bounded
// by an LRU policy and deduplicates concurrent computations of the same
// key singleflight-style, so N simultaneous identical requests cost one
// underlying decision.
type verdictCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recently used
	items    map[string]*list.Element // key → element whose Value is *cacheEntry
	inflight map[string]*flight
}

type cacheEntry struct {
	key string
	val any
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

func newVerdictCache(capacity int) *verdictCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &verdictCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Do returns the value for key, computing it with fn on a miss. Under
// concurrent callers fn runs at most once per key at a time: late
// arrivals wait for the leader's result instead of recomputing. hit
// reports whether the caller was served without running fn itself
// (stored value or deduplicated wait). Errors are returned to every
// waiter of the flight but never cached, so a later request retries.
// ctx bounds only the waiting; the leader's fn is responsible for its
// own cancellation.
func (c *verdictCache) Do(ctx context.Context, key string, fn func() (any, error)) (val any, hit bool, err error) {
	tr := obs.FromContext(ctx)
	probe := time.Now()
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		val = el.Value.(*cacheEntry).val
		c.mu.Unlock()
		tr.Add(obs.SpanCacheLookup, time.Since(probe))
		return val, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		tr.Add(obs.SpanCacheLookup, time.Since(probe))
		wait := time.Now()
		select {
		case <-f.done:
			tr.Add(obs.SpanSingleflightWait, time.Since(wait))
			return f.val, f.err == nil, f.err
		case <-ctx.Done():
			tr.Add(obs.SpanSingleflightWait, time.Since(wait))
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()
	tr.Add(obs.SpanCacheLookup, time.Since(probe))

	// The leader's bookkeeping runs under a defer: if fn panics, the
	// inflight entry must still be removed and done must still close,
	// otherwise every later request for this key would join a flight no
	// one will ever finish and block forever. The waiters are failed
	// with an error describing the panic, and the panic is re-propagated
	// to the leader's own stack.
	defer func() {
		r := recover()
		if r != nil {
			f.err = fmt.Errorf("service: cached computation panicked: %v", r)
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if r == nil && f.err == nil {
			c.store(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		if r != nil {
			panic(r)
		}
	}()
	f.val, f.err = fn()
	return f.val, false, f.err
}

// store inserts under the lock, evicting the least recently used entry
// when over capacity.
func (c *verdictCache) store(key string, val any) {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of stored entries.
func (c *verdictCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
