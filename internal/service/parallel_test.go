package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"chaseterm/api"
)

// parallelChaseReq is a chase job wide enough to cross the parallel
// engine's inline-delta threshold, so the striped match phase runs.
func parallelChaseReq(workers int) api.AnalyzeRequest {
	var db strings.Builder
	for i := 0; i < 80; i++ {
		fmt.Fprintf(&db, "e(a%d,a%d).\n", i, i+1)
	}
	return api.AnalyzeRequest{
		Kind:         api.KindChase,
		Rules:        "e(X,Y) -> r(X,Y).\nr(X,Y) -> s(Y,X).\ne(X,Y), e(Y,Z) -> t(X,Z).",
		Database:     db.String(),
		ChaseWorkers: workers,
	}
}

// TestChaseWorkersFieldIdenticalResults: the chaseWorkers wire field is
// accepted and a parallel run reports the exact statistics of a
// sequential one — the determinism contract holds across the HTTP
// boundary.
func TestChaseWorkersFieldIdenticalResults(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	run := func(workers int) api.ChaseStats {
		resp, data := postJSON(t, srv.URL+"/v2/analyze", parallelChaseReq(workers))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, resp.StatusCode, data)
		}
		var out api.AnalyzeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Chase == nil || out.Chase.Outcome != "terminated" {
			t.Fatalf("workers=%d: chase %+v", workers, out.Chase)
		}
		return out.Chase.Stats
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(par, seq) {
		t.Errorf("workers=8 stats %+v, sequential %+v", par, seq)
	}
}

// TestChaseWorkersServerDefault: a request that leaves chaseWorkers at
// zero inherits the engine's configured default and still matches the
// sequential statistics.
func TestChaseWorkersServerDefault(t *testing.T) {
	seqSrv := newTestServer(t, Options{Workers: 1})
	parSrv := newTestServer(t, Options{Workers: 1, ChaseWorkers: 8})
	run := func(url string) api.ChaseStats {
		resp, data := postJSON(t, url+"/v2/analyze", parallelChaseReq(0))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out api.AnalyzeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out.Chase.Stats
	}
	if seq, par := run(seqSrv.URL), run(parSrv.URL); !reflect.DeepEqual(par, seq) {
		t.Errorf("default-workers stats %+v, sequential %+v", par, seq)
	}
}

// TestChaseWorkersValidation: out-of-range chaseWorkers is a bad
// request with the standard envelope, not a silent clamp.
func TestChaseWorkersValidation(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	for _, workers := range []int{-1, maxChaseWorkers + 1} {
		req := parallelChaseReq(workers)
		resp, data := postJSON(t, srv.URL+"/v2/analyze", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("chaseWorkers=%d: status %d, want 400: %s", workers, resp.StatusCode, data)
		}
	}
}

// TestCapabilitiesAdvertiseParallelChase: clients discover the
// chaseWorkers field through the capability flag before using it (the
// v2 decoder rejects unknown fields on older servers).
func TestCapabilitiesAdvertiseParallelChase(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	var caps api.Capabilities
	getJSON(t, srv.URL+"/v2/capabilities", &caps)
	if !caps.ParallelChase {
		t.Errorf("capabilities = %+v, want parallelChase true", caps)
	}
}
