package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chaseterm"
	"chaseterm/api"
)

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestAnalyzeEndpointDecide(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind:  api.KindDecide,
		Rules: example1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out api.AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != api.KindDecide || out.Class != "simple-linear" || len(out.Fingerprint) != 64 {
		t.Errorf("base block wrong: %+v", out)
	}
	if out.Decision == nil || out.Decision.Terminates != "non-terminating" || out.Decision.Method == "" {
		t.Errorf("decision block wrong: %+v", out.Decision)
	}
	if out.NumRules == nil || *out.NumRules != 1 {
		t.Errorf("v2 responses always carry the schema block: %+v", out)
	}

	// Identical request → served from the shared verdict cache.
	_, data = postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{Kind: api.KindDecide, Rules: example1})
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("repeat v2 decide not served from cache")
	}
}

// TestAnalyzeSharesCacheWithV1: the v1 shim and the v2 route are one
// engine; a verdict computed through either is a hit through the other.
func TestAnalyzeSharesCacheWithV1(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	postJSON(t, srv.URL+"/v1/decide", Request{Rules: example1})
	_, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{Kind: api.KindDecide, Rules: example1})
	var out api.AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("v2 request missed the verdict the v1 shim computed")
	}
}

func TestAnalyzeEndpointChaseAndAcyclicity(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind:           api.KindChase,
		Rules:          `professor(X) -> teaches(X,C). teaches(X,C) -> course(C).`,
		Database:       `professor(turing).`,
		Variant:        "r",
		ReturnFacts:    true,
		WithAcyclicity: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out api.AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Chase == nil || out.Chase.Outcome != "terminated" || out.Chase.Stats.FactsAdded == 0 {
		t.Errorf("chase block wrong: %+v", out.Chase)
	}
	if len(out.Chase.Facts) == 0 {
		t.Error("returnFacts ignored")
	}
	if out.Acyclicity == nil || !out.Acyclicity.WeaklyAcyclic {
		t.Errorf("withAcyclicity block wrong: %+v", out.Acyclicity)
	}

	// Dedicated acyclicity kind.
	resp, data = postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind:  api.KindAcyclicity,
		Rules: "p(X) -> q(X,Y).\nq(X,Y), q(Y,X) -> p(Y).",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acyclicity status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Acyclicity == nil || out.Acyclicity.WeaklyAcyclic || !out.Acyclicity.JointlyAcyclic {
		t.Errorf("acyclicity report wrong: %+v", out.Acyclicity)
	}
}

// TestAnalyzeDecideOnDatabase: a database on a decide job switches to
// the fixed-database problem — new capability of the v2 contract.
func TestAnalyzeDecideOnDatabase(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	_, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{
		Kind:     api.KindDecide,
		Rules:    `p(X,Y) -> p(Y,Z).`,
		Database: `q(a).`, // no p-facts: the dangerous rule never fires
	})
	var out api.AnalyzeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Decision == nil || out.Decision.Terminates != "terminating" {
		t.Errorf("fixed-db decision wrong: %+v", out.Decision)
	}
	if !strings.Contains(out.Decision.Method, "fixed-db") {
		t.Errorf("method %q does not name the fixed-db procedure", out.Decision.Method)
	}
}

func TestAnalyzeErrorEnvelope(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name     string
		body     string
		wantCode api.Code
		wantHTTP int
	}{
		{"bad rules", `{"kind": "decide", "rules": "nope nope"}`, api.CodeBadRequest, 400},
		{"unknown kind", `{"kind": "mystery", "rules": "p(X) -> q(X)."}`, api.CodeBadRequest, 400},
		{"missing kind", `{"rules": "p(X) -> q(X)."}`, api.CodeBadRequest, 400},
		{"unknown field", `{"kind": "decide", "rules": "p(X) -> q(X).", "varient": "so"}`, api.CodeBadRequest, 400},
		{"budget exceeded", `{"kind": "decide", "rules": "gate(X,Y), live(X) -> out(Y,Z), live(Z).", "maxNodeTypes": 1}`, api.CodeUnprocessable, 422},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postRaw(t, srv.URL+"/v2/analyze", tc.body)
			if resp.StatusCode != tc.wantHTTP {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, data, tc.wantHTTP)
			}
			var env api.ErrorEnvelope
			if err := json.Unmarshal(data, &env); err != nil || env.Error == nil {
				t.Fatalf("not an error envelope: %s", data)
			}
			if env.Error.Code != tc.wantCode || env.Error.Message == "" {
				t.Errorf("envelope %+v, want code %s", env.Error, tc.wantCode)
			}
		})
	}
}

// TestDecodeRejectsTrailingGarbage: the body must be exactly one JSON
// value. Concatenated bodies previously had everything after the first
// value silently ignored — masking client bugs.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	good := `{"kind": "classify", "rules": "p(X) -> q(X)."}`
	for _, route := range []string{"/v2/analyze", "/v1/classify"} {
		t.Run(route, func(t *testing.T) {
			// Sanity: the clean body succeeds.
			resp, data := postRaw(t, srv.URL+route, good)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("clean body: status %d (%s)", resp.StatusCode, data)
			}
			// The same body with a second value appended must be a 400.
			resp, data = postRaw(t, srv.URL+route, good+` {"kind": "chase"}`)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("trailing garbage: status %d (%s), want 400", resp.StatusCode, data)
			}
			if !strings.Contains(string(data), "trailing data") {
				t.Errorf("error body does not name the problem: %s", data)
			}
		})
	}
	// The v1 error carries the additive machine-readable code.
	resp, data := postRaw(t, srv.URL+"/v1/classify", good+`42`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var body map[string]string
	if err := json.Unmarshal(data, &body); err != nil || body["code"] != string(api.CodeBadRequest) {
		t.Errorf("v1 error body %s, want code %q", data, api.CodeBadRequest)
	}
}

// TestPanickingDecideFuncDoesNotCrashOrDeadlock is the end-to-end
// regression test for both panic paths at once: a DecideFunc that
// panics must come back as a 500/"internal" envelope (pool recovery),
// the server must stay alive, and — critically — a repeat request for
// the same rule set must fail the same way instead of blocking forever
// on a leaked singleflight entry (cache cleanup).
func TestPanickingDecideFuncDoesNotCrashOrDeadlock(t *testing.T) {
	var calls atomic.Int64
	srv := newTestServer(t, Options{
		Workers: 1,
		DecideFunc: func(context.Context, *chaseterm.RuleSet, chaseterm.Variant, chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			calls.Add(1)
			panic("FindHoms: oversized initial binding")
		},
	})
	client := &http.Client{Timeout: 10 * time.Second}
	post := func() (*http.Response, []byte) {
		t.Helper()
		body, _ := json.Marshal(api.AnalyzeRequest{Kind: api.KindDecide, Rules: example1})
		resp, err := client.Post(srv.URL+"/v2/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("request failed (server crashed or deadlocked?): %v", err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}
	for i := 0; i < 2; i++ {
		resp, data := post()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status %d (%s), want 500", i, resp.StatusCode, data)
		}
		var env api.ErrorEnvelope
		if err := json.Unmarshal(data, &env); err != nil || env.Error == nil {
			t.Fatalf("attempt %d: not an error envelope: %s", i, data)
		}
		if env.Error.Code != api.CodeInternal || !strings.Contains(env.Error.Message, "panicked") {
			t.Errorf("attempt %d: envelope %+v, want internal/panicked", i, env.Error)
		}
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("decider ran %d times, want 2 (nothing cached, nothing deadlocked)", n)
	}
	// The server is still fully functional for healthy work.
	resp, data := postJSON(t, srv.URL+"/v2/analyze", api.AnalyzeRequest{Kind: api.KindClassify, Rules: example1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after panics: status %d (%s)", resp.StatusCode, data)
	}
}

// TestDecodeOversizedTrailingMapsTo413: when the first JSON value fits
// under the body cap but the bytes after it push past it, the failure
// is an oversize (413 "too_large"), not "trailing data" (400) — the
// probe read hit MaxBytesReader, it did not find a second value.
func TestDecodeOversizedTrailingMapsTo413(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	body := `{"kind": "classify", "rules": "p(X) -> q(X)."}` + strings.Repeat(" ", maxBodyBytes)
	resp, data := postRaw(t, srv.URL+"/v2/analyze", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, data)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeTooLarge {
		t.Fatalf("body %s, want envelope with code too_large", data)
	}
	if strings.Contains(env.Error.Message, "trailing data") {
		t.Errorf("oversize mislabeled as trailing data: %s", env.Error.Message)
	}
}

// TestV1KindMismatchRejected: a body-supplied kind that contradicts the
// route is a client bug (a request meant for another endpoint) and must
// be rejected, not silently rewritten to the route's kind.
func TestV1KindMismatchRejected(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	resp, data := postJSON(t, srv.URL+"/v1/decide", Request{Kind: KindChase, Rules: example1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d (%s), want 400", resp.StatusCode, data)
	}
	var body map[string]string
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body["code"] != string(api.CodeKindMismatch) {
		t.Errorf("code %q, want %q", body["code"], api.CodeKindMismatch)
	}
	if !strings.Contains(body["error"], "chase") || !strings.Contains(body["error"], "decide") {
		t.Errorf("error %q does not name both kinds", body["error"])
	}

	// A matching explicit kind is fine.
	resp, data = postJSON(t, srv.URL+"/v1/decide", Request{Kind: KindDecide, Rules: example1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matching kind: status %d (%s)", resp.StatusCode, data)
	}
}

// TestV1DecideIgnoresDatabase: the v1 decide contract always answered
// the all-instance problem and ignored a stray database field; the shim
// must preserve that — the fixed-database decision is v2-only.
func TestV1DecideIgnoresDatabase(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v1/decide", Request{
		Rules:    `p(X,Y) -> p(Y,Z).`,
		Database: `q(a).`, // inert for this rule set
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out Response
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	// All-instance: non-terminating. The fixed-db answer on this inert
	// database would be "terminating" — that must not leak into v1.
	if out.Terminates != "non-terminating" {
		t.Errorf("v1 decide with a database answered %q — the shim switched to the fixed-database problem", out.Terminates)
	}
}

// TestV1RejectsV2OnlyKinds: "acyclicity" is valid in the v2 model but
// was never a v1 kind; the flat Response cannot carry its result, so
// the shim must report the unknown kind instead of silently dropping
// the analysis.
func TestV1RejectsV2OnlyKinds(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	if _, err := eng.Do(ctx, Request{Kind: "acyclicity", Rules: `p(X) -> q(X).`}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("Do accepted the v2-only kind: %v", err)
	}
	resps, err := eng.Batch(ctx, []Request{
		{Kind: KindClassify, Rules: `p(X) -> q(X).`},
		{Kind: "acyclicity", Rules: `p(X) -> q(X).`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Error != "" {
		t.Errorf("healthy v1 job failed: %s", resps[0].Error)
	}
	if !strings.Contains(resps[1].Error, "unknown job kind") {
		t.Errorf("batch entry error %q, want unknown job kind", resps[1].Error)
	}
}

func TestV2BatchEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 4})
	resp, data := postJSON(t, srv.URL+"/v2/batch", api.BatchRequest{Jobs: []api.AnalyzeRequest{
		{Kind: api.KindClassify, Rules: `p(X) -> q(X).`},
		{Kind: api.KindDecide, Rules: `broken`},
		{Kind: api.KindAcyclicity, Rules: `p(X) -> q(X,Y).`},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out api.BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Class != "simple-linear" || out.Results[0].Error != nil {
		t.Errorf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != api.CodeBadRequest {
		t.Errorf("result 1 should carry a coded error: %+v", out.Results[1])
	}
	if out.Results[2].Acyclicity == nil || !out.Results[2].Acyclicity.WeaklyAcyclic {
		t.Errorf("result 2: %+v", out.Results[2])
	}
}
