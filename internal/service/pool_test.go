package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := newWorkerPool(2)
	defer p.Close()
	v, err := p.Do(context.Background(), func(context.Context) (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("got (%v, %v)", v, err)
	}
}

// TestPoolTimeoutCancelsCleanly submits a job that blocks until its
// context is cancelled and requires Do to return the deadline error
// promptly, with the job function observing the cancellation.
func TestPoolTimeoutCancelsCleanly(t *testing.T) {
	p := newWorkerPool(1)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	observed := make(chan struct{})
	start := time.Now()
	_, err := p.Do(ctx, func(jctx context.Context) (any, error) {
		<-jctx.Done()
		close(observed)
		return nil, jctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Do took %v to observe a 30ms timeout", d)
	}
	select {
	case <-observed:
	case <-time.After(2 * time.Second):
		t.Fatal("job function never observed the cancellation")
	}
}

// TestPoolBoundsConcurrency checks the admission-control property: with
// W workers no more than W jobs run at once, whatever the offered load.
func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := newWorkerPool(workers)
	defer p.Close()
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Do(context.Background(), func(context.Context) (any, error) {
				n := running.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				running.Add(-1)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", got, workers)
	}
}

// TestPoolTimedOutJobStillOccupiesWorker pins the admission-control
// contract for abandoned work: a job whose caller timed out keeps its
// worker until the computation actually finishes, so abandoned analyses
// can never run beyond the W-worker bound.
func TestPoolTimedOutJobStillOccupiesWorker(t *testing.T) {
	p := newWorkerPool(1)
	defer p.Close()
	blocker := make(chan struct{})
	ctx1, cancel1 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel1()
	_, err := p.Do(ctx1, func(context.Context) (any, error) {
		<-blocker // ignores cancellation, like a mid-decision analysis
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first job: got %v, want deadline exceeded", err)
	}
	// The only worker must still be tied up by the abandoned job.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	_, err = p.Do(ctx2, func(context.Context) (any, error) { return 1, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second job ran while the worker should be occupied (err=%v)", err)
	}
	close(blocker) // let the abandoned computation wind down
	v, err := p.Do(context.Background(), func(context.Context) (any, error) { return 2, nil })
	if err != nil || v.(int) != 2 {
		t.Fatalf("worker never came back: (%v, %v)", v, err)
	}
}

// TestPoolRecoversPanickingJob is the regression test for the bare
// inner goroutine: a panic in a job function used to escape every
// recover on the handler stacks and kill the whole process. It must
// instead surface as an ErrPanic-wrapped error, and the worker must
// survive to run the next job.
func TestPoolRecoversPanickingJob(t *testing.T) {
	p := newWorkerPool(1)
	defer p.Close()
	for _, submit := range []func(context.Context, func(context.Context) (any, error)) (any, error){
		p.Do, p.DoSync,
	} {
		_, err := submit(context.Background(), func(context.Context) (any, error) {
			panic("oversized initial binding")
		})
		if !errors.Is(err, ErrPanic) {
			t.Fatalf("got %v, want ErrPanic", err)
		}
		if !strings.Contains(err.Error(), "oversized initial binding") {
			t.Errorf("error %q does not carry the panic value", err)
		}
		// The single worker survived the panic.
		v, err := submit(context.Background(), func(context.Context) (any, error) { return 9, nil })
		if err != nil || v.(int) != 9 {
			t.Fatalf("worker did not survive the panic: (%v, %v)", v, err)
		}
	}
}

// TestPoolDoSyncWaitsForFn: DoSync must not return while fn is still
// running, even when the context has long expired — its callers touch
// state fn writes to.
func TestPoolDoSyncWaitsForFn(t *testing.T) {
	p := newWorkerPool(1)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	var finished atomic.Bool
	_, err := p.DoSync(ctx, func(jctx context.Context) (any, error) {
		<-jctx.Done()
		time.Sleep(50 * time.Millisecond) // simulate a slow wind-down
		finished.Store(true)
		return nil, jctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if !finished.Load() {
		t.Fatal("DoSync returned before fn finished")
	}
}

func TestPoolClosedRejectsWork(t *testing.T) {
	p := newWorkerPool(1)
	p.Close()
	_, err := p.Do(context.Background(), func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestPoolQueuedCallerHonorsContext(t *testing.T) {
	p := newWorkerPool(1)
	defer p.Close()
	block := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) (any, error) {
		<-block
		return nil, nil
	})
	defer close(block)
	time.Sleep(10 * time.Millisecond) // occupy the only worker
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Do(ctx, func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued caller got %v, want deadline exceeded", err)
	}
}
