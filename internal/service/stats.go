package service

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chaseterm"
)

// Stats aggregates service-level counters. All methods are safe for
// concurrent use.
type Stats struct {
	start time.Time

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	jobsServed  atomic.Int64
	jobsFailed  atomic.Int64
	inFlight    atomic.Int64

	streams        atomic.Int64
	streamsAborted atomic.Int64
	streamFacts    atomic.Int64

	// The persistent-store tier: hits served from disk, misses that fell
	// through to a computation, and errors (backend failures, undecodable
	// payloads — degraded-mode ErrDegraded returns are not errors, the
	// transition was already counted once).
	storeHits   atomic.Int64
	storeMisses atomic.Int64
	storeErrors atomic.Int64

	// portfolioDecides counts decide requests that ran the termination
	// portfolio (cache misses only — the rung ladder actually climbed);
	// portfolioRungs splits them by the rung that decided. The key set is
	// fixed at construction (chaseterm.PortfolioRungNames), so lookups
	// after newStats are read-only and need no lock.
	portfolioDecides atomic.Int64
	portfolioRungs   map[string]*atomic.Int64

	// Queue wait (worker-pool admission + singleflight wait) and
	// execution time are windowed separately: conflating them made a
	// saturated pool indistinguishable from slow analyses.
	latQueue latencyWindow
	latExec  latencyWindow
}

func newStats() *Stats {
	s := &Stats{start: time.Now(), portfolioRungs: make(map[string]*atomic.Int64)}
	for _, rung := range chaseterm.PortfolioRungNames() {
		s.portfolioRungs[rung] = new(atomic.Int64)
	}
	s.latQueue.init(1024)
	s.latExec.init(1024)
	return s
}

// recordPortfolio counts one portfolio decision that actually ran (a
// cache miss), attributed to the rung that decided it. An exhausted
// portfolio has no deciding rung and only bumps the total.
func (s *Stats) recordPortfolio(decidedBy string) {
	s.portfolioDecides.Add(1)
	if c, ok := s.portfolioRungs[decidedBy]; ok {
		c.Add(1)
	}
}

// Snapshot is the JSON shape served by GET /v1/stats.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	CacheHits     int64   `json:"cacheHits"`
	CacheMisses   int64   `json:"cacheMisses"`
	CacheEntries  int     `json:"cacheEntries"`
	InFlight      int64   `json:"inFlight"`
	JobsServed    int64   `json:"jobsServed"`
	JobsFailed    int64   `json:"jobsFailed"`
	// P50Millis/P99Millis predate the queue/exec split and remain the
	// sum of the two windows' quantiles — the same "whole request"
	// reading they always gave, so existing dashboards keep working.
	P50Millis float64 `json:"p50Millis"`
	P99Millis float64 `json:"p99Millis"`
	// The split windows: time waiting for a worker slot or a
	// deduplicated flight vs. time actually computing.
	QueueP50Millis float64 `json:"queueP50Millis"`
	QueueP99Millis float64 `json:"queueP99Millis"`
	ExecP50Millis  float64 `json:"execP50Millis"`
	ExecP99Millis  float64 `json:"execP99Millis"`

	// Streams counts chase-stream requests that entered the engine;
	// StreamsAborted the subset canceled mid-run (client disconnects);
	// StreamFacts the facts delivered across all stream batches.
	Streams        int64 `json:"streams"`
	StreamsAborted int64 `json:"streamsAborted"`
	StreamFacts    int64 `json:"streamFacts"`

	// The persistent verdict-store tier (all zero when no -store is
	// configured): StoreHits were served from disk, StoreMisses fell
	// through to a computation, StoreErrors count backend failures, and
	// StoreDegraded reports the store is down and the engine is serving
	// memory-only.
	StoreHits     int64 `json:"storeHits"`
	StoreMisses   int64 `json:"storeMisses"`
	StoreErrors   int64 `json:"storeErrors"`
	StoreDegraded bool  `json:"storeDegraded"`

	// PortfolioDecides counts decide requests that ran the termination
	// portfolio (cache misses only); PortfolioRungs attributes them to
	// the rung that decided — every rung is listed, zeros included, so
	// dashboards see the full ladder.
	PortfolioDecides int64            `json:"portfolioDecides"`
	PortfolioRungs   map[string]int64 `json:"portfolioRungs"`

	Runtime RuntimeStats `json:"runtime"`
}

// RuntimeStats surfaces the Go runtime's memory and GC counters, so an
// operator can watch the allocation rate and collector behaviour of a
// live chased without attaching a profiler. For deeper digging, start the
// server with -pprof and use net/http/pprof.
type RuntimeStats struct {
	// HeapAllocBytes is the live heap (runtime.MemStats.HeapAlloc).
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	// HeapObjects counts live heap objects.
	HeapObjects uint64 `json:"heapObjects"`
	// TotalAllocBytes is the cumulative bytes allocated since start.
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	// AllocBytesPerSec is TotalAllocBytes averaged over the uptime — the
	// mean allocation rate the decision engines put on the collector.
	AllocBytesPerSec float64 `json:"allocBytesPerSec"`
	// Mallocs is the cumulative count of heap allocations.
	Mallocs uint64 `json:"mallocs"`
	// NumGC is the number of completed GC cycles.
	NumGC uint32 `json:"numGC"`
	// GCPauseTotalMillis is the cumulative stop-the-world pause time.
	GCPauseTotalMillis float64 `json:"gcPauseTotalMillis"`
	// LastGCPauseMillis is the most recent pause.
	LastGCPauseMillis float64 `json:"lastGCPauseMillis"`
	// GCCPUFraction is the fraction of CPU time spent in GC since start.
	GCCPUFraction float64 `json:"gcCPUFraction"`
	// NumGoroutine is the current goroutine count.
	NumGoroutine int `json:"numGoroutine"`
}

func readRuntimeStats(uptime time.Duration) RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	rs := RuntimeStats{
		HeapAllocBytes:     m.HeapAlloc,
		HeapObjects:        m.HeapObjects,
		TotalAllocBytes:    m.TotalAlloc,
		Mallocs:            m.Mallocs,
		NumGC:              m.NumGC,
		GCPauseTotalMillis: float64(m.PauseTotalNs) / 1e6,
		GCCPUFraction:      m.GCCPUFraction,
		NumGoroutine:       runtime.NumGoroutine(),
	}
	if m.NumGC > 0 {
		rs.LastGCPauseMillis = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e6
	}
	if s := uptime.Seconds(); s > 0 {
		rs.AllocBytesPerSec = float64(m.TotalAlloc) / s
	}
	return rs
}

// latencyWindow keeps the most recent N job latencies in a ring and
// reports percentiles over that window. A fixed window keeps the
// quantiles fresh under sustained traffic and bounds memory.
type latencyWindow struct {
	mu   sync.Mutex
	ring []time.Duration
	next int
	full bool
}

func (w *latencyWindow) init(size int) { w.ring = make([]time.Duration, size) }

func (w *latencyWindow) record(d time.Duration) {
	w.mu.Lock()
	w.ring[w.next] = d
	w.next++
	if w.next == len(w.ring) {
		w.next = 0
		w.full = true
	}
	w.mu.Unlock()
}

// quantiles returns the p50 and p99 of the current window (zeros when
// nothing has been recorded yet).
func (w *latencyWindow) quantiles() (p50, p99 time.Duration) {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.ring)
	}
	sample := make([]time.Duration, n)
	copy(sample, w.ring[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	// Nearest-rank (ceiling) indexing: the q-quantile is the smallest
	// sample ≥ a q-fraction of the window, i.e. sample[⌈q·n⌉-1]. The
	// previous floor indexing int(q*(n-1)) under-reported the tail badly
	// on small windows — the "p99" of a 2-sample window was its minimum.
	idx := func(q float64) int {
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	return sample[idx(0.50)], sample[idx(0.99)]
}

func (s *Stats) observe(queue, exec time.Duration, failed bool) {
	s.jobsServed.Add(1)
	if failed {
		s.jobsFailed.Add(1)
	}
	s.latQueue.record(queue)
	s.latExec.record(exec)
}

// InFlight returns the number of requests currently inside the engine,
// including those waiting for a worker or a deduplicated flight.
func (s *Stats) InFlight() int64 { return s.inFlight.Load() }

// CacheHits returns the number of requests served from the verdict
// cache, counting singleflight-deduplicated waiters as hits.
func (s *Stats) CacheHits() int64 { return s.cacheHits.Load() }

// CacheMisses returns the number of requests that ran an underlying
// decision.
func (s *Stats) CacheMisses() int64 { return s.cacheMisses.Load() }

// Streams returns the number of chase-stream requests that entered the
// engine.
func (s *Stats) Streams() int64 { return s.streams.Load() }

// StreamsAborted returns the number of streams whose producing chase
// run was canceled mid-flight — in the served system, a client that
// disconnected before the run finished.
func (s *Stats) StreamsAborted() int64 { return s.streamsAborted.Load() }

// StreamFacts returns the total number of facts delivered across all
// stream batches.
func (s *Stats) StreamFacts() int64 { return s.streamFacts.Load() }

func (s *Stats) snapshot(cacheEntries int, storeDegraded bool) Snapshot {
	q50, q99 := s.latQueue.quantiles()
	x50, x99 := s.latExec.quantiles()
	uptime := time.Since(s.start)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Snapshot{
		UptimeSeconds:    uptime.Seconds(),
		Runtime:          readRuntimeStats(uptime),
		CacheHits:        s.cacheHits.Load(),
		CacheMisses:      s.cacheMisses.Load(),
		CacheEntries:     cacheEntries,
		InFlight:         s.inFlight.Load(),
		JobsServed:       s.jobsServed.Load(),
		JobsFailed:       s.jobsFailed.Load(),
		P50Millis:        ms(q50 + x50),
		P99Millis:        ms(q99 + x99),
		QueueP50Millis:   ms(q50),
		QueueP99Millis:   ms(q99),
		ExecP50Millis:    ms(x50),
		ExecP99Millis:    ms(x99),
		StoreHits:        s.storeHits.Load(),
		StoreMisses:      s.storeMisses.Load(),
		StoreErrors:      s.storeErrors.Load(),
		StoreDegraded:    storeDegraded,
		Streams:          s.streams.Load(),
		StreamsAborted:   s.streamsAborted.Load(),
		StreamFacts:      s.streamFacts.Load(),
		PortfolioDecides: s.portfolioDecides.Load(),
		PortfolioRungs:   s.portfolioRungSnapshot(),
	}
}

func (s *Stats) portfolioRungSnapshot() map[string]int64 {
	out := make(map[string]int64, len(s.portfolioRungs))
	for rung, c := range s.portfolioRungs {
		out[rung] = c.Load()
	}
	return out
}
