package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
)

// maxBodyBytes bounds request bodies; rule sets are text and even the
// paper's hardest instances are tiny, so 8 MiB is generous.
const maxBodyBytes = 8 << 20

// NewHandler serves the engine over HTTP:
//
//	POST /v1/classify  {"rules": "..."}
//	POST /v1/decide    {"rules": "...", "variant": "so"}
//	POST /v1/chase     {"rules": "...", "database": "...", "variant": "r"}
//	POST /v1/batch     {"jobs": [{"kind": "decide", ...}, ...]}
//	GET  /healthz
//	GET  /v1/stats
//
// Status codes: client mistakes 400, oversized bodies 413, analyses
// that exhausted their search budget 422, client hang-ups 499, engine
// shutdown 503, job timeouts 504. All error bodies are
// {"error": "..."}.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", jobHandler(e, KindClassify))
	mux.HandleFunc("POST /v1/decide", jobHandler(e, KindDecide))
	mux.HandleFunc("POST /v1/chase", jobHandler(e, KindChase))
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Jobs []Request `json:"jobs"`
		}
		if !decodeJSON(w, r, &body) {
			return
		}
		resps, err := e.Batch(r.Context(), body.Jobs)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": resps})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.StatsSnapshot())
	})
	return mux
}

func jobHandler(e *Engine, kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decodeJSON(w, r, &req) {
			return
		}
		req.Kind = kind
		resp, err := e.Do(r.Context(), req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, map[string]string{"error": "malformed request: " + err.Error()})
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrUnprocessable):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a failed write
}
