package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"chaseterm"
	"chaseterm/api"
	"chaseterm/internal/obs"
)

// maxBodyBytes bounds request bodies; rule sets are text and even the
// paper's hardest instances are tiny, so 8 MiB is generous.
const maxBodyBytes = 8 << 20

// NewHandler serves the engine over HTTP.
//
// The versioned contract (package api, kind in the body):
//
//	POST /v2/analyze       api.AnalyzeRequest  → api.AnalyzeResponse
//	POST /v2/batch         api.BatchRequest    → api.BatchResponse
//	POST /v2/chase/stream  api.AnalyzeRequest  → NDJSON api.StreamEvents
//
// The v1 compatibility shims (flat bodies, kind implied by the route):
//
//	POST /v1/classify  {"rules": "..."}
//	POST /v1/decide    {"rules": "...", "variant": "so"}
//	POST /v1/chase     {"rules": "...", "database": "...", "variant": "r"}
//	POST /v1/batch     {"jobs": [{"kind": "decide", ...}, ...]}
//
// And the operational endpoints:
//
//	GET  /healthz
//	GET  /v2/capabilities
//	GET  /v1/stats
//	GET  /metrics   (Prometheus text exposition format)
//
// Every request is assigned a request ID — the client's X-Request-ID
// header when present, a generated one otherwise — which is echoed as
// the X-Request-ID response header, carried on error bodies, and used
// in the server's structured logs.
//
// Status codes: client mistakes 400, oversized bodies 413, analyses
// that exhausted their search budget 422, client hang-ups 499, engine
// shutdown 503, job timeouts 504. v2 error bodies are the envelope
// {"error": {"code": "...", "message": "..."}, "requestId": "..."}; v1
// error bodies remain {"error": "..."} with the machine-readable
// "code" and "requestId" added alongside.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v2/analyze", func(w http.ResponseWriter, r *http.Request) {
		// The handler owns the request's trace so the decode span and
		// the engine's spans land on the same record. Recycled only on
		// success: an errored job may still be winding down on a worker
		// with the trace in hand.
		tr := obs.GetTrace()
		ctx := obs.NewContext(r.Context(), tr)
		var req api.AnalyzeRequest
		t0 := time.Now()
		apiErr := decodeStrict(w, r, &req)
		tr.Add(obs.SpanDecode, time.Since(t0))
		if apiErr != nil {
			writeV2Error(w, r, apiErr)
			obs.PutTrace(tr)
			return
		}
		resp, err := e.Analyze(ctx, req)
		if err != nil {
			writeV2Error(w, r, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, resp)
		obs.PutTrace(tr)
	})

	mux.HandleFunc("POST /v2/batch", func(w http.ResponseWriter, r *http.Request) {
		var body api.BatchRequest
		if apiErr := decodeStrict(w, r, &body); apiErr != nil {
			writeV2Error(w, r, apiErr)
			return
		}
		// No handler-owned trace here: the batch fans out into
		// concurrent jobs, and each Engine.Analyze call creates its own.
		results, err := e.AnalyzeBatch(r.Context(), body.Jobs)
		if err != nil {
			writeV2Error(w, r, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, api.BatchResponse{Results: results})
	})

	mux.HandleFunc("POST /v2/chase/stream", func(w http.ResponseWriter, r *http.Request) {
		tr := obs.GetTrace()
		ctx := obs.NewContext(r.Context(), tr)
		var req api.AnalyzeRequest
		t0 := time.Now()
		apiErr := decodeStrict(w, r, &req)
		tr.Add(obs.SpanDecode, time.Since(t0))
		if apiErr != nil {
			writeV2Error(w, r, apiErr)
			obs.PutTrace(tr)
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeV2Error(w, r, &api.Error{Code: api.CodeInternal, Message: "transport does not support streaming"})
			obs.PutTrace(tr)
			return
		}
		// emit is called synchronously from the producing job (the
		// handler goroutine blocks in ChaseStream until the producer has
		// fully finished, so the ResponseWriter is never written
		// concurrently). Each event is one NDJSON line, flushed
		// immediately so facts reach the client as they are derived.
		enc := json.NewEncoder(w)
		started := false
		emit := func(ev api.StreamEvent) {
			if !started {
				started = true
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
			}
			enc.Encode(ev) //nolint:errcheck // a failed write means the client is gone; r.Context() aborts the producer
			flusher.Flush()
		}
		// A non-nil error means the stream never started (nothing was
		// emitted) and the failure is reported at the transport level;
		// mid-stream failures arrive as terminal "error" events instead.
		// ChaseStream recycles the trace itself (its DoSync barrier makes
		// that safe on every path), so no PutTrace here.
		if err := e.ChaseStream(ctx, req, emit); err != nil {
			writeV2Error(w, r, toAPIError(err))
		}
	})

	mux.HandleFunc("POST /v1/classify", jobHandler(e, KindClassify))
	mux.HandleFunc("POST /v1/decide", jobHandler(e, KindDecide))
	mux.HandleFunc("POST /v1/chase", jobHandler(e, KindChase))
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Jobs []Request `json:"jobs"`
		}
		if apiErr := decodeStrict(w, r, &body); apiErr != nil {
			writeV1Error(w, r, apiErr)
			return
		}
		resps, err := e.Batch(r.Context(), body.Jobs)
		if err != nil {
			writeV1Error(w, r, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": resps})
	})

	// Health stays 200 even while the store is degraded: the process is
	// serving (memory-only), and failing readiness over a cache tier
	// would turn a disk hiccup into an outage. The body says which.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Health())
	})
	mux.HandleFunc("GET /v2/capabilities", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Capabilities())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.StatsSnapshot())
	})
	mux.Handle("GET /metrics", e.MetricsHandler())
	return withRequestID(mux)
}

// MetricsHandler serves the engine's metrics in the Prometheus text
// exposition format; NewHandler mounts it as GET /metrics.
func (e *Engine) MetricsHandler() http.Handler { return e.metrics.reg }

// Capabilities describes the feature set of this build of the service —
// the body of GET /v2/capabilities. It is a function of the binary, not
// of engine state, so clients may cache it for a server's lifetime.
func Capabilities() api.Capabilities {
	return api.Capabilities{
		Version:        api.Version,
		Portfolio:      true,
		PortfolioRungs: chaseterm.PortfolioRungNames(),
		ParallelChase:  true,
	}
}

// withRequestID assigns every request its identifier: the client's
// X-Request-ID when present (so IDs propagate through proxies and
// multi-hop call chains), a generated one otherwise. The ID is echoed
// as a response header and carried down the context for the engine's
// logs and traces.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(obs.WithRequestID(r.Context(), id)))
	})
}

// jobHandler serves one v1 single-job route. The route implies the
// kind; a body that spells out a *different* kind is a client bug
// (most likely a request meant for another endpoint) and is rejected
// rather than silently rewritten.
func jobHandler(e *Engine, kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if apiErr := decodeStrict(w, r, &req); apiErr != nil {
			writeV1Error(w, r, apiErr)
			return
		}
		if req.Kind != "" && req.Kind != kind {
			err := fmt.Errorf("%w: body kind %q contradicts route kind %q", ErrKindMismatch, req.Kind, kind)
			writeV1Error(w, r, toAPIError(err))
			return
		}
		req.Kind = kind
		resp, err := e.Do(r.Context(), req)
		if err != nil {
			writeV1Error(w, r, toAPIError(err))
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// decodeStrict decodes the body as exactly one JSON value: unknown
// fields are rejected (they are typos, not extensions), and so is
// trailing data after the top-level value — a second Decode must report
// io.EOF, otherwise the client concatenated two bodies or truncated its
// buffer arithmetic, and silently analyzing only the first value would
// mask that bug. Returns nil on success.
func decodeStrict(w http.ResponseWriter, r *http.Request, dst any) *api.Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &api.Error{Code: api.CodeTooLarge, Message: "malformed request: " + err.Error()}
		}
		return &api.Error{Code: api.CodeBadRequest, Message: "malformed request: " + err.Error()}
	}
	switch err := dec.Decode(new(json.RawMessage)); {
	case errors.Is(err, io.EOF):
		return nil
	case err == nil, errors.Is(err, io.ErrUnexpectedEOF), isSyntaxError(err):
		// A second complete value, a truncated one, or non-JSON bytes:
		// the client really did send data after its body.
		return &api.Error{Code: api.CodeBadRequest, Message: "malformed request: trailing data after the JSON body"}
	default:
		// The probe failed to *read*, not to parse — blaming the client
		// for trailing data would mislabel the failure. The one expected
		// cause is the body cap firing on the probe read (the first value
		// fit, the whole body did not), which is an oversize condition.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &api.Error{Code: api.CodeTooLarge, Message: "malformed request: " + err.Error()}
		}
		return &api.Error{Code: api.CodeBadRequest, Message: "malformed request: reading body: " + err.Error()}
	}
}

// isSyntaxError reports whether err is a JSON syntax error — bytes that
// were read fine but do not parse.
func isSyntaxError(err error) bool {
	var syn *json.SyntaxError
	return errors.As(err, &syn)
}

// retryAfterHint marks retryable failures (503s) with a Retry-After
// header. The engine drains within one JobTimeout, so "1" is an honest
// floor for a shutting-down replica; package client reads the hint and
// waits it out instead of guessing.
func retryAfterHint(w http.ResponseWriter, apiErr *api.Error) {
	if apiErr.Code.Retryable() {
		w.Header().Set("Retry-After", "1")
	}
}

// writeV2Error writes the versioned error envelope, carrying the
// request's ID so a client can quote it against the server's logs.
func writeV2Error(w http.ResponseWriter, r *http.Request, apiErr *api.Error) {
	retryAfterHint(w, apiErr)
	writeJSON(w, apiErr.Code.HTTPStatus(), api.ErrorEnvelope{
		Error:     apiErr,
		RequestID: obs.RequestIDFromContext(r.Context()),
	})
}

// writeV1Error writes the flat v1 error body. The "error" string is the
// original contract; the "code" and "requestId" fields are additive
// improvements so v1 clients can branch on the error class and quote
// the request in bug reports.
func writeV1Error(w http.ResponseWriter, r *http.Request, apiErr *api.Error) {
	body := map[string]string{
		"error": apiErr.Message,
		"code":  string(apiErr.Code),
	}
	if id := obs.RequestIDFromContext(r.Context()); id != "" {
		body["requestId"] = id
	}
	retryAfterHint(w, apiErr)
	writeJSON(w, apiErr.Code.HTTPStatus(), body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a failed write
}
