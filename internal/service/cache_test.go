package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheDedup starts a second request for a key while the first is
// still computing and requires exactly one underlying computation.
func TestCacheDedup(t *testing.T) {
	c := newVerdictCache(8)
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, hit, err := c.Do(context.Background(), "k", func() (any, error) {
			calls.Add(1)
			close(entered)
			<-release
			return 42, nil
		})
		if err != nil || hit || v.(int) != 42 {
			t.Errorf("leader: got (%v, hit=%v, err=%v)", v, hit, err)
		}
	}()

	<-entered // the leader is inside fn; the next caller must dedup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, hit, err := c.Do(context.Background(), "k", func() (any, error) {
			calls.Add(1)
			return -1, nil
		})
		if err != nil || !hit || v.(int) != 42 {
			t.Errorf("waiter: got (%v, hit=%v, err=%v)", v, hit, err)
		}
	}()

	time.Sleep(10 * time.Millisecond) // let the waiter reach the flight
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("underlying computation ran %d times, want 1", n)
	}

	// A later request is a plain stored hit.
	v, hit, err := c.Do(context.Background(), "k", func() (any, error) {
		calls.Add(1)
		return -1, nil
	})
	if err != nil || !hit || v.(int) != 42 || calls.Load() != 1 {
		t.Fatalf("stored hit: got (%v, hit=%v, err=%v, calls=%d)", v, hit, err, calls.Load())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newVerdictCache(2)
	ctx := context.Background()
	get := func(key string) bool {
		_, hit, err := c.Do(ctx, key, func() (any, error) { return key, nil })
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}
	get("a")
	get("b")
	if !get("a") {
		t.Error("a should still be cached")
	}
	get("c") // evicts b (least recently used)
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if get("b") {
		t.Error("b should have been evicted")
	}
	if !get("c") {
		t.Error("c should still be cached")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newVerdictCache(8)
	ctx := context.Background()
	boom := errors.New("boom")
	_, hit, err := c.Do(ctx, "k", func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) || hit {
		t.Fatalf("got (hit=%v, err=%v), want the error uncached", hit, err)
	}
	v, hit, err := c.Do(ctx, "k", func() (any, error) { return 1, nil })
	if err != nil || hit || v.(int) != 1 {
		t.Fatalf("retry after error: got (%v, hit=%v, err=%v)", v, hit, err)
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := newVerdictCache(8)
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func() (any, error) {
		close(entered)
		<-release
		return 1, nil
	})
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "k", func() (any, error) { return 2, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter got %v, want deadline exceeded", err)
	}
}

// TestCachePanicFailsWaitersAndRepropagates is the regression test for
// the inflight leak: a panicking leader used to leave its flight entry
// behind with done never closed, so every later request for the key
// blocked forever. The leader must re-panic, the waiter must get an
// error (not a hang), and the key must be computable again afterwards.
func TestCachePanicFailsWaitersAndRepropagates(t *testing.T) {
	c := newVerdictCache(8)
	entered := make(chan struct{})
	release := make(chan struct{})

	leaderPanicked := make(chan any, 1)
	go func() {
		defer func() { leaderPanicked <- recover() }()
		c.Do(context.Background(), "k", func() (any, error) { //nolint:errcheck
			close(entered)
			<-release
			panic("decider exploded")
		})
	}()

	<-entered
	waiterErr := make(chan error, 1)
	go func() {
		_, hit, err := c.Do(context.Background(), "k", func() (any, error) { return -1, nil })
		if hit {
			err = errors.New("waiter reported a hit on a panicked flight")
		}
		waiterErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter join the flight
	close(release)

	select {
	case r := <-leaderPanicked:
		if r == nil || !strings.Contains(fmt.Sprint(r), "decider exploded") {
			t.Fatalf("leader panic not re-propagated: %v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("leader did not return")
	}
	select {
	case err := <-waiterErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("waiter got %v, want a panic-describing error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked on the panicked flight")
	}

	// The key is healthy again: the inflight entry is gone and nothing
	// poisoned was stored.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit, err := c.Do(context.Background(), "k", func() (any, error) { return 7, nil })
		if err != nil || hit || v.(int) != 7 {
			t.Errorf("recompute after panic: got (%v, hit=%v, err=%v)", v, hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("key still blocked after the panicked flight")
	}
}

func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := newVerdictCache(64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			v, _, err := c.Do(context.Background(), key, func() (any, error) { return key, nil })
			if err != nil || v.(string) != key {
				t.Errorf("key %s: got (%v, %v)", key, v, err)
			}
		}(i)
	}
	wg.Wait()
}
