package service

import (
	"testing"
	"time"
)

// TestLatencyQuantilesNearestRank pins the nearest-rank (ceiling)
// indexing of the latency window. The old floor indexing int(q*(n-1))
// under-reported the tail: the "p99" of a 2-sample window was its
// minimum.
func TestLatencyQuantilesNearestRank(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	t.Run("empty", func(t *testing.T) {
		var w latencyWindow
		w.init(8)
		if p50, p99 := w.quantiles(); p50 != 0 || p99 != 0 {
			t.Fatalf("empty window: got p50=%v p99=%v, want zeros", p50, p99)
		}
	})

	t.Run("one-sample", func(t *testing.T) {
		var w latencyWindow
		w.init(8)
		w.record(ms(7))
		if p50, p99 := w.quantiles(); p50 != ms(7) || p99 != ms(7) {
			t.Fatalf("1 sample: got p50=%v p99=%v, want both 7ms", p50, p99)
		}
	})

	t.Run("two-samples", func(t *testing.T) {
		var w latencyWindow
		w.init(8)
		w.record(ms(10))
		w.record(ms(20))
		p50, p99 := w.quantiles()
		if p50 != ms(10) {
			t.Errorf("2 samples: p50=%v, want 10ms", p50)
		}
		// The regression: floor indexing returned 10ms (the minimum).
		if p99 != ms(20) {
			t.Errorf("2 samples: p99=%v, want the maximum 20ms", p99)
		}
	})

	t.Run("hundred-samples", func(t *testing.T) {
		var w latencyWindow
		w.init(128)
		for i := 1; i <= 100; i++ {
			w.record(ms(i))
		}
		p50, p99 := w.quantiles()
		if p50 != ms(50) {
			t.Errorf("100 samples: p50=%v, want 50ms", p50)
		}
		if p99 != ms(99) {
			t.Errorf("100 samples: p99=%v, want 99ms", p99)
		}
	})

	t.Run("ring-wraps", func(t *testing.T) {
		var w latencyWindow
		w.init(4)
		for i := 1; i <= 10; i++ { // window keeps 7,8,9,10
			w.record(ms(i))
		}
		p50, p99 := w.quantiles()
		if p50 != ms(8) || p99 != ms(10) {
			t.Errorf("wrapped window: got p50=%v p99=%v, want 8ms/10ms", p50, p99)
		}
	})
}

func TestSnapshotRuntimeCounters(t *testing.T) {
	s := newStats()
	s.observe(2*time.Millisecond, 3*time.Millisecond, false)
	snap := s.snapshot(0, false)
	rt := snap.Runtime
	if rt.HeapAllocBytes == 0 || rt.TotalAllocBytes == 0 || rt.Mallocs == 0 {
		t.Errorf("runtime memory counters not populated: %+v", rt)
	}
	if rt.NumGoroutine <= 0 {
		t.Errorf("NumGoroutine = %d, want > 0", rt.NumGoroutine)
	}
	if rt.AllocBytesPerSec <= 0 {
		t.Errorf("AllocBytesPerSec = %v, want > 0", rt.AllocBytesPerSec)
	}
}
