package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestWorkerFreedPromptlyAfterTimeout is the regression test for the
// worker-starvation bug this module's cancellation plumbing fixes: a
// job that times out must release its worker within one engine check
// interval, not after grinding through its full trigger budget.
//
// The engine has a single worker. The first job is a divergent chase
// with the maximum request budget (10M triggers — tens of seconds of
// work) under a 150ms job timeout; before the fix the worker stayed
// pinned on it long after the caller's 504. The second, cheap job can
// then only succeed promptly if the slot actually came back.
func TestWorkerFreedPromptlyAfterTimeout(t *testing.T) {
	eng := New(Options{
		Workers:    1,
		JobTimeout: 150 * time.Millisecond,
	})
	defer eng.Close()

	heavy := Request{
		Kind:        KindChase,
		Rules:       example1,
		MaxTriggers: maxRequestBudget,
		MaxFacts:    maxRequestBudget,
	}
	start := time.Now()
	_, err := eng.Do(context.Background(), heavy)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("heavy job: got %v, want deadline exceeded", err)
	}

	light := Request{Kind: KindChase, Rules: example1, MaxTriggers: 10}
	resp, err := eng.Do(context.Background(), light)
	if err != nil {
		t.Fatalf("light job after timeout: %v", err)
	}
	if resp.Outcome != "budget-exceeded" {
		t.Fatalf("light job outcome %q, want budget-exceeded", resp.Outcome)
	}
	// Both jobs together: one 150ms timeout plus a trivial chase plus
	// the cancellation latency of ~1024 trigger applications. Seconds of
	// headroom for slow CI; today's code would need ~minutes.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("worker took %v to come back after a 150ms job timeout", elapsed)
	}
}

// TestDecideJobHonorsTimeout: the decide path (shared singleflight,
// detached context) also cancels its underlying analysis instead of
// running the oracle to its budget.
func TestDecideJobHonorsTimeout(t *testing.T) {
	eng := New(Options{
		Workers:    1,
		JobTimeout: 100 * time.Millisecond,
	})
	defer eng.Close()
	// Non-WA general set: Decide falls through to the bounded critical
	// chase, which is the long-running part the timeout must interrupt.
	req := Request{
		Kind:  KindDecide,
		Rules: `p(X), q(Y) -> s(X,Y). s(X,Y) -> p(Z), t(X,Z).`,
	}
	start := time.Now()
	_, err := eng.Do(context.Background(), req)
	// The default oracle budget (200k triggers) may or may not outlast
	// 100ms on a fast machine; either the deadline fired or the analysis
	// finished with an Unknown verdict. What must not happen is the
	// worker staying busy afterwards.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want nil or deadline exceeded", err)
	}
	light := Request{Kind: KindChase, Rules: example1, MaxTriggers: 10}
	if _, err := eng.Do(context.Background(), light); err != nil {
		t.Fatalf("light job after decide timeout: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("worker took %v to come back", elapsed)
	}
}

// TestCanceledClientCancelsChaseJob: a client hang-up (context cancel),
// not just a deadline, stops an in-flight chase job.
func TestCanceledClientCancelsChaseJob(t *testing.T) {
	eng := New(Options{Workers: 1, JobTimeout: time.Minute})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := eng.Do(ctx, Request{
		Kind:        KindChase,
		Rules:       example1,
		MaxTriggers: maxRequestBudget,
		MaxFacts:    maxRequestBudget,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := eng.Do(context.Background(), Request{Kind: KindChase, Rules: example1, MaxTriggers: 10}); err != nil {
		t.Fatalf("light job after client cancel: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to free the worker", elapsed)
	}
}
