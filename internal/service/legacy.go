package service

import (
	"context"
	"fmt"

	"chaseterm/api"
)

// This file is the v1 compatibility shim: the flat request/response
// model the service spoke before the versioned api package existed.
// The /v1/* routes and the Do/Batch entry points keep serving it
// unchanged; internally every job is converted to the api wire model
// and runs through Engine.Analyze, so v1 and v2 requests share the
// cache, the pool, and the stats. New callers should use the api types
// (POST /v2/analyze, Engine.Analyze).

// Kind selects the analysis a v1 Job runs.
type Kind string

const (
	KindClassify Kind = "classify"
	KindDecide   Kind = "decide"
	KindChase    Kind = "chase"
)

// Request is one v1 analysis job. Kind is implied by the HTTP endpoint
// for the single-job routes and required per job in a batch.
type Request struct {
	Kind  Kind   `json:"kind,omitempty"`
	Rules string `json:"rules"`
	// Variant applies to decide and chase jobs; empty means
	// semi-oblivious, the variant the paper's exact procedures target.
	Variant string `json:"variant,omitempty"`
	// Database holds ground facts for chase jobs; empty means chase the
	// critical instance of the rule set.
	Database string `json:"database,omitempty"`

	// Decide budgets (zero = library defaults).
	MaxShapes    int `json:"maxShapes,omitempty"`
	MaxNodeTypes int `json:"maxNodeTypes,omitempty"`

	// Chase budgets (zero = library defaults).
	MaxTriggers int `json:"maxTriggers,omitempty"`
	MaxFacts    int `json:"maxFacts,omitempty"`
	MaxDepth    int `json:"maxDepth,omitempty"`
	// ReturnFacts includes the final instance in a chase response;
	// off by default because instances can be large.
	ReturnFacts bool `json:"returnFacts,omitempty"`
}

// v1KindValid reports whether k was a kind the v1 wire defined.
// "acyclicity" exists only in the v2 model; letting it through the v1
// shim would run an analysis whose result the flat Response cannot
// carry.
func v1KindValid(k Kind) bool {
	switch k {
	case KindClassify, KindDecide, KindChase:
		return true
	}
	return false
}

// toAPI lifts a v1 request into the versioned wire model.
func (r Request) toAPI() api.AnalyzeRequest {
	database := r.Database
	if r.Kind == KindDecide {
		// v1 decide jobs always answered the all-instance problem and
		// ignored a stray database field; keep that contract — the
		// fixed-database decision is a v2 capability.
		database = ""
	}
	return api.AnalyzeRequest{
		Kind:         api.Kind(r.Kind),
		Rules:        r.Rules,
		Variant:      r.Variant,
		Database:     database,
		MaxShapes:    r.MaxShapes,
		MaxNodeTypes: r.MaxNodeTypes,
		MaxTriggers:  r.MaxTriggers,
		MaxFacts:     r.MaxFacts,
		MaxDepth:     r.MaxDepth,
		ReturnFacts:  r.ReturnFacts,
	}
}

// Response is the flat v1 result of one job. Exactly the fields
// relevant to the job's kind are populated; Error is set instead when a
// batch entry fails (single-job routes report errors at the HTTP
// level).
type Response struct {
	Kind        Kind   `json:"kind"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Error       string `json:"error,omitempty"`

	// classify. The numeric fields are pointers so that a legitimate
	// zero (a nullary-predicate schema has MaxArity 0) is emitted
	// rather than dropped by omitempty: present ⇔ meaningful.
	Class      string   `json:"class,omitempty"`
	NumRules   *int     `json:"numRules,omitempty"`
	MaxArity   *int     `json:"maxArity,omitempty"`
	Predicates []string `json:"predicates,omitempty"`

	// decide
	Terminates  string `json:"terminates,omitempty"`
	Method      string `json:"method,omitempty"`
	Witness     string `json:"witness,omitempty"`
	SearchSpace *int   `json:"searchSpace,omitempty"`
	// Cached reports that the verdict came from the cache (stored entry
	// or a deduplicated concurrent flight).
	Cached bool `json:"cached,omitempty"`

	// chase
	Outcome string      `json:"outcome,omitempty"`
	Chase   *ChaseStats `json:"chaseStats,omitempty"`
	Facts   []string    `json:"facts,omitempty"`
}

// ChaseStats mirrors chaseterm.ChaseStats with JSON tags.
type ChaseStats struct {
	InitialFacts      int `json:"initialFacts"`
	FactsAdded        int `json:"factsAdded"`
	TriggersApplied   int `json:"triggersApplied"`
	TriggersNoop      int `json:"triggersNoop"`
	TriggersSatisfied int `json:"triggersSatisfied"`
	MaxTermDepth      int `json:"maxTermDepth"`
}

// fromAPI flattens a v2 response into the v1 shape, populating exactly
// the fields the v1 wire populated for the job's kind.
func fromAPI(resp *api.AnalyzeResponse) *Response {
	out := &Response{
		Kind:        Kind(resp.Kind),
		Fingerprint: resp.Fingerprint,
		Cached:      resp.Cached,
	}
	switch resp.Kind {
	case api.KindClassify:
		out.Class = resp.Class
		out.NumRules = resp.NumRules
		out.MaxArity = resp.MaxArity
		out.Predicates = resp.Predicates
	case api.KindDecide:
		if d := resp.Decision; d != nil {
			out.Class = d.Class
			out.Terminates = d.Terminates
			out.Method = d.Method
			out.Witness = d.Witness
			out.SearchSpace = intp(d.SearchSpace)
		}
	case api.KindChase:
		if c := resp.Chase; c != nil {
			out.Outcome = c.Outcome
			out.Chase = &ChaseStats{
				InitialFacts:      c.Stats.InitialFacts,
				FactsAdded:        c.Stats.FactsAdded,
				TriggersApplied:   c.Stats.TriggersApplied,
				TriggersNoop:      c.Stats.TriggersNoop,
				TriggersSatisfied: c.Stats.TriggersSatisfied,
				MaxTermDepth:      c.Stats.MaxTermDepth,
			}
			out.Facts = c.Facts
		}
	}
	return out
}

// Do runs one v1 job to completion and returns its response. Client
// mistakes are reported as ErrBadRequest wrappers; an expired per-job
// timeout or caller context surfaces as the context error.
func (e *Engine) Do(ctx context.Context, req Request) (*Response, error) {
	if !v1KindValid(req.Kind) {
		return nil, fmt.Errorf("%w: unknown job kind %q", ErrBadRequest, req.Kind)
	}
	resp, err := e.Analyze(ctx, req.toAPI())
	if err != nil {
		return nil, err
	}
	return fromAPI(resp), nil
}

// Batch runs the v1 jobs across the worker pool and returns responses
// in input order. Per-job failures are reported inline via
// Response.Error; the call itself fails only for client mistakes at the
// batch level.
func (e *Engine) Batch(ctx context.Context, reqs []Request) ([]*Response, error) {
	if err := e.checkBatchSize(len(reqs)); err != nil {
		return nil, err
	}
	out := make([]*Response, len(reqs))
	fanOut(len(reqs), func(i int) {
		resp, err := e.Do(ctx, reqs[i])
		if err != nil {
			resp = &Response{Kind: reqs[i].Kind, Error: err.Error()}
		}
		out[i] = resp
	})
	return out, nil
}
