package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"chaseterm"
	"chaseterm/api"
	"chaseterm/internal/obs"
)

// streamRelay bridges the library's ChaseSink to the wire: every batch
// and heartbeat the facade delivers becomes one api.StreamEvent handed
// to emit. It runs on the producing job's goroutine; emitted is read by
// ChaseStream only after the producer has fully finished (DoSync), so
// no synchronization beyond the pool's result channel is needed.
type streamRelay struct {
	emit    func(api.StreamEvent)
	stats   *Stats
	emitted bool
}

func (s *streamRelay) EmitFacts(facts []string, st chaseterm.ChaseStats) {
	s.emitted = true
	s.stats.streamFacts.Add(int64(len(facts)))
	s.emit(api.StreamEvent{Event: api.StreamFacts, Facts: facts, Stats: apiChaseStats(st)})
}

func (s *streamRelay) Progress(st chaseterm.ChaseStats) {
	s.emitted = true
	s.emit(api.StreamEvent{Event: api.StreamProgress, Stats: apiChaseStats(st)})
}

// ChaseStream runs one chase job and delivers its result incrementally
// through emit as api.StreamEvents: "facts" batches and "progress"
// heartbeats while the run is live, then exactly one terminal "done" or
// "error" event. The producer runs inside a worker slot (admission
// control applies exactly as for Analyze) and is bounded by the per-job
// timeout; cancelling ctx — which the HTTP layer wires to the client
// connection — aborts the chase engine within one cancellation-check
// interval, so a dropped stream never runs to its full budget.
//
// Contract: a non-nil return means the stream never started — no event
// was emitted — and the error should be reported at the transport
// level. Once events have flowed, every outcome (completion,
// cancellation, timeout, panic) is delivered as a terminal event and
// ChaseStream returns nil.
func (e *Engine) ChaseStream(ctx context.Context, req api.AnalyzeRequest, emit func(api.StreamEvent)) error {
	if req.Kind == "" {
		// The route already names the analysis; an explicit kind is
		// only accepted when it agrees.
		req.Kind = api.KindChase
	}
	if req.Kind != api.KindChase {
		return fmt.Errorf("%w: streaming supports kind %q, got %q", ErrBadRequest, api.KindChase, req.Kind)
	}
	if req.WithAcyclicity {
		// The stream protocol has no event to carry an acyclicity
		// report; rejecting beats silently dropping the option.
		return fmt.Errorf("%w: withAcyclicity is not supported on the streaming endpoint", ErrBadRequest)
	}
	rules, err := chaseterm.ParseRules(req.Rules)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := checkBudgets(req); err != nil {
		return err
	}
	// ReturnFacts is deliberately inert here: the facts ARE the stream.
	opts, err := e.chaseRequestOptions(req)
	if err != nil {
		return err
	}

	ctx, tr, owned := e.beginRequest(ctx)
	e.stats.inFlight.Add(1)
	defer e.stats.inFlight.Add(-1)
	e.stats.streams.Add(1)
	start := time.Now()

	// Every event — batches, heartbeats, terminals — counts once on the
	// stream-events series.
	counted := func(ev api.StreamEvent) {
		e.metrics.streamEvents.Add(1)
		emit(ev)
	}
	relay := &streamRelay{emit: counted, stats: e.stats}
	opts = append(opts, chaseterm.WithChaseSink(relay))

	jctx, cancel := context.WithTimeout(ctx, e.opts.JobTimeout)
	defer cancel()
	// DoSync (not Do): the producing fn emits onto the caller's writer,
	// so the call must not return while the producer is still running —
	// even on a context that fired. The engine's cancellation poll keeps
	// that residual wait to one check interval.
	val, runErr := e.pool.DoSync(jctx, func(ctx context.Context) (any, error) {
		return e.facade.Analyze(ctx, chaseterm.NewRequest(chaseterm.AnalyzeChase, rules, opts...))
	})
	total := time.Since(start)
	queue, exec := e.endRequest(endpointStream, tr, total, runErr != nil)
	if rep, ok := val.(*chaseterm.Report); ok && rep != nil && rep.Engine != nil {
		e.metrics.addEngine(rep.Engine.TriggersApplied, rep.Engine.TriggersNoop,
			rep.Engine.TriggersSatisfied, rep.Engine.FactsAdded)
	}
	e.logRequest(ctx, endpointStream, api.KindChase, streamLogResponse(val), runErr, queue, exec, total)
	// DoSync guarantees the producer has returned, so nothing can still
	// record into the trace — safe to recycle even on error paths.
	if owned {
		defer obs.PutTrace(tr)
	}

	if runErr == nil {
		rep := val.(*chaseterm.Report)
		counted(api.StreamEvent{
			Event:   api.StreamDone,
			Outcome: rep.Chase.Outcome.String(),
			Stats:   apiChaseStats(rep.Chase.Stats),
		})
		return nil
	}
	// A canceled run that produced a partial report really was aborted
	// mid-flight; a cancellation with no report never entered the engine
	// (e.g. the client vanished while the job sat in the worker queue)
	// and must not count as an abort.
	partial, _ := val.(*chaseterm.Report)
	if errors.Is(runErr, context.Canceled) && partial != nil && partial.Chase != nil {
		e.stats.streamsAborted.Add(1)
	}
	if !relay.emitted {
		// Nothing reached the client yet — a queue-wait timeout, an
		// immediately-canceled request, engine shutdown, or a run that
		// failed before its first batch. A transport-level status is
		// strictly more useful than a 200 stream holding one error.
		return wrapExecErr(runErr)
	}
	ev := api.StreamEvent{Event: api.StreamError, Error: toAPIError(wrapExecErr(runErr))}
	if partial != nil && partial.Chase != nil {
		// A canceled run still reports how far it got.
		ev.Outcome = partial.Chase.Outcome.String()
		ev.Stats = apiChaseStats(partial.Chase.Stats)
	}
	counted(ev)
	return nil
}

// streamLogResponse distills whatever report the producer returned —
// complete or partial — into the response shape logRequest reads its
// fingerprint and outcome fields from.
func streamLogResponse(val any) *api.AnalyzeResponse {
	rep, ok := val.(*chaseterm.Report)
	if !ok || rep == nil {
		return nil
	}
	resp := &api.AnalyzeResponse{Kind: api.KindChase, Fingerprint: rep.Fingerprint}
	if rep.Chase != nil {
		resp.Chase = &api.ChaseRun{Outcome: rep.Chase.Outcome.String()}
	}
	return resp
}
