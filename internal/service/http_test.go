package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chaseterm"
)

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	eng := New(opts)
	srv := httptest.NewServer(NewHandler(eng))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" {
		t.Fatalf("body %v", out)
	}
}

func TestClassifyEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v1/classify", Request{
		Rules: `gate(X,Y), live(X) -> out(Y,Z), live(Z).
		        out(Y,Z) -> gate(Y,Z).`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out Response
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Class != "guarded" || out.NumRules == nil || *out.NumRules != 2 ||
		out.MaxArity == nil || *out.MaxArity != 2 {
		t.Errorf("classify got %+v", out)
	}
	want := []string{"gate/2", "live/1", "out/2"}
	if len(out.Predicates) != len(want) {
		t.Fatalf("predicates %v, want %v", out.Predicates, want)
	}
	for i := range want {
		if out.Predicates[i] != want[i] {
			t.Fatalf("predicates %v, want %v", out.Predicates, want)
		}
	}
	if len(out.Fingerprint) != 64 {
		t.Errorf("fingerprint %q", out.Fingerprint)
	}
}

func TestDecideEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v1/decide", Request{Rules: example1, Variant: "so"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out Response
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Terminates != "non-terminating" || out.Class != "simple-linear" {
		t.Errorf("decide got %+v", out)
	}
	if out.Method == "" || out.Witness == "" || out.Cached {
		t.Errorf("decide metadata wrong: %+v", out)
	}

	// The same request again is a cache hit.
	_, data = postJSON(t, srv.URL+"/v1/decide", Request{Rules: example1, Variant: "so"})
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Error("repeat decide not served from cache")
	}
}

func TestChaseEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	rules := `professor(X) -> teaches(X,C).
	          teaches(X,C) -> course(C).`
	resp, data := postJSON(t, srv.URL+"/v1/chase", Request{
		Rules:       rules,
		Database:    `professor(turing).`,
		Variant:     "r",
		ReturnFacts: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out Response
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Outcome != "terminated" || out.Chase == nil || out.Chase.FactsAdded == 0 {
		t.Errorf("chase got %+v", out)
	}
	found := false
	for _, f := range out.Facts {
		if strings.HasPrefix(f, "course(") {
			found = true
		}
	}
	if !found {
		t.Errorf("chase facts missing derived course atom: %v", out.Facts)
	}

	// Empty database chases the critical instance (divergent here, so a
	// tight budget must report budget-exceeded, not hang).
	resp, data = postJSON(t, srv.URL+"/v1/chase", Request{
		Rules:       example1,
		Variant:     "so",
		MaxTriggers: 100,
		MaxFacts:    100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("critical chase status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Outcome == "terminated" {
		t.Errorf("critical chase of Example 1 cannot terminate: %+v", out)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 4})
	jobs := []Request{
		{Kind: KindClassify, Rules: `p(X) -> q(X).`},
		{Kind: KindDecide, Rules: example1, Variant: "so"},
		{Kind: KindDecide, Rules: `broken`},
		{Kind: KindChase, Rules: `p(X) -> q(X).`, Database: `p(a).`},
	}
	resp, data := postJSON(t, srv.URL+"/v1/batch", map[string]any{"jobs": jobs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Results []Response `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(jobs))
	}
	if out.Results[0].Class != "simple-linear" {
		t.Errorf("result 0: %+v", out.Results[0])
	}
	if out.Results[1].Terminates != "non-terminating" {
		t.Errorf("result 1: %+v", out.Results[1])
	}
	if out.Results[2].Error == "" {
		t.Errorf("result 2 should carry the parse error: %+v", out.Results[2])
	}
	if out.Results[3].Outcome != "terminated" {
		t.Errorf("result 3: %+v", out.Results[3])
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 2})
	postJSON(t, srv.URL+"/v1/decide", Request{Rules: example1})
	postJSON(t, srv.URL+"/v1/decide", Request{Rules: example1})
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.JobsServed != 2 || snap.CacheMisses != 1 || snap.CacheHits != 1 || snap.CacheEntries != 1 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.P50Millis < 0 || snap.P99Millis < snap.P50Millis {
		t.Errorf("latency quantiles inconsistent: %+v", snap)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	slow := make(chan struct{})
	defer close(slow)
	srv := newTestServer(t, Options{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		DecideFunc: func(_ context.Context, _ *chaseterm.RuleSet, _ chaseterm.Variant, _ chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			<-slow
			return nil, nil
		},
	})

	// Malformed JSON → 400.
	resp, err := http.Post(srv.URL+"/v1/decide", "application/json", strings.NewReader(`{"rules": 5`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	// Bad rules → 400 with a JSON error body.
	resp, data := postJSON(t, srv.URL+"/v1/decide", Request{Rules: `nope nope`})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rules: status %d, want 400", resp.StatusCode)
	}
	var out map[string]string
	if err := json.Unmarshal(data, &out); err != nil || out["error"] == "" {
		t.Errorf("bad rules: error body %s", data)
	}

	// Unknown field → 400 (DisallowUnknownFields guards against typos).
	resp, _ = postJSON(t, srv.URL+"/v1/decide", map[string]any{"rules": example1, "varient": "so"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// Wrong method → 405.
	resp, err = http.Get(srv.URL + "/v1/decide")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on decide: status %d, want 405", resp.StatusCode)
	}

	// Job timeout → 504.
	resp, data = postJSON(t, srv.URL+"/v1/decide", Request{Rules: example1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timeout: status %d (%s), want 504", resp.StatusCode, data)
	}
}

func TestHTTPOversizedBodyMapsTo413(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	// Valid JSON whose string payload crosses the byte cap, so the
	// decoder actually reads past MaxBytesReader's limit.
	big := `{"rules": "` + strings.Repeat("x", maxBodyBytes+1) + `"}`
	resp, err := http.Post(srv.URL+"/v1/classify", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestHTTPBudgetExceededMapsTo422(t *testing.T) {
	srv := newTestServer(t, Options{Workers: 1})
	resp, data := postJSON(t, srv.URL+"/v1/decide", Request{
		Rules: `gate(X,Y), live(X) -> out(Y,Z), live(Z).
		        out(Y,Z) -> gate(Y,Z).`,
		MaxNodeTypes: 1,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("budget exceeded: status %d (%s), want 422", resp.StatusCode, data)
	}
	var out map[string]string
	if err := json.Unmarshal(data, &out); err != nil || out["error"] == "" {
		t.Errorf("budget exceeded: error body %s", data)
	}
}
