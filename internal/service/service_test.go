package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chaseterm"
)

const example1 = `person(X) -> hasFather(X,Y), person(Y).`

// TestDecideCollapsesConcurrentIdenticalRequests is the acceptance
// check of the subsystem: 8 concurrent identical /v1/decide requests
// must cost exactly one underlying DecideTermination call, and
// /v1/stats must report the corresponding hit/miss split (7 hits, 1
// miss).
func TestDecideCollapsesConcurrentIdenticalRequests(t *testing.T) {
	const clients = 8
	var calls atomic.Int64
	var eng *Engine
	eng = New(Options{
		Workers:    4,
		JobTimeout: 30 * time.Second,
		DecideFunc: func(_ context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			calls.Add(1)
			// Hold the decision open until every client is inside the
			// engine, so all of them overlap this single computation.
			deadline := time.Now().Add(10 * time.Second)
			for eng.Stats().InFlight() < clients && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			return chaseterm.DecideTerminationOpts(rules, v, opt)
		},
	})
	defer eng.Close()
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	body, _ := json.Marshal(Request{Rules: example1, Variant: "so"})
	var wg sync.WaitGroup
	var cachedCount atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/decide", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				t.Errorf("status %d: %s", resp.StatusCode, msg)
				return
			}
			var out Response
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Error(err)
				return
			}
			if out.Terminates != "non-terminating" {
				t.Errorf("verdict %q, want non-terminating", out.Terminates)
			}
			if out.Cached {
				cachedCount.Add(1)
			}
		}()
	}
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Errorf("DecideTermination ran %d times for %d identical requests, want 1", n, clients)
	}
	if n := cachedCount.Load(); n != clients-1 {
		t.Errorf("%d responses marked cached, want %d", n, clients-1)
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.CacheMisses != 1 || snap.CacheHits != clients-1 {
		t.Errorf("stats report %d hits / %d misses, want %d / 1",
			snap.CacheHits, snap.CacheMisses, clients-1)
	}
	if snap.JobsServed < clients {
		t.Errorf("stats report %d jobs served, want >= %d", snap.JobsServed, clients)
	}
}

// TestBatchPreservesOrder fans distinguishable jobs across the pool and
// requires responses in input order.
func TestBatchPreservesOrder(t *testing.T) {
	eng := New(Options{Workers: 4})
	defer eng.Close()
	const n = 12
	reqs := make([]Request, n)
	for i := range reqs {
		// Each job's rule set has a distinct predicate name, so its
		// fingerprint identifies which input produced it.
		reqs[i] = Request{Kind: KindClassify, Rules: fmt.Sprintf("p%d(X) -> q%d(X,Y).", i, i)}
	}
	resps, err := eng.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != n {
		t.Fatalf("got %d responses, want %d", len(resps), n)
	}
	for i, r := range resps {
		want := chaseterm.MustParseRules(reqs[i].Rules).Fingerprint()
		if r.Error != "" {
			t.Errorf("job %d failed: %s", i, r.Error)
			continue
		}
		if r.Fingerprint != want {
			t.Errorf("response %d carries the wrong job's result", i)
		}
	}
}

func TestBatchReportsPerJobErrors(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	resps, err := eng.Batch(context.Background(), []Request{
		{Kind: KindClassify, Rules: `p(X) -> q(X).`},
		{Kind: KindClassify, Rules: `this is not a rule`},
		{Kind: "nonsense", Rules: `p(X) -> q(X).`},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Error != "" {
		t.Errorf("healthy job failed: %s", resps[0].Error)
	}
	if resps[1].Error == "" || resps[2].Error == "" {
		t.Errorf("broken jobs did not report errors: %+v", resps[1:])
	}
}

func TestBatchLimits(t *testing.T) {
	eng := New(Options{Workers: 1, MaxBatch: 2})
	defer eng.Close()
	if _, err := eng.Batch(context.Background(), nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty batch: got %v, want ErrBadRequest", err)
	}
	over := []Request{{Kind: KindClassify}, {Kind: KindClassify}, {Kind: KindClassify}}
	if _, err := eng.Batch(context.Background(), over); !errors.Is(err, ErrBadRequest) {
		t.Errorf("oversized batch: got %v, want ErrBadRequest", err)
	}
}

// TestJobTimeout requires a slow decision to be cut off at the per-job
// timeout with the caller seeing the deadline error promptly.
func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	eng := New(Options{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		DecideFunc: func(_ context.Context, _ *chaseterm.RuleSet, _ chaseterm.Variant, _ chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			<-release
			return nil, errors.New("unreachable")
		},
	})
	defer eng.Close()
	// Release the stuck decision before Close: the worker holds its
	// slot until the abandoned computation winds down (LIFO defers).
	defer close(release)
	start := time.Now()
	_, err := eng.Do(context.Background(), Request{Kind: KindDecide, Rules: example1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v to surface", d)
	}
	// The timed-out attempt must not have poisoned the cache.
	if eng.StatsSnapshot().CacheEntries != 0 {
		t.Error("failed decision was cached")
	}
}

// TestFlightSurvivesLeaderCancellation: a deduplicated decision serves
// every waiter, so the first requester hanging up must not fail the
// rest.
func TestFlightSurvivesLeaderCancellation(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	eng := New(Options{
		Workers: 2,
		DecideFunc: func(_ context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			close(started)
			<-release
			return chaseterm.DecideTerminationOpts(rules, v, opt)
		},
	})
	defer eng.Close()

	req := Request{Kind: KindDecide, Rules: example1}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	go eng.Do(leaderCtx, req) //nolint:errcheck // the leader's fate is not under test
	<-started

	waiterErr := make(chan error, 1)
	var waiterResp *Response
	go func() {
		resp, err := eng.Do(context.Background(), req)
		waiterResp = resp
		waiterErr <- err
	}()
	// Let the waiter join the in-progress flight, then hang up the
	// leader and let the decision finish.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()
	time.Sleep(20 * time.Millisecond)
	close(release)

	select {
	case err := <-waiterErr:
		if err != nil {
			t.Fatalf("waiter failed after leader cancellation: %v", err)
		}
		if waiterResp.Terminates != "non-terminating" {
			t.Fatalf("waiter got %+v", waiterResp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never completed")
	}
}

// TestClassifyEmitsZeroValues: a nullary-predicate schema really has
// MaxArity 0; the JSON must carry the 0 rather than omit the field.
func TestClassifyEmitsZeroValues(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	resp, err := eng.Do(context.Background(), Request{Kind: KindClassify, Rules: `p -> q.`})
	if err != nil {
		t.Fatal(err)
	}
	if resp.MaxArity == nil || *resp.MaxArity != 0 {
		t.Fatalf("MaxArity = %v, want explicit 0", resp.MaxArity)
	}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"maxArity":0`)) {
		t.Errorf("serialized response drops the zero arity: %s", data)
	}
}

// TestExplicitDefaultBudgetHitsCache: spelling out the library-default
// budget must land on the same cache entry as omitting it.
func TestExplicitDefaultBudgetHitsCache(t *testing.T) {
	var calls atomic.Int64
	eng := New(Options{
		Workers: 2,
		DecideFunc: func(_ context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			calls.Add(1)
			return chaseterm.DecideTerminationOpts(rules, v, opt)
		},
	})
	defer eng.Close()
	ctx := context.Background()
	if _, err := eng.Do(ctx, Request{Kind: KindDecide, Rules: example1}); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Do(ctx, Request{Kind: KindDecide, Rules: example1, MaxShapes: chaseterm.DefaultMaxShapes})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 || !resp.Cached {
		t.Errorf("explicit default budget missed the cache (calls=%d, cached=%v)", calls.Load(), resp.Cached)
	}
}

// TestBudgetErrorsAreUnprocessable: an analysis that gives up on its
// search-space budget is the instance's problem, not a server fault.
func TestBudgetErrorsAreUnprocessable(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	_, err := eng.Do(context.Background(), Request{
		Kind: KindDecide,
		// A guarded set whose forest needs several node types; a cap of
		// one forces the decider to give up on its budget.
		Rules: `gate(X,Y), live(X) -> out(Y,Z), live(Z).
		        out(Y,Z) -> gate(Y,Z).`,
		MaxNodeTypes: 1,
	})
	if !errors.Is(err, ErrUnprocessable) {
		t.Fatalf("got %v, want ErrUnprocessable", err)
	}
}

func TestDoValidatesRequests(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	ctx := context.Background()
	cases := []Request{
		{Kind: KindDecide, Rules: `syntax error`},
		{Kind: KindDecide, Rules: example1, Variant: "bogus"},
		{Kind: KindChase, Rules: example1, Database: `not facts ->`},
		{Kind: "mystery", Rules: example1},
		// Budgets outside [0, maxRequestBudget] are rejected up front:
		// a worker stays occupied until its computation winds down, so
		// an absurd budget would let one request pin it for hours.
		{Kind: KindChase, Rules: example1, MaxFacts: maxRequestBudget + 1},
		{Kind: KindChase, Rules: example1, MaxTriggers: -5},
		{Kind: KindDecide, Rules: example1, MaxShapes: maxRequestBudget + 1},
	}
	for _, req := range cases {
		if _, err := eng.Do(ctx, req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%+v: got %v, want ErrBadRequest", req, err)
		}
	}
}

func TestDecideDistinctOptionsNotConflated(t *testing.T) {
	var calls atomic.Int64
	eng := New(Options{
		Workers: 2,
		DecideFunc: func(_ context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			calls.Add(1)
			return chaseterm.DecideTerminationOpts(rules, v, opt)
		},
	})
	defer eng.Close()
	ctx := context.Background()
	for _, req := range []Request{
		{Kind: KindDecide, Rules: example1, Variant: "so"},
		{Kind: KindDecide, Rules: example1, Variant: "o"},
		{Kind: KindDecide, Rules: example1, Variant: "so", MaxShapes: 500},
	} {
		if _, err := eng.Do(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("distinct (variant, options) keys ran %d decisions, want 3", n)
	}
	// Alpha-renamed, reordered rules hit the same key.
	renamed := `person(P) -> hasFather(P,Dad), person(Dad).`
	if _, err := eng.Do(ctx, Request{Kind: KindDecide, Rules: renamed, Variant: "so"}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("alpha-equivalent rule set missed the cache (%d calls)", n)
	}
}
