package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"chaseterm"
	"chaseterm/api"
	"chaseterm/internal/store"
)

// openTestStore opens a FileStore over the given MemFS — the same
// image can back several engines in sequence, simulating restarts.
func openTestStore(t *testing.T, fs *store.MemFS) *store.FileStore {
	t.Helper()
	s, err := store.Open("verdicts.db", store.Options{Fsync: store.FsyncAlways, FS: fs})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

func postDecide(t *testing.T, url, rules string) *api.AnalyzeResponse {
	t.Helper()
	body, _ := json.Marshal(api.AnalyzeRequest{Kind: api.KindDecide, Rules: rules})
	resp, err := http.Post(url+"/v2/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v2/analyze: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out api.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &out
}

// TestStoreWarmRestart is the acceptance check of the persistence
// tier: a verdict decided by one engine is served as a cache hit by a
// second engine sharing only the store file — zero recomputation after
// a "restart".
func TestStoreWarmRestart(t *testing.T) {
	fs := store.NewMemFS()
	var calls atomic.Int64
	decide := func(_ context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
		calls.Add(1)
		return chaseterm.DecideTerminationOpts(rules, v, opt)
	}

	// First process: compute and write through.
	st1 := openTestStore(t, fs)
	eng1 := New(Options{Workers: 2, Store: st1, DecideFunc: decide})
	srv1 := httptest.NewServer(NewHandler(eng1))
	first := postDecide(t, srv1.URL, example1)
	if first.Cached || first.Decision == nil {
		t.Fatalf("first decide: cached=%v decision=%v, want fresh compute", first.Cached, first.Decision)
	}
	snap1 := eng1.StatsSnapshot()
	if snap1.StoreMisses != 1 || snap1.StoreHits != 0 || snap1.StoreErrors != 0 {
		t.Fatalf("first process store counters = %+v", snap1)
	}
	srv1.Close()
	eng1.Close()
	if err := st1.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	// Second process: same file, empty memory cache.
	st2 := openTestStore(t, fs)
	defer st2.Close()
	eng2 := New(Options{Workers: 2, Store: st2, DecideFunc: decide})
	defer eng2.Close()
	srv2 := httptest.NewServer(NewHandler(eng2))
	defer srv2.Close()
	second := postDecide(t, srv2.URL, example1)
	if !second.Cached {
		t.Fatal("restarted engine did not serve the persisted verdict as a cache hit")
	}
	if second.Decision == nil || second.Decision.Terminates != first.Decision.Terminates {
		t.Fatalf("restarted decision %+v, want %+v", second.Decision, first.Decision)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d underlying decisions across the restart, want 1", got)
	}
	snap2 := eng2.StatsSnapshot()
	if snap2.StoreHits != 1 || snap2.StoreDegraded {
		t.Fatalf("second process store counters = %+v, want 1 hit, not degraded", snap2)
	}

	// A third request in the same process is a pure memory hit: the
	// store is not re-probed.
	third := postDecide(t, srv2.URL, example1)
	if !third.Cached {
		t.Fatal("memory re-hit not cached")
	}
	if snap := eng2.StatsSnapshot(); snap.StoreHits != 1 {
		t.Fatalf("StoreHits = %d after memory hit, want still 1", snap.StoreHits)
	}
}

// TestStorePersistsPortfolioProvenance: a portfolio decision's
// provenance (decidedBy, rungs) must survive the restart — the store
// persists the full wire decision, not just the verdict.
func TestStorePersistsPortfolioProvenance(t *testing.T) {
	fs := store.NewMemFS()
	st1 := openTestStore(t, fs)
	eng1 := New(Options{Workers: 2, Store: st1})
	srv1 := httptest.NewServer(NewHandler(eng1))
	body, _ := json.Marshal(api.AnalyzeRequest{Kind: api.KindDecide, Rules: example1, Portfolio: true})
	resp, err := http.Post(srv1.URL+"/v2/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var first api.AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if first.Decision == nil || first.Decision.DecidedBy == "" {
		t.Fatalf("portfolio decide returned %+v, want decidedBy provenance", first.Decision)
	}
	srv1.Close()
	eng1.Close()
	st1.Close()

	st2 := openTestStore(t, fs)
	defer st2.Close()
	eng2 := New(Options{Workers: 2, Store: st2})
	defer eng2.Close()
	srv2 := httptest.NewServer(NewHandler(eng2))
	defer srv2.Close()
	resp2, err := http.Post(srv2.URL+"/v2/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp2.Body.Close()
	var second api.AnalyzeResponse
	if err := json.NewDecoder(resp2.Body).Decode(&second); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !second.Cached {
		t.Fatal("portfolio verdict not store-warm after restart")
	}
	if second.Decision.DecidedBy != first.Decision.DecidedBy || len(second.Decision.Rungs) != len(first.Decision.Rungs) {
		t.Fatalf("provenance lost across restart: got %+v, want %+v", second.Decision, first.Decision)
	}
}

// TestStoreDegradationIsNonFatal: with the store's backend down, the
// engine keeps serving 200s memory-only, /healthz reports degraded,
// and /v1/stats flips storeDegraded — the store is a cache, never a
// dependency.
func TestStoreDegradationIsNonFatal(t *testing.T) {
	broken := store.NewResilient(func() (store.VerdictStore, error) {
		return nil, errors.New("disk is gone")
	}, store.WithBackoff(time.Hour, time.Hour))
	defer broken.Close()
	eng := New(Options{Workers: 2, Store: broken})
	defer eng.Close()
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	out := postDecide(t, srv.URL, example1)
	if out.Decision == nil {
		t.Fatal("no decision while store degraded")
	}
	snap := eng.StatsSnapshot()
	if !snap.StoreDegraded {
		t.Fatal("storeDegraded not reported in stats")
	}
	if snap.StoreErrors != 0 {
		// The degraded short-circuit is not an error; the open failure
		// was logged by the wrapper, not billed per-request.
		t.Fatalf("StoreErrors = %d for degraded short-circuits, want 0", snap.StoreErrors)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200 while degraded", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "degraded" || h.Store == nil || !h.Store.Degraded || h.Store.LastError == "" {
		t.Fatalf("healthz = %+v, want degraded with store detail", h)
	}
}

// TestHealthzWithoutStore: the no-store configuration keeps the old
// one-field body shape ("status": "ok", no store block).
func TestHealthzWithoutStore(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(raw["status"]) != `"ok"` {
		t.Fatalf("status = %s, want ok", raw["status"])
	}
	if _, present := raw["store"]; present {
		t.Fatal("store block present without a configured store")
	}
}

// TestStoreErrorFallsThroughToCompute: a store whose Get fails must
// cost one counted error and a recomputation — never a failed request.
func TestStoreErrorFallsThroughToCompute(t *testing.T) {
	var calls atomic.Int64
	eng := New(Options{
		Workers: 2,
		Store:   failingStore{},
		DecideFunc: func(_ context.Context, rules *chaseterm.RuleSet, v chaseterm.Variant, opt chaseterm.DecideOptions) (*chaseterm.Verdict, error) {
			calls.Add(1)
			return chaseterm.DecideTerminationOpts(rules, v, opt)
		},
	})
	defer eng.Close()
	srv := httptest.NewServer(NewHandler(eng))
	defer srv.Close()

	out := postDecide(t, srv.URL, example1)
	if out.Cached || out.Decision == nil {
		t.Fatalf("decide with broken store: cached=%v decision=%v", out.Cached, out.Decision)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d decisions, want 1", calls.Load())
	}
	snap := eng.StatsSnapshot()
	// One Get error and one Put error: both counted, neither fatal.
	if snap.StoreErrors != 2 {
		t.Fatalf("StoreErrors = %d, want 2 (failed read + failed write-through)", snap.StoreErrors)
	}
}

// failingStore errors on every operation — a raw backend without the
// Resilient wrapper, exercising the engine's own error tolerance.
type failingStore struct{}

func (failingStore) Get(string) ([]byte, bool, error) { return nil, false, errors.New("broken get") }
func (failingStore) Put(string, []byte) error         { return errors.New("broken put") }
func (failingStore) Close() error                     { return nil }
