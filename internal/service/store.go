package service

import (
	"encoding/json"
	"errors"

	"chaseterm"
	"chaseterm/api"
	"chaseterm/internal/store"
)

// The engine's use of the verdict store is strictly best-effort: the
// store is a second cache tier, so every failure mode — backend error,
// corrupt payload, degraded wrapper — degrades to "miss, recompute"
// and never to a failed request. Errors are counted (storeErrors), but
// a degraded wrapper's ErrDegraded is not: the transition that caused
// it was already counted and logged once, and billing every subsequent
// request against it would just restate one fault thousands of times.

// storeGet probes the persistent store for a decide verdict. It
// returns (nil, false) on any miss, error, or undecodable payload.
func (e *Engine) storeGet(key string) (*api.Decision, bool) {
	if e.store == nil {
		return nil, false
	}
	raw, ok, err := e.store.Get(key)
	if err != nil {
		if !errors.Is(err, store.ErrDegraded) {
			e.stats.storeErrors.Add(1)
		}
		return nil, false
	}
	if !ok {
		e.stats.storeMisses.Add(1)
		return nil, false
	}
	var d api.Decision
	if err := json.Unmarshal(raw, &d); err != nil {
		// The record passed its checksum, so these are valid bytes of a
		// different (older or newer) payload schema: treat as a miss and
		// let the write-through replace them.
		e.stats.storeErrors.Add(1)
		return nil, false
	}
	e.stats.storeHits.Add(1)
	return &d, true
}

// storePut writes a freshly computed verdict through to the store. The
// persisted payload is the wire-level api.Decision — it carries the
// portfolio provenance too, so a store-warm response is
// indistinguishable from a memory-warm one.
func (e *Engine) storePut(key string, val any) {
	if e.store == nil {
		return
	}
	var d *api.Decision
	switch v := val.(type) {
	case *chaseterm.Verdict:
		d = apiDecision(v)
	case *portfolioDecision:
		d = apiDecision(v.verdict)
		decoratePortfolio(d, v.portfolio)
	default:
		return
	}
	raw, err := json.Marshal(d)
	if err != nil {
		return
	}
	if err := e.store.Put(key, raw); err != nil && !errors.Is(err, store.ErrDegraded) {
		e.stats.storeErrors.Add(1)
	}
}

// storeStatus returns the store's health summary, or nil when no store
// is configured or the backend cannot report one.
func (e *Engine) storeStatus() *store.Status {
	if e.store == nil {
		return nil
	}
	if sr, ok := e.store.(store.StatusReporter); ok {
		st := sr.Status()
		return &st
	}
	return &store.Status{Enabled: true}
}

// storeDegraded reports whether a configured store is currently
// serving degraded (false when no store is configured).
func (e *Engine) storeDegraded() bool {
	st := e.storeStatus()
	return st != nil && st.Degraded
}

// Health is the body of GET /healthz: overall status plus the store
// detail when persistence is configured. "degraded" means the process
// is serving (memory-only) but a dependency is down.
type Health struct {
	Status string        `json:"status"`
	Store  *store.Status `json:"store,omitempty"`
}

// Health summarizes the engine's ability to serve.
func (e *Engine) Health() Health {
	h := Health{Status: "ok", Store: e.storeStatus()}
	if h.Store != nil && h.Store.Degraded {
		h.Status = "degraded"
	}
	return h
}
