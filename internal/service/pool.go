package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chaseterm/internal/obs"
)

// ErrClosed is returned for work submitted after the pool shut down.
var ErrClosed = errors.New("service: engine closed")

// ErrPanic wraps a panic recovered from a job function: the analysis
// crashed, but the worker and the process survive. The HTTP layer maps
// it to 500 / "internal". (This is reachable from request handling —
// e.g. the matcher panics on an oversized initial binding — so a bare
// goroutine here would let one bad request kill the whole server.)
var ErrPanic = errors.New("service: analysis panicked")

// workerPool bounds the number of decision procedures and chase runs
// executing at once. Callers block in Do until a worker picks up the
// job and finishes it (or the context expires), so the pool also acts
// as admission control: with W workers at most W analyses run
// concurrently no matter how many requests are in flight.
type workerPool struct {
	jobs chan poolJob
	stop chan struct{}
	wg   sync.WaitGroup

	// queued counts callers blocked in submit waiting for a worker to
	// pick their job up — the pool's queue depth, exported as a gauge.
	queued atomic.Int64

	closeOnce sync.Once
}

type poolJob struct {
	ctx context.Context
	fn  func(context.Context) (any, error)
	res chan outcome
	// sync makes Do wait for fn itself to return, never merely for the
	// context — see DoSync.
	sync bool
}

type outcome struct {
	val any
	err error
}

func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &workerPool{
		jobs: make(chan poolJob),
		stop: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case j := <-p.jobs:
			p.run(j)
		}
	}
}

// run executes one job with cancellation. The function runs in an inner
// goroutine so that an expired context unblocks the caller immediately;
// the worker then stays on the job until the computation actually winds
// down — releasing it early would let abandoned analyses pile up past
// the W-worker admission bound. Job functions honor their context (the
// chase engine and the deciders poll it at trigger/fixpoint
// granularity), so after a cancellation the wait lasts at most one
// check interval rather than the job's full trigger/fact/shape budget.
//
// A panic inside the job is recovered in the inner goroutine — the one
// place it would otherwise escape every handler's stack and kill the
// process — and surfaced to the caller as an ErrPanic-wrapped error.
func (p *workerPool) run(j poolJob) {
	if err := j.ctx.Err(); err != nil {
		j.res <- outcome{err: err}
		return
	}
	inner := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				inner <- outcome{err: fmt.Errorf("%w: %v", ErrPanic, r)}
			}
		}()
		v, err := j.fn(j.ctx)
		inner <- outcome{val: v, err: err}
	}()
	if j.sync {
		j.res <- <-inner
		return
	}
	select {
	case o := <-inner:
		j.res <- o
	case <-j.ctx.Done():
		j.res <- outcome{err: j.ctx.Err()}
		<-inner
	}
}

// Do submits fn and waits for its result. It returns ctx.Err() if the
// context expires while queued or running, and ErrClosed if the pool
// shut down before the job was picked up.
func (p *workerPool) Do(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	return p.submit(ctx, fn, false)
}

// DoSync is Do for callers that share state with fn — e.g. the
// streaming handler, whose fn writes to the caller's own
// http.ResponseWriter. It returns only after fn itself has returned,
// never merely because the context expired, so the caller can touch the
// shared state afterwards without racing a still-running job. The
// context still bounds the queue wait and cancels fn cooperatively.
func (p *workerPool) DoSync(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	return p.submit(ctx, fn, true)
}

func (p *workerPool) submit(ctx context.Context, fn func(context.Context) (any, error), sync bool) (any, error) {
	j := poolJob{ctx: ctx, fn: fn, res: make(chan outcome, 1), sync: sync}
	enq := time.Now()
	p.queued.Add(1)
	select {
	case p.jobs <- j:
		p.queued.Add(-1)
	case <-ctx.Done():
		p.queued.Add(-1)
		obs.FromContext(ctx).Add(obs.SpanQueueWait, time.Since(enq))
		return nil, ctx.Err()
	case <-p.stop:
		p.queued.Add(-1)
		return nil, ErrClosed
	}
	// The handoff succeeding means a worker took the job: queue wait
	// ends here, execution starts on the worker.
	obs.FromContext(ctx).Add(obs.SpanQueueWait, time.Since(enq))
	o := <-j.res
	return o.val, o.err
}

// Close stops the workers. Jobs already picked up finish; queued callers
// that have not been picked up receive ErrClosed from Do.
func (p *workerPool) Close() {
	p.closeOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}
