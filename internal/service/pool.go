package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// ErrClosed is returned for work submitted after the pool shut down.
var ErrClosed = errors.New("service: engine closed")

// workerPool bounds the number of decision procedures and chase runs
// executing at once. Callers block in Do until a worker picks up the
// job and finishes it (or the context expires), so the pool also acts
// as admission control: with W workers at most W analyses run
// concurrently no matter how many requests are in flight.
type workerPool struct {
	jobs chan poolJob
	stop chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
}

type poolJob struct {
	ctx context.Context
	fn  func(context.Context) (any, error)
	res chan outcome
}

type outcome struct {
	val any
	err error
}

func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &workerPool{
		jobs: make(chan poolJob),
		stop: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			return
		case j := <-p.jobs:
			p.run(j)
		}
	}
}

// run executes one job with cancellation. The function runs in an inner
// goroutine so that an expired context unblocks the caller immediately;
// the worker then stays on the job until the computation actually winds
// down — releasing it early would let abandoned analyses pile up past
// the W-worker admission bound. Job functions honor their context (the
// chase engine and the deciders poll it at trigger/fixpoint
// granularity), so after a cancellation the wait lasts at most one
// check interval rather than the job's full trigger/fact/shape budget.
func (p *workerPool) run(j poolJob) {
	if err := j.ctx.Err(); err != nil {
		j.res <- outcome{err: err}
		return
	}
	inner := make(chan outcome, 1)
	go func() {
		v, err := j.fn(j.ctx)
		inner <- outcome{val: v, err: err}
	}()
	select {
	case o := <-inner:
		j.res <- o
	case <-j.ctx.Done():
		j.res <- outcome{err: j.ctx.Err()}
		<-inner
	}
}

// Do submits fn and waits for its result. It returns ctx.Err() if the
// context expires while queued or running, and ErrClosed if the pool
// shut down before the job was picked up.
func (p *workerPool) Do(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	j := poolJob{ctx: ctx, fn: fn, res: make(chan outcome, 1)}
	select {
	case p.jobs <- j:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.stop:
		return nil, ErrClosed
	}
	o := <-j.res
	return o.val, o.err
}

// Close stops the workers. Jobs already picked up finish; queued callers
// that have not been picked up receive ErrClosed from Do.
func (p *workerPool) Close() {
	p.closeOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}
