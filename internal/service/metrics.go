package service

import (
	"sync/atomic"
	"time"

	"chaseterm"
	"chaseterm/internal/obs"
)

// Endpoint labels for the per-endpoint latency histograms.
const (
	endpointAnalyze = "analyze"
	endpointStream  = "stream"
)

// metrics is the Prometheus-facing view of one Engine: a registry whose
// counter and gauge series sample the Stats atomics the engine already
// maintains (no double bookkeeping), plus the few counters and
// histograms that exist only for scraping. Everything on the update
// path is a handful of atomic adds — no locks, no allocations — so
// instrumented requests keep the engine's zero-alloc guarantees.
type metrics struct {
	reg *obs.Registry

	// Engine counters, aggregated once per finished chase run from the
	// facade report (never per trigger: the steady-state trigger loop
	// stays untouched and allocation-free).
	triggersApplied   atomic.Int64
	triggersNoop      atomic.Int64
	triggersSatisfied atomic.Int64
	factsDerived      atomic.Int64

	// streamEvents counts every NDJSON event emitted across all chase
	// streams (facts, progress, and terminal events).
	streamEvents atomic.Int64

	// Per-endpoint latency histograms, split the same way as the
	// /v1/stats windows: queue wait vs. execution.
	queueAnalyze *obs.Histogram
	execAnalyze  *obs.Histogram
	queueStream  *obs.Histogram
	execStream   *obs.Histogram
}

// newMetrics builds the registry over a live engine. Series are named
// chased_* after the binary that serves them.
func newMetrics(e *Engine) *metrics {
	m := &metrics{reg: obs.NewRegistry()}
	r := m.reg
	s := e.stats

	counter := func(name, help string, a *atomic.Int64) {
		r.Counter(name, help, a.Load)
	}
	counter("chased_cache_hits_total", "Requests served from the verdict cache (stored entries and deduplicated flights).", &s.cacheHits)
	counter("chased_cache_misses_total", "Requests that ran an underlying decision.", &s.cacheMisses)
	counter("chased_jobs_total", "Analysis jobs served, failed ones included.", &s.jobsServed)
	counter("chased_jobs_failed_total", "Analysis jobs that returned an error.", &s.jobsFailed)
	counter("chased_streams_total", "Chase-stream requests that entered the engine.", &s.streams)
	counter("chased_streams_aborted_total", "Chase streams canceled mid-run (client disconnects).", &s.streamsAborted)
	counter("chased_stream_facts_total", "Facts delivered across all stream batches.", &s.streamFacts)
	counter("chased_stream_events_total", "NDJSON events emitted across all chase streams.", &m.streamEvents)
	counter("chased_triggers_applied_total", "Chase triggers applied across all runs.", &m.triggersApplied)
	counter("chased_triggers_noop_total", "Chase triggers that produced no new fact across all runs.", &m.triggersNoop)
	counter("chased_triggers_satisfied_total", "Chase triggers skipped as already satisfied across all runs.", &m.triggersSatisfied)
	counter("chased_facts_derived_total", "Facts derived by the chase engine across all runs.", &m.factsDerived)
	counter("chased_store_hits_total", "Decide verdicts served from the persistent store.", &s.storeHits)
	counter("chased_store_misses_total", "Persistent-store probes that fell through to a computation.", &s.storeMisses)
	counter("chased_store_errors_total", "Persistent-store failures (degraded-mode short-circuits excluded).", &s.storeErrors)
	counter("chased_portfolio_decides_total", "Decide requests that ran the termination portfolio (cache misses only).", &s.portfolioDecides)
	for _, rung := range chaseterm.PortfolioRungNames() {
		r.LabeledCounter("chased_portfolio_rung_total",
			"Portfolio decisions by the rung that decided.",
			`rung="`+rung+`"`, s.portfolioRungs[rung].Load)
	}

	r.Gauge("chased_uptime_seconds", "Seconds since the engine started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	r.Gauge("chased_in_flight", "Requests currently inside the engine.", func() float64 {
		return float64(s.inFlight.Load())
	})
	r.Gauge("chased_pool_queue_depth", "Callers blocked waiting for a worker slot.", func() float64 {
		return float64(e.pool.queued.Load())
	})
	r.Gauge("chased_cache_entries", "Entries stored in the verdict cache.", func() float64 {
		return float64(e.cache.Len())
	})
	r.Gauge("chased_store_degraded", "1 while the persistent store is down and the engine serves memory-only, else 0.", func() float64 {
		if e.storeDegraded() {
			return 1
		}
		return 0
	})

	const queueHelp = "Time requests spent waiting for a worker slot or a deduplicated flight, by endpoint."
	const execHelp = "Time requests spent executing (decode, cache probe, analysis, render), by endpoint."
	m.queueAnalyze = r.Histogram("chased_request_queue_seconds", queueHelp, `endpoint="analyze"`, nil)
	m.queueStream = r.Histogram("chased_request_queue_seconds", queueHelp, `endpoint="stream"`, nil)
	m.execAnalyze = r.Histogram("chased_request_exec_seconds", execHelp, `endpoint="analyze"`, nil)
	m.execStream = r.Histogram("chased_request_exec_seconds", execHelp, `endpoint="stream"`, nil)
	return m
}

// observeRequest records one finished request on the endpoint's
// latency histograms.
func (m *metrics) observeRequest(endpoint string, queue, exec time.Duration) {
	if endpoint == endpointStream {
		m.queueStream.Observe(queue)
		m.execStream.Observe(exec)
		return
	}
	m.queueAnalyze.Observe(queue)
	m.execAnalyze.Observe(exec)
}

// addEngine folds one finished chase run's counters into the fleet
// totals.
func (m *metrics) addEngine(triggersApplied, triggersNoop, triggersSatisfied, factsAdded int) {
	m.triggersApplied.Add(int64(triggersApplied))
	m.triggersNoop.Add(int64(triggersNoop))
	m.triggersSatisfied.Add(int64(triggersSatisfied))
	m.factsDerived.Add(int64(factsAdded))
}
