// Package obs is the observability substrate of the served system:
// per-request traces with a fixed vocabulary of typed spans, request-ID
// generation and propagation, and a dependency-free Prometheus
// text-format metrics registry.
//
// The package is deliberately tiny and allocation-conscious: traces are
// pooled and record into a fixed array of atomic counters, metric
// updates are single atomic adds, and nothing here imports anything
// heavier than the standard library. The analysis service threads one
// Trace through every layer of a request (HTTP decode, verdict cache,
// worker pool, decision engines) via the context; the same span values
// feed the request-latency histograms, the structured per-job log
// record, and — when the client opts in — the wire-level trace echoed
// on the response.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind names one stage of a request's life. The vocabulary is fixed
// and small on purpose: every layer records into the same array slots,
// so assembling a trace is a loop over an array, not a tree walk.
type SpanKind uint8

const (
	// SpanDecode: reading and JSON-decoding the request body.
	SpanDecode SpanKind = iota
	// SpanCacheLookup: probing the verdict cache (hit or miss).
	SpanCacheLookup
	// SpanSingleflightWait: waiting on another request's in-flight
	// computation of the same cache key.
	SpanSingleflightWait
	// SpanQueueWait: waiting for a worker-pool slot.
	SpanQueueWait
	// SpanDecider: executing a termination decision procedure.
	SpanDecider
	// SpanChase: executing a chase run.
	SpanChase
	// SpanRender: rendering the final instance to surface syntax.
	SpanRender

	// NumSpans is the size of the span vocabulary.
	NumSpans
)

var spanNames = [NumSpans]string{
	"decode",
	"cacheLookup",
	"singleflightWait",
	"queueWait",
	"decider",
	"chase",
	"render",
}

func (k SpanKind) String() string {
	if k < NumSpans {
		return spanNames[k]
	}
	return "span(" + strconv.Itoa(int(k)) + ")"
}

// Trace accumulates the per-stage durations of one request. All methods
// are safe for concurrent use and nil-safe on the receiver, so call
// sites record unconditionally:
//
//	obs.FromContext(ctx).Add(obs.SpanQueueWait, wait)
//
// Spans are cumulative within a kind: a request that probes the cache
// twice records the sum. Traces are meant to be pooled — see GetTrace.
type Trace struct {
	spans [NumSpans]atomic.Int64 // nanoseconds per span kind
}

// Add records d against span k. Negative durations and out-of-range
// kinds are ignored; a nil receiver is a no-op.
func (t *Trace) Add(k SpanKind, d time.Duration) {
	if t == nil || k >= NumSpans || d <= 0 {
		return
	}
	t.spans[k].Add(int64(d))
}

// Get returns the accumulated duration of span k (zero when never
// recorded, or on a nil receiver).
func (t *Trace) Get(k SpanKind) time.Duration {
	if t == nil || k >= NumSpans {
		return 0
	}
	return time.Duration(t.spans[k].Load())
}

// Sum returns the total duration across all spans.
func (t *Trace) Sum() time.Duration {
	if t == nil {
		return 0
	}
	var total time.Duration
	for k := SpanKind(0); k < NumSpans; k++ {
		total += time.Duration(t.spans[k].Load())
	}
	return total
}

// Each calls yield for every span with a nonzero duration, in kind
// order.
func (t *Trace) Each(yield func(k SpanKind, d time.Duration)) {
	if t == nil {
		return
	}
	for k := SpanKind(0); k < NumSpans; k++ {
		if d := time.Duration(t.spans[k].Load()); d > 0 {
			yield(k, d)
		}
	}
}

// Reset zeroes every span so the trace can be reused.
func (t *Trace) Reset() {
	for k := range t.spans {
		t.spans[k].Store(0)
	}
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// GetTrace returns a zeroed Trace from the pool. Return it with
// PutTrace once nothing can touch it anymore — after the wire trace has
// been assembled and the metrics observed. Pooling keeps the
// per-request instrumentation cost at the one context allocation
// required to carry the trace.
func GetTrace() *Trace { return tracePool.Get().(*Trace) }

// PutTrace resets t and returns it to the pool; nil is a no-op.
func PutTrace(t *Trace) {
	if t == nil {
		return
	}
	t.Reset()
	tracePool.Put(t)
}

type traceKey struct{}

// NewContext returns ctx carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. Combined with
// the nil-safe Trace methods, instrumentation points need no presence
// check.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Request IDs: a per-process random prefix plus a monotone counter.
// Unique across restarts (the prefix) and trivially unique within a
// process (the counter), cheap to generate, and short enough for a log
// field.
var (
	ridPrefix  = func() string { var b [4]byte; rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	ridCounter atomic.Uint64
)

// NewRequestID returns a fresh request identifier, e.g. "9f2c1a07-42".
func NewRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 10)
}

type requestIDKey struct{}

// WithRequestID returns ctx carrying the request identifier.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request identifier carried by ctx,
// or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
