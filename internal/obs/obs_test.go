package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceAddGetSum(t *testing.T) {
	tr := GetTrace()
	defer PutTrace(tr)

	tr.Add(SpanDecode, 2*time.Millisecond)
	tr.Add(SpanChase, 5*time.Millisecond)
	tr.Add(SpanChase, 3*time.Millisecond) // cumulative within a kind

	if got := tr.Get(SpanDecode); got != 2*time.Millisecond {
		t.Errorf("Get(decode) = %v, want 2ms", got)
	}
	if got := tr.Get(SpanChase); got != 8*time.Millisecond {
		t.Errorf("Get(chase) = %v, want 8ms", got)
	}
	if got := tr.Get(SpanDecider); got != 0 {
		t.Errorf("Get(decider) = %v, want 0", got)
	}
	if got := tr.Sum(); got != 10*time.Millisecond {
		t.Errorf("Sum() = %v, want 10ms", got)
	}

	var kinds []SpanKind
	tr.Each(func(k SpanKind, d time.Duration) { kinds = append(kinds, k) })
	if len(kinds) != 2 || kinds[0] != SpanDecode || kinds[1] != SpanChase {
		t.Errorf("Each visited %v, want [decode chase]", kinds)
	}

	tr.Reset()
	if got := tr.Sum(); got != 0 {
		t.Errorf("Sum() after Reset = %v, want 0", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Add(SpanDecode, time.Millisecond) // must not panic
	if tr.Get(SpanDecode) != 0 || tr.Sum() != 0 {
		t.Error("nil trace should read as zero")
	}
	tr.Each(func(SpanKind, time.Duration) { t.Error("nil trace yielded a span") })
	PutTrace(nil)
}

func TestTraceIgnoresGarbage(t *testing.T) {
	tr := new(Trace)
	tr.Add(SpanDecode, -time.Second)
	tr.Add(NumSpans+3, time.Second)
	if tr.Sum() != 0 {
		t.Errorf("garbage Adds recorded: Sum = %v", tr.Sum())
	}
	if tr.Get(NumSpans+3) != 0 {
		t.Error("out-of-range Get should be zero")
	}
}

func TestSpanNames(t *testing.T) {
	want := []string{"decode", "cacheLookup", "singleflightWait", "queueWait", "decider", "chase", "render"}
	if int(NumSpans) != len(want) {
		t.Fatalf("NumSpans = %d, want %d", NumSpans, len(want))
	}
	for k := SpanKind(0); k < NumSpans; k++ {
		if k.String() != want[k] {
			t.Errorf("SpanKind(%d).String() = %q, want %q", k, k.String(), want[k])
		}
	}
	if s := (NumSpans + 1).String(); !strings.HasPrefix(s, "span(") {
		t.Errorf("out-of-range String() = %q", s)
	}
}

func TestTraceContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("empty context should carry no trace")
	}
	tr := new(Trace)
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("FromContext did not return the stored trace")
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Errorf("consecutive request IDs collide: %q", a)
	}
	if !strings.Contains(a, "-") {
		t.Errorf("request ID %q missing prefix separator", a)
	}

	ctx := WithRequestID(context.Background(), a)
	if got := RequestIDFromContext(ctx); got != a {
		t.Errorf("RequestIDFromContext = %q, want %q", got, a)
	}
	if got := RequestIDFromContext(context.Background()); got != "" {
		t.Errorf("empty context request ID = %q, want empty", got)
	}
}

func TestHistogramCumulation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help.", "", []float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)   // bucket le=0.01
	h.Observe(50 * time.Millisecond)  // bucket le=0.1
	h.Observe(500 * time.Millisecond) // bucket le=1
	h.Observe(5 * time.Second)        // +Inf

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_seconds help.",
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 2`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		"test_seconds_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// sum = 5.555s
	if !strings.Contains(out, "test_seconds_sum 5.555\n") {
		t.Errorf("exposition missing sum 5.555:\n%s", out)
	}
}

func TestHistogramBoundaryIsInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "help.", "", []float64{0.001})
	h.Observe(time.Millisecond) // exactly the bound: le means ≤
	var b strings.Builder
	r.WriteTo(&b)
	if !strings.Contains(b.String(), `b_seconds_bucket{le="0.001"} 1`) {
		t.Errorf("1ms observation missed the le=0.001 bucket:\n%s", b.String())
	}
}

func TestHistogramLabelVariantsShareFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("lat_seconds", "help.", `endpoint="analyze"`, []float64{1})
	s := r.Histogram("lat_seconds", "help.", `endpoint="stream"`, []float64{1})
	a.Observe(time.Millisecond)
	s.Observe(time.Millisecond)
	s.Observe(time.Millisecond)

	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	if n := strings.Count(out, "# TYPE lat_seconds histogram"); n != 1 {
		t.Errorf("TYPE line emitted %d times, want once:\n%s", n, out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{endpoint="analyze",le="1"} 1`) {
		t.Errorf("analyze variant missing:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_count{endpoint="stream"} 2`) {
		t.Errorf("stream variant missing:\n%s", out)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	var n int64 = 41
	r.Counter("jobs_total", "Jobs served.", func() int64 { n++; return n })
	r.Gauge("in_flight", "In-flight requests.", func() float64 { return 2.5 })

	var b strings.Builder
	r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE in_flight gauge",
		"# TYPE jobs_total counter",
		"in_flight 2.5",
		"jobs_total 42",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if strings.Index(out, "in_flight") > strings.Index(out, "jobs_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "h", func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("x_total", "h", func() int64 { return 0 })
}

// TestObserveAllocFree pins the instrumentation hot path: recording a
// histogram sample and a trace span must not allocate, or the engine's
// steady-state zero-alloc guarantees would silently erode.
func TestObserveAllocFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_seconds", "help.", "", nil)
	tr := new(Trace)
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(3 * time.Millisecond)
		tr.Add(SpanChase, 3*time.Millisecond)
	}); n != 0 {
		t.Errorf("Observe+Add allocate %.1f per call, want 0", n)
	}
}

// TestConcurrentObserveAndScrape is the package-level race check:
// observations and renders race freely and every count must still be
// accounted for afterwards.
func TestConcurrentObserveAndScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_seconds", "help.", "", nil)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var b strings.Builder
		if _, err := r.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	var b strings.Builder
	r.WriteTo(&b)
	want := "race_seconds_count " + itoa(goroutines*perG)
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("final scrape missing %q:\n%s", want, b.String())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
