package obs

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is a dependency-free subset of the Prometheus client model:
// enough to expose counters, gauges, and fixed-bucket histograms in the
// text exposition format (version 0.0.4) that any Prometheus-compatible
// scraper understands. Registration happens at startup; the update path
// (Histogram.Observe) is a couple of atomic adds, so instrumented hot
// loops stay lock-free and allocation-free.

// A Registry holds the metric families of one process and renders them
// on demand. Counters and gauges are registered as read closures over
// atomics the owner already maintains — scrape-time sampling, no double
// bookkeeping. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex // guards registration; rendering reads an immutable snapshot
	fams []*family
}

func NewRegistry() *Registry { return &Registry{} }

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one named metric with HELP/TYPE metadata and a render hook.
type family struct {
	name string
	help string
	typ  metricType
	// render appends the family's sample lines (without HELP/TYPE).
	render func(b *strings.Builder)
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.fams {
		if g.name == f.name {
			panic("obs: duplicate metric " + f.name)
		}
	}
	r.fams = append(r.fams, f)
	sort.Slice(r.fams, func(i, j int) bool { return r.fams[i].name < r.fams[j].name })
}

// Counter registers a monotonically non-decreasing series sampled from
// read at scrape time. The reader owns monotonicity (back it with an
// atomic counter that is only ever added to).
func (r *Registry) Counter(name, help string, read func() int64) {
	r.add(&family{name: name, help: help, typ: typeCounter, render: func(b *strings.Builder) {
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(read(), 10))
		b.WriteByte('\n')
	}})
}

// LabeledCounter registers one labeled series of a counter family,
// sampled from read at scrape time. Several series may share a family
// name by giving each a distinct pre-rendered label body such as
// `rung="mfa"` — the HELP/TYPE header is emitted once, mirroring the
// histogram label-variant semantics. Mixing a labeled series with an
// unlabeled Counter of the same name, or reusing a label body, is a
// registration bug the caller owns (this minimal registry does not
// check label bodies).
func (r *Registry) LabeledCounter(name, help, constLabels string, read func() int64) {
	render := func(b *strings.Builder) {
		b.WriteString(name)
		if constLabels != "" {
			b.WriteByte('{')
			b.WriteString(constLabels)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(read(), 10))
		b.WriteByte('\n')
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.fams {
		if g.name != name {
			continue
		}
		if g.typ != typeCounter {
			panic("obs: duplicate metric " + name)
		}
		prev := g.render
		g.render = func(b *strings.Builder) {
			prev(b)
			render(b)
		}
		return
	}
	r.fams = append(r.fams, &family{name: name, help: help, typ: typeCounter, render: render})
	sort.Slice(r.fams, func(i, j int) bool { return r.fams[i].name < r.fams[j].name })
}

// Gauge registers a series that can go up and down, sampled from read
// at scrape time.
func (r *Registry) Gauge(name, help string, read func() float64) {
	r.add(&family{name: name, help: help, typ: typeGauge, render: func(b *strings.Builder) {
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(read()))
		b.WriteByte('\n')
	}})
}

// DefBuckets are the default latency histogram bounds, in seconds. They
// span sub-millisecond cache hits to multi-second chase runs.
var DefBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket latency histogram. Observe is lock-free
// and allocation-free: one linear scan over the (small, sorted) bounds
// plus three atomic adds. Bucket counts are kept per-bucket and
// cumulated only at render time, so concurrent Observe calls never
// contend on more than one cell.
type Histogram struct {
	bounds   []float64 // sorted upper bounds, seconds; +Inf implicit
	counts   []atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
	labels   string // rendered inside {...} on every series, may be ""
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (seconds; nil means DefBuckets). constLabels, when
// non-empty, is a pre-rendered label body such as `endpoint="analyze"`
// attached to every series; histograms sharing a name must be
// registered via HistogramVec semantics by giving each a distinct
// label body — this minimal registry treats each (name, labels) pair
// as its own registration and merges the HELP/TYPE header by name.
func (r *Registry) Histogram(name, help, constLabels string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets not strictly increasing")
		}
	}
	h := &Histogram{
		bounds: buckets,
		counts: make([]atomic.Int64, len(buckets)+1), // +1 for the +Inf overflow cell
		labels: constLabels,
	}
	r.addHistogram(name, help, h)
	return h
}

// addHistogram registers h under name, allowing several label variants
// of the same family name (HELP/TYPE emitted once).
func (r *Registry) addHistogram(name, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.fams {
		if g.name != name {
			continue
		}
		if g.typ != typeHistogram {
			panic("obs: duplicate metric " + name)
		}
		prev := g.render
		g.render = func(b *strings.Builder) {
			prev(b)
			h.render(b, name)
		}
		return
	}
	r.fams = append(r.fams, &family{
		name: name, help: help, typ: typeHistogram,
		render: func(b *strings.Builder) { h.render(b, name) },
	})
	sort.Slice(r.fams, func(i, j int) bool { return r.fams[i].name < r.fams[j].name })
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// render writes the _bucket/_sum/_count series. Buckets are cumulated
// here; the snapshot is not atomic across cells, which Prometheus
// tolerates (counts are monotone, _count is read last so it never
// exceeds the +Inf bucket by more than in-flight observations).
func (h *Histogram) render(b *strings.Builder, name string) {
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		h.series(b, name, "_bucket", formatFloat(ub), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	h.series(b, name, "_bucket", "+Inf", cum)

	b.WriteString(name)
	b.WriteString("_sum")
	h.labelBody(b, "")
	b.WriteByte(' ')
	b.WriteString(formatFloat(float64(h.sumNanos.Load()) / 1e9))
	b.WriteByte('\n')

	b.WriteString(name)
	b.WriteString("_count")
	h.labelBody(b, "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(cum, 10))
	b.WriteByte('\n')
}

func (h *Histogram) series(b *strings.Builder, name, suffix, le string, v int64) {
	b.WriteString(name)
	b.WriteString(suffix)
	h.labelBody(b, `le="`+le+`"`)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(v, 10))
	b.WriteByte('\n')
}

// labelBody writes {labels,extra} with either part optional.
func (h *Histogram) labelBody(b *strings.Builder, extra string) {
	if h.labels == "" && extra == "" {
		return
	}
	b.WriteByte('{')
	b.WriteString(h.labels)
	if h.labels != "" && extra != "" {
		b.WriteByte(',')
	}
	b.WriteString(extra)
	b.WriteByte('}')
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// WriteTo renders every registered family in the text exposition
// format, sorted by family name.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.help)
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(string(f.typ))
		b.WriteByte('\n')
		f.render(&b)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ServeHTTP makes the registry a scrape handler for GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if req.Method == http.MethodHead {
		return
	}
	r.WriteTo(w)
}
