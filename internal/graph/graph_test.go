package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCLine(t *testing.T) {
	// 0 -> 1 -> 2: three singleton components.
	g := New(3)
	g.AddEdge(0, 1, false)
	g.AddEdge(1, 2, false)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("ncomp: got %d, want 3", n)
	}
	if comp[0] == comp[1] || comp[1] == comp[2] {
		t.Errorf("components merged: %v", comp)
	}
	// Reverse topological order: successors get smaller component ids.
	if !(comp[2] < comp[1] && comp[1] < comp[0]) {
		t.Errorf("component order not reverse-topological: %v", comp)
	}
}

func TestSCCCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, false)
	g.AddEdge(1, 2, false)
	g.AddEdge(2, 0, false)
	g.AddEdge(2, 3, false)
	comp, n := g.SCC()
	if n != 2 {
		t.Fatalf("ncomp: got %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle not merged: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Errorf("node 3 merged into the cycle: %v", comp)
	}
}

func TestSpecialCycle(t *testing.T) {
	// Regular cycle only: no special cycle.
	g := New(2)
	g.AddEdge(0, 1, false)
	g.AddEdge(1, 0, false)
	if g.HasSpecialCycle() {
		t.Error("regular cycle flagged as special")
	}
	// Adding a special edge inside the SCC flips the answer.
	g.AddEdge(0, 1, true)
	if !g.HasSpecialCycle() {
		t.Error("special edge in SCC not detected")
	}
}

func TestSpecialSelfLoop(t *testing.T) {
	g := New(1)
	g.AddEdge(0, 0, true)
	e := g.SpecialCycleEdge()
	if e == nil {
		t.Fatal("special self-loop not detected")
	}
	cyc := g.CycleThrough(*e)
	if len(cyc) < 2 || cyc[0] != 0 || cyc[len(cyc)-1] != 0 {
		t.Errorf("cycle: %v", cyc)
	}
}

func TestSpecialEdgeOutsideCycle(t *testing.T) {
	// 0 =special=> 1 -> 2 (no way back): acyclic.
	g := New(3)
	g.AddEdge(0, 1, true)
	g.AddEdge(1, 2, false)
	if g.HasSpecialCycle() {
		t.Error("dag flagged as having a special cycle")
	}
	if g.HasCycle() {
		t.Error("dag flagged as cyclic")
	}
}

func TestCycleThrough(t *testing.T) {
	// 0 =s=> 1 -> 2 -> 0.
	g := New(3)
	g.AddEdge(0, 1, true)
	g.AddEdge(1, 2, false)
	g.AddEdge(2, 0, false)
	e := g.SpecialCycleEdge()
	if e == nil {
		t.Fatal("no special cycle found")
	}
	cyc := g.CycleThrough(*e)
	want := []int{0, 1, 2, 0}
	if len(cyc) != len(want) {
		t.Fatalf("cycle: %v", cyc)
	}
	for i := range want {
		if cyc[i] != want[i] {
			t.Fatalf("cycle: %v, want %v", cyc, want)
		}
	}
}

func TestReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, false)
	g.AddEdge(2, 3, false)
	r := g.Reachable(0)
	if !r[0] || !r[1] || r[2] || r[3] {
		t.Errorf("reachable: %v", r)
	}
	r = g.Reachable(0, 2)
	if !r[3] {
		t.Errorf("multi-source reachable: %v", r)
	}
}

func TestAddEdgeDedup(t *testing.T) {
	g := New(2)
	g.AddEdgeDedup(0, 1, false)
	g.AddEdgeDedup(0, 1, false)
	g.AddEdgeDedup(0, 1, true) // different kind: kept
	if len(g.Edges()) != 2 {
		t.Errorf("edges: %d, want 2", len(g.Edges()))
	}
}

func TestAddNode(t *testing.T) {
	g := New(0)
	a := g.AddNode()
	b := g.AddNode()
	if a != 0 || b != 1 || g.Len() != 2 {
		t.Errorf("AddNode ids: %d %d len %d", a, b, g.Len())
	}
	g.AddEdge(a, b, false)
	if len(g.Successors(a)) != 1 {
		t.Error("edge lost")
	}
}

// naiveHasSpecialCycle re-derives the answer by brute-force DFS from every
// special edge: a special cycle exists iff some special edge (u,v) has a
// path v ->* u.
func naiveHasSpecialCycle(g *Graph) bool {
	for _, e := range g.Edges() {
		if !e.Special {
			continue
		}
		r := g.Reachable(e.To)
		if r[e.From] {
			return true
		}
	}
	return false
}

// TestSpecialCycleQuick cross-validates the SCC-based special-cycle test
// against the naive reachability definition on random graphs.
func TestSpecialCycleQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := New(n)
		edges := rng.Intn(3 * n)
		for i := 0; i < edges; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), rng.Intn(3) == 0)
		}
		return g.HasSpecialCycle() == naiveHasSpecialCycle(g)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestSCCQuick: strongly-connectedness from the SCC labels must match
// pairwise mutual reachability.
func TestSCCQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		g := New(n)
		for i := 0; i < rng.Intn(2*n+1); i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), false)
		}
		comp, _ := g.SCC()
		for u := 0; u < n; u++ {
			ru := g.Reachable(u)
			for v := 0; v < n; v++ {
				rv := g.Reachable(v)
				mutual := ru[v] && rv[u]
				if mutual != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
