// Package graph provides the small directed-graph machinery shared by the
// acyclicity criteria of the paper: graphs whose edges are either regular or
// special (the dependency-graph notation of Fagin et al., where special
// edges record the creation of fresh labelled nulls), strongly connected
// components, and detection of cycles that traverse at least one special
// edge — the condition whose absence defines weak/rich acyclicity.
package graph

// Edge is a directed edge; Special marks the dependency-graph edges that
// correspond to the creation of a new null value.
type Edge struct {
	From, To int
	Special  bool
}

// Graph is a directed multigraph over nodes 0..N-1 with regular and special
// edges.
type Graph struct {
	n     int
	adj   [][]Edge
	edges []Edge
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]Edge, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// Edges returns all edges in insertion order. The slice must not be
// modified.
func (g *Graph) Edges() []Edge { return g.edges }

// AddNode appends a fresh node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddEdge inserts a directed edge. Duplicate edges are kept (harmless for
// the analyses here) unless AddEdgeDedup is used.
func (g *Graph) AddEdge(from, to int, special bool) {
	e := Edge{From: from, To: to, Special: special}
	g.adj[from] = append(g.adj[from], e)
	g.edges = append(g.edges, e)
}

// AddEdgeDedup inserts the edge unless an identical edge already leaves
// from. It is O(out-degree); fine for the schema-sized graphs used here.
func (g *Graph) AddEdgeDedup(from, to int, special bool) {
	for _, e := range g.adj[from] {
		if e.To == to && e.Special == special {
			return
		}
	}
	g.AddEdge(from, to, special)
}

// Successors returns the out-edges of node v. The slice must not be
// modified.
func (g *Graph) Successors(v int) []Edge { return g.adj[v] }

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative, so deep graphs cannot overflow the goroutine stack). It
// returns comp, the component index of every node, and the number of
// components. Component indexes are in reverse topological order of the
// condensation (successors first).
func (g *Graph) SCC() (comp []int, ncomp int) {
	const unvisited = -1
	comp = make([]int, g.n)
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.adj[f.v]) {
				w := g.adj[f.v][f.ei].To
				f.ei++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// post-order: pop
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// SpecialCycleEdge returns a special edge that lies on some cycle, or nil if
// no cycle of the graph traverses a special edge. A special edge e lies on a
// cycle exactly when both its endpoints are in the same strongly connected
// component (self-loops included). This is the standard weak-acyclicity
// test.
func (g *Graph) SpecialCycleEdge() *Edge {
	comp, _ := g.SCC()
	for i := range g.edges {
		e := &g.edges[i]
		if e.Special && comp[e.From] == comp[e.To] {
			return e
		}
	}
	return nil
}

// HasSpecialCycle reports whether some cycle traverses a special edge.
func (g *Graph) HasSpecialCycle() bool { return g.SpecialCycleEdge() != nil }

// CycleEdge returns an edge — regular or special — that lies on some
// cycle, or nil if the graph is acyclic. The same SCC argument as
// SpecialCycleEdge applies: an edge lies on a cycle exactly when both
// endpoints share a strongly connected component and that component is
// not a single loop-free node. Used to report witness cycles for
// criteria whose graphs have no special edges (joint acyclicity's feeds
// graph).
func (g *Graph) CycleEdge() *Edge {
	comp, _ := g.SCC()
	size := make(map[int]int)
	for _, c := range comp {
		size[c]++
	}
	for i := range g.edges {
		e := &g.edges[i]
		if comp[e.From] == comp[e.To] && (size[comp[e.From]] > 1 || e.From == e.To) {
			return e
		}
	}
	return nil
}

// CycleThrough returns a cycle (as a node sequence v0, v1, ..., vk = v0)
// that traverses the given special edge, or nil if none exists. Used to
// report human-readable witnesses for non-termination verdicts.
func (g *Graph) CycleThrough(e Edge) []int {
	// A cycle through e exists iff e.To can reach e.From.
	path := g.pathBFS(e.To, e.From)
	if path == nil {
		return nil
	}
	cycle := append([]int{e.From}, path...)
	return cycle
}

// pathBFS returns a path from src to dst (inclusive), or nil. A zero-length
// path [src] is returned when src == dst.
func (g *Graph) pathBFS(src, dst int) []int {
	prev := make([]int, g.n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == dst {
			var rev []int
			for u := dst; ; u = prev[u] {
				rev = append(rev, u)
				if u == src {
					break
				}
			}
			path := make([]int, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			return path
		}
		for _, e := range g.adj[v] {
			if prev[e.To] == -1 {
				prev[e.To] = v
				queue = append(queue, e.To)
			}
		}
	}
	return nil
}

// Reachable returns the set of nodes reachable from the given sources
// (sources included), as a boolean slice.
func (g *Graph) Reachable(sources ...int) []bool {
	seen := make([]bool, g.n)
	queue := make([]int, 0, len(sources))
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// HasCycle reports whether the graph has any directed cycle (regular or
// special). A node with a self-loop counts; otherwise any SCC with more
// than one node, or any edge within a single-node SCC, witnesses a cycle.
func (g *Graph) HasCycle() bool {
	comp, _ := g.SCC()
	size := make(map[int]int)
	for _, c := range comp {
		size[c]++
	}
	for _, e := range g.edges {
		if comp[e.From] == comp[e.To] && (size[comp[e.From]] > 1 || e.From == e.To) {
			return true
		}
	}
	return false
}
