package parse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chaseterm/internal/workload"
)

// TestQuickRoundTrip: format ∘ parse is the identity on formatted rule
// sets, across all generator classes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		for _, rs := range []interface{ String() string }{
			workload.RandomSL(rng, workload.Config{NumPreds: 4, MaxArity: 3, NumRules: 4}),
			workload.RandomLinear(rng, workload.Config{NumPreds: 4, MaxArity: 3, NumRules: 4, RepeatProb: 0.4, ConstProb: 0.2}),
			workload.RandomGuarded(rng, workload.Config{NumPreds: 4, MaxArity: 3, NumRules: 4, ConstProb: 0.2}),
		} {
			text := rs.String()
			parsed, err := ParseRules(text)
			if err != nil {
				t.Logf("reparse failed on:\n%s", text)
				return false
			}
			if parsed.String() != text {
				t.Logf("unstable:\n%s\nvs\n%s", text, parsed.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
