package parse

import (
	"testing"
)

// FuzzParse: the parser must never panic, and anything it accepts must
// round-trip through the formatter. Runs its seed corpus under plain
// `go test`; explore further with `go test -fuzz=FuzzParse ./internal/parse`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"p(X) -> q(X).",
		"person(X) -> hasFather(X,Y), person(Y).\nperson(bob).",
		"p(a,b). q('hello world'). zero.",
		"g(X,Y), gate(X) -> g(Y,Z).",
		"p(X,0) -> q(1).",
		"% comment\np(X)->q(X).",
		"p(X) -> ",
		"p(X,) -> q(X).",
		"p((X)) -> q.",
		"'lone quote",
		"p -> q -> r.",
		"p(X) :- q(X).",
		"\x00\x01\x02",
		"p(✶) -> q(✶).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input must round-trip: format, reparse, compare.
		text := FormatRules(prog.Rules) + FormatFacts(prog.Facts)
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of formatted output failed: %v\ninput: %q\nformatted: %q", err, src, text)
		}
		text2 := FormatRules(prog2.Rules) + FormatFacts(prog2.Facts)
		if text != text2 {
			t.Fatalf("format not stable:\n%q\nvs\n%q", text, text2)
		}
	})
}
