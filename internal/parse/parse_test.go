package parse

import (
	"strings"
	"testing"

	"chaseterm/internal/logic"
)

func TestParseRulesBasic(t *testing.T) {
	rs, err := ParseRules(`
% the paper's Example 1
person(X) -> hasFather(X,Y), person(Y).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 1 {
		t.Fatalf("got %d rules", len(rs.Rules))
	}
	r := rs.Rules[0]
	if r.String() != "person(X) -> hasFather(X,Y), person(Y)" {
		t.Errorf("round trip: %s", r)
	}
	if got := r.Existentials(); len(got) != 1 || got[0] != "Y" {
		t.Errorf("existentials: %v", got)
	}
}

func TestParseFactsAndRulesMixed(t *testing.T) {
	prog, err := Parse(`
p(a,b).
p(X,Y) -> q(Y).
q(b).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 2 {
		t.Fatalf("facts: %d", len(prog.Facts))
	}
	if len(prog.Rules.Rules) != 1 {
		t.Fatalf("rules: %d", len(prog.Rules.Rules))
	}
	if prog.Facts[0].String() != "p(a,b)" || prog.Facts[1].String() != "q(b)" {
		t.Errorf("facts parsed wrong: %v", prog.Facts)
	}
}

func TestParseTermKinds(t *testing.T) {
	rs, err := ParseRules(`p(X, abc, 'Quoted Const', 0, _under) -> q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	args := rs.Rules[0].Body[0].Args
	if _, ok := args[0].(logic.Variable); !ok {
		t.Error("X should be a variable")
	}
	if c, ok := args[1].(logic.Constant); !ok || c != "abc" {
		t.Error("abc should be a constant")
	}
	if c, ok := args[2].(logic.Constant); !ok || c != "Quoted Const" {
		t.Errorf("quoted constant wrong: %v", args[2])
	}
	if c, ok := args[3].(logic.Constant); !ok || c != "0" {
		t.Error("0 should be a constant")
	}
	if _, ok := args[4].(logic.Variable); !ok {
		t.Error("_under should be a variable")
	}
}

func TestParseZeroAry(t *testing.T) {
	rs, err := ParseRules(`start -> goal().`)
	if err != nil {
		t.Fatal(err)
	}
	r := rs.Rules[0]
	if len(r.Body[0].Args) != 0 || len(r.Head[0].Args) != 0 {
		t.Error("0-ary atoms parsed with arguments")
	}
	if r.Body[0].Pred != "start" || r.Head[0].Pred != "goal" {
		t.Errorf("preds: %s -> %s", r.Body[0].Pred, r.Head[0].Pred)
	}
}

func TestParseComments(t *testing.T) {
	rs, err := ParseRules(`
% percent comment
# hash comment
// slash comment
p(X) -> q(X). % trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rules) != 1 {
		t.Fatalf("rules: %d", len(rs.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing dot", `p(X) -> q(X)`, "expected"},
		{"variable in fact", `p(X).`, "contains a variable"},
		{"arity clash", `p(X) -> p(X,X).`, "arities"},
		{"prolog arrow", `q(X) :- p(X).`, "->"},
		{"unterminated quote", `p('abc) -> q(X).`, "unterminated"},
		{"stray char", `p(X) & q(X) -> r(X).`, "unexpected character"},
		{"bad dash", `p(X) - q(X).`, "expected '->'"},
		{"fact arity clash with rule", "p(X,Y) -> q(X).\nq(a,b).", "arity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("p(X) -> q(X).\np(X) -> ???.")
	if err == nil {
		t.Fatal("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Line != 2 {
		t.Errorf("line: got %d, want 2", perr.Line)
	}
}

func TestRoundTrip(t *testing.T) {
	src := `person(X) -> hasFather(X,Y), person(Y).
p(X,Y), q(Y) -> r(Y,Z).
zero -> one.
`
	rs, err := ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatRules(rs)
	rs2, err := ParseRules(out)
	if err != nil {
		t.Fatalf("reparse: %v (text: %q)", err, out)
	}
	if FormatRules(rs2) != out {
		t.Errorf("format not stable:\n%s\nvs\n%s", out, FormatRules(rs2))
	}
}

func TestRoundTripFacts(t *testing.T) {
	facts := MustParseFacts("p(a,b).\nq('hello world').\n")
	out := FormatFacts(facts)
	facts2, err := ParseFacts(out)
	if err != nil {
		// quoted constants with spaces cannot round-trip without quotes;
		// the formatter must re-quote. This test documents the contract.
		t.Fatalf("reparse: %v (text %q)", err, out)
	}
	if len(facts2) != 2 {
		t.Fatalf("facts: %d", len(facts2))
	}
}

func TestParseRulesRejectsFacts(t *testing.T) {
	if _, err := ParseRules(`p(a).`); err == nil {
		t.Error("ParseRules accepted a fact")
	}
	if _, err := ParseFacts(`p(X) -> q(X).`); err == nil {
		t.Error("ParseFacts accepted a rule")
	}
}
