// Package parse implements the textual format for rule sets and databases
// used throughout the repository.
//
// Grammar (comments run from '%', '#' or '//' to end of line):
//
//	program   ::= statement*
//	statement ::= rule '.' | fact '.'
//	rule      ::= atoms '->' atoms
//	atoms     ::= atom (',' atom)*
//	atom      ::= ident [ '(' term (',' term)* ')' ]
//	term      ::= variable | constant
//
// Identifiers starting with an upper-case letter or '_' are variables; all
// other identifiers, numerals, and single-quoted strings are constants.
// Head variables that do not occur in the body are existentially
// quantified, following the standard Datalog± convention, e.g.
//
//	person(X) -> hasFather(X,Y), person(Y).   % Y is existential
//	p(a,b).                                   % a fact
package parse

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"chaseterm/internal/logic"
)

// Program is the result of parsing: a rule set plus ground facts.
type Program struct {
	Rules *logic.RuleSet
	Facts []logic.Atom
}

// Error is a parse error carrying a 1-based line and column.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("parse: %d:%d: %s", e.Line, e.Col, e.Msg) }

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokArrow
)

type token struct {
	kind      tokenKind
	text      string
	line, col int
}

type lexer struct {
	src       string
	pos       int
	line, col int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, *Error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.adv()
		case c == '\n':
			l.adv()
		case c == '%' || c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

scan:
	line, col := l.line, l.col
	c := l.src[l.pos]
	switch c {
	case '(':
		l.adv()
		return token{tokLParen, "(", line, col}, nil
	case ')':
		l.adv()
		return token{tokRParen, ")", line, col}, nil
	case ',':
		l.adv()
		return token{tokComma, ",", line, col}, nil
	case '.':
		l.adv()
		return token{tokDot, ".", line, col}, nil
	case '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.adv()
			l.adv()
			return token{tokArrow, "->", line, col}, nil
		}
		return token{}, l.errf(line, col, "unexpected '-' (expected '->')")
	case ':':
		// Accept ':-' as a reversed arrow is NOT supported; report clearly.
		return token{}, l.errf(line, col, "unexpected ':' (this format uses 'body -> head')")
	case '\'':
		start := l.pos
		l.adv()
		for l.pos < len(l.src) && l.src[l.pos] != '\'' && l.src[l.pos] != '\n' {
			l.adv()
		}
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return token{}, l.errf(line, col, "unterminated quoted constant")
		}
		l.adv()
		return token{tokIdent, l.src[start:l.pos], line, col}, nil
	}
	if r, _ := utf8.DecodeRuneInString(l.src[l.pos:]); isIdentStart(r) {
		start := l.pos
		for l.pos < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentPart(r) {
				break
			}
			l.advN(size)
		}
		return token{tokIdent, l.src[start:l.pos], line, col}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return token{}, l.errf(line, col, "unexpected character %q", r)
}

func (l *lexer) adv() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

// advN advances over one rune occupying n bytes (never a newline: callers
// use it only inside identifiers and quoted constants).
func (l *lexer) advN(n int) {
	l.col++
	l.pos += n
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.adv()
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

type parser struct {
	lex  *lexer
	tok  token
	peek *token
}

func newParser(src string) (*parser, *Error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() *Error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, *Error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errHere(format string, args ...any) *Error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses a full program: rules and facts in any order.
func Parse(src string) (*Program, error) {
	p, perr := newParser(src)
	if perr != nil {
		return nil, perr
	}
	prog := &Program{Rules: logic.NewRuleSet()}
	for p.tok.kind != tokEOF {
		atoms, err := p.parseAtoms()
		if err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokArrow:
			if err := p.advance(); err != nil {
				return nil, err
			}
			head, err := p.parseAtoms()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokDot); err != nil {
				return nil, err
			}
			prog.Rules.Rules = append(prog.Rules.Rules, logic.NewTGD(atoms, head))
		case tokDot:
			if err := p.advance(); err != nil {
				return nil, err
			}
			for _, a := range atoms {
				if !a.IsGround() {
					return nil, p.errHere("fact %s contains a variable", a)
				}
				prog.Facts = append(prog.Facts, a)
			}
		default:
			return nil, p.errHere("expected '->' or '.', got %q", p.tok.text)
		}
	}
	if err := prog.Rules.Validate(); err != nil {
		return nil, err
	}
	// Facts must agree with the schema arities too.
	arities := make(map[string]int)
	for _, pr := range prog.Rules.Schema() {
		arities[pr.Name] = pr.Arity
	}
	for _, f := range prog.Facts {
		if k, ok := arities[f.Pred]; ok && k != len(f.Args) {
			return nil, fmt.Errorf("parse: fact %s uses predicate %s with arity %d, rules use %d", f, f.Pred, len(f.Args), k)
		}
		arities[f.Pred] = len(f.Args)
	}
	return prog, nil
}

// ParseRules parses a program and requires it to contain rules only.
func ParseRules(src string) (*logic.RuleSet, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Facts) > 0 {
		return nil, fmt.Errorf("parse: expected rules only, found fact %s", prog.Facts[0])
	}
	return prog.Rules, nil
}

// ParseFacts parses a program and requires it to contain facts only.
func ParseFacts(src string) ([]logic.Atom, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules.Rules) > 0 {
		return nil, fmt.Errorf("parse: expected facts only, found rule %s", prog.Rules.Rules[0])
	}
	return prog.Facts, nil
}

// MustParseRules is ParseRules that panics on error; intended for tests and
// package-level example data.
func MustParseRules(src string) *logic.RuleSet {
	rs, err := ParseRules(src)
	if err != nil {
		panic(err)
	}
	return rs
}

// MustParseFacts is ParseFacts that panics on error.
func MustParseFacts(src string) []logic.Atom {
	fs, err := ParseFacts(src)
	if err != nil {
		panic(err)
	}
	return fs
}

// ParseAtomList parses a bare comma-separated conjunction of atoms (no
// trailing dot), e.g. "teaches(P,C), course(C)". Used for conjunctive
// queries.
func ParseAtomList(src string) ([]logic.Atom, error) {
	p, perr := newParser(src)
	if perr != nil {
		return nil, perr
	}
	atoms, err := p.parseAtoms()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errHere("unexpected %q after conjunction", p.tok.text)
	}
	return atoms, nil
}

func (p *parser) expect(k tokenKind) *Error {
	if p.tok.kind != k {
		return p.errHere("expected %s, got %q", kindName(k), p.tok.text)
	}
	return p.advance()
}

func kindName(k tokenKind) string {
	switch k {
	case tokDot:
		return "'.'"
	case tokArrow:
		return "'->'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokIdent:
		return "identifier"
	default:
		return "end of input"
	}
}

func (p *parser) parseAtoms() ([]logic.Atom, *Error) {
	var atoms []logic.Atom
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
		if p.tok.kind != tokComma {
			return atoms, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseAtom() (logic.Atom, *Error) {
	if p.tok.kind != tokIdent {
		return logic.Atom{}, p.errHere("expected predicate name, got %q", p.tok.text)
	}
	name := p.tok.text
	if strings.HasPrefix(name, "'") {
		return logic.Atom{}, p.errHere("predicate name cannot be a quoted constant")
	}
	if err := p.advance(); err != nil {
		return logic.Atom{}, err
	}
	if p.tok.kind != tokLParen {
		return logic.Atom{Pred: name}, nil // 0-ary atom
	}
	if err := p.advance(); err != nil {
		return logic.Atom{}, err
	}
	var args []logic.Term
	if p.tok.kind == tokRParen { // p() — explicit 0-ary
		if err := p.advance(); err != nil {
			return logic.Atom{}, err
		}
		return logic.Atom{Pred: name}, nil
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return logic.Atom{}, err
		}
		args = append(args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return logic.Atom{}, err
			}
			continue
		}
		if p.tok.kind == tokRParen {
			if err := p.advance(); err != nil {
				return logic.Atom{}, err
			}
			return logic.Atom{Pred: name, Args: args}, nil
		}
		return logic.Atom{}, p.errHere("expected ',' or ')', got %q", p.tok.text)
	}
}

func (p *parser) parseTerm() (logic.Term, *Error) {
	if p.tok.kind != tokIdent {
		return nil, p.errHere("expected term, got %q", p.tok.text)
	}
	text := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if strings.HasPrefix(text, "'") {
		return logic.Constant(strings.Trim(text, "'")), nil
	}
	r, _ := utf8.DecodeRuneInString(text)
	if r == '_' || unicode.IsUpper(r) {
		return logic.Variable(text), nil
	}
	return logic.Constant(text), nil
}

// FormatRules renders a rule set in the input format (inverse of ParseRules
// up to whitespace).
func FormatRules(rs *logic.RuleSet) string {
	return rs.String()
}

// FormatFacts renders facts in the input format.
func FormatFacts(facts []logic.Atom) string {
	var b strings.Builder
	for _, f := range facts {
		b.WriteString(f.String())
		b.WriteString(".\n")
	}
	return b.String()
}
