package instance

// Snapshot is a checked read view of an Instance frozen at a point in
// time — one generation of the parallel chase. Freeze returns the view
// and arms the instance's (and its term table's) mutation guards: while
// at least one snapshot is live, the hot mutators (Add, FreshNull,
// Skolem, Pred, Const) panic instead of racing the readers. That turns
// the package's single-writer/frozen-read contract from a doc comment
// into an API misuse of which fails loudly in any test that reaches it,
// not only under -race.
//
// A Snapshot is a small value: pass it by value, share it freely among
// reader goroutines, and have the writer call Release exactly once when
// every reader has finished (synchronize the hand-off, e.g. with a
// sync.WaitGroup). Freezes nest: each Freeze must be paired with one
// Release, and the instance is writable again when the last live
// snapshot is released.
//
// Reads through a Snapshot see exactly the facts that existed at Freeze
// time — the horizon. The chase engine additionally needs "as of"
// reads that replay history inside the frozen prefix: a fact's triggers
// must be discovered against the instance as it was when that fact was
// added. FindHomsAnchoredAsOfWith provides that, relying on the
// store's insertion-ordered extents and posting chains (see
// matchLevel.next) to bound enumeration with a single compare.
type Snapshot struct {
	in      *Instance
	horizon FactID
	gen     uint64
}

// Freeze marks the instance read-only and returns a snapshot of its
// current extent. Mutating the instance (or interning into its term
// table) while any snapshot is live panics. Freeze itself must be
// called by the writer, like every other non-read method.
func (in *Instance) Freeze() Snapshot {
	in.frozen.Add(1)
	in.Terms.frozen.Add(1)
	in.gen++
	return Snapshot{in: in, horizon: FactID(len(in.facts)), gen: in.gen}
}

// Release ends the snapshot's read phase, re-arming the instance for
// mutation once no other snapshot remains live. It must be called by
// the writer after synchronizing with every reader of the snapshot.
func (s Snapshot) Release() {
	if s.in.frozen.Add(-1) < 0 {
		panic("instance: Snapshot.Release without a matching Freeze")
	}
	s.in.Terms.frozen.Add(-1)
}

// Horizon returns the exclusive upper bound of the fact ids visible
// through the snapshot: exactly the facts [0, Horizon()) existed when
// it was taken.
func (s Snapshot) Horizon() FactID { return s.horizon }

// Generation returns the snapshot's freeze ordinal (1 for the
// instance's first Freeze). Diagnostics only.
func (s Snapshot) Generation() uint64 { return s.gen }

// Size returns the number of facts visible through the snapshot.
func (s Snapshot) Size() int { return int(s.horizon) }

// Fact returns a visible fact. Requesting a fact at or beyond the
// horizon is a misuse and panics.
func (s Snapshot) Fact(id FactID) Fact {
	if id >= s.horizon {
		panic("instance: Snapshot.Fact beyond horizon")
	}
	return s.in.facts[id]
}

// Contains reports whether the fact p(args...) is visible through the
// snapshot.
//
//chaselint:hotpath
func (s Snapshot) Contains(p PredID, args []TermID) bool {
	id, ok := s.in.Lookup(p, args)
	return ok && id < s.horizon
}

// FindHomsWith is Instance.FindHomsWith restricted to the snapshot's
// horizon, safe to run from any number of goroutines with per-goroutine
// scratches while the snapshot is live.
//
//chaselint:hotpath
func (s Snapshot) FindHomsWith(sc *MatchScratch, p *Pattern, initial []TermID, yield func(binding []TermID) bool) bool {
	checkInitial(p, initial)
	p.Compile()
	binding := sc.prepare(p)
	copy(binding, initial)
	return s.in.runPlan(p, p.plans[0], sc, binding, s.horizon, yield)
}

// HasHomWith is Instance.HasHomWith restricted to the snapshot's
// horizon. Allocation-free.
//
//chaselint:hotpath
func (s Snapshot) HasHomWith(sc *MatchScratch, p *Pattern, initial []TermID) bool {
	checkInitial(p, initial)
	p.Compile()
	binding := sc.prepare(p)
	copy(binding, initial)
	return !s.in.runPlan(p, p.plans[0], sc, binding, s.horizon, nil)
}

// FindHomsAnchoredAsOfWith enumerates the homomorphisms that map the
// pattern atom at index anchor exactly to anchorFact, seeing only the
// facts that existed when anchorFact was added (ids <= anchorFact).
// This reproduces, against a frozen batch, the enumeration the
// sequential chase performs immediately after each Add: for every
// anchor fact the discovered bindings — and their order — are
// identical, which is what lets the parallel engine's merged trigger
// stream match the sequential one bit for bit.
//
//chaselint:hotpath
func (s Snapshot) FindHomsAnchoredAsOfWith(sc *MatchScratch, p *Pattern, anchor int, anchorFact FactID, yield func(binding []TermID) bool) bool {
	if anchorFact >= s.horizon {
		panic("instance: FindHomsAnchoredAsOfWith anchor beyond horizon")
	}
	p.Compile()
	binding := sc.prepare(p)
	if !matchAtomInto(&p.Atoms[anchor], s.in.facts[anchorFact], binding, &sc.anchor) {
		return true
	}
	return s.in.runPlan(p, p.plans[1+anchor], sc, binding, anchorFact+1, yield)
}
