package instance

import (
	"fmt"
	"sync"
	"testing"

	"chaseterm/internal/logic"
)

// TestFrozenInstanceConcurrentReads exercises the single-writer contract
// (see the package comment): after the writing goroutine is done, any
// number of readers may probe, enumerate and render concurrently. The
// test is most meaningful under -race, which CI runs on internal/...;
// it would flag any hidden mutation on the read paths (e.g. a lazily
// compiled plan or a memoized candidate list).
func TestFrozenInstanceConcurrentReads(t *testing.T) {
	in := New()
	e := in.Pred("e", 2)
	terms := make([]TermID, 128)
	for i := range terms {
		terms[i] = in.Terms.Const(fmt.Sprintf("c%d", i))
	}
	fn := in.Terms.SkolemFn("f")
	for i := 0; i+1 < len(terms); i++ {
		in.Add(e, []TermID{terms[i], terms[i+1]})
		// A few Skolem facts so term rendering is exercised too.
		if i%8 == 0 {
			in.Add(e, []TermID{terms[i], in.Terms.Skolem(fn, terms[i:i+1])})
		}
	}
	pat, err := CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The instance is now frozen: no more writes. CompileBody compiled the
	// pattern's plans eagerly, so enumeration below is read-only.
	wantHoms := in.CountHoms(pat)
	wantSize := in.Size()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var sc MatchScratch // per-goroutine scratch
			for iter := 0; iter < 50; iter++ {
				if !in.Contains(e, []TermID{terms[g], terms[g+1]}) {
					errs <- "Contains lost a fact"
					return
				}
				if in.Contains(e, []TermID{terms[g+1], terms[g]}) {
					errs <- "Contains invented a fact"
					return
				}
				n := 0
				in.FindHomsWith(&sc, pat, nil, func([]TermID) bool { n++; return true })
				if n != wantHoms {
					errs <- fmt.Sprintf("FindHoms found %d homs, want %d", n, wantHoms)
					return
				}
				if got := len(in.ByPosTerm(e, 0, terms[g])); got == 0 {
					errs <- "ByPosTerm empty"
					return
				}
				if in.Size() != wantSize {
					errs <- "Size changed"
					return
				}
				_ = in.FactString(FactID(g))
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
