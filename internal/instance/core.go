package instance

// Core computation: the core of an instance is its smallest retract — the
// unique (up to isomorphism) minimal subinstance the whole instance maps
// into homomorphically, where constants are rigid and invented terms
// (nulls, Skolem terms) behave as variables. Cores are the canonical
// minimal universal solutions of data exchange (Fagin, Kolaitis, Popa,
// "Data exchange: getting to the core"): the chase result is a universal
// solution, and its core is the smallest one.
//
// The algorithm is the classic fact-removal loop: while some fact f admits
// a homomorphism from the instance into the instance without f, replace
// the instance by the image of that homomorphism (which is strictly
// smaller) and repeat. Each homomorphism check treats invented terms as
// variables and reuses the backtracking matcher. Worst-case exponential
// (core identification is NP-hard), entirely adequate for the chase
// results handled here.

// Core returns the core of the instance as a fresh instance (the input is
// not modified) together with the number of facts removed. Invented terms
// of the input are recreated as plain nulls in the output.
func Core(in *Instance) (*Instance, int) {
	facts := make([]Fact, 0, in.Size())
	for i := 0; i < in.Size(); i++ {
		facts = append(facts, in.Fact(FactID(i)))
	}
	removedTotal := 0
	for {
		image, removed := foldOnce(in, facts)
		if removed == 0 {
			break
		}
		facts = image
		removedTotal += removed
	}
	out := New()
	termMap := make(map[TermID]TermID)
	for _, f := range facts {
		p := out.Pred(in.PredName(f.Pred), len(f.Args))
		args := make([]TermID, len(f.Args))
		for i, t := range f.Args {
			m, ok := termMap[t]
			if !ok {
				if in.Terms.IsInvented(t) {
					m = out.Terms.FreshNull(in.Terms.Depth(t))
				} else {
					m = out.Terms.Const(in.Terms.Name(t))
				}
				termMap[t] = m
			}
			args[i] = m
		}
		out.Add(p, args)
	}
	return out, removedTotal
}

// foldOnce tries every single-fact removal; on the first success it
// returns the homomorphic image (deduplicated fact list) and the number of
// facts dropped. It returns (facts, 0) when no fact can be removed.
func foldOnce(in *Instance, facts []Fact) ([]Fact, int) {
	for skip := range facts {
		if binding, ok := homInto(in, facts, skip); ok {
			// Apply the homomorphism to every fact and deduplicate.
			var seen TupleSet
			var image []Fact
			for _, f := range facts {
				args := make([]TermID, len(f.Args))
				for i, t := range f.Args {
					if m, bound := binding[t]; bound {
						args[i] = m
					} else {
						args[i] = t
					}
				}
				if _, added := seen.Insert(int32(f.Pred), args); added {
					image = append(image, Fact{Pred: f.Pred, Args: args})
				}
			}
			if len(image) < len(facts) {
				return image, len(facts) - len(image)
			}
		}
	}
	return facts, 0
}

// homInto searches for a homomorphism from facts into facts∖{facts[skip]}
// that fixes constants and maps invented terms freely. It returns the
// mapping on invented terms.
func homInto(in *Instance, facts []Fact, skip int) (map[TermID]TermID, bool) {
	// Target index: facts without the skipped one, by predicate.
	target := make(map[PredID][][]TermID)
	for i, f := range facts {
		if i == skip {
			continue
		}
		target[f.Pred] = append(target[f.Pred], f.Args)
	}
	binding := make(map[TermID]TermID)
	var match func(fi int) bool
	match = func(fi int) bool {
		if fi == len(facts) {
			return true
		}
		f := facts[fi]
		for _, cand := range target[f.Pred] {
			var bound []TermID
			ok := true
			for i, t := range f.Args {
				if !in.Terms.IsInvented(t) {
					if t != cand[i] {
						ok = false
						break
					}
					continue
				}
				if m, has := binding[t]; has {
					if m != cand[i] {
						ok = false
						break
					}
					continue
				}
				binding[t] = cand[i]
				bound = append(bound, t)
			}
			if ok && match(fi+1) {
				return true
			}
			for _, t := range bound {
				delete(binding, t)
			}
		}
		return false
	}
	if match(0) {
		return binding, true
	}
	return nil, false
}
