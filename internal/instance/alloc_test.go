package instance

import (
	"fmt"
	"testing"

	"chaseterm/internal/logic"
)

// These tests pin the allocation-free hot paths of the store: dedup
// probes against interned facts, Skolem re-interning, and homomorphism
// search with a caller-owned scratch. If any of them starts allocating
// again, the steady-state chase loop has rotted — fail loudly.

func buildChainInstance(n int) (*Instance, PredID, []TermID) {
	in := New()
	e := in.Pred("e", 2)
	terms := make([]TermID, n)
	for i := range terms {
		terms[i] = in.Terms.Const(fmt.Sprintf("c%d", i))
	}
	for i := 0; i+1 < n; i++ {
		in.Add(e, []TermID{terms[i], terms[i+1]})
	}
	return in, e, terms
}

func TestContainsProbeAllocFree(t *testing.T) {
	in, e, terms := buildChainInstance(64)
	hit := []TermID{terms[3], terms[4]}
	miss := []TermID{terms[4], terms[3]}
	if !in.Contains(e, hit) || in.Contains(e, miss) {
		t.Fatal("setup: unexpected membership")
	}
	if n := testing.AllocsPerRun(200, func() {
		in.Contains(e, hit)
		in.Contains(e, miss)
		in.Lookup(e, hit)
	}); n != 0 {
		t.Errorf("Contains/Lookup probes allocate %v per run, want 0", n)
	}
}

func TestAddExistingFactAllocFree(t *testing.T) {
	in, e, terms := buildChainInstance(64)
	args := []TermID{terms[10], terms[11]}
	if n := testing.AllocsPerRun(200, func() {
		if _, added := in.Add(e, args); added {
			t.Fatal("fact must already exist")
		}
	}); n != 0 {
		t.Errorf("Add of an existing fact allocates %v per run, want 0", n)
	}
}

func TestSkolemReinternAllocFree(t *testing.T) {
	tt := NewTermTable()
	fn := tt.SkolemFn("f0_Z")
	args := []TermID{tt.Const("a"), tt.Const("b")}
	first := tt.Skolem(fn, args)
	if n := testing.AllocsPerRun(200, func() {
		if tt.Skolem(fn, args) != first {
			t.Fatal("re-intern changed identity")
		}
	}); n != 0 {
		t.Errorf("Skolem re-intern allocates %v per run, want 0", n)
	}
}

func TestTupleSetHitAllocFree(t *testing.T) {
	var s TupleSet
	tup := []TermID{1, 2, 3}
	s.Insert(7, tup)
	if n := testing.AllocsPerRun(200, func() {
		if _, added := s.Insert(7, tup); added {
			t.Fatal("tuple must already be present")
		}
		if !s.Contains(7, tup) {
			t.Fatal("tuple must be contained")
		}
	}); n != 0 {
		t.Errorf("TupleSet dedup hit allocates %v per run, want 0", n)
	}
}

func TestFindHomsWithScratchAllocFree(t *testing.T) {
	in, _, _ := buildChainInstance(64)
	pat, err := CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sc MatchScratch
	count := 0
	yield := func([]TermID) bool { count++; return true }
	in.FindHomsWith(&sc, pat, nil, yield) // warm the scratch
	want := count
	if want == 0 {
		t.Fatal("setup: no homomorphisms")
	}
	if n := testing.AllocsPerRun(100, func() {
		count = 0
		in.FindHomsWith(&sc, pat, nil, yield)
		if count != want {
			t.Fatalf("homs: %d, want %d", count, want)
		}
	}); n != 0 {
		t.Errorf("FindHomsWith allocates %v per run, want 0", n)
	}
	initial := []TermID{in.Terms.Const("c5")}
	if n := testing.AllocsPerRun(100, func() {
		if !in.HasHomWith(&sc, pat, initial) {
			t.Fatal("hom must exist")
		}
	}); n != 0 {
		t.Errorf("HasHomWith allocates %v per run, want 0", n)
	}
}

func TestFindHomsAnchoredWithAllocFree(t *testing.T) {
	in, e, terms := buildChainInstance(64)
	pat, err := CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
	})
	if err != nil {
		t.Fatal(err)
	}
	anchorFact, ok := in.Lookup(e, []TermID{terms[7], terms[8]})
	if !ok {
		t.Fatal("setup: anchor fact missing")
	}
	var sc MatchScratch
	count := 0
	yield := func([]TermID) bool { count++; return true }
	in.FindHomsAnchoredWith(&sc, pat, 0, anchorFact, yield) // warm the scratch
	want := count
	if want == 0 {
		t.Fatal("setup: no anchored homomorphisms")
	}
	if n := testing.AllocsPerRun(100, func() {
		count = 0
		in.FindHomsAnchoredWith(&sc, pat, 0, anchorFact, yield)
		if count != want {
			t.Fatalf("anchored homs: %d, want %d", count, want)
		}
	}); n != 0 {
		t.Errorf("FindHomsAnchoredWith allocates %v per run, want 0", n)
	}
}

func TestFindHomsRejectsOversizedInitial(t *testing.T) {
	in, _, _ := buildChainInstance(8)
	pat, err := CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("FindHoms accepted an initial binding longer than NumVars")
		}
	}()
	in.FindHoms(pat, []TermID{0, 1, 2}, func([]TermID) bool { return true })
}
