package instance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chaseterm/internal/logic"
)

func TestTermTableConsts(t *testing.T) {
	tt := NewTermTable()
	a := tt.Const("a")
	b := tt.Const("b")
	if a == b {
		t.Fatal("distinct constants interned equal")
	}
	if tt.Const("a") != a {
		t.Fatal("constant interning not stable")
	}
	if tt.Kind(a) != KindConst || tt.IsInvented(a) {
		t.Error("constant kind wrong")
	}
	if tt.String(a) != "a" {
		t.Errorf("String: %q", tt.String(a))
	}
	if id, ok := tt.LookupConst("a"); !ok || id != a {
		t.Error("LookupConst failed")
	}
	if _, ok := tt.LookupConst("zzz"); ok {
		t.Error("LookupConst invented a constant")
	}
}

func TestTermTableNulls(t *testing.T) {
	tt := NewTermTable()
	n1 := tt.FreshNull(1)
	n2 := tt.FreshNull(2)
	if n1 == n2 {
		t.Fatal("fresh nulls equal")
	}
	if tt.Kind(n1) != KindNull || !tt.IsInvented(n1) {
		t.Error("null kind wrong")
	}
	if tt.Depth(n2) != 2 {
		t.Errorf("depth: %d", tt.Depth(n2))
	}
}

func TestTermTableSkolem(t *testing.T) {
	tt := NewTermTable()
	a := tt.Const("a")
	s1 := tt.Skolem(tt.SkolemFn("f"), []TermID{a})
	s2 := tt.Skolem(tt.SkolemFn("f"), []TermID{a})
	if s1 != s2 {
		t.Fatal("equal Skolem terms interned differently")
	}
	s3 := tt.Skolem(tt.SkolemFn("f"), []TermID{s1})
	if s3 == s1 {
		t.Fatal("nested Skolem term interned as its argument")
	}
	if tt.Depth(s1) != 1 || tt.Depth(s3) != 2 {
		t.Errorf("depths: %d %d", tt.Depth(s1), tt.Depth(s3))
	}
	if tt.String(s3) != "f(f(a))" {
		t.Errorf("String: %s", tt.String(s3))
	}
	if g := tt.Skolem(tt.SkolemFn("g"), []TermID{a}); g == s1 {
		t.Error("different functions interned equal")
	}
	args := tt.SkolemArgs(s3)
	if len(args) != 1 || args[0] != s1 {
		t.Errorf("SkolemArgs: %v", args)
	}
}

func TestInstanceAddContains(t *testing.T) {
	in := New()
	p := in.Pred("p", 2)
	a, b := in.Terms.Const("a"), in.Terms.Const("b")
	id1, added := in.Add(p, []TermID{a, b})
	if !added {
		t.Fatal("first Add not added")
	}
	id2, added := in.Add(p, []TermID{a, b})
	if added || id1 != id2 {
		t.Fatal("duplicate Add not deduplicated")
	}
	if !in.Contains(p, []TermID{a, b}) || in.Contains(p, []TermID{b, a}) {
		t.Error("Contains wrong")
	}
	if in.Size() != 1 {
		t.Errorf("Size: %d", in.Size())
	}
	if in.FactString(id1) != "p(a,b)" {
		t.Errorf("FactString: %s", in.FactString(id1))
	}
}

func TestInstanceIndexes(t *testing.T) {
	in := New()
	p := in.Pred("p", 2)
	a, b, c := in.Terms.Const("a"), in.Terms.Const("b"), in.Terms.Const("c")
	in.Add(p, []TermID{a, b})
	in.Add(p, []TermID{a, c})
	in.Add(p, []TermID{b, c})
	if got := len(in.ByPred(p)); got != 3 {
		t.Errorf("ByPred: %d", got)
	}
	if got := len(in.ByPosTerm(p, 0, a)); got != 2 {
		t.Errorf("ByPosTerm(p,0,a): %d", got)
	}
	if got := len(in.ByPosTerm(p, 1, c)); got != 2 {
		t.Errorf("ByPosTerm(p,1,c): %d", got)
	}
	if got := len(in.ByPosTerm(p, 1, a)); got != 0 {
		t.Errorf("ByPosTerm(p,1,a): %d", got)
	}
}

func TestInstancePredArityPanic(t *testing.T) {
	in := New()
	in.Pred("p", 2)
	defer func() {
		if recover() == nil {
			t.Error("arity clash did not panic")
		}
	}()
	in.Pred("p", 3)
}

func TestFromAtoms(t *testing.T) {
	in, err := FromAtoms([]logic.Atom{
		logic.NewAtom("p", logic.Constant("a"), logic.Constant("b")),
		logic.NewAtom("q", logic.Constant("a")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if in.Size() != 2 {
		t.Errorf("size: %d", in.Size())
	}
	if _, err := FromAtoms([]logic.Atom{logic.NewAtom("p", logic.Variable("X"))}); err == nil {
		t.Error("non-ground atom accepted")
	}
}

func mustCompile(t *testing.T, in *Instance, atoms []logic.Atom) *Pattern {
	t.Helper()
	p, err := CompileBody(in, atoms)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFindHomsSingleAtom(t *testing.T) {
	in := New()
	p := in.Pred("p", 2)
	a, b, c := in.Terms.Const("a"), in.Terms.Const("b"), in.Terms.Const("c")
	in.Add(p, []TermID{a, b})
	in.Add(p, []TermID{b, c})
	in.Add(p, []TermID{a, a})

	pat := mustCompile(t, in, []logic.Atom{logic.NewAtom("p", logic.Variable("X"), logic.Variable("Y"))})
	if n := in.CountHoms(pat); n != 3 {
		t.Errorf("p(X,Y): %d homs", n)
	}
	// Repeated variable: only p(a,a).
	pat2 := mustCompile(t, in, []logic.Atom{logic.NewAtom("p", logic.Variable("X"), logic.Variable("X"))})
	if n := in.CountHoms(pat2); n != 1 {
		t.Errorf("p(X,X): %d homs", n)
	}
	// Constant slot.
	pat3 := mustCompile(t, in, []logic.Atom{logic.NewAtom("p", logic.Constant("a"), logic.Variable("Y"))})
	if n := in.CountHoms(pat3); n != 2 {
		t.Errorf("p(a,Y): %d homs", n)
	}
}

func TestFindHomsJoin(t *testing.T) {
	in := New()
	e := in.Pred("e", 2)
	cs := make([]TermID, 5)
	for i := range cs {
		cs[i] = in.Terms.Const(string(rune('a' + i)))
	}
	// A path a->b->c->d->e.
	for i := 0; i+1 < len(cs); i++ {
		in.Add(e, []TermID{cs[i], cs[i+1]})
	}
	pat := mustCompile(t, in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
	})
	if n := in.CountHoms(pat); n != 3 {
		t.Errorf("length-2 paths: %d, want 3", n)
	}
	// Triangle query on a path: none.
	pat2 := mustCompile(t, in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
		logic.NewAtom("e", logic.Variable("Z"), logic.Variable("X")),
	})
	if n := in.CountHoms(pat2); n != 0 {
		t.Errorf("triangles: %d", n)
	}
}

func TestFindHomsInitialBinding(t *testing.T) {
	in := New()
	p := in.Pred("p", 2)
	a, b := in.Terms.Const("a"), in.Terms.Const("b")
	in.Add(p, []TermID{a, b})
	in.Add(p, []TermID{b, b})
	pat := mustCompile(t, in, []logic.Atom{logic.NewAtom("p", logic.Variable("X"), logic.Variable("Y"))})
	init := []TermID{a} // X = a
	n := 0
	in.FindHoms(pat, init, func([]TermID) bool { n++; return true })
	if n != 1 {
		t.Errorf("bound X=a: %d homs", n)
	}
	if !in.HasHom(pat, init) {
		t.Error("HasHom with initial binding failed")
	}
}

func TestFindHomsAnchored(t *testing.T) {
	in := New()
	p := in.Pred("p", 2)
	a, b, c := in.Terms.Const("a"), in.Terms.Const("b"), in.Terms.Const("c")
	f1, _ := in.Add(p, []TermID{a, b})
	in.Add(p, []TermID{b, c})
	pat := mustCompile(t, in, []logic.Atom{
		logic.NewAtom("p", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("p", logic.Variable("Y"), logic.Variable("Z")),
	})
	// Anchor atom 0 to p(a,b): exactly the hom (a,b,c).
	n := 0
	in.FindHomsAnchored(pat, 0, f1, func(bind []TermID) bool {
		n++
		if bind[0] != a || bind[1] != b || bind[2] != c {
			t.Errorf("binding: %v", bind)
		}
		return true
	})
	if n != 1 {
		t.Errorf("anchored homs: %d", n)
	}
	// Anchor atom 1 to p(a,b): needs p(?,a) — none.
	n = 0
	in.FindHomsAnchored(pat, 1, f1, func([]TermID) bool { n++; return true })
	if n != 0 {
		t.Errorf("anchored homs at pos 1: %d", n)
	}
}

func TestFindHomsEarlyStop(t *testing.T) {
	in := New()
	p := in.Pred("p", 1)
	for i := 0; i < 10; i++ {
		in.Add(p, []TermID{in.Terms.Const(string(rune('a' + i)))})
	}
	pat := mustCompile(t, in, []logic.Atom{logic.NewAtom("p", logic.Variable("X"))})
	n := 0
	complete := in.FindHoms(pat, nil, func([]TermID) bool { n++; return n < 3 })
	if complete {
		t.Error("enumeration reported complete despite early stop")
	}
	if n != 3 {
		t.Errorf("early stop after %d", n)
	}
}

// TestFindHomsQuickVsNaive cross-validates the indexed backtracking join
// against a brute-force nested-loop enumeration on random instances and
// random 2-atom patterns.
func TestFindHomsQuickVsNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := New()
		p := in.Pred("p", 2)
		q := in.Pred("q", 2)
		consts := make([]TermID, 4)
		for i := range consts {
			consts[i] = in.Terms.Const(string(rune('a' + i)))
		}
		for i := 0; i < 8; i++ {
			pr := p
			if rng.Intn(2) == 0 {
				pr = q
			}
			in.Add(pr, []TermID{consts[rng.Intn(4)], consts[rng.Intn(4)]})
		}
		// Pattern p(X,Y), q(Y,Z) — count via matcher and via nested loops.
		pat, err := CompileBody(in, []logic.Atom{
			logic.NewAtom("p", logic.Variable("X"), logic.Variable("Y")),
			logic.NewAtom("q", logic.Variable("Y"), logic.Variable("Z")),
		})
		if err != nil {
			return false
		}
		got := in.CountHoms(pat)
		want := 0
		for _, f1 := range in.ByPred(p) {
			for _, f2 := range in.ByPred(q) {
				if in.Fact(f1).Args[1] == in.Fact(f2).Args[0] {
					want++
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxInventedDepth(t *testing.T) {
	in := New()
	p := in.Pred("p", 1)
	a := in.Terms.Const("a")
	in.Add(p, []TermID{a})
	if in.MaxInventedDepth() != 0 {
		t.Error("constant-only instance has depth > 0")
	}
	s := in.Terms.Skolem(in.Terms.SkolemFn("f"), []TermID{a})
	s2 := in.Terms.Skolem(in.Terms.SkolemFn("f"), []TermID{s})
	in.Add(p, []TermID{s2})
	if in.MaxInventedDepth() != 2 {
		t.Errorf("depth: %d", in.MaxInventedDepth())
	}
}

func TestStringsSorted(t *testing.T) {
	in := New()
	p := in.Pred("p", 1)
	b := in.Terms.Const("b")
	a := in.Terms.Const("a")
	in.Add(p, []TermID{b})
	in.Add(p, []TermID{a})
	got := in.Strings()
	if got[0] != "p(a)" || got[1] != "p(b)" {
		t.Errorf("Strings: %v", got)
	}
}
