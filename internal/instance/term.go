// Package instance implements ground instances: interned ground terms
// (constants, labelled nulls, Skolem terms), fact storage with secondary
// indexes, and homomorphism enumeration — the machinery the chase engines
// in package chase are built on.
//
// Terms and facts are interned to dense integer ids so that equality is an
// integer comparison and facts can be deduplicated in O(1); this is what
// makes the semi-oblivious (Skolem) chase's "two homomorphisms agreeing on
// the frontier are indistinguishable" concrete: equal frontier tuples yield
// the identical Skolem term ids and therefore the identical facts.
//
// # Concurrency: the single-writer contract
//
// Instances, term tables and tuple sets are single-writer data structures:
// all mutation (adding facts, interning terms or predicates, inserting
// tuples) must happen from one goroutine at a time, with no concurrent
// readers. Once frozen — the writer is done and the hand-off is
// synchronized — any number of goroutines may read concurrently: Contains,
// Lookup, ByPred, ByPosTerm, rendering, and homomorphism enumeration with
// a per-goroutine MatchScratch over patterns whose plans were compiled
// before the hand-off (CompileBody compiles them eagerly).
//
// The contract is checked, not advisory: Instance.Freeze returns a
// Snapshot read view and arms a guard that makes the hot mutators (Add,
// FreshNull, Skolem, ...) panic until the matching Release. The chase
// engine owns its instance exclusively while running sequentially, and
// its parallel match phases read through Snapshots; the service layer
// only shares chase results after the run completes.
package instance

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// TermID is a dense identifier of an interned ground term.
type TermID int32

// NoTerm is the sentinel "unbound" term id used in partial bindings.
const NoTerm TermID = -1

// TermKind distinguishes ground term species.
type TermKind uint8

const (
	// KindConst is an uninterpreted constant.
	KindConst TermKind = iota
	// KindNull is a labelled null invented by the oblivious or restricted
	// chase (one fresh null per trigger application and existential
	// variable).
	KindNull
	// KindSkolem is a Skolem term f_{σ,z}(t̄) invented by the
	// semi-oblivious chase; interned on (function, arguments) so that equal
	// frontier tuples yield the same term.
	KindSkolem
)

func (k TermKind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindNull:
		return "null"
	default:
		return "skolem"
	}
}

// SkolemFnID is a dense identifier of an interned Skolem function symbol.
type SkolemFnID int32

// NoSkolemFn is returned by SkolemFnOf for non-Skolem terms.
const NoSkolemFn SkolemFnID = -1

type termInfo struct {
	kind TermKind
	name string // constant name; empty for nulls and Skolem terms
	// aux is the null ordinal (nulls) or the SkolemFnID (Skolem terms).
	aux   int32
	args  []TermID
	depth int32 // Skolem nesting depth; "birth depth" for nulls; 0 for constants
}

// TermTable interns ground terms. The zero value is not usable; call
// NewTermTable. Like Instance, a TermTable is single-writer: interning
// must be serialized, concurrent reads of a frozen table are safe.
type TermTable struct {
	infos  []termInfo
	consts map[string]TermID
	nulls  int

	// frozen mirrors Instance.frozen for the owning instance's Snapshots:
	// interning panics while a snapshot is live.
	frozen atomic.Int32

	fnNames []string
	fnIDs   map[string]SkolemFnID
	skSlots []int32 // open-addressed: TermID+1 of Skolem terms, 0 = empty
	skCount int
}

// NewTermTable creates an empty term table.
func NewTermTable() *TermTable {
	return &TermTable{
		consts: make(map[string]TermID),
		fnIDs:  make(map[string]SkolemFnID),
	}
}

// Len returns the number of interned terms.
func (t *TermTable) Len() int { return len(t.infos) }

// Const interns a constant by name.
func (t *TermTable) Const(name string) TermID {
	if id, ok := t.consts[name]; ok {
		return id
	}
	if t.frozen.Load() != 0 {
		panic("instance: Const interning on a frozen term table (live Snapshot; see Freeze/Release)")
	}
	id := TermID(len(t.infos))
	t.infos = append(t.infos, termInfo{kind: KindConst, name: name})
	t.consts[name] = id
	return id
}

// LookupConst returns the id of a constant if already interned.
func (t *TermTable) LookupConst(name string) (TermID, bool) {
	id, ok := t.consts[name]
	return id, ok
}

// FreshNull invents a labelled null that is distinct from every existing
// term. depth records how deep in the chase derivation the null was born
// (max birth depth of the trigger's image terms, plus one); it is used for
// run statistics only.
func (t *TermTable) FreshNull(depth int32) TermID {
	if t.frozen.Load() != 0 {
		panic("instance: FreshNull on a frozen term table (live Snapshot; see Freeze/Release)")
	}
	id := TermID(len(t.infos))
	t.nulls++
	// The "z<n>" display name is rendered lazily by Name/String so that
	// inventing a null costs no formatting allocation on the chase path.
	t.infos = append(t.infos, termInfo{kind: KindNull, aux: int32(t.nulls), depth: depth})
	return id
}

// SkolemFn interns a Skolem function symbol by name. The chase engine
// resolves its per-(rule, existential) function names to ids once at
// compile time so that Skolem interning is integer-keyed.
func (t *TermTable) SkolemFn(name string) SkolemFnID {
	if id, ok := t.fnIDs[name]; ok {
		return id
	}
	id := SkolemFnID(len(t.fnNames))
	t.fnNames = append(t.fnNames, name)
	t.fnIDs[name] = id
	return id
}

// SkolemFnName returns the name of an interned Skolem function.
func (t *TermTable) SkolemFnName(fn SkolemFnID) string { return t.fnNames[fn] }

// SkolemFnBytes is SkolemFn for a name assembled in a byte buffer: the
// lookup allocates nothing on a hit (the string conversion materializes
// only on a miss).
func (t *TermTable) SkolemFnBytes(name []byte) SkolemFnID {
	if id, ok := t.fnIDs[string(name)]; ok {
		return id
	}
	return t.SkolemFn(string(name))
}

// Skolem interns the Skolem term fn(args...). Function symbols are unique
// per (rule, existential variable) pair; the chase engine guarantees this.
// Re-interning an existing term performs no allocation.
//
//chaselint:hotpath
func (t *TermTable) Skolem(fn SkolemFnID, args []TermID) TermID {
	if t.frozen.Load() != 0 {
		panic("instance: Skolem interning on a frozen term table (live Snapshot; see Freeze/Release)")
	}
	if len(t.skSlots) == 0 {
		t.growSkolemSlots(16)
	} else if t.skCount*4 >= len(t.skSlots)*3 {
		t.growSkolemSlots(len(t.skSlots) * 2)
	}
	h := hashTuple(int32(fn), args)
	mask := uint64(len(t.skSlots) - 1)
	i := h & mask
	for {
		v := t.skSlots[i]
		if v == 0 {
			break
		}
		in := &t.infos[v-1]
		if SkolemFnID(in.aux) == fn && termsEqual(in.args, args) {
			return TermID(v - 1)
		}
		i = (i + 1) & mask
	}
	depth := int32(0)
	for _, a := range args {
		if d := t.infos[a].depth; d > depth {
			depth = d
		}
	}
	id := TermID(len(t.infos))
	own := make([]TermID, len(args))
	copy(own, args)
	t.infos = append(t.infos, termInfo{kind: KindSkolem, aux: int32(fn), args: own, depth: depth + 1})
	t.skSlots[i] = int32(id) + 1
	t.skCount++
	return id
}

func (t *TermTable) growSkolemSlots(size int) {
	t.skSlots = make([]int32, size)
	mask := uint64(size - 1)
	for id, in := range t.infos {
		if in.kind != KindSkolem {
			continue
		}
		i := hashTuple(in.aux, in.args) & mask
		for t.skSlots[i] != 0 {
			i = (i + 1) & mask
		}
		t.skSlots[i] = int32(id) + 1
	}
}

// Kind returns the kind of a term.
func (t *TermTable) Kind(id TermID) TermKind { return t.infos[id].kind }

// Depth returns the Skolem nesting depth (or null birth depth) of a term;
// constants have depth 0.
func (t *TermTable) Depth(id TermID) int32 { return t.infos[id].depth }

// IsInvented reports whether the term is a null or Skolem term (i.e. not a
// constant).
func (t *TermTable) IsInvented(id TermID) bool { return t.infos[id].kind != KindConst }

// SkolemArgs returns the argument terms of a Skolem term (nil otherwise).
// The slice must not be modified.
func (t *TermTable) SkolemArgs(id TermID) []TermID { return t.infos[id].args }

// SkolemFnOf returns the function symbol of a Skolem term, or NoSkolemFn
// for constants and nulls.
func (t *TermTable) SkolemFnOf(id TermID) SkolemFnID {
	if t.infos[id].kind != KindSkolem {
		return NoSkolemFn
	}
	return SkolemFnID(t.infos[id].aux)
}

// Name returns the constant name, the Skolem function name, or the "z<n>"
// display name of a null.
func (t *TermTable) Name(id TermID) string {
	in := &t.infos[id]
	switch in.kind {
	case KindNull:
		return fmt.Sprintf("z%d", in.aux)
	case KindSkolem:
		return t.fnNames[in.aux]
	default:
		return in.name
	}
}

// String renders the term for diagnostics.
func (t *TermTable) String(id TermID) string {
	in := t.infos[id]
	switch in.kind {
	case KindConst:
		return in.name
	case KindNull:
		return fmt.Sprintf("z%d", in.aux)
	default:
		parts := make([]string, len(in.args))
		for i, a := range in.args {
			parts[i] = t.String(a)
		}
		return t.fnNames[in.aux] + "(" + strings.Join(parts, ",") + ")"
	}
}
