// Package instance implements ground instances: interned ground terms
// (constants, labelled nulls, Skolem terms), fact storage with secondary
// indexes, and homomorphism enumeration — the machinery the chase engines
// in package chase are built on.
//
// Terms and facts are interned to dense integer ids so that equality is an
// integer comparison and facts can be deduplicated in O(1); this is what
// makes the semi-oblivious (Skolem) chase's "two homomorphisms agreeing on
// the frontier are indistinguishable" concrete: equal frontier tuples yield
// the identical Skolem term ids and therefore the identical facts.
package instance

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TermID is a dense identifier of an interned ground term.
type TermID int32

// NoTerm is the sentinel "unbound" term id used in partial bindings.
const NoTerm TermID = -1

// TermKind distinguishes ground term species.
type TermKind uint8

const (
	// KindConst is an uninterpreted constant.
	KindConst TermKind = iota
	// KindNull is a labelled null invented by the oblivious or restricted
	// chase (one fresh null per trigger application and existential
	// variable).
	KindNull
	// KindSkolem is a Skolem term f_{σ,z}(t̄) invented by the
	// semi-oblivious chase; interned on (function, arguments) so that equal
	// frontier tuples yield the same term.
	KindSkolem
)

func (k TermKind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindNull:
		return "null"
	default:
		return "skolem"
	}
}

type termInfo struct {
	kind  TermKind
	name  string // constant name; Skolem function name; empty for nulls
	args  []TermID
	depth int32 // Skolem nesting depth; "birth depth" for nulls; 0 for constants
}

// TermTable interns ground terms. The zero value is not usable; call
// NewTermTable.
type TermTable struct {
	infos   []termInfo
	consts  map[string]TermID
	skolems map[string]TermID
	nulls   int
}

// NewTermTable creates an empty term table.
func NewTermTable() *TermTable {
	return &TermTable{
		consts:  make(map[string]TermID),
		skolems: make(map[string]TermID),
	}
}

// Len returns the number of interned terms.
func (t *TermTable) Len() int { return len(t.infos) }

// Const interns a constant by name.
func (t *TermTable) Const(name string) TermID {
	if id, ok := t.consts[name]; ok {
		return id
	}
	id := TermID(len(t.infos))
	t.infos = append(t.infos, termInfo{kind: KindConst, name: name})
	t.consts[name] = id
	return id
}

// LookupConst returns the id of a constant if already interned.
func (t *TermTable) LookupConst(name string) (TermID, bool) {
	id, ok := t.consts[name]
	return id, ok
}

// FreshNull invents a labelled null that is distinct from every existing
// term. depth records how deep in the chase derivation the null was born
// (max birth depth of the trigger's image terms, plus one); it is used for
// run statistics only.
func (t *TermTable) FreshNull(depth int32) TermID {
	id := TermID(len(t.infos))
	t.nulls++
	t.infos = append(t.infos, termInfo{kind: KindNull, name: fmt.Sprintf("z%d", t.nulls), depth: depth})
	return id
}

// Skolem interns the Skolem term fn(args...). fn names must be unique per
// (rule, existential variable) pair; the chase engine guarantees this.
func (t *TermTable) Skolem(fn string, args []TermID) TermID {
	key := skolemKey(fn, args)
	if id, ok := t.skolems[key]; ok {
		return id
	}
	depth := int32(0)
	for _, a := range args {
		if d := t.infos[a].depth; d > depth {
			depth = d
		}
	}
	id := TermID(len(t.infos))
	own := make([]TermID, len(args))
	copy(own, args)
	t.infos = append(t.infos, termInfo{kind: KindSkolem, name: fn, args: own, depth: depth + 1})
	t.skolems[key] = id
	return id
}

func skolemKey(fn string, args []TermID) string {
	var b strings.Builder
	b.Grow(len(fn) + 1 + 4*len(args))
	b.WriteString(fn)
	b.WriteByte(0)
	var buf [4]byte
	for _, a := range args {
		binary.LittleEndian.PutUint32(buf[:], uint32(a))
		b.Write(buf[:])
	}
	return b.String()
}

// Kind returns the kind of a term.
func (t *TermTable) Kind(id TermID) TermKind { return t.infos[id].kind }

// Depth returns the Skolem nesting depth (or null birth depth) of a term;
// constants have depth 0.
func (t *TermTable) Depth(id TermID) int32 { return t.infos[id].depth }

// IsInvented reports whether the term is a null or Skolem term (i.e. not a
// constant).
func (t *TermTable) IsInvented(id TermID) bool { return t.infos[id].kind != KindConst }

// SkolemArgs returns the argument terms of a Skolem term (nil otherwise).
// The slice must not be modified.
func (t *TermTable) SkolemArgs(id TermID) []TermID { return t.infos[id].args }

// Name returns the constant name or Skolem function name ("" for nulls).
func (t *TermTable) Name(id TermID) string { return t.infos[id].name }

// String renders the term for diagnostics.
func (t *TermTable) String(id TermID) string {
	in := t.infos[id]
	switch in.kind {
	case KindConst, KindNull:
		return in.name
	default:
		parts := make([]string, len(in.args))
		for i, a := range in.args {
			parts[i] = t.String(a)
		}
		return in.name + "(" + strings.Join(parts, ",") + ")"
	}
}
