package instance

import (
	"testing"
)

// buildInstance is a small helper: consts by name, nulls by negative
// convention in the spec strings ("_x" prefix).
func buildTestInstance(t *testing.T, facts [][]string) *Instance {
	t.Helper()
	in := New()
	nulls := make(map[string]TermID)
	for _, f := range facts {
		p := in.Pred(f[0], len(f)-1)
		args := make([]TermID, len(f)-1)
		for i, s := range f[1:] {
			if s[0] == '_' {
				id, ok := nulls[s]
				if !ok {
					id = in.Terms.FreshNull(1)
					nulls[s] = id
				}
				args[i] = id
			} else {
				args[i] = in.Terms.Const(s)
			}
		}
		in.Add(p, args)
	}
	return in
}

func TestCoreRedundantNullFact(t *testing.T) {
	// p(a,b) plus p(a,_x): the null fact folds onto the constant fact.
	in := buildTestInstance(t, [][]string{
		{"p", "a", "b"},
		{"p", "a", "_x"},
	})
	core, removed := Core(in)
	if removed != 1 || core.Size() != 1 {
		t.Errorf("removed=%d size=%d", removed, core.Size())
	}
	if core.Strings()[0] != "p(a,b)" {
		t.Errorf("core: %v", core.Strings())
	}
}

func TestCoreKeepsNonRedundantNulls(t *testing.T) {
	// p(a,_x), q(_x): the null is load-bearing (q has no constant witness).
	in := buildTestInstance(t, [][]string{
		{"p", "a", "_x"},
		{"q", "_x"},
	})
	core, removed := Core(in)
	if removed != 0 || core.Size() != 2 {
		t.Errorf("removed=%d size=%d %v", removed, core.Size(), core.Strings())
	}
}

func TestCoreConstantsAreRigid(t *testing.T) {
	// Two constant facts never fold onto each other.
	in := buildTestInstance(t, [][]string{
		{"p", "a", "b"},
		{"p", "b", "a"},
	})
	core, removed := Core(in)
	if removed != 0 || core.Size() != 2 {
		t.Errorf("removed=%d size=%d", removed, core.Size())
	}
}

func TestCoreChainFolds(t *testing.T) {
	// A null chain hanging off a loop: e(a,a) plus e(a,_1), e(_1,_2)
	// folds entirely onto the loop.
	in := buildTestInstance(t, [][]string{
		{"e", "a", "a"},
		{"e", "a", "_1"},
		{"e", "_1", "_2"},
	})
	core, removed := Core(in)
	if removed != 2 || core.Size() != 1 {
		t.Errorf("removed=%d core=%v", removed, core.Strings())
	}
}

func TestCoreJointFold(t *testing.T) {
	// Folding must be consistent across facts sharing a null: r(_x,b),
	// s(_x) folds onto r(a,b), s(a) only if _x maps to a in both.
	in := buildTestInstance(t, [][]string{
		{"r", "a", "b"},
		{"s", "a"},
		{"r", "_x", "b"},
		{"s", "_x"},
	})
	core, removed := Core(in)
	if removed != 2 || core.Size() != 2 {
		t.Errorf("removed=%d core=%v", removed, core.Strings())
	}
	// Now make the fold impossible: _y occurs in s but with r(_y,c).
	in2 := buildTestInstance(t, [][]string{
		{"r", "a", "b"},
		{"s", "a"},
		{"r", "_y", "c"},
		{"s", "_y"},
	})
	core2, removed2 := Core(in2)
	if removed2 != 0 || core2.Size() != 4 {
		t.Errorf("removed=%d core=%v", removed2, core2.Strings())
	}
}

func TestCoreOfCoreIsIdentity(t *testing.T) {
	in := buildTestInstance(t, [][]string{
		{"p", "a", "_x"},
		{"p", "a", "_z"},
		{"q", "_x"},
	})
	core, _ := Core(in)
	again, removed := Core(core)
	if removed != 0 || again.Size() != core.Size() {
		t.Errorf("core not idempotent: removed=%d", removed)
	}
}

func TestCoreEmptyAndGround(t *testing.T) {
	in := New()
	core, removed := Core(in)
	if removed != 0 || core.Size() != 0 {
		t.Error("empty instance mishandled")
	}
	ground := buildTestInstance(t, [][]string{{"p", "a"}, {"p", "b"}})
	core, removed = Core(ground)
	if removed != 0 || core.Size() != 2 {
		t.Error("ground instance must be its own core")
	}
}
