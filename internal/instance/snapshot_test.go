package instance

import (
	"testing"

	"chaseterm/internal/logic"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	f()
}

// TestFreezeGuardsMutation: the Snapshot API turns the single-writer
// contract into a checked one — hot mutators panic while a snapshot is
// live and work again after Release.
func TestFreezeGuardsMutation(t *testing.T) {
	in := New()
	p := in.Pred("p", 1)
	a := in.Terms.Const("a")
	in.Add(p, []TermID{a})

	snap := in.Freeze()
	if snap.Horizon() != 1 || snap.Size() != 1 {
		t.Fatalf("horizon %d size %d, want 1 1", snap.Horizon(), snap.Size())
	}
	mustPanic(t, "Add while frozen", func() { in.Add(p, []TermID{a}) })
	mustPanic(t, "FreshNull while frozen", func() { in.Terms.FreshNull(1) })
	mustPanic(t, "Const interning while frozen", func() { in.Terms.Const("fresh") })
	mustPanic(t, "Pred interning while frozen", func() { in.Pred("q", 2) })
	// Pure lookups stay available to frozen readers.
	if got := in.Pred("p", 1); got != p {
		t.Errorf("frozen Pred lookup = %d, want %d", got, p)
	}
	if in.Terms.Const("a") != a {
		t.Error("frozen Const lookup changed the id")
	}
	if !snap.Contains(p, []TermID{a}) {
		t.Error("snapshot must contain the pre-freeze fact")
	}

	// Nested freezes: writable only after the last Release.
	snap2 := in.Freeze()
	snap2.Release()
	mustPanic(t, "Add with one snapshot still live", func() { in.Add(p, []TermID{a}) })
	snap.Release()
	if _, added := in.Add(p, []TermID{in.Terms.Const("b")}); !added {
		t.Error("Add after Release must work")
	}
	mustPanic(t, "unbalanced Release", func() { snap.Release() })
}

// TestSnapshotAsOfMatching: the as-of anchored enumeration sees exactly
// the facts that existed when the anchor was added — the sequential
// discovery view — while the plain snapshot enumeration sees the whole
// frozen prefix.
func TestSnapshotAsOfMatching(t *testing.T) {
	in := New()
	e := in.Pred("e", 2)
	terms := make([]TermID, 5)
	for i, name := range []string{"a", "b", "c", "d", "f"} {
		terms[i] = in.Terms.Const(name)
	}
	// Facts in insertion order: e(a,b) id 0, e(b,c) id 1, e(c,d) id 2.
	for i := 0; i < 3; i++ {
		in.Add(e, []TermID{terms[i], terms[i+1]})
	}
	pat, err := CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
		logic.NewAtom("e", logic.Variable("Y"), logic.Variable("Z")),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := in.Freeze()
	defer snap.Release()

	count := func(anchor int, fid FactID) int {
		n := 0
		var sc MatchScratch
		snap.FindHomsAnchoredAsOfWith(&sc, pat, anchor, fid, func([]TermID) bool { n++; return true })
		return n
	}
	// Anchored at fact 1 = e(b,c) as atom 0: the join partner e(c,d) is
	// fact 2, which did not exist yet when fact 1 was added.
	if got := count(0, 1); got != 0 {
		t.Errorf("as-of anchor fact 1 atom 0: %d matches, want 0", got)
	}
	// Anchored at fact 1 as atom 1: e(a,b) (fact 0) already existed.
	if got := count(1, 1); got != 1 {
		t.Errorf("as-of anchor fact 1 atom 1: %d matches, want 1", got)
	}
	// Anchored at fact 2 as atom 1: partner e(b,c) is fact 1 — visible.
	if got := count(1, 2); got != 1 {
		t.Errorf("as-of anchor fact 2 atom 1: %d matches, want 1", got)
	}
	// The unanchored snapshot enumeration sees the whole prefix.
	var sc MatchScratch
	n := 0
	snap.FindHomsWith(&sc, pat, nil, func([]TermID) bool { n++; return true })
	if n != 2 {
		t.Errorf("snapshot FindHoms: %d matches, want 2", n)
	}
	if !snap.HasHomWith(&sc, pat, nil) {
		t.Error("snapshot HasHom must see a match")
	}
}

// TestSnapshotHorizonHidesLaterFacts: facts added after the freeze (on a
// second, released snapshot's instance) are invisible through the first
// snapshot's bounds. Exercised via the matcher's limit compare on both
// candidate sources.
func TestSnapshotHorizonBounds(t *testing.T) {
	in := New()
	e := in.Pred("e", 2)
	a, b, c := in.Terms.Const("a"), in.Terms.Const("b"), in.Terms.Const("c")
	in.Add(e, []TermID{a, b})
	snap := in.Freeze()
	snap.Release() // horizon 1 captured, instance writable again
	in.Add(e, []TermID{b, c})

	pat, err := CompileBody(in, []logic.Atom{
		logic.NewAtom("e", logic.Variable("X"), logic.Variable("Y")),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sc MatchScratch
	n := 0
	snap.FindHomsWith(&sc, pat, nil, func([]TermID) bool { n++; return true })
	if n != 1 {
		t.Errorf("stale snapshot sees %d facts, want 1 (its horizon)", n)
	}
	if snap.Contains(e, []TermID{b, c}) {
		t.Error("stale snapshot must not contain a post-freeze fact")
	}
	mustPanic(t, "Fact beyond horizon", func() { snap.Fact(1) })
	mustPanic(t, "as-of anchor beyond horizon", func() {
		var sc2 MatchScratch
		snap.FindHomsAnchoredAsOfWith(&sc2, pat, 0, 1, nil)
	})
}
