package instance

import (
	"fmt"

	"chaseterm/internal/logic"
)

// Slot is one argument position of a compiled pattern atom: either a
// variable (by dense index) or a fixed ground term.
type Slot struct {
	IsVar bool
	Var   int
	Term  TermID
}

// PatternAtom is a compiled body atom.
type PatternAtom struct {
	Pred PredID
	Args []Slot
}

// Pattern is a compiled conjunction of atoms over variables indexed
// 0..NumVars-1, ready for homomorphism enumeration against an instance.
type Pattern struct {
	Atoms   []PatternAtom
	NumVars int
	// VarNames maps the dense variable index back to the source variable,
	// for diagnostics.
	VarNames []logic.Variable
}

// CompileBody compiles a conjunction of logic atoms against the instance's
// predicate and constant tables. The variable order (and hence the binding
// layout) is the order of first occurrence.
func CompileBody(in *Instance, atoms []logic.Atom) (*Pattern, error) {
	p := &Pattern{}
	varIdx := make(map[logic.Variable]int)
	for _, a := range atoms {
		pa := PatternAtom{Pred: in.Pred(a.Pred, len(a.Args))}
		for _, t := range a.Args {
			switch t := t.(type) {
			case logic.Variable:
				i, ok := varIdx[t]
				if !ok {
					i = p.NumVars
					varIdx[t] = i
					p.NumVars++
					p.VarNames = append(p.VarNames, t)
				}
				pa.Args = append(pa.Args, Slot{IsVar: true, Var: i})
			case logic.Constant:
				pa.Args = append(pa.Args, Slot{Term: in.Terms.Const(string(t))})
			default:
				return nil, fmt.Errorf("instance: unsupported term %v in pattern", t)
			}
		}
		p.Atoms = append(p.Atoms, pa)
	}
	return p, nil
}

// VarIndex returns the dense index of the named variable, or -1.
func (p *Pattern) VarIndex(v logic.Variable) int {
	for i, w := range p.VarNames {
		if w == v {
			return i
		}
	}
	return -1
}

// matchAtom attempts to unify the pattern atom with the fact under the
// current binding. On success it returns the list of variables newly bound
// (for backtracking) and true.
func matchAtom(pa *PatternAtom, f Fact, binding []TermID) ([]int, bool) {
	var bound []int
	for i, s := range pa.Args {
		t := f.Args[i]
		if !s.IsVar {
			if s.Term != t {
				undo(binding, bound)
				return nil, false
			}
			continue
		}
		if b := binding[s.Var]; b != NoTerm {
			if b != t {
				undo(binding, bound)
				return nil, false
			}
			continue
		}
		binding[s.Var] = t
		bound = append(bound, s.Var)
	}
	return bound, true
}

func undo(binding []TermID, bound []int) {
	for _, v := range bound {
		binding[v] = NoTerm
	}
}

// candidates returns the candidate fact ids for a pattern atom under the
// current binding, choosing the most selective available access path:
// the (pred, pos, term) index when some argument is already ground, else
// the full predicate extent. The returned estimate is len(candidates).
func (in *Instance) candidates(pa *PatternAtom, binding []TermID) []FactID {
	best := in.byPred[pa.Pred]
	usedIndex := false
	for i, s := range pa.Args {
		var t TermID = NoTerm
		if !s.IsVar {
			t = s.Term
		} else if binding[s.Var] != NoTerm {
			t = binding[s.Var]
		}
		if t != NoTerm {
			c := in.ByPosTerm(pa.Pred, i, t)
			if !usedIndex || len(c) < len(best) {
				best = c
				usedIndex = true
			}
		}
	}
	return best
}

// FindHoms enumerates every homomorphism from the pattern into the
// instance, extending the initial binding (pass nil for an unconstrained
// search). The callback receives the complete binding (indexed by pattern
// variable); it must not retain the slice. Returning false stops the
// enumeration. FindHoms reports whether the enumeration ran to completion
// (true) or was stopped by the callback (false).
//
// Join order: at each step the remaining atom with the fewest candidate
// facts under the current binding is matched next — a greedy
// smallest-relation-first plan that keeps the backtracking search cheap on
// the chase workloads (bodies are small, instances are large).
func (in *Instance) FindHoms(p *Pattern, initial []TermID, yield func(binding []TermID) bool) bool {
	binding := make([]TermID, p.NumVars)
	for i := range binding {
		binding[i] = NoTerm
	}
	for i, t := range initial {
		if i < len(binding) {
			binding[i] = t
		}
	}
	remaining := make([]int, len(p.Atoms))
	for i := range remaining {
		remaining[i] = i
	}
	return in.findRec(p, binding, remaining, yield)
}

// FindHomsAnchored enumerates homomorphisms in which the pattern atom at
// index anchor is mapped exactly to the fact with id anchorFact. This is the
// delta-matching primitive used by the chase engines: when a fact is newly
// derived, only homomorphisms using it need to be discovered.
func (in *Instance) FindHomsAnchored(p *Pattern, anchor int, anchorFact FactID, yield func(binding []TermID) bool) bool {
	binding := make([]TermID, p.NumVars)
	for i := range binding {
		binding[i] = NoTerm
	}
	bound, ok := matchAtom(&p.Atoms[anchor], in.facts[anchorFact], binding)
	if !ok {
		return true
	}
	remaining := make([]int, 0, len(p.Atoms)-1)
	for i := range p.Atoms {
		if i != anchor {
			remaining = append(remaining, i)
		}
	}
	complete := in.findRec(p, binding, remaining, yield)
	undo(binding, bound)
	return complete
}

func (in *Instance) findRec(p *Pattern, binding []TermID, remaining []int, yield func([]TermID) bool) bool {
	if len(remaining) == 0 {
		return yield(binding)
	}
	// Pick the remaining atom with the fewest candidates.
	bestPos := 0
	var bestCand []FactID
	for i, ai := range remaining {
		c := in.candidates(&p.Atoms[ai], binding)
		if i == 0 || len(c) < len(bestCand) {
			bestPos, bestCand = i, c
			if len(c) == 0 {
				return true // no match possible down this branch
			}
		}
	}
	ai := remaining[bestPos]
	rest := make([]int, 0, len(remaining)-1)
	rest = append(rest, remaining[:bestPos]...)
	rest = append(rest, remaining[bestPos+1:]...)
	for _, fid := range bestCand {
		bound, ok := matchAtom(&p.Atoms[ai], in.facts[fid], binding)
		if !ok {
			continue
		}
		if !in.findRec(p, binding, rest, yield) {
			undo(binding, bound)
			return false
		}
		undo(binding, bound)
	}
	return true
}

// CountHoms returns the number of homomorphisms from the pattern into the
// instance.
func (in *Instance) CountHoms(p *Pattern) int {
	n := 0
	in.FindHoms(p, nil, func([]TermID) bool { n++; return true })
	return n
}

// HasHom reports whether at least one homomorphism extending the initial
// binding exists.
func (in *Instance) HasHom(p *Pattern, initial []TermID) bool {
	found := false
	in.FindHoms(p, initial, func([]TermID) bool { found = true; return false })
	return found
}
