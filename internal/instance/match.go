package instance

import (
	"fmt"

	"chaseterm/internal/logic"
)

// Slot is one argument position of a compiled pattern atom: either a
// variable (by dense index) or a fixed ground term.
type Slot struct {
	IsVar bool
	Var   int
	Term  TermID
}

// PatternAtom is a compiled body atom.
type PatternAtom struct {
	Pred PredID
	Args []Slot
}

// Pattern is a compiled conjunction of atoms over variables indexed
// 0..NumVars-1, ready for homomorphism enumeration against an instance.
type Pattern struct {
	Atoms   []PatternAtom
	NumVars int
	// VarNames maps the dense variable index back to the source variable,
	// for diagnostics.
	VarNames []logic.Variable

	// plans[0] is the static join order for an unanchored enumeration;
	// plans[1+a] the order (excluding atom a) when atom a is the anchor.
	// Compiled once by Compile; see FindHoms for the lazy fallback.
	plans [][]int32
}

// CompileBody compiles a conjunction of logic atoms against the instance's
// predicate and constant tables. The variable order (and hence the binding
// layout) is the order of first occurrence. Join plans are compiled
// eagerly, so the returned pattern is immediately safe for concurrent
// enumeration over a frozen instance.
func CompileBody(in *Instance, atoms []logic.Atom) (*Pattern, error) {
	return (*PatternSet)(nil).Compile(in, atoms, nil)
}

// PatternSet batches the storage of many compiled patterns — the pattern
// structs, their atom and slot arrays, and their variable name tables —
// into a handful of shared growing backings, so that compiling a whole
// rule set costs a few allocations instead of a few per pattern. Earlier
// patterns stay valid across backing growth: retired arrays are never
// mutated. A nil *PatternSet is usable and compiles each pattern into
// fresh storage.
type PatternSet struct {
	pats  []Pattern
	atoms []PatternAtom
	slots []Slot
	names []logic.Variable
}

func (ps *PatternSet) pattern() *Pattern {
	if ps == nil {
		return &Pattern{}
	}
	ps.pats = append(ps.pats, Pattern{})
	return &ps.pats[len(ps.pats)-1]
}

// Compile compiles a conjunction of atoms like CompileBody, drawing
// storage from the set. seedVars, when non-nil, pre-binds the first
// variable indexes in order (the chase uses this to put a rule's frontier
// first in its head pattern).
func (ps *PatternSet) Compile(in *Instance, atoms []logic.Atom, seedVars []logic.Variable) (*Pattern, error) {
	if ps == nil {
		ps = &PatternSet{}
	}
	p := ps.pattern()
	atomStart, nameStart := len(ps.atoms), len(ps.names)
	ps.names = append(ps.names, seedVars...)
	p.NumVars = len(seedVars)
	for _, a := range atoms {
		start := len(ps.slots)
		for _, t := range a.Args {
			switch t := t.(type) {
			case logic.Variable:
				i := varIndexIn(ps.names[nameStart:], t)
				if i < 0 {
					i = p.NumVars
					p.NumVars++
					ps.names = append(ps.names, t)
				}
				ps.slots = append(ps.slots, Slot{IsVar: true, Var: i})
			case logic.Constant:
				ps.slots = append(ps.slots, Slot{Term: in.Terms.Const(string(t))})
			default:
				return nil, fmt.Errorf("instance: unsupported term %v in pattern", t)
			}
		}
		ps.atoms = append(ps.atoms, PatternAtom{
			Pred: in.Pred(a.Pred, len(a.Args)),
			Args: ps.slots[start:len(ps.slots):len(ps.slots)],
		})
	}
	p.Atoms = ps.atoms[atomStart:len(ps.atoms):len(ps.atoms)]
	p.VarNames = ps.names[nameStart:len(ps.names):len(ps.names)]
	p.Compile()
	return p, nil
}

func varIndexIn(names []logic.Variable, v logic.Variable) int {
	for i, w := range names {
		if w == v {
			return i
		}
	}
	return -1
}

// VarIndex returns the dense index of the named variable, or -1.
func (p *Pattern) VarIndex(v logic.Variable) int {
	for i, w := range p.VarNames {
		if w == v {
			return i
		}
	}
	return -1
}

// Compile precomputes the pattern's static join plans: one atom order for
// the unanchored enumeration and one per anchor atom. The order is chosen
// by selectivity class — greedily preferring atoms whose slots are ground
// (constants) or join with already-ordered atoms, so that each level of
// the enumeration can use the (pred, pos, term) index. Compile is
// idempotent; CompileBody and the chase compiler call it eagerly.
// Patterns built by hand are compiled lazily on first use, which is safe
// only under the package's single-writer contract.
// smallPlans are the shared immutable plans of 0- and 1-atom patterns —
// the overwhelmingly common case (linear rules): no per-pattern plan
// storage at all.
var smallPlans = [][][]int32{
	{{}},
	{{0}, {}},
}

func (p *Pattern) Compile() {
	if p.plans != nil {
		return
	}
	n := len(p.Atoms)
	if n < len(smallPlans) {
		p.plans = smallPlans[n]
		return
	}
	plans := make([][]int32, 1+n)
	// One backing array for every plan order; one pair of scratch bitmaps.
	backing := make([]int32, 0, n+n*max(n-1, 0))
	bound := make([]bool, p.NumVars)
	used := make([]bool, n)
	for a := -1; a < n; a++ {
		start := len(backing)
		backing = p.planOrder(a, backing, bound, used)
		plans[1+a] = backing[start:len(backing):len(backing)]
	}
	p.plans = plans
}

// planOrder appends a static atom order to backing, assuming the anchor
// atom's variables (if any) are bound first. Greedy: repeatedly pick the
// unordered atom with the most ground-or-bound slots, breaking ties
// toward fewer free variables and lower index. bound and used are
// caller-provided scratch bitmaps.
func (p *Pattern) planOrder(anchor int, backing []int32, bound, used []bool) []int32 {
	n := len(p.Atoms)
	for i := range bound {
		bound[i] = false
	}
	for i := range used {
		used[i] = false
	}
	size := n
	if anchor >= 0 {
		used[anchor] = true
		size = n - 1
		for _, s := range p.Atoms[anchor].Args {
			if s.IsVar {
				bound[s.Var] = true
			}
		}
	}
	order := backing
	for len(order) < len(backing)+size {
		best, bestScore, bestFree := -1, -1, 0
		for ai := range p.Atoms {
			if used[ai] {
				continue
			}
			score, free := 0, 0
			for _, s := range p.Atoms[ai].Args {
				if !s.IsVar || bound[s.Var] {
					score++
				} else {
					free++
				}
			}
			if score > bestScore || (score == bestScore && free < bestFree) {
				best, bestScore, bestFree = ai, score, free
			}
		}
		used[best] = true
		order = append(order, int32(best))
		for _, s := range p.Atoms[best].Args {
			if s.IsVar {
				bound[s.Var] = true
			}
		}
	}
	return order
}

// MatchScratch holds the reusable per-enumeration state of the matcher:
// the variable binding and one candidate cursor + undo list per join
// level. A zero MatchScratch is ready to use; it grows to the largest
// pattern it has served and is reused across calls without allocating.
// A scratch must not be shared between concurrently running enumerations,
// nor between an enumeration and a nested one started from its callback —
// use one scratch per nesting level.
type MatchScratch struct {
	binding []TermID
	levels  []matchLevel
	anchor  []int32
}

// candSrc is a level's candidate source: either a dense predicate extent
// (list non-nil) or an index posting chain starting at head and linked
// through Instance.next at argument position pos. n is the candidate
// count, used for selectivity comparison.
type candSrc struct {
	list []FactID
	head FactID
	pos  int32
	n    int32
}

type matchLevel struct {
	src  candSrc
	pos  int   // cursor into src.list
	cur  int32 // current chain fact id+1; 0 = exhausted
	undo []int32
}

// start positions the level at the first candidate of its source.
func (L *matchLevel) start(src candSrc) {
	L.src = src
	L.pos = 0
	L.cur = 0
	if src.list == nil && src.n > 0 {
		L.cur = int32(src.head) + 1
	}
}

// next yields the level's next candidate fact id. Both candidate
// sources enumerate facts in insertion order — extents are appended to
// and posting chains are tail-linked by Add — so fact ids are strictly
// increasing and the first candidate at or beyond limit exhausts the
// level. That monotonicity is what makes the horizon bound of
// Snapshot.FindHomsAnchoredAsOfWith a single compare instead of a
// filter.
func (L *matchLevel) next(in *Instance, limit FactID) (FactID, bool) {
	if L.src.list != nil {
		if L.pos < len(L.src.list) {
			f := L.src.list[L.pos]
			if f >= limit {
				return 0, false
			}
			L.pos++
			return f, true
		}
		return 0, false
	}
	if L.cur == 0 {
		return 0, false
	}
	f := FactID(L.cur - 1)
	if f >= limit {
		return 0, false
	}
	L.cur = in.next[in.facts[f].off+L.src.pos]
	return f, true
}

// prepare sizes the scratch for the pattern and returns the binding slice
// reset to all-unbound.
func (sc *MatchScratch) prepare(p *Pattern) []TermID {
	if cap(sc.binding) < p.NumVars {
		sc.binding = make([]TermID, p.NumVars)
	}
	if len(sc.levels) < len(p.Atoms) {
		sc.levels = append(sc.levels, make([]matchLevel, len(p.Atoms)-len(sc.levels))...)
	}
	b := sc.binding[:p.NumVars]
	for i := range b {
		b[i] = NoTerm
	}
	return b
}

// matchAtomInto unifies the pattern atom with the fact under the current
// binding. Variables newly bound are recorded in *undo (reset first) for
// backtracking; on failure the binding is restored and false returned.
//
//chaselint:hotpath
func matchAtomInto(pa *PatternAtom, f Fact, binding []TermID, undo *[]int32) bool {
	u := (*undo)[:0]
	for i, s := range pa.Args {
		t := f.Args[i]
		if !s.IsVar {
			if s.Term != t {
				undoBinding(binding, u)
				*undo = u
				return false
			}
			continue
		}
		if b := binding[s.Var]; b != NoTerm {
			if b != t {
				undoBinding(binding, u)
				*undo = u
				return false
			}
			continue
		}
		binding[s.Var] = t
		u = append(u, int32(s.Var))
	}
	*undo = u
	return true
}

func undoBinding(binding []TermID, bound []int32) {
	for _, v := range bound {
		binding[v] = NoTerm
	}
}

// candSource returns the candidate source for a pattern atom under the
// current binding, choosing the most selective available access path: the
// shortest (pred, pos, term) index chain among the ground argument
// positions, else the full predicate extent. Allocation-free.
//
//chaselint:hotpath
func (in *Instance) candSource(pa *PatternAtom, binding []TermID) candSrc {
	ext := in.byPred[pa.Pred]
	best := candSrc{list: ext, n: int32(len(ext))}
	usedIndex := false
	for i, s := range pa.Args {
		var t TermID = NoTerm
		if !s.IsVar {
			t = s.Term
		} else if binding[s.Var] != NoTerm {
			t = binding[s.Var]
		}
		if t != NoTerm {
			ref, ok := in.posting(pa.Pred, int32(i), t)
			if !ok {
				return candSrc{} // no fact matches this ground position
			}
			if !usedIndex || ref.count < best.n {
				best = candSrc{head: ref.head, pos: int32(i), n: ref.count}
				usedIndex = true
			}
		}
	}
	return best
}

// runPlan enumerates matches of the ordered atoms, extending binding,
// with an iterative backtracking loop over per-level candidate cursors.
// It reports whether the enumeration ran to completion. A nil yield is
// the allocation-free existence check: the enumeration "stops" (returns
// false) at the first complete match. Facts with id >= limit are
// invisible to the enumeration; unbounded callers pass the instance
// size (no fact is ever excluded, and candidate sources are monotone in
// fact id, so the bound costs one compare per candidate).
//
//chaselint:hotpath
func (in *Instance) runPlan(p *Pattern, order []int32, sc *MatchScratch, binding []TermID, limit FactID, yield func([]TermID) bool) bool {
	n := len(order)
	if n == 0 {
		if yield == nil {
			return false
		}
		return yield(binding)
	}
	levels := sc.levels[:n]
	lvl := 0
	levels[0].start(in.candSource(&p.Atoms[order[0]], binding))
	for {
		L := &levels[lvl]
		descended := false
		for {
			fid, ok := L.next(in, limit)
			if !ok {
				break
			}
			if !matchAtomInto(&p.Atoms[order[lvl]], in.facts[fid], binding, &L.undo) {
				continue
			}
			if lvl+1 == n {
				if yield == nil || !yield(binding) {
					return false
				}
				undoBinding(binding, L.undo)
				continue
			}
			lvl++
			levels[lvl].start(in.candSource(&p.Atoms[order[lvl]], binding))
			descended = true
			break
		}
		if descended {
			continue
		}
		if lvl == 0 {
			return true
		}
		lvl--
		undoBinding(binding, levels[lvl].undo)
	}
}

func checkInitial(p *Pattern, initial []TermID) {
	if len(initial) > p.NumVars {
		panic(fmt.Sprintf("instance: FindHoms initial binding has %d terms but the pattern has %d variables",
			len(initial), p.NumVars))
	}
}

// FindHomsWith enumerates every homomorphism from the pattern into the
// instance using the caller's scratch, extending the initial binding
// (pass nil for an unconstrained search; an initial binding longer than
// p.NumVars panics). The callback receives the complete binding (indexed
// by pattern variable); it must not retain the slice. Returning false
// stops the enumeration. FindHomsWith reports whether the enumeration ran
// to completion (true) or was stopped by the callback (false).
//
// Join order: the pattern's precompiled plan — atoms ordered by
// selectivity class — with the access path per level (index posting list
// vs full extent) still chosen at run time against the live binding.
//
//chaselint:hotpath
func (in *Instance) FindHomsWith(sc *MatchScratch, p *Pattern, initial []TermID, yield func(binding []TermID) bool) bool {
	checkInitial(p, initial)
	p.Compile()
	binding := sc.prepare(p)
	copy(binding, initial)
	return in.runPlan(p, p.plans[0], sc, binding, FactID(len(in.facts)), yield)
}

// FindHoms is FindHomsWith with a one-shot scratch. Prefer FindHomsWith
// on hot paths.
func (in *Instance) FindHoms(p *Pattern, initial []TermID, yield func(binding []TermID) bool) bool {
	var sc MatchScratch
	return in.FindHomsWith(&sc, p, initial, yield)
}

// FindHomsAnchoredWith enumerates homomorphisms in which the pattern atom
// at index anchor is mapped exactly to the fact with id anchorFact. This
// is the delta-matching primitive used by the chase engines: when a fact
// is newly derived, only homomorphisms using it need to be discovered.
//
//chaselint:hotpath
func (in *Instance) FindHomsAnchoredWith(sc *MatchScratch, p *Pattern, anchor int, anchorFact FactID, yield func(binding []TermID) bool) bool {
	p.Compile()
	binding := sc.prepare(p)
	if !matchAtomInto(&p.Atoms[anchor], in.facts[anchorFact], binding, &sc.anchor) {
		return true
	}
	return in.runPlan(p, p.plans[1+anchor], sc, binding, FactID(len(in.facts)), yield)
}

// FindHomsAnchored is FindHomsAnchoredWith with a one-shot scratch.
func (in *Instance) FindHomsAnchored(p *Pattern, anchor int, anchorFact FactID, yield func(binding []TermID) bool) bool {
	var sc MatchScratch
	return in.FindHomsAnchoredWith(&sc, p, anchor, anchorFact, yield)
}

// CountHoms returns the number of homomorphisms from the pattern into the
// instance.
func (in *Instance) CountHoms(p *Pattern) int {
	n := 0
	in.FindHoms(p, nil, func([]TermID) bool { n++; return true })
	return n
}

// HasHomWith reports whether at least one homomorphism extending the
// initial binding exists, using the caller's scratch. Allocation-free.
//
//chaselint:hotpath
func (in *Instance) HasHomWith(sc *MatchScratch, p *Pattern, initial []TermID) bool {
	checkInitial(p, initial)
	p.Compile()
	binding := sc.prepare(p)
	copy(binding, initial)
	return !in.runPlan(p, p.plans[0], sc, binding, FactID(len(in.facts)), nil)
}

// HasHom is HasHomWith with a one-shot scratch.
func (in *Instance) HasHom(p *Pattern, initial []TermID) bool {
	var sc MatchScratch
	return in.HasHomWith(&sc, p, initial)
}
