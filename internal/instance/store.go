package instance

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"chaseterm/internal/logic"
)

// PredID is a dense identifier of an interned predicate.
type PredID int32

// FactID is a dense identifier of a stored fact. Facts are never removed,
// so a FactID is stable for the lifetime of the instance.
type FactID int32

// Fact is a ground atom over interned term ids.
type Fact struct {
	Pred PredID
	Args []TermID
	// off is the fact's offset in the owning instance's argArena; the
	// (pred, pos, term) index chains through it. Zero for facts built
	// outside an instance.
	off int32
}

// postEntry is one posting chain of the (pred, pos, term) index: the key
// plus the first and last fact of the chain and its length. Facts are
// linked through Instance.next in insertion order, so enumeration visits
// facts exactly as posting-list slices would — without allocating a list
// per key. Entries live inline in an open-addressed, pointer-free table
// (count == 0 marks an empty slot), so index maintenance costs neither a
// Go map operation nor GC scan work.
type postEntry struct {
	pred       PredID
	pos        int32
	term       TermID
	head, tail FactID
	count      int32
}

func postHash(p PredID, pos int32, term TermID) uint64 {
	h := hashMix(hashSeed, uint64(uint32(p))|uint64(uint32(pos))<<32)
	return hashFinish(hashMix(h, uint64(uint32(term))))
}

// postTable is the open-addressed (pred, pos, term) index.
type postTable struct {
	entries []postEntry
	n       int
}

// lookup returns the entry for the key, or the empty slot it belongs in.
func (pt *postTable) lookup(p PredID, pos int32, term TermID) *postEntry {
	mask := uint64(len(pt.entries) - 1)
	i := postHash(p, pos, term) & mask
	for {
		e := &pt.entries[i]
		if e.count == 0 || (e.pred == p && e.pos == pos && e.term == term) {
			return e
		}
		i = (i + 1) & mask
	}
}

func (pt *postTable) grow() {
	old := pt.entries
	size := 2 * len(old)
	if size == 0 {
		size = 64
	}
	pt.entries = make([]postEntry, size)
	mask := uint64(size - 1)
	for i := range old {
		e := &old[i]
		if e.count == 0 {
			continue
		}
		j := postHash(e.pred, e.pos, e.term) & mask
		for pt.entries[j].count != 0 {
			j = (j + 1) & mask
		}
		pt.entries[j] = *e
	}
}

// Instance is a set of facts (a database instance, possibly containing
// invented nulls or Skolem terms) with per-predicate extents and a
// (predicate, position, term) hash index used by the homomorphism matcher.
//
// Concurrency: an Instance is single-writer. Mutating methods (Add, Pred,
// AddLogicAtom, and anything that interns terms) must be serialized by the
// caller; once an instance is frozen — no more writers — any number of
// goroutines may read it concurrently (Contains, ByPred, ByPosTerm,
// FindHoms and friends with per-goroutine MatchScratch, FactString, ...).
// The Freeze/Release Snapshot API makes that contract checked rather than
// advisory: while a Snapshot is live, the hot mutators panic.
type Instance struct {
	Terms *TermTable

	// frozen counts live Snapshots (see Freeze/Release in snapshot.go);
	// gen counts freezes. While frozen is non-zero the hot mutators
	// panic, enforcing the single-writer/frozen-read contract above.
	frozen atomic.Int32
	gen    uint64

	predByName map[string]PredID
	predNames  []string
	predArity  []int

	facts     []Fact
	factSlots []int32  // open-addressed: FactID+1, 0 = empty; keys live in facts
	argArena  []TermID // backing storage of every Fact.Args, append-only
	next      []int32  // parallel to argArena: next fact id+1 in the index chain
	byPred    [][]FactID
	index     postTable

	atomBuf []TermID // AddLogicAtom scratch (single-writer, like all mutation)
}

// New creates an empty instance with a fresh term table.
func New() *Instance {
	return &Instance{
		Terms:      NewTermTable(),
		predByName: make(map[string]PredID),
	}
}

// Pred interns a predicate by name and arity. Using one name with two
// different arities is a programming error and panics (the parser and
// RuleSet.Validate reject such inputs earlier).
func (in *Instance) Pred(name string, arity int) PredID {
	if in.frozen.Load() != 0 {
		if id, ok := in.predByName[name]; ok && in.predArity[id] == arity {
			return id // pure lookup: no mutation, safe while frozen
		}
		panic("instance: Pred interning on a frozen instance (live Snapshot; see Freeze/Release)")
	}
	if id, ok := in.predByName[name]; ok {
		if in.predArity[id] != arity {
			panic(fmt.Sprintf("instance: predicate %s used with arity %d and %d", name, in.predArity[id], arity))
		}
		return id
	}
	id := PredID(len(in.predNames))
	in.predByName[name] = id
	in.predNames = append(in.predNames, name)
	in.predArity = append(in.predArity, arity)
	in.byPred = append(in.byPred, nil)
	return id
}

// LookupPred returns the id of a predicate if already interned.
func (in *Instance) LookupPred(name string) (PredID, bool) {
	id, ok := in.predByName[name]
	return id, ok
}

// PredName returns the name of a predicate id.
func (in *Instance) PredName(p PredID) string { return in.predNames[p] }

// PredArity returns the arity of a predicate id.
func (in *Instance) PredArity(p PredID) int { return in.predArity[p] }

// NumPreds returns the number of interned predicates.
func (in *Instance) NumPreds() int { return len(in.predNames) }

// Size returns the number of stored facts.
func (in *Instance) Size() int { return len(in.facts) }

// Fact returns the fact with the given id. The returned value shares the
// underlying argument slice; callers must not modify it.
func (in *Instance) Fact(id FactID) Fact { return in.facts[id] }

// factHash keys the fact dedup table: the predicate id tagged over the
// argument tuple. No key value is built — probes compare against in.facts.
func factHash(p PredID, args []TermID) uint64 { return hashTuple(int32(p), args) }

// findFact probes the open-addressed fact table. It returns the id on a
// hit, or the slot index where the fact would be inserted on a miss.
//
//chaselint:hotpath
func (in *Instance) findFact(p PredID, args []TermID, h uint64) (FactID, uint64, bool) {
	mask := uint64(len(in.factSlots) - 1)
	i := h & mask
	for {
		v := in.factSlots[i]
		if v == 0 {
			return 0, i, false
		}
		f := &in.facts[v-1]
		if f.Pred == p && termsEqual(f.Args, args) {
			return FactID(v - 1), i, true
		}
		i = (i + 1) & mask
	}
}

func (in *Instance) growFactSlots(size int) {
	in.factSlots = make([]int32, size)
	mask := uint64(size - 1)
	for id := range in.facts {
		f := &in.facts[id]
		i := factHash(f.Pred, f.Args) & mask
		for in.factSlots[i] != 0 {
			i = (i + 1) & mask
		}
		in.factSlots[i] = int32(id) + 1
	}
}

// Add inserts the fact p(args...) if not already present. It returns the
// fact id and whether the fact was newly added. The args slice is copied.
//
//chaselint:hotpath
func (in *Instance) Add(p PredID, args []TermID) (FactID, bool) {
	if in.frozen.Load() != 0 {
		panic("instance: Add on a frozen instance (live Snapshot; see Freeze/Release)")
	}
	if len(in.factSlots) == 0 {
		in.growFactSlots(16)
	} else if len(in.facts)*4 >= len(in.factSlots)*3 {
		in.growFactSlots(len(in.factSlots) * 2)
	}
	id0, slot, ok := in.findFact(p, args, factHash(p, args))
	if ok {
		return id0, false
	}
	// Copy args into the arena: amortized-free, and earlier Fact.Args
	// slices stay valid across arena growth (the old backing is immutable).
	start := len(in.argArena)
	in.argArena = append(in.argArena, args...)
	own := in.argArena[start:len(in.argArena):len(in.argArena)]
	for range args {
		in.next = append(in.next, 0)
	}
	id := FactID(len(in.facts))
	in.facts = append(in.facts, Fact{Pred: p, Args: own, off: int32(start)})
	in.factSlots[slot] = int32(id) + 1
	in.byPred[p] = append(in.byPred[p], id)
	for i, t := range own {
		if (in.index.n+len(own))*4 >= len(in.index.entries)*3 {
			in.index.grow()
		}
		e := in.index.lookup(p, int32(i), t)
		if e.count == 0 {
			*e = postEntry{pred: p, pos: int32(i), term: t, head: id, tail: id, count: 1}
			in.index.n++
		} else {
			in.next[in.facts[e.tail].off+int32(i)] = int32(id) + 1
			e.tail = id
			e.count++
		}
	}
	return id, true
}

// Contains reports whether the fact p(args...) is present. It performs no
// allocation.
//
//chaselint:hotpath
func (in *Instance) Contains(p PredID, args []TermID) bool {
	if len(in.factSlots) == 0 {
		return false
	}
	_, _, ok := in.findFact(p, args, factHash(p, args))
	return ok
}

// Lookup returns the id of the fact p(args...) if present. Like Contains
// it performs no allocation.
//
//chaselint:hotpath
func (in *Instance) Lookup(p PredID, args []TermID) (FactID, bool) {
	if len(in.factSlots) == 0 {
		return 0, false
	}
	id, _, ok := in.findFact(p, args, factHash(p, args))
	return id, ok
}

// ByPred returns the ids of all facts with the given predicate, in insertion
// order. The slice must not be modified.
func (in *Instance) ByPred(p PredID) []FactID { return in.byPred[p] }

// posting looks up the (pred, pos, term) index chain.
func (in *Instance) posting(p PredID, pos int32, term TermID) (postEntry, bool) {
	if len(in.index.entries) == 0 {
		return postEntry{}, false
	}
	e := in.index.lookup(p, pos, term)
	if e.count == 0 {
		return postEntry{}, false
	}
	return *e, true
}

// ByPosTerm returns the ids of all facts with predicate p whose argument
// at position pos equals term, in insertion order. The index stores
// intrusive chains, so this materializes a fresh slice per call — it is a
// convenience for tests and diagnostics; the matcher walks the chains
// directly.
func (in *Instance) ByPosTerm(p PredID, pos int, term TermID) []FactID {
	ref, ok := in.posting(p, int32(pos), term)
	if !ok {
		return nil
	}
	out := make([]FactID, 0, ref.count)
	for id, n := ref.head, ref.count; n > 0; n-- {
		out = append(out, id)
		nx := in.next[in.facts[id].off+int32(pos)]
		if nx == 0 {
			break
		}
		id = FactID(nx - 1)
	}
	return out
}

// AddLogicAtom interns and inserts a ground logic.Atom (constants only).
// It returns an error if the atom contains a variable.
func (in *Instance) AddLogicAtom(a logic.Atom) (FactID, bool, error) {
	p := in.Pred(a.Pred, len(a.Args))
	if cap(in.atomBuf) < len(a.Args) {
		in.atomBuf = make([]TermID, len(a.Args))
	}
	args := in.atomBuf[:len(a.Args)]
	for i, t := range a.Args {
		c, ok := t.(logic.Constant)
		if !ok {
			return 0, false, fmt.Errorf("instance: atom %s is not ground", a)
		}
		args[i] = in.Terms.Const(string(c))
	}
	id, added := in.Add(p, args) // Add copies args
	return id, added, nil
}

// FromAtoms builds an instance from ground atoms.
func FromAtoms(atoms []logic.Atom) (*Instance, error) {
	in := New()
	for _, a := range atoms {
		if _, _, err := in.AddLogicAtom(a); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// FactString renders a fact for diagnostics.
func (in *Instance) FactString(id FactID) string {
	f := in.facts[id]
	if len(f.Args) == 0 {
		return in.predNames[f.Pred]
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = in.Terms.String(a)
	}
	return in.predNames[f.Pred] + "(" + strings.Join(parts, ",") + ")"
}

// Strings renders every fact, sorted lexicographically — convenient for
// tests and goldens.
func (in *Instance) Strings() []string {
	out := make([]string, len(in.facts))
	for i := range in.facts {
		out[i] = in.FactString(FactID(i))
	}
	sort.Strings(out)
	return out
}

// MaxInventedDepth returns the maximum Skolem/null depth over all terms
// occurring in facts; 0 if the instance is invention-free.
func (in *Instance) MaxInventedDepth() int32 {
	var d int32
	for _, f := range in.facts {
		for _, t := range f.Args {
			if dd := in.Terms.Depth(t); dd > d {
				d = dd
			}
		}
	}
	return d
}
