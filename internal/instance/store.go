package instance

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"chaseterm/internal/logic"
)

// PredID is a dense identifier of an interned predicate.
type PredID int32

// FactID is a dense identifier of a stored fact. Facts are never removed,
// so a FactID is stable for the lifetime of the instance.
type FactID int32

// Fact is a ground atom over interned term ids.
type Fact struct {
	Pred PredID
	Args []TermID
}

type indexKey struct {
	pred PredID
	pos  int32
	term TermID
}

// Instance is a set of facts (a database instance, possibly containing
// invented nulls or Skolem terms) with per-predicate extents and a
// (predicate, position, term) hash index used by the homomorphism matcher.
type Instance struct {
	Terms *TermTable

	predByName map[string]PredID
	predNames  []string
	predArity  []int

	facts  []Fact
	lookup map[string]FactID
	byPred [][]FactID
	index  map[indexKey][]FactID
}

// New creates an empty instance with a fresh term table.
func New() *Instance {
	return &Instance{
		Terms:      NewTermTable(),
		predByName: make(map[string]PredID),
		lookup:     make(map[string]FactID),
		index:      make(map[indexKey][]FactID),
	}
}

// Pred interns a predicate by name and arity. Using one name with two
// different arities is a programming error and panics (the parser and
// RuleSet.Validate reject such inputs earlier).
func (in *Instance) Pred(name string, arity int) PredID {
	if id, ok := in.predByName[name]; ok {
		if in.predArity[id] != arity {
			panic(fmt.Sprintf("instance: predicate %s used with arity %d and %d", name, in.predArity[id], arity))
		}
		return id
	}
	id := PredID(len(in.predNames))
	in.predByName[name] = id
	in.predNames = append(in.predNames, name)
	in.predArity = append(in.predArity, arity)
	in.byPred = append(in.byPred, nil)
	return id
}

// LookupPred returns the id of a predicate if already interned.
func (in *Instance) LookupPred(name string) (PredID, bool) {
	id, ok := in.predByName[name]
	return id, ok
}

// PredName returns the name of a predicate id.
func (in *Instance) PredName(p PredID) string { return in.predNames[p] }

// PredArity returns the arity of a predicate id.
func (in *Instance) PredArity(p PredID) int { return in.predArity[p] }

// NumPreds returns the number of interned predicates.
func (in *Instance) NumPreds() int { return len(in.predNames) }

// Size returns the number of stored facts.
func (in *Instance) Size() int { return len(in.facts) }

// Fact returns the fact with the given id. The returned value shares the
// underlying argument slice; callers must not modify it.
func (in *Instance) Fact(id FactID) Fact { return in.facts[id] }

func factKey(p PredID, args []TermID) string {
	var b strings.Builder
	b.Grow(4 + 4*len(args))
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(p))
	b.Write(buf[:])
	for _, a := range args {
		binary.LittleEndian.PutUint32(buf[:], uint32(a))
		b.Write(buf[:])
	}
	return b.String()
}

// Add inserts the fact p(args...) if not already present. It returns the
// fact id and whether the fact was newly added. The args slice is copied.
func (in *Instance) Add(p PredID, args []TermID) (FactID, bool) {
	key := factKey(p, args)
	if id, ok := in.lookup[key]; ok {
		return id, false
	}
	own := make([]TermID, len(args))
	copy(own, args)
	id := FactID(len(in.facts))
	in.facts = append(in.facts, Fact{Pred: p, Args: own})
	in.lookup[key] = id
	in.byPred[p] = append(in.byPred[p], id)
	for i, t := range own {
		k := indexKey{pred: p, pos: int32(i), term: t}
		in.index[k] = append(in.index[k], id)
	}
	return id, true
}

// Contains reports whether the fact p(args...) is present.
func (in *Instance) Contains(p PredID, args []TermID) bool {
	_, ok := in.lookup[factKey(p, args)]
	return ok
}

// ByPred returns the ids of all facts with the given predicate, in insertion
// order. The slice must not be modified.
func (in *Instance) ByPred(p PredID) []FactID { return in.byPred[p] }

// ByPosTerm returns the ids of all facts with predicate p whose argument at
// position pos equals term. The slice must not be modified.
func (in *Instance) ByPosTerm(p PredID, pos int, term TermID) []FactID {
	return in.index[indexKey{pred: p, pos: int32(pos), term: term}]
}

// AddLogicAtom interns and inserts a ground logic.Atom (constants only).
// It returns an error if the atom contains a variable.
func (in *Instance) AddLogicAtom(a logic.Atom) (FactID, bool, error) {
	p := in.Pred(a.Pred, len(a.Args))
	args := make([]TermID, len(a.Args))
	for i, t := range a.Args {
		c, ok := t.(logic.Constant)
		if !ok {
			return 0, false, fmt.Errorf("instance: atom %s is not ground", a)
		}
		args[i] = in.Terms.Const(string(c))
	}
	id, added := in.Add(p, args)
	return id, added, nil
}

// FromAtoms builds an instance from ground atoms.
func FromAtoms(atoms []logic.Atom) (*Instance, error) {
	in := New()
	for _, a := range atoms {
		if _, _, err := in.AddLogicAtom(a); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// FactString renders a fact for diagnostics.
func (in *Instance) FactString(id FactID) string {
	f := in.facts[id]
	if len(f.Args) == 0 {
		return in.predNames[f.Pred]
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = in.Terms.String(a)
	}
	return in.predNames[f.Pred] + "(" + strings.Join(parts, ",") + ")"
}

// Strings renders every fact, sorted lexicographically — convenient for
// tests and goldens.
func (in *Instance) Strings() []string {
	out := make([]string, len(in.facts))
	for i := range in.facts {
		out[i] = in.FactString(FactID(i))
	}
	sort.Strings(out)
	return out
}

// MaxInventedDepth returns the maximum Skolem/null depth over all terms
// occurring in facts; 0 if the instance is invention-free.
func (in *Instance) MaxInventedDepth() int32 {
	var d int32
	for _, f := range in.facts {
		for _, t := range f.Args {
			if dd := in.Terms.Depth(t); dd > d {
				d = dd
			}
		}
	}
	return d
}
