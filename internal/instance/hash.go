package instance

import "math/bits"

// Integer-keyed hashing for the chase hot path. The three steady-state
// dedup structures — fact lookup, Skolem interning, trigger identity —
// all key on a small integer tag plus a tuple of TermIDs. Hashing mixes
// the raw words and finishes with a murmur3-style avalanche, so the low
// bits are usable as an index into power-of-two open-addressed tables.
// Nothing here materializes a key: probes compare against the backing
// arrays that already store the data.

const hashSeed uint64 = 0x9e3779b97f4a7c15

func hashMix(h, v uint64) uint64 {
	h ^= v
	h *= 0x9e3779b185ebca87
	return bits.RotateLeft64(h, 27)
}

func hashFinish(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashTuple hashes a tagged TermID tuple.
func hashTuple(tag int32, tuple []TermID) uint64 {
	h := hashMix(hashSeed, uint64(uint32(tag))^uint64(len(tuple))<<32)
	for _, t := range tuple {
		h = hashMix(h, uint64(uint32(t)))
	}
	return hashFinish(h)
}

func termsEqual(a, b []TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, t := range a {
		if t != b[i] {
			return false
		}
	}
	return true
}

// TupleSet is an insert-only open-addressed hash set of (tag, tuple) keys
// over TermIDs, backed by a flat arena: member tuples are stored
// contiguously, and set membership is decided by comparing the probe key
// against the arena directly — no per-key string or slice materialization.
// A hit performs zero allocations; a miss amortizes to the arena append.
//
// The zero value is ready to use. TupleSet is the trigger-identity store
// of the chase engine and the frontier dedup of the sequence explorer;
// like Instance it is single-writer (see the package comment).
type TupleSet struct {
	slots []int32  // id+1; 0 = empty
	tags  []int32  // per id
	offs  []int32  // len = len(tags)+1; tuple i is arena[offs[i]:offs[i+1]]
	arena []TermID // concatenated member tuples
}

// Len returns the number of member tuples.
func (s *TupleSet) Len() int { return len(s.tags) }

// Tuple returns a view of member id's tuple. The slice aliases the arena
// and must not be modified; it remains valid across later inserts.
func (s *TupleSet) Tuple(id int32) []TermID { return s.arena[s.offs[id]:s.offs[id+1]] }

// Tag returns member id's tag.
func (s *TupleSet) Tag(id int32) int32 { return s.tags[id] }

func (s *TupleSet) keyAt(id int32) (int32, []TermID) {
	return s.tags[id], s.arena[s.offs[id]:s.offs[id+1]]
}

// Insert adds (tag, tuple) if absent. It returns the member id and whether
// the key was newly added. The tuple is copied into the arena on a miss;
// a hit allocates nothing.
//
//chaselint:hotpath
func (s *TupleSet) Insert(tag int32, tuple []TermID) (int32, bool) {
	if len(s.slots) == 0 {
		s.grow(16)
		s.offs = append(s.offs, 0)
	} else if len(s.tags)*4 >= len(s.slots)*3 {
		s.grow(len(s.slots) * 2)
	}
	h := hashTuple(tag, tuple)
	mask := uint64(len(s.slots) - 1)
	i := h & mask
	for {
		v := s.slots[i]
		if v == 0 {
			id := int32(len(s.tags))
			s.tags = append(s.tags, tag)
			s.arena = append(s.arena, tuple...)
			s.offs = append(s.offs, int32(len(s.arena)))
			s.slots[i] = id + 1
			return id, true
		}
		t, tup := s.keyAt(v - 1)
		if t == tag && termsEqual(tup, tuple) {
			return v - 1, false
		}
		i = (i + 1) & mask
	}
}

// Contains reports whether (tag, tuple) is a member.
//
//chaselint:hotpath
func (s *TupleSet) Contains(tag int32, tuple []TermID) bool {
	if len(s.slots) == 0 {
		return false
	}
	h := hashTuple(tag, tuple)
	mask := uint64(len(s.slots) - 1)
	i := h & mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		t, tup := s.keyAt(v - 1)
		if t == tag && termsEqual(tup, tuple) {
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *TupleSet) grow(size int) {
	s.slots = make([]int32, size)
	mask := uint64(size - 1)
	for id := range s.tags {
		tag, tup := s.keyAt(int32(id))
		i := hashTuple(tag, tup) & mask
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = int32(id) + 1
	}
}
