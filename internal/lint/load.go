package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package, ready for
// analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File // non-test files, parsed with comments
	Types *types.Package
	Info  *types.Info

	directives []directive
	// funcDecls maps each function object to its declaration, for
	// analyzers that follow calls into same-package functions.
	funcDecls map[types.Object]*ast.FuncDecl
}

// Loader loads and type-checks the packages of a single Go module using
// only the standard library: module-internal imports resolve against the
// module root, everything else against GOROOT/src. Dependencies are
// checked without function bodies; module packages are checked fully,
// with types.Info recorded for the analyzers.
//
// The loader sees only non-test files (the invariants it enforces are
// production-code contracts; _test.go files are exercised by go test
// itself) and ignores cgo (CgoEnabled is forced off so that stdlib
// packages select their pure-Go fallbacks).
type Loader struct {
	RootDir    string
	ModulePath string
	Fset       *token.FileSet

	buildCtx build.Context
	pkgs     map[string]*pkgEntry
	// deprecated maps module-level objects whose doc carries a
	// "Deprecated:" paragraph to the first such line of the doc.
	deprecated map[types.Object]string
	// funcDocs maps function objects of module packages to their doc
	// text, for the Deprecated-wrapper exemptions.
	funcDocs map[types.Object]string
}

type pkgEntry struct {
	pkg     *Package // nil for non-module packages
	tpkg    *types.Package
	loading bool
	err     error
}

// NewLoader creates a loader for the module containing dir: the nearest
// ancestor with a go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return newLoader(root, modPath), nil
}

// NewFixtureLoader creates a loader rooted at a standalone fixture
// directory that is not part of any module; its packages import under
// the synthetic module path given by the directory's base name.
func NewFixtureLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return newLoader(abs, filepath.Base(abs)), nil
}

func newLoader(root, modPath string) *Loader {
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		RootDir:    root,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		buildCtx:   ctx,
		pkgs:       map[string]*pkgEntry{},
		deprecated: map[types.Object]string{},
		funcDocs:   map[types.Object]string{},
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// rel makes a file path relative to the module root for reporting.
func (l *Loader) rel(file string) string {
	if r, err := filepath.Rel(l.RootDir, file); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return file
}

// Load resolves the patterns ("./...", "./internal/chase", "dir/...")
// against the module root and returns the matched packages,
// type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "/...")
		if base == "." || base == "" {
			base = l.RootDir
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(l.RootDir, base)
		}
		if !recursive {
			dirs[filepath.Clean(base)] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var out []*Package
	for _, dir := range sortedKeys(dirs) {
		path, err := l.dirImportPath(dir)
		if err != nil {
			return nil, err
		}
		if !l.dirHasGoFiles(dir) {
			continue
		}
		entry := l.load(path)
		if entry.err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, entry.err)
		}
		out = append(out, entry.pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (l *Loader) dirHasGoFiles(dir string) bool {
	bp, err := l.buildCtx.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

func (l *Loader) dirImportPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: directory %s is outside the module root %s", dir, l.RootDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// moduleDir maps a module-internal import path to its directory, or ""
// if path does not belong to the module.
func (l *Loader) moduleDir(path string) string {
	if path == l.ModulePath {
		return l.RootDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.RootDir, filepath.FromSlash(rest))
	}
	return ""
}

// load type-checks the package at the import path, memoized. Module
// packages are checked fully with Info; all other packages resolve
// against GOROOT/src and are checked without function bodies.
func (l *Loader) load(path string) *pkgEntry {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return &pkgEntry{err: fmt.Errorf("import cycle through %s", path)}
		}
		return e
	}
	e := &pkgEntry{loading: true}
	l.pkgs[path] = e
	defer func() { e.loading = false }()

	moduleDir := l.moduleDir(path)
	dir := moduleDir
	if dir == "" {
		dir = filepath.Join(l.buildCtx.GOROOT, "src", filepath.FromSlash(path))
	}
	bp, err := l.buildCtx.ImportDir(dir, 0)
	if err != nil {
		e.err = err
		return e
	}
	full := moduleDir != ""
	mode := parser.SkipObjectResolution
	if full {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			e.err = err
			return e
		}
		files = append(files, f)
	}

	var info *types.Info
	if full {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
	}
	var checkErrs []error
	conf := types.Config{
		Importer:         (*loaderImporter)(l),
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
		Error:            func(err error) { checkErrs = append(checkErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	e.tpkg = tpkg
	if full {
		if len(checkErrs) > 0 {
			e.err = fmt.Errorf("type errors: %v", checkErrs[0])
			return e
		}
		pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
		l.index(pkg)
		e.pkg = pkg
	}
	// Dependency check errors are tolerated: with bodies ignored and cgo
	// off the exported API still checks, which is all the module needs.
	return e
}

// loaderImporter adapts the loader to types.ImporterFrom.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	e := (*Loader)(li).load(path)
	if e.err != nil {
		return nil, e.err
	}
	if e.tpkg == nil {
		return nil, fmt.Errorf("lint: could not import %s", path)
	}
	return e.tpkg, nil
}

// index builds the package's directive list, function-declaration map,
// and contributes to the loader-wide deprecated-object registry.
func (l *Loader) index(pkg *Package) {
	pkg.funcDecls = map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				kind, analyzer, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				position := l.Fset.Position(c.Pos())
				pkg.directives = append(pkg.directives, directive{
					kind: kind, analyzer: analyzer, reason: reason,
					file: l.rel(position.Filename), line: position.Line, pos: c.Pos(),
				})
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				obj := pkg.Info.Defs[d.Name]
				if obj == nil {
					continue
				}
				pkg.funcDecls[obj] = d
				doc := d.Doc.Text()
				l.funcDocs[obj] = doc
				if dep, ok := deprecationNote(doc); ok {
					l.deprecated[obj] = dep
				}
			case *ast.GenDecl:
				declDep, declOK := deprecationNote(d.Doc.Text())
				for _, spec := range d.Specs {
					var names []*ast.Ident
					var doc *ast.CommentGroup
					switch s := spec.(type) {
					case *ast.ValueSpec:
						names, doc = s.Names, s.Doc
					case *ast.TypeSpec:
						names, doc = []*ast.Ident{s.Name}, s.Doc
					}
					dep, ok := deprecationNote(doc.Text())
					if !ok {
						dep, ok = declDep, declOK
					}
					if !ok {
						continue
					}
					for _, name := range names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							l.deprecated[obj] = dep
						}
					}
				}
			}
		}
	}
}

// deprecationNote extracts the first "Deprecated:" line of a doc text.
func deprecationNote(doc string) (string, bool) {
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return line, true
		}
	}
	return "", false
}

// funcDocFor returns the doc text of the function object, if it is a
// module function the loader has seen.
func (l *Loader) funcDocFor(obj types.Object) string {
	return l.funcDocs[obj]
}
