package lint

import (
	"go/ast"
	"go/types"
)

// analyzerGoexit enforces the goroutine-ownership rule distilled from
// the portfolio racers: every go statement in library code must
// reference a drain — a sync.WaitGroup Done, a channel send or close —
// so the spawner (or someone it hands the channel to) can always wait
// the goroutine out, or it must carry an explicit //chaselint:owned
// directive whose reason documents who drains it. Goroutines whose body
// is a named same-package function are checked through that function's
// declaration.
var analyzerGoexit = &Analyzer{
	Name: "goexit",
	Doc:  "every spawned goroutine references a drain or is //chaselint:owned",
	Run:  runGoexit,
}

func runGoexit(p *Pass) {
	if !p.isLibraryPackage() {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if p.directiveNear("owned", gs.Pos()) {
				return true
			}
			if body := p.goBody(gs.Call); body != nil {
				if p.bodyDrains(body) {
					return true
				}
				p.Reportf(gs.Pos(), "goroutine has no visible drain (WaitGroup Done, channel send, or close); add one or annotate //chaselint:owned <reason>")
				return true
			}
			p.Reportf(gs.Pos(), "goroutine body cannot be inspected for a drain; annotate //chaselint:owned <reason>")
			return true
		})
	}
}

// goBody resolves the spawned function's body: a function literal
// directly, or the declaration of a named function of this package.
func (p *Pass) goBody(call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	fn := p.callee(call)
	if fn == nil {
		return nil
	}
	if decl, ok := p.Pkg.funcDecls[types.Object(fn)]; ok && decl.Body != nil {
		return decl.Body
	}
	return nil
}

// bodyDrains reports whether the goroutine body contains a drain
// marker: wg.Done(), a channel send, or close(ch).
func (p *Pass) bodyDrains(body *ast.BlockStmt) bool {
	drains := false
	ast.Inspect(body, func(n ast.Node) bool {
		if drains {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			drains = true
		case *ast.CallExpr:
			if p.isBuiltin(n, "close") {
				drains = true
				break
			}
			if fn := p.callee(n); fn != nil {
				switch fn.FullName() {
				case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Add":
					drains = true
				}
			}
		}
		return !drains
	})
	return drains
}
