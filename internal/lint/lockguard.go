package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerLockguard enforces the mutex discipline: every mu.Lock() (or
// RLock) in a function must be released by a defer mu.Unlock() — direct
// or inside a deferred closure — or by an Unlock on every path that
// leaves the function. The check is a conservative per-function path
// simulation over the AST: branches are explored independently and a
// lock still held at a return (or at the end of the body) without a
// matching defer is reported at its Lock site.
//
// Paths that end the process or unwind the stack (panic, os.Exit,
// log.Fatal*, runtime.Goexit) are not treated as returns; panic safety
// is the job of deferred unlocks, which the simulation honors. Functions
// using goto are skipped — the simulation has no CFG.
var analyzerLockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "every Lock pairs with a defer Unlock or an Unlock on all return paths",
	Run:  runLockguard,
}

func runLockguard(p *Pass) {
	for _, f := range p.Pkg.Files {
		// Every function-shaped body is its own scope: top-level decls and
		// each closure (a deferred closure may legitimately Lock/Unlock on
		// its own).
		forEachFuncBody(f, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
			checkLockBody(p, body)
		})
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkLockBody(p, lit.Body)
			}
			return true
		})
	}
}

// mutexOp classifies a call as a lock or unlock on a keyed mutex
// expression. The key pairs the receiver's source text with the
// write/read mode, so mu.Lock pairs with mu.Unlock and mu.RLock with
// mu.RUnlock.
func (p *Pass) mutexOp(call *ast.CallExpr) (key string, lock bool, ok bool) {
	fn := p.callee(call)
	if fn == nil {
		return "", false, false
	}
	var mode string
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		mode, lock = "w", true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		mode, lock = "w", false
	case "(*sync.RWMutex).RLock":
		mode, lock = "r", true
	case "(*sync.RWMutex).RUnlock":
		mode, lock = "r", false
	default:
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return types.ExprString(sel.X) + ":" + mode, lock, true
}

type lockState struct {
	held     map[string]token.Pos // key -> position of the acquiring Lock
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

type lockChecker struct {
	p        *Pass
	reported map[token.Pos]bool
	bail     bool // goto seen: abandon the function
}

func checkLockBody(p *Pass, body *ast.BlockStmt) {
	lc := &lockChecker{p: p, reported: map[token.Pos]bool{}}
	st := newLockState()
	terminated := lc.seq(body.List, st)
	if lc.bail || terminated {
		return
	}
	lc.leak(st, "function end")
}

func (lc *lockChecker) leak(st *lockState, where string) {
	for key, pos := range st.held {
		if st.deferred[key] || lc.reported[pos] {
			continue
		}
		lc.reported[pos] = true
		lc.p.Reportf(pos, "Lock is not released on every path: still held at %s without a defer Unlock", where)
	}
}

// seq simulates a statement list, mutating st. It reports whether every
// path through the list leaves the function (return or terminating
// call), i.e. no fall-through remains.
func (lc *lockChecker) seq(stmts []ast.Stmt, st *lockState) bool {
	for _, s := range stmts {
		if lc.bail {
			return false
		}
		if lc.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt simulates one statement; true means the path terminates here.
func (lc *lockChecker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		if key, lock, ok := lc.p.mutexOp(call); ok {
			if lock {
				st.held[key] = call.Pos()
			} else {
				delete(st.held, key)
			}
			return false
		}
		return lc.terminatesProcess(call)
	case *ast.DeferStmt:
		lc.deferredUnlocks(s.Call, st)
		return false
	case *ast.ReturnStmt:
		lc.leak(st, "a return")
		return true
	case *ast.BlockStmt:
		return lc.seq(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			lc.stmt(s.Init, st)
		}
		thenSt := st.clone()
		thenTerm := lc.seq(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = lc.stmt(s.Else, elseSt)
		}
		return lc.merge(st, []*lockState{thenSt, elseSt}, []bool{thenTerm, elseTerm})
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return lc.branches(s, st)
	case *ast.ForStmt:
		loopSt := st.clone()
		lc.seq(s.Body.List, loopSt)
		// Conservative: the loop may run zero times; keep the pre-state.
		// An infinite for{} with no break never falls through, but proving
		// that needs a CFG — treat it as fall-through (no false positives:
		// held locks are checked against the pre-loop state).
		return false
	case *ast.RangeStmt:
		loopSt := st.clone()
		lc.seq(s.Body.List, loopSt)
		return false
	case *ast.LabeledStmt:
		return lc.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			lc.bail = true
		}
		// break/continue leave the enclosing loop or switch arm; for this
		// per-function check that path is accounted for by the
		// conservative loop handling above.
		return true
	case *ast.GoStmt:
		return false
	default:
		return false
	}
}

// branches simulates a switch or select: each clause from a clone of the
// incoming state, merged like an if/else chain. A missing default adds
// an implicit fall-through arm.
func (lc *lockChecker) branches(s ast.Stmt, st *lockState) bool {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var states []*lockState
	var terms []bool
	hasDefault := false
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			} else {
				// A receive/send in the comm clause is ordinary code.
				lc.stmt(c.Comm, st)
			}
		}
		cs := st.clone()
		states = append(states, cs)
		terms = append(terms, lc.seq(stmts, cs))
	}
	if !hasDefault {
		// Without a default the switch may match nothing (select always
		// blocks until one arm fires, but modeling it as possibly-skipped
		// only makes the check more conservative).
		states = append(states, st.clone())
		terms = append(terms, false)
	}
	return lc.merge(st, states, terms)
}

// merge folds branch outcomes back into st: the held set becomes the
// union over the branches that fall through (a lock held on any
// surviving path must still be released), deferred the union over all.
// It returns true when every branch terminated.
func (lc *lockChecker) merge(st *lockState, states []*lockState, terms []bool) bool {
	allTerm := true
	held := map[string]token.Pos{}
	for i, bs := range states {
		for k := range bs.deferred {
			st.deferred[k] = true
		}
		if terms[i] {
			continue
		}
		allTerm = false
		for k, pos := range bs.held {
			held[k] = pos
		}
	}
	if !allTerm {
		st.held = held
	}
	return allTerm
}

// deferredUnlocks records the unlocks performed by a defer statement:
// either a direct defer mu.Unlock(), or unlock calls anywhere inside a
// deferred closure.
func (lc *lockChecker) deferredUnlocks(call *ast.CallExpr, st *lockState) {
	if key, lock, ok := lc.p.mutexOp(call); ok && !lock {
		st.deferred[key] = true
		return
	}
	lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if key, lock, ok := lc.p.mutexOp(inner); ok && !lock {
				st.deferred[key] = true
			}
		}
		return true
	})
}

// terminatesProcess reports whether the call never returns: panic,
// os.Exit, runtime.Goexit, log.Fatal*, (*testing.common).Fatal*.
func (lc *lockChecker) terminatesProcess(call *ast.CallExpr) bool {
	if lc.p.isBuiltin(call, "panic") {
		return true
	}
	fn := lc.p.callee(call)
	if fn == nil {
		return false
	}
	switch fn.FullName() {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	return false
}
