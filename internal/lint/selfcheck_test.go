package lint

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestSelfCheck runs the full analyzer suite over this repository and
// demands zero findings: the tree must stay clean under its own linter.
// This is the same invariant CI enforces with go run ./cmd/chaselint.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate repository root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	report := Run(loader, pkgs, All())
	for _, f := range report.Findings {
		t.Errorf("%s", f)
	}
}
