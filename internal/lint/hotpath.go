package lint

import (
	"go/ast"
	"go/types"
)

// analyzerHotpath enforces the zero-allocation contract of functions
// annotated //chaselint:hotpath: no fmt calls, no allocating string
// conversions, no map/slice/closure literals, and no interface boxing —
// on non-panic paths. Code feeding a panic (the argument of a panic
// call, or a block whose last statement panics) is exempt: the
// diagnostics of a crash may allocate.
var analyzerHotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "annotated hot functions must stay allocation-free on non-panic paths",
	Run:  runHotpath,
}

func runHotpath(p *Pass) {
	for _, f := range p.Pkg.Files {
		forEachFuncBody(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			if funcHasDirective(decl, "hotpath") {
				checkHotBody(p, decl, body)
			}
		})
	}
}

func checkHotBody(p *Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	skip := panicPaths(p, body)
	var results *types.Tuple
	if sig, ok := p.typeOf(decl.Name).(*types.Signature); ok {
		results = sig.Results()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure literal in hot path (allocates; hoist it to a reusable field or named function)")
			return false
		case *ast.CompositeLit:
			switch p.typeOf(n).Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal in hot path (allocates)")
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal in hot path (allocates; reuse a pooled buffer)")
			}
		case *ast.CallExpr:
			checkHotCall(p, n, skip)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					reportBox(p, n.Rhs[i], p.typeOf(n.Lhs[i]), "assignment")
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				for _, v := range n.Values {
					reportBox(p, v, p.typeOf(n.Type), "assignment")
				}
			}
		case *ast.SendStmt:
			if ch, ok := p.typeOf(n.Chan).Underlying().(*types.Chan); ok {
				reportBox(p, n.Value, ch.Elem(), "channel send")
			}
		case *ast.ReturnStmt:
			if results != nil && len(n.Results) == results.Len() {
				for i, r := range n.Results {
					reportBox(p, r, results.At(i).Type(), "return")
				}
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls, allocating string conversions, and
// arguments boxed into interface parameters.
func checkHotCall(p *Pass, call *ast.CallExpr, skip map[ast.Node]bool) {
	if fn := p.callee(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "call to fmt.%s in hot path (allocates and boxes its operands)", fn.Name())
		return
	}
	if p.isConversion(call) {
		if skip[call] { // map-index probe m[string(b)]: compiler-recognized, no allocation
			return
		}
		to := p.typeOf(call).Underlying()
		from := p.typeOf(call.Args[0]).Underlying()
		if isStringType(to) && !isStringType(from) && !isUntypedConst(p, call.Args[0]) {
			p.Reportf(call.Pos(), "string conversion in hot path (allocates)")
		} else if isByteOrRuneSlice(to) && isStringType(from) {
			p.Reportf(call.Pos(), "string-to-slice conversion in hot path (allocates)")
		}
		return
	}
	sig := p.signatureOf(call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		reportBox(p, arg, pt, "argument")
	}
}

// reportBox flags a concrete (non-interface) value flowing into an
// interface-typed slot — the compiler boxes it, usually on the heap.
func reportBox(p *Pass, val ast.Expr, to types.Type, what string) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	vt := p.typeOf(val)
	if vt == nil || types.IsInterface(vt) {
		return
	}
	if b, ok := vt.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	p.Reportf(val.Pos(), "%s boxes %s into interface %s in hot path (allocates)", what, vt, to)
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func isUntypedConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// panicPaths collects the subtrees exempt from the hot-path rules: the
// arguments of panic calls, and every block whose final statement is a
// panic (the idiomatic "build the message, then crash" shape). It also
// marks string conversions used directly as map indexes, which the
// compiler performs without allocating.
func panicPaths(p *Pass, body *ast.BlockStmt) map[ast.Node]bool {
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if p.isBuiltin(n, "panic") {
				for _, a := range n.Args {
					skip[a] = true
				}
			}
		case *ast.BlockStmt:
			if len(n.List) > 0 && isPanicStmt(p, n.List[len(n.List)-1]) {
				skip[n] = true
			}
		case *ast.IndexExpr:
			if _, isMap := p.typeOf(n.X).Underlying().(*types.Map); !isMap {
				break
			}
			if conv, ok := ast.Unparen(n.Index).(*ast.CallExpr); ok && p.isConversion(conv) {
				skip[conv] = true
			}
		}
		return true
	})
	return skip
}

func isPanicStmt(p *Pass, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && p.isBuiltin(call, "panic")
}
