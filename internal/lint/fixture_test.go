package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture corpus under testdata/src seeds at least two violations
// per analyzer, each marked with a // want `regex` comment on the line
// it must be reported at. The harness demands an exact 1:1 match
// between wants and findings: a missed want and an unexpected finding
// are both failures.

var wantRe = regexp.MustCompile("// want `([^`]+)`")

func loadFixture(t *testing.T, name string) (*Loader, *Report) {
	t.Helper()
	loader, err := NewFixtureLoader(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	return loader, Run(loader, pkgs, All())
}

// fixtureWants scans the fixture directory for want comments, keyed by
// loader-relative file and line.
func fixtureWants(t *testing.T, name string) map[string][]*regexp.Regexp {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[string][]*regexp.Regexp{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), i+1, m[1], err)
				}
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

func TestFixtureCorpus(t *testing.T) {
	for _, name := range []string{"hotpath", "ctxflow", "lockguard", "goexit", "deprecated", "api"} {
		t.Run(name, func(t *testing.T) {
			_, report := loadFixture(t, name)
			wants := fixtureWants(t, name)
			if len(wants) < 2 {
				t.Fatalf("fixture %s seeds %d violations, want at least 2", name, len(wants))
			}
			for _, f := range report.Findings {
				key := fmt.Sprintf("%s:%d", f.File, f.Line)
				text := f.Analyzer + ": " + f.Message
				matched := -1
				for i, re := range wants[key] {
					if re != nil && re.MatchString(text) {
						matched = i
						break
					}
				}
				if matched < 0 {
					t.Errorf("unexpected finding %s", f)
					continue
				}
				wants[key][matched] = nil // each want matches one finding
			}
			for key, res := range wants {
				for _, re := range res {
					if re != nil {
						t.Errorf("%s: no finding matched want `%s`", key, re)
					}
				}
			}
		})
	}
}
