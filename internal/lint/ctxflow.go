package lint

import (
	"go/ast"
)

// analyzerCtxflow enforces the context-first discipline: library
// packages never mint a fresh context.Background()/TODO() outside a
// Deprecated wrapper, and a function that already receives a
// context.Context must forward it — passing a freshly minted root
// context to a context-accepting callee severs the caller's
// cancellation chain.
var analyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts flow down; Background/TODO only in main packages and Deprecated wrappers",
	Run:  runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Pkg.Files {
		forEachFuncBody(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			deprecated := decl.Doc != nil && hasDeprecatedParagraph(decl.Doc.Text())
			hasCtx := funcHasCtxParam(p, decl)
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !p.fullNameIs(call, "context.Background", "context.TODO") {
					return true
				}
				switch {
				case hasCtx:
					p.Reportf(call.Pos(), "function receives a context.Context but mints a fresh root context; forward the parameter instead")
				case p.isLibraryPackage() && !deprecated:
					p.Reportf(call.Pos(), "context.Background()/TODO() in library code; accept a ctx parameter, or mark the wrapper Deprecated:")
				}
				return true
			})
		})
	}
}

// funcHasCtxParam reports whether the declaration takes a
// context.Context parameter (including the receiver, for completeness).
func funcHasCtxParam(p *Pass, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		if isContextType(p.typeOf(field.Type)) {
			return true
		}
	}
	return false
}
