// Package lint implements chaselint, the project's static-analysis
// suite. It enforces the invariants the codebase has accreted over its
// growth — the allocation-free trigger loop, context-first APIs,
// Lock/Unlock discipline, drained goroutines, no reach into deprecated
// wrappers, and json-tagged wire structs — at compile time, before the
// runtime tests (-race, AllocsPerRun) ever run.
//
// The suite is dependency-free: it loads and type-checks the module with
// nothing but go/parser, go/ast and go/types (see load.go), matching the
// no-third-party-deps stance of internal/obs.
//
// # Analyzers
//
//   - hotpath: functions annotated //chaselint:hotpath may not contain
//     fmt calls, allocating string conversions, map/slice/closure
//     literals, or interface boxing on non-panic paths.
//   - ctxflow: context.Background()/TODO() is forbidden in library
//     packages except inside Deprecated wrappers, and a function that
//     receives a context must forward it rather than minting a fresh one.
//   - lockguard: every mu.Lock() pairs with a defer mu.Unlock() or an
//     Unlock on all return paths of the same function.
//   - goexit: every go statement in library code references a drain
//     (WaitGroup, channel send/close) or carries //chaselint:owned.
//   - deprecated: non-deprecated code must not call identifiers whose
//     doc carries a "Deprecated:" paragraph.
//   - wiretags: exported struct fields in api packages carry json tags.
//
// # Directives
//
//   - //chaselint:hotpath            (in a function's doc comment)
//   - //chaselint:owned <reason>     (on or above a go statement)
//   - //chaselint:ignore <analyzer> <reason>  (on or above the finding)
//
// Malformed directives — an unknown verb, an ignore without a known
// analyzer name or without a reason, an owned without a reason — are
// themselves findings, reported under the pseudo-analyzer "directive".
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Report is the result of one chaselint run, serializable as the -json
// output and the CI artifact.
type Report struct {
	Packages  int       `json:"packages"`
	Analyzers []string  `json:"analyzers"`
	Findings  []Finding `json:"findings"`
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the findings one per line as file:line: analyzer:
// message.
func (r *Report) WriteText(w io.Writer) error {
	for _, f := range r.Findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// Analyzer is one project-invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerHotpath,
		analyzerCtxflow,
		analyzerLockguard,
		analyzerGoexit,
		analyzerDeprecated,
		analyzerWiretags,
	}
}

// analyzerNames is the set of names valid in an ignore directive.
func analyzerNames() map[string]bool {
	names := map[string]bool{}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Loader   *Loader
	Pkg      *Package
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Loader.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:     p.Loader.rel(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the packages and returns the report
// with suppressed findings removed and the rest sorted by position.
func Run(l *Loader, pkgs []*Package, analyzers []*Analyzer) *Report {
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, checkDirectives(l, pkg)...)
		for _, a := range analyzers {
			pass := &Pass{Loader: l, Pkg: pkg, analyzer: a, findings: &findings}
			a.Run(pass)
		}
	}
	findings = suppress(pkgs, findings)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	if findings == nil {
		findings = []Finding{} // render as [] rather than null in -json
	}
	return &Report{Packages: len(pkgs), Analyzers: names, Findings: findings}
}

// checkDirectives validates every chaselint directive of the package and
// reports the malformed ones under the "directive" pseudo-analyzer.
func checkDirectives(l *Loader, pkg *Package) []Finding {
	known := analyzerNames()
	var out []Finding
	report := func(d *directive, msg string) {
		position := l.Fset.Position(d.pos)
		out = append(out, Finding{
			File:     l.rel(position.Filename),
			Line:     position.Line,
			Col:      position.Column,
			Analyzer: "directive",
			Message:  msg,
		})
	}
	for i := range pkg.directives {
		d := &pkg.directives[i]
		switch d.kind {
		case "hotpath":
			// No operands; trailing text is tolerated as commentary.
		case "owned":
			if d.reason == "" {
				report(d, "chaselint:owned requires a reason documenting the goroutine's drain")
			}
		case "ignore":
			switch {
			case d.analyzer == "":
				report(d, "chaselint:ignore requires an analyzer name and a reason")
			case !known[d.analyzer]:
				report(d, fmt.Sprintf("chaselint:ignore names unknown analyzer %q", d.analyzer))
			case d.reason == "":
				report(d, fmt.Sprintf("chaselint:ignore %s requires a reason", d.analyzer))
			}
		default:
			report(d, fmt.Sprintf("unknown chaselint directive %q", d.kind))
		}
	}
	return out
}

// suppress drops findings covered by a well-formed ignore directive on
// the same line or the line directly above. Directive findings are never
// suppressible.
func suppress(pkgs []*Package, findings []Finding) []Finding {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	ignores := map[key]bool{}
	for _, pkg := range pkgs {
		for i := range pkg.directives {
			d := &pkg.directives[i]
			if d.kind != "ignore" || d.analyzer == "" || d.reason == "" {
				continue
			}
			ignores[key{d.file, d.line, d.analyzer}] = true
		}
	}
	if len(ignores) == 0 {
		return findings
	}
	kept := findings[:0]
	for _, f := range findings {
		if f.Analyzer != "directive" &&
			(ignores[key{f.File, f.Line, f.Analyzer}] || ignores[key{f.File, f.Line - 1, f.Analyzer}]) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// directive is one parsed //chaselint:... comment.
type directive struct {
	kind     string // hotpath | owned | ignore | (unknown verbs kept verbatim)
	analyzer string // ignore only
	reason   string
	file     string // loader-relative
	line     int
	pos      token.Pos
}

const directivePrefix = "//chaselint:"

// parseDirective parses one comment line; ok is false for ordinary
// comments.
func parseDirective(text string) (kind, analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", "", false
	}
	rest := text[len(directivePrefix):]
	kind, rest, _ = strings.Cut(rest, " ")
	rest = strings.TrimSpace(rest)
	if kind == "ignore" {
		analyzer, reason, _ = strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
	} else {
		reason = rest
	}
	return kind, analyzer, reason, true
}

// hasDeprecatedParagraph reports whether a doc comment text carries the
// standard "Deprecated:" marker (a line starting with it).
func hasDeprecatedParagraph(doc string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}
