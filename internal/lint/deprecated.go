package lint

import (
	"go/ast"
)

// analyzerDeprecated keeps the tree off its own compatibility shims:
// code must not use any module identifier whose doc carries a
// "Deprecated:" paragraph. Exempt are uses inside functions that are
// themselves Deprecated (a shim may delegate to another shim) — the
// compatibility layer may reference itself, everything else moves to
// the replacement the note names.
var analyzerDeprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "no calls to Deprecated identifiers outside the compatibility layer",
	Run:  runDeprecated,
}

func runDeprecated(p *Pass) {
	if len(p.Loader.deprecated) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		forEachFuncBody(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			if decl.Doc != nil && hasDeprecatedParagraph(decl.Doc.Text()) {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := p.Pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				if note, dep := p.Loader.deprecated[obj]; dep {
					p.Reportf(id.Pos(), "use of deprecated %s (%s)", id.Name, note)
				}
				return true
			})
		})
	}
}
