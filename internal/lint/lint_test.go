package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestMalformedDirectives pins the directive validator: an unknown verb,
// an owned without a reason, and every malformed ignore shape are
// findings under the "directive" pseudo-analyzer.
func TestMalformedDirectives(t *testing.T) {
	_, report := loadFixture(t, "directive")
	want := []string{
		`unknown chaselint directive "frobnicate"`,
		"chaselint:owned requires a reason",
		"chaselint:ignore requires an analyzer name and a reason",
		`chaselint:ignore names unknown analyzer "bogus"`,
		"chaselint:ignore hotpath requires a reason",
	}
	if len(report.Findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(report.Findings), len(want), report.Findings)
	}
	for _, f := range report.Findings {
		if f.Analyzer != "directive" {
			t.Errorf("finding %s: analyzer %q, want \"directive\"", f, f.Analyzer)
		}
		found := false
		for _, w := range want {
			if strings.Contains(f.Message, w) || f.Message == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected directive finding: %s", f)
		}
	}
	for _, w := range want {
		found := false
		for _, f := range report.Findings {
			if strings.Contains(f.Message, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding with message %q", w)
		}
	}
}

// TestSuppression pins the ignore directive: real violations covered by
// a well-formed ignore — on the previous line or at the end of the
// offending line — disappear from the report.
func TestSuppression(t *testing.T) {
	_, report := loadFixture(t, "suppress")
	if len(report.Findings) != 0 {
		t.Errorf("suppressed fixture reported %d findings:\n%v", len(report.Findings), report.Findings)
	}
}

// TestJSONShape pins the -json report contract: the exact top-level and
// per-finding field names CI consumers rely on, and an empty findings
// list rendered as [] rather than null.
func TestJSONShape(t *testing.T) {
	_, report := loadFixture(t, "api")
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Packages  int              `json:"packages"`
		Analyzers []string         `json:"analyzers"`
		Findings  []map[string]any `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Packages != 1 {
		t.Errorf("packages = %d, want 1", decoded.Packages)
	}
	if len(decoded.Analyzers) != len(All()) {
		t.Errorf("analyzers = %v, want %d entries", decoded.Analyzers, len(All()))
	}
	if len(decoded.Findings) == 0 {
		t.Fatal("api fixture produced no findings")
	}
	for _, f := range decoded.Findings {
		for _, field := range []string{"file", "line", "col", "analyzer", "message"} {
			if _, ok := f[field]; !ok {
				t.Errorf("finding %v lacks field %q", f, field)
			}
		}
	}

	// Empty reports render findings as [], not null.
	empty := Run(nil, nil, All())
	buf.Reset()
	if err := empty.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "null") {
		t.Errorf("empty report contains null:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty report does not render findings as []:\n%s", buf.String())
	}
}

// TestFindingString pins the text output format the CI grep contract
// depends on: file:line: analyzer: message.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/chase/chase.go", Line: 42, Col: 7, Analyzer: "hotpath", Message: "boom"}
	if got, want := f.String(), "internal/chase/chase.go:42: hotpath: boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
