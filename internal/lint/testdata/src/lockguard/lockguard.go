// Package lockguard seeds violations of the lockguard analyzer.
package lockguard

import "sync"

// S carries both mutex flavours.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Deferred is the canonical clean shape.
func (s *S) Deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Manual releases on the only path out.
func (s *S) Manual() int {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n
}

// AllPaths releases on both return paths.
func (s *S) AllPaths(b bool) int {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// LeakReturn forgets the unlock on the early return.
func (s *S) LeakReturn(b bool) int {
	s.mu.Lock() // want `lockguard: Lock is not released on every path`
	if b {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// LeakEnd holds a read lock to the end of the body with no defer.
func (s *S) LeakEnd() {
	s.rw.RLock() // want `lockguard: Lock is not released on every path`
	_ = s.n
}

// PanicExempt never returns normally from the locked region; the
// deferred closure releases on unwind.
func (s *S) PanicExempt() {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	panic("lockguard: fixture")
}
