// Package hotpath seeds violations of the hotpath analyzer.
package hotpath

import "fmt"

type sink interface{ M() }

type impl struct{}

func (impl) M() {}

// Hot is annotated: every allocating construct below must be flagged.
//
//chaselint:hotpath
func Hot(xs []int, bs []byte) int {
	msg := fmt.Sprint(len(xs)) // want `hotpath: call to fmt.Sprint in hot path`
	_ = msg
	s := string(bs) // want `hotpath: string conversion in hot path`
	_ = s
	raw := []byte(s) // want `hotpath: string-to-slice conversion in hot path`
	_ = raw
	buf := []int{1, 2}  // want `hotpath: slice literal in hot path`
	var i sink = impl{} // want `hotpath: assignment boxes`
	_ = i
	f := func() int { return 1 } // want `hotpath: closure literal in hot path`
	return buf[0] + f()
}

// Cold is unannotated: the identical code is not policed here.
func Cold(bs []byte) string { return string(bs) }

// Crash allocates only on its panic path, which is exempt.
//
//chaselint:hotpath
func Crash(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("hotpath: negative %d", n))
	}
	return n
}

// Probe uses a map-index string conversion, which the compiler performs
// without allocating.
//
//chaselint:hotpath
func Probe(m map[string]int, bs []byte) int {
	return m[string(bs)]
}
