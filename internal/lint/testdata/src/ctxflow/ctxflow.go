// Package ctxflow seeds violations of the ctxflow analyzer.
package ctxflow

import "context"

// Forward receives a context but mints a fresh root instead of passing
// the parameter down.
func Forward(ctx context.Context) error {
	return work(context.Background()) // want `ctxflow: function receives a context.Context but mints a fresh root context`
}

// Mint is library code with no context parameter at all.
func Mint() error {
	return work(context.TODO()) // want `ctxflow: context.Background\(\)/TODO\(\) in library code`
}

// Old is the compatibility shim; Deprecated wrappers may mint a root.
//
// Deprecated: use Forward.
func Old() error {
	return work(context.Background())
}

func work(ctx context.Context) error { return ctx.Err() }
