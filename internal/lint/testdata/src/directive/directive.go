// Package directive seeds malformed chaselint directives; the expected
// findings are asserted explicitly in lint_test.go (a want comment would
// become part of the directive's own text).
package directive

//chaselint:frobnicate
func Unknown() {}

// MissingOwnedReason spawns without documenting the drain.
func MissingOwnedReason() {
	//chaselint:owned
	go func() {
		ch := make(chan int, 1)
		ch <- 1
	}()
}

// BadIgnores exercises every malformed ignore shape.
func BadIgnores() int {
	//chaselint:ignore
	//chaselint:ignore bogus the analyzer does not exist
	//chaselint:ignore hotpath
	return 0
}
