// Package api seeds violations of the wiretags analyzer (the fixture
// directory name makes it a wire package).
package api

// Request is a wire message.
type Request struct {
	ID   string `json:"id"`
	Name string // want `wiretags: exported wire field Request.Name has no json tag`
	body []byte
}

// Response is a wire message.
type Response struct {
	Code int   // want `wiretags: exported wire field Response.Code has no json tag`
	Meta Inner `json:"meta"`
}

// Inner is a nested wire message.
type Inner struct {
	OK bool `json:"ok"`
}

// Wrapped embeds Inner; embedded fields marshal inline and are exempt.
type Wrapped struct {
	Inner
	Tag string `json:"tag"`
}

func use(r Request) []byte { return r.body }
