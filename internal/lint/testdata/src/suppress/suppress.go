// Package suppress carries real violations under well-formed ignore
// directives; a run over it must report nothing.
package suppress

import (
	"context"
	"fmt"
)

// Hot formats once per run, off the trigger loop.
//
//chaselint:hotpath
func Hot(x int) string {
	//chaselint:ignore hotpath one-time diagnostics, not on the trigger loop
	return fmt.Sprint(x)
}

// Mint is allowed its root context by the ignore on the same line.
func Mint() error {
	return context.Background().Err() //chaselint:ignore ctxflow fixture exercises same-line suppression
}
