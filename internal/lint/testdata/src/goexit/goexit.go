// Package goexit seeds violations of the goexit analyzer.
package goexit

import "sync"

// Drained spawns a goroutine the caller can wait out.
func Drained(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// Sender reports completion on a channel.
func Sender() <-chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	return ch
}

// Leaky spawns a goroutine nothing ever drains.
func Leaky() {
	go func() { // want `goexit: goroutine has no visible drain`
		loop()
	}()
}

// Named spawns a same-package function with no drain; the analyzer
// follows the declaration.
func Named() {
	go loop() // want `goexit: goroutine has no visible drain`
}

// Opaque spawns a function value whose body cannot be inspected.
func Opaque(f func()) {
	go f() // want `goexit: goroutine body cannot be inspected`
}

// Owned documents its detachment instead.
func Owned() {
	//chaselint:owned process-lifetime heartbeat; exits when the process does
	go loop()
}

func loop() {
	for {
	}
}
