// Package deprecated seeds violations of the deprecated analyzer.
package deprecated

// Old is the v0 entry point.
//
// Deprecated: use New.
func Old() int { return New() }

// New replaces Old.
func New() int { return 0 }

// OldLimit is the v0 budget.
//
// Deprecated: use NewLimit.
const OldLimit = 1

// NewLimit replaces OldLimit.
const NewLimit = 2

// Caller reaches into the compatibility layer from live code.
func Caller() int {
	n := Old()    // want `deprecated: use of deprecated Old`
	n += OldLimit // want `deprecated: use of deprecated OldLimit`
	return n
}

// Shim delegates within the compatibility layer, which is allowed.
//
// Deprecated: use Caller.
func Shim() int { return Old() + OldLimit }
