package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// typeOf returns the type of an expression, or nil.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// callee returns the *types.Func a call statically resolves to — nil for
// builtins, conversions, and calls through function values.
func (p *Pass) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isConversion reports whether the call expression is a type conversion.
func (p *Pass) isConversion(call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// isBuiltin reports whether the call invokes the named builtin.
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// fullNameIs reports whether the call's callee has the given
// types.Func.FullName (e.g. "(*sync.Mutex).Lock", "context.Background").
func (p *Pass) fullNameIs(call *ast.CallExpr, names ...string) bool {
	fn := p.callee(call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	for _, n := range names {
		if full == n {
			return true
		}
	}
	return false
}

// enclosingFuncs pairs every function body of a file with its
// enclosing declaration: top-level FuncDecls and, separately, each
// FuncLit. visit receives the doc comment of the nearest enclosing
// FuncDecl (FuncLits inherit it).
func forEachFuncBody(f *ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		visit(fd, fd.Body)
	}
}

// funcHasDirective reports whether the function's doc comment carries
// the given chaselint directive kind.
func funcHasDirective(decl *ast.FuncDecl, kind string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if k, _, _, ok := parseDirective(c.Text); ok && k == kind {
			return true
		}
	}
	return false
}

// directiveNear reports whether the package carries a directive of the
// given kind on the line of pos or the line directly above.
func (p *Pass) directiveNear(kind string, pos token.Pos) bool {
	position := p.Loader.Fset.Position(pos)
	file := p.Loader.rel(position.Filename)
	for i := range p.Pkg.directives {
		d := &p.Pkg.directives[i]
		if d.kind == kind && d.file == file && (d.line == position.Line || d.line == position.Line-1) {
			return true
		}
	}
	return false
}

// isLibraryPackage reports whether the package is library code: not a
// main package. Commands and examples own their process lifecycle and
// are exempt from the library-only rules.
func (p *Pass) isLibraryPackage() bool {
	return p.Pkg.Types.Name() != "main"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// signatureOf returns the signature of the called function value, or
// nil for conversions and builtins.
func (p *Pass) signatureOf(call *ast.CallExpr) *types.Signature {
	if p.isConversion(call) {
		return nil
	}
	sig, _ := p.typeOf(call.Fun).(*types.Signature)
	return sig
}
