package lint

import (
	"go/ast"
	"reflect"
	"strconv"
	"strings"
)

// analyzerWiretags keeps the versioned wire contract honest: every
// exported, named struct field in an api package must carry an explicit
// json tag, so the strict decoder and the golden fixtures agree on the
// wire names and a renamed Go field can never silently change the
// contract. Embedded fields are exempt (they marshal inline).
var analyzerWiretags = &Analyzer{
	Name: "wiretags",
	Doc:  "exported struct fields in api packages carry json tags",
	Run:  runWiretags,
}

func runWiretags(p *Pass) {
	if !isAPIPackage(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					continue // embedded
				}
				for _, name := range field.Names {
					if !name.IsExported() {
						continue
					}
					if !hasJSONTag(field.Tag) {
						p.Reportf(name.Pos(), "exported wire field %s.%s has no json tag", ts.Name.Name, name.Name)
					}
				}
			}
			return true
		})
	}
}

// isAPIPackage reports whether the import path names a wire package: the
// path (or the fixture directory) ends in "api".
func isAPIPackage(path string) bool {
	return path == "api" || strings.HasSuffix(path, "/api")
}

func hasJSONTag(tag *ast.BasicLit) bool {
	if tag == nil {
		return false
	}
	raw, err := strconv.Unquote(tag.Value)
	if err != nil {
		return false
	}
	val, ok := reflect.StructTag(raw).Lookup("json")
	return ok && val != ""
}
