package workload

import (
	"math/rand"
	"testing"

	"chaseterm/internal/chase"
	"chaseterm/internal/logic"
)

func TestRandomGeneratorsClassAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		sl := RandomSL(rng, Config{})
		if err := sl.Validate(); err != nil {
			t.Fatalf("SL invalid: %v\n%s", err, sl)
		}
		if sl.Classify() > logic.ClassSimpleLinear {
			t.Fatalf("RandomSL produced %v:\n%s", sl.Classify(), sl)
		}
		lin := RandomLinear(rng, Config{RepeatProb: 0.6})
		if err := lin.Validate(); err != nil {
			t.Fatalf("L invalid: %v\n%s", err, lin)
		}
		if lin.Classify() > logic.ClassLinear {
			t.Fatalf("RandomLinear produced %v:\n%s", lin.Classify(), lin)
		}
		g := RandomGuarded(rng, Config{})
		if err := g.Validate(); err != nil {
			t.Fatalf("G invalid: %v\n%s", err, g)
		}
		if g.Classify() > logic.ClassGuarded {
			t.Fatalf("RandomGuarded produced %v:\n%s", g.Classify(), g)
		}
	}
}

func TestRandomGeneratorsDeterministic(t *testing.T) {
	a := RandomGuarded(rand.New(rand.NewSource(7)), Config{NumRules: 5})
	b := RandomGuarded(rand.New(rand.NewSource(7)), Config{NumRules: 5})
	if a.String() != b.String() {
		t.Error("same seed produced different rule sets")
	}
	c := RandomGuarded(rand.New(rand.NewSource(8)), Config{NumRules: 5})
	if a.String() == c.String() {
		t.Error("different seeds produced identical rule sets")
	}
}

func TestRandomWithConstants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	found := false
	for i := 0; i < 50 && !found; i++ {
		rs := RandomLinear(rng, Config{ConstProb: 0.3})
		if err := rs.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(rs.Constants()) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("ConstProb produced no constants in 50 sets")
	}
}

func TestExamples(t *testing.T) {
	if got := Example1().Classify(); got != logic.ClassSimpleLinear {
		t.Errorf("Example1 class: %v", got)
	}
	if got := Example2().Classify(); got != logic.ClassSimpleLinear {
		t.Errorf("Example2 class: %v", got)
	}
	if len(Example1DB()) != 1 || len(Example2DB()) != 1 {
		t.Error("example databases wrong")
	}
	if err := Example1().Validate(); err != nil {
		t.Error(err)
	}
}

func TestOntologyTerminates(t *testing.T) {
	rs := OntologySL()
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	if rs.Classify() != logic.ClassSimpleLinear {
		t.Fatalf("ontology class: %v", rs.Classify())
	}
	res, err := chase.RunFromAtoms(OntologyDB(), rs, chase.Restricted, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != chase.Terminated {
		t.Error("ontology chase did not terminate")
	}
	// Query: is ada's course taught by someone? (course ⊑ ∃teaches⁻ fires)
	in := res.Instance
	tid, ok := in.LookupPred("teaches")
	if !ok || len(in.ByPred(tid)) == 0 {
		t.Error("no teaches facts derived")
	}
}

func TestDataExchangeUniversalSolution(t *testing.T) {
	rs := DataExchange()
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := chase.RunFromAtoms(DataExchangeDB(), rs, chase.Restricted, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != chase.Terminated {
		t.Fatal("data exchange chase did not terminate")
	}
	if viol, err := chase.IsModel(res.Instance, rs); err != nil || viol != "" {
		t.Errorf("solution is not a model: %s %v", viol, err)
	}
	// Managers must work in their departments (the third st-tgd).
	in := res.Instance
	wid, ok := in.LookupPred("works")
	if !ok || len(in.ByPred(wid)) < 4 {
		t.Errorf("works facts: %d", len(in.ByPred(wid)))
	}
}

func TestSLFamily(t *testing.T) {
	open := SLFamily(5, false)
	if err := open.Validate(); err != nil {
		t.Fatal(err)
	}
	if open.Classify() != logic.ClassSimpleLinear {
		t.Fatalf("class: %v", open.Classify())
	}
	closed := SLFamily(5, true)
	if len(closed.Rules) != 5 {
		t.Errorf("closed family rules: %d", len(closed.Rules))
	}
	if len(open.Rules) != 4 {
		t.Errorf("open family rules: %d", len(open.Rules))
	}
	one := SLFamily(1, false)
	if len(one.Rules) != 1 {
		t.Errorf("n=1 family rules: %d", len(one.Rules))
	}
}

func TestLinearArityFamily(t *testing.T) {
	for _, w := range []int{2, 3, 5} {
		rs := LinearArityFamily(w)
		if err := rs.Validate(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if rs.Classify() > logic.ClassLinear {
			t.Fatalf("w=%d class: %v", w, rs.Classify())
		}
		if rs.MaxArity() != w {
			t.Errorf("w=%d arity: %d", w, rs.MaxArity())
		}
	}
}

func TestRandomInclusionDependencies(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	rs := RandomInclusionDependencies(rng, 5, 3, 40)
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	if rs.Classify() != logic.ClassSimpleLinear {
		t.Fatalf("class: %v", rs.Classify())
	}
	if len(rs.Rules) != 40 {
		t.Errorf("rules: %d", len(rs.Rules))
	}
}

func TestRandomABox(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rs := RandomInclusionDependencies(rng, 4, 2, 20)
	db := RandomABox(rng, rs, 500, 50)
	if len(db) != 500 {
		t.Fatalf("facts: %d", len(db))
	}
	for _, f := range db {
		if !f.IsGround() {
			t.Fatalf("non-ground fact %s", f)
		}
	}
	// The facts must load into an instance without arity clashes.
	res, err := chase.RunFromAtoms(db, rs, chase.Restricted, chase.Options{MaxTriggers: 50000, MaxFacts: 100000})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestGuardedArityFamily(t *testing.T) {
	for _, w := range []int{1, 2, 3} {
		rs := GuardedArityFamily(w)
		if err := rs.Validate(); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if rs.Classify() > logic.ClassGuarded {
			t.Fatalf("w=%d class: %v", w, rs.Classify())
		}
	}
}
