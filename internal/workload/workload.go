// Package workload generates the rule sets driving the experiment suite:
// seeded random TGD sets per syntactic class (used to cross-validate the
// deciders against the chase oracle), the paper's running examples, and two
// realistic scenarios (a DL-Lite-style ontology and a data-exchange
// mapping) exercising the motivations listed in the paper's introduction.
package workload

import (
	"fmt"
	"math/rand"

	"chaseterm/internal/logic"
)

// Config controls random rule-set generation. Zero values select defaults.
type Config struct {
	// NumPreds is the number of predicates (default 3).
	NumPreds int
	// MaxArity bounds predicate arities, chosen uniformly in [1, MaxArity]
	// (default 2).
	MaxArity int
	// NumRules is the number of TGDs (default 3).
	NumRules int
	// ExistProb is the probability that a head position holds an
	// existential variable (default 0.35).
	ExistProb float64
	// MaxHeadAtoms bounds head size (default 2).
	MaxHeadAtoms int
	// RepeatProb is the probability of repeating a body variable (linear
	// and guarded generators only; default 0.25).
	RepeatProb float64
	// MaxSideAtoms bounds the number of non-guard body atoms in guarded
	// rules (default 2).
	MaxSideAtoms int
	// ConstProb is the probability that a body/head position holds one of
	// the constants 0/1 instead of a variable (default 0).
	ConstProb float64
}

func (c Config) withDefaults() Config {
	if c.NumPreds == 0 {
		c.NumPreds = 3
	}
	if c.MaxArity == 0 {
		c.MaxArity = 2
	}
	if c.NumRules == 0 {
		c.NumRules = 3
	}
	if c.ExistProb == 0 {
		c.ExistProb = 0.35
	}
	if c.MaxHeadAtoms == 0 {
		c.MaxHeadAtoms = 2
	}
	if c.RepeatProb == 0 {
		c.RepeatProb = 0.25
	}
	if c.MaxSideAtoms == 0 {
		c.MaxSideAtoms = 2
	}
	return c
}

type gen struct {
	rng   *rand.Rand
	cfg   Config
	preds []logic.Predicate
}

func newGen(rng *rand.Rand, cfg Config) *gen {
	cfg = cfg.withDefaults()
	g := &gen{rng: rng, cfg: cfg}
	for i := 0; i < cfg.NumPreds; i++ {
		g.preds = append(g.preds, logic.Predicate{
			Name:  fmt.Sprintf("p%d", i),
			Arity: 1 + rng.Intn(cfg.MaxArity),
		})
	}
	return g
}

func (g *gen) pred() logic.Predicate { return g.preds[g.rng.Intn(len(g.preds))] }

func (g *gen) maybeConst() (logic.Term, bool) {
	if g.cfg.ConstProb > 0 && g.rng.Float64() < g.cfg.ConstProb {
		return logic.Constant(fmt.Sprint(g.rng.Intn(2))), true
	}
	return nil, false
}

// bodyAtomSimple builds a body atom with fresh distinct variables.
func (g *gen) bodyAtomSimple(p logic.Predicate) (logic.Atom, []logic.Variable) {
	args := make([]logic.Term, p.Arity)
	var vars []logic.Variable
	for i := range args {
		if c, ok := g.maybeConst(); ok {
			args[i] = c
			continue
		}
		v := logic.Variable(fmt.Sprintf("X%d", len(vars)))
		vars = append(vars, v)
		args[i] = v
	}
	return logic.Atom{Pred: p.Name, Args: args}, vars
}

// bodyAtomRepeating builds a body atom where variables may repeat.
func (g *gen) bodyAtomRepeating(p logic.Predicate) (logic.Atom, []logic.Variable) {
	args := make([]logic.Term, p.Arity)
	var vars []logic.Variable
	for i := range args {
		if c, ok := g.maybeConst(); ok {
			args[i] = c
			continue
		}
		if len(vars) > 0 && g.rng.Float64() < g.cfg.RepeatProb {
			args[i] = vars[g.rng.Intn(len(vars))]
			continue
		}
		v := logic.Variable(fmt.Sprintf("X%d", len(vars)))
		vars = append(vars, v)
		args[i] = v
	}
	return logic.Atom{Pred: p.Name, Args: args}, vars
}

// head builds 1..MaxHeadAtoms head atoms over the given frontier candidate
// variables plus a shared pool of existential variables.
func (g *gen) head(bodyVars []logic.Variable) []logic.Atom {
	n := 1 + g.rng.Intn(g.cfg.MaxHeadAtoms)
	var atoms []logic.Atom
	numEx := 0
	for i := 0; i < n; i++ {
		p := g.pred()
		args := make([]logic.Term, p.Arity)
		for j := range args {
			if c, ok := g.maybeConst(); ok {
				args[j] = c
				continue
			}
			if len(bodyVars) == 0 || g.rng.Float64() < g.cfg.ExistProb {
				// reuse an existing existential half the time
				if numEx > 0 && g.rng.Intn(2) == 0 {
					args[j] = logic.Variable(fmt.Sprintf("Z%d", g.rng.Intn(numEx)))
				} else {
					args[j] = logic.Variable(fmt.Sprintf("Z%d", numEx))
					numEx++
				}
				continue
			}
			args[j] = bodyVars[g.rng.Intn(len(bodyVars))]
		}
		atoms = append(atoms, logic.Atom{Pred: p.Name, Args: args})
	}
	return atoms
}

// RandomSL generates a random simple-linear rule set: single body atom, no
// repeated body variables.
func RandomSL(rng *rand.Rand, cfg Config) *logic.RuleSet {
	g := newGen(rng, cfg)
	rs := logic.NewRuleSet()
	for i := 0; i < g.cfg.NumRules; i++ {
		body, vars := g.bodyAtomSimple(g.pred())
		rs.Rules = append(rs.Rules, logic.NewTGD([]logic.Atom{body}, g.head(vars)))
	}
	return rs
}

// RandomLinear generates a random linear rule set; body variables may
// repeat (so the set is usually outside SL).
func RandomLinear(rng *rand.Rand, cfg Config) *logic.RuleSet {
	g := newGen(rng, cfg)
	rs := logic.NewRuleSet()
	for i := 0; i < g.cfg.NumRules; i++ {
		body, vars := g.bodyAtomRepeating(g.pred())
		rs.Rules = append(rs.Rules, logic.NewTGD([]logic.Atom{body}, g.head(vars)))
	}
	return rs
}

// RandomGuarded generates a random guarded rule set: a guard atom with
// distinct variables plus side atoms over subsets of the guard variables.
func RandomGuarded(rng *rand.Rand, cfg Config) *logic.RuleSet {
	g := newGen(rng, cfg)
	rs := logic.NewRuleSet()
	for i := 0; i < g.cfg.NumRules; i++ {
		guard, vars := g.bodyAtomSimple(g.pred())
		body := []logic.Atom{guard}
		if len(vars) > 0 {
			nside := g.rng.Intn(g.cfg.MaxSideAtoms + 1)
			for s := 0; s < nside; s++ {
				p := g.pred()
				args := make([]logic.Term, p.Arity)
				for j := range args {
					if c, ok := g.maybeConst(); ok {
						args[j] = c
						continue
					}
					args[j] = vars[g.rng.Intn(len(vars))]
				}
				body = append(body, logic.Atom{Pred: p.Name, Args: args})
			}
		}
		rs.Rules = append(rs.Rules, logic.NewTGD(body, g.head(vars)))
	}
	return rs
}

// Example1 is the paper's Example 1: every person has a father who is a
// person.
func Example1() *logic.RuleSet {
	return logic.NewRuleSet(logic.NewTGD(
		[]logic.Atom{logic.NewAtom("person", logic.Variable("X"))},
		[]logic.Atom{
			logic.NewAtom("hasFather", logic.Variable("X"), logic.Variable("Y")),
			logic.NewAtom("person", logic.Variable("Y")),
		},
	))
}

// Example1DB is the database of Example 1.
func Example1DB() []logic.Atom {
	return []logic.Atom{logic.NewAtom("person", logic.Constant("bob"))}
}

// Example2 is the paper's Example 2: p(X,Y) → ∃Z p(Y,Z).
func Example2() *logic.RuleSet {
	return logic.NewRuleSet(logic.NewTGD(
		[]logic.Atom{logic.NewAtom("p", logic.Variable("X"), logic.Variable("Y"))},
		[]logic.Atom{logic.NewAtom("p", logic.Variable("Y"), logic.Variable("Z"))},
	))
}

// Example2DB is the database of Example 2.
func Example2DB() []logic.Atom {
	return []logic.Atom{logic.NewAtom("p", logic.Constant("a"), logic.Constant("b"))}
}

// OntologySL returns a DL-Lite-flavoured ontology as simple-linear TGDs —
// the paper highlights that SL captures inclusion dependencies and key
// description logics. Concepts: professor, student, course; roles:
// teaches, attends, advises.
func OntologySL() *logic.RuleSet {
	src := [][2][]logic.Atom{
		// professor ⊑ ∃teaches
		{{logic.NewAtom("professor", logic.Variable("X"))},
			{logic.NewAtom("teaches", logic.Variable("X"), logic.Variable("C"))}},
		// ∃teaches⁻ ⊑ course
		{{logic.NewAtom("teaches", logic.Variable("X"), logic.Variable("C"))},
			{logic.NewAtom("course", logic.Variable("C"))}},
		// student ⊑ ∃attends
		{{logic.NewAtom("student", logic.Variable("X"))},
			{logic.NewAtom("attends", logic.Variable("X"), logic.Variable("C"))}},
		// ∃attends⁻ ⊑ course
		{{logic.NewAtom("attends", logic.Variable("X"), logic.Variable("C"))},
			{logic.NewAtom("course", logic.Variable("C"))}},
		// ∃advises ⊑ professor
		{{logic.NewAtom("advises", logic.Variable("X"), logic.Variable("Y"))},
			{logic.NewAtom("professor", logic.Variable("X"))}},
		// ∃advises⁻ ⊑ student
		{{logic.NewAtom("advises", logic.Variable("X"), logic.Variable("Y"))},
			{logic.NewAtom("student", logic.Variable("Y"))}},
		// course ⊑ ∃teaches⁻ (every course is taught by someone)
		{{logic.NewAtom("course", logic.Variable("C"))},
			{logic.NewAtom("teaches", logic.Variable("P"), logic.Variable("C"))}},
	}
	rs := logic.NewRuleSet()
	for _, bh := range src {
		rs.Rules = append(rs.Rules, logic.NewTGD(bh[0], bh[1]))
	}
	return rs
}

// OntologyDB is a small ABox for OntologySL.
func OntologyDB() []logic.Atom {
	return []logic.Atom{
		logic.NewAtom("professor", logic.Constant("turing")),
		logic.NewAtom("student", logic.Constant("ada")),
		logic.NewAtom("advises", logic.Constant("turing"), logic.Constant("ada")),
		logic.NewAtom("attends", logic.Constant("ada"), logic.Constant("logic101")),
	}
}

// DataExchange returns a weakly-acyclic data-exchange mapping in the style
// of Fagin et al.: source relations emp/dept are copied into a target
// schema with invented keys.
func DataExchange() *logic.RuleSet {
	rs := logic.NewRuleSet(
		// emp(Name, DeptName) -> ∃E works(E, D), empName(E, Name), deptName(D, DeptName)
		logic.NewTGD(
			[]logic.Atom{logic.NewAtom("emp", logic.Variable("N"), logic.Variable("DN"))},
			[]logic.Atom{
				logic.NewAtom("works", logic.Variable("E"), logic.Variable("D")),
				logic.NewAtom("empName", logic.Variable("E"), logic.Variable("N")),
				logic.NewAtom("deptName", logic.Variable("D"), logic.Variable("DN")),
			},
		),
		// dept(DeptName, MgrName) -> ∃D,M deptName(D,DeptName), mgr(D,M), empName(M,MgrName)
		logic.NewTGD(
			[]logic.Atom{logic.NewAtom("dept", logic.Variable("DN"), logic.Variable("MN"))},
			[]logic.Atom{
				logic.NewAtom("deptName", logic.Variable("D"), logic.Variable("DN")),
				logic.NewAtom("mgr", logic.Variable("D"), logic.Variable("M")),
				logic.NewAtom("empName", logic.Variable("M"), logic.Variable("MN")),
			},
		),
		// every manager works in the department they manage
		logic.NewTGD(
			[]logic.Atom{logic.NewAtom("mgr", logic.Variable("D"), logic.Variable("M"))},
			[]logic.Atom{logic.NewAtom("works", logic.Variable("M"), logic.Variable("D"))},
		),
	)
	return rs
}

// DataExchangeDB is a source instance for DataExchange.
func DataExchangeDB() []logic.Atom {
	return []logic.Atom{
		logic.NewAtom("emp", logic.Constant("alice"), logic.Constant("toys")),
		logic.NewAtom("emp", logic.Constant("bob"), logic.Constant("books")),
		logic.NewAtom("dept", logic.Constant("toys"), logic.Constant("carol")),
		logic.NewAtom("dept", logic.Constant("books"), logic.Constant("dan")),
	}
}

// RandomInclusionDependencies generates a DL-Lite-flavoured TBox as
// simple-linear TGDs over nConcepts unary and nRoles binary predicates:
// concept inclusions, qualified existential restrictions, domain/range
// axioms and role inclusions (possibly inverse). The paper singles out
// exactly this fragment as the prominent application of the SL class.
func RandomInclusionDependencies(rng *rand.Rand, nConcepts, nRoles, nAxioms int) *logic.RuleSet {
	if nConcepts < 1 {
		nConcepts = 1
	}
	if nRoles < 1 {
		nRoles = 1
	}
	concept := func(i int, t logic.Term) logic.Atom {
		return logic.Atom{Pred: fmt.Sprintf("c%d", i), Args: []logic.Term{t}}
	}
	role := func(i int, s, t logic.Term) logic.Atom {
		return logic.Atom{Pred: fmt.Sprintf("r%d", i), Args: []logic.Term{s, t}}
	}
	x, y := logic.Variable("X"), logic.Variable("Y")
	rs := logic.NewRuleSet()
	for i := 0; i < nAxioms; i++ {
		switch rng.Intn(6) {
		case 0: // C ⊑ C'
			rs.Rules = append(rs.Rules, logic.NewTGD(
				[]logic.Atom{concept(rng.Intn(nConcepts), x)},
				[]logic.Atom{concept(rng.Intn(nConcepts), x)}))
		case 1: // C ⊑ ∃R
			rs.Rules = append(rs.Rules, logic.NewTGD(
				[]logic.Atom{concept(rng.Intn(nConcepts), x)},
				[]logic.Atom{role(rng.Intn(nRoles), x, y)}))
		case 2: // C ⊑ ∃R.C'  (qualified)
			r := rng.Intn(nRoles)
			rs.Rules = append(rs.Rules, logic.NewTGD(
				[]logic.Atom{concept(rng.Intn(nConcepts), x)},
				[]logic.Atom{role(r, x, y), concept(rng.Intn(nConcepts), y)}))
		case 3: // domain: ∃R ⊑ C
			rs.Rules = append(rs.Rules, logic.NewTGD(
				[]logic.Atom{role(rng.Intn(nRoles), x, y)},
				[]logic.Atom{concept(rng.Intn(nConcepts), x)}))
		case 4: // range: ∃R⁻ ⊑ C
			rs.Rules = append(rs.Rules, logic.NewTGD(
				[]logic.Atom{role(rng.Intn(nRoles), x, y)},
				[]logic.Atom{concept(rng.Intn(nConcepts), y)}))
		default: // role inclusion, possibly inverse
			s, d := rng.Intn(nRoles), rng.Intn(nRoles)
			if rng.Intn(2) == 0 {
				rs.Rules = append(rs.Rules, logic.NewTGD(
					[]logic.Atom{role(s, x, y)}, []logic.Atom{role(d, x, y)}))
			} else {
				rs.Rules = append(rs.Rules, logic.NewTGD(
					[]logic.Atom{role(s, x, y)}, []logic.Atom{role(d, y, x)}))
			}
		}
	}
	return rs
}

// RandomABox generates n ground facts over the schema of the rule set,
// drawing constants from a pool of size domain.
func RandomABox(rng *rand.Rand, rs *logic.RuleSet, n, domain int) []logic.Atom {
	if domain < 1 {
		domain = 1
	}
	schema := rs.Schema()
	if len(schema) == 0 {
		return nil
	}
	out := make([]logic.Atom, 0, n)
	for i := 0; i < n; i++ {
		p := schema[rng.Intn(len(schema))]
		args := make([]logic.Term, p.Arity)
		for j := range args {
			args[j] = logic.Constant(fmt.Sprintf("d%d", rng.Intn(domain)))
		}
		out = append(out, logic.Atom{Pred: p.Name, Args: args})
	}
	return out
}

// SLFamily builds the scaling family used in the Theorem 3 (NL) series: a
// chain of n simple-linear rules r_i: p_i(X,Y) → p_{i+1}(Y,Z), with the
// last rule optionally closing the cycle back to p_0 (making the set
// non-terminating).
func SLFamily(n int, closeCycle bool) *logic.RuleSet {
	rs := logic.NewRuleSet()
	for i := 0; i < n; i++ {
		next := i + 1
		if i == n-1 {
			if !closeCycle {
				break
			}
			next = 0
		}
		rs.Rules = append(rs.Rules, logic.NewTGD(
			[]logic.Atom{logic.NewAtom(fmt.Sprintf("p%d", i), logic.Variable("X"), logic.Variable("Y"))},
			[]logic.Atom{logic.NewAtom(fmt.Sprintf("p%d", next), logic.Variable("Y"), logic.Variable("Z"))},
		))
	}
	if len(rs.Rules) == 0 { // n == 1 && !closeCycle
		rs.Rules = append(rs.Rules, logic.NewTGD(
			[]logic.Atom{logic.NewAtom("p0", logic.Variable("X"), logic.Variable("Y"))},
			[]logic.Atom{logic.NewAtom("p1", logic.Variable("Y"))},
		))
	}
	return rs
}

// LinearArityFamily builds the Theorem 3 (PSPACE) series: one predicate of
// arity w and rules that rotate and duplicate variables so that the
// reachable shape space grows exponentially with w. The returned set is
// terminating (the shapes never close a dangerous cycle) but forces the
// decider to explore many shapes.
func LinearArityFamily(w int) *logic.RuleSet {
	if w < 2 {
		w = 2
	}
	rs := logic.NewRuleSet()
	p := func(args ...logic.Term) logic.Atom { return logic.Atom{Pred: "p", Args: args} }
	vars := make([]logic.Term, w)
	for i := range vars {
		vars[i] = logic.Variable(fmt.Sprintf("X%d", i))
	}
	// Rotation rule: p(X0,...,Xw-1) -> p(X1,...,Xw-1,X0).
	rot := make([]logic.Term, w)
	copy(rot, vars[1:])
	rot[w-1] = vars[0]
	rs.Rules = append(rs.Rules, logic.NewTGD([]logic.Atom{p(vars...)}, []logic.Atom{p(rot...)}))
	// Merge rule: p(X0,X0,X2,...) -> p(X0,X2,...,Z): consumes an equality,
	// invents a value in the last position. Fresh values never flow back
	// into position 0, so no dangerous cycle arises.
	merged := make([]logic.Term, w)
	merged[0] = vars[0]
	merged[1] = vars[0]
	for i := 2; i < w; i++ {
		merged[i] = vars[i]
	}
	out := make([]logic.Term, w)
	out[0] = vars[0]
	for i := 2; i < w; i++ {
		out[i-1] = vars[i]
	}
	out[w-1] = logic.Variable("Z")
	rs.Rules = append(rs.Rules, logic.NewTGD([]logic.Atom{p(merged...)}, []logic.Atom{p(out...)}))
	return rs
}

// GuardedArityFamily builds the Theorem 4 scaling series: w guarded rules
// over a guard predicate of arity w,
//
//	g(X0,…,Xw-1), m(Xi) → ∃Z g(X0,…,Z@i,…,Xw-1)      (one rule per i)
//
// Each application replaces one m-marked slot with a fresh unmarked value,
// so the recursion consumes marks and terminates after at most w levels per
// branch — but the reachable node types record which subset of the guard's
// slots is still marked, so the type space the decider must traverse grows
// exponentially with w: the empirical face of the EXPTIME (bounded-arity)
// bound of Theorem 4.
func GuardedArityFamily(w int) *logic.RuleSet {
	if w < 1 {
		w = 1
	}
	rs := logic.NewRuleSet()
	gvars := make([]logic.Term, w)
	for i := range gvars {
		gvars[i] = logic.Variable(fmt.Sprintf("X%d", i))
	}
	for i := 0; i < w; i++ {
		head := make([]logic.Term, w)
		copy(head, gvars)
		head[i] = logic.Variable("Z")
		rs.Rules = append(rs.Rules, logic.NewTGD(
			[]logic.Atom{{Pred: "g", Args: gvars}, logic.NewAtom("m", gvars[i])},
			[]logic.Atom{{Pred: "g", Args: head}},
		))
	}
	return rs
}
