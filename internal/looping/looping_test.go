package looping

import (
	"testing"

	"chaseterm/internal/chase"
	"chaseterm/internal/core"
	"chaseterm/internal/critical"
	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
)

func TestChainEntailment(t *testing.T) {
	for _, k := range []int{1, 3, 8} {
		yes := Chain(k, true)
		got, err := Entailed(yes, chase.Options{})
		if err != nil || !got {
			t.Errorf("Chain(%d,true): entailed=%v err=%v", k, got, err)
		}
		no := Chain(k, false)
		got, err = Entailed(no, chase.Options{})
		if err != nil || got {
			t.Errorf("Chain(%d,false): entailed=%v err=%v", k, got, err)
		}
	}
}

func TestCounterEntailment(t *testing.T) {
	for _, b := range []int{1, 2, 4} {
		inst := Counter(b)
		got, err := Entailed(inst, chase.Options{})
		if err != nil || !got {
			t.Errorf("Counter(%d): entailed=%v err=%v", b, got, err)
		}
	}
}

func TestCounterStepCount(t *testing.T) {
	// Reaching 1...1 from 0...0 requires exactly 2^b - 1 increments; the
	// saturation applies exactly that many triggers (each counter value is
	// derived once).
	inst := Counter(4)
	res, err := chase.RunFromAtoms(inst.DB, inst.Rules, chase.SemiOblivious, chase.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != chase.Terminated {
		t.Fatal("counter chase did not saturate")
	}
	if res.Stats.TriggersApplied != 15 {
		t.Errorf("triggers: %d, want 15", res.Stats.TriggersApplied)
	}
}

// TestLoopPreservesClass: the token threading keeps the transformed set in
// the source's syntactic class.
func TestLoopPreservesClass(t *testing.T) {
	chain, err := Loop(Chain(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.Classify(); got != logic.ClassSimpleLinear {
		t.Errorf("looped chain class: %v", got)
	}
	counter, err := Loop(Counter(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := counter.Classify(); got != logic.ClassSimpleLinear {
		t.Errorf("looped counter class: %v", got)
	}
	// A guarded instance stays guarded.
	g := Instance{
		Rules: parse.MustParseRules(`e(X,Y), m(X) -> e(Y,X), m(Y).`),
		DB:    parse.MustParseFacts(`e(a,b). m(a).`),
		Goal:  logic.NewAtom("m", logic.Constant("b")),
	}
	lg, err := Loop(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := lg.Classify(); got != logic.ClassGuarded {
		t.Errorf("looped guarded class: %v", got)
	}
}

// TestLoopReduction is the heart of the looping operator: the transformed
// set diverges exactly when the goal is entailed — decided with the exact
// linear decider, and corroborated by the bounded critical-instance oracle.
func TestLoopReduction(t *testing.T) {
	cases := []struct {
		name     string
		inst     Instance
		entailed bool
	}{
		{"chain3-yes", Chain(3, true), true},
		{"chain3-no", Chain(3, false), false},
		{"chain1-yes", Chain(1, true), true},
		{"counter2", Counter(2), true},
		{"counter3", Counter(3), true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got, err := Entailed(tc.inst, chase.Options{}); err != nil || got != tc.entailed {
				t.Fatalf("entailment ground truth: %v err=%v", got, err)
			}
			looped, err := Loop(tc.inst)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.DecideLinear(looped, core.VariantSemiOblivious, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantAnswer := core.Terminating
			if tc.entailed {
				wantAnswer = core.NonTerminating
			}
			if res.Verdict.Answer != wantAnswer {
				t.Errorf("decider: %v, want %v", res.Verdict.Answer, wantAnswer)
			}
			// Empirical corroboration on the critical instance.
			oracle, err := critical.Oracle(looped, chase.SemiOblivious, chase.Options{MaxTriggers: 20000, MaxFacts: 20000})
			if err != nil {
				t.Fatal(err)
			}
			terminated := oracle.Outcome == chase.Terminated
			if terminated != (wantAnswer == core.Terminating) {
				t.Errorf("oracle: terminated=%v, want %v", terminated, wantAnswer == core.Terminating)
			}
		})
	}
}

// TestLoopObliviousVariant: the reduction also works for CT^o.
func TestLoopObliviousVariant(t *testing.T) {
	looped, err := Loop(Chain(2, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.DecideLinear(looped, core.VariantOblivious, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Answer != core.NonTerminating {
		t.Errorf("CT^o: %v, want non-terminating", res.Verdict.Answer)
	}
}

// TestLoopGuardedDecider: a guarded entailment instance routed through the
// guarded cloud decider.
func TestLoopGuardedDecider(t *testing.T) {
	reach := Instance{
		Rules: parse.MustParseRules(`edge(X,Y), reach(X) -> reach(Y).`),
		DB:    parse.MustParseFacts(`edge(a,b). edge(b,c). reach(a).`),
		Goal:  logic.NewAtom("reach", logic.Constant("c")),
	}
	if got, err := Entailed(reach, chase.Options{}); err != nil || !got {
		t.Fatalf("ground truth: %v %v", got, err)
	}
	looped, err := Loop(reach)
	if err != nil {
		t.Fatal(err)
	}
	if got := looped.Classify(); got != logic.ClassGuarded {
		t.Fatalf("class: %v", got)
	}
	res, err := core.DecideGuarded(looped, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Answer != core.NonTerminating {
		t.Errorf("guarded decider: %v, want non-terminating", res.Verdict.Answer)
	}
	// The unreachable variant terminates.
	reach.Goal = logic.NewAtom("reach", logic.Constant("zzz"))
	reach.DB = append(reach.DB, logic.NewAtom("node", logic.Constant("zzz")))
	looped2, err := Loop(reach)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.DecideGuarded(looped2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Verdict.Answer != core.Terminating {
		t.Errorf("guarded decider on non-entailed: %v, want terminating (witness %s)",
			res2.Verdict.Answer, res2.Verdict.Witness)
	}
}

func TestLoopErrors(t *testing.T) {
	if _, err := Loop(Instance{
		Rules: parse.MustParseRules(`p(X) -> q(X).`),
		DB:    nil,
		Goal:  logic.NewAtom("q", logic.Constant("a")),
	}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := Loop(Instance{
		Rules: parse.MustParseRules(`p(X) -> q(X).`),
		DB:    parse.MustParseFacts(`p(a).`),
		Goal:  logic.NewAtom("q", logic.Variable("X")),
	}); err == nil {
		t.Error("non-ground goal accepted")
	}
}

func TestEntailedMissingPredicate(t *testing.T) {
	got, err := Entailed(Instance{
		Rules: parse.MustParseRules(`p(X) -> q(X).`),
		DB:    parse.MustParseFacts(`p(a).`),
		Goal:  logic.NewAtom("zzz", logic.Constant("a")),
	}, chase.Options{})
	if err != nil || got {
		t.Errorf("missing predicate: %v %v", got, err)
	}
}
