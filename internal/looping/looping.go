// Package looping implements the paper's *looping operator*: the uniform
// device behind every lower bound of "Chase Termination for Guarded
// Existential Rules" — "a generic reduction from propositional atom
// entailment to the complement of chase termination" (Section 3.1).
//
// # The construction
//
// Given a rule set Σ, a database D and a ground goal atom, the operator
// produces Σ′ = Loop(Σ, D, goal) over a token-threaded copy of the schema:
//
//   - every predicate p/k of Σ becomes p̂/(k+1), the extra (last) position
//     carrying a derivation token;
//   - every rule of Σ is threaded with a single fresh token variable T
//     added to every body and head atom — so every derivation of Σ′ is
//     token-homogeneous;
//   - a seeding rule   run(T) → D̂(T)   asserts the (token-tagged) database;
//   - a pumping rule   ĝoal(c̄, T) → ∃T′ run(T′) ∧ pumped(T)   restarts
//     everything with a fresh token whenever the goal is derived (the
//     pumped(T) marker keeps T in the frontier so each goal token re-fires
//     the pump).
//
// On the critical instance, ĝoal(c̄, ✶) is present, so the pump fires once
// and starts a clean generation with a fresh token t₁: the t₁-tagged facts
// are exactly D, and the t₁-derivation is isomorphic to the chase of D
// under Σ. If the goal is entailed, ĝoal(c̄, t₁) appears, the pump fires
// again (the frontier {T} is new), and so on forever; if not, the
// generation dies out and the chase terminates. Hence, whenever Σ ∈ CT^so
// (so that each generation is finite — the paper's reductions guarantee
// this by *clocking* the simulated Turing machines, and our workloads use
// Datalog rule sets, which always saturate):
//
//	Loop(Σ, D, goal) ∈ CT^?  ⟺  D ∪ Σ ⊭ goal      (? ∈ {o, so})
//
// The transformation preserves simple-linearity, linearity and guardedness
// (the token joins every atom, including guards), which is exactly why the
// paper can reuse it across Theorems 3 and 4 to push entailment hardness
// into chase termination. The experiments instantiate it with chain and
// binary-counter entailment families (this package) and decide the result
// with the exact deciders of internal/core — empirically reproducing the
// reduction that underlies the NL/PSPACE/2EXPTIME-hardness results.
package looping

import (
	"context"
	"fmt"

	"chaseterm/internal/chase"
	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
)

// TokenVar is the variable threaded through every transformed rule.
const TokenVar = logic.Variable("TOKEN")

// hat decorates a predicate name from the source schema.
func hat(name string) string { return name + "ˆ" }

// RunPred is the generation-start predicate of the transformed set.
const RunPred = "runˆ"

// PumpedPred marks consumed goal tokens; it keeps the token variable in the
// pump rule's frontier (see Loop).
const PumpedPred = "pumpedˆ"

// Instance is one propositional-atom-entailment instance: does D ∪ Σ
// entail Goal?
type Instance struct {
	Rules *logic.RuleSet
	DB    []logic.Atom
	Goal  logic.Atom // ground
}

// Loop applies the looping operator, producing a rule set whose
// (semi-)oblivious chase termination is the complement of entailment for
// the instance (provided each generation saturates; see the package
// comment).
func Loop(inst Instance) (*logic.RuleSet, error) {
	if !inst.Goal.IsGround() {
		return nil, fmt.Errorf("looping: goal %s is not ground", inst.Goal)
	}
	out := logic.NewRuleSet()
	thread := func(a logic.Atom) logic.Atom {
		args := make([]logic.Term, 0, len(a.Args)+1)
		args = append(args, a.Args...)
		args = append(args, TokenVar)
		return logic.Atom{Pred: hat(a.Pred), Args: args}
	}
	// Σ̂: token-threaded copies.
	for _, r := range inst.Rules.Rules {
		body := make([]logic.Atom, len(r.Body))
		for i, a := range r.Body {
			body[i] = thread(a)
		}
		head := make([]logic.Atom, len(r.Head))
		for i, a := range r.Head {
			head[i] = thread(a)
		}
		nr := logic.NewTGD(body, head)
		nr.Label = r.Label
		out.Rules = append(out.Rules, nr)
	}
	// Seeding rule: run(T) -> D̂(T).
	seedHead := make([]logic.Atom, 0, len(inst.DB))
	for _, f := range inst.DB {
		seedHead = append(seedHead, thread(f))
	}
	if len(seedHead) == 0 {
		return nil, fmt.Errorf("looping: empty database")
	}
	out.Rules = append(out.Rules, logic.NewTGD(
		[]logic.Atom{{Pred: RunPred, Args: []logic.Term{TokenVar}}},
		seedHead,
	))
	// Pumping rule: ĝoal(c̄,T) → ∃T′ run(T′) ∧ pumped(T).
	//
	// The pumped(T) marker is essential, not cosmetic: without it the
	// token variable T would not occur in the head, the rule's frontier
	// would be empty, and the semi-oblivious chase would fire the pump
	// exactly once globally — for EVERY token, killing the loop. With the
	// marker the frontier is {T}, so each freshly derived goal token
	// re-fires the pump. pumped never occurs in a body, so it enables no
	// trigger.
	out.Rules = append(out.Rules, logic.NewTGD(
		[]logic.Atom{thread(inst.Goal)},
		[]logic.Atom{
			{Pred: RunPred, Args: []logic.Term{logic.Variable("TOKEN2")}},
			{Pred: PumpedPred, Args: []logic.Term{TokenVar}},
		},
	))
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("looping: transformed set invalid: %w", err)
	}
	return out, nil
}

// Entailed answers the entailment question directly by saturating D under
// Σ with the semi-oblivious chase (exact for Datalog rule sets, which
// always saturate; for rule sets with existentials the budget applies and
// an inconclusive run returns an error).
//
// Deprecated: use EntailedContext, which bounds the saturation by a
// caller-supplied context.
func Entailed(inst Instance, opt chase.Options) (bool, error) {
	return EntailedContext(context.Background(), inst, opt)
}

// EntailedContext is Entailed honoring a context: the underlying chase
// polls it, so a canceled or expired context surfaces as ctx.Err().
func EntailedContext(ctx context.Context, inst Instance, opt chase.Options) (bool, error) {
	res, err := chase.RunFromAtomsContext(ctx, inst.DB, inst.Rules, chase.SemiOblivious, opt)
	if err != nil {
		return false, err
	}
	if res.Outcome != chase.Terminated {
		return false, fmt.Errorf("looping: entailment chase did not saturate (%v)", res.Outcome)
	}
	in := res.Instance
	pid, ok := in.LookupPred(inst.Goal.Pred)
	if !ok {
		return false, nil
	}
	goalArgs := make([]instance.TermID, 0, len(inst.Goal.Args))
	for _, t := range inst.Goal.Args {
		c, okc := t.(logic.Constant)
		if !okc {
			return false, fmt.Errorf("looping: goal %s not ground", inst.Goal)
		}
		id, found := in.Terms.LookupConst(string(c))
		if !found {
			return false, nil
		}
		goalArgs = append(goalArgs, id)
	}
	return in.Contains(pid, goalArgs), nil
}

// ---------------------------------------------------------------------------
// Entailment hardness families (the sources of the paper's reductions).
// ---------------------------------------------------------------------------

// Chain builds the linear entailment instance: facts r0; rules
// r_{i-1} → r_i for i=1..k; goal r_k (entailed) or r_{k+1}-style dead goal
// when entailed is false. Simple-linear Datalog: deciding the looped set
// exercises the NL-hardness route of Theorem 3(1).
func Chain(k int, entailed bool) Instance {
	rs := logic.NewRuleSet()
	for i := 1; i <= k; i++ {
		rs.Rules = append(rs.Rules, logic.NewTGD(
			[]logic.Atom{{Pred: fmt.Sprintf("r%d", i-1)}},
			[]logic.Atom{{Pred: fmt.Sprintf("r%d", i)}},
		))
	}
	goal := logic.Atom{Pred: fmt.Sprintf("r%d", k)}
	if !entailed {
		// An unreachable predicate: mentioned in a rule guarded behind
		// nothing — simplest is a goal predicate with no deriving rule.
		goal = logic.Atom{Pred: "unreachable"}
		rs.Rules = append(rs.Rules, logic.NewTGD(
			[]logic.Atom{{Pred: "unreachable"}},
			[]logic.Atom{{Pred: "sink"}},
		))
	}
	return Instance{
		Rules: rs,
		DB:    []logic.Atom{{Pred: "r0"}},
		Goal:  goal,
	}
}

// Counter builds the b-bit binary-counter entailment instance: the counter
// predicate c/b over constants 0/1, increment rules, database c(0,…,0) and
// goal c(1,…,1) — entailment forces 2^b derivation steps. The rules are
// simple-linear Datalog with constants; under the looping operator this is
// the shape of the paper's clocked-machine reductions.
func Counter(b int) Instance {
	if b < 1 {
		b = 1
	}
	rs := logic.NewRuleSet()
	zero, one := logic.Constant("0"), logic.Constant("1")
	// For each j: c(X1..X_{b-j-1}, 0, 1^j) -> c(X1.., 1, 0^j).
	for j := 0; j < b; j++ {
		body := make([]logic.Term, b)
		head := make([]logic.Term, b)
		nv := b - j - 1
		for i := 0; i < nv; i++ {
			v := logic.Variable(fmt.Sprintf("X%d", i))
			body[i] = v
			head[i] = v
		}
		body[nv] = zero
		head[nv] = one
		for i := nv + 1; i < b; i++ {
			body[i] = one
			head[i] = zero
		}
		rs.Rules = append(rs.Rules, logic.NewTGD(
			[]logic.Atom{{Pred: "c", Args: body}},
			[]logic.Atom{{Pred: "c", Args: head}},
		))
	}
	dbArgs := make([]logic.Term, b)
	goalArgs := make([]logic.Term, b)
	for i := 0; i < b; i++ {
		dbArgs[i] = zero
		goalArgs[i] = one
	}
	return Instance{
		Rules: rs,
		DB:    []logic.Atom{{Pred: "c", Args: dbArgs}},
		Goal:  logic.Atom{Pred: "c", Args: goalArgs},
	}
}
