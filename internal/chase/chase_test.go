package chase

import (
	"strings"
	"testing"

	"chaseterm/internal/instance"
	"chaseterm/internal/parse"
)

func run(t *testing.T, facts, rules string, v Variant, opt Options) *Result {
	t.Helper()
	db := parse.MustParseFacts(facts)
	rs := parse.MustParseRules(rules)
	res, err := RunFromAtoms(db, rs, v, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExample1 reproduces the paper's Example 1: person(Bob) with
// person(X) -> hasFather(X,Y), person(Y) runs forever under every variant.
func TestExample1NonTermination(t *testing.T) {
	for _, v := range []Variant{Oblivious, SemiOblivious, Restricted} {
		res := run(t, `person(bob).`, `person(X) -> hasFather(X,Y), person(Y).`,
			v, Options{MaxTriggers: 50})
		if res.Outcome == Terminated {
			t.Errorf("%v: chase terminated, expected divergence", v)
		}
		// The derivation is exactly the chain of Example 1: after k
		// triggers there are 1+2k facts.
		if res.Stats.FactsAdded != 2*res.Stats.TriggersApplied {
			t.Errorf("%v: %d facts from %d triggers, want 2 per trigger",
				v, res.Stats.FactsAdded, res.Stats.TriggersApplied)
		}
	}
}

// TestExample2 reproduces Example 2: D = {p(a,b)}, p(X,Y) -> ∃Z p(Y,Z).
// There is a single chase sequence and it does not terminate.
func TestExample2NonTermination(t *testing.T) {
	for _, v := range []Variant{Oblivious, SemiOblivious} {
		res := run(t, `p(a,b).`, `p(X,Y) -> p(Y,Z).`, v, Options{MaxTriggers: 40})
		if res.Outcome == Terminated {
			t.Errorf("%v: terminated unexpectedly", v)
		}
		// I_i = I_{i-1} ∪ {p(z_{i-1}, z_i)}: exactly one new fact per step.
		if res.Stats.FactsAdded != res.Stats.TriggersApplied {
			t.Errorf("%v: %d facts from %d triggers", v, res.Stats.FactsAdded, res.Stats.TriggersApplied)
		}
	}
}

// TestObliviousVsSemiOblivious separates the variants on
// p(X,Y) -> ∃Z p(X,Z): the oblivious chase diverges (every new atom is a
// new homomorphism), the semi-oblivious terminates (the frontier {X} never
// changes).
func TestObliviousVsSemiOblivious(t *testing.T) {
	rules := `p(X,Y) -> p(X,Z).`
	facts := `p(a,b).`
	o := run(t, facts, rules, Oblivious, Options{MaxTriggers: 30})
	if o.Outcome == Terminated {
		t.Error("oblivious: expected divergence")
	}
	so := run(t, facts, rules, SemiOblivious, Options{})
	if so.Outcome != Terminated {
		t.Error("semi-oblivious: expected termination")
	}
	// Result: p(a,b) plus p(a, f(a)).
	if so.Instance.Size() != 2 {
		t.Errorf("semi-oblivious result size: %d, want 2", so.Instance.Size())
	}
}

// TestRestrictedSatisfaction: the restricted chase does not fire a trigger
// whose head is already satisfied.
func TestRestrictedSatisfaction(t *testing.T) {
	// hasFather is already total on the database: nothing to do.
	rules := `person(X) -> hasFather(X,Y).`
	facts := `person(bob). hasFather(bob,carl).`
	r := run(t, facts, rules, Restricted, Options{})
	if r.Outcome != Terminated {
		t.Fatal("restricted: expected termination")
	}
	if r.Stats.TriggersApplied != 0 || r.Stats.TriggersSatisfied != 1 {
		t.Errorf("restricted stats: applied %d satisfied %d", r.Stats.TriggersApplied, r.Stats.TriggersSatisfied)
	}
	// The oblivious chase fires regardless and invents a redundant null.
	o := run(t, facts, rules, Oblivious, Options{})
	if o.Outcome != Terminated || o.Stats.TriggersApplied != 1 {
		t.Errorf("oblivious applied %d", o.Stats.TriggersApplied)
	}
	if o.Instance.Size() != 3 {
		t.Errorf("oblivious size: %d", o.Instance.Size())
	}
}

// TestRestrictedTerminatesWhereObliviousDiverges: on Example 2 with a
// reflexive database the restricted chase stops immediately.
func TestRestrictedReflexive(t *testing.T) {
	res := run(t, `p(a,a).`, `p(X,Y) -> p(Y,Z).`, Restricted, Options{})
	if res.Outcome != Terminated {
		t.Fatal("restricted on p(a,a): expected termination")
	}
	if res.Stats.TriggersApplied != 0 {
		t.Errorf("applied %d triggers, want 0 (head satisfied by p(a,a) itself)", res.Stats.TriggersApplied)
	}
}

// TestSkolemIdentity: semi-oblivious homomorphisms agreeing on the frontier
// produce identical facts.
func TestSkolemIdentity(t *testing.T) {
	rules := `p(X,Y) -> q(X,Z).`
	facts := `p(a,b). p(a,c).` // same frontier X=a twice
	res := run(t, facts, rules, SemiOblivious, Options{})
	if res.Outcome != Terminated {
		t.Fatal("expected termination")
	}
	if res.Stats.TriggersApplied != 1 {
		t.Errorf("applied %d, want 1 (frontier dedup)", res.Stats.TriggersApplied)
	}
	o := run(t, facts, rules, Oblivious, Options{})
	if o.Stats.TriggersApplied != 2 {
		t.Errorf("oblivious applied %d, want 2", o.Stats.TriggersApplied)
	}
}

// TestSharedExistential: head atoms sharing an existential variable share
// the invented value.
func TestSharedExistential(t *testing.T) {
	res := run(t, `person(bob).`, `person(X) -> hasFather(X,Y), father(Y).`,
		SemiOblivious, Options{})
	if res.Outcome != Terminated {
		t.Fatal("expected termination")
	}
	strsAll := strings.Join(res.Instance.Strings(), ";")
	if !strings.Contains(strsAll, "hasFather(bob,f0_Y(bob))") || !strings.Contains(strsAll, "father(f0_Y(bob))") {
		t.Errorf("shared existential broken: %s", strsAll)
	}
}

// TestFairness: with two independent divergent rules, FIFO scheduling must
// interleave them — both predicates keep growing.
func TestFairness(t *testing.T) {
	rules := `p(X) -> p(Y).
q(X) -> q(Y).`
	res := run(t, `p(a). q(a).`, rules, Oblivious, Options{MaxTriggers: 100})
	if res.Outcome == Terminated {
		t.Fatal("expected divergence")
	}
	in := res.Instance
	pid, _ := in.LookupPred("p")
	qid, _ := in.LookupPred("q")
	np, nq := len(in.ByPred(pid)), len(in.ByPred(qid))
	if np < 40 || nq < 40 {
		t.Errorf("unfair scheduling: p=%d q=%d", np, nq)
	}
}

// TestIsModel: a terminated chase result is a model of the rules.
func TestIsModel(t *testing.T) {
	rules := `person(X) -> hasFather(X,Y).
hasFather(X,Y) -> person(X).`
	db := parse.MustParseFacts(`person(bob). person(alice).`)
	rs := parse.MustParseRules(rules)
	for _, v := range []Variant{Oblivious, SemiOblivious, Restricted} {
		res, err := RunFromAtoms(db, rs, v, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != Terminated {
			t.Fatalf("%v: expected termination", v)
		}
		violation, err := IsModel(res.Instance, rs)
		if err != nil {
			t.Fatal(err)
		}
		if violation != "" {
			t.Errorf("%v: result is not a model: %s", v, violation)
		}
	}
}

// TestIsModelDetectsViolation: IsModel must flag an instance that does not
// satisfy the rules.
func TestIsModelDetectsViolation(t *testing.T) {
	rs := parse.MustParseRules(`person(X) -> hasFather(X,Y).`)
	in, err := instance.FromAtoms(parse.MustParseFacts(`person(bob).`))
	if err != nil {
		t.Fatal(err)
	}
	violation, err := IsModel(in, rs)
	if err != nil {
		t.Fatal(err)
	}
	if violation == "" {
		t.Error("missing father not detected")
	}
}

// TestNoopTriggers: the oblivious chase counts applications that add
// nothing (the "superfluous" work the paper's Section 2 contrasts with the
// semi-oblivious chase).
func TestNoopTriggers(t *testing.T) {
	rules := `p(X,Y) -> q(Y).
q(Y) -> r(Y).`
	facts := `p(a,b). p(c,b).` // both derive q(b)
	res := run(t, facts, rules, Oblivious, Options{})
	if res.Outcome != Terminated {
		t.Fatal("expected termination")
	}
	if res.Stats.TriggersNoop != 1 {
		t.Errorf("noop triggers: %d, want 1", res.Stats.TriggersNoop)
	}
}

// TestDepthBudget: MaxDepth cuts off runs that nest invented values.
func TestDepthBudget(t *testing.T) {
	res := run(t, `p(a,b).`, `p(X,Y) -> p(Y,Z).`, SemiOblivious, Options{MaxDepth: 5, MaxTriggers: 100000})
	if res.Outcome != DepthExceeded {
		t.Fatalf("outcome: %v", res.Outcome)
	}
	if res.Stats.MaxTermDepth != 6 {
		t.Errorf("max depth: %d", res.Stats.MaxTermDepth)
	}
}

// TestCyclicSkolemStop: the MFA stopping rule fires on self-nesting Skolem
// functions.
func TestCyclicSkolemStop(t *testing.T) {
	res := run(t, `p(a,b).`, `p(X,Y) -> p(Y,Z).`, SemiOblivious,
		Options{StopOnCyclicSkolem: true, MaxTriggers: 100000})
	if res.Outcome != CyclicTerm {
		t.Fatalf("outcome: %v", res.Outcome)
	}
	// A terminating set never triggers the rule.
	res = run(t, `p(a,b).`, `p(X,Y) -> q(Y,Z).`, SemiOblivious,
		Options{StopOnCyclicSkolem: true})
	if res.Outcome != Terminated {
		t.Fatalf("outcome: %v", res.Outcome)
	}
}

// TestRecordSequence: the optional trigger log matches the statistics.
func TestRecordSequence(t *testing.T) {
	res := run(t, `a(x).`, `a(X) -> b(X).
b(X) -> c(X).`, SemiOblivious, Options{RecordSequence: true})
	if res.Outcome != Terminated {
		t.Fatal("expected termination")
	}
	if len(res.Sequence) != res.Stats.TriggersApplied {
		t.Errorf("sequence length %d != applied %d", len(res.Sequence), res.Stats.TriggersApplied)
	}
	total := 0
	for _, s := range res.Sequence {
		total += s.FactsAdded
	}
	if total != res.Stats.FactsAdded {
		t.Errorf("sequence facts %d != stats %d", total, res.Stats.FactsAdded)
	}
}

// TestParseVariant round-trips the variant names.
func TestParseVariant(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Variant
	}{{"o", Oblivious}, {"oblivious", Oblivious}, {"so", SemiOblivious},
		{"skolem", SemiOblivious}, {"r", Restricted}, {"standard", Restricted}} {
		got, err := ParseVariant(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseVariant(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseVariant("nope"); err == nil {
		t.Error("unknown variant accepted")
	}
}

// TestDeterminism: two runs over the same input produce identical fact
// sets and statistics.
func TestDeterminism(t *testing.T) {
	rules := `p(X,Y) -> q(Y,Z).
q(X,Y) -> r(X).
r(X) -> s(X,X).`
	facts := `p(a,b). p(b,c). p(c,a).`
	r1 := run(t, facts, rules, SemiOblivious, Options{})
	r2 := run(t, facts, rules, SemiOblivious, Options{})
	s1, s2 := r1.Instance.Strings(), r2.Instance.Strings()
	if len(s1) != len(s2) {
		t.Fatalf("sizes differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("fact %d differs: %s vs %s", i, s1[i], s2[i])
		}
	}
	if r1.Stats != r2.Stats {
		t.Errorf("stats differ: %+v vs %+v", r1.Stats, r2.Stats)
	}
}
