package chase

// parallel.go is the generation-based parallel chase engine: the
// phase-split refactor of the sequential trigger loop.
//
// The key observation is that the sequential FIFO engine is already a
// level-synchronized computation in disguise. Its queue alternates
// between "the triggers known at the start of level G" and "the
// triggers discovered from level G's facts", and FIFO order never
// interleaves the two. That makes the loop splittable into explicit
// phases per generation G:
//
//  1. Writer phase — pop and apply exactly the triggers pending at the
//     start of G, in FIFO order, under the single writer: restricted
//     satisfaction checks against the live instance, dedup via the
//     trigger TupleSet, Skolem/null invention, Instance.Add. Identical
//     to the sequential loop except that per-fact trigger discovery is
//     deferred.
//  2. Freeze — Instance.Freeze marks the instance read-only and yields
//     the generation's Snapshot (the checked frozen-read contract).
//  3. Match phase — the generation's delta facts are partitioned into
//     chunks claimed by a bounded set of stripe workers, each with its
//     own MatchScratch and pending-trigger arena. A worker discovers
//     the triggers anchored at each delta fact via the snapshot's
//     as-of enumeration (only facts <= the anchor participate — the
//     exact view the sequential engine matched against right after
//     adding that fact) and pre-filters candidates already in the
//     trigger set. Cancellation is polled per chunk.
//  4. Merge — back under the writer, the recorded candidates are
//     replayed through Engine.offer in ascending anchor-fact order
//     (chunk order, then discovery order within the chunk): the same
//     offers, in the same order, as the sequential engine's inline
//     discovery. Then G+1 begins.
//
// Because applications, term invention, dedup and stats all happen under
// the writer in sequential order, and the merged discovery stream is
// order-identical, the parallel engine is bit-for-bit deterministic:
// same fact ids, same null ordinals and Skolem terms, same outcome and
// statistics as the sequential engine, at every worker count.

import (
	"context"
	"sync"
	"sync/atomic"

	"chaseterm/internal/instance"
)

const (
	// minParallelDelta is the generation size below which the match phase
	// runs inline on the writer goroutine: fanning goroutines out costs
	// more than matching a handful of facts.
	minParallelDelta = 48
	// chunksPerStripe oversubscribes chunks per worker so a stripe that
	// lands on expensive anchors does not straggle the phase.
	chunksPerStripe = 4
	// minChunkFacts bounds chunk-claim overhead for mid-size deltas.
	minChunkFacts = 16
)

// stripe is one worker's private matching state, reused across
// generations: the homomorphism scratch, the frontier-projection buffer
// of the duplicate pre-filter, and the arena of recorded candidate
// triggers. Everything a stripe touches during a phase is either owned
// by it or frozen (the snapshot, the compiled rules, the trigger set).
type stripe struct {
	e       *Engine
	id      int32
	match   instance.MatchScratch
	arena   []instance.TermID // recorded offers: rule, nvars, binding...
	frbuf   []instance.TermID
	curRule int
	record  func([]instance.TermID) bool // recordOffer, hoisted once
}

// chunkRef locates one chunk's records for the ordered merge: the slice
// [start, end) of stripes[worker].arena. Written by exactly one worker,
// read by the writer after the phase barrier.
type chunkRef struct {
	worker     int32
	start, end int32
}

// parRun is the engine's reusable fan-out state.
type parRun struct {
	stripes []stripe
	refs    []chunkRef
	next    atomic.Int32 // chunk claim counter
	aborted atomic.Bool  // set by a worker that observed cancellation
}

func newParRun(e *Engine, workers int) *parRun {
	p := &parRun{stripes: make([]stripe, workers)}
	for i := range p.stripes {
		st := &p.stripes[i]
		st.e = e
		st.id = int32(i)
		st.record = st.recordOffer
	}
	return p
}

// runStripes fans nItems work items out over the stripes. Items are
// claimed with an atomic counter; item i's records land in refs[i], so
// the merge can visit them in item order regardless of which stripe ran
// them. Workers poll done once per claimed item. Reports whether the
// phase was aborted by cancellation (in which case the records are
// incomplete and must not be merged). The WaitGroup barrier both drains
// the goroutines and publishes every stripe's writes to the writer.
func (p *parRun) runStripes(done <-chan struct{}, nItems int, work func(st *stripe, item int)) bool {
	for w := range p.stripes {
		p.stripes[w].arena = p.stripes[w].arena[:0]
	}
	if cap(p.refs) < nItems {
		p.refs = make([]chunkRef, nItems)
	}
	p.refs = p.refs[:nItems]
	p.next.Store(0)
	p.aborted.Store(false)
	nw := len(p.stripes)
	if nw > nItems {
		nw = nItems
	}
	var wg sync.WaitGroup
	wg.Add(nw)
	for w := 0; w < nw; w++ {
		st := &p.stripes[w]
		go func() {
			defer wg.Done()
			for {
				item := int(p.next.Add(1)) - 1
				if item >= nItems || p.aborted.Load() {
					return
				}
				if canceled(done) {
					p.aborted.Store(true)
					return
				}
				start := int32(len(st.arena))
				work(st, item)
				p.refs[item] = chunkRef{worker: st.id, start: start, end: int32(len(st.arena))}
			}
		}()
	}
	wg.Wait()
	return p.aborted.Load()
}

// mergeStripes replays the recorded candidate triggers through
// Engine.offer in item order — ascending anchor-fact order — which is
// exactly the order the sequential engine discovers them in. offer
// re-checks the trigger identity set, so candidates recorded twice
// (e.g. one homomorphism found through two anchors in different chunks)
// deduplicate here just as they would inline.
func (e *Engine) mergeStripes() {
	p := e.par
	for _, r := range p.refs {
		buf := p.stripes[r.worker].arena[r.start:r.end]
		for i := 0; i < len(buf); {
			rule := int(buf[i])
			nb := int(buf[i+1])
			i += 2
			e.offer(rule, buf[i:i+nb])
			i += nb
		}
	}
}

// recordOffer is the stripe's match callback: the inner loop of the
// parallel match phase. It drops candidates whose trigger identity is
// already known — the steady state of a saturating run, and the probe
// whose cost the fan-out exists to spread — and records the rest for
// the ordered merge. Allocation-free once the stripe's buffers have
// grown to the workload (pinned by TestStripeMatchAllocFree).
//
//chaselint:hotpath
func (st *stripe) recordOffer(b []instance.TermID) bool {
	e := st.e
	key := b
	if e.variant == SemiOblivious {
		st.frbuf = st.frbuf[:0]
		for _, vi := range e.rules[st.curRule].frontier {
			st.frbuf = append(st.frbuf, b[vi])
		}
		key = st.frbuf
	}
	if e.seen.Contains(int32(st.curRule), key) {
		return true
	}
	st.arena = append(st.arena, instance.TermID(st.curRule), instance.TermID(len(b)))
	st.arena = append(st.arena, b...)
	return true
}

// matchFact discovers the candidate triggers anchored at one delta
// fact, against the snapshot as of that fact's insertion.
//
//chaselint:hotpath
func (st *stripe) matchFact(snap instance.Snapshot, fid instance.FactID) {
	e := st.e
	pred := snap.Fact(fid).Pred
	for _, ra := range e.byPred[pred] {
		st.curRule = ra[0]
		snap.FindHomsAnchoredAsOfWith(&st.match, e.rules[ra[0]].body, ra[1], fid, st.record)
	}
}

// discoverAsOf is the writer-side twin of matchFact for small deltas:
// it offers directly (no record/merge round trip) but still matches
// through the snapshot's as-of view, so the discovery order is the
// sequential engine's.
//
//chaselint:hotpath
func (e *Engine) discoverAsOf(snap instance.Snapshot, fid instance.FactID) {
	pred := snap.Fact(fid).Pred
	for _, ra := range e.byPred[pred] {
		e.curRule = ra[0]
		snap.FindHomsAnchoredAsOfWith(&e.match, e.rules[ra[0]].body, ra[1], fid, e.offerFn)
	}
}

// matchDelta runs the generation's match phase over the delta facts
// [lo, Size()): freeze, fan out (or match inline for small deltas),
// merge. Reports whether the phase observed cancellation, in which case
// nothing was merged and the run must stop.
func (e *Engine) matchDelta(done <-chan struct{}, lo instance.FactID) bool {
	hi := instance.FactID(e.in.Size())
	if lo == hi {
		return false
	}
	snap := e.in.Freeze()
	n := int(hi - lo)
	if n < minParallelDelta {
		for fid := lo; fid < hi; fid++ {
			e.discoverAsOf(snap, fid)
		}
		snap.Release()
		return false
	}
	chunk := n / (len(e.par.stripes) * chunksPerStripe)
	if chunk < minChunkFacts {
		chunk = minChunkFacts
	}
	nc := (n + chunk - 1) / chunk
	aborted := e.par.runStripes(done, nc, func(st *stripe, ci int) {
		clo := lo + instance.FactID(ci*chunk)
		chi := clo + instance.FactID(chunk)
		if chi > hi {
			chi = hi
		}
		for fid := clo; fid < chi; fid++ {
			st.matchFact(snap, fid)
		}
	})
	snap.Release()
	if aborted {
		return true
	}
	e.mergeStripes()
	return false
}

// seedParallel runs the seed joins — every rule body against the
// initial instance — fanned out per rule and merged in rule order,
// matching the sequential seed loop's offers exactly. Reports
// cancellation.
func (e *Engine) seedParallel(done <-chan struct{}) bool {
	if canceled(done) {
		return true
	}
	if len(e.rules) == 0 {
		return false
	}
	snap := e.in.Freeze()
	aborted := e.par.runStripes(done, len(e.rules), func(st *stripe, ri int) {
		st.curRule = ri
		snap.FindHomsWith(&st.match, e.rules[ri].body, nil, st.record)
	})
	snap.Release()
	if aborted {
		return true
	}
	e.mergeStripes()
	return false
}

// emitBatch delivers the generation's delta [lo, Size()) to the stream
// sink as one coalesced range (see the StreamSink contract).
func (e *Engine) emitBatch(lo instance.FactID) {
	if e.sink == nil {
		return
	}
	hi := instance.FactID(e.in.Size())
	if hi > lo {
		e.sink.EmitFacts(lo, hi, e.stats)
	}
}

// runParallel is RunContext for Options.Workers > 1 (FIFO order): the
// generation loop described at the top of this file. The stopping rules
// replicate the sequential loop exactly; whenever a stop decision needs
// the pending-trigger count (budget stops) or the run ends a
// generation, the match phase has already folded the delta's
// discoveries in, so outcomes and statistics agree with the sequential
// engine at every stopping point. The one documented exception is
// cancellation: a Canceled result may leave the last delta's triggers
// undiscovered (its statistics are explicitly partial).
func (e *Engine) runParallel(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	e.stats.InitialFacts = e.in.Size()
	if e.par == nil {
		e.par = newParRun(e, e.opt.Workers)
	}
	if e.seedParallel(done) {
		return e.result(Canceled), ctx.Err()
	}
	e.deferDiscovery = true
	defer func() { e.deferDiscovery = false }()
	outcome := Terminated
	steps := 0
	for {
		// Generation boundary: the budget check the sequential loop makes
		// at the top of what would be this generation's first iteration.
		if e.stats.TriggersApplied >= e.opt.MaxTriggers || e.in.Size() >= e.opt.MaxFacts {
			if e.pending > 0 {
				outcome = BudgetExceeded
			}
			break
		}
		if e.pending == 0 {
			break
		}
		// Writer phase: this generation's batch is exactly the triggers
		// pending now; discoveries from its facts enqueue for the next.
		batch := e.pending
		deltaLo := instance.FactID(e.in.Size())
		stopped := false
		var stopOutcome Outcome
		for i := 0; i < batch; i++ {
			if steps%ctxCheckInterval == 0 {
				if canceled(done) {
					e.emitBatch(deltaLo)
					return e.result(Canceled), ctx.Err()
				}
				if e.sink != nil {
					e.sink.Progress(e.stats)
				}
			}
			steps++
			if i > 0 && (e.stats.TriggersApplied >= e.opt.MaxTriggers || e.in.Size() >= e.opt.MaxFacts) {
				// Mid-batch budget stop: the rest of the batch is still
				// pending, so the sequential outcome is BudgetExceeded.
				stopped, stopOutcome = true, BudgetExceeded
				break
			}
			t, _ := e.pop()
			cr := &e.rules[t.rule]
			fr := e.frontierOf(t)
			if e.variant == Restricted && e.headSatisfied(cr, fr) {
				e.stats.TriggersSatisfied++
				continue
			}
			added, maxDepth := e.apply(cr, fr)
			e.stats.TriggersApplied++
			if added == 0 {
				e.stats.TriggersNoop++
			}
			if e.opt.RecordSequence {
				e.seq = append(e.seq, AppliedTrigger{Rule: int(t.rule), FactsAdded: added})
			}
			if maxDepth > e.stats.MaxTermDepth {
				e.stats.MaxTermDepth = maxDepth
			}
			if maxDepth > e.opt.MaxDepth {
				stopped, stopOutcome = true, DepthExceeded
				break
			}
			if e.cyclicSeen {
				stopped, stopOutcome = true, CyclicTerm
				break
			}
		}
		e.emitBatch(deltaLo)
		// Match phase over the delta — also on early stops, so that
		// pending and TriggersEnqueued reflect every added fact just as
		// the sequential engine's inline discovery would.
		if e.matchDelta(done, deltaLo) {
			return e.result(Canceled), ctx.Err()
		}
		if stopped {
			outcome = stopOutcome
			break
		}
	}
	return e.result(outcome), nil
}
