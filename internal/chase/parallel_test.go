package chase

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
	"chaseterm/internal/workload"
)

// testWorkers returns the parallel worker count the regression tests
// exercise: CHASE_WORKERS when set (CI runs the package under -race
// with CHASE_WORKERS=8), 8 otherwise.
func testWorkers(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("CHASE_WORKERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 2 {
			t.Fatalf("bad CHASE_WORKERS=%q", s)
		}
		return n
	}
	return 8
}

// corpusCase is one workload the determinism regression runs both ways.
type corpusCase struct {
	name  string
	rules *logic.RuleSet
	db    []logic.Atom
	opt   Options
}

func determinismCorpus() []corpusCase {
	rng := rand.New(rand.NewSource(7))
	incl := workload.RandomInclusionDependencies(rng, 10, 5, 30)
	inclDB := workload.RandomABox(rng, incl, 60, 20)
	sl := workload.RandomSL(rng, workload.Config{NumPreds: 4, NumRules: 5})
	slDB := workload.RandomABox(rng, sl, 40, 12)
	guarded := workload.RandomGuarded(rng, workload.Config{NumPreds: 4, NumRules: 4, MaxArity: 3})
	guardedDB := workload.RandomABox(rng, guarded, 40, 12)
	return []corpusCase{
		{"example1-budget", workload.Example1(), workload.Example1DB(),
			Options{MaxTriggers: 500}},
		{"example2-budget", workload.Example2(), workload.Example2DB(),
			Options{MaxFacts: 400}},
		{"example2-cyclic", workload.Example2(), workload.Example2DB(),
			Options{StopOnCyclicSkolem: true}},
		{"example1-depth", workload.Example1(), workload.Example1DB(),
			Options{MaxDepth: 6}},
		{"ontology", workload.OntologySL(), workload.OntologyDB(), Options{}},
		{"data-exchange", workload.DataExchange(), workload.DataExchangeDB(), Options{}},
		{"inclusion-deps", incl, inclDB, Options{MaxTriggers: 20_000, MaxFacts: 20_000}},
		{"random-sl", sl, slDB, Options{MaxTriggers: 10_000, MaxFacts: 10_000}},
		{"random-guarded", guarded, guardedDB, Options{MaxTriggers: 5_000, MaxFacts: 10_000}},
	}
}

// normalizeRanges order-normalizes a stream's emitted ranges into the
// minimal sorted set of disjoint intervals covering the same fact ids.
func normalizeRanges(ranges [][2]instance.FactID) [][2]instance.FactID {
	if len(ranges) == 0 {
		return nil
	}
	out := append([][2]instance.FactID(nil), ranges...)
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	merged := out[:1]
	for _, r := range out[1:] {
		last := &merged[len(merged)-1]
		if r[0] <= last[1] {
			if r[1] > last[1] {
				last[1] = r[1]
			}
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// runStreamed runs one engine over a fresh copy of the case's database
// and returns the result plus the emitted ranges.
func runStreamed(t *testing.T, c corpusCase, v Variant, workers int) (*Result, [][2]instance.FactID) {
	t.Helper()
	in, err := instance.FromAtoms(c.db)
	if err != nil {
		t.Fatal(err)
	}
	opt := c.opt
	opt.Workers = workers
	e, err := NewEngine(in, c.rules, v, opt)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	res, err := e.RunStreamContext(context.Background(), sink)
	if err != nil {
		t.Fatal(err)
	}
	return res, sink.ranges
}

// TestParallelMatchesSequentialCorpus is the determinism regression of
// the parallel engine: on every corpus workload and chase variant, a
// parallel run (CHASE_WORKERS, default 8; plus workers=2 to catch
// batch-boundary bugs a large worker count can mask) must produce the
// identical outcome, identical statistics (including TriggersEnqueued
// and MaxTermDepth, the per-stripe aggregates), the identical final
// instance, and the identical order-normalized union of streamed fact
// ranges as the sequential engine.
func TestParallelMatchesSequentialCorpus(t *testing.T) {
	workers := testWorkers(t)
	for _, c := range determinismCorpus() {
		for _, v := range []Variant{Oblivious, SemiOblivious, Restricted} {
			if c.opt.StopOnCyclicSkolem && v != SemiOblivious {
				continue
			}
			t.Run(c.name+"/"+v.String(), func(t *testing.T) {
				seqRes, seqRanges := runStreamed(t, c, v, 1)
				for _, w := range []int{2, workers} {
					parRes, parRanges := runStreamed(t, c, v, w)
					if parRes.Outcome != seqRes.Outcome {
						t.Errorf("workers=%d outcome %v, sequential %v", w, parRes.Outcome, seqRes.Outcome)
					}
					if parRes.Stats != seqRes.Stats {
						t.Errorf("workers=%d stats %+v, sequential %+v", w, parRes.Stats, seqRes.Stats)
					}
					seq := seqRes.Instance.Strings()
					par := parRes.Instance.Strings()
					if !reflect.DeepEqual(seq, par) {
						t.Errorf("workers=%d instance differs: %d vs %d facts", w, len(par), len(seq))
					}
					if got, want := normalizeRanges(parRanges), normalizeRanges(seqRanges); !reflect.DeepEqual(got, want) {
						t.Errorf("workers=%d stream range union %v, sequential %v", w, got, want)
					}
				}
			})
		}
	}
}

// TestParallelStatsAggregation pins the stripe-aggregated statistics
// against the sequential counts on a workload deep enough to cross many
// generations: TriggersEnqueued (merged across stripes) and
// MaxTermDepth (writer-side reduce) must agree exactly.
func TestParallelStatsAggregation(t *testing.T) {
	workers := testWorkers(t)
	rng := rand.New(rand.NewSource(26))
	rs := workload.RandomInclusionDependencies(rng, 12, 6, 40)
	db := workload.RandomABox(rng, rs, 100, 30)
	for _, v := range []Variant{Oblivious, SemiOblivious, Restricted} {
		opt := Options{MaxTriggers: 50_000, MaxFacts: 50_000}
		seqIn, err := instance.FromAtoms(db)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := RunContext(context.Background(), seqIn, rs, v, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Workers = workers
		parIn, err := instance.FromAtoms(db)
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunContext(context.Background(), parIn, rs, v, opt)
		if err != nil {
			t.Fatal(err)
		}
		if par.Stats.TriggersEnqueued != seq.Stats.TriggersEnqueued {
			t.Errorf("%v: TriggersEnqueued %d, sequential %d", v, par.Stats.TriggersEnqueued, seq.Stats.TriggersEnqueued)
		}
		if par.Stats.MaxTermDepth != seq.Stats.MaxTermDepth {
			t.Errorf("%v: MaxTermDepth %d, sequential %d", v, par.Stats.MaxTermDepth, seq.Stats.MaxTermDepth)
		}
		if par.Stats != seq.Stats {
			t.Errorf("%v: stats %+v, sequential %+v", v, par.Stats, seq.Stats)
		}
	}
}

// TestParallelRecordSequence: the applied-trigger sequence is a
// writer-phase artifact and must also be identical.
func TestParallelRecordSequence(t *testing.T) {
	c := corpusCase{rules: workload.OntologySL(), db: workload.OntologyDB(),
		opt: Options{RecordSequence: true}}
	seqRes, _ := runStreamed(t, c, SemiOblivious, 1)
	parRes, _ := runStreamed(t, c, SemiOblivious, testWorkers(t))
	if !reflect.DeepEqual(parRes.Sequence, seqRes.Sequence) {
		t.Errorf("trigger sequences differ: %d vs %d applications",
			len(parRes.Sequence), len(seqRes.Sequence))
	}
}

// TestParallelNonFIFOFallsBackSequential: the parallel engine is defined
// only for FIFO scheduling; other orders run the sequential loop and
// must keep their order-specific semantics.
func TestParallelNonFIFOFallsBackSequential(t *testing.T) {
	for _, ord := range []Order{OrderLIFO, OrderRulePriority} {
		in, err := instance.FromAtoms(workload.OntologyDB())
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Order: ord, Workers: 8}
		res, err := RunContext(context.Background(), in, workload.OntologySL(), Restricted, opt)
		if err != nil || res.Outcome != Terminated {
			t.Fatalf("order %v: %v %v", ord, res, err)
		}
		inSeq, err := instance.FromAtoms(workload.OntologyDB())
		if err != nil {
			t.Fatal(err)
		}
		seq, err := RunContext(context.Background(), inSeq, workload.OntologySL(), Restricted, Options{Order: ord})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats != seq.Stats {
			t.Errorf("order %v: workers=8 stats %+v, sequential %+v", ord, res.Stats, seq.Stats)
		}
	}
}

// TestParallelCancellation: a canceled parallel run returns Canceled
// with ctx.Err(), promptly, from whichever phase observes the cancel.
func TestParallelCancellation(t *testing.T) {
	rules := workload.Example1()
	in, err := instance.FromAtoms(workload.Example1DB())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(in, rules, SemiOblivious,
		Options{MaxTriggers: 1 << 20, MaxFacts: 1 << 20, Workers: testWorkers(t)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sink := &collectSink{}
	sink.onFacts = func() {
		if len(sink.ranges) == 2 {
			cancel()
		}
	}
	res, err := e.RunStreamContext(ctx, sink)
	if err == nil {
		t.Fatal("expected a context error")
	}
	if res.Outcome != Canceled {
		t.Fatalf("outcome %v, want Canceled", res.Outcome)
	}
	cancel()
}

// TestParallelModelProperty: a terminated parallel restricted chase must
// still be a model of the rules — the result is not just deterministic
// but correct.
func TestParallelModelProperty(t *testing.T) {
	in, err := instance.FromAtoms(workload.DataExchangeDB())
	if err != nil {
		t.Fatal(err)
	}
	rs := workload.DataExchange()
	res, err := RunContext(context.Background(), in, rs, Restricted, Options{Workers: testWorkers(t)})
	if err != nil || res.Outcome != Terminated {
		t.Fatalf("run: %+v %v", res, err)
	}
	bad, err := IsModel(res.Instance, rs)
	if err != nil {
		t.Fatal(err)
	}
	if bad != "" {
		t.Errorf("parallel chase result is not a model: %s", bad)
	}
}
