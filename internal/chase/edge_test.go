package chase

import (
	"strings"
	"testing"

	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
)

// TestJoinOnInventedValues: multi-atom bodies must join on nulls invented
// earlier in the run.
func TestJoinOnInventedValues(t *testing.T) {
	rules := parse.MustParseRules(`
a(X) -> r(X,Y), s(Y).
r(X,Y), s(Y) -> hit(X).
`)
	res := mustRun(t, `a(c).`, rules, SemiOblivious)
	if res.Outcome != Terminated {
		t.Fatalf("outcome: %v", res.Outcome)
	}
	all := strings.Join(res.Instance.Strings(), ";")
	if !strings.Contains(all, "hit(c)") {
		t.Errorf("join over invented value failed: %s", all)
	}
}

// TestHeadConstants: constants in heads are instantiated as themselves.
func TestHeadConstants(t *testing.T) {
	rules := parse.MustParseRules(`trigger(X) -> flag(on), level(X,0).`)
	res := mustRun(t, `trigger(t).`, rules, Restricted)
	all := strings.Join(res.Instance.Strings(), ";")
	if !strings.Contains(all, "flag(on)") || !strings.Contains(all, "level(t,0)") {
		t.Errorf("head constants: %s", all)
	}
}

// TestZeroAryChase: 0-ary predicates flow through all variants.
func TestZeroAryChase(t *testing.T) {
	rules := parse.MustParseRules(`
start -> phase1.
phase1 -> phase2.
phase2, start -> done.
`)
	for _, v := range []Variant{Oblivious, SemiOblivious, Restricted} {
		res := mustRun(t, `start.`, rules, v)
		if res.Outcome != Terminated {
			t.Fatalf("%v: %v", v, res.Outcome)
		}
		if res.Instance.Size() != 4 {
			t.Errorf("%v: %d facts", v, res.Instance.Size())
		}
	}
}

// TestBodyConstantFilter: body constants restrict matching.
func TestBodyConstantFilter(t *testing.T) {
	rules := parse.MustParseRules(`level(X,0) -> base(X).`)
	res := mustRun(t, `level(a,0). level(b,1).`, rules, SemiOblivious)
	all := strings.Join(res.Instance.Strings(), ";")
	if !strings.Contains(all, "base(a)") || strings.Contains(all, "base(b)") {
		t.Errorf("constant filtering: %s", all)
	}
}

// TestSelfJoinBody: one predicate twice in a body with shared variables.
func TestSelfJoinBody(t *testing.T) {
	rules := parse.MustParseRules(`e(X,Y), e(Y,Z) -> path2(X,Z).`)
	res := mustRun(t, `e(a,b). e(b,c). e(c,a).`, rules, SemiOblivious)
	pid, _ := res.Instance.LookupPred("path2")
	if len(res.Instance.ByPred(pid)) != 3 {
		t.Errorf("paths: %d", len(res.Instance.ByPred(pid)))
	}
}

// TestRuleWithSameAtomTwice: a body repeating an identical atom is just a
// redundant conjunct.
func TestRuleWithSameAtomTwice(t *testing.T) {
	rules := parse.MustParseRules(`p(X), p(X) -> q(X).`)
	res := mustRun(t, `p(a).`, rules, SemiOblivious)
	if res.Stats.TriggersApplied != 1 {
		t.Errorf("triggers: %d", res.Stats.TriggersApplied)
	}
}

// TestEmptyDatabase: no facts, nothing to do, still a valid terminated run.
func TestEmptyDatabase(t *testing.T) {
	rules := parse.MustParseRules(`p(X) -> q(X).`)
	res, err := RunFromAtoms(nil, rules, SemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Terminated || res.Instance.Size() != 0 {
		t.Errorf("outcome %v size %d", res.Outcome, res.Instance.Size())
	}
}

// TestDatabaseOutsideSchema: facts over predicates no rule mentions are
// carried through untouched.
func TestDatabaseOutsideSchema(t *testing.T) {
	rules := parse.MustParseRules(`p(X) -> q(X).`)
	res := mustRun(t, `p(a). unrelated(x,y,z).`, rules, Restricted)
	if res.Outcome != Terminated || res.Instance.Size() != 3 {
		t.Errorf("outcome %v size %d", res.Outcome, res.Instance.Size())
	}
}

// TestMaxFactsBudget: the fact budget stops a run even when the trigger
// budget is generous.
func TestMaxFactsBudget(t *testing.T) {
	rules := parse.MustParseRules(`p(X) -> p(Y).`)
	res := mustRun(t, `p(a).`, rules, Oblivious, Options{MaxFacts: 10, MaxTriggers: 100000})
	if res.Outcome != BudgetExceeded {
		t.Fatalf("outcome: %v", res.Outcome)
	}
	if res.Instance.Size() > 11 {
		t.Errorf("size: %d", res.Instance.Size())
	}
}

func mustRun(t *testing.T, facts string, rules *logic.RuleSet, v Variant, opts ...Options) *Result {
	t.Helper()
	opt := Options{}
	if len(opts) > 0 {
		opt = opts[0]
	}
	res, err := RunFromAtoms(parse.MustParseFacts(facts), rules, v, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
