package chase

import (
	"context"
	"testing"

	"chaseterm/internal/instance"
	"chaseterm/internal/parse"
)

// collectSink records every emitted range and heartbeat.
type collectSink struct {
	ranges    [][2]instance.FactID
	progress  int
	lastStats Stats
	onFacts   func() // optional hook, called after recording a range
}

func (s *collectSink) EmitFacts(lo, hi instance.FactID, stats Stats) {
	s.ranges = append(s.ranges, [2]instance.FactID{lo, hi})
	s.lastStats = stats
	if s.onFacts != nil {
		s.onFacts()
	}
}

func (s *collectSink) Progress(stats Stats) {
	s.progress++
	s.lastStats = stats
}

// TestRunStreamEmitsEveryDerivedFactOnce: the emitted ranges must tile
// the derived suffix of the instance exactly — contiguous, increasing,
// no overlap, no gap.
func TestRunStreamEmitsEveryDerivedFactOnce(t *testing.T) {
	rules := parse.MustParseRules("e(X,Y) -> r(X,Y).\nr(X,Y) -> s(Y,X).")
	in, err := instance.FromAtoms(chainDB(50))
	if err != nil {
		t.Fatal(err)
	}
	initial := in.Size()
	e, err := NewEngine(in, rules, SemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	res, err := e.RunStreamContext(context.Background(), sink)
	if err != nil || res.Outcome != Terminated {
		t.Fatalf("run: %v %v", res, err)
	}
	if res.Stats.FactsAdded == 0 {
		t.Fatal("nothing derived")
	}
	next := instance.FactID(initial)
	for _, r := range sink.ranges {
		if r[0] != next {
			t.Fatalf("range starts at %d, want %d (gap or overlap)", r[0], next)
		}
		if r[1] <= r[0] {
			t.Fatalf("empty or inverted range %v", r)
		}
		next = r[1]
	}
	if int(next) != in.Size() {
		t.Errorf("ranges cover up to %d, instance has %d facts", next, in.Size())
	}
	if got := int(next) - initial; got != res.Stats.FactsAdded {
		t.Errorf("streamed %d facts, stats say %d", got, res.Stats.FactsAdded)
	}
	if sink.lastStats.FactsAdded != res.Stats.FactsAdded {
		t.Errorf("last emitted stats %+v lag the final %+v", sink.lastStats, res.Stats)
	}
}

// TestRunStreamProgressHeartbeat: a run long enough to cross the
// context-check interval must deliver at least one heartbeat.
func TestRunStreamProgressHeartbeat(t *testing.T) {
	rules := parse.MustParseRules("e(X,Y) -> r(X,Y).")
	in, err := instance.FromAtoms(chainDB(3 * ctxCheckInterval))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(in, rules, SemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	res, err := e.RunStreamContext(context.Background(), sink)
	if err != nil || res.Outcome != Terminated {
		t.Fatalf("run: %v %v", res, err)
	}
	if sink.progress == 0 {
		t.Error("no progress heartbeat on a multi-interval run")
	}
}

// TestRunStreamNilSinkIsRunContext: a nil sink must behave exactly like
// the plain entry point.
func TestRunStreamNilSinkIsRunContext(t *testing.T) {
	rules := parse.MustParseRules("e(X,Y) -> r(X,Y).")
	in, err := instance.FromAtoms(chainDB(8))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(in, rules, SemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunStreamContext(context.Background(), nil)
	if err != nil || res.Outcome != Terminated {
		t.Fatalf("run: %v %v", res, err)
	}
}

// TestRunStreamCancelMidRun: canceling from inside the sink stops the
// run at the next context poll; the facts emitted so far stay valid.
func TestRunStreamCancelMidRun(t *testing.T) {
	// Example 1 over its critical-ish database: diverges up to the
	// budget, so only cancellation can end the run early.
	rules := parse.MustParseRules("person(X) -> hasFather(X,Y), person(Y).")
	in, err := instance.FromAtoms(parse.MustParseFacts("person(bob)."))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(in, rules, SemiOblivious, Options{MaxTriggers: 1 << 20, MaxFacts: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &collectSink{}
	sink.onFacts = func() {
		if len(sink.ranges) == 3 {
			cancel()
		}
	}
	res, err := e.RunStreamContext(ctx, sink)
	if err == nil || res == nil {
		t.Fatalf("expected cancellation, got res=%v err=%v", res, err)
	}
	if res.Outcome != Canceled {
		t.Fatalf("outcome %v, want Canceled", res.Outcome)
	}
	// The engine stops within one check interval of the cancel.
	if res.Stats.TriggersApplied > 3+ctxCheckInterval {
		t.Errorf("run kept going for %d triggers after cancellation", res.Stats.TriggersApplied-3)
	}
}
