package chase

import (
	"testing"

	"chaseterm/internal/parse"
)

// TestRestrictedOrderSeparation demonstrates why the paper distinguishes
// ∀-SEQUENCE and ∃-SEQUENCE termination for the restricted chase (they
// coincide for the oblivious and semi-oblivious chase, §2):
//
//	σ1: r(X,Y) → ∃Z r(Y,Z)        (inventing)
//	σ2: r(X,Y) → r(Y,X)           (repairing)
//
// On D = {r(a,b)}: applying σ2 first yields r(b,a), after which every
// σ1-trigger is satisfied (r(Y,·) exists for Y ∈ {a,b}) — a terminating
// restricted sequence exists. A σ1-eager order keeps inventing fresh
// values whose σ1-triggers are unsatisfied — a non-terminating (fair, when
// FIFO) restricted sequence also exists.
func TestRestrictedOrderSeparation(t *testing.T) {
	rules := parse.MustParseRules(`r(X,Y) -> r(Y,Z).
r(X,Y) -> r(Y,X).`)
	db := parse.MustParseFacts(`r(a,b).`)

	// Rule-priority with σ2 first: reorder by swapping rule indexes.
	swapped := parse.MustParseRules(`r(X,Y) -> r(Y,X).
r(X,Y) -> r(Y,Z).`)
	res, err := RunFromAtoms(db, swapped, Restricted, Options{Order: OrderRulePriority, MaxTriggers: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Terminated {
		t.Errorf("repair-first restricted chase should terminate, got %v after %d triggers",
			res.Outcome, res.Stats.TriggersApplied)
	}

	// Invent-first priority diverges.
	db2 := parse.MustParseFacts(`r(a,b).`)
	res, err = RunFromAtoms(db2, rules, Restricted, Options{Order: OrderRulePriority, MaxTriggers: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome == Terminated {
		t.Errorf("invent-first restricted chase should diverge, terminated after %d triggers",
			res.Stats.TriggersApplied)
	}

	// The oblivious chase is order-insensitive for termination: both rule
	// orders diverge (σ1 fires for every homomorphism regardless).
	for _, rs := range []string{
		"r(X,Y) -> r(Y,Z).\nr(X,Y) -> r(Y,X).",
		"r(X,Y) -> r(Y,X).\nr(X,Y) -> r(Y,Z).",
	} {
		db := parse.MustParseFacts(`r(a,b).`)
		res, err := RunFromAtoms(db, parse.MustParseRules(rs), Oblivious,
			Options{Order: OrderRulePriority, MaxTriggers: 300})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome == Terminated {
			t.Error("oblivious chase must diverge under every order")
		}
	}
}

// TestOrdersProduceSameSemiObliviousResult: for the semi-oblivious chase,
// every order yields the same final instance on terminating inputs (the
// result is the least fixpoint of the Skolemized rules).
func TestOrdersProduceSameSemiObliviousResult(t *testing.T) {
	rules := parse.MustParseRules(`e(X,Y) -> r(X,Z), r(Z,Y).
r(X,Y) -> s(Y).`)
	var want []string
	for i, ord := range []Order{OrderFIFO, OrderLIFO, OrderRulePriority} {
		db := parse.MustParseFacts(`e(a,b). e(b,c).`)
		res, err := RunFromAtoms(db, rules, SemiOblivious, Options{Order: ord})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != Terminated {
			t.Fatalf("%v: not terminated", ord)
		}
		got := res.Instance.Strings()
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d facts, want %d", ord, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("%v: fact %d = %s, want %s", ord, j, got[j], want[j])
			}
		}
	}
}

// TestLIFOOnTerminatingInput: LIFO explores depth-first but must reach the
// same saturation.
func TestLIFOOnTerminatingInput(t *testing.T) {
	rules := parse.MustParseRules(`p(X) -> q(X).
q(X) -> r(X).`)
	db := parse.MustParseFacts(`p(a). p(b).`)
	res, err := RunFromAtoms(db, rules, SemiOblivious, Options{Order: OrderLIFO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Terminated || res.Instance.Size() != 6 {
		t.Errorf("outcome %v size %d", res.Outcome, res.Instance.Size())
	}
}

func TestOrderStrings(t *testing.T) {
	if OrderFIFO.String() != "fifo" || OrderLIFO.String() != "lifo" || OrderRulePriority.String() != "rule-priority" {
		t.Error("order strings wrong")
	}
}
