package chase

import (
	"fmt"
	"runtime"
	"testing"

	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
	"chaseterm/internal/parse"
)

// Steady-state allocation pins: a trigger application whose facts all
// exist, a duplicate trigger offer, and a restricted-chase satisfaction
// check must not allocate. These are the three operations a saturating
// chase spends almost all of its time in.

func saturatedEngine(t *testing.T, src string, db []logic.Atom, v Variant) (*Engine, *instance.Instance) {
	t.Helper()
	rules := parse.MustParseRules(src)
	in, err := instance.FromAtoms(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, rules, v, Options{})
	if err != nil || res.Outcome != Terminated {
		t.Fatalf("saturation failed: %v %v", res, err)
	}
	e, err := NewEngine(in, rules, v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e, in
}

func chainDB(n int) []logic.Atom {
	var facts []logic.Atom
	for i := 0; i < n; i++ {
		facts = append(facts, logic.NewAtom("e",
			logic.Constant(fmt.Sprintf("a%d", i)), logic.Constant(fmt.Sprintf("a%d", i+1))))
	}
	return facts
}

func TestOfferDuplicateAllocFree(t *testing.T) {
	e, _ := saturatedEngine(t, "e(X,Y) -> r(X,Y).", chainDB(16), SemiOblivious)
	binding := []instance.TermID{1, 2}
	e.offer(0, binding) // first offer inserts
	enq := e.stats.TriggersEnqueued
	if n := testing.AllocsPerRun(200, func() {
		e.offer(0, binding)
	}); n != 0 {
		t.Errorf("duplicate offer allocates %v per run, want 0", n)
	}
	if e.stats.TriggersEnqueued != enq {
		t.Fatal("duplicate offers must not enqueue")
	}
}

func TestApplyExistingFactsAllocFree(t *testing.T) {
	// A rule with an existential: the steady-state apply re-interns the
	// Skolem term and re-adds an existing fact.
	e, in := saturatedEngine(t, "p(X) -> q(X,Z).", []logic.Atom{
		logic.NewAtom("p", logic.Constant("a")),
		logic.NewAtom("p", logic.Constant("b")),
	}, SemiOblivious)
	cr := &e.rules[0]
	a, _ := in.Terms.LookupConst("a")
	fr := []instance.TermID{a}
	if added, _ := e.apply(cr, fr); added != 0 {
		t.Fatal("instance must already be saturated")
	}
	if n := testing.AllocsPerRun(200, func() {
		if added, _ := e.apply(cr, fr); added != 0 {
			t.Fatal("steady-state apply added a fact")
		}
	}); n != 0 {
		t.Errorf("steady-state apply allocates %v per run, want 0", n)
	}
}

func TestHeadSatisfiedAllocFree(t *testing.T) {
	e, in := saturatedEngine(t, "e(X,Y) -> r(X,Y).", chainDB(16), Restricted)
	a, _ := in.Terms.LookupConst("a0")
	b, _ := in.Terms.LookupConst("a1")
	cr := &e.rules[0]
	fr := []instance.TermID{a, b}
	if !e.headSatisfied(cr, fr) {
		t.Fatal("head must be satisfied on the saturated instance")
	}
	if n := testing.AllocsPerRun(200, func() {
		e.headSatisfied(cr, fr)
	}); n != 0 {
		t.Errorf("headSatisfied allocates %v per run, want 0", n)
	}
}

func TestDiscoverRediscoveryAllocFree(t *testing.T) {
	e, in := saturatedEngine(t, "e(X,Y) -> r(X,Y).", chainDB(16), SemiOblivious)
	a, _ := in.Terms.LookupConst("a3")
	b, _ := in.Terms.LookupConst("a4")
	ep, ok := in.LookupPred("e")
	if !ok {
		t.Fatal("setup: predicate e missing")
	}
	fid, ok := in.Lookup(ep, []instance.TermID{a, b})
	if !ok {
		t.Fatal("setup: anchor fact missing")
	}
	e.discover(fid) // first discovery enqueues and warms the queue/arena
	enq := e.stats.TriggersEnqueued
	if enq == 0 {
		t.Fatal("setup: discovery found no triggers")
	}
	if n := testing.AllocsPerRun(200, func() {
		e.discover(fid)
	}); n != 0 {
		t.Errorf("re-discovery allocates %v per run, want 0", n)
	}
	if e.stats.TriggersEnqueued != enq {
		t.Fatal("re-discovered triggers must dedup, not enqueue")
	}
}

// TestStripeMatchAllocFree pins the parallel engine's stripe-match inner
// loop: matching one delta fact through a snapshot — both when the
// candidates are fresh (recorded into the stripe's warmed arena) and
// when they are known duplicates (dropped by the trigger-set
// pre-filter) — must not allocate.
func TestStripeMatchAllocFree(t *testing.T) {
	e, in := saturatedEngine(t, "e(X,Y) -> r(X,Y).", chainDB(16), SemiOblivious)
	a, _ := in.Terms.LookupConst("a3")
	b, _ := in.Terms.LookupConst("a4")
	ep, ok := in.LookupPred("e")
	if !ok {
		t.Fatal("setup: predicate e missing")
	}
	fid, ok := in.Lookup(ep, []instance.TermID{a, b})
	if !ok {
		t.Fatal("setup: anchor fact missing")
	}
	e.par = newParRun(e, 2)
	st := &e.par.stripes[0]
	snap := in.Freeze()
	defer snap.Release()
	// Fresh-candidate path: the engine's trigger set is empty, so every
	// discovered binding is recorded.
	st.matchFact(snap, fid) // warm the scratch and arena
	if len(st.arena) == 0 {
		t.Fatal("setup: stripe match recorded no candidates")
	}
	if n := testing.AllocsPerRun(200, func() {
		st.arena = st.arena[:0]
		st.matchFact(snap, fid)
	}); n != 0 {
		t.Errorf("stripe match (recording) allocates %v per run, want 0", n)
	}
	// Duplicate path: once the trigger is known, the pre-filter drops the
	// candidate before it reaches the arena.
	e.offer(0, []instance.TermID{a, b})
	st.arena = st.arena[:0]
	if n := testing.AllocsPerRun(200, func() {
		st.matchFact(snap, fid)
	}); n != 0 {
		t.Errorf("stripe match (pre-filtered) allocates %v per run, want 0", n)
	}
	if len(st.arena) != 0 {
		t.Error("known-duplicate candidates must be dropped by the pre-filter")
	}
}

// TestSteadyStateRunAllocsPerTrigger runs a whole chase over an already
// saturated instance — every application is a no-op, every rediscovered
// trigger a dedup hit — and bounds the measured allocations per applied
// trigger. The budget of 0.5 leaves room only for the amortized growth of
// the queue and arenas during seeding; the per-trigger loop itself is
// allocation-free.
func TestSteadyStateRunAllocsPerTrigger(t *testing.T) {
	rules := parse.MustParseRules("e(X,Y) -> r(X,Y).\nr(X,Y) -> s(Y,X).")
	in, err := instance.FromAtoms(chainDB(200))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Run(in, rules, SemiOblivious, Options{}); err != nil || res.Outcome != Terminated {
		t.Fatalf("saturation failed: %v %v", res, err)
	}
	e, err := NewEngine(in, rules, SemiOblivious, Options{})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res, err := e.Run()
	runtime.ReadMemStats(&m1)
	if err != nil || res.Outcome != Terminated {
		t.Fatalf("steady-state run failed: %v %v", res, err)
	}
	if res.Stats.FactsAdded != 0 {
		t.Fatalf("saturated instance grew by %d facts", res.Stats.FactsAdded)
	}
	if res.Stats.TriggersApplied == 0 {
		t.Fatal("no triggers applied")
	}
	perTrigger := float64(m1.Mallocs-m0.Mallocs) / float64(res.Stats.TriggersApplied)
	if perTrigger >= 0.5 {
		t.Errorf("steady-state run: %.3f allocs per applied trigger (%d allocs / %d triggers), want < 0.5",
			perTrigger, m1.Mallocs-m0.Mallocs, res.Stats.TriggersApplied)
	}
}
