package chase

import (
	"context"
	"errors"
	"testing"
	"time"

	"chaseterm/internal/parse"
)

// divergent is the paper's Example 1: its chase runs forever under every
// variant, which makes it the canonical workload for cancellation tests —
// any prompt return must be the context's doing, not termination's.
const divergentRules = `person(X) -> hasFather(X,Y), person(Y).`

// TestRunContextCancelMidRun cancels a non-terminating chase with a huge
// budget mid-flight and requires it to stop within the check interval —
// far under the wall time its budget would take. On pre-cancellation
// code this test burns through 50M triggers (minutes) before returning.
func TestRunContextCancelMidRun(t *testing.T) {
	db := parse.MustParseFacts(`person(bob).`)
	rs := parse.MustParseRules(divergentRules)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunFromAtomsContext(ctx, db, rs, SemiOblivious, Options{
		MaxTriggers: 50_000_000,
		MaxFacts:    50_000_000,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res == nil || res.Outcome != Canceled {
		t.Fatalf("got result %+v, want Outcome Canceled with partial stats", res)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
	if res.Stats.TriggersApplied >= 50_000_000 {
		t.Fatalf("run consumed its whole budget (%d triggers) despite cancellation",
			res.Stats.TriggersApplied)
	}
	if res.Stats.TriggersApplied == 0 {
		t.Fatal("run was canceled before doing any work — cancel arrived too early for the test to be meaningful")
	}
}

// TestRunContextPreCanceled: an already-dead context stops the run before
// any trigger fires.
func TestRunContextPreCanceled(t *testing.T) {
	db := parse.MustParseFacts(`person(bob).`)
	rs := parse.MustParseRules(divergentRules)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunFromAtomsContext(ctx, db, rs, SemiOblivious, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if res == nil || res.Outcome != Canceled || res.Stats.TriggersApplied != 0 {
		t.Fatalf("got %+v, want Canceled result with zero triggers applied", res)
	}
}

// TestRunContextDeadline: an expired deadline surfaces as
// context.DeadlineExceeded, distinguishable from a plain cancel.
func TestRunContextDeadline(t *testing.T) {
	db := parse.MustParseFacts(`person(bob).`)
	rs := parse.MustParseRules(divergentRules)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err := RunFromAtomsContext(ctx, db, rs, SemiOblivious, Options{
		MaxTriggers: 50_000_000,
		MaxFacts:    50_000_000,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got err %v, want context.DeadlineExceeded", err)
	}
}

// TestRunBackgroundIdentical: the background-context path must behave
// exactly like the pre-context Run — terminating workloads terminate.
func TestRunBackgroundIdentical(t *testing.T) {
	res := run(t, `p(a).`, `p(X) -> q(X).`, SemiOblivious, Options{})
	if res.Outcome != Terminated || res.Stats.TriggersApplied != 1 {
		t.Fatalf("got %v after %d triggers, want Terminated after 1",
			res.Outcome, res.Stats.TriggersApplied)
	}
}

// TestNegativeBudgetsClampToDefaults is the regression test for the
// withDefaults bug: a negative budget used to slip through the == 0
// default check and make every run stop instantly with BudgetExceeded
// (or report Terminated having done zero work).
func TestNegativeBudgetsClampToDefaults(t *testing.T) {
	res := run(t, `p(a).`, `p(X) -> q(X).`, SemiOblivious, Options{
		MaxTriggers: -1,
		MaxFacts:    -5,
		MaxDepth:    -2,
	})
	if res.Outcome != Terminated {
		t.Fatalf("negative budgets: outcome %v, want Terminated", res.Outcome)
	}
	if res.Stats.TriggersApplied != 1 || res.Stats.FactsAdded != 1 {
		t.Fatalf("negative budgets: %d triggers / %d facts, want 1/1",
			res.Stats.TriggersApplied, res.Stats.FactsAdded)
	}
}

func TestWithDefaultsClamping(t *testing.T) {
	got := Options{MaxTriggers: -7, MaxFacts: -7, MaxDepth: -7}.withDefaults()
	want := Options{}.withDefaults()
	if got != want {
		t.Fatalf("withDefaults(-7s) = %+v, want the zero-value defaults %+v", got, want)
	}
	kept := Options{MaxTriggers: 3, MaxFacts: 4, MaxDepth: 5}.withDefaults()
	if kept.MaxTriggers != 3 || kept.MaxFacts != 4 || kept.MaxDepth != 5 {
		t.Fatalf("withDefaults clobbered explicit positive budgets: %+v", kept)
	}
}
