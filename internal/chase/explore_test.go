package chase

import (
	"testing"

	"chaseterm/internal/parse"
)

// TestExploreFindsRepairFirstSequence: the ∀/∃ separation example. FIFO
// diverges (see order_test.go), but a terminating restricted sequence
// exists — the explorer must find it.
func TestExploreFindsRepairFirstSequence(t *testing.T) {
	rs := parse.MustParseRules(`r(X,Y) -> r(Y,Z).
r(X,Y) -> r(Y,X).`)
	db := parse.MustParseFacts(`r(a,b).`)
	res, err := ExploreRestrictedTermination(db, rs, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatalf("no terminating sequence found (states=%d exhausted=%v)", res.StatesExplored, res.Exhausted)
	}
	// The short terminating sequence applies the symmetric rule (index 1)
	// first; after r(b,a) exists every other trigger is satisfied.
	if len(res.Trace) == 0 || res.Trace[0] != 1 {
		t.Errorf("trace: %v (expected to start with rule 1)", res.Trace)
	}
	if len(res.FinalFacts) != 2 {
		t.Errorf("final instance: %v", res.FinalFacts)
	}
}

// TestExploreTerminatingInput: on a set where every sequence terminates,
// the explorer trivially finds the empty continuation.
func TestExploreTerminatingInput(t *testing.T) {
	rs := parse.MustParseRules(`person(X) -> hasFather(X,Y).`)
	db := parse.MustParseFacts(`person(bob).`)
	res, err := ExploreRestrictedTermination(db, rs, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Trace) != 1 {
		t.Errorf("found=%v trace=%v", res.Found, res.Trace)
	}
	// Already-satisfied database: zero-length sequence.
	db2 := parse.MustParseFacts(`person(bob). hasFather(bob, carl).`)
	res, err = ExploreRestrictedTermination(db2, rs, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Trace) != 0 {
		t.Errorf("found=%v trace=%v", res.Found, res.Trace)
	}
}

// TestExploreAllDiverging: Example 1 has no terminating restricted
// sequence from person(bob); with a small fact bound the explorer reports
// not-found (necessarily non-exhaustive: every branch is pruned at the
// bound, which is precisely the evidence of unbounded growth).
func TestExploreAllDiverging(t *testing.T) {
	rs := parse.MustParseRules(`person(X) -> hasFather(X,Y), person(Y).`)
	db := parse.MustParseFacts(`person(bob).`)
	res, err := ExploreRestrictedTermination(db, rs, ExploreOptions{MaxFacts: 21, MaxStates: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("found a terminating sequence for Example 1: %v", res.Trace)
	}
	if res.Exhausted {
		t.Error("exploration claimed exhaustion despite pruning")
	}
}

// TestExploreStateDedup: symmetric rules generate isomorphic states that
// must be merged (search stays small).
func TestExploreStateDedup(t *testing.T) {
	rs := parse.MustParseRules(`p(X) -> q(X,Y).
p(X) -> q(X,W).`)
	db := parse.MustParseFacts(`p(a).`)
	res, err := ExploreRestrictedTermination(db, rs, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("expected termination")
	}
	if res.StatesExplored > 4 {
		t.Errorf("isomorphic states not merged: %d states", res.StatesExplored)
	}
}

func TestExploreBudgets(t *testing.T) {
	rs := parse.MustParseRules(`p(X,Y) -> p(Y,Z).`)
	db := parse.MustParseFacts(`p(a,b).`)
	res, err := ExploreRestrictedTermination(db, rs, ExploreOptions{MaxStates: 5, MaxFacts: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Exhausted {
		t.Errorf("found=%v exhausted=%v", res.Found, res.Exhausted)
	}
}
