package chase

import (
	"fmt"
	"sort"
	"strings"

	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
)

// This file implements an explorer for the ∃-SEQUENCE side of the
// restricted chase on a fixed database. The paper (§2) defines both the
// ∀-sequence and ∃-sequence termination problems and notes they coincide
// for the oblivious and semi-oblivious chase; for the restricted chase they
// differ, because applying a "repairing" trigger first can satisfy an
// "inventing" trigger before it is considered. ExploreRestrictedTermination
// searches the tree of restricted-chase sequences — branching on which
// active trigger to apply next — for a terminating sequence, memoizing
// states up to null renaming.
//
// The search is sound in both directions when it completes: a Found result
// carries an explicit terminating sequence (finite sequences are vacuously
// fair); an exhausted search without success proves that no terminating
// sequence exists from this database within the explored fact bound.
// Deciding this for ALL databases is the paper's open problem (§4), which
// this tool deliberately does not claim to solve.

// ExploreOptions bound the sequence search. Zero values mean defaults.
type ExploreOptions struct {
	// MaxStates caps visited (deduplicated) states (default 10_000).
	MaxStates int
	// MaxFacts prunes branches whose instance grows beyond this size
	// (default 200).
	MaxFacts int
}

func (o ExploreOptions) withDefaults() ExploreOptions {
	if o.MaxStates == 0 {
		o.MaxStates = 10_000
	}
	if o.MaxFacts == 0 {
		o.MaxFacts = 200
	}
	return o
}

// ExploreResult reports the outcome of the sequence search.
type ExploreResult struct {
	// Found: a terminating restricted-chase sequence exists; Trace holds
	// the rule labels applied along it.
	Found bool
	// Exhausted: the search space was fully explored (no budget pruning);
	// with Found == false this certifies that every restricted sequence
	// from the database diverges past the fact bound.
	Exhausted bool
	// StatesExplored counts deduplicated states.
	StatesExplored int
	// Trace is one terminating application sequence (rule indexes).
	Trace []int
	// FinalFacts renders the terminal instance of the found sequence.
	FinalFacts []string
}

const exploreNullPrefix = "\x00n" // unparseable: cannot collide with input constants

type exploreState struct {
	atoms []logic.Atom
	nulls int
}

// ExploreRestrictedTermination searches for a terminating restricted-chase
// sequence of the database w.r.t. the rule set.
func ExploreRestrictedTermination(db []logic.Atom, rs *logic.RuleSet, opt ExploreOptions) (*ExploreResult, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	res := &ExploreResult{Exhausted: true}
	seen := make(map[string]bool)

	// Breadth-first over states: finds a SHORTEST terminating sequence and
	// cannot be trapped by an infinitely deep inventing branch the way a
	// depth-first search would be.
	type qitem struct {
		st    *exploreState
		trace []int
	}
	queue := []qitem{{st: &exploreState{atoms: append([]logic.Atom(nil), db...)}}}
	seen[canonicalState(queue[0].st)] = true

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		res.StatesExplored++

		in, err := instance.FromAtoms(item.st.atoms)
		if err != nil {
			return nil, err
		}
		choices, err := activeTriggers(in, rs)
		if err != nil {
			return nil, err
		}
		if len(choices) == 0 {
			res.Found = true
			res.Trace = item.trace
			res.FinalFacts = in.Strings()
			return res, nil
		}
		if len(item.st.atoms) >= opt.MaxFacts {
			res.Exhausted = false
			continue
		}
		for _, c := range choices {
			next := applyChoice(item.st, c)
			key := canonicalState(next)
			if seen[key] {
				continue
			}
			if len(seen) >= opt.MaxStates {
				res.Exhausted = false
				continue
			}
			seen[key] = true
			trace := make([]int, len(item.trace)+1)
			copy(trace, item.trace)
			trace[len(item.trace)] = c.rule
			queue = append(queue, qitem{st: next, trace: trace})
		}
	}
	return res, nil
}

// choice is one active trigger: a rule plus the frontier binding rendered
// back to logic terms.
type choice struct {
	rule     int
	src      *logic.TGD
	frontier map[logic.Variable]logic.Term
}

// activeTriggers enumerates the restricted-chase-active triggers: body
// homomorphisms whose frontier restriction cannot be extended to map the
// head into the instance. Triggers are deduplicated by frontier (two
// extensions with the same frontier restriction create isomorphic
// successors).
func activeTriggers(in *instance.Instance, rs *logic.RuleSet) ([]choice, error) {
	var out []choice
	var seen instance.TupleSet // frontier identity, tagged by rule
	fr := make([]instance.TermID, 0, 8)
	for ri, r := range rs.Rules {
		body, err := instance.CompileBody(in, r.Body)
		if err != nil {
			return nil, err
		}
		frontier := r.Frontier()
		headPat, err := compileHeadForExplore(in, frontier, r.Head)
		if err != nil {
			return nil, err
		}
		frIdx := make([]int, len(frontier))
		for i, v := range frontier {
			frIdx[i] = body.VarIndex(v)
		}
		in.FindHoms(body, nil, func(binding []instance.TermID) bool {
			fr = fr[:0]
			for _, vi := range frIdx {
				fr = append(fr, binding[vi])
			}
			if _, added := seen.Insert(int32(ri), fr); !added {
				return true
			}
			if in.HasHom(headPat, fr) {
				return true // satisfied: not active
			}
			ch := choice{rule: ri, src: r, frontier: make(map[logic.Variable]logic.Term, len(frontier))}
			for i, v := range frontier {
				ch.frontier[v] = termToLogic(in, fr[i])
			}
			out = append(out, ch)
			return true
		})
	}
	return out, nil
}

func compileHeadForExplore(in *instance.Instance, frontier []logic.Variable, head []logic.Atom) (*instance.Pattern, error) {
	// Reuse the engine's head-pattern compiler shape: frontier variables
	// first, in order.
	return compileHeadPattern(in, frontier, head)
}

// termToLogic renders an instance term back into a logic constant (nulls
// keep their reserved-prefix names and stay unparseable).
func termToLogic(in *instance.Instance, t instance.TermID) logic.Term {
	return logic.Constant(in.Terms.String(t))
}

// applyChoice extends the state with the instantiated head of the chosen
// trigger, inventing reserved-prefix null constants for the existential
// variables.
func applyChoice(st *exploreState, c choice) *exploreState {
	next := &exploreState{
		atoms: append([]logic.Atom(nil), st.atoms...),
		nulls: st.nulls,
	}
	assign := make(map[logic.Variable]logic.Term, len(c.frontier))
	for v, t := range c.frontier {
		assign[v] = t
	}
	for _, z := range c.src.Existentials() {
		next.nulls++
		assign[z] = logic.Constant(fmt.Sprintf("%s%d", exploreNullPrefix, next.nulls))
	}
	have := make(map[string]bool, len(next.atoms))
	for _, a := range next.atoms {
		have[a.String()] = true
	}
	for _, h := range c.src.Head {
		args := make([]logic.Term, len(h.Args))
		for i, t := range h.Args {
			if v, ok := t.(logic.Variable); ok {
				args[i] = assign[v]
			} else {
				args[i] = t
			}
		}
		a := logic.Atom{Pred: h.Pred, Args: args}
		if !have[a.String()] {
			have[a.String()] = true
			next.atoms = append(next.atoms, a)
		}
	}
	return next
}

// canonicalState renders a state up to null renaming: nulls are renamed by
// a signature-guided order, atoms sorted.
func canonicalState(st *exploreState) string {
	sig := make(map[string]string)
	for _, a := range st.atoms {
		for i, t := range a.Args {
			if c, ok := t.(logic.Constant); ok && strings.HasPrefix(string(c), exploreNullPrefix) {
				sig[string(c)] += fmt.Sprintf("%s.%d;", a.Pred, i)
			}
		}
	}
	names := make([]string, 0, len(sig))
	for n := range sig {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		si, sj := sortSig(sig[names[i]]), sortSig(sig[names[j]])
		if si != sj {
			return si < sj
		}
		return names[i] < names[j]
	})
	ren := make(map[string]string, len(names))
	for i, n := range names {
		ren[n] = fmt.Sprintf("%sc%d", exploreNullPrefix, i)
	}
	lines := make([]string, len(st.atoms))
	for i, a := range st.atoms {
		parts := make([]string, len(a.Args))
		for j, t := range a.Args {
			s := t.String()
			if c, ok := t.(logic.Constant); ok {
				if r, hit := ren[string(c)]; hit {
					s = r
				}
			}
			parts[j] = s
		}
		lines[i] = a.Pred + "(" + strings.Join(parts, ",") + ")"
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func sortSig(s string) string {
	parts := strings.Split(s, ";")
	sort.Strings(parts)
	return strings.Join(parts, ";")
}
