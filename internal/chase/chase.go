// Package chase implements the TGD chase procedure in its three standard
// variants — oblivious, semi-oblivious and restricted — over the instance
// substrate, exactly as defined in Section 2 of "Chase Termination for
// Guarded Existential Rules" (Calautti, Gottlob, Pieris, PODS 2015).
//
// A trigger for a set Σ on an instance I is a pair (σ, h) where σ = φ → ψ
// is in Σ and h is a homomorphism mapping φ into I. Applying (σ, h) adds
// h′(ψ) where h′ ⊇ h maps each existential variable of σ to a fresh null.
// The variants differ in when two triggers are considered "the same" (and
// hence fire only once) and in whether satisfied triggers fire at all:
//
//   - Oblivious: triggers are identified by the full homomorphism h; every
//     distinct (σ, h) is applied exactly once.
//   - Semi-oblivious: homomorphisms agreeing on the frontier of σ (the
//     universally quantified variables occurring in the head) are
//     indistinguishable. We implement this as the Skolem chase: existential
//     variables are mapped to interned Skolem terms f_{σ,z}(h(frontier)),
//     so indistinguishable triggers literally produce identical facts.
//   - Restricted: a trigger is applied only if it is active, i.e. h cannot
//     be extended to a homomorphism h′ mapping the head into the current
//     instance.
//
// All engines schedule triggers in FIFO order, which realizes the fairness
// condition of the paper's definition of (possibly infinite) chase
// sequences: every trigger that arises is eventually considered. Budgets
// on applied triggers, facts, and invented-term depth make the engines
// usable as bounded oracles for the termination deciders in internal/core.
package chase

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"

	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
)

// Variant selects the chase flavour.
type Variant int

const (
	// Oblivious is the naive chase: one application per distinct
	// homomorphism.
	Oblivious Variant = iota
	// SemiOblivious is the Skolem chase: one application per distinct
	// frontier restriction.
	SemiOblivious
	// Restricted is the standard chase: only triggers whose head is not
	// already satisfied fire.
	Restricted
)

func (v Variant) String() string {
	switch v {
	case Oblivious:
		return "oblivious"
	case SemiOblivious:
		return "semi-oblivious"
	default:
		return "restricted"
	}
}

// ParseVariant maps the strings "o"/"oblivious", "so"/"semi-oblivious",
// "r"/"restricted" to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(s) {
	case "o", "oblivious":
		return Oblivious, nil
	case "so", "semi-oblivious", "semioblivious", "skolem":
		return SemiOblivious, nil
	case "r", "restricted", "standard":
		return Restricted, nil
	}
	return 0, fmt.Errorf("chase: unknown variant %q", s)
}

// Outcome reports how a run ended.
type Outcome int

const (
	// Terminated: no unapplied trigger remains; the result is final.
	Terminated Outcome = iota
	// BudgetExceeded: the trigger or fact budget was exhausted first.
	BudgetExceeded
	// DepthExceeded: an invented term deeper than Options.MaxDepth was
	// created; with Skolem semantics this is strong evidence of
	// non-termination and is reported separately from a plain budget stop.
	DepthExceeded
	// CyclicTerm: a Skolem term nesting its own function symbol was
	// created and Options.StopOnCyclicSkolem was set (the model-faithful
	// acyclicity test of Grau et al.).
	CyclicTerm
	// Canceled: the context passed to RunContext was canceled or its
	// deadline expired before the run finished. The result carries the
	// statistics accumulated so far; RunContext additionally returns the
	// context's error.
	Canceled
)

func (o Outcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case BudgetExceeded:
		return "budget-exceeded"
	case DepthExceeded:
		return "depth-exceeded"
	case Canceled:
		return "canceled"
	default:
		return "cyclic-term"
	}
}

// Options bound a chase run. The zero value means "defaults" (generous but
// finite budgets); explicit zero budgets are replaced by the defaults.
type Options struct {
	// MaxTriggers caps the number of applied triggers (default 1e6).
	MaxTriggers int
	// MaxFacts caps the total number of facts (default 1e6).
	MaxFacts int
	// MaxDepth caps the invented-term depth (default 1<<30, i.e. off).
	MaxDepth int32
	// RecordSequence keeps the applied trigger sequence in the result.
	RecordSequence bool
	// StopOnCyclicSkolem stops the run with Outcome CyclicTerm as soon as
	// the semi-oblivious chase invents a Skolem term whose function symbol
	// occurs transitively inside one of its arguments. This implements the
	// model-faithful-acyclicity stopping rule: a run that saturates
	// without such a term proves termination on every instance.
	StopOnCyclicSkolem bool
	// Order selects the trigger scheduling policy (default OrderFIFO).
	Order Order
}

// Order is a trigger scheduling policy. The paper distinguishes the
// ∀-sequence and ∃-sequence termination problems: does EVERY fair chase
// sequence terminate, or does SOME sequence terminate? For the oblivious
// and semi-oblivious chase the two coincide (every trigger must fire
// exactly once regardless of order), but for the restricted chase the
// order decides which triggers are already satisfied when considered — so
// different policies genuinely explore different sequences. A finite
// sequence is vacuously fair, so any policy that terminates yields a valid
// terminating chase sequence (a CT^r_∃ witness); only OrderFIFO guarantees
// fairness on infinite runs.
type Order int

const (
	// OrderFIFO processes triggers first-in first-out — fair on infinite
	// runs (every discovered trigger is eventually considered).
	OrderFIFO Order = iota
	// OrderLIFO processes the most recently discovered trigger first
	// (depth-first chase). Not fair on infinite runs.
	OrderLIFO
	// OrderRulePriority always prefers pending triggers of lower-indexed
	// rules, FIFO within a rule. Not fair on infinite runs. Useful to
	// bias the restricted chase toward "repairing" rules before
	// "inventing" ones.
	OrderRulePriority
)

func (o Order) String() string {
	switch o {
	case OrderFIFO:
		return "fifo"
	case OrderLIFO:
		return "lifo"
	default:
		return "rule-priority"
	}
}

func (o Options) withDefaults() Options {
	// Non-positive budgets are treated as "use the default". A negative
	// budget is never a meaningful request — letting it through would make
	// every run stop immediately with BudgetExceeded/DepthExceeded (or
	// report Terminated having done no work).
	if o.MaxTriggers <= 0 {
		o.MaxTriggers = 1_000_000
	}
	if o.MaxFacts <= 0 {
		o.MaxFacts = 1_000_000
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 1 << 30
	}
	return o
}

// Stats aggregates run statistics.
type Stats struct {
	InitialFacts int
	FactsAdded   int
	// TriggersApplied counts trigger applications (restricted: active
	// triggers actually fired).
	TriggersApplied int
	// TriggersNoop counts applications that created no new fact — the
	// "superfluous" work the semi-oblivious chase is designed to avoid.
	TriggersNoop int
	// TriggersSatisfied counts restricted-chase triggers skipped because
	// their head was already satisfied.
	TriggersSatisfied int
	// TriggersEnqueued counts distinct triggers discovered.
	TriggersEnqueued int
	MaxTermDepth     int32
}

// AppliedTrigger records one trigger application (optional, see
// Options.RecordSequence).
type AppliedTrigger struct {
	Rule       int
	FactsAdded int
}

// Result of a chase run.
type Result struct {
	Variant  Variant
	Outcome  Outcome
	Instance *instance.Instance
	Stats    Stats
	Sequence []AppliedTrigger
}

type headSlotKind uint8

const (
	slotFrontier headSlotKind = iota
	slotExistential
	slotConst
)

type headSlot struct {
	kind headSlotKind
	idx  int             // frontier index or existential index
	term instance.TermID // for consts
}

type headAtom struct {
	pred  instance.PredID
	slots []headSlot
}

type compiledRule struct {
	src       *logic.TGD
	body      *instance.Pattern
	frontier  []int    // pattern-variable indexes of frontier variables, in frontier order
	nExist    int      // number of existential variables
	skolemFns []string // per existential variable
	head      []headAtom
	// headPattern is the head compiled as a body-style pattern whose first
	// len(frontier) variables are the frontier (in the same order),
	// used for restricted-chase satisfaction checks.
	headPattern *instance.Pattern
}

type trigger struct {
	rule     int
	frontier []instance.TermID
	key      string
}

// Engine runs one chase over one instance. Create with NewEngine, then call
// Run. The instance is mutated in place.
type Engine struct {
	in      *instance.Instance
	rules   []*compiledRule
	variant Variant
	opt     Options

	queue      []trigger // FIFO / LIFO store
	qhead      int
	buckets    [][]trigger // per-rule stores for OrderRulePriority
	bheads     []int
	pending    int
	seen       map[string]struct{}
	stats      Stats
	seq        []AppliedTrigger
	byPred     map[instance.PredID][][2]int // pred -> (rule, bodyAtom) pairs
	scratch    []instance.TermID
	cyclicSeen bool
}

// push schedules a trigger according to the configured order.
func (e *Engine) push(t trigger) {
	e.pending++
	if e.opt.Order == OrderRulePriority {
		e.buckets[t.rule] = append(e.buckets[t.rule], t)
		return
	}
	e.queue = append(e.queue, t)
}

// pop removes the next trigger according to the configured order.
func (e *Engine) pop() (trigger, bool) {
	if e.pending == 0 {
		return trigger{}, false
	}
	e.pending--
	switch e.opt.Order {
	case OrderLIFO:
		t := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		return t, true
	case OrderRulePriority:
		for r := range e.buckets {
			if e.bheads[r] < len(e.buckets[r]) {
				t := e.buckets[r][e.bheads[r]]
				e.bheads[r]++
				return t, true
			}
		}
		panic("chase: pending count out of sync")
	default:
		t := e.queue[e.qhead]
		e.qhead++
		return t, true
	}
}

// fnOccurs reports whether the Skolem function fn occurs in term t
// (transitively through Skolem arguments).
func (e *Engine) fnOccurs(fn string, t instance.TermID) bool {
	tt := e.in.Terms
	if tt.Kind(t) != instance.KindSkolem {
		return false
	}
	if tt.Name(t) == fn {
		return true
	}
	for _, a := range tt.SkolemArgs(t) {
		if e.fnOccurs(fn, a) {
			return true
		}
	}
	return false
}

// NewEngine compiles the rule set against the instance. The rule set must
// validate.
func NewEngine(in *instance.Instance, rs *logic.RuleSet, v Variant, opt Options) (*Engine, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		in:      in,
		variant: v,
		opt:     opt.withDefaults(),
		seen:    make(map[string]struct{}),
		byPred:  make(map[instance.PredID][][2]int),
	}
	for ri, r := range rs.Rules {
		cr, err := compileRule(in, ri, r)
		if err != nil {
			return nil, err
		}
		e.rules = append(e.rules, cr)
		for ai, pa := range cr.body.Atoms {
			e.byPred[pa.Pred] = append(e.byPred[pa.Pred], [2]int{ri, ai})
		}
	}
	if e.opt.Order == OrderRulePriority {
		e.buckets = make([][]trigger, len(e.rules))
		e.bheads = make([]int, len(e.rules))
	}
	return e, nil
}

func compileRule(in *instance.Instance, ri int, r *logic.TGD) (*compiledRule, error) {
	body, err := instance.CompileBody(in, r.Body)
	if err != nil {
		return nil, err
	}
	cr := &compiledRule{src: r, body: body}
	fr := r.Frontier()
	for _, v := range fr {
		cr.frontier = append(cr.frontier, body.VarIndex(v))
	}
	ex := r.Existentials()
	cr.nExist = len(ex)
	exIdx := make(map[logic.Variable]int, len(ex))
	for i, z := range ex {
		exIdx[z] = i
		cr.skolemFns = append(cr.skolemFns, fmt.Sprintf("f%d_%s", ri, z))
	}
	frIdx := make(map[logic.Variable]int, len(fr))
	for i, v := range fr {
		frIdx[v] = i
	}
	for _, a := range r.Head {
		ha := headAtom{pred: in.Pred(a.Pred, len(a.Args))}
		for _, t := range a.Args {
			switch t := t.(type) {
			case logic.Variable:
				if i, ok := frIdx[t]; ok {
					ha.slots = append(ha.slots, headSlot{kind: slotFrontier, idx: i})
				} else {
					ha.slots = append(ha.slots, headSlot{kind: slotExistential, idx: exIdx[t]})
				}
			case logic.Constant:
				ha.slots = append(ha.slots, headSlot{kind: slotConst, term: in.Terms.Const(string(t))})
			}
		}
		cr.head = append(cr.head, ha)
	}
	hp, err := compileHeadPattern(in, fr, r.Head)
	if err != nil {
		return nil, err
	}
	cr.headPattern = hp
	return cr, nil
}

// compileHeadPattern compiles head atoms into a pattern whose variables
// 0..len(frontier)-1 are the frontier variables in order; existential
// variables follow.
func compileHeadPattern(in *instance.Instance, frontier []logic.Variable, head []logic.Atom) (*instance.Pattern, error) {
	p := &instance.Pattern{}
	varIdx := make(map[logic.Variable]int)
	for _, v := range frontier {
		varIdx[v] = p.NumVars
		p.NumVars++
		p.VarNames = append(p.VarNames, v)
	}
	for _, a := range head {
		pa := instance.PatternAtom{Pred: in.Pred(a.Pred, len(a.Args))}
		for _, t := range a.Args {
			switch t := t.(type) {
			case logic.Variable:
				i, ok := varIdx[t]
				if !ok {
					i = p.NumVars
					varIdx[t] = i
					p.NumVars++
					p.VarNames = append(p.VarNames, t)
				}
				pa.Args = append(pa.Args, instance.Slot{IsVar: true, Var: i})
			case logic.Constant:
				pa.Args = append(pa.Args, instance.Slot{Term: in.Terms.Const(string(t))})
			default:
				return nil, fmt.Errorf("chase: unsupported head term %v", t)
			}
		}
		p.Atoms = append(p.Atoms, pa)
	}
	return p, nil
}

func triggerKey(rule int, terms []instance.TermID) string {
	var b strings.Builder
	b.Grow(4 + 4*len(terms))
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(rule))
	b.Write(buf[:])
	for _, t := range terms {
		binary.LittleEndian.PutUint32(buf[:], uint32(t))
		b.Write(buf[:])
	}
	return b.String()
}

// offer registers a discovered homomorphism as a trigger, deduplicating by
// the variant's trigger identity.
func (e *Engine) offer(rule int, binding []instance.TermID) {
	cr := e.rules[rule]
	var key string
	switch e.variant {
	case SemiOblivious:
		fr := e.scratchFrontier(cr, binding)
		key = triggerKey(rule, fr)
	default: // Oblivious and Restricted identify triggers by the full h.
		key = triggerKey(rule, binding)
	}
	if _, dup := e.seen[key]; dup {
		return
	}
	e.seen[key] = struct{}{}
	fr := make([]instance.TermID, len(cr.frontier))
	for i, vi := range cr.frontier {
		fr[i] = binding[vi]
	}
	e.push(trigger{rule: rule, frontier: fr, key: key})
	e.stats.TriggersEnqueued++
}

func (e *Engine) scratchFrontier(cr *compiledRule, binding []instance.TermID) []instance.TermID {
	e.scratch = e.scratch[:0]
	for _, vi := range cr.frontier {
		e.scratch = append(e.scratch, binding[vi])
	}
	return e.scratch
}

// ctxCheckInterval is how many trigger applications pass between polls
// of the run context. 1024 keeps the per-trigger overhead of the hot
// loop at a fraction of a nanosecond (one mask-and-compare; the channel
// poll is amortized) while bounding the cancellation latency to the
// cost of ~1024 applications.
const ctxCheckInterval = 1024

// canceled is the non-blocking poll of a run context's done channel;
// nil (context.Background()) is free.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Run executes the chase to termination or budget exhaustion.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is polled
// before seeding each rule and every ctxCheckInterval trigger
// applications. When it fires, the partial result — Outcome Canceled,
// statistics up to the stopping point — is returned together with
// ctx.Err(), so callers can either propagate the error or inspect how
// far the run got.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	done := ctx.Done() // nil for context.Background(): checks compile out
	e.stats.InitialFacts = e.in.Size()
	// Seed: all homomorphisms on the initial instance. Seeding a rule is
	// itself a join over the whole instance, so the context is checked
	// between rules.
	for ri, cr := range e.rules {
		if canceled(done) {
			return e.result(Canceled), ctx.Err()
		}
		e.in.FindHoms(cr.body, nil, func(b []instance.TermID) bool {
			e.offer(ri, b)
			return true
		})
	}
	outcome := Terminated
	steps := 0 // counts loop iterations, not applications: the restricted
	// chase can pop long runs of already-satisfied triggers without
	// applying any, and each satisfaction check is real work too.
loop:
	for {
		if steps%ctxCheckInterval == 0 && canceled(done) {
			outcome = Canceled
			break loop
		}
		steps++
		if e.stats.TriggersApplied >= e.opt.MaxTriggers || e.in.Size() >= e.opt.MaxFacts {
			if e.pending > 0 {
				outcome = BudgetExceeded
			}
			break loop
		}
		t, ok := e.pop()
		if !ok {
			break loop
		}
		cr := e.rules[t.rule]
		if e.variant == Restricted && e.headSatisfied(cr, t.frontier) {
			e.stats.TriggersSatisfied++
			continue
		}
		added, maxDepth := e.apply(t.rule, cr, t.frontier)
		e.stats.TriggersApplied++
		if added == 0 {
			e.stats.TriggersNoop++
		}
		if e.opt.RecordSequence {
			e.seq = append(e.seq, AppliedTrigger{Rule: t.rule, FactsAdded: added})
		}
		if maxDepth > e.stats.MaxTermDepth {
			e.stats.MaxTermDepth = maxDepth
		}
		if maxDepth > e.opt.MaxDepth {
			outcome = DepthExceeded
			break loop
		}
		if e.cyclicSeen {
			outcome = CyclicTerm
			break loop
		}
	}
	if outcome == Canceled {
		return e.result(Canceled), ctx.Err()
	}
	return e.result(outcome), nil
}

func (e *Engine) result(outcome Outcome) *Result {
	return &Result{
		Variant:  e.variant,
		Outcome:  outcome,
		Instance: e.in,
		Stats:    e.stats,
		Sequence: e.seq,
	}
}

// headSatisfied reports whether the head of cr, with its frontier bound to
// fr, already has a homomorphism into the instance.
func (e *Engine) headSatisfied(cr *compiledRule, fr []instance.TermID) bool {
	return e.in.HasHom(cr.headPattern, fr)
}

// apply fires a trigger: it invents nulls (oblivious/restricted) or Skolem
// terms (semi-oblivious) for the existential variables, adds the head
// facts, and discovers the new triggers they enable.
func (e *Engine) apply(rule int, cr *compiledRule, fr []instance.TermID) (added int, maxDepth int32) {
	// Birth depth for fresh nulls: one more than the deepest frontier term.
	var birth int32
	for _, t := range fr {
		if d := e.in.Terms.Depth(t); d > birth {
			birth = d
		}
	}
	ex := make([]instance.TermID, cr.nExist)
	for i := range ex {
		if e.variant == SemiOblivious {
			ex[i] = e.in.Terms.Skolem(cr.skolemFns[i], fr)
			if e.opt.StopOnCyclicSkolem && !e.cyclicSeen {
				for _, a := range fr {
					if e.fnOccurs(cr.skolemFns[i], a) {
						e.cyclicSeen = true
						break
					}
				}
			}
		} else {
			ex[i] = e.in.Terms.FreshNull(birth + 1)
		}
		if d := e.in.Terms.Depth(ex[i]); d > maxDepth {
			maxDepth = d
		}
	}
	args := make([]instance.TermID, 0, 8)
	for _, ha := range cr.head {
		args = args[:0]
		for _, s := range ha.slots {
			switch s.kind {
			case slotFrontier:
				args = append(args, fr[s.idx])
			case slotExistential:
				args = append(args, ex[s.idx])
			default:
				args = append(args, s.term)
			}
		}
		fid, isNew := e.in.Add(ha.pred, args)
		if isNew {
			added++
			e.stats.FactsAdded++
			e.discover(fid)
		}
	}
	return added, maxDepth
}

// discover finds the triggers newly enabled by fact fid: for every rule
// body atom with a matching predicate, homomorphisms that map that atom to
// fid. The per-variant trigger identity deduplicates homomorphisms found
// through several anchors.
func (e *Engine) discover(fid instance.FactID) {
	pred := e.in.Fact(fid).Pred
	for _, ra := range e.byPred[pred] {
		ri, ai := ra[0], ra[1]
		cr := e.rules[ri]
		e.in.FindHomsAnchored(cr.body, ai, fid, func(b []instance.TermID) bool {
			e.offer(ri, b)
			return true
		})
	}
}

// Run is the package-level convenience: compile and run in one call.
func Run(in *instance.Instance, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	return RunContext(context.Background(), in, rs, v, opt)
}

// RunContext is Run honoring a context; see Engine.RunContext for the
// cancellation contract.
func RunContext(ctx context.Context, in *instance.Instance, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	e, err := NewEngine(in, rs, v, opt)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// RunFromAtoms runs the chase over a database given as ground atoms.
func RunFromAtoms(db []logic.Atom, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	return RunFromAtomsContext(context.Background(), db, rs, v, opt)
}

// RunFromAtomsContext is RunFromAtoms honoring a context.
func RunFromAtomsContext(ctx context.Context, db []logic.Atom, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	in, err := instance.FromAtoms(db)
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, in, rs, v, opt)
}

// IsModel verifies that the instance satisfies every TGD of the rule set:
// for each homomorphism from a body into the instance there is an extension
// mapping the head into the instance. It returns a counterexample
// description, or "" if the instance is a model. Used by tests to certify
// that terminating chase results are models of the input (property 1 of the
// chase in the paper's introduction).
func IsModel(in *instance.Instance, rs *logic.RuleSet) (string, error) {
	for ri, r := range rs.Rules {
		cr, err := compileRule(in, ri, r)
		if err != nil {
			return "", err
		}
		violation := ""
		in.FindHoms(cr.body, nil, func(b []instance.TermID) bool {
			fr := make([]instance.TermID, len(cr.frontier))
			for i, vi := range cr.frontier {
				fr[i] = b[vi]
			}
			if !in.HasHom(cr.headPattern, fr) {
				parts := make([]string, len(b))
				for i, t := range b {
					parts[i] = cr.body.VarNames[i].String() + "=" + in.Terms.String(t)
				}
				violation = fmt.Sprintf("rule %d (%s) violated under %s", ri, r, strings.Join(parts, ","))
				return false
			}
			return true
		})
		if violation != "" {
			return violation, nil
		}
	}
	return "", nil
}
