// Package chase implements the TGD chase procedure in its three standard
// variants — oblivious, semi-oblivious and restricted — over the instance
// substrate, exactly as defined in Section 2 of "Chase Termination for
// Guarded Existential Rules" (Calautti, Gottlob, Pieris, PODS 2015).
//
// A trigger for a set Σ on an instance I is a pair (σ, h) where σ = φ → ψ
// is in Σ and h is a homomorphism mapping φ into I. Applying (σ, h) adds
// h′(ψ) where h′ ⊇ h maps each existential variable of σ to a fresh null.
// The variants differ in when two triggers are considered "the same" (and
// hence fire only once) and in whether satisfied triggers fire at all:
//
//   - Oblivious: triggers are identified by the full homomorphism h; every
//     distinct (σ, h) is applied exactly once.
//   - Semi-oblivious: homomorphisms agreeing on the frontier of σ (the
//     universally quantified variables occurring in the head) are
//     indistinguishable. We implement this as the Skolem chase: existential
//     variables are mapped to interned Skolem terms f_{σ,z}(h(frontier)),
//     so indistinguishable triggers literally produce identical facts.
//   - Restricted: a trigger is applied only if it is active, i.e. h cannot
//     be extended to a homomorphism h′ mapping the head into the current
//     instance.
//
// All engines schedule triggers in FIFO order, which realizes the fairness
// condition of the paper's definition of (possibly infinite) chase
// sequences: every trigger that arises is eventually considered. Budgets
// on applied triggers, facts, and invented-term depth make the engines
// usable as bounded oracles for the termination deciders in internal/core.
package chase

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"chaseterm/internal/instance"
	"chaseterm/internal/logic"
)

// Variant selects the chase flavour.
type Variant int

const (
	// Oblivious is the naive chase: one application per distinct
	// homomorphism.
	Oblivious Variant = iota
	// SemiOblivious is the Skolem chase: one application per distinct
	// frontier restriction.
	SemiOblivious
	// Restricted is the standard chase: only triggers whose head is not
	// already satisfied fire.
	Restricted
)

func (v Variant) String() string {
	switch v {
	case Oblivious:
		return "oblivious"
	case SemiOblivious:
		return "semi-oblivious"
	default:
		return "restricted"
	}
}

// ParseVariant maps the strings "o"/"oblivious", "so"/"semi-oblivious",
// "r"/"restricted" to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(s) {
	case "o", "oblivious":
		return Oblivious, nil
	case "so", "semi-oblivious", "semioblivious", "skolem":
		return SemiOblivious, nil
	case "r", "restricted", "standard":
		return Restricted, nil
	}
	return 0, fmt.Errorf("chase: unknown variant %q", s)
}

// Outcome reports how a run ended.
type Outcome int

const (
	// Terminated: no unapplied trigger remains; the result is final.
	Terminated Outcome = iota
	// BudgetExceeded: the trigger or fact budget was exhausted first.
	BudgetExceeded
	// DepthExceeded: an invented term deeper than Options.MaxDepth was
	// created; with Skolem semantics this is strong evidence of
	// non-termination and is reported separately from a plain budget stop.
	DepthExceeded
	// CyclicTerm: a Skolem term nesting its own function symbol was
	// created and Options.StopOnCyclicSkolem was set (the model-faithful
	// acyclicity test of Grau et al.).
	CyclicTerm
	// Canceled: the context passed to RunContext was canceled or its
	// deadline expired before the run finished. The result carries the
	// statistics accumulated so far; RunContext additionally returns the
	// context's error.
	Canceled
)

func (o Outcome) String() string {
	switch o {
	case Terminated:
		return "terminated"
	case BudgetExceeded:
		return "budget-exceeded"
	case DepthExceeded:
		return "depth-exceeded"
	case Canceled:
		return "canceled"
	default:
		return "cyclic-term"
	}
}

// Options bound a chase run. The zero value means "defaults" (generous but
// finite budgets); explicit zero budgets are replaced by the defaults.
type Options struct {
	// MaxTriggers caps the number of applied triggers (default 1e6).
	MaxTriggers int
	// MaxFacts caps the total number of facts (default 1e6).
	MaxFacts int
	// MaxDepth caps the invented-term depth (default 1<<30, i.e. off).
	MaxDepth int32
	// RecordSequence keeps the applied trigger sequence in the result.
	RecordSequence bool
	// StopOnCyclicSkolem stops the run with Outcome CyclicTerm as soon as
	// the semi-oblivious chase invents a Skolem term whose function symbol
	// occurs transitively inside one of its arguments. This implements the
	// model-faithful-acyclicity stopping rule: a run that saturates
	// without such a term proves termination on every instance.
	StopOnCyclicSkolem bool
	// Order selects the trigger scheduling policy (default OrderFIFO).
	Order Order
	// Workers selects the generation-based parallel engine: trigger
	// matching fans out over this many workers against a frozen snapshot
	// while applications stay under the single writer (see parallel.go).
	// 0 and 1 run the classic sequential loop. The parallel engine is
	// defined only for OrderFIFO — the other orders are inherently
	// sequential scheduling policies — and silently degrades to the
	// sequential loop for them. At any worker count the results are
	// bit-identical to the sequential engine: same facts and fact ids,
	// same invented terms, same outcome and statistics.
	Workers int
}

// Order is a trigger scheduling policy. The paper distinguishes the
// ∀-sequence and ∃-sequence termination problems: does EVERY fair chase
// sequence terminate, or does SOME sequence terminate? For the oblivious
// and semi-oblivious chase the two coincide (every trigger must fire
// exactly once regardless of order), but for the restricted chase the
// order decides which triggers are already satisfied when considered — so
// different policies genuinely explore different sequences. A finite
// sequence is vacuously fair, so any policy that terminates yields a valid
// terminating chase sequence (a CT^r_∃ witness); only OrderFIFO guarantees
// fairness on infinite runs.
type Order int

const (
	// OrderFIFO processes triggers first-in first-out — fair on infinite
	// runs (every discovered trigger is eventually considered).
	OrderFIFO Order = iota
	// OrderLIFO processes the most recently discovered trigger first
	// (depth-first chase). Not fair on infinite runs.
	OrderLIFO
	// OrderRulePriority always prefers pending triggers of lower-indexed
	// rules, FIFO within a rule. Not fair on infinite runs. Useful to
	// bias the restricted chase toward "repairing" rules before
	// "inventing" ones.
	OrderRulePriority
)

func (o Order) String() string {
	switch o {
	case OrderFIFO:
		return "fifo"
	case OrderLIFO:
		return "lifo"
	default:
		return "rule-priority"
	}
}

func (o Options) withDefaults() Options {
	// Non-positive budgets are treated as "use the default". A negative
	// budget is never a meaningful request — letting it through would make
	// every run stop immediately with BudgetExceeded/DepthExceeded (or
	// report Terminated having done no work).
	if o.MaxTriggers <= 0 {
		o.MaxTriggers = 1_000_000
	}
	if o.MaxFacts <= 0 {
		o.MaxFacts = 1_000_000
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 1 << 30
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	// A worker is one OS-schedulable goroutine per match phase; beyond
	// any plausible core count extra workers only cost spawn overhead.
	if o.Workers > 1024 {
		o.Workers = 1024
	}
	return o
}

// Stats aggregates run statistics.
type Stats struct {
	InitialFacts int
	FactsAdded   int
	// TriggersApplied counts trigger applications (restricted: active
	// triggers actually fired).
	TriggersApplied int
	// TriggersNoop counts applications that created no new fact — the
	// "superfluous" work the semi-oblivious chase is designed to avoid.
	TriggersNoop int
	// TriggersSatisfied counts restricted-chase triggers skipped because
	// their head was already satisfied.
	TriggersSatisfied int
	// TriggersEnqueued counts distinct triggers discovered.
	TriggersEnqueued int
	MaxTermDepth     int32
}

// AppliedTrigger records one trigger application (optional, see
// Options.RecordSequence).
type AppliedTrigger struct {
	Rule       int
	FactsAdded int
}

// Result of a chase run.
type Result struct {
	Variant  Variant
	Outcome  Outcome
	Instance *instance.Instance
	Stats    Stats
	Sequence []AppliedTrigger
}

// StreamSink observes a run incrementally; see RunStreamContext. Both
// callbacks run synchronously on the chase goroutine, so an
// implementation may read the engine's instance during the call (e.g.
// render the facts of the reported range) but must not retain
// references across calls and must not mutate the instance.
type StreamSink interface {
	// EmitFacts reports that the facts [lo, hi) were appended to the
	// instance — by one trigger application (sequential engine) or by
	// one generation batch (parallel engine, Options.Workers > 1).
	// Either way ranges are contiguous and strictly increasing:
	// successive calls tile the derived suffix of the instance exactly
	// once, so a consumer streaming the run sees every derived fact once
	// and in derivation order, and the union of the emitted ranges is
	// identical at every worker count. stats is the running total after
	// the application(s).
	EmitFacts(lo, hi instance.FactID, stats Stats)
	// Progress is a liveness heartbeat, delivered every ~ctxCheckInterval
	// scheduler steps even when no facts are being derived — e.g. a
	// restricted chase skipping a long run of already-satisfied
	// triggers.
	Progress(stats Stats)
}

type headSlotKind uint8

const (
	slotFrontier headSlotKind = iota
	slotExistential
	slotConst
)

type headSlot struct {
	kind headSlotKind
	idx  int             // frontier index or existential index
	term instance.TermID // for consts
}

type headAtom struct {
	pred  instance.PredID
	slots []headSlot
}

type compiledRule struct {
	src       *logic.TGD
	body      *instance.Pattern
	frontier  []int                 // pattern-variable indexes of frontier variables, in frontier order
	nExist    int                   // number of existential variables
	skolemFns []instance.SkolemFnID // per existential variable
	head      []headAtom
	// headPattern is the head compiled as a body-style pattern whose first
	// len(frontier) variables are the frontier (in the same order),
	// used for restricted-chase satisfaction checks.
	headPattern *instance.Pattern
}

// trigger references a pending trigger's frontier tuple by offset into the
// engine's frontier arena: the queue never holds per-trigger slices.
type trigger struct {
	rule int32
	off  int32
	n    int32
}

// Engine runs one chase over one instance. Create with NewEngine, then call
// Run. The instance is mutated in place.
//
// The steady-state loop — popping a trigger whose facts all exist and
// whose successor triggers are all duplicates — is allocation-free: the
// trigger identity set, fact store and Skolem interner are integer-keyed
// open-addressed tables probed against their backing arrays, trigger
// frontiers live in an append-only arena, and the per-application
// existential/argument buffers and homomorphism scratch are pooled on the
// engine.
type Engine struct {
	in      *instance.Instance
	rules   []compiledRule
	variant Variant
	opt     Options

	queue   []trigger // FIFO / LIFO store
	qhead   int
	buckets [][]trigger // per-rule stores for OrderRulePriority
	bheads  []int
	pending int
	seen    instance.TupleSet // trigger identity, tagged by rule
	frArena []instance.TermID // frontier tuples of queued triggers
	stats   Stats
	seq     []AppliedTrigger
	byPred  map[instance.PredID][][2]int // pred -> (rule, bodyAtom) pairs
	scratch []instance.TermID
	match   instance.MatchScratch
	exBuf   []instance.TermID
	argBuf  []instance.TermID
	// offerFn is the one seeding/discovery callback: it offers the found
	// binding for rule curRule. The matcher is never re-entered while an
	// enumeration is live (offer only hashes and enqueues), so a single
	// closure + current-rule field replaces a per-rule closure vector.
	offerFn    func([]instance.TermID) bool
	curRule    int
	cyclicSeen bool
	// sink, when non-nil, receives the derived facts incrementally (see
	// RunStreamContext). The hot loop pays one nil check per applied
	// trigger when unset, preserving the zero-allocation steady state.
	sink StreamSink
	// deferDiscovery, set by the parallel engine's writer phase, makes
	// apply skip inline trigger discovery: the generation's delta facts
	// are matched afterwards against a frozen snapshot (see parallel.go).
	deferDiscovery bool
	// par is the parallel engine's reusable fan-out state (stripes and
	// merge refs); nil until the first parallel run.
	par *parRun
}

// push schedules a trigger according to the configured order.
func (e *Engine) push(t trigger) {
	e.pending++
	if e.opt.Order == OrderRulePriority {
		e.buckets[t.rule] = append(e.buckets[t.rule], t)
		return
	}
	e.queue = append(e.queue, t)
}

// pop removes the next trigger according to the configured order.
func (e *Engine) pop() (trigger, bool) {
	if e.pending == 0 {
		return trigger{}, false
	}
	e.pending--
	switch e.opt.Order {
	case OrderLIFO:
		t := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		return t, true
	case OrderRulePriority:
		for r := range e.buckets {
			if e.bheads[r] < len(e.buckets[r]) {
				t := e.buckets[r][e.bheads[r]]
				e.bheads[r]++
				return t, true
			}
		}
		panic("chase: pending count out of sync")
	default:
		t := e.queue[e.qhead]
		e.qhead++
		return t, true
	}
}

// frontierOf resolves a queued trigger's frontier tuple in the arena.
func (e *Engine) frontierOf(t trigger) []instance.TermID {
	return e.frArena[t.off : t.off+t.n]
}

// fnOccurs reports whether the Skolem function fn occurs in term t
// (transitively through Skolem arguments).
func (e *Engine) fnOccurs(fn instance.SkolemFnID, t instance.TermID) bool {
	tt := e.in.Terms
	if tt.Kind(t) != instance.KindSkolem {
		return false
	}
	if tt.SkolemFnOf(t) == fn {
		return true
	}
	for _, a := range tt.SkolemArgs(t) {
		if e.fnOccurs(fn, a) {
			return true
		}
	}
	return false
}

// NewEngine compiles the rule set against the instance. The rule set must
// validate.
func NewEngine(in *instance.Instance, rs *logic.RuleSet, v Variant, opt Options) (*Engine, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		in:      in,
		variant: v,
		opt:     opt.withDefaults(),
		byPred:  make(map[instance.PredID][][2]int),
		rules:   make([]compiledRule, len(rs.Rules)),
	}
	var ar ruleArena
	for ri, r := range rs.Rules {
		if err := compileRule(in, ri, r, &e.rules[ri], &ar); err != nil {
			return nil, err
		}
		for ai, pa := range e.rules[ri].body.Atoms {
			e.byPred[pa.Pred] = append(e.byPred[pa.Pred], [2]int{ri, ai})
		}
	}
	e.offerFn = func(b []instance.TermID) bool {
		e.offer(e.curRule, b)
		return true
	}
	if e.opt.Order == OrderRulePriority {
		e.buckets = make([][]trigger, len(e.rules))
		e.bheads = make([]int, len(e.rules))
	}
	return e, nil
}

// varPos returns the index of v in vars, or -1 — the rule vocabularies
// are tiny, so a linear scan beats a map both in time and allocation.
func varPos(vars []logic.Variable, v logic.Variable) int {
	for i, w := range vars {
		if w == v {
			return i
		}
	}
	return -1
}

// ruleArena batches the small per-rule compile slices of a whole rule set
// into a handful of growing backings. Earlier subslices stay readable
// across growth (the retired backing arrays are never mutated), so the
// arena needs no pre-counting pass.
type ruleArena struct {
	frontier []int
	fns      []instance.SkolemFnID
	heads    []headAtom
	slots    []headSlot
	ps       instance.PatternSet
}

func compileRule(in *instance.Instance, ri int, r *logic.TGD, cr *compiledRule, ar *ruleArena) error {
	body, err := ar.ps.Compile(in, r.Body, nil)
	if err != nil {
		return err
	}
	cr.src = r
	cr.body = body
	fr := r.Frontier()
	frStart := len(ar.frontier)
	for _, v := range fr {
		ar.frontier = append(ar.frontier, body.VarIndex(v))
	}
	cr.frontier = ar.frontier[frStart:len(ar.frontier):len(ar.frontier)]
	ex := r.Existentials()
	cr.nExist = len(ex)
	fnStart := len(ar.fns)
	var nameBuf [32]byte
	for _, z := range ex {
		// "f<rule>_<var>" built without fmt.Sprintf: at most one string
		// allocation per symbol (inside SkolemFn, on a table miss).
		name := append(nameBuf[:0], 'f')
		name = strconv.AppendInt(name, int64(ri), 10)
		name = append(name, '_')
		name = append(name, z...)
		ar.fns = append(ar.fns, in.Terms.SkolemFnBytes(name))
	}
	cr.skolemFns = ar.fns[fnStart:len(ar.fns):len(ar.fns)]
	haStart := len(ar.heads)
	for _, a := range r.Head {
		slStart := len(ar.slots)
		for _, t := range a.Args {
			switch t := t.(type) {
			case logic.Variable:
				if i := varPos(fr, t); i >= 0 {
					ar.slots = append(ar.slots, headSlot{kind: slotFrontier, idx: i})
				} else {
					ar.slots = append(ar.slots, headSlot{kind: slotExistential, idx: varPos(ex, t)})
				}
			case logic.Constant:
				ar.slots = append(ar.slots, headSlot{kind: slotConst, term: in.Terms.Const(string(t))})
			}
		}
		ar.heads = append(ar.heads, headAtom{
			pred:  in.Pred(a.Pred, len(a.Args)),
			slots: ar.slots[slStart:len(ar.slots):len(ar.slots)],
		})
	}
	cr.head = ar.heads[haStart:len(ar.heads):len(ar.heads)]
	// The head compiled as a body-style pattern whose first variables are
	// the frontier, in order — the restricted-chase satisfaction check
	// binds them from the trigger.
	hp, err := ar.ps.Compile(in, r.Head, fr)
	if err != nil {
		return err
	}
	cr.headPattern = hp
	return nil
}

// compileHeadPattern compiles head atoms into a pattern whose variables
// 0..len(frontier)-1 are the frontier variables in order; existential
// variables follow.
func compileHeadPattern(in *instance.Instance, frontier []logic.Variable, head []logic.Atom) (*instance.Pattern, error) {
	return (*instance.PatternSet)(nil).Compile(in, head, frontier)
}

// offer registers a discovered homomorphism as a trigger, deduplicating by
// the variant's trigger identity. A duplicate offer — the steady state of
// a saturating run — performs zero allocations: the identity key is hashed
// from the binding in place and compared against the tuple-set arena.
//
//chaselint:hotpath
func (e *Engine) offer(rule int, binding []instance.TermID) {
	cr := &e.rules[rule]
	var key []instance.TermID
	switch e.variant {
	case SemiOblivious:
		key = e.scratchFrontier(cr, binding)
	default: // Oblivious and Restricted identify triggers by the full h.
		key = binding
	}
	if _, added := e.seen.Insert(int32(rule), key); !added {
		return
	}
	off := int32(len(e.frArena))
	for _, vi := range cr.frontier {
		e.frArena = append(e.frArena, binding[vi])
	}
	e.push(trigger{rule: int32(rule), off: off, n: int32(len(cr.frontier))})
	e.stats.TriggersEnqueued++
}

// scratchFrontier projects the binding onto the rule frontier using the
// engine's reusable scratch buffer.
//
//chaselint:hotpath
func (e *Engine) scratchFrontier(cr *compiledRule, binding []instance.TermID) []instance.TermID {
	e.scratch = e.scratch[:0]
	for _, vi := range cr.frontier {
		e.scratch = append(e.scratch, binding[vi])
	}
	return e.scratch
}

// ctxCheckInterval is how many trigger applications pass between polls
// of the run context. 1024 keeps the per-trigger overhead of the hot
// loop at a fraction of a nanosecond (one mask-and-compare; the channel
// poll is amortized) while bounding the cancellation latency to the
// cost of ~1024 applications.
const ctxCheckInterval = 1024

// canceled is the non-blocking poll of a run context's done channel;
// nil (context.Background()) is free.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Run executes the chase to termination or budget exhaustion.
//
// Deprecated: use RunContext so the run can be canceled.
func (e *Engine) Run() (*Result, error) {
	return e.RunContext(context.Background())
}

// RunStreamContext is RunContext with incremental fact delivery: sink
// observes every batch of derived facts at trigger-application
// granularity, plus periodic progress heartbeats. A nil sink is exactly
// RunContext. Cancellation semantics are unchanged — on a canceled
// context the facts emitted so far remain valid and the partial result
// is returned with ctx.Err().
func (e *Engine) RunStreamContext(ctx context.Context, sink StreamSink) (*Result, error) {
	e.sink = sink
	defer func() { e.sink = nil }()
	return e.RunContext(ctx)
}

// RunContext is Run with cooperative cancellation: the context is polled
// before seeding each rule and every ctxCheckInterval trigger
// applications. When it fires, the partial result — Outcome Canceled,
// statistics up to the stopping point — is returned together with
// ctx.Err(), so callers can either propagate the error or inspect how
// far the run got.
//
//chaselint:hotpath
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	if e.opt.Workers > 1 && e.opt.Order == OrderFIFO {
		return e.runParallel(ctx)
	}
	done := ctx.Done() // nil for context.Background(): checks compile out
	e.stats.InitialFacts = e.in.Size()
	// Seed: all homomorphisms on the initial instance. Seeding a rule is
	// itself a join over the whole instance, so the context is checked
	// between rules.
	for ri := range e.rules {
		if canceled(done) {
			return e.result(Canceled), ctx.Err()
		}
		e.curRule = ri
		e.in.FindHomsWith(&e.match, e.rules[ri].body, nil, e.offerFn)
	}
	outcome := Terminated
	steps := 0 // counts loop iterations, not applications: the restricted
	// chase can pop long runs of already-satisfied triggers without
	// applying any, and each satisfaction check is real work too.
loop:
	for {
		if steps%ctxCheckInterval == 0 {
			if canceled(done) {
				outcome = Canceled
				break loop
			}
			if e.sink != nil {
				e.sink.Progress(e.stats)
			}
		}
		steps++
		if e.stats.TriggersApplied >= e.opt.MaxTriggers || e.in.Size() >= e.opt.MaxFacts {
			if e.pending > 0 {
				outcome = BudgetExceeded
			}
			break loop
		}
		t, ok := e.pop()
		if !ok {
			break loop
		}
		cr := &e.rules[t.rule]
		fr := e.frontierOf(t)
		if e.variant == Restricted && e.headSatisfied(cr, fr) {
			e.stats.TriggersSatisfied++
			continue
		}
		added, maxDepth := e.apply(cr, fr)
		e.stats.TriggersApplied++
		if added == 0 {
			e.stats.TriggersNoop++
		}
		if e.opt.RecordSequence {
			e.seq = append(e.seq, AppliedTrigger{Rule: int(t.rule), FactsAdded: added})
		}
		if maxDepth > e.stats.MaxTermDepth {
			e.stats.MaxTermDepth = maxDepth
		}
		if e.sink != nil && added > 0 {
			// Facts are append-only, so the facts of this application are
			// exactly the trailing [size-added, size) range.
			hi := instance.FactID(e.in.Size())
			e.sink.EmitFacts(hi-instance.FactID(added), hi, e.stats)
		}
		if maxDepth > e.opt.MaxDepth {
			outcome = DepthExceeded
			break loop
		}
		if e.cyclicSeen {
			outcome = CyclicTerm
			break loop
		}
	}
	if outcome == Canceled {
		return e.result(Canceled), ctx.Err()
	}
	return e.result(outcome), nil
}

func (e *Engine) result(outcome Outcome) *Result {
	return &Result{
		Variant:  e.variant,
		Outcome:  outcome,
		Instance: e.in,
		Stats:    e.stats,
		Sequence: e.seq,
	}
}

// headSatisfied reports whether the head of cr, with its frontier bound to
// fr, already has a homomorphism into the instance. Allocation-free: it
// reuses the engine's match scratch.
//
//chaselint:hotpath
func (e *Engine) headSatisfied(cr *compiledRule, fr []instance.TermID) bool {
	return e.in.HasHomWith(&e.match, cr.headPattern, fr)
}

// apply fires a trigger: it invents nulls (oblivious/restricted) or Skolem
// terms (semi-oblivious) for the existential variables, adds the head
// facts, and discovers the new triggers they enable. The existential and
// argument buffers are pooled on the engine, so an application whose facts
// all exist already (a steady-state no-op) allocates nothing.
//
//chaselint:hotpath
func (e *Engine) apply(cr *compiledRule, fr []instance.TermID) (added int, maxDepth int32) {
	// Birth depth for fresh nulls: one more than the deepest frontier term.
	var birth int32
	for _, t := range fr {
		if d := e.in.Terms.Depth(t); d > birth {
			birth = d
		}
	}
	if cap(e.exBuf) < cr.nExist {
		e.exBuf = make([]instance.TermID, cr.nExist)
	}
	ex := e.exBuf[:cr.nExist]
	for i := range ex {
		if e.variant == SemiOblivious {
			ex[i] = e.in.Terms.Skolem(cr.skolemFns[i], fr)
			if e.opt.StopOnCyclicSkolem && !e.cyclicSeen {
				for _, a := range fr {
					if e.fnOccurs(cr.skolemFns[i], a) {
						e.cyclicSeen = true
						break
					}
				}
			}
		} else {
			ex[i] = e.in.Terms.FreshNull(birth + 1)
		}
		if d := e.in.Terms.Depth(ex[i]); d > maxDepth {
			maxDepth = d
		}
	}
	args := e.argBuf
	for _, ha := range cr.head {
		args = args[:0]
		for _, s := range ha.slots {
			switch s.kind {
			case slotFrontier:
				args = append(args, fr[s.idx])
			case slotExistential:
				args = append(args, ex[s.idx])
			default:
				args = append(args, s.term)
			}
		}
		fid, isNew := e.in.Add(ha.pred, args)
		if isNew {
			added++
			e.stats.FactsAdded++
			if !e.deferDiscovery {
				e.discover(fid)
			}
		}
	}
	e.argBuf = args[:0]
	return added, maxDepth
}

// discover finds the triggers newly enabled by fact fid: for every rule
// body atom with a matching predicate, homomorphisms that map that atom to
// fid. The per-variant trigger identity deduplicates homomorphisms found
// through several anchors.
//
//chaselint:hotpath
func (e *Engine) discover(fid instance.FactID) {
	pred := e.in.Fact(fid).Pred
	for _, ra := range e.byPred[pred] {
		ri, ai := ra[0], ra[1]
		e.curRule = ri
		e.in.FindHomsAnchoredWith(&e.match, e.rules[ri].body, ai, fid, e.offerFn)
	}
}

// Run is the package-level convenience: compile and run in one call.
//
// Deprecated: use RunContext so the run can be canceled.
func Run(in *instance.Instance, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	return RunContext(context.Background(), in, rs, v, opt)
}

// RunContext is Run honoring a context; see Engine.RunContext for the
// cancellation contract.
func RunContext(ctx context.Context, in *instance.Instance, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	e, err := NewEngine(in, rs, v, opt)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx)
}

// RunFromAtoms runs the chase over a database given as ground atoms.
//
// Deprecated: use RunFromAtomsContext so the run can be canceled.
func RunFromAtoms(db []logic.Atom, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	return RunFromAtomsContext(context.Background(), db, rs, v, opt)
}

// RunFromAtomsContext is RunFromAtoms honoring a context.
func RunFromAtomsContext(ctx context.Context, db []logic.Atom, rs *logic.RuleSet, v Variant, opt Options) (*Result, error) {
	in, err := instance.FromAtoms(db)
	if err != nil {
		return nil, err
	}
	return RunContext(ctx, in, rs, v, opt)
}

// IsModel verifies that the instance satisfies every TGD of the rule set:
// for each homomorphism from a body into the instance there is an extension
// mapping the head into the instance. It returns a counterexample
// description, or "" if the instance is a model. Used by tests to certify
// that terminating chase results are models of the input (property 1 of the
// chase in the paper's introduction).
func IsModel(in *instance.Instance, rs *logic.RuleSet) (string, error) {
	var ar ruleArena
	for ri, r := range rs.Rules {
		cr := new(compiledRule)
		if err := compileRule(in, ri, r, cr, &ar); err != nil {
			return "", err
		}
		violation := ""
		in.FindHoms(cr.body, nil, func(b []instance.TermID) bool {
			fr := make([]instance.TermID, len(cr.frontier))
			for i, vi := range cr.frontier {
				fr[i] = b[vi]
			}
			if !in.HasHom(cr.headPattern, fr) {
				parts := make([]string, len(b))
				for i, t := range b {
					parts[i] = cr.body.VarNames[i].String() + "=" + in.Terms.String(t)
				}
				violation = fmt.Sprintf("rule %d (%s) violated under %s", ri, r, strings.Join(parts, ","))
				return false
			}
			return true
		})
		if violation != "" {
			return violation, nil
		}
	}
	return "", nil
}
