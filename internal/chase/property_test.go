package chase_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	. "chaseterm/internal/chase"
	"chaseterm/internal/critical"
	"chaseterm/internal/workload"
)

// TestQuickTerminatedResultIsModel: whenever a chase run terminates, its
// result satisfies every rule — property 1 of the chase from the paper's
// introduction, checked across variants on random guarded sets over the
// critical instance.
func TestQuickTerminatedResultIsModel(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		rs := workload.RandomGuarded(rng, workload.Config{NumPreds: 2, MaxArity: 2, NumRules: 2})
		for _, v := range []Variant{Oblivious, SemiOblivious, Restricted} {
			res, err := critical.Oracle(rs, v, Options{MaxTriggers: 3000, MaxFacts: 3000})
			if err != nil {
				return false
			}
			if res.Outcome != Terminated {
				continue
			}
			violation, err := IsModel(res.Instance, rs)
			if err != nil || violation != "" {
				t.Logf("%v: %s %v\n%s", v, violation, err, rs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickVariantWorkOrder: on terminating runs over the same input, the
// semi-oblivious chase never applies more triggers than the oblivious one
// (it collapses frontier-equivalent homomorphisms), and both derive the
// restricted chase's facts (restricted ⊆ so ⊆ o up to null renaming, so
// fact counts are ordered).
func TestQuickVariantWorkOrder(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		rs := workload.RandomSL(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		budget := Options{MaxTriggers: 3000, MaxFacts: 3000}
		o, err := critical.Oracle(rs, Oblivious, budget)
		if err != nil {
			return false
		}
		so, err := critical.Oracle(rs, SemiOblivious, budget)
		if err != nil {
			return false
		}
		r, err := critical.Oracle(rs, Restricted, budget)
		if err != nil {
			return false
		}
		if o.Outcome != Terminated || so.Outcome != Terminated || r.Outcome != Terminated {
			return true // only compare completed runs
		}
		if so.Stats.TriggersApplied > o.Stats.TriggersApplied {
			t.Logf("so=%d > o=%d on:\n%s", so.Stats.TriggersApplied, o.Stats.TriggersApplied, rs)
			return false
		}
		if so.Instance.Size() > o.Instance.Size() {
			t.Logf("so facts %d > o facts %d on:\n%s", so.Instance.Size(), o.Instance.Size(), rs)
			return false
		}
		if r.Instance.Size() > so.Instance.Size() {
			t.Logf("restricted facts %d > so facts %d on:\n%s", r.Instance.Size(), so.Instance.Size(), rs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickObliviousOrderInvariance: for the oblivious chase the outcome
// (and the number of triggers on terminating runs) does not depend on the
// scheduling order — CT^o_∀ = CT^o_∃ made concrete.
func TestQuickObliviousOrderInvariance(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		rs := workload.RandomSL(rng, workload.Config{NumPreds: 3, MaxArity: 2, NumRules: 3})
		budget := 2500
		var outcomes []Outcome
		var triggers []int
		for _, ord := range []Order{OrderFIFO, OrderLIFO, OrderRulePriority} {
			res, err := critical.Oracle(rs, Oblivious, Options{
				MaxTriggers: budget, MaxFacts: budget, Order: ord,
			})
			if err != nil {
				return false
			}
			outcomes = append(outcomes, res.Outcome)
			triggers = append(triggers, res.Stats.TriggersApplied)
		}
		for i := 1; i < len(outcomes); i++ {
			if outcomes[i] != outcomes[0] {
				t.Logf("outcomes differ across orders on:\n%s", rs)
				return false
			}
			if outcomes[0] == Terminated && triggers[i] != triggers[0] {
				t.Logf("trigger counts differ on terminating set:\n%s", rs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
